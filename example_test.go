package paradise_test

import (
	"context"
	"errors"
	"fmt"

	paradise "paradise"
)

// exampleStore builds a six-row position table, the integrated database d
// of a tiny smart environment.
func exampleStore() *paradise.Store {
	store := paradise.NewStore()
	tab := store.Create(paradise.NewRelation("d",
		paradise.SensitiveCol("user", paradise.TypeString),
		paradise.Col("x", paradise.TypeFloat),
		paradise.Col("y", paradise.TypeFloat),
		paradise.Col("z", paradise.TypeFloat),
		paradise.Col("t", paradise.TypeInt),
	))
	for i := 0; i < 6; i++ {
		_ = tab.Append(paradise.Row{
			paradise.String("alice"),
			paradise.Float(float64(2 + i%2)), // two grid cells
			paradise.Float(1),
			paradise.Float(30),
			paradise.Int(int64(i) * 50),
		})
	}
	return store
}

// Open a session over a store with the paper's Figure 4 policy and run a
// query through the full pipeline: the policy rewrites the height z into
// its mandated per-cell average before anything leaves the apartment.
func ExampleOpen() {
	sess, err := paradise.Open(exampleStore(),
		paradise.WithPolicy(paradise.Figure4Policy()),
		paradise.WithDefaultModule("ActionFilter"))
	if err != nil {
		panic(err)
	}
	out, err := sess.Process(context.Background(), "SELECT x, y, z FROM d")
	if err != nil {
		panic(err)
	}
	fmt.Println(out.RewrittenSQL)
	// Output:
	// SELECT x, y, AVG(z) AS zavg FROM d WHERE x > y AND z < 2 GROUP BY x, y HAVING SUM(z) > 100
}

// Stream a query through a cursor: rows arrive batch-at-a-time from the
// fragment chain, and Close (idempotent) finalizes the Figure 3 transfer
// accounting.
func ExampleSession_Query() {
	sess, err := paradise.Open(exampleStore()) // no policy: unrestricted
	if err != nil {
		panic(err)
	}
	cur, err := sess.Query(context.Background(), "SELECT x, t FROM d WHERE t >= 100")
	if err != nil {
		panic(err)
	}
	defer cur.Close()
	for cur.Next() {
		r := cur.Row()
		fmt.Printf("x=%s t=%s\n", r[0].Format(), r[1].Format())
	}
	if err := cur.Err(); err != nil {
		panic(err)
	}
	// Output:
	// x=2 t=100
	// x=3 t=150
	// x=2 t=200
	// x=3 t=250
}

// Parallelism is a pure performance knob: a session opened with
// WithParallelism(4) runs scans, filters, projections, join probes and
// aggregation on four worker goroutines per query, yet returns exactly the
// rows — same order, bit-identical values — and exactly the Figure 3
// accounting of a serial session, because the engine's exchange re-emits
// worker output in morsel order.
func ExampleWithParallelism() {
	store := exampleStore()
	serial, err := paradise.Open(store, paradise.WithParallelism(1))
	if err != nil {
		panic(err)
	}
	parallel, err := paradise.Open(store, paradise.WithParallelism(4))
	if err != nil {
		panic(err)
	}
	sql := "SELECT x, AVG(z) AS za, COUNT(*) AS n FROM d GROUP BY x"
	a, err := serial.Process(context.Background(), sql)
	if err != nil {
		panic(err)
	}
	b, err := parallel.Process(context.Background(), sql)
	if err != nil {
		panic(err)
	}
	fmt.Println("rows equal:", fmt.Sprint(a.Result.Rows) == fmt.Sprint(b.Result.Rows))
	fmt.Println("egress equal:", a.Net.EgressBytes == b.Net.EgressBytes)
	for _, r := range b.Result.Rows {
		fmt.Printf("x=%s za=%s n=%s\n", r[0].Format(), r[1].Format(), r[2].Format())
	}
	// Output:
	// rows equal: true
	// egress equal: true
	// x=2 za=30 n=3
	// x=3 za=30 n=3
}

// The -explain view of cmd/paradise is Outcome.Explain: the optimized
// logical plan of the rewritten query, policy transformations inline as
// operator provenance, followed by the per-fragment plan trees and their
// placement levels.
func ExampleOutcome_Explain() {
	sess, err := paradise.Open(exampleStore(),
		paradise.WithPolicy(paradise.Figure4Policy()),
		paradise.WithDefaultModule("ActionFilter"))
	if err != nil {
		panic(err)
	}
	out, err := sess.Process(context.Background(), "SELECT x, y FROM d")
	if err != nil {
		panic(err)
	}
	fmt.Print(out.Explain())
	// Output:
	// logical plan (rewritten, optimized):
	//   Project x, y
	//     Scan d cols=[x, y] pushed=(x > y)
	//       ^ policy:ActionFilter selection control (injected condition) [x, y] (x > y)
	// fragment plans (placement):
	// Q1 @ E4/sensor — sensor scan (reads d, emits d1) [est 6 rows / 246 bytes]
	//   Project *
	//     Scan d
	// Q2 @ E3/appliance — appliance filter + projection (reads d1, emits d2) [est 2 rows / 32 bytes]
	//   Project x, y
	//     Scan d1 pushed=(x > y)
}

// Denied queries surface as typed errors: branch with errors.Is, read the
// violated rule and offending columns with errors.As.
func ExampleErrPolicyViolation() {
	sess, err := paradise.Open(exampleStore(),
		paradise.WithPolicy(paradise.Figure4Policy()),
		paradise.WithDefaultModule("ActionFilter"))
	if err != nil {
		panic(err)
	}
	_, err = sess.Process(context.Background(), "SELECT x, y FROM d WHERE user = 'alice'")
	if errors.Is(err, paradise.ErrPolicyViolation) {
		var v *paradise.PolicyViolation
		errors.As(err, &v)
		fmt.Printf("denied by module %s: %s %v\n", v.Module, v.Rule, v.Columns)
	}
	// Output:
	// denied by module ActionFilter: denied attribute used in WHERE [user]
}
