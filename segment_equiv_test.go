package paradise_test

import (
	"context"
	"testing"

	paradise "paradise"
)

// segmentCorpus exercises every fragment shape over the integrated
// relation d, with range predicates on the quasi-ordered t column so
// zone-map pruning actually fires in the segmented variants.
var segmentCorpus = []string{
	"SELECT x, y FROM d",
	"SELECT * FROM d WHERE z < 2",
	"SELECT x, y FROM d WHERE t >= 5000 AND t < 15000",
	"SELECT x, y FROM d WHERE x > y AND z < 2.5",
	"SELECT x, AVG(z) AS za, COUNT(*) AS n FROM d WHERE t > 10000 GROUP BY x HAVING COUNT(*) > 3",
	"SELECT DISTINCT x FROM d WHERE t < 2500",
	"SELECT x, z FROM d ORDER BY z DESC, x, t LIMIT 5",
	"SELECT x, SUM(z) OVER (PARTITION BY x ORDER BY t) AS s FROM d WHERE t < 5000",
	"SELECT s FROM (SELECT x + y AS s, z FROM d WHERE t >= 980) WHERE s > 1",
	"SELECT user, COUNT(*) AS n FROM d WHERE t > 100 GROUP BY user ORDER BY user",
}

// fillConfiguredStore loads the exact testStore corpus into a store built
// with the given storage configuration.
func fillConfiguredStore(t *testing.T, n int, cfg paradise.StoreConfig) *paradise.Store {
	t.Helper()
	store, err := paradise.NewStoreWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := store.CreateTable(paradise.NewRelation("d",
		paradise.SensitiveCol("user", paradise.TypeString),
		paradise.Col("x", paradise.TypeFloat),
		paradise.Col("y", paradise.TypeFloat),
		paradise.Col("z", paradise.TypeFloat),
		paradise.Col("t", paradise.TypeInt),
	))
	if err != nil {
		t.Fatal(err)
	}
	users := []string{"alice", "bob", "carol"}
	rows := make(paradise.Rows, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, paradise.Row{
			paradise.String(users[i%len(users)]),
			paradise.Float(float64(i % 8)),
			paradise.Float(float64(i % 6)),
			paradise.Float(0.5 + float64(i%30)/10),
			paradise.Int(int64(i) * 50),
		})
	}
	if err := tab.Append(rows...); err != nil {
		t.Fatal(err)
	}
	return store
}

// TestSegmentedStoreEquivalence is the facade-level half of the tentpole
// soundness suite: the same queries over the same corpus return identical
// rows AND byte-identical Figure-3 accounting (raw, egress, per-link
// traffic, per-stage rows/bytes, simulated time) regardless of segment
// size, pruning, or the on-disk backend. Physical layout must be invisible
// to everything above storage.
func TestSegmentedStoreEquivalence(t *testing.T) {
	const n = 400
	ref := testStore(t, n) // monolithic in-memory baseline
	refSess, err := paradise.Open(ref)
	if err != nil {
		t.Fatal(err)
	}

	variants := []struct {
		name string
		cfg  paradise.StoreConfig
	}{
		{"seg=1", paradise.StoreConfig{SegmentRows: 1}},
		{"seg=7", paradise.StoreConfig{SegmentRows: 7}},
		{"seg=64", paradise.StoreConfig{SegmentRows: 64}},
		{"seg=64 noprune", paradise.StoreConfig{SegmentRows: 64, DisablePruning: true}},
		{"seg=1000 (monolithic)", paradise.StoreConfig{SegmentRows: n + 1}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			store := fillConfiguredStore(t, n, v.cfg)
			sess, err := paradise.Open(store)
			if err != nil {
				t.Fatal(err)
			}
			for _, sql := range segmentCorpus {
				want, err := refSess.Process(context.Background(), sql)
				if err != nil {
					t.Fatalf("%s (ref): %v", sql, err)
				}
				got, err := sess.Process(context.Background(), sql)
				if err != nil {
					t.Fatalf("%s (%s): %v", sql, v.name, err)
				}
				sameRows(t, got.Result.Rows, want.Result.Rows)
				sameStats(t, got.Net, want.Net)
			}
		})
	}
}

// TestDiskStoreEquivalence runs the suite against the on-disk backend,
// twice: once on the store that ingested the corpus, and once on a store
// recovered from its directory by a fresh open — a simulated restart. Both
// must be row- and Figure-3-identical to the monolithic baseline.
func TestDiskStoreEquivalence(t *testing.T) {
	const n = 400
	ref := testStore(t, n)
	refSess, err := paradise.Open(ref)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	store := fillConfiguredStore(t, n, paradise.StoreConfig{Dir: dir, SegmentRows: 64})
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}
	recovered, err := paradise.NewStoreWith(paradise.StoreConfig{Dir: dir, SegmentRows: 64})
	if err != nil {
		t.Fatal(err)
	}

	for name, st := range map[string]*paradise.Store{"ingested": store, "recovered": recovered} {
		sess, err := paradise.Open(st)
		if err != nil {
			t.Fatal(err)
		}
		for _, sql := range segmentCorpus {
			want, err := refSess.Process(context.Background(), sql)
			if err != nil {
				t.Fatalf("%s (ref): %v", sql, err)
			}
			got, err := sess.Process(context.Background(), sql)
			if err != nil {
				t.Fatalf("%s (%s): %v", sql, name, err)
			}
			sameRows(t, got.Result.Rows, want.Result.Rows)
			sameStats(t, got.Net, want.Net)
		}
	}
}
