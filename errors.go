package paradise

import (
	"errors"
	"fmt"
	"strings"

	"paradise/internal/core"
	"paradise/internal/fragment"
	"paradise/internal/rewrite"
	"paradise/internal/sqlparser"
)

// The facade classifies every error of the processing pipeline into a
// small set of sentinels so callers branch with errors.Is and drill into
// details with errors.As, never by matching strings:
//
//	cur, err := sess.Query(ctx, sql)
//	switch {
//	case errors.Is(err, paradise.ErrPolicyViolation):
//	        var v *paradise.PolicyViolation
//	        errors.As(err, &v) // v.Rule, v.Columns, v.Module
//	case errors.Is(err, paradise.ErrParse):
//	        // bad SQL
//	}
//
// The original internal error stays in the chain, so errors.Is also keeps
// working against any internal sentinel a test may hold.
var (
	// ErrPolicyViolation marks queries the privacy policy refuses to
	// answer at all (a denied attribute is load-bearing, or every
	// projected attribute is denied). The chain carries a
	// *PolicyViolation with the violated rule and the offending columns.
	ErrPolicyViolation = errors.New("paradise: query violates the privacy policy")
	// ErrParse marks SQL the parser rejects.
	ErrParse = errors.New("paradise: cannot parse query")
	// ErrUnsupported marks query shapes the processor cannot handle
	// safely — the rewriter or fragmenter refuses rather than guessing.
	ErrUnsupported = errors.New("paradise: unsupported query shape")
	// ErrUsage marks API misuse: nil store, missing policy module.
	ErrUsage = errors.New("paradise: invalid usage")
)

// PolicyViolation carries the details of an ErrPolicyViolation.
type PolicyViolation struct {
	// Module is the policy module the query was checked against.
	Module string
	// Rule describes the violated rule, e.g. "denied attribute used in
	// WHERE".
	Rule string
	// Columns are the offending attribute names.
	Columns []string
	// err is the underlying rewrite error.
	err error
}

func (e *PolicyViolation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v: %s", ErrPolicyViolation, e.Rule)
	if len(e.Columns) > 0 {
		fmt.Fprintf(&b, " (attributes %s)", strings.Join(e.Columns, ", "))
	}
	if e.Module != "" {
		fmt.Fprintf(&b, " under module %q", e.Module)
	}
	return b.String()
}

// Unwrap exposes the underlying rewrite error, keeping internal sentinels
// reachable through the chain.
func (e *PolicyViolation) Unwrap() error { return e.err }

// Is ties the struct to the ErrPolicyViolation sentinel.
func (e *PolicyViolation) Is(target error) bool { return target == ErrPolicyViolation }

// wrapErr classifies an internal error into the facade's typed errors. The
// internal error stays wrapped underneath.
func wrapErr(err error) error {
	if err == nil {
		return nil
	}
	var denial *rewrite.Denial
	switch {
	case errors.As(err, &denial):
		return &PolicyViolation{
			Module:  denial.Module,
			Rule:    denial.Rule,
			Columns: denial.Columns,
			err:     err,
		}
	case errors.Is(err, rewrite.ErrDenied):
		return &PolicyViolation{Rule: "query denied by privacy policy", err: err}
	case errors.Is(err, sqlparser.ErrSyntax):
		return fmt.Errorf("%w: %w", ErrParse, err)
	case errors.Is(err, rewrite.ErrUnsupported), errors.Is(err, fragment.ErrFragment):
		return fmt.Errorf("%w: %w", ErrUnsupported, err)
	case errors.Is(err, core.ErrProcessor):
		// Processor configuration errors: unknown policy module, invalid
		// anonymization method, pipeline without a SQLable part.
		return fmt.Errorf("%w: %w", ErrUsage, err)
	default:
		return err
	}
}

// wrapModErr is wrapErr plus the module context for policy violations.
func (s *Session) wrapModErr(err error, module string) error {
	err = wrapErr(err)
	var v *PolicyViolation
	if errors.As(err, &v) && v.Module == "" {
		v.Module = module
	}
	return err
}
