package paradise_test

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	paradise "paradise"
	"paradise/internal/engine"
)

// genEpochMs mirrors cmd/gensensors: timestamps anchor at
// 2016-01-01T00:00:00Z and ascend by the reporting interval.
var genEpochMs = time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC).UnixMilli()

// writeReadings generates the cmd/gensensors corpus shape — readings
// (sensor_id, t, temperature, humidity, battery, status), t in Unix
// milliseconds, strict time order — into a disk-backed store at dir, and
// returns the row count. Small segments make the pruning ratio visible at
// bench scale.
func writeReadings(tb testing.TB, dir string, sensors, ticks, segRows int) int {
	tb.Helper()
	store, err := paradise.NewStoreWith(paradise.StoreConfig{Dir: dir, SegmentRows: segRows})
	if err != nil {
		tb.Fatal(err)
	}
	tab, err := store.CreateTable(paradise.NewRelation("readings",
		paradise.SensitiveCol("sensor_id", paradise.TypeInt),
		paradise.Col("t", paradise.TypeInt),
		paradise.Col("temperature", paradise.TypeFloat),
		paradise.Col("humidity", paradise.TypeFloat),
		paradise.Col("battery", paradise.TypeFloat),
		paradise.Col("status", paradise.TypeString),
	))
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2016))
	statuses := []string{"ok", "ok", "ok", "ok", "degraded", "calibrating"}
	round2 := func(f float64) float64 { return math.Round(f*100) / 100 }
	total := 0
	var rows paradise.Rows
	for tick := 0; tick < ticks; tick++ {
		at := genEpochMs + int64(tick)*30_000
		drain := float64(tick) / float64(ticks)
		for s := 0; s < sensors; s++ {
			rows = append(rows, paradise.Row{
				paradise.Int(int64(s)),
				paradise.Int(at),
				paradise.Float(round2(20 + 2*rng.NormFloat64())),
				paradise.Float(round2(50 + 5*rng.NormFloat64())),
				paradise.Float(round2(100 - 60*drain)),
				paradise.String(statuses[rng.Intn(len(statuses))]),
			})
		}
		if len(rows) >= 4096 {
			if err := tab.Append(rows...); err != nil {
				tb.Fatal(err)
			}
			total += len(rows)
			rows = rows[:0]
		}
	}
	if err := tab.Append(rows...); err != nil {
		tb.Fatal(err)
	}
	total += len(rows)
	if err := store.Flush(); err != nil {
		tb.Fatal(err)
	}
	return total
}

// BenchmarkGensensorsPruning is the PR 10 A/B: the same selective
// time-range scan over the same disk-persisted gensensors-style corpus,
// once with zone-map pruning on and once with it off. The on/off results
// are checked row-identical before timing; the reported skip rate is the
// fraction of sealed segments the zone maps discarded per query.
func BenchmarkGensensorsPruning(b *testing.B) {
	const (
		sensors = 100
		ticks   = 480 // 4h of 30s readings → 48000 rows
		segRows = 1024
	)
	dir := b.TempDir()
	writeReadings(b, dir, sensors, ticks, segRows)

	// The last 10 minutes of a 4-hour history: ~0.8% of rows.
	lo := genEpochMs + int64(ticks-20)*30_000
	query := "SELECT COUNT(*) AS n FROM readings WHERE t >= " + itoa64(lo)

	open := func(noPrune bool) *paradise.Store {
		st, err := paradise.NewStoreWith(paradise.StoreConfig{Dir: dir, SegmentRows: segRows, DisablePruning: noPrune})
		if err != nil {
			b.Fatal(err)
		}
		return st
	}

	// Equivalence gate: pruning must not change the answer.
	onStore, offStore := open(false), open(true)
	want, err := engine.New(offStore).Query(context.Background(), query)
	if err != nil {
		b.Fatal(err)
	}
	got, err := engine.New(onStore).Query(context.Background(), query)
	if err != nil {
		b.Fatal(err)
	}
	if len(got.Rows) != 1 || len(want.Rows) != 1 || !got.Rows[0][0].Identical(want.Rows[0][0]) {
		b.Fatalf("pruning changed the answer: %v vs %v", got.Rows, want.Rows)
	}
	if st := onStore.StorageStats(); st.SegmentsSkipped == 0 {
		b.Fatalf("pruning never fired: %+v", st)
	} else {
		b.Logf("segments: %d total, %d skipped, %d scanned per query",
			st.Segments, st.SegmentsSkipped, st.SegmentsScanned)
	}

	for _, bc := range []struct {
		name    string
		noPrune bool
	}{{"pruning=on", false}, {"pruning=off", true}} {
		b.Run(bc.name, func(b *testing.B) {
			st := open(bc.noPrune)
			eng := engine.New(st)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Query(context.Background(), query)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != 1 {
					b.Fatal("bad result")
				}
			}
		})
	}
}

func itoa64(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
