// Benchmarks regenerating every exhibit of the paper. Each benchmark wraps
// the corresponding internal/experiments entry point so `go test -bench=.`
// and `cmd/benchrunner` measure exactly the same code. Custom metrics
// (egress bytes, reduction factors, information loss) are attached via
// b.ReportMetric so the paper's qualitative shapes are visible straight
// from the bench output.
package paradise

import (
	"context"
	"testing"
	"time"

	"paradise/internal/experiments"
	"paradise/internal/fragment"
	"paradise/internal/network"
	"paradise/internal/policy"
	"paradise/internal/rewrite"
	"paradise/internal/sqlparser"
)

const benchSeed = 2016

// BenchmarkTable1_CapabilityLadder measures one representative query per
// rung of the Table 1 ladder on a 10k-row database.
func BenchmarkTable1_CapabilityLadder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(10_000, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatalf("want 5 ladder probes, got %d", len(rows))
		}
	}
}

// BenchmarkFigure1_SmartLabTraceGeneration measures the full device-ensemble
// simulation of the Smart Appliance Lab.
func BenchmarkFigure1_SmartLabTraceGeneration(b *testing.B) {
	var rows float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1(5, 60*time.Second, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		rows = float64(res.TotalRows)
	}
	b.ReportMetric(rows, "trace-rows")
}

// BenchmarkFigure2_ProcessorPipeline measures the end-to-end Figure 2
// pipeline (parse -> rewrite -> fragment -> chain execution -> anonymize).
func BenchmarkFigure2_ProcessorPipeline(b *testing.B) {
	var rewriteUs float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2(10_000, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		rewriteUs = float64(res.Rewrite.Microseconds())
	}
	b.ReportMetric(rewriteUs, "rewrite-us")
}

// BenchmarkFigure3_VerticalFragmentation measures the headline experiment:
// bytes leaving the apartment with and without fragmentation, at 20k rows.
func BenchmarkFigure3_VerticalFragmentation(b *testing.B) {
	var reduction, egress float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure3([]int{20_000}, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		reduction = rows[0].Reduction
		egress = float64(rows[0].FragEgress)
		if rows[0].FragEgress >= rows[0].NaiveEgress {
			b.Fatal("fragmentation failed to reduce egress")
		}
	}
	b.ReportMetric(reduction, "reduction-x")
	b.ReportMetric(egress, "egress-bytes")
}

// BenchmarkFigure4_PolicyRewrite measures parsing the Figure 4 policy and
// rewriting the §4.2 query under it (the preprocessor hot path).
func BenchmarkFigure4_PolicyRewrite(b *testing.B) {
	st := experiments.SyntheticDB(1_000, benchSeed)
	mod, _ := policy.Figure4().ModuleByID("ActionFilter")
	rw := rewrite.New(st.Catalog(), rewrite.Options{})
	sel, err := sqlparser.Parse(experiments.OriginalUseCaseQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rw.Rewrite(sel, mod); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUseCase_StagedPushdown fragments the rewritten §4.2 query,
// verifies every stage against the paper's listing and checks equivalence
// with monolithic evaluation.
func BenchmarkUseCase_StagedPushdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.UseCase(10_000, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Equivalent {
			b.Fatal("fragmented execution diverged from monolithic")
		}
		for _, s := range res.Stages {
			if s.PaperSQL != "" && !s.Match {
				b.Fatalf("stage %d does not match the paper: %s", s.Stage, s.OurSQL)
			}
		}
	}
}

// BenchmarkSec32_InformationLoss sweeps the postprocessing operators and
// reports the k=20 Direct Distance ratio and the eps=0.1 KL loss.
func BenchmarkSec32_InformationLoss(b *testing.B) {
	var dd20, kl01 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Sec32(4_000, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Method == "mondrian" && r.Param == "k=20" {
				dd20 = r.DDRatio
			}
			if r.Method == "dp" && r.Param == "eps=0.1" {
				kl01 = r.KLIntended
			}
		}
	}
	b.ReportMetric(dd20, "dd-ratio-k20")
	b.ReportMetric(kl01, "kl-eps0.1")
}

// BenchmarkGoldenPath_IntendedAnalysis scores the activity classifier on
// raw and privacy-processed positions (the §3.2 Golden Path dial),
// reporting the raw and k=5 accuracies.
func BenchmarkGoldenPath_IntendedAnalysis(b *testing.B) {
	var rawAcc, k5Acc float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.GoldenPath(40*time.Second, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.FallDetected {
				b.Fatalf("%s lost the fall", r.Variant)
			}
			switch r.Variant {
			case "raw":
				rawAcc = r.Accuracy
			case "mondrian k=5":
				k5Acc = r.Accuracy
			}
		}
	}
	b.ReportMetric(rawAcc, "raw-accuracy")
	b.ReportMetric(k5Acc, "k5-accuracy")
}

// BenchmarkAblation_ConditionPlacement measures the innermost-vs-outermost
// condition placement decision (§4.2 "innermost possible part").
func BenchmarkAblation_ConditionPlacement(b *testing.B) {
	var savedRows float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationConditionPlacement(10_000, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		savedRows = float64(rows[1].SensorOut - rows[0].SensorOut)
	}
	b.ReportMetric(savedRows, "rows-saved-at-sensor")
}

// BenchmarkAblation_WeakNodeFallback measures the §3.2 fallback: raw data
// shipping one hop further when a node lacks memory.
func BenchmarkAblation_WeakNodeFallback(b *testing.B) {
	var extraBytes float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationWeakNode(10_000, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		extraBytes = float64(rows[1].MidLinkBytes - rows[0].MidLinkBytes)
		if !rows[1].FallbackUsed {
			b.Fatal("fallback not triggered")
		}
	}
	b.ReportMetric(extraBytes, "extra-midlink-bytes")
}

// BenchmarkFragmentation_PlanOnly isolates the planner itself (no data).
func BenchmarkFragmentation_PlanOnly(b *testing.B) {
	sel, err := sqlparser.Parse(experiments.UseCaseQuery)
	if err != nil {
		b.Fatal(err)
	}
	fr := fragment.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fr.Fragment(sel); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetwork_ChainExecution isolates the simulated chain run at 10k
// rows (the execution component of Figures 2 and 3).
func BenchmarkNetwork_ChainExecution(b *testing.B) {
	st := experiments.SyntheticDB(10_000, benchSeed)
	sel, err := sqlparser.Parse(experiments.UseCaseQuery)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := fragment.New().Fragment(sel)
	if err != nil {
		b.Fatal(err)
	}
	topo := network.DefaultApartment()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := network.Run(context.Background(), topo, plan, st); err != nil {
			b.Fatal(err)
		}
	}
}
