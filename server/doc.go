// Package server is the network facade of the privacy-aware query
// processor: an HTTP/JSON layer over the public paradise API that serves
// many tenants from one shared Store.
//
// Each tenant is a paradise.Session — its own policy, default module,
// journal and anonymization — while all tenants share the store and one
// prepared-plan cache (entries are keyed by policy fingerprint and schema
// epoch, so tenants can never observe each other's rewrites). Query
// results stream as NDJSON straight off Session.Query cursors: one JSON
// object per line — a schema line, then row lines, then a stats trailer
// (or an error object if the stream dies mid-flight), so a response is
// well formed even when it is truncated. Execution is bound to the
// request context: client disconnects and deadlines cancel the storage
// scans within one batch.
//
// The facade's typed errors map onto status codes — ErrPolicyViolation
// 403, ErrParse 400, ErrUnsupported 501, ErrUsage 422 — with a structured
// JSON body carrying the violated rule and offending attributes.
// GET /v1/stats exposes the serving metrics: plan-cache hits, misses and
// evictions, tenant sessions, in-flight queries, totals. Shutdown drains
// in-flight cursors within a caller-supplied deadline and then cancels the
// stragglers, which end their streams with a final error line instead of
// a hang.
//
// cmd/paradised wraps this package as a binary; cmd/loadgen drives it
// with configurable concurrency and reports latency percentiles.
package server
