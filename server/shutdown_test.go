package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestShutdownCleanDrain: with nothing in flight, Shutdown returns nil
// immediately and the server refuses further work.
func TestShutdownCleanDrain(t *testing.T) {
	srv, hs, client := newTestServer(t, testStore(t, 100))
	ctx := context.Background()

	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
	res, err := client.Query(ctx, QueryRequest{SQL: "SELECT x FROM d"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusServiceUnavailable || res.Err == nil || res.Err.Code != "draining" {
		t.Fatalf("query after drain: status %d err %+v", res.Status, res.Err)
	}
	hres, err := hs.Client().Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if hres.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d", hres.StatusCode)
	}
}

// TestShutdownMidStreamTruncates is the drain acceptance case: a shutdown
// deadline expiring under an in-flight stream must yield a well-formed
// truncated NDJSON response — every line valid JSON, the last one an error
// object — rather than a hang or a torn line.
func TestShutdownMidStreamTruncates(t *testing.T) {
	store := testStore(t, 200000)
	srv, err := New(Config{Store: store, Tenants: []TenantConfig{{Name: "default"}}})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()

	body, err := json.Marshal(QueryRequest{SQL: "SELECT * FROM d"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := hs.Client().Post(hs.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	// Read a handful of lines, then stop consuming: TCP backpressure pins
	// the server mid-stream with the cursor open.
	br := bufio.NewReaderSize(resp.Body, 4096)
	var lines []string
	for i := 0; i < 5; i++ {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading line %d: %v", i, err)
		}
		lines = append(lines, line)
	}

	shutErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		shutErr <- srv.Shutdown(ctx)
	}()

	// Draining flips before the deadline: health goes 503, new queries are
	// refused while the old stream is still open.
	deadline := time.Now().Add(5 * time.Second)
	for {
		hres, err := hs.Client().Get(hs.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		hres.Body.Close()
		if hres.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	client := &Client{Base: hs.URL, HTTP: hs.Client()}
	res, err := client.Query(context.Background(), QueryRequest{SQL: "SELECT x FROM d"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusServiceUnavailable || res.Err == nil || res.Err.Code != "draining" {
		t.Fatalf("new query during drain: status %d err %+v", res.Status, res.Err)
	}

	// Let the drain deadline expire so the kill switch cancels the stream's
	// context, then resume reading to the end.
	time.Sleep(250 * time.Millisecond)
	for {
		line, err := br.ReadString('\n')
		if len(line) > 0 {
			lines = append(lines, line)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}

	if err := <-shutErr; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown returned %v, want context.DeadlineExceeded", err)
	}

	// The response is truncated but well formed: schema first, every line a
	// complete JSON object, the final line an error — never a stats trailer,
	// never a torn row.
	if len(lines) >= 200000 {
		t.Fatalf("stream was not truncated: %d lines", len(lines))
	}
	for i, line := range lines {
		var msg Message
		if err := json.Unmarshal([]byte(line), &msg); err != nil {
			t.Fatalf("line %d is not valid JSON: %q: %v", i, line, err)
		}
		switch {
		case i == 0 && msg.Type != "schema":
			t.Fatalf("first line type %q, want schema", msg.Type)
		case i == len(lines)-1:
			if msg.Type != "error" || msg.Code != "canceled" {
				t.Fatalf("final line = %s, want a canceled error object", strings.TrimSpace(line))
			}
		case i > 0 && msg.Type != "row":
			t.Fatalf("line %d type %q, want row", i, msg.Type)
		}
	}
	if !strings.HasSuffix(lines[len(lines)-1], "\n") {
		t.Fatalf("final line not newline-terminated: %q", lines[len(lines)-1])
	}
}
