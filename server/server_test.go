package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	paradise "paradise"
)

// testStore builds a deterministic integrated database d of n rows.
func testStore(t testing.TB, n int) *paradise.Store {
	t.Helper()
	store := paradise.NewStore()
	tab := store.Create(paradise.NewRelation("d",
		paradise.SensitiveCol("user", paradise.TypeString),
		paradise.Col("x", paradise.TypeFloat),
		paradise.Col("y", paradise.TypeFloat),
		paradise.Col("z", paradise.TypeFloat),
		paradise.Col("t", paradise.TypeInt),
	))
	users := []string{"alice", "bob", "carol"}
	rows := make(paradise.Rows, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, paradise.Row{
			paradise.String(users[i%len(users)]),
			paradise.Float(float64(i % 8)),
			paradise.Float(float64(i % 6)),
			paradise.Float(0.5 + float64(i%30)/10),
			paradise.Int(int64(i) * 50),
		})
	}
	if err := tab.Append(rows...); err != nil {
		t.Fatal(err)
	}
	return store
}

// newTestServer serves two tenants over one store: "default" under the
// paper's Figure 4 policy and "open" unrestricted.
func newTestServer(t testing.TB, store *paradise.Store) (*Server, *httptest.Server, *Client) {
	t.Helper()
	srv, err := New(Config{
		Store: store,
		Tenants: []TenantConfig{
			{Name: "default", Policy: paradise.Figure4Policy(), DefaultModule: "ActionFilter"},
			{Name: "open"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return srv, hs, &Client{Base: hs.URL, HTTP: hs.Client()}
}

// sameAsProcess asserts a drained HTTP result matches a direct
// Session.Process outcome row for row (JSON-encoding both sides) and in
// the trailer's Figure 3 numbers.
func sameAsProcess(t *testing.T, res *QueryResult, want *paradise.Outcome) {
	t.Helper()
	if res.Err != nil {
		t.Fatalf("query failed: %+v", res.Err)
	}
	if len(res.Rows) != len(want.Result.Rows) {
		t.Fatalf("rows: got %d, want %d", len(res.Rows), len(want.Result.Rows))
	}
	for i := range res.Rows {
		got, err := json.Marshal(res.Rows[i])
		if err != nil {
			t.Fatal(err)
		}
		exp, err := json.Marshal(rowValues(want.Result.Rows[i]))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, exp) {
			t.Fatalf("row %d: got %s, want %s", i, got, exp)
		}
	}
	if res.Stats == nil {
		t.Fatal("missing stats trailer")
	}
	if res.Stats.Rows != len(want.Result.Rows) ||
		res.Stats.RawBytes != want.Net.RawBytes ||
		res.Stats.EgressBytes != want.Net.EgressBytes {
		t.Fatalf("trailer rows/raw/egress = %d/%d/%d, want %d/%d/%d",
			res.Stats.Rows, res.Stats.RawBytes, res.Stats.EgressBytes,
			len(want.Result.Rows), want.Net.RawBytes, want.Net.EgressBytes)
	}
}

// TestQueryRoundtrip: one HTTP query equals direct in-process execution,
// schema line included.
func TestQueryRoundtrip(t *testing.T) {
	store := testStore(t, 2000)
	_, _, client := newTestServer(t, store)
	direct, err := paradise.Open(store,
		paradise.WithPolicy(paradise.Figure4Policy()),
		paradise.WithDefaultModule("ActionFilter"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	const sql = "SELECT x, AVG(z) AS za FROM d GROUP BY x"
	want, err := direct.Process(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.Query(ctx, QueryRequest{SQL: sql})
	if err != nil {
		t.Fatal(err)
	}
	sameAsProcess(t, res, want)
	if len(res.Columns) != 2 || res.Columns[0].Name != "x" || res.Columns[1].Name != "za" {
		t.Fatalf("schema line = %+v", res.Columns)
	}
}

// TestErrorStatusMapping: the facade's typed errors surface as the
// documented status codes with structured JSON bodies.
func TestErrorStatusMapping(t *testing.T) {
	_, _, client := newTestServer(t, testStore(t, 100))
	ctx := context.Background()

	cases := []struct {
		name   string
		req    QueryRequest
		status int
		code   string
	}{
		{"policy violation", QueryRequest{SQL: "SELECT user FROM d"}, 403, "policy_violation"},
		{"parse error", QueryRequest{SQL: "SELEKT broken"}, 400, "parse_error"},
		{"unsupported shape", QueryRequest{SQL: "SELECT v FROM nosuchtable"}, 501, "unsupported"},
		{"usage error", QueryRequest{SQL: "SELECT x FROM d", Module: "NoSuchModule"}, 422, "usage"},
		{"unknown tenant", QueryRequest{SQL: "SELECT x FROM d", Tenant: "ghost"}, 404, "unknown_tenant"},
		{"missing sql", QueryRequest{}, 422, "usage"},
	}
	for _, tc := range cases {
		res, err := client.Query(ctx, tc.req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Status != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, res.Status, tc.status)
		}
		if res.Err == nil || res.Err.Code != tc.code {
			t.Errorf("%s: error body %+v, want code %q", tc.name, res.Err, tc.code)
		}
	}

	// The violation body carries the offending rule and attributes.
	res, err := client.Query(ctx, QueryRequest{SQL: "SELECT user FROM d"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err.Rule == "" || len(res.Err.Attributes) == 0 {
		t.Fatalf("policy violation body lacks rule/attributes: %+v", res.Err)
	}
}

// TestTenantIsolation: the same SQL under different tenants goes through
// different policies — the Figure 4 tenant gets the mandated rewrite, the
// open tenant the raw answer — and the shared plan cache keeps them apart.
func TestTenantIsolation(t *testing.T) {
	store := testStore(t, 1200)
	srv, _, client := newTestServer(t, store)
	ctx := context.Background()

	const sql = "SELECT x, y, z FROM d WHERE x > y AND z < 2"
	restricted, err := client.Query(ctx, QueryRequest{SQL: sql})
	if err != nil {
		t.Fatal(err)
	}
	open, err := client.Query(ctx, QueryRequest{SQL: sql, Tenant: "open"})
	if err != nil {
		t.Fatal(err)
	}
	if restricted.Err != nil || open.Err != nil {
		t.Fatalf("errors: %+v / %+v", restricted.Err, open.Err)
	}
	// Figure 4 rewrites z to its mandated aggregate: schemas differ.
	if fmt.Sprint(restricted.Columns) == fmt.Sprint(open.Columns) {
		t.Fatalf("tenants produced identical schemas %v — policy isolation broken", open.Columns)
	}
	// Both compiled fresh: two tenants, two cache entries, zero hits yet.
	cs := srv.PlanCache().Stats()
	if cs.Misses != 2 || cs.Hits != 0 {
		t.Fatalf("cache after distinct-tenant queries: %+v", cs)
	}
}

// TestConcurrentClientsEquivalence is the acceptance property of the
// serving layer: N concurrent clients firing a repeated-statement workload
// at one server over one shared store each get answers identical to direct
// Session.Process, and the repeated statements hit the plan cache.
func TestConcurrentClientsEquivalence(t *testing.T) {
	store := testStore(t, 3000)
	srv, _, client := newTestServer(t, store)
	direct, err := paradise.Open(store,
		paradise.WithPolicy(paradise.Figure4Policy()),
		paradise.WithDefaultModule("ActionFilter"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	queries := []string{
		"SELECT x, y, z FROM d WHERE x > y AND z < 2",
		"SELECT x, y FROM d",
		"SELECT x, AVG(z) AS za FROM d GROUP BY x",
	}
	want := make([]*paradise.Outcome, len(queries))
	for i, sql := range queries {
		if want[i], err = direct.Process(ctx, sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}

	const clients, rounds = 8, 5
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (c + r) % len(queries)
				res, err := client.Query(ctx, QueryRequest{SQL: queries[i]})
				if err != nil {
					errs <- fmt.Errorf("client %d round %d: %w", c, r, err)
					return
				}
				if res.Err != nil {
					errs <- fmt.Errorf("client %d round %d: %+v", c, r, res.Err)
					return
				}
				if len(res.Rows) != len(want[i].Result.Rows) {
					errs <- fmt.Errorf("client %d round %d: %d rows, want %d",
						c, r, len(res.Rows), len(want[i].Result.Rows))
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Full-fidelity check once, serially, per query shape.
	for i, sql := range queries {
		res, err := client.Query(ctx, QueryRequest{SQL: sql})
		if err != nil {
			t.Fatal(err)
		}
		sameAsProcess(t, res, want[i])
	}

	cs := srv.PlanCache().Stats()
	if cs.Hits == 0 {
		t.Fatalf("repeated-statement workload never hit the plan cache: %+v", cs)
	}
	if cs.Misses > uint64(len(queries)) {
		t.Fatalf("more misses (%d) than distinct statements (%d): %+v", cs.Misses, len(queries), cs)
	}
	st := srv.Stats()
	if st.QueriesTotal != clients*rounds+int64(len(queries)) {
		t.Fatalf("queries_total = %d, want %d", st.QueriesTotal, clients*rounds+len(queries))
	}
	if st.InFlight != 0 {
		t.Fatalf("in_flight = %d after the workload drained", st.InFlight)
	}
}

// TestStatsEndpoint: the observability surface reports cache and traffic
// counters over HTTP.
func TestStatsEndpoint(t *testing.T) {
	_, _, client := newTestServer(t, testStore(t, 500))
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := client.Query(ctx, QueryRequest{SQL: "SELECT x, y FROM d"}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := client.ServerStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.QueriesTotal != 2 || st.Tenants != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PlanCache.Hits != 1 || st.PlanCache.Misses != 1 {
		t.Fatalf("plan cache stats = %+v", st.PlanCache)
	}
	if st.RowsStreamed == 0 {
		t.Fatalf("rows_streamed = 0 after streaming queries")
	}
}

// TestRequestDeadline: a request-level timeout cancels execution and the
// stream ends with a well-formed deadline error line.
func TestRequestDeadline(t *testing.T) {
	srv, err := New(Config{
		Store:            testStore(t, 200000),
		Tenants:          []TenantConfig{{Name: "default"}},
		MaxQueryDuration: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	client := &Client{Base: hs.URL, HTTP: hs.Client()}

	res, err := client.Query(context.Background(), QueryRequest{SQL: "SELECT * FROM d"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated && res.Err == nil {
		t.Fatalf("1ms deadline over 200k rows did not cut the query: %d rows, stats %+v",
			len(res.Rows), res.Stats)
	}
	if res.Err == nil || res.Err.Code != "deadline_exceeded" {
		t.Fatalf("error line = %+v, want deadline_exceeded", res.Err)
	}
}
