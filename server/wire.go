package server

import (
	"math"
	"strings"
	"time"

	paradise "paradise"
)

// QueryRequest is the body of POST /v1/query.
type QueryRequest struct {
	// Tenant selects the serving session; empty means "default".
	Tenant string `json:"tenant,omitempty"`
	// SQL is the statement to process (required).
	SQL string `json:"sql"`
	// Module selects the policy module; empty uses the tenant's default.
	Module string `json:"module,omitempty"`
	// TimeoutMs bounds the execution; 0 inherits the server's ceiling.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// ColumnInfo describes one output column on the schema line.
type ColumnInfo struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// Message is one NDJSON line of a query response — exactly one of the
// Type-specific field groups is populated:
//
//	{"type":"schema","columns":[{"name":"x","type":"double"}, ...]}
//	{"type":"row","values":[0.5, "alice", null, ...]}
//	{"type":"stats","rows":12,"raw_bytes":...,"egress_bytes":...,"reduction":...,"sim_ms":...}
//	{"type":"error","code":"policy_violation","message":"...","rule":"...","attributes":[...]}
//
// A successful stream is schema, rows, stats; a stream that dies mid-way
// (cancellation, shutdown, execution failure) ends with an error line
// instead of the stats trailer, so every response is well-formed NDJSON
// with an unambiguous final line. Pre-execution failures skip the stream
// entirely: the response is a non-2xx status whose body is a single error
// Message.
type Message struct {
	Type string `json:"type"`

	// Schema line.
	Columns []ColumnInfo `json:"columns,omitempty"`

	// Row line. Values are JSON-native: null, bool, number, string;
	// timestamps are RFC 3339 strings; non-finite floats are the strings
	// "NaN", "+Inf", "-Inf" (JSON has no spelling for them).
	Values []any `json:"values,omitempty"`

	// Stats trailer (the Figure 3 accounting of the drained chain).
	Rows        int         `json:"rows,omitempty"`
	RawBytes    int         `json:"raw_bytes,omitempty"`
	EgressBytes int         `json:"egress_bytes,omitempty"`
	Reduction   float64     `json:"reduction,omitempty"`
	SimMs       float64     `json:"sim_ms,omitempty"`
	Stages      []StageInfo `json:"stages,omitempty"`

	// Error object.
	Code       string   `json:"code,omitempty"`
	Message    string   `json:"message,omitempty"`
	Rule       string   `json:"rule,omitempty"`
	Attributes []string `json:"attributes,omitempty"`
	Module     string   `json:"module,omitempty"`
}

// StatsSnapshot is the body of GET /v1/stats: the serving layer's
// observability surface.
type StatsSnapshot struct {
	PlanCache    paradise.PlanCacheStats `json:"plan_cache"`
	Storage      paradise.StorageStats   `json:"storage"`
	Tenants      int                     `json:"tenants"`
	InFlight     int64                   `json:"in_flight"`
	QueriesTotal int64                   `json:"queries_total"`
	RowsStreamed int64                   `json:"rows_streamed"`
	ErrorsTotal  int64                   `json:"errors_total"`
	Draining     bool                    `json:"draining"`
	UptimeMs     int64                   `json:"uptime_ms"`
}

// StageInfo is one fragment of the stats trailer's per-stage breakdown:
// where the stage ran and its modeled (est_*) versus measured (out_*)
// output, so clients can audit the traffic model against the wire.
type StageInfo struct {
	Stage    int    `json:"stage"`
	Node     string `json:"node"`
	MinLevel string `json:"min_level"`
	Level    string `json:"level"`
	InRows   int    `json:"in_rows"`
	OutRows  int    `json:"out_rows"`
	OutBytes int    `json:"out_bytes"`
	EstRows  int64  `json:"est_rows,omitempty"`
	EstBytes int64  `json:"est_bytes,omitempty"`
}

// schemaMessage renders the schema line for a result relation.
func schemaMessage(rel *paradise.Relation) *Message {
	cols := make([]ColumnInfo, len(rel.Columns))
	for i, c := range rel.Columns {
		cols[i] = ColumnInfo{Name: c.Name, Type: strings.ToLower(c.Type.String())}
	}
	return &Message{Type: "schema", Columns: cols}
}

// rowValues encodes one row into JSON-native values.
func rowValues(r paradise.Row) []any {
	out := make([]any, len(r))
	for i, v := range r {
		out[i] = encodeValue(v)
	}
	return out
}

// encodeValue maps one typed cell to its JSON representation.
func encodeValue(v paradise.Value) any {
	switch v.Type() {
	case paradise.TypeBool:
		return v.AsBool()
	case paradise.TypeInt:
		return v.AsInt()
	case paradise.TypeFloat:
		f := v.AsFloat()
		switch {
		case math.IsNaN(f):
			return "NaN"
		case math.IsInf(f, 1):
			return "+Inf"
		case math.IsInf(f, -1):
			return "-Inf"
		}
		return f
	case paradise.TypeString:
		return v.AsString()
	case paradise.TypeTime:
		return v.AsTime().Format(time.RFC3339Nano)
	default: // NULL
		return nil
	}
}

// statsMessage renders the trailer from the drained chain's accounting.
func statsMessage(rows int, st *paradise.RunStats) *Message {
	stages := make([]StageInfo, len(st.Assignments))
	for i, a := range st.Assignments {
		stages[i] = StageInfo{
			Stage:    a.Fragment.Stage,
			Node:     a.Node.Name,
			MinLevel: a.Fragment.MinLevel.String(),
			Level:    a.Fragment.EffectiveLevel().String(),
			InRows:   a.InRows,
			OutRows:  a.OutRows,
			OutBytes: a.OutBytes,
			EstRows:  a.Fragment.EstRows,
			EstBytes: a.Fragment.EstBytes,
		}
	}
	return &Message{
		Type:        "stats",
		Rows:        rows,
		RawBytes:    st.RawBytes,
		EgressBytes: st.EgressBytes,
		Reduction:   st.Reduction(),
		SimMs:       float64(st.SimTime) / float64(time.Millisecond),
		Stages:      stages,
	}
}
