package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client is a minimal consumer of the serving API, shared by cmd/loadgen
// and the tests. It decodes numbers with json.Number, so int64 values
// round-trip without float truncation.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8780".
	Base string
	// HTTP is the transport; nil uses http.DefaultClient.
	HTTP *http.Client
}

// QueryResult is a fully drained query response.
type QueryResult struct {
	// Status is the HTTP status code.
	Status int
	// Columns is the schema line (nil when the request failed before
	// streaming).
	Columns []ColumnInfo
	// Rows holds the decoded row values, one slice per row line.
	Rows [][]any
	// Stats is the trailer; nil when the stream ended in an error.
	Stats *Message
	// Err is the structured error object, from the error body of a non-2xx
	// response or from a final mid-stream error line; nil on full success.
	Err *Message
	// Truncated reports a 2xx stream that ended with an error line instead
	// of the stats trailer.
	Truncated bool
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Query posts one statement and drains the NDJSON stream.
func (c *Client) Query(ctx context.Context, req QueryRequest) (*QueryResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(c.Base, "/")+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()

	res := &QueryResult{Status: resp.StatusCode}
	if resp.StatusCode != http.StatusOK {
		var msg Message
		if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil {
			return nil, fmt.Errorf("server: status %d with unreadable body: %w", resp.StatusCode, err)
		}
		res.Err = &msg
		return res, nil
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var msg Message
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.UseNumber()
		if err := dec.Decode(&msg); err != nil {
			return nil, fmt.Errorf("server: malformed NDJSON line %q: %w", line, err)
		}
		switch msg.Type {
		case "schema":
			res.Columns = msg.Columns
		case "row":
			res.Rows = append(res.Rows, msg.Values)
		case "stats":
			m := msg
			res.Stats = &m
		case "error":
			m := msg
			res.Err = &m
			res.Truncated = true
		default:
			return nil, fmt.Errorf("server: unknown NDJSON line type %q", msg.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if res.Stats == nil && res.Err == nil {
		return nil, fmt.Errorf("server: stream ended without stats trailer or error line")
	}
	return res, nil
}

// ServerStats fetches GET /v1/stats.
func (c *Client) ServerStats(ctx context.Context) (*StatsSnapshot, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(c.Base, "/")+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("server: stats status %d: %s", resp.StatusCode, b)
	}
	var st StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}
