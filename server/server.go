package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	paradise "paradise"
)

// flushEvery bounds how many row lines may sit in the response buffer
// before an explicit flush: small enough that slow consumers see steady
// progress, large enough that the syscall cost disappears in the stream.
const flushEvery = 64

// Config assembles a Server.
type Config struct {
	// Store is the integrated database all tenants query (required).
	Store *paradise.Store
	// Tenants declares the serving sessions; at least one is required.
	// Requests that name no tenant go to "default".
	Tenants []TenantConfig
	// PlanCacheSize bounds the shared prepared-plan cache (<= 0 selects
	// the library default). The cache is shared across every tenant:
	// policy fingerprints in the keys keep their entries apart.
	PlanCacheSize int
	// Parallelism is the per-query worker count (0 = all CPUs).
	Parallelism int
	// MaxQueryDuration is the execution ceiling per request; requests may
	// ask for less via timeout_ms but never more. 0 means no ceiling.
	MaxQueryDuration time.Duration
}

// TenantConfig declares one serving session.
type TenantConfig struct {
	// Name identifies the tenant in requests ("default" is the implicit
	// target of requests that name none).
	Name string
	// Policy is the tenant's privacy policy; nil serves unrestricted.
	Policy *paradise.Policy
	// DefaultModule picks the policy module for requests that name none.
	DefaultModule string
	// Journal, when set, records every processed query.
	Journal *paradise.Journal
	// Anon configures result postprocessing.
	Anon paradise.AnonConfig
}

// tenant is one live serving session.
type tenant struct {
	name string
	sess *paradise.Session
}

// Server serves the privacy-aware query processor over HTTP. All tenants
// share one Store and one prepared-plan cache; every query runs on its own
// goroutine through a Session (safe for concurrent use), so the number of
// concurrent queries is bounded by the HTTP layer, not the engine.
type Server struct {
	tenants map[string]*tenant
	store   *paradise.Store
	cache   *paradise.PlanCache
	mux     *http.ServeMux
	maxDur  time.Duration
	start   time.Time

	// baseCtx parents every request context; kill cancels it when a drain
	// deadline expires, which ends in-flight streams with an error line.
	baseCtx context.Context
	kill    context.CancelFunc

	draining atomic.Bool
	wg       sync.WaitGroup

	inFlight     atomic.Int64
	queriesTotal atomic.Int64
	rowsStreamed atomic.Int64
	errorsTotal  atomic.Int64
}

// New validates the configuration, opens one session per tenant over the
// shared store and cache, and returns the ready-to-serve Server.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("server: nil store")
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("server: no tenants configured")
	}
	baseCtx, kill := context.WithCancel(context.Background())
	s := &Server{
		tenants: make(map[string]*tenant, len(cfg.Tenants)),
		store:   cfg.Store,
		cache:   paradise.NewPlanCache(cfg.PlanCacheSize),
		mux:     http.NewServeMux(),
		maxDur:  cfg.MaxQueryDuration,
		start:   time.Now(),
		baseCtx: baseCtx,
		kill:    kill,
	}
	for _, tc := range cfg.Tenants {
		if tc.Name == "" {
			kill()
			return nil, fmt.Errorf("server: tenant without a name")
		}
		if _, dup := s.tenants[tc.Name]; dup {
			kill()
			return nil, fmt.Errorf("server: duplicate tenant %q", tc.Name)
		}
		opts := []paradise.Option{
			paradise.WithPlanCache(s.cache),
			paradise.WithParallelism(cfg.Parallelism),
		}
		if tc.Policy != nil {
			opts = append(opts, paradise.WithPolicy(tc.Policy))
		}
		if tc.DefaultModule != "" {
			opts = append(opts, paradise.WithDefaultModule(tc.DefaultModule))
		}
		if tc.Journal != nil {
			opts = append(opts, paradise.WithJournal(tc.Journal))
		}
		if tc.Anon.Method != "" && tc.Anon.Method != paradise.AnonNone {
			opts = append(opts, paradise.WithAnonymization(tc.Anon))
		}
		sess, err := paradise.Open(cfg.Store, opts...)
		if err != nil {
			kill()
			return nil, fmt.Errorf("server: open tenant %q: %w", tc.Name, err)
		}
		s.tenants[tc.Name] = &tenant{name: tc.Name, sess: sess}
	}
	s.mux.HandleFunc("/v1/query", s.handleQuery)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// PlanCache exposes the shared prepared-plan cache (for stats and tests).
func (s *Server) PlanCache() *paradise.PlanCache { return s.cache }

// Stats snapshots the serving metrics.
func (s *Server) Stats() StatsSnapshot {
	return StatsSnapshot{
		PlanCache:    s.cache.Stats(),
		Storage:      s.store.StorageStats(),
		Tenants:      len(s.tenants),
		InFlight:     s.inFlight.Load(),
		QueriesTotal: s.queriesTotal.Load(),
		RowsStreamed: s.rowsStreamed.Load(),
		ErrorsTotal:  s.errorsTotal.Load(),
		Draining:     s.draining.Load(),
		UptimeMs:     time.Since(s.start).Milliseconds(),
	}
}

// Shutdown drains the server: new queries are refused with 503
// immediately; in-flight queries may finish until ctx expires, after which
// their contexts are cancelled — each open stream then delivers a final
// error line (a well-formed truncated response) and unwinds. Shutdown
// returns once every in-flight query has unwound; the error is ctx.Err()
// when the deadline forced a truncation, nil on a clean drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.kill()
		<-done
		return ctx.Err()
	}
}

// handleQuery serves POST /v1/query: resolve the tenant, open a streaming
// cursor under the request-scoped context, stream NDJSON.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed,
			&Message{Type: "error", Code: "method_not_allowed", Message: "use POST"})
		return
	}
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable,
			&Message{Type: "error", Code: "draining", Message: "server is shutting down"})
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest,
			&Message{Type: "error", Code: "bad_request", Message: "invalid JSON body: " + err.Error()})
		return
	}
	if req.SQL == "" {
		s.writeError(w, http.StatusUnprocessableEntity,
			&Message{Type: "error", Code: "usage", Message: "missing sql"})
		return
	}
	name := req.Tenant
	if name == "" {
		name = "default"
	}
	tn, ok := s.tenants[name]
	if !ok {
		s.writeError(w, http.StatusNotFound,
			&Message{Type: "error", Code: "unknown_tenant", Message: fmt.Sprintf("no tenant %q", name)})
		return
	}

	// The query context: cancelled by the client disconnecting (r.Context),
	// by a drain deadline expiring (baseCtx via AfterFunc), or by the
	// deadline — whichever comes first. Cancellation reaches the storage
	// scans within one batch.
	s.wg.Add(1)
	defer s.wg.Done()
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()
	if d := s.queryDeadline(req.TimeoutMs); d > 0 {
		var cancelT context.CancelFunc
		ctx, cancelT = context.WithTimeout(ctx, d)
		defer cancelT()
	}

	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	s.queriesTotal.Add(1)

	var opts []paradise.QueryOption
	if req.Module != "" {
		opts = append(opts, paradise.Module(req.Module))
	}
	cur, err := tn.sess.Query(ctx, req.SQL, opts...)
	if err != nil {
		s.errorsTotal.Add(1)
		status, msg := errorMessage(err)
		s.writeError(w, status, msg)
		return
	}
	defer cur.Close()
	s.streamCursor(w, cur)
}

// streamCursor writes the NDJSON body: schema, rows, then either the stats
// trailer or a final error line. Every write path leaves the response a
// sequence of complete JSON lines.
func (s *Server) streamCursor(w http.ResponseWriter, cur *paradise.Cursor) {
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)

	if err := enc.Encode(schemaMessage(cur.Schema())); err != nil {
		return // client is gone; nothing sensible left to write
	}
	flush()

	rows := 0
	for cur.Next() {
		if err := enc.Encode(&Message{Type: "row", Values: rowValues(cur.Row())}); err != nil {
			s.rowsStreamed.Add(int64(rows))
			return
		}
		rows++
		if rows%flushEvery == 0 {
			flush()
		}
	}
	s.rowsStreamed.Add(int64(rows))

	if err := cur.Err(); err != nil {
		// Mid-stream failure (cancellation, drain deadline, execution
		// error): the stream ends with an error line, not a trailer.
		s.errorsTotal.Add(1)
		_, msg := errorMessage(err)
		enc.Encode(msg)
		flush()
		return
	}
	stats, err := cur.Stats()
	if err != nil {
		s.errorsTotal.Add(1)
		_, msg := errorMessage(err)
		enc.Encode(msg)
		flush()
		return
	}
	enc.Encode(statsMessage(rows, stats))
	flush()
}

// queryDeadline resolves the effective execution ceiling for one request:
// the requested timeout clamped to the server's maximum.
func (s *Server) queryDeadline(timeoutMs int) time.Duration {
	req := time.Duration(timeoutMs) * time.Millisecond
	switch {
	case req <= 0:
		return s.maxDur
	case s.maxDur > 0 && req > s.maxDur:
		return s.maxDur
	default:
		return req
	}
}

// handleStats serves GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed,
			&Message{Type: "error", Code: "method_not_allowed", Message: "use GET"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

// handleHealth serves GET /healthz: 200 while serving, 503 while draining.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// writeError sends a single-object JSON error response.
func (s *Server) writeError(w http.ResponseWriter, status int, msg *Message) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(msg)
}

// errorMessage maps a facade error onto (status, structured body). The
// status matters for pre-execution failures; mid-stream the body rides as
// the final NDJSON line of an already-200 response.
func errorMessage(err error) (int, *Message) {
	var v *paradise.PolicyViolation
	switch {
	case errors.As(err, &v):
		return http.StatusForbidden, &Message{
			Type: "error", Code: "policy_violation", Message: err.Error(),
			Rule: v.Rule, Attributes: v.Columns, Module: v.Module,
		}
	case errors.Is(err, paradise.ErrPolicyViolation):
		return http.StatusForbidden, &Message{Type: "error", Code: "policy_violation", Message: err.Error()}
	case errors.Is(err, paradise.ErrParse):
		return http.StatusBadRequest, &Message{Type: "error", Code: "parse_error", Message: err.Error()}
	case errors.Is(err, paradise.ErrUnsupported):
		return http.StatusNotImplemented, &Message{Type: "error", Code: "unsupported", Message: err.Error()}
	case errors.Is(err, paradise.ErrUsage):
		return http.StatusUnprocessableEntity, &Message{Type: "error", Code: "usage", Message: err.Error()}
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, &Message{Type: "error", Code: "deadline_exceeded", Message: err.Error()}
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, &Message{Type: "error", Code: "canceled", Message: err.Error()}
	default:
		return http.StatusInternalServerError, &Message{Type: "error", Code: "internal", Message: err.Error()}
	}
}
