package paradise_test

import (
	"context"
	"testing"

	paradise "paradise"
)

// placementStore is testStore plus a small rooms relation whose join key
// fans out: every d row matches several rooms rows, so the join's output
// is larger than its input — the shape where cost-based placement departs
// from the fixed MinLevel policy.
func placementStore(t testing.TB) *paradise.Store {
	t.Helper()
	store := testStore(t, 400)
	rooms := store.Create(paradise.NewRelation("rooms",
		paradise.Col("x", paradise.TypeFloat),
		paradise.Col("label", paradise.TypeString),
	))
	labels := []string{"kitchen", "bath", "hall", "bed", "living"}
	rows := make(paradise.Rows, 0, 8*len(labels))
	for x := 0; x < 8; x++ { // d.x takes values 0..7
		for _, l := range labels {
			rows = append(rows, paradise.Row{
				paradise.Float(float64(x)),
				paradise.String(l),
			})
		}
	}
	if err := rooms.Append(rows...); err != nil {
		t.Fatal(err)
	}
	return store
}

// placementCorpus covers every fragment shape the decomposition produces:
// pure scans, sensor/appliance filter splits, aggregation, DISTINCT,
// ORDER BY/LIMIT, window evaluation, derived blocks, and fan-out joins.
var placementCorpus = []string{
	"SELECT x, y FROM d",
	"SELECT * FROM d WHERE z < 2",
	"SELECT x, y FROM d WHERE x > y AND z < 2.5",
	"SELECT x, AVG(z) AS za, COUNT(*) AS n FROM d GROUP BY x HAVING COUNT(*) > 3",
	"SELECT DISTINCT x FROM d",
	"SELECT x, z FROM d ORDER BY z DESC, x, t LIMIT 5",
	"SELECT x, SUM(z) OVER (PARTITION BY x ORDER BY t) AS s FROM d WHERE t < 5000",
	"SELECT s FROM (SELECT x + y AS s, z FROM d WHERE z < 2) WHERE s > 1",
	"SELECT x, COUNT(*) AS n FROM d WHERE t > 100 GROUP BY x ORDER BY x",
	"SELECT d.x, rooms.label FROM d JOIN rooms ON d.x = rooms.x",
	"SELECT d.x, d.y, d.z, d.t, rooms.label FROM d JOIN rooms ON d.x = rooms.x",
	"SELECT d.x, rooms.label FROM d JOIN rooms ON d.x = rooms.x WHERE d.z < 1",
	"SELECT d.x, rooms.label FROM d JOIN rooms ON d.x = rooms.x ORDER BY rooms.label, d.t LIMIT 7",
}

// openPlacement opens a session over the store with the given placement
// mode and parallelism.
func openPlacement(t *testing.T, store *paradise.Store, costBased bool, par int) *paradise.Session {
	t.Helper()
	sess, err := paradise.Open(store,
		paradise.WithCostBasedPlacement(costBased),
		paradise.WithParallelism(par),
	)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

// samePlacementInvariantStats compares the Figure 3 quantities that
// placement must NOT change: raw and egress bytes and the per-stage
// output accounting. Node assignment and per-link attribution MAY differ
// — that is what the placement search moves.
func samePlacementInvariantStats(t *testing.T, sql string, got, want *paradise.RunStats) {
	t.Helper()
	if got.RawBytes != want.RawBytes || got.EgressBytes != want.EgressBytes {
		t.Fatalf("%s: raw/egress: got %d/%d, want %d/%d",
			sql, got.RawBytes, got.EgressBytes, want.RawBytes, want.EgressBytes)
	}
	if len(got.Assignments) != len(want.Assignments) {
		t.Fatalf("%s: stages: got %d, want %d", sql, len(got.Assignments), len(want.Assignments))
	}
	for i := range got.Assignments {
		g, w := got.Assignments[i], want.Assignments[i]
		if g.OutRows != w.OutRows || g.OutBytes != w.OutBytes {
			t.Fatalf("%s: stage %d output: got %d rows/%d bytes, want %d rows/%d bytes",
				sql, i+1, g.OutRows, g.OutBytes, w.OutRows, w.OutBytes)
		}
	}
}

// TestPlacementEquivalence is the placement soundness suite: for every
// corpus shape, cost-based placement returns exactly the rows (values and
// order) and the same raw/egress/per-stage byte accounting as the fixed
// MinLevel baseline — only which node runs a stage (and hence per-link
// attribution) may move. The placed level never sinks below the
// privacy/capability floor, and the chain stays monotone.
func TestPlacementEquivalence(t *testing.T) {
	store := placementStore(t)
	fixed := openPlacement(t, store, false, 1)
	cost := openPlacement(t, store, true, 1)

	for _, sql := range placementCorpus {
		want, err := fixed.Process(context.Background(), sql)
		if err != nil {
			t.Fatalf("%s (fixed): %v", sql, err)
		}
		got, err := cost.Process(context.Background(), sql)
		if err != nil {
			t.Fatalf("%s (cost): %v", sql, err)
		}
		sameRows(t, got.Result.Rows, want.Result.Rows)
		samePlacementInvariantStats(t, sql, got.Net, want.Net)

		prev := 0
		for _, a := range got.Net.Assignments {
			f := a.Fragment
			if f.Level != 0 && f.Level < f.MinLevel {
				t.Fatalf("%s: Q%d placed at %s below floor %s", sql, f.Stage, f.Level, f.MinLevel)
			}
			if int(a.Node.Level) < int(f.MinLevel) {
				t.Fatalf("%s: Q%d ran on %s (level %d) below floor %s",
					sql, f.Stage, a.Node.Name, a.Node.Level, f.MinLevel)
			}
			if int(f.EffectiveLevel()) < prev {
				t.Fatalf("%s: placement regresses at Q%d", sql, f.Stage)
			}
			prev = int(f.EffectiveLevel())
		}
	}
}

// TestPlacementEquivalenceParallel re-runs the suite through the morsel
// exchange: a parallel cost-based session must be row- and stats-identical
// (node assignments included) to the serial cost-based session.
func TestPlacementEquivalenceParallel(t *testing.T) {
	store := placementStore(t)
	serial := openPlacement(t, store, true, 1)
	parallel := openPlacement(t, store, true, 4)

	for _, sql := range placementCorpus {
		want, err := serial.Process(context.Background(), sql)
		if err != nil {
			t.Fatalf("%s (serial): %v", sql, err)
		}
		got, err := parallel.Process(context.Background(), sql)
		if err != nil {
			t.Fatalf("%s (parallel): %v", sql, err)
		}
		sameRows(t, got.Result.Rows, want.Result.Rows)
		sameStats(t, got.Net, want.Net)
	}
}

// TestCostPlacementReducesLinkBytes pins the point of the search: on
// expanding shapes (fan-out joins) the cost-based placement ships fewer
// total bytes over the chain's links than the fixed MinLevel policy, with
// rows and egress identical (checked by TestPlacementEquivalence above).
func TestCostPlacementReducesLinkBytes(t *testing.T) {
	store := placementStore(t)
	fixed := openPlacement(t, store, false, 1)
	cost := openPlacement(t, store, true, 1)

	linkBytes := func(st *paradise.RunStats) int {
		total := 0
		for _, h := range st.Traffic {
			total += h.Bytes
		}
		return total
	}

	expanding := []string{
		"SELECT d.x, rooms.label FROM d JOIN rooms ON d.x = rooms.x",
		"SELECT d.x, d.y, d.z, d.t, rooms.label FROM d JOIN rooms ON d.x = rooms.x",
	}
	reduced := 0
	for _, sql := range expanding {
		f, err := fixed.Process(context.Background(), sql)
		if err != nil {
			t.Fatalf("%s (fixed): %v", sql, err)
		}
		c, err := cost.Process(context.Background(), sql)
		if err != nil {
			t.Fatalf("%s (cost): %v", sql, err)
		}
		fb, cb := linkBytes(f.Net), linkBytes(c.Net)
		t.Logf("%s: fixed %d bytes on the wire, cost-based %d", sql, fb, cb)
		if cb < fb {
			reduced++
		} else if cb > fb {
			t.Fatalf("%s: cost-based placement INCREASED wire bytes: %d > %d", sql, cb, fb)
		}
	}
	if reduced < 2 {
		t.Fatalf("expected both expanding shapes to ship fewer bytes, got %d of %d", reduced, len(expanding))
	}

	// A shrinking join (the filter cuts the fan-out below its input) must
	// NOT be hoisted: the model keeps it at the floor and the run is
	// byte-identical to the fixed policy.
	shrinking := "SELECT d.x, rooms.label FROM d JOIN rooms ON d.x = rooms.x WHERE d.z < 1"
	f, err := fixed.Process(context.Background(), shrinking)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cost.Process(context.Background(), shrinking)
	if err != nil {
		t.Fatal(err)
	}
	if linkBytes(f.Net) != linkBytes(c.Net) {
		t.Fatalf("shrinking join moved: fixed %d bytes, cost-based %d",
			linkBytes(f.Net), linkBytes(c.Net))
	}
}
