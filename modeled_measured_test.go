package paradise_test

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the modeled-vs-measured golden table")

// TestModeledVsMeasured drives every corpus shape through the chain and
// compares the cardinality model's per-stage output (EstRows/EstBytes)
// against the measured wire accounting (OutRows/OutBytes):
//
//   - a predicate-free sensor scan is EXACT — the statistics maintain row
//     count and wire bytes incrementally, so the model has the truth;
//   - every other stage must stay within a fixed multiplicative error
//     band — the uniformity assumptions (equality 1/NDV, range
//     interpolation, join 1/max-NDV) hold approximately on this data;
//   - the full est-vs-measured table is pinned as a golden snapshot
//     (testdata/modeled_vs_measured.golden, regenerate with -update), so
//     any model drift shows up as a reviewable diff.
func TestModeledVsMeasured(t *testing.T) {
	const (
		ratioLo = 0.2
		ratioHi = 5.0
	)
	store := placementStore(t)
	sess := openPlacement(t, store, true, 1)

	var b strings.Builder
	for _, sql := range placementCorpus {
		out, err := sess.Process(context.Background(), sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		fmt.Fprintf(&b, "query: %s\n", sql)
		for _, a := range out.Net.Assignments {
			f := a.Fragment
			if f.EstRows < 0 || f.EstBytes < 0 {
				t.Fatalf("%s: Q%d negative estimate %d rows / %d bytes",
					sql, f.Stage, f.EstRows, f.EstBytes)
			}
			ratio := 0.0
			if a.OutBytes > 0 {
				ratio = float64(f.EstBytes) / float64(a.OutBytes)
			}
			fmt.Fprintf(&b, "  Q%d %-28s est=%d rows/%d bytes  measured=%d rows/%d bytes  ratio=%.2f\n",
				f.Stage, f.Description, f.EstRows, f.EstBytes, a.OutRows, a.OutBytes, ratio)

			if f.Description == "sensor scan" {
				// No predicate: the model must be exact.
				if f.EstRows != int64(a.OutRows) || f.EstBytes != int64(a.OutBytes) {
					t.Errorf("%s: Q%d predicate-free scan not exact: est %d rows/%d bytes, measured %d/%d",
						sql, f.Stage, f.EstRows, f.EstBytes, a.OutRows, a.OutBytes)
				}
				continue
			}
			if a.OutBytes > 0 && (ratio < ratioLo || ratio > ratioHi) {
				t.Errorf("%s: Q%d (%s) modeled bytes off by %.2fx (est %d, measured %d)",
					sql, f.Stage, f.Description, ratio, f.EstBytes, a.OutBytes)
			}
		}
	}

	got := b.String()
	path := filepath.Join("testdata", "modeled_vs_measured.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden table (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("modeled-vs-measured table changed (re-run with -update if intended):\ngot:\n%s\nwant:\n%s", got, want)
	}
}
