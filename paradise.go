package paradise

import (
	"context"
	"fmt"
	"strings"

	"paradise/internal/core"
	"paradise/internal/network"
	"paradise/internal/plan"
	"paradise/internal/policy"
	"paradise/internal/recognition"
	"paradise/internal/sqlparser"
)

// Option configures a Session at Open time.
type Option func(*sessionConfig)

type sessionConfig struct {
	policy   *Policy
	topo     *Topology
	rewrite  RewriteOptions
	anon     AnonConfig
	journal  *Journal
	maxLoss  float64
	defMod   string
	parallel int // worker goroutines per pipeline; <= 0 means GOMAXPROCS
	cache    *PlanCache
	explicit bool // a policy was supplied explicitly
	fixed    bool // disable cost-based fragment placement
	reorder  bool // enable cost-based join reordering
}

// WithPolicy sets the user's privacy policy. Without it the session runs
// unrestricted: an allow-all policy with a single module ("unrestricted")
// is generated over the store's catalog, so queries pass through the
// processor — fragmentation, chain simulation and accounting included —
// without policy transformations.
func WithPolicy(p *Policy) Option {
	return func(c *sessionConfig) { c.policy = p; c.explicit = true }
}

// WithTopology sets the peer chain; the default is DefaultApartment().
func WithTopology(t *Topology) Option {
	return func(c *sessionConfig) { c.topo = t }
}

// WithRewriteOptions tunes the preprocessor (table substitutions).
func WithRewriteOptions(o RewriteOptions) Option {
	return func(c *sessionConfig) { c.rewrite = o }
}

// WithAnonymization configures the postprocessing stage (§3.2). Note that
// anonymization needs the whole result, so cursors over anonymized queries
// materialize on the first pull.
func WithAnonymization(a AnonConfig) Option {
	return func(c *sessionConfig) { c.anon = a }
}

// WithJournal records an audit entry for every processed query, including
// denials.
func WithJournal(j *Journal) Option {
	return func(c *sessionConfig) { c.journal = j }
}

// WithInfoLossBudget enables the §3.1 satisfaction check: when the
// rewritten query's answer diverges from the original by more than this KL
// budget (per shared numeric column, max), the outcome is flagged
// unsatisfactory.
func WithInfoLossBudget(budget float64) Option {
	return func(c *sessionConfig) { c.maxLoss = budget }
}

// WithDefaultModule sets the policy module queries run under when a call
// does not pass Module(...). Without it, a policy with exactly one module
// uses that module and a multi-module policy requires Module on every call.
func WithDefaultModule(id string) Option {
	return func(c *sessionConfig) { c.defMod = id }
}

// WithParallelism sets how many worker goroutines each query pipeline may
// use for morsel-driven parallel execution of its streamable operators
// (scans, filters, projections, join probes, DISTINCT, GROUP BY
// partitioning). The default — also chosen by any n <= 0 — is
// runtime.GOMAXPROCS(0), i.e. all available CPUs; n = 1 keeps execution
// serial.
//
// Parallelism is purely a performance knob: the engine's exchange re-emits
// worker output in morsel order, so rows, row order, and the Figure 3
// row/byte accounting are identical to serial execution, and a cancelled
// context still stops the storage scans within one batch per worker.
// Queries whose plan requires streaming order economics (a LIMIT with no
// pipeline breaker below it) keep the serial pipeline regardless, which
// preserves their O(limit + batch) storage-read guarantee.
func WithParallelism(n int) Option {
	return func(c *sessionConfig) { c.parallel = n }
}

// WithPlanCache attaches a prepared-plan cache to the session: the
// per-statement compilation pipeline (policy rewrite, lowering to the plan
// IR, provenance annotation, vertical fragmentation) runs once per
// statement shape and is reused — read-only — by every later query that
// parses to the same normalized SQL under the same policy module. Entries
// are keyed by the policy's fingerprint and the store's schema epoch too,
// so one cache can safely be shared by many sessions over one store (the
// serving layer does exactly that, one cache across all tenants), and any
// DDL on the store invalidates every earlier entry.
//
// Caching changes performance only: rows, row order, transfer stats and
// audit journaling of a cached execution are identical to an uncached one.
// Denied or malformed statements are never cached. Nil is a valid argument
// and leaves caching off (the default).
func WithPlanCache(c *PlanCache) Option {
	return func(cfg *sessionConfig) { cfg.cache = c }
}

// WithCostBasedPlacement toggles the cost-based fragment placement
// search (on by default). When on, each fragment of the vertical
// decomposition runs at the capability rung minimizing the modeled bytes
// crossing level boundaries — a stage that expands its input (a fan-out
// join, a widening window) is hoisted so its smaller input travels
// instead of its larger output. The fragment's MinLevel stays a hard
// floor: privacy and capability are never traded for traffic, and the
// search only ever moves a stage up the ladder. Ties resolve to the
// lowest rung, so whenever the model shows no strict gain the run is
// byte-identical to the fixed MinLevel policy (which false restores).
//
// Placement changes which node executes a stage and hence per-link byte
// attribution and simulated time; rows, row order, raw and egress bytes
// are identical either way.
func WithCostBasedPlacement(on bool) Option {
	return func(c *sessionConfig) { c.fixed = !on }
}

// WithJoinReordering toggles greedy cost-based join reordering (off by
// default). When on, inner equi-join clusters of three or more base
// relations are rebuilt smallest-modeled-intermediate-first before
// fragmentation. The transformation is conservative: LEFT and cross
// joins, non-equi conjuncts, derived-table leaves and clusters under a
// SELECT * are never reordered, and within an admissible cluster the
// result is row-identical to the written order.
func WithJoinReordering(on bool) Option {
	return func(c *sessionConfig) { c.reorder = on }
}

// QueryOption configures one Query/Process call.
type QueryOption func(*queryConfig)

type queryConfig struct {
	module string
}

// Module selects the policy module the query is checked against.
func Module(id string) QueryOption {
	return func(c *queryConfig) { c.module = id }
}

// Session is a handle on the privacy-aware query processor over one store.
// It is the supported entry point of this library: queries go through the
// full Figure 2 pipeline — policy rewrite, vertical fragmentation,
// simulated chain execution, optional anonymization — and come back either
// materialized (Process) or as a streaming cursor (Query).
//
// A Session is safe for concurrent use; the store may keep ingesting rows
// while queries run.
type Session struct {
	proc  *core.Processor
	store *Store
	topo  *Topology
	def   string
}

// Open assembles a Session over the store. Without options the session
// uses the Figure 3 apartment topology and an allow-all policy (see
// WithPolicy).
func Open(store *Store, opts ...Option) (*Session, error) {
	if store == nil {
		return nil, fmt.Errorf("%w: nil store", ErrUsage)
	}
	var cfg sessionConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.policy == nil {
		cfg.policy = allowAllPolicy(store)
	}
	if cfg.topo == nil {
		cfg.topo = network.DefaultApartment()
	}
	proc, err := core.New(core.Config{
		Store:          store,
		Policy:         cfg.policy,
		Topology:       cfg.topo,
		Rewrite:        cfg.rewrite,
		Anon:           cfg.anon,
		MaxInfoLoss:    cfg.maxLoss,
		Journal:        cfg.journal,
		Parallelism:    cfg.parallel,
		Cache:          cfg.cache,
		FixedPlacement: cfg.fixed,
		ReorderJoins:   cfg.reorder,
	})
	if err != nil {
		return nil, wrapErr(err)
	}
	def := cfg.defMod
	if def == "" && len(cfg.policy.Modules) == 1 {
		def = cfg.policy.Modules[0].ID
	}
	return &Session{proc: proc, store: store, topo: cfg.topo, def: def}, nil
}

// allowAllPolicy builds the unrestricted default: one module permitting
// every attribute of every relation in the store.
func allowAllPolicy(store *Store) *Policy {
	mod := &policy.Module{ID: "unrestricted"}
	seen := map[string]bool{}
	for _, name := range store.Names() {
		t, err := store.Table(name)
		if err != nil {
			continue
		}
		for _, c := range t.Schema().Columns {
			lower := strings.ToLower(c.Name)
			if seen[lower] {
				continue
			}
			seen[lower] = true
			mod.Attributes = append(mod.Attributes, &policy.Attribute{Name: lower, Allow: true})
		}
	}
	return &policy.Policy{Modules: []*policy.Module{mod}}
}

// module resolves the policy module for one call.
func (s *Session) module(q queryConfig) (string, error) {
	if q.module != "" {
		return q.module, nil
	}
	if s.def != "" {
		return s.def, nil
	}
	return "", fmt.Errorf("%w: the policy has several modules; pass paradise.Module(id)", ErrUsage)
}

// Process runs the full pipeline for a SQL query and materializes the
// complete audit trail: rewrite, fragment plan, transfer stats, result.
// The execution is bound to ctx with cancellation checked per batch, down
// to the storage scans.
func (s *Session) Process(ctx context.Context, sql string, opts ...QueryOption) (*Outcome, error) {
	var q queryConfig
	for _, o := range opts {
		o(&q)
	}
	mod, err := s.module(q)
	if err != nil {
		return nil, err
	}
	sel, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, wrapErr(err)
	}
	out, err := s.proc.ProcessSelect(ctx, sel, mod)
	if err != nil {
		return nil, s.wrapModErr(err, mod)
	}
	return out, nil
}

// Query runs the same pipeline but returns a streaming cursor over the
// result instead of materializing it: rows are pulled batch-at-a-time
// through the fragment chain, so consuming n rows of a large result costs
// O(n + batch) intermediate memory, and cancelling ctx stops the
// underlying storage scans within one batch. The caller must Close the
// cursor (idempotent); Close finalizes the Figure 3 accounting, which is
// then row- and stats-identical to Process on the same query.
func (s *Session) Query(ctx context.Context, sql string, opts ...QueryOption) (*Cursor, error) {
	var q queryConfig
	for _, o := range opts {
		o(&q)
	}
	mod, err := s.module(q)
	if err != nil {
		return nil, err
	}
	sel, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, wrapErr(err)
	}
	st, err := s.proc.OpenSelect(ctx, sel, mod)
	if err != nil {
		return nil, s.wrapModErr(err, mod)
	}
	return &Cursor{stream: st, session: s, module: mod}, nil
}

// ProcessPipeline runs the §4.2 end-to-end flow for an analysis pipeline
// (an R-style analysis with an embedded SQL part): the SQLable part is
// privacy-rewritten, fragmented and executed down the chain; the residual
// runs cloud-side against the shipped d′.
func (s *Session) ProcessPipeline(ctx context.Context, pl recognition.Node, opts ...QueryOption) (*PipelineOutcome, error) {
	var q queryConfig
	for _, o := range opts {
		o(&q)
	}
	mod, err := s.module(q)
	if err != nil {
		return nil, err
	}
	out, err := s.proc.ProcessPipeline(ctx, pl, mod)
	if err != nil {
		return nil, s.wrapModErr(err, mod)
	}
	return out, nil
}

// ResidualRisk audits a released outcome against a violating query: can
// the attacker still compute it from d′? (The open problem the paper
// closes with; the check is conservative in the attacker's favour.)
func (s *Session) ResidualRisk(violatingSQL string, out *Outcome) (*Verdict, error) {
	v, err := s.proc.ResidualRisk(violatingSQL, out)
	if err != nil {
		return nil, wrapErr(err)
	}
	return v, nil
}

// RunNaive simulates the baseline without PArADISE: the raw base data
// ships all the way to the cloud, which executes the whole query there.
// Useful to quantify what the privacy-aware execution saves.
func (s *Session) RunNaive(ctx context.Context, sql string) (*RunStats, error) {
	sel, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, wrapErr(err)
	}
	root, err := plan.FromAST(sel)
	if err != nil {
		return nil, wrapErr(err)
	}
	stats, err := network.RunNaive(ctx, s.topo, root, s.store,
		network.WithParallelism(s.proc.Parallelism()))
	if err != nil {
		return nil, wrapErr(err)
	}
	return stats, nil
}

// Journal returns the configured audit journal, or nil.
func (s *Session) Journal() *Journal { return s.proc.Journal() }

// PlanCache returns the session's prepared-plan cache, or nil when the
// session was opened without WithPlanCache.
func (s *Session) PlanCache() *PlanCache { return s.proc.Cache() }

// Store returns the session's database.
func (s *Session) Store() *Store { return s.store }

// Topology returns the session's peer chain.
func (s *Session) Topology() *Topology { return s.topo }
