package paradise_test

import (
	"context"
	"testing"

	paradise "paradise"
)

// TestPlanCacheExecutionEquivalence is the facade-level correctness
// property of the prepared-plan cache: for a corpus of statement shapes, a
// session with a cache produces — on the miss run AND on the hit run, via
// Process AND via a drained Query cursor — exactly the rows and Figure 3
// transfer stats of an uncached session over the same store.
func TestPlanCacheExecutionEquivalence(t *testing.T) {
	queries := []string{
		"SELECT x, y, z FROM d WHERE x > y AND z < 2", // policy rewrites z to its mandated aggregate
		"SELECT x, y FROM d",
		"SELECT x, AVG(z) AS za FROM d GROUP BY x",
		"SELECT x, y FROM d WHERE t > 1000",
	}
	store := testStore(t, 3000)
	cache := paradise.NewPlanCache(0)
	cached, err := paradise.Open(store,
		paradise.WithPolicy(paradise.Figure4Policy()),
		paradise.WithDefaultModule("ActionFilter"),
		paradise.WithPlanCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := paradise.Open(store,
		paradise.WithPolicy(paradise.Figure4Policy()),
		paradise.WithDefaultModule("ActionFilter"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	for _, sql := range queries {
		want, err := plain.Process(ctx, sql)
		if err != nil {
			t.Fatalf("%s: uncached: %v", sql, err)
		}
		// Miss run, then hit run: both must match the uncached outcome.
		for _, run := range []string{"miss", "hit"} {
			got, err := cached.Process(ctx, sql)
			if err != nil {
				t.Fatalf("%s: cached (%s): %v", sql, run, err)
			}
			sameRows(t, got.Result.Rows, want.Result.Rows)
			sameStats(t, got.Net, want.Net)
			if got.RewrittenSQL != want.RewrittenSQL {
				t.Fatalf("%s: cached (%s) rewrite %q, want %q", sql, run, got.RewrittenSQL, want.RewrittenSQL)
			}
		}
		// A streaming drain over the (now cached) plan matches too.
		cur, err := cached.Query(ctx, sql)
		if err != nil {
			t.Fatalf("%s: cursor: %v", sql, err)
		}
		rows := drainCursor(t, cur)
		stats, err := cur.Stats()
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, rows, want.Result.Rows)
		sameStats(t, stats, want.Net)
	}

	st := cache.Stats()
	if st.Hits == 0 {
		t.Fatalf("repeated statements never hit the cache: %+v", st)
	}
	if st.Misses != uint64(len(queries)) {
		t.Fatalf("misses = %d, want one per distinct statement (%d)", st.Misses, len(queries))
	}
}

// TestPlanCacheExplainAfterHit: the lazy -explain plan still builds on a
// cache hit (it lowers a fresh tree from the shared rewritten statement).
func TestPlanCacheExplainAfterHit(t *testing.T) {
	sess, err := paradise.Open(testStore(t, 500),
		paradise.WithPolicy(paradise.Figure4Policy()),
		paradise.WithDefaultModule("ActionFilter"),
		paradise.WithPlanCache(paradise.NewPlanCache(0)))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const sql = "SELECT x, y FROM d"
	if _, err := sess.Process(ctx, sql); err != nil {
		t.Fatal(err)
	}
	out, err := sess.Process(ctx, sql) // hit
	if err != nil {
		t.Fatal(err)
	}
	if out.Logical() == nil {
		t.Fatal("Logical() is nil on a cache-hit outcome")
	}
	if out.Explain() == "" {
		t.Fatal("Explain() is empty on a cache-hit outcome")
	}
}
