package paradise

import (
	"paradise/internal/core"
	"paradise/internal/schema"
)

// Cursor streams the result of a Session.Query row by row, wired directly
// onto the engine's pull-based batch pipeline: each advance that exhausts
// the current batch pulls the next one through the fragment chain, down to
// the storage scans. The usual loop:
//
//	cur, err := sess.Query(ctx, sql)
//	if err != nil { ... }
//	defer cur.Close()
//	for cur.Next() {
//	        row := cur.Row()
//	        ...
//	}
//	if err := cur.Err(); err != nil { ... }
//
// Rows returned by Row are immutable and may be retained. A Cursor is not
// safe for concurrent use.
type Cursor struct {
	stream  *core.Stream
	session *Session
	module  string
	batch   schema.Rows
	idx     int
	row     Row
	err     error
	done    bool
	closed  bool
}

// Next advances to the next row, pulling the next batch through the chain
// when the current one is spent. It returns false when the stream is
// exhausted, the context is cancelled, or an error occurs — check Err
// afterwards.
func (c *Cursor) Next() bool {
	if c.err != nil || c.done {
		return false
	}
	for c.idx >= len(c.batch) {
		batch, err := c.stream.Next()
		if err != nil {
			c.err = c.session.wrapModErr(err, c.module)
			c.done = true
			return false
		}
		if batch == nil {
			c.done = true
			return false
		}
		c.batch, c.idx = batch, 0
	}
	c.row = c.batch[c.idx]
	c.idx++
	return true
}

// Row returns the current row. Only valid after a true Next.
func (c *Cursor) Row() Row { return c.row }

// Err returns the first error the cursor hit, or nil. Exhaustion and an
// explicit Close are not errors; a cancelled context is (ctx.Err, wrapped).
func (c *Cursor) Err() error { return c.err }

// Schema describes the columns of the streamed rows.
func (c *Cursor) Schema() *Relation { return c.stream.Schema() }

// Close releases the cursor. The chain drains its remainder first — every
// node ships its whole output regardless of how much the requester reads —
// so the Figure 3 accounting (Stats, Outcome) is final afterwards. Close
// is idempotent: the first call decides the result, later calls return it
// again.
func (c *Cursor) Close() error {
	if c.closed {
		return c.err
	}
	c.closed = true
	c.done = true
	c.stream.Close()
	if _, err := c.stream.Outcome(); err != nil && c.err == nil {
		c.err = c.session.wrapModErr(err, c.module)
	}
	return c.err
}

// Outcome returns the audit trail of the streamed query: rewrite report,
// fragment plan and transfer stats. It closes the cursor if the caller has
// not already (the accounting is only final once the chain is drained).
// On the pure streaming path Outcome.Result is nil — the rows went to the
// consumer; use Stats for the Figure 3 numbers.
func (c *Cursor) Outcome() (*Outcome, error) {
	c.Close()
	out, err := c.stream.Outcome()
	if err != nil {
		return nil, c.session.wrapModErr(err, c.module)
	}
	return out, nil
}

// Stats returns the Figure 3 transfer accounting of the fully drained
// chain, closing the cursor if needed. The numbers are identical to what
// Session.Process reports for the same query.
func (c *Cursor) Stats() (*RunStats, error) {
	out, err := c.Outcome()
	if err != nil {
		return nil, err
	}
	return out.Net, nil
}
