package sensorsim

import (
	"time"

	paradise "paradise"
	"paradise/internal/sensors"
)

type (
	// Scenario parameterizes one simulated environment (rooms, persons,
	// duration, grids). Adjust fields like PositionGridM before Generate.
	Scenario = sensors.Scenario
	// Trace is a generated sensor trace: per-device rows, the integrated
	// database d, and the ground-truth activity intervals.
	Trace = sensors.Trace
	// GroundTruth is one labelled activity interval of a trace.
	GroundTruth = sensors.GroundTruth
	// Device identifies one sensor family of the lab ensemble.
	Device = sensors.Device
	// Activity labels what a person is doing at an instant.
	Activity = sensors.Activity
	// Person, Room, Step and Point build custom scenarios.
	Person = sensors.Person
	// Room is one room of the environment.
	Room = sensors.Room
	// Step is one phase of a person's routine.
	Step = sensors.Step
	// Point is a position in metres.
	Point = sensors.Point
)

// The recognized activities.
const (
	ActivityWalk    = sensors.ActivityWalk
	ActivityStand   = sensors.ActivityStand
	ActivitySit     = sensors.ActivitySit
	ActivityFall    = sensors.ActivityFall
	ActivityPresent = sensors.ActivityPresent
)

// AllDevices lists the lab's device families in a stable order.
var AllDevices = sensors.AllDevices

// Meeting builds the Smart Meeting Room scenario with n participants.
func Meeting(n int, dur time.Duration, seed int64) *Scenario { return sensors.Meeting(n, dur, seed) }

// Apartment builds the AAL apartment scenario — one resident moving
// through a daily routine, optionally ending in a fall.
func Apartment(dur time.Duration, withFall bool, seed int64) *Scenario {
	return sensors.Apartment(dur, withFall, seed)
}

// Lecture builds the smart lecture hall scenario with the given audience.
func Lecture(audience int, dur time.Duration, seed int64) *Scenario {
	return sensors.Lecture(audience, dur, seed)
}

// Generate runs the simulation and returns the trace.
func Generate(sc *Scenario) (*Trace, error) { return sensors.Generate(sc) }

// BuildStore loads a trace into a database: one table per device family
// plus the integrated relation d.
func BuildStore(tr *Trace) (*paradise.Store, error) { return sensors.BuildStore(tr) }

// DeviceSchema returns the relation schema of one device family.
func DeviceSchema(d Device) *paradise.Relation { return sensors.DeviceSchema(d) }

// IntegratedSchema returns the schema of the integrated database d.
func IntegratedSchema() *paradise.Relation { return sensors.IntegratedSchema() }
