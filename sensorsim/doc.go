// Package sensorsim is the public face of the simulated Smart Appliance
// Lab (§1): deterministic sensor traces for meetings, lectures and
// apartment scenarios, the device ensemble's schemas, and the integrated
// database d that the paradise Session queries. It replaces the paper's
// physical testbed; all generation is seeded and reproducible.
//
// Typical use:
//
//	trace, _ := sensorsim.Generate(sensorsim.Apartment(2*time.Minute, false, 2016))
//	store, _ := sensorsim.BuildStore(trace)
//	sess, _ := paradise.Open(store, paradise.WithPolicy(paradise.Figure4Policy()))
package sensorsim
