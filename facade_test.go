package paradise_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	paradise "paradise"
	"paradise/experiments"
	"paradise/internal/schema"
)

// testStore builds a deterministic integrated database d of n rows using
// only the public facade.
func testStore(t testing.TB, n int) *paradise.Store {
	t.Helper()
	store := paradise.NewStore()
	tab := store.Create(paradise.NewRelation("d",
		paradise.SensitiveCol("user", paradise.TypeString),
		paradise.Col("x", paradise.TypeFloat),
		paradise.Col("y", paradise.TypeFloat),
		paradise.Col("z", paradise.TypeFloat),
		paradise.Col("t", paradise.TypeInt),
	))
	users := []string{"alice", "bob", "carol"}
	rows := make(paradise.Rows, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, paradise.Row{
			paradise.String(users[i%len(users)]),
			paradise.Float(float64(i % 8)),
			paradise.Float(float64(i % 6)),
			paradise.Float(0.5 + float64(i%30)/10),
			paradise.Int(int64(i) * 50),
		})
	}
	if err := tab.Append(rows...); err != nil {
		t.Fatal(err)
	}
	return store
}

func drainCursor(t *testing.T, cur *paradise.Cursor) paradise.Rows {
	t.Helper()
	var rows paradise.Rows
	for cur.Next() {
		rows = append(rows, cur.Row())
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("cursor: %v", err)
	}
	return rows
}

func sameStats(t *testing.T, got, want *paradise.RunStats) {
	t.Helper()
	if got.RawBytes != want.RawBytes || got.EgressBytes != want.EgressBytes {
		t.Fatalf("raw/egress: got %d/%d, want %d/%d",
			got.RawBytes, got.EgressBytes, want.RawBytes, want.EgressBytes)
	}
	if got.SimTime != want.SimTime {
		t.Fatalf("sim time: got %v, want %v", got.SimTime, want.SimTime)
	}
	if len(got.Traffic) != len(want.Traffic) {
		t.Fatalf("traffic hops: got %d, want %d", len(got.Traffic), len(want.Traffic))
	}
	for i := range got.Traffic {
		if got.Traffic[i].Bytes != want.Traffic[i].Bytes || got.Traffic[i].Rows != want.Traffic[i].Rows {
			t.Fatalf("hop %d: got %d bytes/%d rows, want %d bytes/%d rows", i,
				got.Traffic[i].Bytes, got.Traffic[i].Rows, want.Traffic[i].Bytes, want.Traffic[i].Rows)
		}
	}
	if len(got.Assignments) != len(want.Assignments) {
		t.Fatalf("assignments: got %d, want %d", len(got.Assignments), len(want.Assignments))
	}
	for i := range got.Assignments {
		g, w := got.Assignments[i], want.Assignments[i]
		if g.Node.Name != w.Node.Name || g.InRows != w.InRows ||
			g.OutRows != w.OutRows || g.OutBytes != w.OutBytes || g.FellBack != w.FellBack {
			t.Fatalf("assignment %d: got %s in=%d out=%d bytes=%d fb=%v, want %s in=%d out=%d bytes=%d fb=%v",
				i, g.Node.Name, g.InRows, g.OutRows, g.OutBytes, g.FellBack,
				w.Node.Name, w.InRows, w.OutRows, w.OutBytes, w.FellBack)
		}
	}
}

func sameRows(t *testing.T, got, want paradise.Rows) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("rows: got %d, want %d", len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("row %d arity: got %d, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			if !got[i][j].Identical(want[i][j]) {
				t.Fatalf("row %d col %d: got %s, want %s",
					i, j, got[i][j].Format(), want[i][j].Format())
			}
		}
	}
}

// TestCursorDrainEquivalence is the headline acceptance property: a fully
// drained cursor yields exactly the rows of Process, and its Figure 3
// transfer stats are identical field by field.
func TestCursorDrainEquivalence(t *testing.T) {
	queries := []string{
		"SELECT x, y, z FROM d WHERE x > y AND z < 2", // policy rewrites z to its mandated aggregate
		"SELECT x, y FROM d",
		"SELECT x, AVG(z) AS za FROM d GROUP BY x",
	}
	sess, err := paradise.Open(testStore(t, 3000),
		paradise.WithPolicy(paradise.Figure4Policy()),
		paradise.WithDefaultModule("ActionFilter"))
	if err != nil {
		t.Fatal(err)
	}
	for _, sql := range queries {
		t.Run(sql, func(t *testing.T) {
			ctx := context.Background()
			cur, err := sess.Query(ctx, sql)
			if err != nil {
				t.Fatal(err)
			}
			rows := drainCursor(t, cur)
			if err := cur.Close(); err != nil {
				t.Fatal(err)
			}
			stats, err := cur.Stats()
			if err != nil {
				t.Fatal(err)
			}

			out, err := sess.Process(ctx, sql)
			if err != nil {
				t.Fatal(err)
			}
			sameRows(t, rows, out.Result.Rows)
			sameStats(t, stats, out.Net)
		})
	}
}

// TestCursorEarlyCloseStats: a cursor closed after a few rows still
// reports the full transfer stats — the chain nodes ship their whole
// outputs regardless of how much the requester reads.
func TestCursorEarlyCloseStats(t *testing.T) {
	sess, err := paradise.Open(testStore(t, 3000))
	if err != nil {
		t.Fatal(err)
	}
	const sql = "SELECT x, y FROM d WHERE z < 2"
	ctx := context.Background()

	cur, err := sess.Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3 && cur.Next(); i++ {
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	stats, err := cur.Stats()
	if err != nil {
		t.Fatal(err)
	}
	out, err := sess.Process(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	sameStats(t, stats, out.Net)
}

// TestCursorCancellationStopsWithinOneBatch: cancelling the context
// mid-stream stops the cursor within one batch of rows and surfaces the
// context error.
func TestCursorCancellationStopsWithinOneBatch(t *testing.T) {
	sess, err := paradise.Open(testStore(t, 50_000))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	cur, err := sess.Query(ctx, "SELECT x, y, z FROM d")
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() {
		t.Fatalf("first row: %v", cur.Err())
	}
	cancel()

	// The already-delivered batch may finish serving; after that the next
	// pull must fail with the context error.
	extra := 0
	for cur.Next() {
		extra++
	}
	if extra > schema.DefaultBatchSize {
		t.Fatalf("cursor delivered %d rows after cancel, want <= %d (one batch)",
			extra, schema.DefaultBatchSize)
	}
	if !errors.Is(cur.Err(), context.Canceled) {
		t.Fatalf("cursor error = %v, want context.Canceled", cur.Err())
	}
	cur.Close()
}

// TestCursorDoubleClose: Close is idempotent — the satellite regression
// for the easy caller mistake cursors invite.
func TestCursorDoubleClose(t *testing.T) {
	sess, err := paradise.Open(testStore(t, 500))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := sess.Query(context.Background(), "SELECT x FROM d")
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() {
		t.Fatalf("first row: %v", cur.Err())
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if cur.Next() {
		t.Fatal("Next after Close must be false")
	}
	// Stats must be stable across repeated calls after double-Close.
	s1, err := cur.Stats()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cur.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s1.EgressBytes != s2.EgressBytes {
		t.Fatalf("stats changed across calls: %d != %d", s1.EgressBytes, s2.EgressBytes)
	}
}

// TestAnonymizedCursorMatchesProcess: with a postprocessor configured the
// cursor materializes lazily but still serves exactly the anonymized rows
// Process returns, and its Outcome carries the anonymization report.
func TestAnonymizedCursorMatchesProcess(t *testing.T) {
	open := func() *paradise.Session {
		sess, err := paradise.Open(testStore(t, 2000),
			paradise.WithAnonymization(paradise.AnonConfig{
				Method:           paradise.AnonMondrian,
				K:                5,
				QuasiIdentifiers: []string{"x", "y"},
			}))
		if err != nil {
			t.Fatal(err)
		}
		return sess
	}
	const sql = "SELECT x, y, z FROM d WHERE z < 2"
	ctx := context.Background()

	cur, err := open().Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	rows := drainCursor(t, cur)
	got, err := cur.Outcome()
	if err != nil {
		t.Fatal(err)
	}
	if got.Anon == nil || got.Anon.Method != paradise.AnonMondrian {
		t.Fatalf("anon report missing: %+v", got.Anon)
	}

	out, err := open().Process(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, rows, out.Result.Rows)
	sameStats(t, got.Net, out.Net)

	// A cursor closed before the first read still owes the postprocessed
	// outcome: the anonymization report and result cardinality must match
	// Process, regardless of consumer read behaviour.
	unread, err := open().Query(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	if err := unread.Close(); err != nil {
		t.Fatal(err)
	}
	uout, err := unread.Outcome()
	if err != nil {
		t.Fatal(err)
	}
	if uout.Anon == nil || uout.Anon.Method != paradise.AnonMondrian {
		t.Fatalf("unread cursor lost the anon report: %+v", uout.Anon)
	}
	if len(uout.Result.Rows) != len(out.Result.Rows) {
		t.Fatalf("unread cursor outcome has %d rows, Process has %d",
			len(uout.Result.Rows), len(out.Result.Rows))
	}
}

// TestTypedErrors: the facade's sentinels classify failures without
// string matching.
func TestTypedErrors(t *testing.T) {
	sess, err := paradise.Open(testStore(t, 100),
		paradise.WithPolicy(paradise.Figure4Policy()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if _, err := sess.Process(ctx, "SELECT FROM WHERE"); !errors.Is(err, paradise.ErrParse) {
		t.Fatalf("parse error = %v, want ErrParse", err)
	}
	if _, err := sess.Query(ctx, "SELECT x FROM"); !errors.Is(err, paradise.ErrParse) {
		t.Fatalf("query parse error = %v, want ErrParse", err)
	}

	_, err = sess.Process(ctx, "SELECT user FROM d")
	if !errors.Is(err, paradise.ErrPolicyViolation) {
		t.Fatalf("denied query error = %v, want ErrPolicyViolation", err)
	}
	var v *paradise.PolicyViolation
	if !errors.As(err, &v) {
		t.Fatalf("denied query error %v does not carry *PolicyViolation", err)
	}
	if v.Module != "ActionFilter" {
		t.Fatalf("violation module = %q, want ActionFilter", v.Module)
	}
	if len(v.Columns) != 1 || v.Columns[0] != "user" {
		t.Fatalf("violation columns = %v, want [user]", v.Columns)
	}
	if v.Rule == "" {
		t.Fatal("violation rule is empty")
	}

	_, err = sess.Process(ctx, "SELECT x, y FROM d WHERE user = 'alice'")
	if !errors.Is(err, paradise.ErrPolicyViolation) {
		t.Fatalf("WHERE-denied error = %v, want ErrPolicyViolation", err)
	}

	if _, err := paradise.Open(nil); !errors.Is(err, paradise.ErrUsage) {
		t.Fatalf("Open(nil) = %v, want ErrUsage", err)
	}
	if _, err := sess.Process(ctx, "SELECT x FROM d", paradise.Module("NoSuch")); !errors.Is(err, paradise.ErrUsage) {
		t.Fatalf("unknown module error = %v, want ErrUsage", err)
	}
}

// TestModuleResolution: single-module policies resolve implicitly,
// multi-module policies require Module(...).
func TestModuleResolution(t *testing.T) {
	store := testStore(t, 100)
	multi := &paradise.Policy{Modules: []*paradise.PolicyModule{
		paradise.DefaultPolicyModule("A", store.Catalog().MustLookup("d")),
		paradise.DefaultPolicyModule("B", store.Catalog().MustLookup("d")),
	}}
	sess, err := paradise.Open(store, paradise.WithPolicy(multi))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Process(context.Background(), "SELECT x FROM d"); !errors.Is(err, paradise.ErrUsage) {
		t.Fatalf("ambiguous module error = %v, want ErrUsage", err)
	}
	if _, err := sess.Process(context.Background(), "SELECT x FROM d", paradise.Module("A")); err != nil {
		t.Fatalf("explicit module: %v", err)
	}
}

// TestJournalCoversCursorQueries: streamed queries are journaled with the
// delivered row count, and denials are recorded for both paths.
func TestJournalCoversCursorQueries(t *testing.T) {
	journal := paradise.NewJournal()
	sess, err := paradise.Open(testStore(t, 1000),
		paradise.WithPolicy(paradise.Figure4Policy()),
		paradise.WithJournal(journal))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	cur, err := sess.Query(ctx, "SELECT x, y FROM d")
	if err != nil {
		t.Fatal(err)
	}
	rows := drainCursor(t, cur)
	cur.Close()
	if journal.Len() != 1 {
		t.Fatalf("journal has %d entries, want 1", journal.Len())
	}
	e := journal.All()[0]
	if e.Denied || e.ResultRows != len(rows) {
		t.Fatalf("journal entry = %+v, want %d rows, not denied", e, len(rows))
	}

	if _, err := sess.Query(ctx, "SELECT user FROM d"); err == nil {
		t.Fatal("denied query must fail")
	}
	if len(journal.Denials()) != 1 {
		t.Fatalf("journal has %d denials, want 1", len(journal.Denials()))
	}

	// An early-closed cursor journals the produced cardinality (what a
	// full drain delivers), matching Process on the same query.
	cur, err = sess.Query(ctx, "SELECT x, y FROM d")
	if err != nil {
		t.Fatal(err)
	}
	cur.Next()
	cur.Close()
	early := journal.All()[journal.Len()-1]
	if early.ResultRows != len(rows) {
		t.Fatalf("early-close journal rows = %d, want %d", early.ResultRows, len(rows))
	}

	// A cancelled query is a failure, not a policy denial.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	cur, err = sess.Query(cctx, "SELECT x, y FROM d")
	if err != nil {
		t.Fatal(err)
	}
	for cur.Next() {
	}
	cur.Close()
	last := journal.All()[journal.Len()-1]
	if last.Denied || !last.Failed {
		t.Fatalf("cancelled query journaled as denied=%v failed=%v, want failure", last.Denied, last.Failed)
	}
	if len(journal.Denials()) != 1 {
		t.Fatalf("cancellation polluted the denial log: %d denials", len(journal.Denials()))
	}
}

// TestUnrestrictedSessionPassThrough: without WithPolicy the session runs
// queries untransformed.
func TestUnrestrictedSessionPassThrough(t *testing.T) {
	sess, err := paradise.Open(testStore(t, 200))
	if err != nil {
		t.Fatal(err)
	}
	out, err := sess.Process(context.Background(), "SELECT x, y FROM d WHERE z < 2")
	if err != nil {
		t.Fatal(err)
	}
	if out.OriginalSQL != out.RewrittenSQL {
		t.Fatalf("unrestricted session rewrote the query:\n  %s\n  %s",
			out.OriginalSQL, out.RewrittenSQL)
	}
}

// TestFacadeMatchesSyntheticWorkload cross-checks the facade against the
// reproduction harness database (the Figure 3 workload) for a non-trivial
// plan with window functions in the mix.
func TestFacadeMatchesSyntheticWorkload(t *testing.T) {
	store := experiments.SyntheticDB(4000, 2016)
	sess, err := paradise.Open(store, paradise.WithPolicy(paradise.Figure4Policy()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cur, err := sess.Query(ctx, experiments.OriginalUseCaseQuery)
	if err != nil {
		t.Fatal(err)
	}
	rows := drainCursor(t, cur)
	stats, err := cur.Stats()
	if err != nil {
		t.Fatal(err)
	}
	out, err := sess.Process(ctx, experiments.OriginalUseCaseQuery)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, rows, out.Result.Rows)
	sameStats(t, stats, out.Net)
	if stats.EgressBytes >= stats.RawBytes {
		t.Fatalf("no reduction: egress %d >= raw %d", stats.EgressBytes, stats.RawBytes)
	}
}

// TestRunNaiveBaseline: the naive baseline ships the raw data, so the
// privacy-aware path must beat it.
func TestRunNaiveBaseline(t *testing.T) {
	sess, err := paradise.Open(testStore(t, 1000),
		paradise.WithPolicy(paradise.Figure4Policy()),
		paradise.WithDefaultModule("ActionFilter"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const sql = "SELECT x, y, z FROM d WHERE x > y AND z < 2"
	naive, err := sess.RunNaive(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sess.Process(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	if out.Net.EgressBytes >= naive.EgressBytes {
		t.Fatalf("fragmented egress %d >= naive egress %d", out.Net.EgressBytes, naive.EgressBytes)
	}
}

func BenchmarkCursorStream(b *testing.B) {
	sess, err := paradise.Open(testStore(b, 10_000))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur, err := sess.Query(ctx, "SELECT x, y FROM d WHERE z < 2")
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for cur.Next() {
			n++
		}
		if err := cur.Close(); err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal(fmt.Errorf("empty stream"))
		}
	}
}
