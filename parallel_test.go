package paradise_test

import (
	"context"
	"reflect"
	"sync"
	"testing"

	paradise "paradise"
)

// parallelFacadeCorpus exercises the full Figure 2 vertical — rewrite,
// fragmentation, chain execution, accounting — over the facade schema.
var parallelFacadeCorpus = []string{
	"SELECT x, y FROM d WHERE z < 2",
	"SELECT x, AVG(z) AS za, COUNT(*) AS n FROM d GROUP BY x HAVING COUNT(*) > 2",
	"SELECT DISTINCT x, y FROM d WHERE z < 2.5",
	"SELECT x, y FROM d ORDER BY y DESC, x, t LIMIT 7",
	"SELECT x + y AS s FROM d WHERE x > y",
}

// TestFacadeSerialParallelEquivalence runs every corpus query through two
// sessions over the same store — one serial, one at 4 workers — and
// requires identical rows (order included) and bit-identical Figure 3
// stats from both Process and a drained Query cursor.
func TestFacadeSerialParallelEquivalence(t *testing.T) {
	store := testStore(t, 4_000)
	serial, err := paradise.Open(store, paradise.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := paradise.Open(store, paradise.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, sql := range parallelFacadeCorpus {
		want, err := serial.Process(ctx, sql)
		if err != nil {
			t.Fatalf("serial %q: %v", sql, err)
		}
		got, err := par.Process(ctx, sql)
		if err != nil {
			t.Fatalf("parallel %q: %v", sql, err)
		}
		if !reflect.DeepEqual(want.Result.Rows, got.Result.Rows) {
			t.Fatalf("%q: parallel Process rows differ from serial", sql)
		}
		sameStats(t, got.Net, want.Net)

		cur, err := par.Query(ctx, sql)
		if err != nil {
			t.Fatalf("parallel Query %q: %v", sql, err)
		}
		rows := drainCursor(t, cur)
		if err := cur.Close(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Result.Rows, rows) {
			t.Fatalf("%q: parallel cursor rows differ from serial Process", sql)
		}
		stats, err := cur.Stats()
		if err != nil {
			t.Fatal(err)
		}
		sameStats(t, stats, want.Net)
	}
}

// TestSessionConcurrentDrain is the race stress: one parallel Session,
// many goroutines, each running its own mix of streamed and materialized
// queries concurrently (run under -race in CI). A Session is documented
// safe for concurrent use; a Cursor belongs to one goroutine.
func TestSessionConcurrentDrain(t *testing.T) {
	store := testStore(t, 2_000)
	sess, err := paradise.Open(store, paradise.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	want, err := sess.Process(context.Background(), parallelFacadeCorpus[0])
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sql := parallelFacadeCorpus[g%len(parallelFacadeCorpus)]
			for i := 0; i < 4; i++ {
				if g%2 == 0 {
					cur, err := sess.Query(context.Background(), sql)
					if err != nil {
						errs[g] = err
						return
					}
					for cur.Next() {
						_ = cur.Row()
					}
					if err := cur.Err(); err != nil {
						errs[g] = err
						return
					}
					if err := cur.Close(); err != nil {
						errs[g] = err
						return
					}
				} else {
					if _, err := sess.Process(context.Background(), sql); err != nil {
						errs[g] = err
						return
					}
				}
			}
			// Cross-check one deterministic query against the pre-computed
			// answer after the stampede.
			out, err := sess.Process(context.Background(), parallelFacadeCorpus[0])
			if err != nil {
				errs[g] = err
				return
			}
			if !reflect.DeepEqual(out.Result.Rows, want.Result.Rows) {
				errs[g] = errEqual
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

var errEqual = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent result differs from baseline" }

// TestParallelCursorEarlyCloseStats: closing a parallel cursor after one
// row still finalizes the full Figure 3 accounting (the chain drains on
// close), identically to a serial session's.
func TestParallelCursorEarlyCloseStats(t *testing.T) {
	store := testStore(t, 4_000)
	serial, err := paradise.Open(store, paradise.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := paradise.Open(store, paradise.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.Process(context.Background(), "SELECT x, y FROM d WHERE z < 2")
	if err != nil {
		t.Fatal(err)
	}
	cur, err := par.Query(context.Background(), "SELECT x, y FROM d WHERE z < 2")
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() {
		t.Fatalf("no first row: %v", cur.Err())
	}
	stats, err := cur.Stats() // closes and drains
	if err != nil {
		t.Fatal(err)
	}
	sameStats(t, stats, want.Net)
}
