// Package privmetrics is the public face of the paper's information-loss
// and privacy-risk metrics (§3.2, "Golden Path"): the Direct Distance
// between an original and an anonymized result, KL-divergence-based column
// information loss, and the linkage risk of re-identification over a set
// of quasi-identifiers.
package privmetrics
