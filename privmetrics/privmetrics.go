package privmetrics

import (
	paradise "paradise"
	"paradise/internal/privmetrics"
)

// DirectDistance counts the cells that differ between the original and the
// anonymized rows (the paper's DD quality measure; shapes must match).
func DirectDistance(orig, anon paradise.Rows) (int, error) {
	return privmetrics.DirectDistance(orig, anon)
}

// DirectDistanceRatio is DirectDistance normalized to [0, 1].
func DirectDistanceRatio(orig, anon paradise.Rows) (float64, error) {
	return privmetrics.DirectDistanceRatio(orig, anon)
}

// ColumnKL measures the KL divergence between the original and anonymized
// distribution of one numeric column, over the given histogram bins.
func ColumnKL(rel *paradise.Relation, orig, anon paradise.Rows, column string, bins int) (float64, error) {
	return privmetrics.ColumnKL(rel, orig, anon, column, bins)
}

// LinkageRisk estimates re-identification risk over the quasi-identifiers:
// the expected probability of linking a row to its individual.
func LinkageRisk(rel *paradise.Relation, rows paradise.Rows, qi []string) (float64, error) {
	return privmetrics.LinkageRisk(rel, rows, qi)
}

// AvgClassSize is the mean equivalence-class size over the
// quasi-identifiers.
func AvgClassSize(rel *paradise.Relation, rows paradise.Rows, qi []string) (float64, error) {
	return privmetrics.AvgClassSize(rel, rows, qi)
}
