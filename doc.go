// Package paradise is a from-scratch Go reproduction of "Privacy Protection
// through Query Rewriting in Smart Environments" (Grunert & Heuer, EDBT
// 2016; long version: University of Rostock TR CS-01-16) — the PArADISE
// privacy-aware query processor — packaged as an embeddable library.
//
// This package is the supported entry point. Open a Session over a Store,
// then run queries through the full Figure 2 pipeline:
//
//	sess, err := paradise.Open(store,
//	        paradise.WithPolicy(paradise.Figure4Policy()))
//	if err != nil { ... }
//
//	// Materialized: the complete audit trail in one call.
//	out, err := sess.Process(ctx, "SELECT x, y, z FROM d")
//
//	// Streaming: a cursor wired onto the batch pipeline; cancelling ctx
//	// stops the storage scans within one batch.
//	cur, err := sess.Query(ctx, "SELECT x, y, z FROM d")
//	defer cur.Close()
//	for cur.Next() {
//	        row := cur.Row()
//	        ...
//	}
//
// Failures are typed: errors.Is(err, ErrPolicyViolation) (with
// *PolicyViolation carrying the violated rule and offending columns via
// errors.As), ErrParse, ErrUnsupported and ErrUsage.
//
// Public companion packages round out the toolkit: sensorsim (the
// simulated Smart Appliance Lab), recognition (analysis pipelines),
// anonymize and privmetrics (the §3.2 postprocessing study kit), and
// experiments (the paper's exhibits). The implementation lives under
// internal/:
//
//   - sqlparser, schema, storage, engine: a SQL subset (nested SELECT,
//     joins, grouping, window functions) over in-memory relations, executed
//     as a pull-based batch-iterator pipeline bound to a context
//   - sensors, stream: the simulated Smart Appliance Lab and sensor-level
//     stream processing
//   - policy, rewrite: Figure 4 privacy policies and the preprocessor that
//     rewrites queries against them
//   - fragment, network: vertical query fragmentation (Table 1 capability
//     ladder) and the simulated peer chain of Figure 3, streaming through
//     network.Open / fragment.OpenChain
//   - anonymize, privmetrics: the postprocessor (k-anonymity, slicing,
//     differential privacy) and the paper's information-loss metrics
//   - recognition: the R-pipeline substrate (Kalman filter, filterByClass)
//   - core: the assembled processor of Figure 2 behind Session
//   - experiments: the reproduction harness behind cmd/benchrunner and the
//     benchmarks in bench_test.go
//
// See README.md for a walkthrough, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-vs-measured record.
package paradise
