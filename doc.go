// Package paradise is a from-scratch Go reproduction of "Privacy Protection
// through Query Rewriting in Smart Environments" (Grunert & Heuer, EDBT
// 2016; long version: University of Rostock TR CS-01-16) — the PArADISE
// privacy-aware query processor.
//
// The implementation lives under internal/:
//
//   - sqlparser, schema, storage, engine: a SQL subset (nested SELECT,
//     joins, grouping, window functions) over in-memory relations
//   - sensors, stream: the simulated Smart Appliance Lab and sensor-level
//     stream processing
//   - policy, rewrite: Figure 4 privacy policies and the preprocessor that
//     rewrites queries against them
//   - fragment, network: vertical query fragmentation (Table 1 capability
//     ladder) and the simulated peer chain of Figure 3
//   - anonymize, privmetrics: the postprocessor (k-anonymity, slicing,
//     differential privacy) and the paper's information-loss metrics
//   - recognition: the R-pipeline substrate (Kalman filter, filterByClass)
//   - core: the assembled processor of Figure 2
//   - experiments: the reproduction harness behind cmd/benchrunner and the
//     benchmarks in bench_test.go
//
// See README.md for a walkthrough, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-vs-measured record.
package paradise
