// Package sqlparser implements a from-scratch lexer, recursive-descent
// parser, AST and printer for the SQL subset PArADISE needs: nested SELECT
// queries with joins, WHERE / GROUP BY / HAVING / ORDER BY / LIMIT,
// aggregate functions and window functions with OVER (PARTITION BY ...
// ORDER BY ...) clauses. The subset covers every query in Grunert & Heuer
// (EDBT 2016) with headroom for the capability levels of Table 1.
package sqlparser
