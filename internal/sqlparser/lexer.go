package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp    // operators and punctuation
	tokParam // ? placeholder (accepted, not evaluated)
)

// token is one lexical token with its source position (byte offset).
type token struct {
	kind   tokenKind
	text   string // keywords upper-cased, identifiers as written
	pos    int
	quoted bool // identifier was double-quoted (case preserved)
}

// keywords recognized by the lexer. Everything else is an identifier.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AS": true, "AND": true,
	"OR": true, "NOT": true, "NULL": true, "TRUE": true, "FALSE": true,
	"DISTINCT": true, "JOIN": true, "INNER": true, "LEFT": true, "OUTER": true,
	"CROSS": true, "ON": true, "OVER": true, "PARTITION": true, "IS": true,
	"IN": true, "BETWEEN": true, "LIKE": true, "ASC": true, "DESC": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
}

// lexError reports a lexical problem with position context.
type lexError struct {
	pos int
	msg string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("sqlparser: lex error at offset %d: %s", e.pos, e.msg)
}

// lex tokenizes the input completely. SQL queries in this system are short
// (kilobytes at most), so full tokenization up front is simpler and lets the
// parser backtrack freely.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && input[i+1] == '*':
			end := strings.Index(input[i+2:], "*/")
			if end < 0 {
				return nil, &lexError{pos: i, msg: "unterminated block comment"}
			}
			i += 2 + end + 2
		case c == '\'':
			s, next, err := lexString(input, i)
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tokString, text: s, pos: i})
			i = next
		case c == '"':
			// quoted identifier
			end := strings.IndexByte(input[i+1:], '"')
			if end < 0 {
				return nil, &lexError{pos: i, msg: "unterminated quoted identifier"}
			}
			toks = append(toks, token{kind: tokIdent, text: input[i+1 : i+1+end], pos: i, quoted: true})
			i += end + 2
		case c >= '0' && c <= '9' || c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9':
			start := i
			seenDot, seenExp := false, false
			for i < n {
				d := input[i]
				if d >= '0' && d <= '9' {
					i++
				} else if d == '.' && !seenDot && !seenExp {
					seenDot = true
					i++
				} else if (d == 'e' || d == 'E') && !seenExp && i > start {
					seenExp = true
					i++
					if i < n && (input[i] == '+' || input[i] == '-') {
						i++
					}
				} else {
					break
				}
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{kind: tokKeyword, text: upper, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: start})
			}
		case c == '?':
			toks = append(toks, token{kind: tokParam, text: "?", pos: i})
			i++
		default:
			op, next, err := lexOp(input, i)
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tokOp, text: op, pos: i})
			i = next
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func lexString(input string, start int) (string, int, error) {
	var b strings.Builder
	i := start + 1
	n := len(input)
	for i < n {
		if input[i] == '\'' {
			if i+1 < n && input[i+1] == '\'' {
				b.WriteByte('\'')
				i += 2
				continue
			}
			return b.String(), i + 1, nil
		}
		b.WriteByte(input[i])
		i++
	}
	return "", 0, &lexError{pos: start, msg: "unterminated string literal"}
}

var twoCharOps = map[string]bool{
	"<=": true, ">=": true, "<>": true, "!=": true, "||": true,
}

var oneCharOps = map[byte]bool{
	'<': true, '>': true, '=': true, '+': true, '-': true, '*': true,
	'/': true, '%': true, '(': true, ')': true, ',': true, '.': true,
	';': true,
}

func lexOp(input string, i int) (string, int, error) {
	if i+1 < len(input) && twoCharOps[input[i:i+2]] {
		return input[i : i+2], i + 2, nil
	}
	if oneCharOps[input[i]] {
		return input[i : i+1], i + 1, nil
	}
	return "", 0, &lexError{pos: i, msg: fmt.Sprintf("unexpected character %q", input[i])}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
