package sqlparser

import (
	"testing"

	"paradise/internal/schema"
)

// Corner cases the plan-lowering pass depends on: quoted identifiers keep
// their case, stars survive joins, derived tables nest, and NULL literals
// parse as typed NULL values (not identifiers).

func TestQuotedIdentifiersKeepCase(t *testing.T) {
	sel, err := Parse(`SELECT "Weird Name", x FROM d WHERE "Weird Name" > 1`)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := sel.Items[0].Expr.(*ColumnRef)
	if !ok || c.Name != "Weird Name" {
		t.Fatalf("quoted identifier lost: %#v", sel.Items[0].Expr)
	}
	// Rendering must re-quote so the canonical SQL re-parses identically.
	re, err := Parse(sel.SQL())
	if err != nil {
		t.Fatalf("canonical SQL %q does not re-parse: %v", sel.SQL(), err)
	}
	if re.SQL() != sel.SQL() {
		t.Fatalf("quoted round trip: %q != %q", re.SQL(), sel.SQL())
	}
}

func TestStarWithJoinParses(t *testing.T) {
	sel, err := Parse("SELECT * FROM d JOIN cells ON d.cell = cells.cell")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sel.Items[0].Expr.(*Star); !ok {
		t.Fatalf("item = %#v, want *Star", sel.Items[0].Expr)
	}
	j, ok := sel.From.(*Join)
	if !ok {
		t.Fatalf("from = %#v, want *Join", sel.From)
	}
	if j.On == nil {
		t.Fatal("join lost its ON condition")
	}
	// Qualified star too.
	sel, err = Parse("SELECT d.* FROM d JOIN cells ON d.cell = cells.cell")
	if err != nil {
		t.Fatal(err)
	}
	st, ok := sel.Items[0].Expr.(*Star)
	if !ok || st.Table != "d" {
		t.Fatalf("qualified star = %#v", sel.Items[0].Expr)
	}
}

func TestNestedSubqueriesInFrom(t *testing.T) {
	sel, err := Parse("SELECT v FROM (SELECT u AS v FROM (SELECT x AS u FROM d WHERE x > 0) AS inner1 WHERE u < 9) AS outer1")
	if err != nil {
		t.Fatal(err)
	}
	sq, ok := sel.From.(*Subquery)
	if !ok || sq.Alias != "outer1" {
		t.Fatalf("outer from = %#v", sel.From)
	}
	sq2, ok := sq.Select.From.(*Subquery)
	if !ok || sq2.Alias != "inner1" {
		t.Fatalf("inner from = %#v", sq.Select.From)
	}
	if InnermostSelect(sel).From.(*TableName).Name != "d" {
		t.Fatal("innermost select does not read d")
	}
}

func TestNullLiteralComparisons(t *testing.T) {
	sel, err := Parse("SELECT x FROM d WHERE y = NULL")
	if err != nil {
		t.Fatal(err)
	}
	be, ok := sel.Where.(*BinaryExpr)
	if !ok {
		t.Fatalf("where = %#v", sel.Where)
	}
	lit, ok := be.R.(*Literal)
	if !ok || !lit.Value.IsNull() || lit.Value.Type() != schema.TypeNull {
		t.Fatalf("NULL literal = %#v", be.R)
	}
	// IS [NOT] NULL is a distinct node, not a comparison.
	sel, err = Parse("SELECT x FROM d WHERE y IS NOT NULL AND z IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	conj := Conjuncts(sel.Where)
	if len(conj) != 2 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	n1, ok := conj[0].(*IsNull)
	if !ok || !n1.Not {
		t.Fatalf("first conjunct = %#v", conj[0])
	}
	n2, ok := conj[1].(*IsNull)
	if !ok || n2.Not {
		t.Fatalf("second conjunct = %#v", conj[1])
	}
}
