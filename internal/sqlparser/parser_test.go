package sqlparser

import (
	"errors"
	"strings"
	"testing"

	"paradise/internal/schema"
)

// roundTrip parses, prints, re-parses and demands identical SQL text.
func roundTrip(t *testing.T, in string) *Select {
	t.Helper()
	s1, err := Parse(in)
	if err != nil {
		t.Fatalf("Parse(%q): %v", in, err)
	}
	printed := s1.SQL()
	s2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse of %q (printed from %q): %v", printed, in, err)
	}
	if got := s2.SQL(); got != printed {
		t.Fatalf("round-trip mismatch:\n first: %s\nsecond: %s", printed, got)
	}
	return s1
}

func TestParseSimpleSelect(t *testing.T) {
	s := roundTrip(t, "SELECT x, y FROM d")
	if len(s.Items) != 2 {
		t.Fatalf("want 2 items, got %d", len(s.Items))
	}
	tn, ok := s.From.(*TableName)
	if !ok || tn.Name != "d" {
		t.Fatalf("want table d, got %#v", s.From)
	}
}

func TestParseSelectStar(t *testing.T) {
	s := roundTrip(t, "SELECT * FROM stream WHERE z < 2")
	if _, ok := s.Items[0].Expr.(*Star); !ok {
		t.Fatalf("want star item, got %#v", s.Items[0].Expr)
	}
	be, ok := s.Where.(*BinaryExpr)
	if !ok || be.Op != OpLt {
		t.Fatalf("want z < 2 comparison, got %#v", s.Where)
	}
}

func TestParsePaperUseCaseQuery(t *testing.T) {
	// The §4.2 running example (inner SQL of the sqldf call).
	q := `SELECT regr_intercept(y, x) OVER (PARTITION BY z ORDER BY t)
	      FROM (SELECT x, y, z, t FROM d)`
	s := roundTrip(t, q)
	f, ok := s.Items[0].Expr.(*FuncCall)
	if !ok || f.Name != "regr_intercept" {
		t.Fatalf("want regr_intercept call, got %#v", s.Items[0].Expr)
	}
	if f.Over == nil || len(f.Over.PartitionBy) != 1 || len(f.Over.OrderBy) != 1 {
		t.Fatalf("want OVER (PARTITION BY z ORDER BY t), got %#v", f.Over)
	}
	sq, ok := s.From.(*Subquery)
	if !ok {
		t.Fatalf("want derived table, got %#v", s.From)
	}
	if len(sq.Select.Items) != 4 {
		t.Fatalf("inner select should project 4 columns, got %d", len(sq.Select.Items))
	}
}

func TestParsePaperRewrittenQuery(t *testing.T) {
	// The rewritten query from §4.2 with policy conditions injected.
	q := `SELECT regr_intercept(y, x) OVER (PARTITION BY zAVG ORDER BY t)
	      FROM (SELECT x, y, AVG(z) AS zAVG, t
	            FROM d
	            WHERE x > y AND z < 2
	            GROUP BY x, y
	            HAVING SUM(z) > 100)`
	s := roundTrip(t, q)
	inner := InnermostSelect(s)
	if inner == s {
		t.Fatal("inner select not found")
	}
	if len(inner.GroupBy) != 2 {
		t.Fatalf("want GROUP BY x, y; got %d exprs", len(inner.GroupBy))
	}
	if inner.Having == nil {
		t.Fatal("want HAVING clause")
	}
	conj := Conjuncts(inner.Where)
	if len(conj) != 2 {
		t.Fatalf("want 2 conjuncts in WHERE, got %d: %s", len(conj), inner.Where.SQL())
	}
	if inner.Items[2].Alias != "zavg" {
		t.Fatalf("want zavg alias, got %q", inner.Items[2].Alias)
	}
}

func TestParseJoins(t *testing.T) {
	s := roundTrip(t, "SELECT a.x, b.y FROM ubisense AS a JOIN sensfloor AS b ON a.tag = b.tag WHERE a.valid = TRUE")
	j, ok := s.From.(*Join)
	if !ok || j.Type != JoinInner {
		t.Fatalf("want inner join, got %#v", s.From)
	}
	if j.On == nil {
		t.Fatal("want ON condition")
	}
	roundTrip(t, "SELECT x FROM a LEFT JOIN b ON a.k = b.k")
	roundTrip(t, "SELECT x FROM a CROSS JOIN b")
	roundTrip(t, "SELECT x FROM a JOIN b ON a.k = b.k JOIN c ON b.j = c.j")
}

func TestParseGroupingAndHaving(t *testing.T) {
	s := roundTrip(t, "SELECT x, y, AVG(z) AS zavg FROM d GROUP BY x, y HAVING SUM(z) > 100 ORDER BY x DESC LIMIT 10")
	if s.Limit == nil || *s.Limit != 10 {
		t.Fatalf("want LIMIT 10, got %v", s.Limit)
	}
	if !s.OrderBy[0].Desc {
		t.Fatal("want DESC order")
	}
	if !ContainsAggregate(s.Having) {
		t.Fatal("HAVING should contain aggregate")
	}
}

func TestParseExpressionForms(t *testing.T) {
	cases := []string{
		"SELECT x FROM d WHERE x BETWEEN 1 AND 5",
		"SELECT x FROM d WHERE x NOT BETWEEN 1 AND 5",
		"SELECT x FROM d WHERE x IN (1, 2, 3)",
		"SELECT x FROM d WHERE x NOT IN (1, 2)",
		"SELECT x FROM d WHERE x IS NULL",
		"SELECT x FROM d WHERE x IS NOT NULL",
		"SELECT x FROM d WHERE NOT x > 1",
		"SELECT x FROM d WHERE x > 1 AND y < 2 OR z = 3",
		"SELECT x + y * 2 FROM d",
		"SELECT (x + y) * 2 FROM d",
		"SELECT -x FROM d",
		"SELECT x FROM d WHERE name LIKE 'a%'",
		"SELECT CASE WHEN x > 1 THEN 'hi' ELSE 'lo' END AS lvl FROM d",
		"SELECT COUNT(*) FROM d",
		"SELECT COUNT(DISTINCT x) FROM d",
		"SELECT DISTINCT x FROM d",
		"SELECT x FROM d WHERE s = 'it''s'",
		"SELECT x % 2 FROM d",
		"SELECT a || b FROM d",
		"SELECT x FROM d ORDER BY x ASC, y DESC",
		"SELECT t.* FROM t",
		"SELECT SUM(z) OVER (PARTITION BY x) FROM d",
		"SELECT AVG(z) OVER (ORDER BY t) FROM d",
	}
	for _, c := range cases {
		roundTrip(t, c)
	}
}

func TestParsePrecedence(t *testing.T) {
	s, err := Parse("SELECT x FROM d WHERE a OR b AND c")
	if err != nil {
		t.Fatal(err)
	}
	top, ok := s.Where.(*BinaryExpr)
	if !ok || top.Op != OpOr {
		t.Fatalf("OR should bind loosest, got %s", s.Where.SQL())
	}
	s, err = Parse("SELECT 1 + 2 * 3 FROM d")
	if err != nil {
		t.Fatal(err)
	}
	add, ok := s.Items[0].Expr.(*BinaryExpr)
	if !ok || add.Op != OpAdd {
		t.Fatalf("+ should be top, got %s", s.Items[0].Expr.SQL())
	}
}

func TestParseRightAssocParens(t *testing.T) {
	// a - (b - c) must keep its parentheses through printing.
	s := roundTrip(t, "SELECT a - (b - c) FROM d")
	be := s.Items[0].Expr.(*BinaryExpr)
	if _, ok := be.R.(*BinaryExpr); !ok {
		t.Fatalf("right side should be nested binary, got %#v", be.R)
	}
}

func TestParseNumbers(t *testing.T) {
	s, err := Parse("SELECT 1, 2.5, 1e3, -7 FROM d")
	if err != nil {
		t.Fatal(err)
	}
	vals := []schema.Value{
		schema.Int(1), schema.Float(2.5), schema.Float(1000), schema.Int(-7),
	}
	for i, want := range vals {
		lit, ok := s.Items[i].Expr.(*Literal)
		if !ok {
			t.Fatalf("item %d not literal: %#v", i, s.Items[i].Expr)
		}
		if !lit.Value.Identical(want) {
			t.Fatalf("item %d = %s, want %s", i, lit.Value.Format(), want.Format())
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT",
		"SELECT FROM d",
		"SELECT x FROM",
		"SELECT x FROM d WHERE",
		"SELECT x FROM d GROUP x",
		"SELECT x FRO d",
		"SELECT x FROM d WHERE x >",
		"SELECT x FROM (SELECT y FROM t",
		"SELECT x FROM d LIMIT x",
		"SELECT f(x FROM d",
		"SELECT x FROM d WHERE s = 'unterminated",
		"SELECT CASE END FROM d",
		"INSERT INTO t VALUES (1)",
		"SELECT x FROM d; SELECT y FROM d",
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) should fail", c)
		}
	}
}

func TestParseExprStandalone(t *testing.T) {
	e, err := ParseExpr("x > y")
	if err != nil {
		t.Fatal(err)
	}
	be, ok := e.(*BinaryExpr)
	if !ok || be.Op != OpGt {
		t.Fatalf("want x > y, got %#v", e)
	}
	if _, err := ParseExpr("x >"); err == nil {
		t.Fatal("want error for incomplete expression")
	}
	if _, err := ParseExpr("x > y AND"); err == nil {
		t.Fatal("want error for trailing AND")
	}
	// Policy conditions from Figure 4.
	for _, c := range []string{"x>y", "z<2", "SUM(z)>100"} {
		if _, err := ParseExpr(c); err != nil {
			t.Errorf("ParseExpr(%q): %v", c, err)
		}
	}
}

func TestErrSyntaxWrapped(t *testing.T) {
	_, err := Parse("SELECT x FROM d WHERE x >")
	if !errors.Is(err, ErrSyntax) {
		t.Fatalf("want ErrSyntax, got %v", err)
	}
}

func TestConjunctsAndAndAll(t *testing.T) {
	e, err := ParseExpr("a > 1 AND b < 2 AND c = 3")
	if err != nil {
		t.Fatal(err)
	}
	cs := Conjuncts(e)
	if len(cs) != 3 {
		t.Fatalf("want 3 conjuncts, got %d", len(cs))
	}
	back := AndAll(cs)
	if back.SQL() != e.SQL() {
		t.Fatalf("AndAll mismatch: %s vs %s", back.SQL(), e.SQL())
	}
	if AndAll(nil) != nil {
		t.Fatal("AndAll(nil) should be nil")
	}
	if got := And(nil, cs[0]); got.SQL() != cs[0].SQL() {
		t.Fatalf("And(nil, x) = %s", got.SQL())
	}
}

func TestCloneSelectIndependence(t *testing.T) {
	s, err := Parse("SELECT x, AVG(z) AS za FROM (SELECT x, z FROM d WHERE z < 2) GROUP BY x HAVING SUM(z) > 1 ORDER BY x LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	c := CloneSelect(s)
	if c.SQL() != s.SQL() {
		t.Fatalf("clone differs: %s vs %s", c.SQL(), s.SQL())
	}
	// Mutate the clone; original must not change.
	c.Items[0].Alias = "mut"
	c.GroupBy[0].(*ColumnRef).Name = "q"
	inner := InnermostSelect(c)
	inner.Where = nil
	if s.Items[0].Alias == "mut" || s.GroupBy[0].(*ColumnRef).Name == "q" {
		t.Fatal("mutating clone changed original")
	}
	if InnermostSelect(s).Where == nil {
		t.Fatal("mutating clone FROM changed original")
	}
}

func TestColumnHelpers(t *testing.T) {
	e, err := ParseExpr("x > y AND z + x < 2")
	if err != nil {
		t.Fatal(err)
	}
	names := ColumnNames(e)
	want := []string{"x", "y", "z"}
	if len(names) != len(want) {
		t.Fatalf("ColumnNames = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("ColumnNames = %v, want %v", names, want)
		}
	}
}

func TestAggregateDetection(t *testing.T) {
	e, _ := ParseExpr("SUM(z) > 100")
	if !ContainsAggregate(e) {
		t.Fatal("SUM(z) > 100 contains an aggregate")
	}
	w, _ := ParseExpr("AVG(z) OVER (PARTITION BY x)")
	if ContainsAggregate(w) {
		t.Fatal("window AVG is not a plain aggregate")
	}
	if !ContainsWindow(w) {
		t.Fatal("window AVG should be detected")
	}
	if n := len(WindowCalls(w)); n != 1 {
		t.Fatalf("want 1 window call, got %d", n)
	}
}

func TestBaseTables(t *testing.T) {
	s, err := Parse("SELECT x FROM (SELECT x FROM d1 JOIN d2 ON d1.k = d2.k) WHERE x > 0")
	if err != nil {
		t.Fatal(err)
	}
	bt := BaseTables(s)
	if len(bt) != 2 || bt[0] != "d1" || bt[1] != "d2" {
		t.Fatalf("BaseTables = %v", bt)
	}
}

func TestInnermostSelect(t *testing.T) {
	s, err := Parse("SELECT a FROM (SELECT b FROM (SELECT c FROM base))")
	if err != nil {
		t.Fatal(err)
	}
	in := InnermostSelect(s)
	tn, ok := in.From.(*TableName)
	if !ok || tn.Name != "base" {
		t.Fatalf("innermost FROM = %#v", in.From)
	}
}

func TestCommentsAndCase(t *testing.T) {
	q := `select X, Y -- trailing comment
	      from D /* block
	      comment */ where X > 1`
	s, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	if s.Items[0].Expr.(*ColumnRef).Name != "x" {
		t.Fatal("identifiers should be lower-cased")
	}
	tn := s.From.(*TableName)
	if tn.Name != "d" {
		t.Fatal("table names should be lower-cased")
	}
}

func TestQuotedIdentifier(t *testing.T) {
	s := roundTrip(t, `SELECT "Weird Col" FROM d`)
	if s.Items[0].Expr.(*ColumnRef).Name != "Weird Col" {
		t.Fatalf("quoted ident mishandled: %#v", s.Items[0].Expr)
	}
}

func TestSemicolonAccepted(t *testing.T) {
	if _, err := Parse("SELECT x FROM d;"); err != nil {
		t.Fatal(err)
	}
}

func TestEqualExpr(t *testing.T) {
	a, _ := ParseExpr("x > y")
	b, _ := ParseExpr("x  >  y")
	c, _ := ParseExpr("x < y")
	if !EqualExpr(a, b) {
		t.Fatal("whitespace-equal expressions should be equal")
	}
	if EqualExpr(a, c) {
		t.Fatal("different ops should differ")
	}
	if !EqualExpr(nil, nil) || EqualExpr(a, nil) {
		t.Fatal("nil handling broken")
	}
}

func FuzzParsePrint(f *testing.F) {
	seeds := []string{
		"SELECT x FROM d",
		"SELECT * FROM stream WHERE z < 2",
		"SELECT regr_intercept(y, x) OVER (PARTITION BY z ORDER BY t) FROM (SELECT x, y, z, t FROM d)",
		"SELECT x, y, AVG(z) AS zavg FROM d WHERE x > y GROUP BY x, y HAVING SUM(z) > 100",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		s, err := Parse(in)
		if err != nil {
			return
		}
		printed := s.SQL()
		s2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed SQL does not reparse: %q -> %q: %v", in, printed, err)
		}
		if s2.SQL() != printed {
			t.Fatalf("not a fixpoint: %q -> %q -> %q", in, printed, s2.SQL())
		}
	})
}

func TestParseLexerEdgeCases(t *testing.T) {
	if _, err := Parse("SELECT x FROM d WHERE x > 1 /* unterminated"); err == nil {
		t.Fatal("unterminated block comment should fail")
	}
	if _, err := Parse(`SELECT "unterminated FROM d`); err == nil {
		t.Fatal("unterminated quoted identifier should fail")
	}
	if _, err := Parse("SELECT x FROM d WHERE x > 1 @"); err == nil {
		t.Fatal("stray @ should fail")
	}
	// != is accepted as <>
	s, err := Parse("SELECT x FROM d WHERE x != 1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.SQL(), "<>") {
		t.Fatalf("!= should print as <>: %s", s.SQL())
	}
}
