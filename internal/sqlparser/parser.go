package sqlparser

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"paradise/internal/schema"
)

// ErrSyntax wraps all parse errors.
var ErrSyntax = errors.New("sqlparser: syntax error")

// Parse parses a single SELECT statement (an optional trailing semicolon is
// allowed) and returns its AST.
func Parse(input string) (*Select, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, input: input}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokOp && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected trailing input %q", p.peek().text)
	}
	return sel, nil
}

// ParseExpr parses a standalone scalar/boolean expression. It is the entry
// point used by the privacy-policy loader for atomic conditions like "x>y".
func ParseExpr(input string) (Expr, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, input: input}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected trailing input %q", p.peek().text)
	}
	return e, nil
}

type parser struct {
	toks  []token
	pos   int
	input string
}

func (p *parser) peek() token  { return p.toks[p.pos] }
func (p *parser) peek2() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	tok := p.peek()
	line, col := 1, 1
	for i := 0; i < tok.pos && i < len(p.input); i++ {
		if p.input[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("%w at line %d col %d: %s", ErrSyntax, line, col, fmt.Sprintf(format, args...))
}

// acceptKeyword consumes the keyword if present.
func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().kind == tokKeyword && p.peek().text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptOp(op string) bool {
	if p.peek().kind == tokOp && p.peek().text == op {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errorf("expected %q, found %q", op, p.peek().text)
	}
	return nil
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{}
	if p.acceptKeyword("DISTINCT") {
		sel.Distinct = true
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		from, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		sel.From = from
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		items, err := p.parseOrderItems()
		if err != nil {
			return nil, err
		}
		sel.OrderBy = items
	}
	if p.acceptKeyword("LIMIT") {
		if p.peek().kind != tokNumber {
			return nil, p.errorf("expected number after LIMIT, found %q", p.peek().text)
		}
		v, err := strconv.ParseInt(p.next().text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad LIMIT value: %v", err)
		}
		sel.Limit = &v
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	// Plain or qualified star.
	if p.peek().kind == tokOp && p.peek().text == "*" {
		p.next()
		return SelectItem{Expr: &Star{}}, nil
	}
	if p.peek().kind == tokIdent && p.peek2().kind == tokOp && p.peek2().text == "." {
		// Possibly t.* — look two ahead.
		if p.pos+2 < len(p.toks) && p.toks[p.pos+2].kind == tokOp && p.toks[p.pos+2].text == "*" {
			table := p.next().text
			p.next() // .
			p.next() // *
			return SelectItem{Expr: &Star{Table: strings.ToLower(table)}}, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		if p.peek().kind != tokIdent {
			return SelectItem{}, p.errorf("expected alias after AS, found %q", p.peek().text)
		}
		item.Alias = strings.ToLower(p.next().text)
	} else if p.peek().kind == tokIdent {
		// implicit alias
		item.Alias = strings.ToLower(p.next().text)
	}
	return item, nil
}

func (p *parser) parseOrderItems() ([]OrderItem, error) {
	var items []OrderItem
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		it := OrderItem{Expr: e}
		if p.acceptKeyword("DESC") {
			it.Desc = true
		} else {
			p.acceptKeyword("ASC")
		}
		items = append(items, it)
		if !p.acceptOp(",") {
			break
		}
	}
	return items, nil
}

// parseTableRef parses a FROM clause with joins (left-associative).
func (p *parser) parseTableRef() (TableRef, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var jt JoinType
		switch {
		case p.acceptKeyword("CROSS"):
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = JoinCross
		case p.acceptKeyword("INNER"):
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = JoinInner
		case p.acceptKeyword("LEFT"):
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = JoinLeft
		case p.acceptKeyword("JOIN"):
			jt = JoinInner
		case p.peek().kind == tokOp && p.peek().text == ",":
			// Comma joins are accepted as CROSS JOIN only when followed by a
			// table primary; SELECT lists are parsed before FROM so commas
			// here always mean a join.
			p.next()
			right, err := p.parseTablePrimary()
			if err != nil {
				return nil, err
			}
			left = &Join{Type: JoinCross, Left: left, Right: right}
			continue
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		j := &Join{Type: jt, Left: left, Right: right}
		if jt != JoinCross {
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			j.On = on
		}
		left = j
	}
}

func (p *parser) parseTablePrimary() (TableRef, error) {
	if p.acceptOp("(") {
		if p.peek().kind == tokKeyword && p.peek().text == "SELECT" {
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			sq := &Subquery{Select: sel}
			sq.Alias = p.parseOptionalAlias()
			return sq, nil
		}
		// Parenthesized join.
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return tr, nil
	}
	if p.peek().kind != tokIdent {
		return nil, p.errorf("expected table name, found %q", p.peek().text)
	}
	name := strings.ToLower(p.next().text)
	t := &TableName{Name: name}
	t.Alias = p.parseOptionalAlias()
	return t, nil
}

func (p *parser) parseOptionalAlias() string {
	if p.acceptKeyword("AS") {
		if p.peek().kind == tokIdent {
			return strings.ToLower(p.next().text)
		}
		return ""
	}
	if p.peek().kind == tokIdent {
		return strings.ToLower(p.next().text)
	}
	return ""
}

// Expression parsing: precedence climbing.
// OR < AND < NOT < comparison/IS/IN/BETWEEN < additive < multiplicative < unary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: UnaryNot, X: x}, nil
	}
	return p.parseComparison()
}

var compOps = map[string]BinaryOp{
	"=": OpEq, "<>": OpNeq, "!=": OpNeq,
	"<": OpLt, "<=": OpLeq, ">": OpGt, ">=": OpGeq,
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKeyword("IS") {
		not := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: left, Not: not}, nil
	}
	not := false
	if p.peek().kind == tokKeyword && p.peek().text == "NOT" &&
		p.peek2().kind == tokKeyword && (p.peek2().text == "BETWEEN" || p.peek2().text == "IN" || p.peek2().text == "LIKE") {
		p.next()
		not = true
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Between{X: left, Lo: lo, Hi: hi, Not: not}, nil
	}
	if p.acceptKeyword("IN") {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &InList{X: left, List: list, Not: not}, nil
	}
	if p.acceptKeyword("LIKE") {
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		like := Expr(&FuncCall{Name: "like", Args: []Expr{left, pat}})
		if not {
			like = &UnaryExpr{Op: UnaryNot, X: like}
		}
		return like, nil
	}
	if p.peek().kind == tokOp {
		if op, ok := compOps[p.peek().text]; ok {
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.acceptOp("+"):
			op = OpAdd
		case p.acceptOp("-"):
			op = OpSub
		case p.acceptOp("||"):
			op = OpConcat
		default:
			return left, nil
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, L: left, R: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.acceptOp("*"):
			op = OpMul
		case p.acceptOp("/"):
			op = OpDiv
		case p.acceptOp("%"):
			op = OpMod
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, L: left, R: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negation into numeric literals for cleaner ASTs.
		if lit, ok := x.(*Literal); ok {
			switch lit.Value.Type() {
			case schema.TypeInt:
				return &Literal{Value: schema.Int(-lit.Value.AsInt())}, nil
			case schema.TypeFloat:
				return &Literal{Value: schema.Float(-lit.Value.AsFloat())}, nil
			}
		}
		return &UnaryExpr{Op: UnaryNeg, X: x}, nil
	}
	p.acceptOp("+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	tok := p.peek()
	switch tok.kind {
	case tokNumber:
		p.next()
		if strings.ContainsAny(tok.text, ".eE") {
			f, err := strconv.ParseFloat(tok.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q: %v", tok.text, err)
			}
			return &Literal{Value: schema.Float(f)}, nil
		}
		i, err := strconv.ParseInt(tok.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q: %v", tok.text, err)
		}
		return &Literal{Value: schema.Int(i)}, nil
	case tokString:
		p.next()
		return &Literal{Value: schema.String(tok.text)}, nil
	case tokKeyword:
		switch tok.text {
		case "NULL":
			p.next()
			return &Literal{Value: schema.Null()}, nil
		case "TRUE":
			p.next()
			return &Literal{Value: schema.Bool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Value: schema.Bool(false)}, nil
		case "CASE":
			return p.parseCase()
		case "NOT":
			p.next()
			x, err := p.parseNot()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{Op: UnaryNot, X: x}, nil
		}
		return nil, p.errorf("unexpected keyword %s", tok.text)
	case tokIdent:
		return p.parseIdentExpr()
	case tokOp:
		if tok.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if tok.text == "*" {
			p.next()
			return &Star{}, nil
		}
		return nil, p.errorf("unexpected token %q", tok.text)
	default:
		return nil, p.errorf("unexpected token %q", tok.text)
	}
}

func (p *parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN arm")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) parseIdentExpr() (Expr, error) {
	tok := p.next()
	name := identText(tok)
	// Function call?
	if p.peek().kind == tokOp && p.peek().text == "(" {
		return p.parseFuncCall(strings.ToLower(name))
	}
	// Qualified column t.c or qualified star t.*.
	if p.acceptOp(".") {
		if p.peek().kind == tokOp && p.peek().text == "*" {
			p.next()
			return &Star{Table: name}, nil
		}
		if p.peek().kind != tokIdent {
			return nil, p.errorf("expected column after %q., found %q", name, p.peek().text)
		}
		col := identText(p.next())
		return &ColumnRef{Table: name, Name: col}, nil
	}
	return &ColumnRef{Name: name}, nil
}

// identText lower-cases unquoted identifiers and preserves quoted ones,
// matching SQL's case-insensitivity rules for plain identifiers.
func identText(t token) string {
	if t.quoted {
		return t.text
	}
	return strings.ToLower(t.text)
}

func (p *parser) parseFuncCall(name string) (Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	f := &FuncCall{Name: name}
	if p.acceptOp("*") {
		f.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	} else {
		if p.acceptKeyword("DISTINCT") {
			f.Distinct = true
		}
		if !p.acceptOp(")") {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				f.Args = append(f.Args, a)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		}
	}
	if p.acceptKeyword("OVER") {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		w := &WindowSpec{}
		if p.acceptKeyword("PARTITION") {
			if err := p.expectKeyword("BY"); err != nil {
				return nil, err
			}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				w.PartitionBy = append(w.PartitionBy, e)
				if !p.acceptOp(",") {
					break
				}
			}
		}
		if p.acceptKeyword("ORDER") {
			if err := p.expectKeyword("BY"); err != nil {
				return nil, err
			}
			items, err := p.parseOrderItems()
			if err != nil {
				return nil, err
			}
			w.OrderBy = items
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		f.Over = w
	}
	return f, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
