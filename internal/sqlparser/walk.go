package sqlparser

// WalkExpr calls fn for e and every sub-expression, pre-order. If fn returns
// false the children of the current node are skipped.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *BinaryExpr:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case *UnaryExpr:
		WalkExpr(x.X, fn)
	case *IsNull:
		WalkExpr(x.X, fn)
	case *Between:
		WalkExpr(x.X, fn)
		WalkExpr(x.Lo, fn)
		WalkExpr(x.Hi, fn)
	case *InList:
		WalkExpr(x.X, fn)
		for _, it := range x.List {
			WalkExpr(it, fn)
		}
	case *CaseExpr:
		for _, w := range x.Whens {
			WalkExpr(w.Cond, fn)
			WalkExpr(w.Then, fn)
		}
		WalkExpr(x.Else, fn)
	case *FuncCall:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
		if x.Over != nil {
			for _, pe := range x.Over.PartitionBy {
				WalkExpr(pe, fn)
			}
			for _, o := range x.Over.OrderBy {
				WalkExpr(o.Expr, fn)
			}
		}
	}
}

// RewriteExpr rebuilds the expression bottom-up, replacing every node by
// fn(node). fn receives a node whose children are already rewritten.
// A nil input yields nil.
func RewriteExpr(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *BinaryExpr:
		return fn(&BinaryExpr{Op: x.Op, L: RewriteExpr(x.L, fn), R: RewriteExpr(x.R, fn)})
	case *UnaryExpr:
		return fn(&UnaryExpr{Op: x.Op, X: RewriteExpr(x.X, fn)})
	case *IsNull:
		return fn(&IsNull{X: RewriteExpr(x.X, fn), Not: x.Not})
	case *Between:
		return fn(&Between{X: RewriteExpr(x.X, fn), Lo: RewriteExpr(x.Lo, fn), Hi: RewriteExpr(x.Hi, fn), Not: x.Not})
	case *InList:
		list := make([]Expr, len(x.List))
		for i, it := range x.List {
			list[i] = RewriteExpr(it, fn)
		}
		return fn(&InList{X: RewriteExpr(x.X, fn), List: list, Not: x.Not})
	case *CaseExpr:
		whens := make([]CaseWhen, len(x.Whens))
		for i, w := range x.Whens {
			whens[i] = CaseWhen{Cond: RewriteExpr(w.Cond, fn), Then: RewriteExpr(w.Then, fn)}
		}
		return fn(&CaseExpr{Whens: whens, Else: RewriteExpr(x.Else, fn)})
	case *FuncCall:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = RewriteExpr(a, fn)
		}
		nf := &FuncCall{Name: x.Name, Star: x.Star, Distinct: x.Distinct, Args: args}
		if x.Over != nil {
			ws := &WindowSpec{}
			for _, pe := range x.Over.PartitionBy {
				ws.PartitionBy = append(ws.PartitionBy, RewriteExpr(pe, fn))
			}
			for _, o := range x.Over.OrderBy {
				ws.OrderBy = append(ws.OrderBy, OrderItem{Expr: RewriteExpr(o.Expr, fn), Desc: o.Desc})
			}
			nf.Over = ws
		}
		return fn(nf)
	case *ColumnRef:
		return fn(&ColumnRef{Table: x.Table, Name: x.Name})
	case *Literal:
		return fn(&Literal{Value: x.Value})
	case *Star:
		return fn(&Star{Table: x.Table})
	default:
		return fn(e)
	}
}

// CloneExpr deep-copies an expression.
func CloneExpr(e Expr) Expr {
	return RewriteExpr(e, func(x Expr) Expr { return x })
}

// CloneSelect deep-copies a SELECT statement.
func CloneSelect(s *Select) *Select {
	if s == nil {
		return nil
	}
	out := &Select{Distinct: s.Distinct}
	for _, it := range s.Items {
		out.Items = append(out.Items, SelectItem{Expr: CloneExpr(it.Expr), Alias: it.Alias})
	}
	out.From = CloneTableRef(s.From)
	out.Where = CloneExpr(s.Where)
	for _, g := range s.GroupBy {
		out.GroupBy = append(out.GroupBy, CloneExpr(g))
	}
	out.Having = CloneExpr(s.Having)
	for _, o := range s.OrderBy {
		out.OrderBy = append(out.OrderBy, OrderItem{Expr: CloneExpr(o.Expr), Desc: o.Desc})
	}
	if s.Limit != nil {
		l := *s.Limit
		out.Limit = &l
	}
	return out
}

// CloneTableRef deep-copies a table reference tree.
func CloneTableRef(t TableRef) TableRef {
	switch x := t.(type) {
	case nil:
		return nil
	case *TableName:
		return &TableName{Name: x.Name, Alias: x.Alias}
	case *Subquery:
		return &Subquery{Select: CloneSelect(x.Select), Alias: x.Alias}
	case *Join:
		return &Join{Type: x.Type, Left: CloneTableRef(x.Left), Right: CloneTableRef(x.Right), On: CloneExpr(x.On)}
	default:
		return t
	}
}

// ColumnRefs returns every column reference in the expression, pre-order.
func ColumnRefs(e Expr) []*ColumnRef {
	var out []*ColumnRef
	WalkExpr(e, func(x Expr) bool {
		if c, ok := x.(*ColumnRef); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

// ColumnNames returns the distinct unqualified column names referenced by
// the expression, in first-appearance order.
func ColumnNames(e Expr) []string {
	seen := make(map[string]bool)
	var out []string
	for _, c := range ColumnRefs(e) {
		if !seen[c.Name] {
			seen[c.Name] = true
			out = append(out, c.Name)
		}
	}
	return out
}

// Conjuncts splits a boolean expression at top-level ANDs.
// A nil expression yields nil.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinaryExpr); ok && b.Op == OpAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// AndAll combines expressions conjunctively; nil entries are skipped and an
// empty list yields nil.
func AndAll(exprs []Expr) Expr {
	var out Expr
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = &BinaryExpr{Op: OpAnd, L: out, R: e}
		}
	}
	return out
}

// And conjoins two expressions, tolerating nils.
func And(a, b Expr) Expr { return AndAll([]Expr{a, b}) }

// ContainsAggregate reports whether the expression contains an aggregate
// function call that is not a window function.
func ContainsAggregate(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		if f, ok := x.(*FuncCall); ok && f.IsAggregate() {
			found = true
			return false
		}
		return true
	})
	return found
}

// ContainsWindow reports whether the expression contains a window function.
func ContainsWindow(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		if f, ok := x.(*FuncCall); ok && f.IsWindow() {
			found = true
			return false
		}
		return true
	})
	return found
}

// Aggregates returns every aggregate (non-window) function call in the
// expression.
func Aggregates(e Expr) []*FuncCall {
	var out []*FuncCall
	WalkExpr(e, func(x Expr) bool {
		if f, ok := x.(*FuncCall); ok && f.IsAggregate() {
			out = append(out, f)
			return false
		}
		return true
	})
	return out
}

// WindowCalls returns every window function call in the expression.
func WindowCalls(e Expr) []*FuncCall {
	var out []*FuncCall
	WalkExpr(e, func(x Expr) bool {
		if f, ok := x.(*FuncCall); ok && f.IsWindow() {
			out = append(out, f)
		}
		return true
	})
	return out
}

// EqualExpr reports structural equality of two expressions. Rendering to
// canonical SQL keeps this simple and is precise for the ASTs this parser
// produces (printing is deterministic).
func EqualExpr(a, b Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.SQL() == b.SQL()
}

// WalkSelects calls fn for s and every nested derived-table SELECT,
// outermost first.
func WalkSelects(s *Select, fn func(*Select)) {
	if s == nil {
		return
	}
	fn(s)
	walkTableRefSelects(s.From, fn)
}

func walkTableRefSelects(t TableRef, fn func(*Select)) {
	switch x := t.(type) {
	case *Subquery:
		WalkSelects(x.Select, fn)
	case *Join:
		walkTableRefSelects(x.Left, fn)
		walkTableRefSelects(x.Right, fn)
	}
}

// InnermostSelect follows the FROM chain of derived tables and returns the
// deepest SELECT (the one closest to base tables). When the FROM clause is a
// join, the statement itself is its own innermost SELECT.
func InnermostSelect(s *Select) *Select {
	cur := s
	for {
		sq, ok := cur.From.(*Subquery)
		if !ok {
			return cur
		}
		cur = sq.Select
	}
}

// BaseTables returns the names of all base tables referenced anywhere in the
// statement, in first-appearance order.
func BaseTables(s *Select) []string {
	seen := make(map[string]bool)
	var out []string
	WalkSelects(s, func(q *Select) {
		collectBaseTables(q.From, seen, &out)
	})
	return out
}

func collectBaseTables(t TableRef, seen map[string]bool, out *[]string) {
	switch x := t.(type) {
	case *TableName:
		if !seen[x.Name] {
			seen[x.Name] = true
			*out = append(*out, x.Name)
		}
	case *Join:
		collectBaseTables(x.Left, seen, out)
		collectBaseTables(x.Right, seen, out)
	case *Subquery:
		// handled by WalkSelects
	}
}
