package sqlparser

import (
	"strings"

	"paradise/internal/schema"
)

// Node is implemented by every AST node and yields the SQL text of the node.
type Node interface {
	SQL() string
}

// Expr is a scalar (or boolean) expression.
type Expr interface {
	Node
	exprNode()
}

// BinaryOp enumerates binary operators in precedence classes.
type BinaryOp int

// Binary operators. Comparison operators keep SQL spelling via String.
const (
	OpOr BinaryOp = iota
	OpAnd
	OpEq
	OpNeq
	OpLt
	OpLeq
	OpGt
	OpGeq
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpConcat
)

// String returns the SQL spelling of the operator.
func (o BinaryOp) String() string {
	switch o {
	case OpOr:
		return "OR"
	case OpAnd:
		return "AND"
	case OpEq:
		return "="
	case OpNeq:
		return "<>"
	case OpLt:
		return "<"
	case OpLeq:
		return "<="
	case OpGt:
		return ">"
	case OpGeq:
		return ">="
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpConcat:
		return "||"
	default:
		return "?"
	}
}

// Comparison reports whether the operator compares two values.
func (o BinaryOp) Comparison() bool {
	switch o {
	case OpEq, OpNeq, OpLt, OpLeq, OpGt, OpGeq:
		return true
	}
	return false
}

// ColumnRef names a column, optionally qualified with a table or alias.
type ColumnRef struct {
	Table string // optional qualifier
	Name  string
}

func (*ColumnRef) exprNode() {}

// quoteIdent renders an identifier, double-quoting it when it is not a plain
// lower-case SQL identifier (the parser lower-cases unquoted identifiers, so
// anything else must have been quoted in the source).
func quoteIdent(s string) string {
	for i, r := range s {
		lower := r >= 'a' && r <= 'z'
		digit := r >= '0' && r <= '9'
		if !(lower || r == '_' || (i > 0 && digit)) {
			return `"` + s + `"`
		}
	}
	return s
}

// SQL implements Node.
func (c *ColumnRef) SQL() string {
	if c.Table != "" {
		return quoteIdent(c.Table) + "." + quoteIdent(c.Name)
	}
	return quoteIdent(c.Name)
}

// Literal is a constant value.
type Literal struct {
	Value schema.Value
}

func (*Literal) exprNode() {}

// SQL implements Node.
func (l *Literal) SQL() string { return l.Value.SQLLiteral() }

// Star is the * in SELECT * or COUNT(*). Table is the optional qualifier of
// a qualified star (t.*).
type Star struct {
	Table string
}

func (*Star) exprNode() {}

// SQL implements Node.
func (s *Star) SQL() string {
	if s.Table != "" {
		return s.Table + ".*"
	}
	return "*"
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   BinaryOp
	L, R Expr
}

func (*BinaryExpr) exprNode() {}

// SQL implements Node.
func (b *BinaryExpr) SQL() string {
	return childSQL(b, b.L, false) + " " + b.Op.String() + " " + childSQL(b, b.R, true)
}

// precedence returns a numeric precedence for parenthesization decisions.
func precedence(e Expr) int {
	switch x := e.(type) {
	case *BinaryExpr:
		switch x.Op {
		case OpOr:
			return 1
		case OpAnd:
			return 2
		case OpEq, OpNeq, OpLt, OpLeq, OpGt, OpGeq:
			return 4
		case OpAdd, OpSub, OpConcat:
			return 5
		case OpMul, OpDiv, OpMod:
			return 6
		default:
			return 6
		}
	case *UnaryExpr:
		if x.Op == UnaryNot {
			return 3
		}
		return 7
	case *Between, *InList, *IsNull:
		return 4
	default:
		return 8
	}
}

func childSQL(parent *BinaryExpr, child Expr, right bool) string {
	pp, cp := precedence(parent), precedence(child)
	need := cp < pp
	if cp == pp && right {
		// Left-associative operators need parens on the right side when
		// precedence ties (a - (b - c)).
		if bc, ok := child.(*BinaryExpr); ok && bc.Op != parent.Op {
			need = true
		} else if ok && (parent.Op == OpSub || parent.Op == OpDiv || parent.Op == OpMod) {
			need = true
		}
	}
	s := child.SQL()
	if need {
		return "(" + s + ")"
	}
	return s
}

// UnaryOp enumerates unary operators.
type UnaryOp int

// Unary operators.
const (
	UnaryNot UnaryOp = iota
	UnaryNeg
)

// UnaryExpr applies NOT or numeric negation.
type UnaryExpr struct {
	Op UnaryOp
	X  Expr
}

func (*UnaryExpr) exprNode() {}

// SQL implements Node.
func (u *UnaryExpr) SQL() string {
	inner := u.X.SQL()
	if precedence(u.X) < precedence(u) {
		inner = "(" + inner + ")"
	}
	if u.Op == UnaryNot {
		return "NOT " + inner
	}
	return "-" + inner
}

// IsNull is `x IS [NOT] NULL`.
type IsNull struct {
	X   Expr
	Not bool
}

func (*IsNull) exprNode() {}

// SQL implements Node.
func (n *IsNull) SQL() string {
	if n.Not {
		return n.X.SQL() + " IS NOT NULL"
	}
	return n.X.SQL() + " IS NULL"
}

// Between is `x [NOT] BETWEEN lo AND hi`.
type Between struct {
	X, Lo, Hi Expr
	Not       bool
}

func (*Between) exprNode() {}

// SQL implements Node.
func (b *Between) SQL() string {
	not := ""
	if b.Not {
		not = "NOT "
	}
	return b.X.SQL() + " " + not + "BETWEEN " + b.Lo.SQL() + " AND " + b.Hi.SQL()
}

// InList is `x [NOT] IN (e1, e2, ...)`.
type InList struct {
	X    Expr
	List []Expr
	Not  bool
}

func (*InList) exprNode() {}

// SQL implements Node.
func (in *InList) SQL() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.SQL()
	}
	not := ""
	if in.Not {
		not = "NOT "
	}
	return in.X.SQL() + " " + not + "IN (" + strings.Join(parts, ", ") + ")"
}

// CaseWhen is one WHEN ... THEN ... arm of a CASE expression.
type CaseWhen struct {
	Cond Expr
	Then Expr
}

// CaseExpr is a searched CASE expression.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr
}

func (*CaseExpr) exprNode() {}

// SQL implements Node.
func (c *CaseExpr) SQL() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		b.WriteString(" WHEN ")
		b.WriteString(w.Cond.SQL())
		b.WriteString(" THEN ")
		b.WriteString(w.Then.SQL())
	}
	if c.Else != nil {
		b.WriteString(" ELSE ")
		b.WriteString(c.Else.SQL())
	}
	b.WriteString(" END")
	return b.String()
}

// FuncCall is a scalar, aggregate or window function invocation.
// Aggregates used with OVER(...) become window functions.
type FuncCall struct {
	Name     string // lower-cased
	Star     bool   // COUNT(*)
	Distinct bool   // COUNT(DISTINCT x)
	Args     []Expr
	Over     *WindowSpec // non-nil for window functions
}

func (*FuncCall) exprNode() {}

// SQL implements Node.
func (f *FuncCall) SQL() string {
	// LIKE is lexed as a keyword, so the internal like(x, pat) call prints
	// in operator form to stay re-parseable.
	if f.Name == "like" && len(f.Args) == 2 && f.Over == nil {
		return f.Args[0].SQL() + " LIKE " + f.Args[1].SQL()
	}
	var b strings.Builder
	b.WriteString(strings.ToUpper(f.Name))
	b.WriteByte('(')
	if f.Star {
		b.WriteByte('*')
	} else {
		if f.Distinct {
			b.WriteString("DISTINCT ")
		}
		for i, a := range f.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.SQL())
		}
	}
	b.WriteByte(')')
	if f.Over != nil {
		b.WriteString(" OVER (")
		b.WriteString(f.Over.SQL())
		b.WriteByte(')')
	}
	return b.String()
}

// WindowSpec is the inside of an OVER (...) clause.
type WindowSpec struct {
	PartitionBy []Expr
	OrderBy     []OrderItem
}

// SQL implements Node.
func (w *WindowSpec) SQL() string {
	var parts []string
	if len(w.PartitionBy) > 0 {
		ps := make([]string, len(w.PartitionBy))
		for i, e := range w.PartitionBy {
			ps[i] = e.SQL()
		}
		parts = append(parts, "PARTITION BY "+strings.Join(ps, ", "))
	}
	if len(w.OrderBy) > 0 {
		os := make([]string, len(w.OrderBy))
		for i, o := range w.OrderBy {
			os[i] = o.SQL()
		}
		parts = append(parts, "ORDER BY "+strings.Join(os, ", "))
	}
	return strings.Join(parts, " ")
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SQL implements Node.
func (o OrderItem) SQL() string {
	if o.Desc {
		return o.Expr.SQL() + " DESC"
	}
	return o.Expr.SQL()
}

// SelectItem is one entry of the SELECT list.
type SelectItem struct {
	Expr  Expr
	Alias string // optional AS alias
}

// SQL implements Node.
func (s SelectItem) SQL() string {
	if s.Alias != "" {
		return s.Expr.SQL() + " AS " + s.Alias
	}
	return s.Expr.SQL()
}

// TableRef is a FROM-clause item: a base table, a derived table or a join.
type TableRef interface {
	Node
	tableRefNode()
}

// TableName references a base table or stream, optionally aliased.
type TableName struct {
	Name  string
	Alias string
}

func (*TableName) tableRefNode() {}

// SQL implements Node.
func (t *TableName) SQL() string {
	if t.Alias != "" {
		return t.Name + " AS " + t.Alias
	}
	return t.Name
}

// Subquery is a derived table: (SELECT ...) [AS alias].
type Subquery struct {
	Select *Select
	Alias  string
}

func (*Subquery) tableRefNode() {}

// SQL implements Node.
func (s *Subquery) SQL() string {
	out := "(" + s.Select.SQL() + ")"
	if s.Alias != "" {
		out += " AS " + s.Alias
	}
	return out
}

// JoinType enumerates join flavours.
type JoinType int

// Join flavours.
const (
	JoinInner JoinType = iota
	JoinLeft
	JoinCross
)

// String returns the SQL keyword sequence of the join type.
func (j JoinType) String() string {
	switch j {
	case JoinInner:
		return "JOIN"
	case JoinLeft:
		return "LEFT JOIN"
	case JoinCross:
		return "CROSS JOIN"
	default:
		return "JOIN"
	}
}

// Join combines two table refs.
type Join struct {
	Type        JoinType
	Left, Right TableRef
	On          Expr // nil for CROSS JOIN
}

func (*Join) tableRefNode() {}

// SQL implements Node.
func (j *Join) SQL() string {
	out := j.Left.SQL() + " " + j.Type.String() + " " + j.Right.SQL()
	if j.On != nil {
		out += " ON " + j.On.SQL()
	}
	return out
}

// Select is a full SELECT statement.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef // nil only for SELECT without FROM (not used in paper)
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    *int64
}

// SQL implements Node; it renders a canonical single-line query that
// re-parses to an identical AST.
func (s *Select) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.SQL())
	}
	if s.From != nil {
		b.WriteString(" FROM ")
		b.WriteString(s.From.SQL())
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.SQL())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(s.Having.SQL())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.SQL())
		}
	}
	if s.Limit != nil {
		b.WriteString(" LIMIT ")
		b.WriteString(formatInt(*s.Limit))
	}
	return b.String()
}

func formatInt(i int64) string {
	// small helper avoiding strconv import churn in this file
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		pos--
		buf[pos] = '-'
	}
	return string(buf[pos:])
}

// AggregateFunctions lists the aggregate function names the engine knows.
var AggregateFunctions = map[string]bool{
	"avg":            true,
	"sum":            true,
	"count":          true,
	"min":            true,
	"max":            true,
	"stddev":         true,
	"variance":       true,
	"regr_intercept": true,
	"regr_slope":     true,
	"regr_r2":        true,
	"corr":           true,
}

// IsAggregate reports whether the call is an aggregate used as an aggregate
// (i.e. without an OVER clause).
func (f *FuncCall) IsAggregate() bool {
	return AggregateFunctions[f.Name] && f.Over == nil
}

// IsWindow reports whether the call carries an OVER clause.
func (f *FuncCall) IsWindow() bool { return f.Over != nil }
