package sqlparser

import "testing"

const benchSimple = "SELECT x, y FROM d WHERE z < 2"

const benchUseCase = `SELECT regr_intercept(y, x) OVER (PARTITION BY zavg ORDER BY t)
 FROM (SELECT x, y, AVG(z) AS zavg, t FROM d
       WHERE x > y AND z < 2 GROUP BY x, y HAVING SUM(z) > 100)`

const benchWide = `SELECT a.x, b.y, COUNT(*) AS n, AVG(a.z) AS za
 FROM d AS a JOIN e AS b ON a.k = b.k LEFT JOIN f ON f.k = b.k
 WHERE a.x > 1 AND b.y BETWEEN 2 AND 9 AND f.s LIKE 'ab%'
 GROUP BY a.x, b.y HAVING COUNT(*) > 3 ORDER BY n DESC LIMIT 10`

func BenchmarkParseSimple(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchSimple); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseUseCase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchUseCase); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseWideJoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchWide); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrintUseCase(b *testing.B) {
	sel, err := Parse(benchUseCase)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sel.SQL()
	}
}

func BenchmarkCloneSelect(b *testing.B) {
	sel, err := Parse(benchUseCase)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CloneSelect(sel)
	}
}
