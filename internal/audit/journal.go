package audit

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
)

// ErrJournal wraps journal errors.
var ErrJournal = errors.New("audit: error")

// Entry is the audit record of one processed query.
type Entry struct {
	// Seq is the 1-based position in the journal.
	Seq int `json:"seq"`
	// Module is the policy module the query ran under.
	Module string `json:"module"`
	// OriginalSQL and RewrittenSQL document the preprocessing.
	OriginalSQL  string `json:"original_sql"`
	RewrittenSQL string `json:"rewritten_sql"`
	// RewriteSummary is the human-readable transformation digest.
	RewriteSummary string `json:"rewrite_summary"`
	// Denied marks queries the policy refused entirely.
	Denied bool `json:"denied,omitempty"`
	// DenyReason carries the refusal cause.
	DenyReason string `json:"deny_reason,omitempty"`
	// Failed marks queries that errored for non-policy reasons
	// (cancellation, execution failure); FailReason carries the cause.
	Failed     bool   `json:"failed,omitempty"`
	FailReason string `json:"fail_reason,omitempty"`
	// RawBytes and EgressBytes quantify the Figure 3 reduction.
	RawBytes    int `json:"raw_bytes"`
	EgressBytes int `json:"egress_bytes"`
	// ResultRows is the cardinality the requester received.
	ResultRows int `json:"result_rows"`
	// AnonMethod names the postprocessing, empty when none ran.
	AnonMethod string `json:"anon_method,omitempty"`
	// DDRatio is the §3.2 quality ratio of the anonymization.
	DDRatio float64 `json:"dd_ratio,omitempty"`
	// Satisfactory mirrors the §3.1 information-loss check.
	Satisfactory bool `json:"satisfactory"`
}

// Journal is an append-only, concurrency-safe audit log.
type Journal struct {
	mu      sync.RWMutex
	entries []Entry
}

// NewJournal creates an empty journal.
func NewJournal() *Journal { return &Journal{} }

// Append records one entry, assigning its sequence number.
func (j *Journal) Append(e Entry) Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	e.Seq = len(j.entries) + 1
	j.entries = append(j.entries, e)
	return e
}

// Len returns the number of entries.
func (j *Journal) Len() int {
	j.mu.RLock()
	defer j.mu.RUnlock()
	return len(j.entries)
}

// All returns a copy of every entry in order.
func (j *Journal) All() []Entry {
	j.mu.RLock()
	defer j.mu.RUnlock()
	out := make([]Entry, len(j.entries))
	copy(out, j.entries)
	return out
}

// ByModule returns the entries of one module, in order.
func (j *Journal) ByModule(module string) []Entry {
	j.mu.RLock()
	defer j.mu.RUnlock()
	var out []Entry
	for _, e := range j.entries {
		if e.Module == module {
			out = append(out, e)
		}
	}
	return out
}

// Denials returns every refused query.
func (j *Journal) Denials() []Entry {
	j.mu.RLock()
	defer j.mu.RUnlock()
	var out []Entry
	for _, e := range j.entries {
		if e.Denied {
			out = append(out, e)
		}
	}
	return out
}

// TotalEgress sums the bytes that left the apartment across all entries.
func (j *Journal) TotalEgress() int {
	j.mu.RLock()
	defer j.mu.RUnlock()
	total := 0
	for _, e := range j.entries {
		total += e.EgressBytes
	}
	return total
}

// WriteJSON streams the journal as a JSON array.
func (j *Journal) WriteJSON(w io.Writer) error {
	j.mu.RLock()
	defer j.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(j.entries); err != nil {
		return fmt.Errorf("%w: encode: %v", ErrJournal, err)
	}
	return nil
}

// ReadJSON loads a journal previously written with WriteJSON. Sequence
// numbers are reassigned to keep the append-only invariant.
func ReadJSON(r io.Reader) (*Journal, error) {
	var entries []Entry
	if err := json.NewDecoder(r).Decode(&entries); err != nil {
		return nil, fmt.Errorf("%w: decode: %v", ErrJournal, err)
	}
	j := NewJournal()
	for _, e := range entries {
		j.Append(e)
	}
	return j, nil
}
