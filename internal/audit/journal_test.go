package audit

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestAppendAssignsSequence(t *testing.T) {
	j := NewJournal()
	e1 := j.Append(Entry{Module: "m1", OriginalSQL: "SELECT 1"})
	e2 := j.Append(Entry{Module: "m2", OriginalSQL: "SELECT 2"})
	if e1.Seq != 1 || e2.Seq != 2 {
		t.Fatalf("seqs = %d, %d", e1.Seq, e2.Seq)
	}
	if j.Len() != 2 {
		t.Fatalf("len = %d", j.Len())
	}
}

func TestByModuleAndDenials(t *testing.T) {
	j := NewJournal()
	j.Append(Entry{Module: "a", EgressBytes: 10})
	j.Append(Entry{Module: "b", Denied: true, DenyReason: "policy"})
	j.Append(Entry{Module: "a", EgressBytes: 5})
	if n := len(j.ByModule("a")); n != 2 {
		t.Fatalf("ByModule(a) = %d", n)
	}
	den := j.Denials()
	if len(den) != 1 || den[0].Module != "b" {
		t.Fatalf("denials = %v", den)
	}
	if j.TotalEgress() != 15 {
		t.Fatalf("egress = %d", j.TotalEgress())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	j := NewJournal()
	j.Append(Entry{Module: "ActionFilter", OriginalSQL: "SELECT x FROM d",
		RewrittenSQL: "SELECT x FROM d WHERE x > y", EgressBytes: 42,
		AnonMethod: "mondrian", DDRatio: 0.5, Satisfactory: true})
	j.Append(Entry{Module: "Evil", OriginalSQL: "SELECT user FROM d",
		Denied: true, DenyReason: "denied attribute"})

	var buf bytes.Buffer
	if err := j.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mondrian") {
		t.Fatal("JSON lacks content")
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("restored len = %d", back.Len())
	}
	if len(back.Denials()) != 1 {
		t.Fatal("denial lost in round trip")
	}
	if back.All()[0].DDRatio != 0.5 {
		t.Fatal("fields lost")
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("bad JSON should error")
	}
}

func TestConcurrentAppend(t *testing.T) {
	j := NewJournal()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				j.Append(Entry{Module: "m"})
				_ = j.All()
				_ = j.TotalEgress()
			}
		}()
	}
	wg.Wait()
	if j.Len() != 400 {
		t.Fatalf("len = %d", j.Len())
	}
	// Sequence numbers are unique and dense.
	seen := map[int]bool{}
	for _, e := range j.All() {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}
