// Package audit keeps a provenance journal of every query the PArADISE
// processor answers: who asked (module), what was asked, what the privacy
// machinery did to it, and how much data left the apartment. The paper's
// companion work (METIS in PArADISE, [Heu15]) motivates exactly this —
// provenance management for sensor-data evaluations; the journal is the
// minimal end a user needs to audit their assistive system.
package audit
