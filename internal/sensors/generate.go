package sensors

import (
	"fmt"
	"math"
	"math/rand"

	"paradise/internal/schema"
	"paradise/internal/storage"
)

// GroundTruth is one labelled interval of a person's activity, used to score
// activity recognition and to measure information loss for the *intended*
// analysis.
type GroundTruth struct {
	Person   string
	TagID    int64
	Activity Activity
	FromMs   int64
	ToMs     int64
}

// Trace is a fully generated simulation: one row set per device family, the
// integrated database d, plus the activity ground truth.
type Trace struct {
	Scenario *Scenario
	// Device holds the generated rows per device family.
	Device map[Device]schema.Rows
	// Integrated is the per-user position table d (user, x, y, z, t).
	Integrated schema.Rows
	// Truth is the labelled activity timeline.
	Truth []GroundTruth
}

// Generate runs the simulation and produces a deterministic trace.
func Generate(sc *Scenario) (*Trace, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(sc.Seed))
	tr := &Trace{Scenario: sc, Device: make(map[Device]schema.Rows)}

	stepMs := int64(math.Round(1000 / sc.Rate))
	if stepMs < 1 {
		stepMs = 1
	}
	totalMs := sc.Duration.Milliseconds()

	// Per-person kinematic state.
	type pstate struct {
		pos      Point
		stepIdx  int
		stepEnd  int64
		activity Activity
		target   Point
	}
	states := make([]pstate, len(sc.Persons))
	for i, p := range sc.Persons {
		states[i] = pstate{pos: p.Start}
		if len(p.Steps) > 0 {
			states[i].activity = p.Steps[0].Activity
			states[i].stepEnd = p.Steps[0].For.Milliseconds()
			states[i].target = p.Steps[0].To
			tr.Truth = append(tr.Truth, GroundTruth{
				Person: p.Name, TagID: p.TagID, Activity: p.Steps[0].Activity,
				FromMs: 0, ToMs: minI64(states[i].stepEnd, totalMs),
			})
		}
	}

	// Ambient state for non-positional devices.
	temp := 21.0 + rng.Float64()*2

	for now := int64(0); now < totalMs; now += stepMs {
		occupied := make(map[int]bool) // floor cell -> someone standing on it

		for pi := range sc.Persons {
			p := &sc.Persons[pi]
			st := &states[pi]

			// Advance the script.
			for st.stepIdx < len(p.Steps) && now >= st.stepEnd {
				st.stepIdx++
				if st.stepIdx < len(p.Steps) {
					step := p.Steps[st.stepIdx]
					st.activity = step.Activity
					st.target = step.To
					from := st.stepEnd
					st.stepEnd += step.For.Milliseconds()
					tr.Truth = append(tr.Truth, GroundTruth{
						Person: p.Name, TagID: p.TagID, Activity: step.Activity,
						FromMs: from, ToMs: minI64(st.stepEnd, totalMs),
					})
				} else {
					st.activity = ActivityStand
					st.stepEnd = totalMs
					tr.Truth = append(tr.Truth, GroundTruth{
						Person: p.Name, TagID: p.TagID, Activity: ActivityStand,
						FromMs: st.stepEnd, ToMs: totalMs,
					})
				}
			}

			// Kinematics: walking moves toward the target at ~1.3 m/s.
			if st.activity == ActivityWalk {
				dx, dy := st.target.X-st.pos.X, st.target.Y-st.pos.Y
				dist := math.Hypot(dx, dy)
				stepLen := 1.3 * float64(stepMs) / 1000
				if dist <= stepLen {
					st.pos = st.target
				} else {
					st.pos.X += dx / dist * stepLen
					st.pos.Y += dy / dist * stepLen
				}
			}

			// Tag height by activity (metres), with sensor noise. The tag
			// is worn at chest height; falls put it near the floor. These
			// heights drive both the z<2 policy condition and the activity
			// classifier.
			var z float64
			switch st.activity {
			case ActivityWalk:
				z = 1.35 + 0.08*math.Sin(float64(now)/180) // gait bounce
			case ActivityStand, ActivityPresent:
				z = 1.40
			case ActivitySit:
				z = 0.95
			case ActivityFall:
				z = 0.25
			default:
				z = 1.40
			}
			z += rng.NormFloat64() * 0.03
			nx := st.pos.X + rng.NormFloat64()*0.05
			ny := st.pos.Y + rng.NormFloat64()*0.05
			if sc.PositionGridM > 0 {
				nx = math.Round(nx/sc.PositionGridM) * sc.PositionGridM
				ny = math.Round(ny/sc.PositionGridM) * sc.PositionGridM
			}

			// UbiSense occasionally reports invalid positions (the paper
			// mentions a validity flag).
			valid := rng.Float64() > 0.02

			tr.Device[DeviceUbisense] = append(tr.Device[DeviceUbisense], schema.Row{
				schema.Int(p.TagID), schema.Int(now),
				schema.Float(round3(nx)), schema.Float(round3(ny)), schema.Float(round3(z)),
				schema.Bool(valid),
			})
			if valid {
				tr.Integrated = append(tr.Integrated, schema.Row{
					schema.String(p.Name),
					schema.Float(round3(nx)), schema.Float(round3(ny)), schema.Float(round3(z)),
					schema.Int(now),
				})
			}

			// SensFloor fires for persons on the floor grid while standing
			// or walking (pressure from footsteps).
			if sc.FloorCells > 0 && (st.activity == ActivityWalk || st.activity == ActivityStand || st.activity == ActivityPresent || st.activity == ActivityFall) {
				cell := floorCell(sc, st.pos)
				if !occupied[cell] {
					occupied[cell] = true
					pressure := 60 + rng.NormFloat64()*5 // body weight distributed
					if st.activity == ActivityFall {
						pressure = 90 + rng.NormFloat64()*8 // whole body on the floor
					}
					tr.Device[DeviceSensFloor] = append(tr.Device[DeviceSensFloor], schema.Row{
						schema.Int(int64(cell)), schema.Int(now),
						schema.Float(round3(st.pos.X)), schema.Float(round3(st.pos.Y)),
						schema.Float(round3(pressure)),
					})
				}
			}
		}

		// Low-rate ambient devices sample at 1 Hz.
		if now%1000 < stepMs {
			sec := now / 1000
			temp += rng.NormFloat64() * 0.02
			for i := 0; i < sc.Thermometers; i++ {
				tr.Device[DeviceThermometer] = append(tr.Device[DeviceThermometer], schema.Row{
					schema.Int(int64(i + 1)), schema.Int(now),
					schema.Float(round3(temp + float64(i)*0.3)),
				})
			}
			for i := 0; i < sc.Lamps; i++ {
				level := 0.8
				if i%2 == 1 {
					level = 0.4
				}
				tr.Device[DeviceLamp] = append(tr.Device[DeviceLamp], schema.Row{
					schema.Int(int64(i + 1)), schema.Int(now), schema.Float(level),
				})
			}
			for i := 0; i < sc.Sockets; i++ {
				ma := 150 + 40*math.Sin(float64(sec)/7+float64(i)) + rng.NormFloat64()*5
				tr.Device[DevicePowerSocket] = append(tr.Device[DevicePowerSocket], schema.Row{
					schema.Int(int64(i + 1)), schema.Int(now), schema.Float(round3(ma)),
				})
			}
			for i := 0; i < sc.Screens; i++ {
				pos := 0.0
				if sec > 10 {
					pos = 1.0 // screens come down once the meeting starts
				}
				tr.Device[DeviceScreen] = append(tr.Device[DeviceScreen], schema.Row{
					schema.Int(int64(i + 1)), schema.Int(now), schema.Float(pos),
				})
			}
			for i := 0; i < sc.Pens; i++ {
				taken := i == 0 && sec%30 > 15 // the presenter picks up pen 1
				tr.Device[DevicePenSensor] = append(tr.Device[DevicePenSensor], schema.Row{
					schema.Int(int64(i + 1)), schema.Int(now), schema.Bool(taken),
				})
			}
			for i := 0; i < sc.VGAPorts; i++ {
				tr.Device[DeviceVGASensor] = append(tr.Device[DeviceVGASensor], schema.Row{
					schema.Int(int64(i + 1)), schema.Int(now),
					schema.Int(int64(i%2 + 1)), schema.Bool(i == 0),
				})
			}
			for i := 0; i < sc.Blinds; i++ {
				tr.Device[DeviceEIBGateway] = append(tr.Device[DeviceEIBGateway], schema.Row{
					schema.Int(int64(i + 1)), schema.Int(now), schema.Float(0.5),
				})
			}
		}
	}
	return tr, nil
}

func floorCell(sc *Scenario, p Point) int {
	side := int(math.Ceil(math.Sqrt(float64(sc.FloorCells))))
	if side < 1 {
		side = 1
	}
	cx := int(p.X / sc.Room.Width * float64(side))
	cy := int(p.Y / sc.Room.Depth * float64(side))
	cx = clamp(cx, 0, side-1)
	cy = clamp(cy, 0, side-1)
	return cy*side + cx
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func round3(f float64) float64 { return math.Round(f*1000) / 1000 }

// BuildStore loads a trace into a fresh store: one table per device family
// plus the integrated database d and the sensor-level stream relation.
func BuildStore(tr *Trace) (*storage.Store, error) {
	st := storage.NewStore()
	for _, dev := range AllDevices {
		rel := DeviceSchema(dev)
		tab := st.Create(rel)
		if err := tab.Append(tr.Device[dev]...); err != nil {
			return nil, fmt.Errorf("sensors: load %s: %w", dev, err)
		}
	}
	d := st.Create(IntegratedSchema())
	if err := d.Append(tr.Integrated...); err != nil {
		return nil, fmt.Errorf("sensors: load d: %w", err)
	}
	// The stream relation carries the same positions keyed by tag instead
	// of user name (the sensor does not know user identities).
	stream := st.Create(StreamSchema())
	for _, row := range tr.Device[DeviceUbisense] {
		// (tag_id, t, x, y, z, valid) -> (tag_id, x, y, z, t), valid only
		if row[5].AsBool() {
			if err := stream.Append(schema.Row{row[0], row[2], row[3], row[4], row[1]}); err != nil {
				return nil, fmt.Errorf("sensors: load stream: %w", err)
			}
		}
	}
	return st, nil
}

// TruthAt returns the ground-truth activity of a tag at time tMs, or "".
func (tr *Trace) TruthAt(tagID int64, tMs int64) Activity {
	for _, g := range tr.Truth {
		if g.TagID == tagID && tMs >= g.FromMs && tMs < g.ToMs {
			return g.Activity
		}
	}
	return ""
}

// RowCounts summarizes the trace volume per device, for Figure 1's
// trace-generation bench.
func (tr *Trace) RowCounts() map[Device]int {
	out := make(map[Device]int, len(tr.Device))
	for d, rows := range tr.Device {
		out[d] = len(rows)
	}
	return out
}
