// Package sensors simulates the Smart Appliance Lab of Grunert & Heuer
// (EDBT 2016, §1): the device ensemble of a smart meeting room or AAL
// apartment, generating deterministic, seeded sensor traces with activity
// ground truth. The real lab's hardware (UbiSense tags, SensFloor, EIB bus,
// Extron switches) is unavailable, so this package produces relations with
// the same schemas and statistical shape; every downstream component — the
// query processor, the rewriter, the fragmenter, the anonymizer — only ever
// sees these relations, so the substitution exercises identical code paths.
package sensors
