package sensors

import (
	"testing"
	"time"

	"paradise/internal/schema"
)

func TestGenerateDeterministic(t *testing.T) {
	sc1 := Meeting(3, 20*time.Second, 42)
	sc2 := Meeting(3, 20*time.Second, 42)
	tr1, err := Generate(sc1)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Generate(sc2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr1.Integrated) != len(tr2.Integrated) {
		t.Fatalf("different cardinalities: %d vs %d", len(tr1.Integrated), len(tr2.Integrated))
	}
	for i := range tr1.Integrated {
		for j := range tr1.Integrated[i] {
			if !tr1.Integrated[i][j].Identical(tr2.Integrated[i][j]) {
				t.Fatalf("row %d col %d differs: %s vs %s",
					i, j, tr1.Integrated[i][j].Format(), tr2.Integrated[i][j].Format())
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	tr1, _ := Generate(Meeting(2, 10*time.Second, 1))
	tr2, _ := Generate(Meeting(2, 10*time.Second, 2))
	same := true
	for i := range tr1.Integrated {
		if i >= len(tr2.Integrated) {
			same = false
			break
		}
		if !tr1.Integrated[i][1].Identical(tr2.Integrated[i][1]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should give different noise")
	}
}

func TestAllDevicesProduceRows(t *testing.T) {
	tr, err := Generate(Meeting(4, 30*time.Second, 7))
	if err != nil {
		t.Fatal(err)
	}
	for _, dev := range AllDevices {
		if dev == DevicePenSensor && tr.Scenario.Pens == 0 {
			continue
		}
		if len(tr.Device[dev]) == 0 {
			t.Errorf("device %s produced no rows", dev)
		}
	}
	counts := tr.RowCounts()
	if counts[DeviceUbisense] == 0 {
		t.Fatal("RowCounts broken")
	}
}

func TestDeviceRowsMatchSchemas(t *testing.T) {
	tr, err := Generate(Apartment(20*time.Second, true, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, dev := range AllDevices {
		rel := DeviceSchema(dev)
		if rel == nil {
			t.Fatalf("no schema for %s", dev)
		}
		for _, row := range tr.Device[dev] {
			if len(row) != rel.Arity() {
				t.Fatalf("%s row arity %d != schema %d", dev, len(row), rel.Arity())
			}
		}
	}
	if DeviceSchema(Device("bogus")) != nil {
		t.Fatal("bogus device should have no schema")
	}
}

func TestGroundTruthCoversTimeline(t *testing.T) {
	dur := 25 * time.Second
	tr, err := Generate(Apartment(dur, true, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Every integrated sample time must be labelled.
	for _, row := range tr.Integrated[:min(len(tr.Integrated), 500)] {
		tms := row[4].AsInt()
		if a := tr.TruthAt(100, tms); a == "" {
			t.Fatalf("no ground truth at t=%d", tms)
		}
	}
	// The fall scenario must contain a fall interval.
	hasFall := false
	for _, g := range tr.Truth {
		if g.Activity == ActivityFall {
			hasFall = true
		}
	}
	if !hasFall {
		t.Fatal("withFall scenario has no fall label")
	}
}

func TestFallLowersTagHeight(t *testing.T) {
	tr, err := Generate(Apartment(30*time.Second, true, 11))
	if err != nil {
		t.Fatal(err)
	}
	var fallZ, walkZ []float64
	for _, row := range tr.Integrated {
		tms := row[4].AsInt()
		z := row[3].AsFloat()
		switch tr.TruthAt(100, tms) {
		case ActivityFall:
			fallZ = append(fallZ, z)
		case ActivityWalk:
			walkZ = append(walkZ, z)
		}
	}
	if len(fallZ) == 0 || len(walkZ) == 0 {
		t.Fatal("need both fall and walk samples")
	}
	if mean(fallZ) >= mean(walkZ) {
		t.Fatalf("fall height %.2f should be below walk height %.2f", mean(fallZ), mean(walkZ))
	}
	if mean(fallZ) > 0.6 {
		t.Fatalf("fallen tag should be near the floor, got %.2f", mean(fallZ))
	}
}

func TestBuildStore(t *testing.T) {
	tr, err := Generate(Meeting(2, 10*time.Second, 9))
	if err != nil {
		t.Fatal(err)
	}
	st, err := BuildStore(tr)
	if err != nil {
		t.Fatal(err)
	}
	d, err := st.Table("d")
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != len(tr.Integrated) {
		t.Fatalf("d has %d rows, trace %d", d.Len(), len(tr.Integrated))
	}
	stream, err := st.Table("stream")
	if err != nil {
		t.Fatal(err)
	}
	// stream keeps only valid ubisense readings.
	if stream.Len() == 0 || stream.Len() > len(tr.Device[DeviceUbisense]) {
		t.Fatalf("stream rows = %d", stream.Len())
	}
	// d's user column flagged sensitive.
	if !d.Schema().Columns[0].Sensitive {
		t.Fatal("user column should be sensitive")
	}
}

func TestScenarioValidation(t *testing.T) {
	bad := []*Scenario{
		{Name: "r0", Rate: 0, Duration: time.Second, Room: Room{1, 1}, Persons: []Person{{Name: "a"}}},
		{Name: "d0", Rate: 10, Duration: 0, Room: Room{1, 1}, Persons: []Person{{Name: "a"}}},
		{Name: "noroom", Rate: 10, Duration: time.Second, Persons: []Person{{Name: "a"}}},
		{Name: "nopersons", Rate: 10, Duration: time.Second, Room: Room{1, 1}},
		{Name: "dup", Rate: 10, Duration: time.Second, Room: Room{1, 1},
			Persons: []Person{{Name: "a", TagID: 1}, {Name: "b", TagID: 1}}},
		{Name: "anon", Rate: 10, Duration: time.Second, Room: Room{1, 1},
			Persons: []Person{{Name: ""}}},
	}
	for _, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("scenario %s should be invalid", sc.Name)
		}
	}
	if err := Meeting(3, time.Minute, 1).Validate(); err != nil {
		t.Fatalf("meeting scenario invalid: %v", err)
	}
	if err := Lecture(5, time.Minute, 1).Validate(); err != nil {
		t.Fatalf("lecture scenario invalid: %v", err)
	}
}

func TestWalkMovesPosition(t *testing.T) {
	tr, err := Generate(Apartment(20*time.Second, false, 17))
	if err != nil {
		t.Fatal(err)
	}
	first := tr.Integrated[0]
	last := tr.Integrated[len(tr.Integrated)-1]
	dx := first[1].AsFloat() - last[1].AsFloat()
	dy := first[2].AsFloat() - last[2].AsFloat()
	if dx*dx+dy*dy < 0.5 {
		t.Fatal("resident should have moved across the apartment")
	}
}

func TestIntegratedSchemaShape(t *testing.T) {
	rel := IntegratedSchema()
	for i, want := range []string{"user", "x", "y", "z", "t"} {
		if rel.Columns[i].Name != want {
			t.Fatalf("column %d = %s, want %s", i, rel.Columns[i].Name, want)
		}
	}
	if !rel.Columns[0].Sensitive {
		t.Fatal("user must be sensitive")
	}
	srel := StreamSchema()
	if srel.Name != "stream" || !srel.Columns[0].Sensitive {
		t.Fatal("stream schema shape wrong")
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Ensure schema package is exercised for the value rows (guards against
// accidental schema drift in generator code).
func TestUbisenseValidityFlag(t *testing.T) {
	tr, err := Generate(Meeting(1, 10*time.Second, 23))
	if err != nil {
		t.Fatal(err)
	}
	sawInvalid := false
	for _, row := range tr.Device[DeviceUbisense] {
		if row[5].Type() != schema.TypeBool {
			t.Fatal("valid flag must be boolean")
		}
		if !row[5].AsBool() {
			sawInvalid = true
		}
	}
	if !sawInvalid {
		t.Log("no invalid readings in this seed (2% rate); acceptable but unusual")
	}
}
