package sensors

import (
	"paradise/internal/schema"
)

// Device identifies one sensor family of the lab.
type Device string

// The device families listed in §1 of the paper.
const (
	DeviceLamp        Device = "lamps"
	DeviceScreen      Device = "screens"
	DevicePowerSocket Device = "powersocket"
	DevicePenSensor   Device = "pensensor"
	DeviceThermometer Device = "thermometer"
	DeviceUbisense    Device = "ubisense"
	DeviceSensFloor   Device = "sensfloor"
	DeviceVGASensor   Device = "vgasensor"
	DeviceEIBGateway  Device = "eibgateway"
)

// AllDevices lists every simulated device family in stable order.
var AllDevices = []Device{
	DeviceLamp, DeviceScreen, DevicePowerSocket, DevicePenSensor,
	DeviceThermometer, DeviceUbisense, DeviceSensFloor, DeviceVGASensor,
	DeviceEIBGateway,
}

// DeviceSchema returns the relation schema a device family produces.
// Timestamps are integer ticks (milliseconds since scenario start) so query
// results are exactly reproducible across platforms.
func DeviceSchema(d Device) *schema.Relation {
	switch d {
	case DeviceLamp:
		return schema.NewRelation(string(d),
			schema.Col("lamp_id", schema.TypeInt),
			schema.Col("t", schema.TypeInt),
			schema.Col("level", schema.TypeFloat), // dim level 0..1
		)
	case DeviceScreen:
		return schema.NewRelation(string(d),
			schema.Col("screen_id", schema.TypeInt),
			schema.Col("t", schema.TypeInt),
			schema.Col("position", schema.TypeFloat), // 0 = up, 1 = down
		)
	case DevicePowerSocket:
		return schema.NewRelation(string(d),
			schema.Col("socket_id", schema.TypeInt),
			schema.Col("t", schema.TypeInt),
			schema.Col("milliamps", schema.TypeFloat),
		)
	case DevicePenSensor:
		return schema.NewRelation(string(d),
			schema.Col("pen_id", schema.TypeInt),
			schema.Col("t", schema.TypeInt),
			schema.Col("taken", schema.TypeBool),
		)
	case DeviceThermometer:
		return schema.NewRelation(string(d),
			schema.Col("sensor_id", schema.TypeInt),
			schema.Col("t", schema.TypeInt),
			schema.Col("celsius", schema.TypeFloat),
		)
	case DeviceUbisense:
		return schema.NewRelation(string(d),
			schema.SensitiveCol("tag_id", schema.TypeInt), // one tag per user
			schema.Col("t", schema.TypeInt),
			schema.Col("x", schema.TypeFloat),
			schema.Col("y", schema.TypeFloat),
			schema.Col("z", schema.TypeFloat),
			schema.Col("valid", schema.TypeBool),
		)
	case DeviceSensFloor:
		return schema.NewRelation(string(d),
			schema.Col("cell_id", schema.TypeInt),
			schema.Col("t", schema.TypeInt),
			schema.Col("x", schema.TypeFloat),
			schema.Col("y", schema.TypeFloat),
			schema.Col("pressure", schema.TypeFloat), // kPa
		)
	case DeviceVGASensor:
		return schema.NewRelation(string(d),
			schema.Col("port_id", schema.TypeInt),
			schema.Col("t", schema.TypeInt),
			schema.Col("projector", schema.TypeInt),
			schema.Col("connected", schema.TypeBool),
		)
	case DeviceEIBGateway:
		return schema.NewRelation(string(d),
			schema.Col("blind_id", schema.TypeInt),
			schema.Col("t", schema.TypeInt),
			schema.Col("position", schema.TypeFloat), // 0 = open, 1 = closed
		)
	default:
		return nil
	}
}

// IntegratedSchema is the schema of the integrated database d the paper's
// queries run on: per-user positions with timestamps, joined from the
// UbiSense tags. The user column carries a direct personal reference and is
// flagged sensitive; x, y, z, t are the attributes of the running example.
func IntegratedSchema() *schema.Relation {
	return schema.NewRelation("d",
		schema.SensitiveCol("user", schema.TypeString),
		schema.Col("x", schema.TypeFloat),
		schema.Col("y", schema.TypeFloat),
		schema.Col("z", schema.TypeFloat),
		schema.Col("t", schema.TypeInt),
	)
}

// StreamSchema is the sensor-level raw stream relation the lowest fragment
// queries (`SELECT * FROM stream WHERE z < 2` in §4.2). It mirrors the
// integrated schema minus the user resolution (tags, not names).
func StreamSchema() *schema.Relation {
	return schema.NewRelation("stream",
		schema.SensitiveCol("tag_id", schema.TypeInt),
		schema.Col("x", schema.TypeFloat),
		schema.Col("y", schema.TypeFloat),
		schema.Col("z", schema.TypeFloat),
		schema.Col("t", schema.TypeInt),
	)
}
