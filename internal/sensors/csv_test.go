package sensors

import (
	"bytes"
	"testing"
	"time"

	"paradise/internal/storage"
)

// TestTraceCSVRoundTrip exercises the cmd/smartlab data path: every device
// table of a generated trace survives CSV export and re-import unchanged.
func TestTraceCSVRoundTrip(t *testing.T) {
	tr, err := Generate(Meeting(3, 15*time.Second, 77))
	if err != nil {
		t.Fatal(err)
	}
	for _, dev := range AllDevices {
		rel := DeviceSchema(dev)
		rows := tr.Device[dev]
		if len(rows) == 0 {
			continue
		}
		var buf bytes.Buffer
		if err := storage.WriteCSV(&buf, rel, rows); err != nil {
			t.Fatalf("%s: write: %v", dev, err)
		}
		back, err := storage.ReadCSV(&buf, rel)
		if err != nil {
			t.Fatalf("%s: read: %v", dev, err)
		}
		if len(back) != len(rows) {
			t.Fatalf("%s: %d rows in, %d out", dev, len(rows), len(back))
		}
		for i := range rows {
			for j := range rows[i] {
				if !rows[i][j].Identical(back[i][j]) {
					t.Fatalf("%s row %d col %d: %s != %s",
						dev, i, j, rows[i][j].Format(), back[i][j].Format())
				}
			}
		}
	}

	// The integrated table too.
	var buf bytes.Buffer
	if err := storage.WriteCSV(&buf, IntegratedSchema(), tr.Integrated); err != nil {
		t.Fatal(err)
	}
	back, err := storage.ReadCSV(&buf, IntegratedSchema())
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(tr.Integrated) {
		t.Fatalf("integrated: %d vs %d", len(back), len(tr.Integrated))
	}
}
