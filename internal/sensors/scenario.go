package sensors

import (
	"fmt"
	"time"
)

// Activity is the ground-truth activity of a person at a point in time. The
// recognition substrate scores itself against these labels, mirroring the
// computational state-space models the paper cites [KNY+14].
type Activity string

// Ground-truth activities.
const (
	ActivityWalk    Activity = "walk"
	ActivityStand   Activity = "stand"
	ActivitySit     Activity = "sit"
	ActivityFall    Activity = "fall"
	ActivityPresent Activity = "present" // presenting at the smart board
)

// Point is a position in the room's Cartesian system (metres).
type Point struct {
	X, Y float64
}

// Step is one scripted phase of a person's behaviour.
type Step struct {
	Activity Activity
	For      time.Duration
	// To is the walk target; ignored for stationary activities.
	To Point
}

// Person is one tracked user with a UbiSense tag and a behaviour script.
type Person struct {
	Name  string
	TagID int64
	Start Point
	Steps []Step
}

// Room describes the physical bounds of the environment.
type Room struct {
	Width, Depth float64 // metres
}

// Scenario is a full simulation configuration.
type Scenario struct {
	Name string
	Room Room
	// Rate is the sensor sampling rate in Hz (the paper: up to 100 Hz).
	Rate float64
	// Duration of the simulation.
	Duration time.Duration
	// Seed makes every generated trace reproducible.
	Seed    int64
	Persons []Person

	// Device counts; the paper's Table 1 assumes hundreds of sensors in
	// ten to fifty appliances per person.
	Lamps, Screens, Sockets, Pens, Thermometers, FloorCells, VGAPorts, Blinds int

	// PositionGridM quantizes reported x/y positions to a grid of this
	// cell size in metres (0 disables). Real UbiSense installations have
	// 15-30 cm accuracy; a coarser grid makes GROUP BY x, y form
	// meaningful grouping sets, which the Figure 4 policy's HAVING
	// safeguard presumes.
	PositionGridM float64
}

// Validate reports configuration errors before generation.
func (s *Scenario) Validate() error {
	if s.Rate <= 0 || s.Rate > 1000 {
		return fmt.Errorf("sensors: rate %v Hz out of range (0, 1000]", s.Rate)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("sensors: non-positive duration %v", s.Duration)
	}
	if s.Room.Width <= 0 || s.Room.Depth <= 0 {
		return fmt.Errorf("sensors: room %vx%v must be positive", s.Room.Width, s.Room.Depth)
	}
	if len(s.Persons) == 0 {
		return fmt.Errorf("sensors: scenario needs at least one person")
	}
	seen := map[int64]bool{}
	for _, p := range s.Persons {
		if p.Name == "" {
			return fmt.Errorf("sensors: person without name")
		}
		if seen[p.TagID] {
			return fmt.Errorf("sensors: duplicate tag id %d", p.TagID)
		}
		seen[p.TagID] = true
	}
	return nil
}

// Meeting builds the Smart Meeting Room scenario of §1: n participants walk
// in, sit down, one presents at the smart board, then everyone leaves.
func Meeting(n int, dur time.Duration, seed int64) *Scenario {
	if n < 1 {
		n = 1
	}
	sc := &Scenario{
		Name:     "meeting",
		Room:     Room{Width: 8, Depth: 6},
		Rate:     20,
		Duration: dur,
		Seed:     seed,
		Lamps:    6, Screens: 2, Sockets: 8, Pens: 4,
		Thermometers: 1, FloorCells: 16, VGAPorts: 4, Blinds: 3,
	}
	phase := dur / 4
	for i := 0; i < n; i++ {
		seat := Point{X: 2 + float64(i%4)*1.2, Y: 2 + float64(i/4)*1.0}
		p := Person{
			Name:  fmt.Sprintf("participant%d", i+1),
			TagID: int64(100 + i),
			Start: Point{X: 0.5, Y: 0.5},
			Steps: []Step{
				{Activity: ActivityWalk, For: phase, To: seat},
				{Activity: ActivitySit, For: phase},
			},
		}
		if i == 0 {
			// The presenter walks to the smart board and presents.
			p.Steps = append(p.Steps,
				Step{Activity: ActivityWalk, For: phase / 2, To: Point{X: 7, Y: 1}},
				Step{Activity: ActivityPresent, For: phase/2 + phase},
			)
		} else {
			p.Steps = append(p.Steps,
				Step{Activity: ActivitySit, For: phase},
				Step{Activity: ActivityWalk, For: phase, To: Point{X: 0.5, Y: 0.5}},
			)
		}
		sc.Persons = append(sc.Persons, p)
	}
	return sc
}

// Apartment builds the AAL scenario: one elderly resident moving through a
// daily routine; when withFall is set, the routine ends in a fall — the
// event the "Poodle" fall-detection service must still detect after privacy
// processing.
func Apartment(dur time.Duration, withFall bool, seed int64) *Scenario {
	sc := &Scenario{
		Name:     "apartment",
		Room:     Room{Width: 10, Depth: 8},
		Rate:     20,
		Duration: dur,
		Seed:     seed,
		Lamps:    10, Screens: 1, Sockets: 12, Pens: 0,
		Thermometers: 3, FloorCells: 32, VGAPorts: 1, Blinds: 5,
	}
	phase := dur / 5
	steps := []Step{
		{Activity: ActivityWalk, For: phase, To: Point{X: 8, Y: 2}}, // to the kitchen
		{Activity: ActivityStand, For: phase},                       // cooking
		{Activity: ActivityWalk, For: phase, To: Point{X: 2, Y: 6}}, // to the couch
		{Activity: ActivitySit, For: phase},                         // resting
		{Activity: ActivityWalk, For: phase, To: Point{X: 5, Y: 4}}, // across the room
	}
	if withFall {
		steps[4] = Step{Activity: ActivityWalk, For: phase / 2, To: Point{X: 5, Y: 4}}
		steps = append(steps, Step{Activity: ActivityFall, For: phase / 2})
	}
	sc.Persons = []Person{{
		Name: "resident", TagID: 100, Start: Point{X: 1, Y: 1}, Steps: steps,
	}}
	return sc
}

// Lecture builds a lecture scenario: one lecturer presenting, the audience
// seated, used by the meeting-room example application.
func Lecture(audience int, dur time.Duration, seed int64) *Scenario {
	sc := Meeting(audience+1, dur, seed)
	sc.Name = "lecture"
	// The lecturer presents for the entire duration.
	sc.Persons[0].Steps = []Step{
		{Activity: ActivityWalk, For: dur / 10, To: Point{X: 7, Y: 1}},
		{Activity: ActivityPresent, For: dur - dur/10},
	}
	return sc
}
