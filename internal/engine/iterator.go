package engine

import (
	"context"

	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// This file holds the streaming side of the engine: the BatchSource
// extension of Source, and the volcano-style operators (filter, project,
// distinct, limit, join probe) that pull row batches through the pipeline
// built by Engine.Open. Sort, grouping and window evaluation are pipeline
// breakers and stay in their materialized form (sort.go, group.go,
// window.go).

// BatchSource is an optional extension of Source: relations can be opened
// as pulled batch scans with projection and predicate pushdown, and schemas
// inspected without materializing rows. storage.Store implements it; the
// fragment and network packages implement it for intermediate stage outputs.
type BatchSource interface {
	Source
	// RelationSchema returns the schema of the named relation without
	// touching its rows.
	RelationSchema(name string) (*schema.Relation, error)
	// OpenScan opens a batch scan bound to ctx. The scan's Filter sees
	// full-width rows; Columns projects after filtering. Implementations
	// must check ctx per batch so cancellation stops the scan promptly.
	OpenScan(ctx context.Context, name string, sc schema.Scan) (schema.RowIterator, error)
}

// RelationSchema returns the schema of a named relation, avoiding row
// materialization when the source supports it.
func RelationSchema(src Source, name string) (*schema.Relation, error) {
	if bs, ok := src.(BatchSource); ok {
		return bs.RelationSchema(name)
	}
	rel, _, err := src.Relation(name)
	return rel, err
}

// OpenScan opens a streaming scan over any Source, adapting sources that
// only materialize with an in-memory scan bound to ctx.
func OpenScan(ctx context.Context, src Source, name string, sc schema.Scan) (schema.RowIterator, error) {
	if bs, ok := src.(BatchSource); ok {
		return bs.OpenScan(ctx, name, sc)
	}
	_, rows, err := src.Relation(name)
	if err != nil {
		return nil, err
	}
	return schema.FilterProject(schema.WithContext(ctx, schema.IterateRows(rows, sc.BatchSize)), sc), nil
}

// filterIter drops rows failing a predicate, for filters that could not be
// pushed into the scan (joins, subquery outputs).
type filterIter struct {
	src  schema.RowIterator
	env  *rowEnv
	cond sqlparser.Expr
	buf  schema.Rows
}

func (f *filterIter) Next() (schema.Rows, error) {
	for {
		in, err := f.src.Next()
		if err != nil || in == nil {
			return nil, err
		}
		out := f.buf[:0]
		for _, r := range in {
			f.env.row = r
			ok, err := truthy(f.env, f.cond)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, r)
			}
		}
		if len(out) > 0 {
			f.buf = out
			return out, nil
		}
	}
}

func (f *filterIter) Close() { f.src.Close() }

// projIter evaluates the select list per batch. An identity projection
// (SELECT * over the whole binding) passes batches through untouched.
type projIter struct {
	src schema.RowIterator
	p   *projector
	env *rowEnv
	buf schema.Rows
}

func (pi *projIter) Next() (schema.Rows, error) {
	in, err := pi.src.Next()
	if err != nil || in == nil {
		return nil, err
	}
	if pi.p.identity {
		return in, nil
	}
	// One backing array per batch (rows may be retained downstream, so the
	// array is fresh each pull; only the header buffer is reused).
	nc := len(pi.p.cols)
	vals := make([]schema.Value, len(in)*nc)
	out := pi.buf[:0]
	for i, r := range in {
		pi.env.row = r
		orow := vals[i*nc : (i+1)*nc : (i+1)*nc]
		if err := pi.p.projectInto(pi.env, orow); err != nil {
			return nil, err
		}
		out = append(out, orow)
	}
	pi.buf = out
	return out, nil
}

func (pi *projIter) Close() { pi.src.Close() }

// SizeHint forwards the source hint: projection is 1:1.
func (pi *projIter) SizeHint() int {
	if h, ok := pi.src.(schema.SizeHinter); ok {
		return h.SizeHint()
	}
	return 0
}

// distinctIter streams DISTINCT: rows are emitted on first occurrence, so
// order is preserved and memory is bounded by the number of distinct rows.
type distinctIter struct {
	src  schema.RowIterator
	seen map[string]bool
	idx  []int
	buf  schema.Rows
	kbuf []byte
}

func (d *distinctIter) Next() (schema.Rows, error) {
	for {
		in, err := d.src.Next()
		if err != nil || in == nil {
			return nil, err
		}
		out := d.buf[:0]
		for _, r := range in {
			if d.idx == nil {
				d.idx = allIndexes(len(r))
			}
			// Canonical byte key in a reused scratch buffer: the map lookup
			// on string(kbuf) compiles allocation-free, a string is built
			// only when the row is new.
			d.kbuf = r.AppendGroupKey(d.kbuf[:0], d.idx)
			if !d.seen[string(d.kbuf)] {
				d.seen[string(d.kbuf)] = true
				out = append(out, r)
			}
		}
		if len(out) > 0 {
			d.buf = out
			return out, nil
		}
	}
}

func (d *distinctIter) Close() { d.src.Close() }

// limitIter truncates the stream after n rows and closes its source as soon
// as the limit is reached, so upstream scans stop pulling — a LIMIT-n query
// over a large base relation reads O(n + batch) rows from storage.
type limitIter struct {
	src       schema.RowIterator
	remaining int
}

func (l *limitIter) Next() (schema.Rows, error) {
	if l.remaining <= 0 {
		l.src.Close()
		return nil, nil
	}
	in, err := l.src.Next()
	if err != nil || in == nil {
		l.remaining = 0
		return nil, err
	}
	if len(in) >= l.remaining {
		// Copy before closing: Close may drain upstream (stage accounting),
		// which reuses the batch buffer this slice aliases.
		out := make(schema.Rows, l.remaining)
		copy(out, in)
		l.remaining = 0
		l.src.Close()
		return out, nil
	}
	l.remaining -= len(in)
	return in, nil
}

func (l *limitIter) Close() {
	l.remaining = 0
	l.src.Close()
}

// hashJoinIter probes a materialized build side (the right input) with
// streamed left batches. Inner and left joins with at least one equi-key.
type hashJoinIter struct {
	left     schema.RowIterator
	rrows    schema.Rows
	index    map[string][]int
	eqL      []int
	rest     []sqlparser.Expr
	cb       *binding
	env      *rowEnv
	leftJoin bool
	nullR    schema.Row
	buf      schema.Rows
	kbuf     []byte
}

func (h *hashJoinIter) Next() (schema.Rows, error) {
	for {
		in, err := h.left.Next()
		if err != nil || in == nil {
			return nil, err
		}
		if h.env == nil {
			h.env = (&rowEnv{b: h.cb}).reuse()
		}
		out := h.buf[:0]
		for _, lr := range in {
			matched := false
			h.kbuf = lr.AppendGroupKey(h.kbuf[:0], h.eqL)
			for _, ri := range h.index[string(h.kbuf)] {
				combined := joinRow(lr, h.rrows[ri])
				ok, err := residualOK(h.env, combined, h.rest)
				if err != nil {
					return nil, err
				}
				if ok {
					out = append(out, combined)
					matched = true
				}
			}
			if !matched && h.leftJoin {
				out = append(out, joinRow(lr, h.nullR))
			}
		}
		if len(out) > 0 {
			h.buf = out
			return out, nil
		}
	}
}

func (h *hashJoinIter) Close() { h.left.Close() }

// loopJoinIter is the nested-loop fallback (and, with a nil condition, the
// cross join): the right side is materialized, the left side streams.
type loopJoinIter struct {
	left     schema.RowIterator
	rrows    schema.Rows
	on       sqlparser.Expr
	cb       *binding
	env      *rowEnv
	leftJoin bool
	nullR    schema.Row
	buf      schema.Rows
}

func (l *loopJoinIter) Next() (schema.Rows, error) {
	for {
		in, err := l.left.Next()
		if err != nil || in == nil {
			return nil, err
		}
		if l.env == nil {
			l.env = (&rowEnv{b: l.cb}).reuse()
		}
		out := l.buf[:0]
		env := l.env
		for _, lr := range in {
			matched := false
			for _, rr := range l.rrows {
				combined := joinRow(lr, rr)
				ok := true
				if l.on != nil {
					env.row = combined
					ok, err = truthy(env, l.on)
					if err != nil {
						return nil, err
					}
				}
				if ok {
					out = append(out, combined)
					matched = true
				}
			}
			if !matched && l.leftJoin {
				out = append(out, joinRow(lr, l.nullR))
			}
		}
		if len(out) > 0 {
			l.buf = out
			return out, nil
		}
	}
}

func (l *loopJoinIter) Close() { l.left.Close() }
