package engine

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"paradise/internal/schema"
	"paradise/internal/storage"
)

// rowOnly hides every optional capability of a source (BatchSource,
// MorselScanner, ColScanner), exposing only Relation. Scans over it take the
// materialized row path, which makes it the reference executor for the
// vectorized-equals-row equivalence suite below: the same query runs once
// against the store (vectorized where the engine chooses to) and once
// against rowOnly (never vectorized), and the results must match exactly.
type rowOnly struct{ src Source }

func (r rowOnly) Relation(name string) (*schema.Relation, schema.Rows, error) {
	return r.src.Relation(name)
}

// The suite is vacuous if the store stops implementing ColScanner (every
// query would take the row path twice); pin the capability at compile time.
var _ ColScanner = (*storage.Store)(nil)

// vecStore builds two tables exercising every kernel type plus the awkward
// values: NULLs in every column, NaN and infinities and -0.0 in floats, and
// (optionally) a wrong-typed value that degrades a vector to boxed storage.
// The second table w is the join build side: duplicate keys, a NULL key, and
// a key no probe row matches.
func vecStore(t testing.TB, boxed bool) *storage.Store {
	t.Helper()
	st := storage.NewStore()
	v := st.Create(schema.NewRelation("v",
		schema.Col("i", schema.TypeInt),
		schema.Col("f", schema.TypeFloat),
		schema.Col("s", schema.TypeString),
		schema.Col("b", schema.TypeBool),
	))
	rows := schema.Rows{
		{schema.Int(1), schema.Float(1.5), schema.String("a"), schema.Bool(true)},
		{schema.Int(-2), schema.Float(math.NaN()), schema.String(""), schema.Bool(false)},
		{schema.Null(), schema.Float(0), schema.String("b"), schema.Null()},
		{schema.Int(3), schema.Null(), schema.Null(), schema.Bool(true)},
		{schema.Int(4), schema.Float(math.Inf(1)), schema.String("a"), schema.Bool(false)},
		{schema.Int(0), schema.Float(math.Copysign(0, -1)), schema.String("c"), schema.Bool(true)},
		{schema.Int(5), schema.Float(-2.5), schema.String("b"), schema.Null()},
		{schema.Int(1), schema.Float(1.5), schema.String("a"), schema.Bool(true)}, // duplicate of row 0
	}
	if boxed {
		// A string in the declared-int column degrades that vector to Box.
		rows = append(rows, schema.Row{schema.String("boxed"), schema.Float(9), schema.String("d"), schema.Bool(false)})
	}
	if err := v.Append(rows...); err != nil {
		t.Fatal(err)
	}
	w := st.Create(schema.NewRelation("w",
		schema.Col("k", schema.TypeInt),
		schema.Col("t", schema.TypeString),
	))
	wrows := schema.Rows{
		{schema.Int(1), schema.String("one")},
		{schema.Int(1), schema.String("uno")}, // duplicate build key
		{schema.Int(3), schema.String("three")},
		{schema.Null(), schema.String("none")},  // NULL build key
		{schema.Int(7), schema.String("seven")}, // matches no probe row
	}
	if err := w.Append(wrows...); err != nil {
		t.Fatal(err)
	}
	return st
}

// sameValue is bit-identical value equality: same runtime type, same
// payload, with NaN equal to NaN (the vectorized path must not canonicalize
// or lose any of these).
func sameValue(a, b schema.Value) bool {
	if a.Type() != b.Type() {
		return false
	}
	switch a.Type() {
	case schema.TypeNull:
		return true
	case schema.TypeFloat:
		return math.Float64bits(a.AsFloat()) == math.Float64bits(b.AsFloat()) ||
			(math.IsNaN(a.AsFloat()) && math.IsNaN(b.AsFloat()))
	default:
		return a.Format() == b.Format()
	}
}

// checkEquivalence runs sql against both executors and requires identical
// schemas, row sets (in order) and errors.
func checkEquivalence(t *testing.T, st *storage.Store, sql string) {
	t.Helper()
	checkEquivalenceEngine(t, New(st), st, sql)
}

// checkEquivalenceEngine is checkEquivalence with the vectorized side
// supplied by the caller (e.g. with the morsel exchange enabled); the
// reference side is always the serial, never-vectorized row path.
func checkEquivalenceEngine(t *testing.T, veng *Engine, st *storage.Store, sql string) {
	t.Helper()
	ctx := context.Background()
	vres, verr := veng.Query(ctx, sql)
	rres, rerr := New(rowOnly{st}).Query(ctx, sql)
	if (verr == nil) != (rerr == nil) {
		t.Fatalf("%q: error mismatch: vectorized=%v row=%v", sql, verr, rerr)
	}
	if verr != nil {
		if verr.Error() != rerr.Error() {
			t.Fatalf("%q: error text mismatch:\nvectorized: %v\nrow:        %v", sql, verr, rerr)
		}
		return
	}
	if got, want := vres.Schema.ColumnNames(), rres.Schema.ColumnNames(); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("%q: schema mismatch: %v vs %v", sql, got, want)
	}
	if len(vres.Rows) != len(rres.Rows) {
		t.Fatalf("%q: row count mismatch: vectorized=%d row=%d", sql, len(vres.Rows), len(rres.Rows))
	}
	for i := range vres.Rows {
		if len(vres.Rows[i]) != len(rres.Rows[i]) {
			t.Fatalf("%q row %d: arity mismatch", sql, i)
		}
		for c := range vres.Rows[i] {
			if !sameValue(vres.Rows[i][c], rres.Rows[i][c]) {
				t.Fatalf("%q row %d col %d: %s (vectorized) != %s (row)",
					sql, i, c, vres.Rows[i][c].Format(), rres.Rows[i][c].Format())
			}
		}
	}
}

// equivalenceQueries is the fixed corpus: filters (kernel, literal-left,
// NULL tests, residual mixes), vectorized arithmetic projection, DISTINCT
// and grouped aggregation, plus error cases whose message text must match.
var equivalenceQueries = []string{
	// Filter kernels, including NULL and NaN handling in comparisons.
	"SELECT * FROM v",
	"SELECT * FROM v WHERE f < 1",
	"SELECT * FROM v WHERE f >= 0",
	"SELECT * FROM v WHERE 1 > f", // literal on the left
	"SELECT * FROM v WHERE i = 1",
	"SELECT * FROM v WHERE s = 'a'",
	"SELECT * FROM v WHERE b = true",
	"SELECT * FROM v WHERE f IS NULL",
	"SELECT * FROM v WHERE f IS NOT NULL",
	"SELECT * FROM v WHERE i IS NULL AND f >= 0",
	"SELECT * FROM v WHERE f < 2 AND s = 'a'",
	// Residual conjuncts behind kernels (arithmetic comparisons are not
	// kernelized) and ahead of them (prefix rule).
	"SELECT * FROM v WHERE f < 2 AND i + 1 > 0",
	"SELECT * FROM v WHERE i + 1 > 0 AND f < 2",
	"SELECT * FROM v WHERE i % 2 = 1",
	// Filters selecting nothing and everything.
	"SELECT * FROM v WHERE f < -1000000",
	"SELECT * FROM v WHERE f > -1000000 OR f IS NULL OR i IS NULL",
	// Vectorized arithmetic projection: int/float mixes, unary minus,
	// NULL literal, integer division staying on the row-path rules.
	"SELECT i + 1 AS a, i * 2 AS b FROM v",
	"SELECT f + i AS s FROM v",
	"SELECT -i AS n, -f AS m FROM v",
	"SELECT i - i AS z, f - f AS w FROM v",
	"SELECT i / 2 AS q, f / 2 AS h FROM v",
	"SELECT i % 3 AS r FROM v",
	"SELECT NULL AS n, i FROM v",
	"SELECT i + f * 2 - 1 AS e FROM v WHERE f IS NOT NULL",
	// Division and modulo by zero: error text must match exactly.
	"SELECT i / 0 AS boom FROM v",
	"SELECT i % 0 AS boom FROM v",
	"SELECT f / 0 AS boom FROM v",
	// DISTINCT, with NULL rows and duplicates.
	"SELECT DISTINCT s FROM v",
	"SELECT DISTINCT i, s FROM v",
	"SELECT DISTINCT f FROM v",
	"SELECT DISTINCT b FROM v WHERE f >= -10",
	// Grouped aggregation, HAVING, empty input, DISTINCT aggregates.
	"SELECT s, COUNT(*) AS n FROM v GROUP BY s",
	"SELECT s, COUNT(*) AS n, SUM(i) AS si, AVG(f) AS af FROM v GROUP BY s HAVING COUNT(*) > 1",
	"SELECT b, MIN(f) AS lo, MAX(f) AS hi FROM v GROUP BY b",
	"SELECT COUNT(*) AS n FROM v WHERE f < -1000000",
	"SELECT COUNT(DISTINCT s) AS ds, COUNT(DISTINCT i) AS di FROM v",
	"SELECT SUM(i) AS s FROM v",
	"SELECT AVG(i) AS a FROM v GROUP BY b",
	// Joins: the vectorized equi probe (inner, LEFT null-extension, kernel
	// filters on the probe side, retargeted all-column projections) and
	// every decline shape — residual ON conjunct, non-equi ON, cross join,
	// derived probe side. NULL keys never match, duplicate build keys fan
	// out in build order.
	"SELECT v.i, v.s, w.t FROM v JOIN w ON v.i = w.k",
	"SELECT v.i, w.t FROM v LEFT JOIN w ON v.i = w.k",
	"SELECT v.i, w.t FROM v JOIN w ON v.i = w.k WHERE v.f < 2",
	"SELECT v.i, w.t FROM v LEFT JOIN w ON v.i = w.k WHERE v.f >= 0 OR v.f IS NULL",
	"SELECT w.t, v.i FROM v JOIN w ON v.i = w.k",             // reordered retarget
	"SELECT v.i + w.k AS m FROM v JOIN w ON v.i = w.k",       // expression projection: no retarget
	"SELECT v.i, w.k FROM v JOIN w ON v.i = w.k AND v.f > 0", // residual ON conjunct declines
	"SELECT v.i, w.k FROM v JOIN w ON v.i < w.k",             // non-equi: loop join
	"SELECT v.i, w.k FROM v CROSS JOIN w WHERE v.i = 1",
	"SELECT d.i, w.t FROM (SELECT i FROM v WHERE f IS NOT NULL) AS d JOIN w ON d.i = w.k", // derived probe declines
	"SELECT v.i, w.t FROM v JOIN w ON v.i = w.k ORDER BY w.t, v.i LIMIT 4",
	// ORDER BY through the typed sort keys: NaN and -0.0 floats, NULLs,
	// multi-key with DESC, expression keys, keys resolved from the input
	// rows (projected-away columns), and top-K under LIMIT (declined when
	// a NaN key is present).
	"SELECT i, f FROM v ORDER BY f",
	"SELECT i, f FROM v ORDER BY f DESC",
	"SELECT i, f, s FROM v ORDER BY s, i DESC",
	"SELECT s FROM v ORDER BY i, f",
	"SELECT i, f FROM v ORDER BY i + f",
	"SELECT i, f FROM v ORDER BY f LIMIT 3",
	"SELECT i, f FROM v ORDER BY f DESC LIMIT 3",
	"SELECT i, s FROM v ORDER BY i LIMIT 0",
	"SELECT i, s FROM v ORDER BY i DESC LIMIT 100",
	// Window shapes: plain-partition fast path, multi-column partitions,
	// expression partitions, ranking and navigation calls, cumulative
	// frames with peer groups over NaN order keys.
	"SELECT s, SUM(i) OVER (PARTITION BY s) AS c FROM v",
	"SELECT i, row_number() OVER (PARTITION BY b ORDER BY i) AS rn FROM v",
	"SELECT i, rank() OVER (ORDER BY s) AS r, dense_rank() OVER (ORDER BY s) AS dr FROM v",
	"SELECT s, i, SUM(f) OVER (PARTITION BY s, b ORDER BY i) AS c FROM v",
	"SELECT i, SUM(i) OVER (PARTITION BY i % 2 ORDER BY f) AS c FROM v",
	"SELECT i, lag(i) OVER (ORDER BY i) AS p, lead(i) OVER (ORDER BY i) AS nx FROM v",
	"SELECT i, first_value(s) OVER (PARTITION BY b ORDER BY i) AS fv, last_value(s) OVER (PARTITION BY b ORDER BY i) AS lv FROM v",
	"SELECT i, AVG(f) OVER (PARTITION BY s ORDER BY i) AS a FROM v ORDER BY i, a LIMIT 5",
}

func TestVectorizedMatchesRowPath(t *testing.T) {
	st := vecStore(t, false)
	for _, q := range equivalenceQueries {
		checkEquivalence(t, st, q)
	}
}

// TestVectorizedMatchesRowPathBoxed repeats the corpus over a store whose
// int column degraded to boxed storage, exercising every boxed fallback.
func TestVectorizedMatchesRowPathBoxed(t *testing.T) {
	st := vecStore(t, true)
	for _, q := range equivalenceQueries {
		checkEquivalence(t, st, q)
	}
}

// TestVectorizedMatchesRowPathParallel runs the corpus with the morsel
// exchange enabled: partitioned parallel builds feed the vectorized probe
// and the seq-ordered merge must reproduce the serial row path exactly.
func TestVectorizedMatchesRowPathParallel(t *testing.T) {
	st := vecStore(t, false)
	for _, q := range equivalenceQueries {
		checkEquivalenceEngine(t, New(st).WithParallelism(4), st, q)
	}
}

// TestVectorizedMatchesRowPathFuzz generates random tables (with NULL and
// NaN sprinkled in) and runs the corpus plus randomized filter thresholds
// against both executors. The seed is fixed so failures reproduce.
func TestVectorizedMatchesRowPathFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(20160315))
	words := []string{"a", "b", "c", "", "a\x1fb"}
	for round := 0; round < 8; round++ {
		st := storage.NewStore()
		v := st.Create(schema.NewRelation("v",
			schema.Col("i", schema.TypeInt),
			schema.Col("f", schema.TypeFloat),
			schema.Col("s", schema.TypeString),
			schema.Col("b", schema.TypeBool),
		))
		n := 1 + rng.Intn(200)
		for r := 0; r < n; r++ {
			row := schema.Row{
				schema.Int(int64(rng.Intn(7) - 3)),
				schema.Float(float64(rng.Intn(9)-4) / 2),
				schema.String(words[rng.Intn(len(words))]),
				schema.Bool(rng.Intn(2) == 0),
			}
			for c := range row {
				if rng.Intn(8) == 0 {
					row[c] = schema.Null()
				}
			}
			if rng.Intn(16) == 0 {
				row[1] = schema.Float(math.NaN())
			}
			if err := v.Append(row); err != nil {
				t.Fatal(err)
			}
		}
		w := st.Create(schema.NewRelation("w",
			schema.Col("k", schema.TypeInt),
			schema.Col("t", schema.TypeString),
		))
		m := 1 + rng.Intn(40)
		for r := 0; r < m; r++ {
			row := schema.Row{
				schema.Int(int64(rng.Intn(7) - 3)),
				schema.String(words[rng.Intn(len(words))]),
			}
			if rng.Intn(8) == 0 {
				row[0] = schema.Null()
			}
			if err := w.Append(row); err != nil {
				t.Fatal(err)
			}
		}
		queries := []string{
			"SELECT * FROM v WHERE f < 0.5",
			"SELECT * FROM v WHERE i >= 0 AND f < 1",
			"SELECT i + f AS s FROM v WHERE b = true",
			"SELECT DISTINCT i, s FROM v",
			"SELECT s, COUNT(*) AS n, SUM(f) AS sf FROM v GROUP BY s",
			"SELECT i * 2 - 1 AS e FROM v WHERE f IS NOT NULL",
			"SELECT v.i, v.f, w.t FROM v JOIN w ON v.i = w.k",
			"SELECT v.i, w.t FROM v LEFT JOIN w ON v.i = w.k WHERE v.f < 1",
			"SELECT i, f, s FROM v ORDER BY f, i DESC",
			"SELECT i, f FROM v ORDER BY f LIMIT 7",
			"SELECT s, SUM(i) OVER (PARTITION BY s) AS c FROM v",
			"SELECT i, row_number() OVER (PARTITION BY b ORDER BY f) AS rn FROM v",
		}
		for _, q := range queries {
			checkEquivalence(t, st, q)
		}
	}
}
