package engine

import (
	"context"
	"sort"
	"strings"
	"testing"

	"paradise/internal/plan"
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
	"paradise/internal/storage"
)

// reorderStore builds three relations rigged with the shapes that break
// naive join transformations: duplicate join keys on both sides (fan-out
// must multiply identically in any order) and NULL keys (equi-joins never
// match them, whichever side probes).
func reorderStore(t testing.TB) *storage.Store {
	t.Helper()
	st := storage.NewStore()
	a := st.Create(schema.NewRelation("a",
		schema.Col("k", schema.TypeInt),
		schema.Col("v", schema.TypeString),
	))
	b := st.Create(schema.NewRelation("b",
		schema.Col("k", schema.TypeInt),
		schema.Col("w", schema.TypeString),
	))
	c := st.Create(schema.NewRelation("c",
		schema.Col("k", schema.TypeInt),
		schema.Col("u", schema.TypeString),
	))
	appendRows := func(tab *storage.Table, rows []schema.Row) {
		if err := tab.Append(rows...); err != nil {
			t.Fatal(err)
		}
	}
	appendRows(a, []schema.Row{
		{schema.Int(1), schema.String("a1")},
		{schema.Int(1), schema.String("a1dup")}, // duplicate key
		{schema.Int(2), schema.String("a2")},
		{schema.Null(), schema.String("anull")}, // NULL never joins
		{schema.Int(4), schema.String("a4")},
	})
	appendRows(b, []schema.Row{
		{schema.Int(1), schema.String("b1")},
		{schema.Int(1), schema.String("b1dup")},
		{schema.Int(2), schema.String("b2")},
		{schema.Null(), schema.String("bnull")},
		{schema.Int(9), schema.String("b9")},
	})
	appendRows(c, []schema.Row{
		{schema.Int(1), schema.String("c1")},
		{schema.Int(2), schema.String("c2")},
		{schema.Int(2), schema.String("c2dup")},
		{schema.Null(), schema.String("cnull")},
	})
	return st
}

// reorderExecStats skews the statistics so the greedy order differs from
// the written order (c is smallest, the query starts from a ⋈ b).
func reorderExecStats(st *storage.Store) plan.Stats {
	return func(table string) (*plan.TableStats, bool) {
		ts, err := st.TableStats(table)
		if err != nil {
			return nil, false
		}
		out := &plan.TableStats{
			Rows:     float64(ts.Rows),
			RowBytes: float64(ts.Bytes) / float64(max(1, ts.Rows)),
			Cols:     map[string]plan.ColStats{},
		}
		for _, c := range ts.Cols {
			out.Cols[strings.ToLower(c.Name)] = plan.ColStats{
				NDV:      float64(c.NDV),
				HasRange: c.HasRange,
				Min:      c.Min,
				Max:      c.Max,
				AvgBytes: c.AvgBytes(ts.Rows),
			}
		}
		return out, true
	}
}

func max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// rowMultiset renders rows into a sorted key list for order-insensitive
// comparison.
func rowMultiset(rows schema.Rows) []string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		var b []byte
		for _, v := range r {
			b = v.AppendGroupKey(b)
		}
		keys[i] = string(b)
	}
	sort.Strings(keys)
	return keys
}

// TestReorderRowIdentity executes each fixture query twice — original
// order and greedily reordered — and requires identical row multisets,
// duplicates and NULLs included.
func TestReorderRowIdentity(t *testing.T) {
	st := reorderStore(t)
	e := New(st)
	queries := []string{
		"SELECT a.v, b.w, c.u FROM a JOIN b ON a.k = b.k JOIN c ON a.k = c.k",
		"SELECT a.v, b.w, c.u FROM a JOIN b ON a.k = b.k JOIN c ON b.k = c.k",
		"SELECT a.v, c.u FROM a JOIN b ON a.k = b.k JOIN c ON a.k = c.k WHERE b.w <> 'b9'",
		"SELECT COUNT(*) AS n FROM a JOIN b ON a.k = b.k JOIN c ON a.k = c.k",
		"SELECT a.k, COUNT(*) AS n FROM a JOIN b ON a.k = b.k JOIN c ON b.k = c.k GROUP BY a.k",
	}
	for _, sql := range queries {
		sel, err := sqlparser.Parse(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		lower := func() plan.Node {
			root, err := plan.FromAST(sel)
			if err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
			return root
		}
		base := plan.Optimize(lower(), plan.Options{Catalog: e.Catalog(), CrossBlock: true})
		reordered := plan.Optimize(lower(), plan.Options{
			Catalog:      e.Catalog(),
			CrossBlock:   true,
			ReorderJoins: true,
			Stats:        reorderExecStats(st),
		})
		want, err := e.SelectPlan(context.Background(), base)
		if err != nil {
			t.Fatalf("%s (base): %v", sql, err)
		}
		got, err := e.SelectPlan(context.Background(), reordered)
		if err != nil {
			t.Fatalf("%s (reordered): %v", sql, err)
		}
		wantKeys, gotKeys := rowMultiset(want.Rows), rowMultiset(got.Rows)
		if len(wantKeys) != len(gotKeys) {
			t.Fatalf("%s: %d rows reordered vs %d base", sql, len(gotKeys), len(wantKeys))
		}
		for i := range wantKeys {
			if wantKeys[i] != gotKeys[i] {
				t.Fatalf("%s: row multiset diverged at %d", sql, i)
			}
		}
	}
}
