package engine

import (
	"context"

	"paradise/internal/plan"
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// This file wires whole query-block shapes onto the columnar scan when the
// block's work can run over vectors: DISTINCT over plain columns
// (vecDistinctIter below) and grouped aggregation (vecgroup.go). Both paths
// share the compiled scan (vecscan.go) and decline — ok=false, no error —
// whenever any piece of the block needs the row-at-a-time machinery, so the
// row path remains the single source of truth for full SQL semantics.

// openVecBlock tries the vectorized whole-block paths for a single-table
// block. ok=false means the caller should compile the block on the row path.
func (e *Engine) openVecBlock(ctx context.Context, s *plan.Scan, blk *plan.Block) (*schema.Relation, schema.RowIterator, bool, error) {
	cs, ok := e.src.(ColScanner)
	if !ok {
		return nil, nil, false, nil
	}
	if blk.Agg != nil {
		return e.openVecGrouped(ctx, cs, s, blk)
	}
	if blk.Win != nil || blk.Sort != nil {
		return nil, nil, false, nil
	}
	if blk.Distinct != nil {
		return e.openVecDistinct(ctx, cs, s, blk)
	}
	return e.openVecProject(ctx, cs, s, blk)
}

// vecBlockScan compiles the scan half shared by the vectorized block paths:
// the table schema, the filter conjuncts and the pruned column set, fed into
// compileVecScan. ok=false when the scan itself cannot be vectorized.
func (e *Engine) vecBlockScan(s *plan.Scan, blk *plan.Block) (*vecScanPlan, *schema.Relation, bool) {
	rel, err := RelationSchema(e.src, s.Table)
	if err != nil {
		return nil, nil, false // let the row path surface the error
	}
	qual := s.Table
	if s.Alias != "" {
		qual = s.Alias
	}
	full := bindingFromRelation(rel, qual)

	filters := blk.FilterConds()
	conds := make([]sqlparser.Expr, 0, 1+len(filters))
	if s.Predicate != nil {
		conds = append(conds, s.Predicate)
	}
	conds = append(conds, filters...)

	p, ok := compileVecScan(rel, qual, full, conds, e.scanColumns(s, blk, full))
	if !ok {
		return nil, nil, false
	}
	return p, rel, true
}

// openVecDistinct compiles SELECT DISTINCT over plain columns of a single
// table: duplicates are eliminated on the column vectors, so only the unique
// rows are ever pivoted to row form. With few distinct values this skips
// almost all of the pivot work the row path pays before its distinctIter.
func (e *Engine) openVecDistinct(ctx context.Context, cs ColScanner, s *plan.Scan, blk *plan.Block) (*schema.Relation, schema.RowIterator, bool, error) {
	p, rel, ok := e.vecBlockScan(s, blk)
	if !ok {
		return nil, nil, false, nil
	}
	proj, err := buildProjector(blk.Items(), p.lb)
	if err != nil {
		return nil, nil, false, nil // row path reports the projection error
	}
	// Every output column must be a direct copy of a loaded column —
	// expressions in the select list mean per-row evaluation, which is what
	// the row path is for.
	srcIdx := make([]int, len(proj.cols))
	for i, c := range proj.cols {
		if c.starIdx < 0 {
			return nil, nil, false, nil
		}
		srcIdx[i] = c.starIdx
	}

	ci, err := cs.OpenColScan(ctx, s.Table, p.colScan(rel.Arity()))
	if err != nil {
		return nil, nil, false, err
	}
	var out schema.RowIterator = &vecDistinctIter{
		src:    ci,
		ex:     newVecExec(p),
		srcIdx: srcIdx,
		orel:   proj.rel,
		seen:   make(map[string]bool),
	}
	if blk.Limit != nil {
		n := int(blk.Limit.N)
		if n < 0 {
			n = 0
		}
		out = &limitIter{src: out, remaining: n}
	}
	return proj.rel, schema.WithContext(ctx, out), true, nil
}

// vecDistinctIter filters batches with the compiled kernels, deduplicates
// the survivors by their canonical group key built straight from the column
// vectors, and pivots only first occurrences.
type vecDistinctIter struct {
	src    schema.ColIterator
	ex     *vecExec
	srcIdx []int // load-layout position of each output column
	orel   *schema.Relation
	seen   map[string]bool
	kbuf   []byte
	keep   []int
	vecs   []schema.ColVec
}

func (d *vecDistinctIter) Next() (schema.Rows, error) {
	for {
		cb, err := d.src.NextBatch()
		if err != nil {
			return nil, err
		}
		if cb == nil {
			return nil, nil
		}
		sel, err := d.ex.filterSel(cb)
		if err != nil {
			return nil, err
		}
		d.keep = d.keep[:0]
		unique := func(i int) {
			d.kbuf = d.kbuf[:0]
			for _, c := range d.srcIdx {
				d.kbuf = cb.Vecs[c].AppendGroupKey(d.kbuf, i)
			}
			if d.seen[string(d.kbuf)] {
				return
			}
			d.seen[string(d.kbuf)] = true
			d.keep = append(d.keep, i)
		}
		if sel == nil { // nil selection means every physical row is live
			for i := 0; i < cb.N; i++ {
				unique(i)
			}
		} else {
			for _, i := range sel {
				unique(i)
			}
		}
		if len(d.keep) == 0 {
			continue
		}
		// Gather the output columns (projection order) and pivot the kept
		// rows only.
		d.vecs = d.vecs[:0]
		for _, c := range d.srcIdx {
			d.vecs = append(d.vecs, cb.Vecs[c])
		}
		ob := schema.ColBatch{Rel: d.orel, Vecs: d.vecs, N: cb.N, Sel: d.keep}
		return ob.Rows(), nil
	}
}

func (d *vecDistinctIter) Close() { d.src.Close() }
