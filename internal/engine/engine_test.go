package engine

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"paradise/internal/schema"
	"paradise/internal/storage"
)

// testStore builds the small sensor database used throughout these tests.
func testStore(t testing.TB) *storage.Store {
	t.Helper()
	st := storage.NewStore()

	d := st.Create(schema.NewRelation("d",
		schema.Col("x", schema.TypeFloat),
		schema.Col("y", schema.TypeFloat),
		schema.Col("z", schema.TypeFloat),
		schema.Col("t", schema.TypeInt),
	))
	rows := []struct{ x, y, z float64 }{
		{5, 1, 1.5}, {6, 2, 1.0}, {7, 3, 0.5}, {2, 4, 1.9},
		{8, 1, 3.0}, {9, 2, 1.2}, {3, 9, 0.8}, {10, 4, 1.1},
	}
	for i, r := range rows {
		if err := d.Append(schema.Row{
			schema.Float(r.x), schema.Float(r.y), schema.Float(r.z), schema.Int(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}

	people := st.Create(schema.NewRelation("people",
		schema.SensitiveCol("name", schema.TypeString),
		schema.Col("age", schema.TypeInt),
		schema.Col("room", schema.TypeString),
	))
	for _, p := range []struct {
		name string
		age  int64
		room string
	}{
		{"alice", 30, "lab"}, {"bob", 41, "lab"}, {"carol", 30, "office"},
		{"dave", 55, "office"}, {"erin", 41, "lab"},
	} {
		if err := people.Append(schema.Row{schema.String(p.name), schema.Int(p.age), schema.String(p.room)}); err != nil {
			t.Fatal(err)
		}
	}

	rooms := st.Create(schema.NewRelation("rooms",
		schema.Col("room", schema.TypeString),
		schema.Col("floor", schema.TypeInt),
	))
	for _, r := range []struct {
		room  string
		floor int64
	}{{"lab", 2}, {"office", 3}} {
		if err := rooms.Append(schema.Row{schema.String(r.room), schema.Int(r.floor)}); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func mustQuery(t testing.TB, e *Engine, sql string) *Result {
	t.Helper()
	res, err := e.Query(context.Background(), sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return res
}

func TestSelectAll(t *testing.T) {
	e := New(testStore(t))
	res := mustQuery(t, e, "SELECT * FROM d")
	if len(res.Rows) != 8 || res.Schema.Arity() != 4 {
		t.Fatalf("got %d rows, %d cols", len(res.Rows), res.Schema.Arity())
	}
	if res.Schema.Columns[0].Name != "x" {
		t.Fatalf("first col = %q", res.Schema.Columns[0].Name)
	}
}

func TestWhereFilter(t *testing.T) {
	e := New(testStore(t))
	res := mustQuery(t, e, "SELECT * FROM d WHERE z < 2")
	if len(res.Rows) != 7 {
		t.Fatalf("z<2 should keep 7 rows, got %d", len(res.Rows))
	}
	res = mustQuery(t, e, "SELECT * FROM d WHERE x > y")
	if len(res.Rows) != 6 {
		t.Fatalf("x>y should keep 6 rows, got %d", len(res.Rows))
	}
	res = mustQuery(t, e, "SELECT * FROM d WHERE x > y AND z < 2")
	if len(res.Rows) != 5 {
		t.Fatalf("conjunction should keep 5 rows, got %d", len(res.Rows))
	}
}

func TestProjectionAndAlias(t *testing.T) {
	e := New(testStore(t))
	res := mustQuery(t, e, "SELECT x + y AS s, z FROM d WHERE t = 0")
	if res.Schema.Columns[0].Name != "s" || res.Schema.Columns[1].Name != "z" {
		t.Fatalf("schema = %s", res.Schema)
	}
	if got := res.Rows[0][0].AsFloat(); got != 6 {
		t.Fatalf("5+1 = %v", got)
	}
}

func TestAggregatesWholeTable(t *testing.T) {
	e := New(testStore(t))
	res := mustQuery(t, e, "SELECT COUNT(*), SUM(age), AVG(age), MIN(age), MAX(age) FROM people")
	row := res.Rows[0]
	if row[0].AsInt() != 5 {
		t.Fatalf("count = %v", row[0].Format())
	}
	if row[1].AsInt() != 197 {
		t.Fatalf("sum = %v", row[1].Format())
	}
	if math.Abs(row[2].AsFloat()-39.4) > 1e-9 {
		t.Fatalf("avg = %v", row[2].Format())
	}
	if row[3].AsInt() != 30 || row[4].AsInt() != 55 {
		t.Fatalf("min/max = %v/%v", row[3].Format(), row[4].Format())
	}
}

func TestCountEmptyIsZero(t *testing.T) {
	e := New(testStore(t))
	res := mustQuery(t, e, "SELECT COUNT(*) FROM people WHERE age > 100")
	if res.Rows[0][0].AsInt() != 0 {
		t.Fatalf("count over empty = %v", res.Rows[0][0].Format())
	}
	// SUM over empty input is NULL per SQL.
	res = mustQuery(t, e, "SELECT SUM(age) FROM people WHERE age > 100")
	if !res.Rows[0][0].IsNull() {
		t.Fatalf("sum over empty = %v", res.Rows[0][0].Format())
	}
}

func TestGroupByHaving(t *testing.T) {
	e := New(testStore(t))
	res := mustQuery(t, e, "SELECT room, COUNT(*) AS n FROM people GROUP BY room HAVING COUNT(*) > 2 ORDER BY room")
	if len(res.Rows) != 1 {
		t.Fatalf("want 1 group, got %d", len(res.Rows))
	}
	if res.Rows[0][0].AsString() != "lab" || res.Rows[0][1].AsInt() != 3 {
		t.Fatalf("got %v/%v", res.Rows[0][0].Format(), res.Rows[0][1].Format())
	}
}

func TestPaperInnerAggregation(t *testing.T) {
	// The media-center fragment from §4.2:
	// SELECT x, y, AVG(z) AS zAVG, t FROM d GROUP BY x, y HAVING SUM(z) > 100.
	// Our test data's sums are small, so use a threshold it can meet.
	e := New(testStore(t))
	res := mustQuery(t, e, "SELECT x, y, AVG(z) AS zavg, t FROM d GROUP BY x, y HAVING SUM(z) > 1")
	if res.Schema.Columns[2].Name != "zavg" {
		t.Fatalf("schema = %s", res.Schema)
	}
	for _, r := range res.Rows {
		if r[2].IsNull() {
			t.Fatal("zavg should not be NULL")
		}
	}
	// Each (x,y) pair in the fixture is unique, so AVG(z) == z and
	// HAVING SUM(z) > 1 keeps the 5 rows with z > 1.
	if len(res.Rows) != 5 {
		t.Fatalf("want 5 groups with sum(z)>1, got %d", len(res.Rows))
	}
}

func TestJoins(t *testing.T) {
	e := New(testStore(t))
	res := mustQuery(t, e, "SELECT p.name, r.floor FROM people AS p JOIN rooms AS r ON p.room = r.room ORDER BY p.name")
	if len(res.Rows) != 5 {
		t.Fatalf("join should yield 5 rows, got %d", len(res.Rows))
	}
	if res.Rows[0][0].AsString() != "alice" || res.Rows[0][1].AsInt() != 2 {
		t.Fatalf("first row %v/%v", res.Rows[0][0].Format(), res.Rows[0][1].Format())
	}
}

func TestLeftJoinProducesNulls(t *testing.T) {
	st := testStore(t)
	extra := st.Create(schema.NewRelation("gadgets",
		schema.Col("room", schema.TypeString),
		schema.Col("gadget", schema.TypeString),
	))
	if err := extra.Append(schema.Row{schema.String("lab"), schema.String("smartboard")}); err != nil {
		t.Fatal(err)
	}
	e := New(st)
	res := mustQuery(t, e, "SELECT r.room, g.gadget FROM rooms AS r LEFT JOIN gadgets AS g ON r.room = g.room ORDER BY r.room")
	if len(res.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(res.Rows))
	}
	if !res.Rows[1][1].IsNull() {
		t.Fatalf("office gadget should be NULL, got %v", res.Rows[1][1].Format())
	}
}

func TestCrossJoin(t *testing.T) {
	e := New(testStore(t))
	res := mustQuery(t, e, "SELECT * FROM rooms CROSS JOIN rooms AS r2")
	if len(res.Rows) != 4 {
		t.Fatalf("2x2 cross join should be 4 rows, got %d", len(res.Rows))
	}
}

func TestNonEquiJoinFallsBackToNestedLoop(t *testing.T) {
	e := New(testStore(t))
	res := mustQuery(t, e, "SELECT p.name FROM people AS p JOIN rooms AS r ON p.age > r.floor * 10 ORDER BY p.name")
	// lab floor 2 -> age > 20 matches all 5; office floor 3 -> age > 30 matches 3 (41, 55, 41).
	if len(res.Rows) != 8 {
		t.Fatalf("want 8 rows, got %d", len(res.Rows))
	}
}

func TestSubqueryInFrom(t *testing.T) {
	e := New(testStore(t))
	res := mustQuery(t, e, "SELECT s FROM (SELECT x + y AS s FROM d) WHERE s > 10 ORDER BY s")
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 rows with s>10, got %d", len(res.Rows))
	}
}

func TestPaperWindowQuery(t *testing.T) {
	// SELECT regr_intercept(y, x) OVER (PARTITION BY z ORDER BY t)
	// FROM (SELECT x, y, z, t FROM d)
	e := New(testStore(t))
	res := mustQuery(t, e,
		"SELECT regr_intercept(y, x) OVER (PARTITION BY z ORDER BY t) FROM (SELECT x, y, z, t FROM d)")
	if len(res.Rows) != 8 {
		t.Fatalf("window query preserves cardinality, got %d", len(res.Rows))
	}
}

func TestWindowCumulativeSum(t *testing.T) {
	e := New(testStore(t))
	res := mustQuery(t, e, "SELECT t, SUM(z) OVER (ORDER BY t) AS rz FROM d ORDER BY t")
	prev := -1.0
	for _, r := range res.Rows {
		v := r[1].AsFloat()
		if v < prev {
			t.Fatalf("cumulative sum decreased: %v after %v", v, prev)
		}
		prev = v
	}
	// The final cumulative value equals the total sum.
	total := mustQuery(t, e, "SELECT SUM(z) FROM d").Rows[0][0].AsFloat()
	if math.Abs(prev-total) > 1e-9 {
		t.Fatalf("final running sum %v != total %v", prev, total)
	}
}

func TestWindowPartitionAvg(t *testing.T) {
	e := New(testStore(t))
	res := mustQuery(t, e, "SELECT room, AVG(age) OVER (PARTITION BY room) AS a FROM people ORDER BY room, a")
	byRoom := map[string]float64{}
	for _, r := range res.Rows {
		byRoom[r[0].AsString()] = r[1].AsFloat()
	}
	if math.Abs(byRoom["lab"]-(30+41+41)/3.0) > 1e-9 {
		t.Fatalf("lab avg = %v", byRoom["lab"])
	}
	if math.Abs(byRoom["office"]-(30+55)/2.0) > 1e-9 {
		t.Fatalf("office avg = %v", byRoom["office"])
	}
}

func TestWindowRowNumberRank(t *testing.T) {
	e := New(testStore(t))
	res := mustQuery(t, e, "SELECT name, ROW_NUMBER() OVER (ORDER BY age) AS rn, RANK() OVER (ORDER BY age) AS rk FROM people ORDER BY rn")
	if len(res.Rows) != 5 {
		t.Fatal("5 rows expected")
	}
	// ages sorted: 30, 30, 41, 41, 55 -> ranks 1,1,3,3,5
	wantRank := []int64{1, 1, 3, 3, 5}
	for i, r := range res.Rows {
		if r[1].AsInt() != int64(i+1) {
			t.Fatalf("row_number[%d] = %v", i, r[1].Format())
		}
		if r[2].AsInt() != wantRank[i] {
			t.Fatalf("rank[%d] = %v, want %d", i, r[2].Format(), wantRank[i])
		}
	}
}

func TestWindowLagLead(t *testing.T) {
	e := New(testStore(t))
	res := mustQuery(t, e, "SELECT t, LAG(t) OVER (ORDER BY t) AS p, LEAD(t) OVER (ORDER BY t) AS n FROM d ORDER BY t")
	if !res.Rows[0][1].IsNull() {
		t.Fatal("first LAG should be NULL")
	}
	if !res.Rows[len(res.Rows)-1][2].IsNull() {
		t.Fatal("last LEAD should be NULL")
	}
	if res.Rows[1][1].AsInt() != 0 {
		t.Fatalf("LAG at t=1 should be 0, got %v", res.Rows[1][1].Format())
	}
}

func TestRegrIntercept(t *testing.T) {
	// Perfectly linear data: y = 2x + 3.
	st := storage.NewStore()
	tab := st.Create(schema.NewRelation("lin",
		schema.Col("x", schema.TypeFloat), schema.Col("y", schema.TypeFloat)))
	for i := 0; i < 10; i++ {
		x := float64(i)
		if err := tab.Append(schema.Row{schema.Float(x), schema.Float(2*x + 3)}); err != nil {
			t.Fatal(err)
		}
	}
	e := New(st)
	res := mustQuery(t, e, "SELECT REGR_INTERCEPT(y, x), REGR_SLOPE(y, x), REGR_R2(y, x), CORR(y, x) FROM lin")
	r := res.Rows[0]
	if math.Abs(r[0].AsFloat()-3) > 1e-9 {
		t.Fatalf("intercept = %v", r[0].Format())
	}
	if math.Abs(r[1].AsFloat()-2) > 1e-9 {
		t.Fatalf("slope = %v", r[1].Format())
	}
	if math.Abs(r[2].AsFloat()-1) > 1e-9 {
		t.Fatalf("r2 = %v", r[2].Format())
	}
	if math.Abs(r[3].AsFloat()-1) > 1e-9 {
		t.Fatalf("corr = %v", r[3].Format())
	}
}

func TestStddevVariance(t *testing.T) {
	st := storage.NewStore()
	tab := st.Create(schema.NewRelation("v", schema.Col("x", schema.TypeFloat)))
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		if err := tab.Append(schema.Row{schema.Float(x)}); err != nil {
			t.Fatal(err)
		}
	}
	e := New(st)
	res := mustQuery(t, e, "SELECT VARIANCE(x), STDDEV(x) FROM v")
	// Sample variance of this classic dataset is 32/7.
	if math.Abs(res.Rows[0][0].AsFloat()-32.0/7.0) > 1e-9 {
		t.Fatalf("variance = %v", res.Rows[0][0].Format())
	}
	if math.Abs(res.Rows[0][1].AsFloat()-math.Sqrt(32.0/7.0)) > 1e-9 {
		t.Fatalf("stddev = %v", res.Rows[0][1].Format())
	}
}

func TestDistinct(t *testing.T) {
	e := New(testStore(t))
	res := mustQuery(t, e, "SELECT DISTINCT room FROM people ORDER BY room")
	if len(res.Rows) != 2 {
		t.Fatalf("want 2 distinct rooms, got %d", len(res.Rows))
	}
	res = mustQuery(t, e, "SELECT COUNT(DISTINCT age) FROM people")
	if res.Rows[0][0].AsInt() != 3 {
		t.Fatalf("distinct ages = %v", res.Rows[0][0].Format())
	}
}

func TestOrderByDescAndLimit(t *testing.T) {
	e := New(testStore(t))
	res := mustQuery(t, e, "SELECT name, age FROM people ORDER BY age DESC, name LIMIT 2")
	if len(res.Rows) != 2 {
		t.Fatalf("limit 2, got %d", len(res.Rows))
	}
	if res.Rows[0][0].AsString() != "dave" {
		t.Fatalf("first = %v", res.Rows[0][0].Format())
	}
	if res.Rows[1][0].AsString() != "bob" { // bob before erin at age 41
		t.Fatalf("second = %v", res.Rows[1][0].Format())
	}
}

func TestOrderByProjectedAwayColumn(t *testing.T) {
	e := New(testStore(t))
	res := mustQuery(t, e, "SELECT name FROM people ORDER BY age DESC, name LIMIT 1")
	if res.Rows[0][0].AsString() != "dave" {
		t.Fatalf("got %v", res.Rows[0][0].Format())
	}
}

func TestNullSemantics(t *testing.T) {
	st := storage.NewStore()
	tab := st.Create(schema.NewRelation("n",
		schema.Col("a", schema.TypeInt), schema.Col("b", schema.TypeInt)))
	rows := []schema.Row{
		{schema.Int(1), schema.Int(10)},
		{schema.Int(2), schema.Null()},
		{schema.Null(), schema.Int(30)},
	}
	if err := tab.Append(rows...); err != nil {
		t.Fatal(err)
	}
	e := New(st)

	// NULL comparisons are filtered out.
	res := mustQuery(t, e, "SELECT * FROM n WHERE b > 5")
	if len(res.Rows) != 2 {
		t.Fatalf("b>5 keeps 2 rows, got %d", len(res.Rows))
	}
	// IS NULL
	res = mustQuery(t, e, "SELECT * FROM n WHERE b IS NULL")
	if len(res.Rows) != 1 {
		t.Fatalf("IS NULL keeps 1 row, got %d", len(res.Rows))
	}
	// COUNT(col) skips NULLs, COUNT(*) does not.
	res = mustQuery(t, e, "SELECT COUNT(*), COUNT(b), AVG(b) FROM n")
	if res.Rows[0][0].AsInt() != 3 || res.Rows[0][1].AsInt() != 2 {
		t.Fatalf("counts = %v/%v", res.Rows[0][0].Format(), res.Rows[0][1].Format())
	}
	if math.Abs(res.Rows[0][2].AsFloat()-20) > 1e-9 {
		t.Fatalf("avg skips NULL: %v", res.Rows[0][2].Format())
	}
	// NULL arithmetic propagates.
	res = mustQuery(t, e, "SELECT a + b FROM n WHERE a = 2")
	if !res.Rows[0][0].IsNull() {
		t.Fatal("NULL + x should be NULL")
	}
	// COALESCE
	res = mustQuery(t, e, "SELECT COALESCE(b, -1) FROM n WHERE a = 2")
	if res.Rows[0][0].AsInt() != -1 {
		t.Fatalf("coalesce = %v", res.Rows[0][0].Format())
	}
}

func TestThreeValuedLogic(t *testing.T) {
	st := storage.NewStore()
	tab := st.Create(schema.NewRelation("tv", schema.Col("a", schema.TypeInt)))
	if err := tab.Append(schema.Row{schema.Null()}, schema.Row{schema.Int(1)}); err != nil {
		t.Fatal(err)
	}
	e := New(st)
	// FALSE AND NULL = FALSE -> NOT ... = TRUE
	res := mustQuery(t, e, "SELECT COUNT(*) FROM tv WHERE NOT (1 = 2 AND a > 0)")
	if res.Rows[0][0].AsInt() != 2 {
		t.Fatalf("false AND null should be false for all rows; got %v", res.Rows[0][0].Format())
	}
	// TRUE OR NULL = TRUE
	res = mustQuery(t, e, "SELECT COUNT(*) FROM tv WHERE 1 = 1 OR a > 0")
	if res.Rows[0][0].AsInt() != 2 {
		t.Fatalf("true OR null = true; got %v", res.Rows[0][0].Format())
	}
	// NULL AND TRUE filters out.
	res = mustQuery(t, e, "SELECT COUNT(*) FROM tv WHERE a > 0 AND 1 = 1")
	if res.Rows[0][0].AsInt() != 1 {
		t.Fatalf("null AND true filters; got %v", res.Rows[0][0].Format())
	}
}

func TestScalarFunctions(t *testing.T) {
	e := New(testStore(t))
	cases := []struct {
		sql  string
		want float64
	}{
		{"SELECT ABS(-3.5) FROM rooms LIMIT 1", 3.5},
		{"SELECT ROUND(3.456, 2) FROM rooms LIMIT 1", 3.46},
		{"SELECT FLOOR(3.9) FROM rooms LIMIT 1", 3},
		{"SELECT CEIL(3.1) FROM rooms LIMIT 1", 4},
		{"SELECT SQRT(16) FROM rooms LIMIT 1", 4},
		{"SELECT POWER(2, 10) FROM rooms LIMIT 1", 1024},
		{"SELECT MOD(10, 3) FROM rooms LIMIT 1", 1},
		{"SELECT SIGN(-9) FROM rooms LIMIT 1", -1},
		{"SELECT LENGTH('hello') FROM rooms LIMIT 1", 5},
		{"SELECT GREATEST(1, 5, 3) FROM rooms LIMIT 1", 5},
		{"SELECT LEAST(1, 5, 3) FROM rooms LIMIT 1", 1},
	}
	for _, c := range cases {
		res := mustQuery(t, e, c.sql)
		got := res.Rows[0][0]
		var f float64
		switch got.Type() {
		case schema.TypeInt:
			f = float64(got.AsInt())
		case schema.TypeFloat:
			f = got.AsFloat()
		default:
			t.Fatalf("%s: non-numeric %v", c.sql, got.Format())
		}
		if math.Abs(f-c.want) > 1e-9 {
			t.Errorf("%s = %v, want %v", c.sql, f, c.want)
		}
	}
	res := mustQuery(t, e, "SELECT UPPER(name) FROM people WHERE name = 'alice'")
	if res.Rows[0][0].AsString() != "ALICE" {
		t.Fatalf("upper = %v", res.Rows[0][0].Format())
	}
	res = mustQuery(t, e, "SELECT SUBSTR('smartboard', 1, 5) FROM rooms LIMIT 1")
	if res.Rows[0][0].AsString() != "smart" {
		t.Fatalf("substr = %v", res.Rows[0][0].Format())
	}
}

func TestLike(t *testing.T) {
	e := New(testStore(t))
	res := mustQuery(t, e, "SELECT name FROM people WHERE name LIKE 'a%'")
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "alice" {
		t.Fatalf("LIKE 'a%%' = %v", res.Rows)
	}
	res = mustQuery(t, e, "SELECT name FROM people WHERE name LIKE '_ob'")
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "bob" {
		t.Fatalf("LIKE '_ob' failed")
	}
	res = mustQuery(t, e, "SELECT name FROM people WHERE name NOT LIKE '%a%' ORDER BY name")
	if len(res.Rows) != 2 { // bob, erin
		t.Fatalf("NOT LIKE = %d rows", len(res.Rows))
	}
}

func TestCaseExpr(t *testing.T) {
	e := New(testStore(t))
	res := mustQuery(t, e, "SELECT name, CASE WHEN age < 35 THEN 'young' WHEN age < 50 THEN 'mid' ELSE 'senior' END AS band FROM people ORDER BY name")
	want := map[string]string{"alice": "young", "bob": "mid", "carol": "young", "dave": "senior", "erin": "mid"}
	for _, r := range res.Rows {
		if got := r[1].AsString(); got != want[r[0].AsString()] {
			t.Fatalf("%s -> %s", r[0].AsString(), got)
		}
	}
}

func TestErrorCases(t *testing.T) {
	e := New(testStore(t))
	bad := []string{
		"SELECT nosuch FROM d",
		"SELECT x FROM nosuchtable",
		"SELECT room FROM people JOIN rooms ON people.room = rooms.room", // ambiguous
		"SELECT * FROM people GROUP BY room",
		"SELECT SUM(age) FROM people WHERE SUM(age) > 1",
		"SELECT x / 0 FROM d",
		"SELECT UNKNOWNFUNC(x) FROM d",
		"SELECT x FROM d WHERE x > 'text'",
	}
	for _, q := range bad {
		if _, err := e.Query(context.Background(), q); err == nil {
			t.Errorf("Query(%q) should fail", q)
		}
	}
}

func TestAmbiguityResolvedByQualifier(t *testing.T) {
	e := New(testStore(t))
	res := mustQuery(t, e, "SELECT people.room FROM people JOIN rooms ON people.room = rooms.room LIMIT 1")
	if res.Rows[0][0].IsNull() {
		t.Fatal("qualified column should resolve")
	}
}

func TestNestedSubqueries(t *testing.T) {
	e := New(testStore(t))
	res := mustQuery(t, e, `
		SELECT s FROM (
			SELECT SUM(z) AS s FROM (
				SELECT z FROM d WHERE z < 2
			)
		)`)
	if len(res.Rows) != 1 {
		t.Fatalf("want 1 row, got %d", len(res.Rows))
	}
	want := mustQuery(t, e, "SELECT SUM(z) FROM d WHERE z < 2").Rows[0][0].AsFloat()
	if math.Abs(res.Rows[0][0].AsFloat()-want) > 1e-9 {
		t.Fatalf("nested = %v, want %v", res.Rows[0][0].Format(), want)
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	e := New(testStore(t))
	res := mustQuery(t, e, "SELECT 1 + 2 AS three")
	if res.Rows[0][0].AsInt() != 3 {
		t.Fatalf("got %v", res.Rows[0][0].Format())
	}
}

func TestGroupKeyNullsGroupTogether(t *testing.T) {
	st := storage.NewStore()
	tab := st.Create(schema.NewRelation("g", schema.Col("k", schema.TypeString), schema.Col("v", schema.TypeInt)))
	if err := tab.Append(
		schema.Row{schema.Null(), schema.Int(1)},
		schema.Row{schema.Null(), schema.Int(2)},
		schema.Row{schema.String("a"), schema.Int(3)},
	); err != nil {
		t.Fatal(err)
	}
	e := New(st)
	res := mustQuery(t, e, "SELECT k, COUNT(*) FROM g GROUP BY k")
	if len(res.Rows) != 2 {
		t.Fatalf("NULLs should form one group: %d groups", len(res.Rows))
	}
}

func TestTimeValues(t *testing.T) {
	st := storage.NewStore()
	tab := st.Create(schema.NewRelation("ts",
		schema.Col("at", schema.TypeTime), schema.Col("v", schema.TypeInt)))
	base := time.Date(2016, 3, 15, 10, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		if err := tab.Append(schema.Row{schema.Time(base.Add(time.Duration(i) * time.Minute)), schema.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	e := New(st)
	res := mustQuery(t, e, "SELECT v FROM ts ORDER BY at DESC LIMIT 1")
	if res.Rows[0][0].AsInt() != 4 {
		t.Fatalf("latest v = %v", res.Rows[0][0].Format())
	}
}

func TestResultWireSize(t *testing.T) {
	e := New(testStore(t))
	all := mustQuery(t, e, "SELECT * FROM d")
	one := mustQuery(t, e, "SELECT x FROM d")
	if all.WireSize() <= one.WireSize() {
		t.Fatalf("projection should shrink wire size: %d vs %d", all.WireSize(), one.WireSize())
	}
}

func TestImplicitAliasAndExpressionNames(t *testing.T) {
	e := New(testStore(t))
	res := mustQuery(t, e, "SELECT AVG(z) FROM d")
	if res.Schema.Columns[0].Name != "avg" {
		t.Fatalf("default name = %q", res.Schema.Columns[0].Name)
	}
	res = mustQuery(t, e, "SELECT x + 1 FROM d LIMIT 1")
	if !strings.HasPrefix(res.Schema.Columns[0].Name, "col") {
		t.Fatalf("synthesized name = %q", res.Schema.Columns[0].Name)
	}
}

func TestSensitivePropagation(t *testing.T) {
	e := New(testStore(t))
	res := mustQuery(t, e, "SELECT name, age FROM people LIMIT 1")
	if !res.Schema.Columns[0].Sensitive {
		t.Fatal("name should remain sensitive through projection")
	}
	if res.Schema.Columns[1].Sensitive {
		t.Fatal("age is not sensitive")
	}
}
