package engine

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"paradise/internal/schema"
	"paradise/internal/storage"
)

// randomStore builds a table with n rows of small integer-ish floats so
// grouping produces non-trivial classes.
func randomStore(rng *rand.Rand, n int) *storage.Store {
	st := storage.NewStore()
	d := st.Create(schema.NewRelation("d",
		schema.Col("a", schema.TypeFloat),
		schema.Col("b", schema.TypeFloat),
		schema.Col("c", schema.TypeInt),
	))
	rows := make(schema.Rows, n)
	for i := range rows {
		rows[i] = schema.Row{
			schema.Float(float64(rng.Intn(10))),
			schema.Float(float64(rng.Intn(10))),
			schema.Int(int64(rng.Intn(5))),
		}
	}
	if err := d.Append(rows...); err != nil {
		panic(err)
	}
	return st
}

// Property: a WHERE filter never grows the result, and conjunction is
// monotone (adding a conjunct never adds rows).
func TestPropertyFilterMonotone(t *testing.T) {
	f := func(seed int64, lim uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStore(rng, 50+int(lim))
		eng := New(st)
		all, err := eng.Query(context.Background(), "SELECT * FROM d")
		if err != nil {
			return false
		}
		one, err := eng.Query(context.Background(), "SELECT * FROM d WHERE a > 3")
		if err != nil {
			return false
		}
		two, err := eng.Query(context.Background(), "SELECT * FROM d WHERE a > 3 AND b < 7")
		if err != nil {
			return false
		}
		return len(two.Rows) <= len(one.Rows) && len(one.Rows) <= len(all.Rows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: GROUP BY partitions the filtered input — per-group COUNT(*)
// sums to the total row count.
func TestPropertyGroupPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStore(rng, 120)
		eng := New(st)
		total, err := eng.Query(context.Background(), "SELECT COUNT(*) FROM d")
		if err != nil {
			return false
		}
		groups, err := eng.Query(context.Background(), "SELECT c, COUNT(*) AS n FROM d GROUP BY c")
		if err != nil {
			return false
		}
		sum := int64(0)
		for _, g := range groups.Rows {
			sum += g[1].AsInt()
		}
		return sum == total.Rows[0][0].AsInt()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: AVG lies between MIN and MAX; SUM = AVG * COUNT.
func TestPropertyAggregateConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStore(rng, 80)
		eng := New(st)
		res, err := eng.Query(context.Background(), "SELECT MIN(a), MAX(a), AVG(a), SUM(a), COUNT(a) FROM d")
		if err != nil {
			return false
		}
		r := res.Rows[0]
		minV, maxV := r[0].AsFloat(), r[1].AsFloat()
		avg, sum, cnt := r[2].AsFloat(), r[3].AsFloat(), float64(r[4].AsInt())
		return minV <= avg && avg <= maxV && math.Abs(sum-avg*cnt) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the final value of a cumulative window equals the global
// aggregate; the window preserves cardinality.
func TestPropertyWindowCumulative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStore(rng, 60)
		eng := New(st)
		all, err := eng.Query(context.Background(), "SELECT SUM(a) FROM d")
		if err != nil {
			return false
		}
		win, err := eng.Query(context.Background(), "SELECT SUM(a) OVER (ORDER BY c, a, b) AS rs FROM d ORDER BY rs")
		if err != nil {
			return false
		}
		if len(win.Rows) == 0 {
			return all.Rows[0][0].IsNull()
		}
		last := win.Rows[len(win.Rows)-1][0].AsFloat()
		return math.Abs(last-all.Rows[0][0].AsFloat()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: DISTINCT is idempotent and never grows the result.
func TestPropertyDistinct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStore(rng, 100)
		eng := New(st)
		plain, err := eng.Query(context.Background(), "SELECT a, b FROM d")
		if err != nil {
			return false
		}
		dist, err := eng.Query(context.Background(), "SELECT DISTINCT a, b FROM d")
		if err != nil {
			return false
		}
		if len(dist.Rows) > len(plain.Rows) {
			return false
		}
		seen := map[string]bool{}
		for _, r := range dist.Rows {
			k := r.GroupKey([]int{0, 1})
			if seen[k] {
				return false // duplicate survived DISTINCT
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: ORDER BY produces a non-decreasing (or non-increasing) key
// sequence and LIMIT caps cardinality.
func TestPropertyOrderLimit(t *testing.T) {
	f := func(seed int64, rawLim uint8) bool {
		lim := int(rawLim%20) + 1
		rng := rand.New(rand.NewSource(seed))
		st := randomStore(rng, 70)
		eng := New(st)
		res, err := eng.Query(context.Background(), fmt.Sprintf("SELECT a FROM d ORDER BY a DESC LIMIT %d", lim))
		if err != nil {
			return false
		}
		if len(res.Rows) > lim {
			return false
		}
		for i := 1; i < len(res.Rows); i++ {
			if res.Rows[i][0].AsFloat() > res.Rows[i-1][0].AsFloat() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: a derived table is transparent — SELECT through a subquery
// equals the direct query.
func TestPropertySubqueryTransparent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := randomStore(rng, 90)
		eng := New(st)
		direct, err := eng.Query(context.Background(), "SELECT a, b FROM d WHERE a > 2")
		if err != nil {
			return false
		}
		nested, err := eng.Query(context.Background(), "SELECT a, b FROM (SELECT a, b, c FROM d) WHERE a > 2")
		if err != nil {
			return false
		}
		if len(direct.Rows) != len(nested.Rows) {
			return false
		}
		for i := range direct.Rows {
			if !direct.Rows[i][0].Identical(nested.Rows[i][0]) ||
				!direct.Rows[i][1].Identical(nested.Rows[i][1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
