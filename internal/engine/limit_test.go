package engine

import (
	"context"
	"errors"
	"testing"

	"paradise/internal/schema"
	"paradise/internal/sqlparser"
	"paradise/internal/storage"
)

// countingSource wraps a store and counts the rows its scans actually hand
// to the engine, so tests can assert how much a query pulled from storage.
type countingSource struct {
	st      *storage.Store
	scanned int
}

func (c *countingSource) Relation(name string) (*schema.Relation, schema.Rows, error) {
	return c.st.Relation(name)
}

func (c *countingSource) RelationSchema(name string) (*schema.Relation, error) {
	return c.st.RelationSchema(name)
}

func (c *countingSource) OpenScan(ctx context.Context, name string, sc schema.Scan) (schema.RowIterator, error) {
	it, err := c.st.OpenScan(ctx, name, sc)
	if err != nil {
		return nil, err
	}
	return &countingIter{src: it, n: &c.scanned}, nil
}

type countingIter struct {
	src schema.RowIterator
	n   *int
}

func (c *countingIter) Next() (schema.Rows, error) {
	b, err := c.src.Next()
	*c.n += len(b)
	return b, err
}

func (c *countingIter) Close() { c.src.Close() }

// TestLimitStopsScanEarly is the headline streaming property: a LIMIT-n
// query over a large base relation pulls only O(n + batch) rows from
// storage instead of scanning it fully.
func TestLimitStopsScanEarly(t *testing.T) {
	src := &countingSource{st: benchStore(t, 10_000)}
	res, err := New(src).Query(context.Background(), "SELECT x, y FROM d LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("want 10 rows, got %d", len(res.Rows))
	}
	if src.scanned > 2*schema.DefaultBatchSize {
		t.Fatalf("LIMIT 10 pulled %d rows from storage, want <= %d",
			src.scanned, 2*schema.DefaultBatchSize)
	}
}

// TestLimitStopsThroughSubquery: early termination propagates through a
// derived-table pipeline — the inner scan stops too.
func TestLimitStopsThroughSubquery(t *testing.T) {
	src := &countingSource{st: benchStore(t, 10_000)}
	res, err := New(src).Query(context.Background(), "SELECT s FROM (SELECT x + y AS s FROM d) LIMIT 7")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("want 7 rows, got %d", len(res.Rows))
	}
	if src.scanned > 2*schema.DefaultBatchSize {
		t.Fatalf("nested LIMIT 7 pulled %d rows from storage", src.scanned)
	}
}

// TestOrderByLimitSortsFully: ORDER BY is a pipeline breaker — the scan
// must read the whole relation and sort before LIMIT truncates, so the
// result is the true top-n, not the first n.
func TestOrderByLimitSortsFully(t *testing.T) {
	src := &countingSource{st: benchStore(t, 10_000)}
	res, err := New(src).Query(context.Background(), "SELECT x FROM d ORDER BY x DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if src.scanned != 10_000 {
		t.Fatalf("ORDER BY + LIMIT must scan everything, scanned %d of 10000", src.scanned)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][0].AsFloat() > res.Rows[i-1][0].AsFloat() {
			t.Fatalf("rows not sorted descending: %v after %v",
				res.Rows[i][0].Format(), res.Rows[i-1][0].Format())
		}
	}
	// Cross-check against the full sorted result.
	full, err := New(src.st).Query(context.Background(), "SELECT x FROM d ORDER BY x DESC")
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rows {
		if !res.Rows[i][0].Identical(full.Rows[i][0]) {
			t.Fatalf("row %d: limited %v != full-sort %v",
				i, res.Rows[i][0].Format(), full.Rows[i][0].Format())
		}
	}
}

// TestLimitWithFilterKeepsSemantics: a pushed-down predicate composes with
// streaming LIMIT — same rows as materialize-then-truncate, scanning less
// than the whole table when matches come early.
func TestLimitWithFilterKeepsSemantics(t *testing.T) {
	st := benchStore(t, 10_000)
	limited, err := New(st).Query(context.Background(), "SELECT x, z FROM d WHERE z < 1.9 LIMIT 20")
	if err != nil {
		t.Fatal(err)
	}
	full, err := New(st).Query(context.Background(), "SELECT x, z FROM d WHERE z < 1.9")
	if err != nil {
		t.Fatal(err)
	}
	if len(limited.Rows) != 20 {
		t.Fatalf("want 20 rows, got %d", len(limited.Rows))
	}
	for i, r := range limited.Rows {
		if !r[0].Identical(full.Rows[i][0]) || !r[1].Identical(full.Rows[i][1]) {
			t.Fatalf("row %d diverges from materialized baseline", i)
		}
	}
}

// TestProjectionPushdownIntoScan: a narrow projection over a wide table is
// applied inside the scan — the schema and values still match.
func TestProjectionPushdownIntoScan(t *testing.T) {
	st := benchStore(t, 100)
	res, err := New(st).Query(context.Background(), "SELECT cell FROM d WHERE t < 10")
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.Arity() != 1 || res.Schema.Columns[0].Name != "cell" {
		t.Fatalf("schema = %s", res.Schema)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("want 10 rows, got %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if len(r) != 1 {
			t.Fatalf("projected row has %d values", len(r))
		}
	}
}

// TestCancelStopsScanWithinOneBatch is the streaming-cancellation property:
// cancelling the context mid-stream stops the storage scan within one
// batch, no matter how much of the relation remains.
func TestCancelStopsScanWithinOneBatch(t *testing.T) {
	src := &countingSource{st: benchStore(t, 10_000)}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	sel, err := sqlparser.Parse("SELECT x, y FROM d")
	if err != nil {
		t.Fatal(err)
	}
	_, it, err := New(src).OpenSelect(ctx, sel)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	if _, err := it.Next(); err != nil {
		t.Fatalf("first batch: %v", err)
	}
	cancel()
	if _, err := it.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("post-cancel Next = %v, want context.Canceled", err)
	}
	if src.scanned > 2*schema.DefaultBatchSize {
		t.Fatalf("cancelled scan pulled %d rows from storage, want <= %d",
			src.scanned, 2*schema.DefaultBatchSize)
	}
}

// TestCancelStopsBreakerDrain: pipeline breakers (GROUP BY) drain their
// input through the same ctx-bound scans, so cancellation interrupts even
// the materializing paths mid-scan.
func TestCancelStopsBreakerDrain(t *testing.T) {
	src := &countingSource{st: benchStore(t, 10_000)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the breaker starts draining

	sel, err := sqlparser.Parse("SELECT x, AVG(z) FROM d GROUP BY x")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := New(src).OpenSelect(ctx, sel); !errors.Is(err, context.Canceled) {
		t.Fatalf("Open under cancelled ctx = %v, want context.Canceled", err)
	}
	if src.scanned > schema.DefaultBatchSize {
		t.Fatalf("cancelled breaker pulled %d rows from storage", src.scanned)
	}
}

// TestPipelineCloseIdempotent: closing an engine pipeline twice is safe,
// including the LIMIT iterator, which already closed its upstream eagerly
// when the limit was reached.
func TestPipelineCloseIdempotent(t *testing.T) {
	src := &countingSource{st: benchStore(t, 1_000)}
	sel, err := sqlparser.Parse("SELECT x, y FROM d LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	_, it, err := New(src).OpenSelect(context.Background(), sel)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := it.Next(); err != nil {
		t.Fatal(err)
	}
	it.Close()
	it.Close()
	if b, err := it.Next(); b != nil || err != nil {
		t.Fatalf("Next after double Close = %v, %v; want nil, nil", b, err)
	}
}
