package engine

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"paradise/internal/schema"
	"paradise/internal/sqlparser"
	"paradise/internal/storage"
)

// stabilityStore builds a table whose sort keys collide heavily: repeated
// floats, a +0.0/-0.0 pair (equal under comparison, bit-distinct), and
// duplicate NULLs. seq records the input position.
func stabilityStore(t *testing.T) *storage.Store {
	t.Helper()
	st := storage.NewStore()
	tb := st.Create(schema.NewRelation("st",
		schema.Col("k", schema.TypeFloat),
		schema.Col("seq", schema.TypeInt),
	))
	for i := 0; i < 40; i++ {
		var k schema.Value
		switch i % 5 {
		case 0:
			k = schema.Float(1)
		case 1:
			k = schema.Float(0)
		case 2:
			k = schema.Float(math.Copysign(0, -1))
		case 3:
			k = schema.Null()
		default:
			k = schema.Float(2)
		}
		if err := tb.Append(schema.Row{k, schema.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestSortStabilityTypedKeys pins that equal-key rows keep their input order
// through the typed-key sort: within every run of equal keys (including the
// +0.0/-0.0 pair and the NULL group) seq must be strictly increasing, and
// each key's original bit pattern must survive untouched.
func TestSortStabilityTypedKeys(t *testing.T) {
	st := stabilityStore(t)
	res, err := New(st).Query(context.Background(), "SELECT k, seq FROM st ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 40 {
		t.Fatalf("row count = %d, want 40", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		prev, cur := res.Rows[i-1], res.Rows[i]
		switch c := compareForSort(prev[0], cur[0]); {
		case c > 0:
			t.Fatalf("row %d: keys out of order: %s after %s", i, cur[0].Format(), prev[0].Format())
		case c == 0:
			if prev[1].AsInt() >= cur[1].AsInt() {
				t.Fatalf("row %d: equal keys reordered: seq %d before %d", i, prev[1].AsInt(), cur[1].AsInt())
			}
		}
	}
	// -0.0 sorts as equal to +0.0, so stability means the zeros appear in
	// input order with their signs interleaved exactly as inserted: seq
	// 1,2,6,7,11,12,... alternating +0.0, -0.0.
	zeros := 0
	for _, r := range res.Rows {
		if r[0].Type() == schema.TypeFloat && r[0].AsFloat() == 0 {
			wantNeg := zeros%2 == 1
			if math.Signbit(r[0].AsFloat()) != wantNeg {
				t.Fatalf("zero #%d: sign bit flipped or reordered (seq %d)", zeros, r[1].AsInt())
			}
			zeros++
		}
	}
	if zeros != 16 {
		t.Fatalf("saw %d zero keys, want 16", zeros)
	}
}

// TestSortLimitMatchesTruncatedFullSort pins the top-K path (and, with
// equal keys everywhere, its stability): ORDER BY ... LIMIT k must return
// exactly the first k rows of the unlimited sort, bit-for-bit.
func TestSortLimitMatchesTruncatedFullSort(t *testing.T) {
	st := stabilityStore(t)
	ctx := context.Background()
	for _, sql := range []string{
		"SELECT k, seq FROM st ORDER BY k",
		"SELECT k, seq FROM st ORDER BY k DESC",
		"SELECT k, seq FROM st ORDER BY k DESC, seq DESC",
	} {
		full, err := New(st).Query(ctx, sql)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{0, 1, 7, 39, 40, 100} {
			lim, err := New(st).Query(ctx, sqlWithLimit(sql, k))
			if err != nil {
				t.Fatal(err)
			}
			want := full.Rows
			if k < len(want) {
				want = want[:k]
			}
			if len(lim.Rows) != len(want) {
				t.Fatalf("%s LIMIT %d: %d rows, want %d", sql, k, len(lim.Rows), len(want))
			}
			for i := range want {
				for c := range want[i] {
					if !sameValue(lim.Rows[i][c], want[i][c]) {
						t.Fatalf("%s LIMIT %d row %d col %d: %s != %s",
							sql, k, i, c, lim.Rows[i][c].Format(), want[i][c].Format())
					}
				}
			}
		}
	}
}

func sqlWithLimit(sql string, k int) string {
	return sql + " LIMIT " + schema.Int(int64(k)).Format()
}

// TestTopKDeclinesOnNaN drives sortResult directly with NaN keys in the mix:
// the top-K shortcut must decline (the comparator is not a strict weak order
// with NaN) and sortResult(limit) must still equal the full stable sort
// truncated — for every limit, ascending and descending, including rounds
// where Int and Float keys share a column (boxed degradation).
func TestTopKDeclinesOnNaN(t *testing.T) {
	rng := rand.New(rand.NewSource(20160317))
	rel := schema.NewRelation("t",
		schema.Col("k", schema.TypeFloat),
		schema.Col("seq", schema.TypeInt),
	)
	for round := 0; round < 24; round++ {
		withNaN := round%2 == 0
		items := []sqlparser.OrderItem{{
			Expr: &sqlparser.ColumnRef{Name: "k"},
			Desc: rng.Intn(2) == 1,
		}}
		n := 5 + rng.Intn(40)
		rows := make(schema.Rows, n)
		for i := range rows {
			var k schema.Value
			switch rng.Intn(4) {
			case 0:
				if withNaN {
					k = schema.Float(math.NaN())
				} else {
					k = schema.Float(-1)
				}
			case 1:
				k = schema.Float(float64(rng.Intn(5)))
			case 2:
				k = schema.Int(int64(rng.Intn(5))) // mixed types box the key column
			default:
				k = schema.Null()
			}
			rows[i] = schema.Row{k, schema.Int(int64(i))}
		}
		full := &Result{Schema: rel, Rows: append(schema.Rows{}, rows...)}
		if err := sortResult(full, nil, nil, items, -1); err != nil {
			t.Fatal(err)
		}
		for limit := 0; limit <= n; limit += 1 + rng.Intn(5) {
			lim := &Result{Schema: rel, Rows: append(schema.Rows{}, rows...)}
			if err := sortResult(lim, nil, nil, items, limit); err != nil {
				t.Fatal(err)
			}
			// sortResult may return the full ordering (the caller truncates);
			// top-K returns at most limit rows. Apply the caller's truncation.
			if limit < len(lim.Rows) {
				lim.Rows = lim.Rows[:limit]
			}
			want := full.Rows
			if limit < len(want) {
				want = want[:limit]
			}
			if len(lim.Rows) != len(want) {
				t.Fatalf("round %d limit %d: %d rows, want %d", round, limit, len(lim.Rows), len(want))
			}
			for i := range want {
				if !sameValue(lim.Rows[i][0], want[i][0]) || !sameValue(lim.Rows[i][1], want[i][1]) {
					t.Fatalf("round %d limit %d row %d: (%s, %s) != (%s, %s)",
						round, limit, i,
						lim.Rows[i][0].Format(), lim.Rows[i][1].Format(),
						want[i][0].Format(), want[i][1].Format())
				}
			}
		}
	}
}
