package engine

import (
	"fmt"
	"math"
	"strings"

	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// rowEnv carries everything needed to evaluate an expression against one
// row: the binding, the row itself, and precomputed values for aggregate and
// window calls (keyed by their canonical SQL text). Long-lived environments
// (one per operator, reused across every row of the stream) memoize column
// resolution per expression node in idx — resolve walks the binding with
// case folding, which is far too slow to repeat per row.
type rowEnv struct {
	b   *binding
	row schema.Row
	agg map[string]schema.Value
	// win holds window-call results as per-call columns aligned with the
	// input rows (winTable from evalWindows); winRow selects the current
	// row. One map for the whole materialized projection instead of one
	// per row.
	win    winTable
	winRow int
	idx    map[*sqlparser.ColumnRef]int
}

// reuse marks the environment as long-lived, enabling per-node memoization
// of column resolution. Per-row throwaway environments skip the map (its
// allocation would cost more than one resolve).
func (env *rowEnv) reuse() *rowEnv {
	env.idx = make(map[*sqlparser.ColumnRef]int, 8)
	return env
}

// colIndex resolves a column reference, memoized when the environment is
// long-lived. Failed resolutions are not cached (they carry per-call error
// context and only happen once before the query errors out).
func (env *rowEnv) colIndex(c *sqlparser.ColumnRef) (int, error) {
	if env.idx != nil {
		if i, ok := env.idx[c]; ok {
			return i, nil
		}
	}
	i, err := env.b.resolve(c)
	if err != nil {
		return i, err
	}
	if env.idx != nil {
		env.idx[c] = i
	}
	return i, nil
}

// evalExpr evaluates a scalar or boolean expression with SQL NULL
// propagation semantics.
func evalExpr(env *rowEnv, e sqlparser.Expr) (schema.Value, error) {
	switch x := e.(type) {
	case *sqlparser.Literal:
		return x.Value, nil
	case *sqlparser.ColumnRef:
		i, err := env.colIndex(x)
		if err != nil {
			return schema.Null(), err
		}
		return env.row[i], nil
	case *sqlparser.BinaryExpr:
		return evalBinary(env, x)
	case *sqlparser.UnaryExpr:
		return evalUnary(env, x)
	case *sqlparser.IsNull:
		v, err := evalExpr(env, x.X)
		if err != nil {
			return schema.Null(), err
		}
		if x.Not {
			return schema.Bool(!v.IsNull()), nil
		}
		return schema.Bool(v.IsNull()), nil
	case *sqlparser.Between:
		v, err := evalExpr(env, x.X)
		if err != nil {
			return schema.Null(), err
		}
		lo, err := evalExpr(env, x.Lo)
		if err != nil {
			return schema.Null(), err
		}
		hi, err := evalExpr(env, x.Hi)
		if err != nil {
			return schema.Null(), err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return schema.Null(), nil
		}
		c1, ok1 := v.Compare(lo)
		c2, ok2 := v.Compare(hi)
		if !ok1 || !ok2 {
			return schema.Null(), nil
		}
		in := c1 >= 0 && c2 <= 0
		if x.Not {
			in = !in
		}
		return schema.Bool(in), nil
	case *sqlparser.InList:
		v, err := evalExpr(env, x.X)
		if err != nil {
			return schema.Null(), err
		}
		if v.IsNull() {
			return schema.Null(), nil
		}
		sawNull := false
		for _, item := range x.List {
			iv, err := evalExpr(env, item)
			if err != nil {
				return schema.Null(), err
			}
			if iv.IsNull() {
				sawNull = true
				continue
			}
			if v.Equal(iv) {
				return schema.Bool(!x.Not), nil
			}
		}
		if sawNull {
			return schema.Null(), nil
		}
		return schema.Bool(x.Not), nil
	case *sqlparser.CaseExpr:
		for _, w := range x.Whens {
			c, err := evalExpr(env, w.Cond)
			if err != nil {
				return schema.Null(), err
			}
			if !c.IsNull() && c.Type() == schema.TypeBool && c.AsBool() {
				return evalExpr(env, w.Then)
			}
		}
		if x.Else != nil {
			return evalExpr(env, x.Else)
		}
		return schema.Null(), nil
	case *sqlparser.FuncCall:
		return evalFunc(env, x)
	case *sqlparser.Star:
		return schema.Null(), fmt.Errorf("%w: * is not a scalar expression here", ErrQuery)
	default:
		return schema.Null(), fmt.Errorf("%w: cannot evaluate %T", ErrQuery, e)
	}
}

// truthy evaluates an expression as a filter predicate: SQL's three-valued
// logic collapses NULL to false.
func truthy(env *rowEnv, e sqlparser.Expr) (bool, error) {
	v, err := evalExpr(env, e)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	switch v.Type() {
	case schema.TypeBool:
		return v.AsBool(), nil
	case schema.TypeInt:
		return v.AsInt() != 0, nil
	case schema.TypeFloat:
		return v.AsFloat() != 0, nil
	default:
		return false, fmt.Errorf("%w: predicate %s is not boolean", ErrQuery, e.SQL())
	}
}

func evalBinary(env *rowEnv, x *sqlparser.BinaryExpr) (schema.Value, error) {
	// AND / OR with Kleene three-valued logic and short-circuiting.
	if x.Op == sqlparser.OpAnd || x.Op == sqlparser.OpOr {
		l, err := evalExpr(env, x.L)
		if err != nil {
			return schema.Null(), err
		}
		lb, lNull := boolOrNull(l)
		if x.Op == sqlparser.OpAnd && !lNull && !lb {
			return schema.Bool(false), nil
		}
		if x.Op == sqlparser.OpOr && !lNull && lb {
			return schema.Bool(true), nil
		}
		r, err := evalExpr(env, x.R)
		if err != nil {
			return schema.Null(), err
		}
		rb, rNull := boolOrNull(r)
		if x.Op == sqlparser.OpAnd {
			switch {
			case !rNull && !rb:
				return schema.Bool(false), nil
			case lNull || rNull:
				return schema.Null(), nil
			default:
				return schema.Bool(true), nil
			}
		}
		switch {
		case !rNull && rb:
			return schema.Bool(true), nil
		case lNull || rNull:
			return schema.Null(), nil
		default:
			return schema.Bool(false), nil
		}
	}

	l, err := evalExpr(env, x.L)
	if err != nil {
		return schema.Null(), err
	}
	r, err := evalExpr(env, x.R)
	if err != nil {
		return schema.Null(), err
	}
	if l.IsNull() || r.IsNull() {
		return schema.Null(), nil
	}
	if x.Op.Comparison() {
		c, ok := l.Compare(r)
		if !ok {
			return schema.Null(), fmt.Errorf("%w: cannot compare %s and %s in %s",
				ErrQuery, l.Type(), r.Type(), x.SQL())
		}
		switch x.Op {
		case sqlparser.OpEq:
			return schema.Bool(c == 0), nil
		case sqlparser.OpNeq:
			return schema.Bool(c != 0), nil
		case sqlparser.OpLt:
			return schema.Bool(c < 0), nil
		case sqlparser.OpLeq:
			return schema.Bool(c <= 0), nil
		case sqlparser.OpGt:
			return schema.Bool(c > 0), nil
		case sqlparser.OpGeq:
			return schema.Bool(c >= 0), nil
		}
	}
	if x.Op == sqlparser.OpConcat {
		return schema.String(stringify(l) + stringify(r)), nil
	}
	return evalArith(x.Op, l, r, x)
}

func evalUnary(env *rowEnv, x *sqlparser.UnaryExpr) (schema.Value, error) {
	v, err := evalExpr(env, x.X)
	if err != nil {
		return schema.Null(), err
	}
	if v.IsNull() {
		return schema.Null(), nil
	}
	if x.Op == sqlparser.UnaryNot {
		b, isNull := boolOrNull(v)
		if isNull {
			return schema.Null(), nil
		}
		return schema.Bool(!b), nil
	}
	switch v.Type() {
	case schema.TypeInt:
		return schema.Int(-v.AsInt()), nil
	case schema.TypeFloat:
		return schema.Float(-v.AsFloat()), nil
	default:
		return schema.Null(), fmt.Errorf("%w: cannot negate %s", ErrQuery, v.Type())
	}
}

func boolOrNull(v schema.Value) (b bool, isNull bool) {
	if v.IsNull() {
		return false, true
	}
	switch v.Type() {
	case schema.TypeBool:
		return v.AsBool(), false
	case schema.TypeInt:
		return v.AsInt() != 0, false
	case schema.TypeFloat:
		return v.AsFloat() != 0, false
	default:
		return false, true
	}
}

func stringify(v schema.Value) string { return v.Format() }

func evalArith(op sqlparser.BinaryOp, l, r schema.Value, at sqlparser.Expr) (schema.Value, error) {
	if !l.Type().Numeric() || !r.Type().Numeric() {
		return schema.Null(), fmt.Errorf("%w: arithmetic on %s and %s in %s",
			ErrQuery, l.Type(), r.Type(), at.SQL())
	}
	// Integer arithmetic stays integral except for division.
	if l.Type() == schema.TypeInt && r.Type() == schema.TypeInt && op != sqlparser.OpDiv {
		a, b := l.AsInt(), r.AsInt()
		switch op {
		case sqlparser.OpAdd:
			return schema.Int(a + b), nil
		case sqlparser.OpSub:
			return schema.Int(a - b), nil
		case sqlparser.OpMul:
			return schema.Int(a * b), nil
		case sqlparser.OpMod:
			if b == 0 {
				return schema.Null(), fmt.Errorf("%w: division by zero in %s", ErrQuery, at.SQL())
			}
			return schema.Int(a % b), nil
		}
	}
	a, b := l.AsFloat(), r.AsFloat()
	switch op {
	case sqlparser.OpAdd:
		return schema.Float(a + b), nil
	case sqlparser.OpSub:
		return schema.Float(a - b), nil
	case sqlparser.OpMul:
		return schema.Float(a * b), nil
	case sqlparser.OpDiv:
		if b == 0 {
			return schema.Null(), fmt.Errorf("%w: division by zero in %s", ErrQuery, at.SQL())
		}
		return schema.Float(a / b), nil
	case sqlparser.OpMod:
		if b == 0 {
			return schema.Null(), fmt.Errorf("%w: division by zero in %s", ErrQuery, at.SQL())
		}
		return schema.Float(math.Mod(a, b)), nil
	default:
		return schema.Null(), fmt.Errorf("%w: unsupported operator %s", ErrQuery, op)
	}
}

func evalFunc(env *rowEnv, f *sqlparser.FuncCall) (schema.Value, error) {
	key := f.SQL()
	if f.IsWindow() {
		if env.win != nil {
			if vs, ok := env.win[key]; ok {
				return vs[env.winRow], nil
			}
		}
		return schema.Null(), fmt.Errorf("%w: window function %s not allowed here", ErrQuery, key)
	}
	if f.IsAggregate() {
		if env.agg != nil {
			if v, ok := env.agg[key]; ok {
				return v, nil
			}
		}
		return schema.Null(), fmt.Errorf("%w: aggregate %s not allowed here", ErrQuery, key)
	}
	args := make([]schema.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := evalExpr(env, a)
		if err != nil {
			return schema.Null(), err
		}
		args[i] = v
	}
	return callScalar(f.Name, args)
}

// callScalar dispatches built-in scalar functions.
func callScalar(name string, args []schema.Value) (schema.Value, error) {
	switch name {
	case "coalesce":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return schema.Null(), nil
	case "nullif":
		if err := arity(name, args, 2); err != nil {
			return schema.Null(), err
		}
		if !args[0].IsNull() && !args[1].IsNull() && args[0].Equal(args[1]) {
			return schema.Null(), nil
		}
		return args[0], nil
	case "least", "greatest":
		var best schema.Value
		for _, a := range args {
			if a.IsNull() {
				return schema.Null(), nil
			}
			if best.IsNull() {
				best = a
				continue
			}
			c, ok := a.Compare(best)
			if !ok {
				return schema.Null(), fmt.Errorf("%w: %s over incomparable types", ErrQuery, name)
			}
			if (name == "least" && c < 0) || (name == "greatest" && c > 0) {
				best = a
			}
		}
		return best, nil
	}

	// Remaining functions propagate NULL from any argument.
	for _, a := range args {
		if a.IsNull() {
			return schema.Null(), nil
		}
	}
	switch name {
	case "abs":
		if err := arity(name, args, 1); err != nil {
			return schema.Null(), err
		}
		if args[0].Type() == schema.TypeInt {
			v := args[0].AsInt()
			if v < 0 {
				v = -v
			}
			return schema.Int(v), nil
		}
		return schema.Float(math.Abs(numArg(args[0]))), nil
	case "sign":
		if err := arity(name, args, 1); err != nil {
			return schema.Null(), err
		}
		v := numArg(args[0])
		switch {
		case v > 0:
			return schema.Int(1), nil
		case v < 0:
			return schema.Int(-1), nil
		default:
			return schema.Int(0), nil
		}
	case "round":
		if len(args) == 1 {
			return schema.Float(math.Round(numArg(args[0]))), nil
		}
		if err := arity(name, args, 2); err != nil {
			return schema.Null(), err
		}
		p := math.Pow(10, numArg(args[1]))
		return schema.Float(math.Round(numArg(args[0])*p) / p), nil
	case "floor":
		if err := arity(name, args, 1); err != nil {
			return schema.Null(), err
		}
		return schema.Float(math.Floor(numArg(args[0]))), nil
	case "ceil", "ceiling":
		if err := arity(name, args, 1); err != nil {
			return schema.Null(), err
		}
		return schema.Float(math.Ceil(numArg(args[0]))), nil
	case "sqrt":
		if err := arity(name, args, 1); err != nil {
			return schema.Null(), err
		}
		v := numArg(args[0])
		if v < 0 {
			return schema.Null(), fmt.Errorf("%w: sqrt of negative value", ErrQuery)
		}
		return schema.Float(math.Sqrt(v)), nil
	case "power", "pow":
		if err := arity(name, args, 2); err != nil {
			return schema.Null(), err
		}
		return schema.Float(math.Pow(numArg(args[0]), numArg(args[1]))), nil
	case "exp":
		if err := arity(name, args, 1); err != nil {
			return schema.Null(), err
		}
		return schema.Float(math.Exp(numArg(args[0]))), nil
	case "ln":
		if err := arity(name, args, 1); err != nil {
			return schema.Null(), err
		}
		v := numArg(args[0])
		if v <= 0 {
			return schema.Null(), fmt.Errorf("%w: ln of non-positive value", ErrQuery)
		}
		return schema.Float(math.Log(v)), nil
	case "log10":
		if err := arity(name, args, 1); err != nil {
			return schema.Null(), err
		}
		v := numArg(args[0])
		if v <= 0 {
			return schema.Null(), fmt.Errorf("%w: log10 of non-positive value", ErrQuery)
		}
		return schema.Float(math.Log10(v)), nil
	case "mod":
		if err := arity(name, args, 2); err != nil {
			return schema.Null(), err
		}
		return evalArith(sqlparser.OpMod, args[0], args[1], &sqlparser.FuncCall{Name: "mod"})
	case "upper":
		if err := arity(name, args, 1); err != nil {
			return schema.Null(), err
		}
		return schema.String(strings.ToUpper(strArg(args[0]))), nil
	case "lower":
		if err := arity(name, args, 1); err != nil {
			return schema.Null(), err
		}
		return schema.String(strings.ToLower(strArg(args[0]))), nil
	case "length":
		if err := arity(name, args, 1); err != nil {
			return schema.Null(), err
		}
		return schema.Int(int64(len(strArg(args[0])))), nil
	case "trim":
		if err := arity(name, args, 1); err != nil {
			return schema.Null(), err
		}
		return schema.String(strings.TrimSpace(strArg(args[0]))), nil
	case "concat":
		var b strings.Builder
		for _, a := range args {
			b.WriteString(stringify(a))
		}
		return schema.String(b.String()), nil
	case "substr", "substring":
		if len(args) != 2 && len(args) != 3 {
			return schema.Null(), fmt.Errorf("%w: substr takes 2 or 3 arguments", ErrQuery)
		}
		s := strArg(args[0])
		start := int(numArg(args[1])) - 1 // SQL is 1-based
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			return schema.String(""), nil
		}
		end := len(s)
		if len(args) == 3 {
			n := int(numArg(args[2]))
			if n < 0 {
				n = 0
			}
			if start+n < end {
				end = start + n
			}
		}
		return schema.String(s[start:end]), nil
	case "like":
		if err := arity(name, args, 2); err != nil {
			return schema.Null(), err
		}
		return schema.Bool(likeMatch(strArg(args[0]), strArg(args[1]))), nil
	default:
		return schema.Null(), fmt.Errorf("%w: unknown function %s", ErrQuery, name)
	}
}

func arity(name string, args []schema.Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("%w: %s takes %d arguments, got %d", ErrQuery, name, n, len(args))
	}
	return nil
}

func numArg(v schema.Value) float64 {
	if v.Type().Numeric() {
		return v.AsFloat()
	}
	return math.NaN()
}

func strArg(v schema.Value) string {
	if v.Type() == schema.TypeString {
		return v.AsString()
	}
	return v.Format()
}

// likeMatch implements SQL LIKE with % (any run) and _ (single rune).
func likeMatch(s, pattern string) bool {
	return likeRunes([]rune(s), []rune(pattern))
}

func likeRunes(s, p []rune) bool {
	if len(p) == 0 {
		return len(s) == 0
	}
	switch p[0] {
	case '%':
		for i := 0; i <= len(s); i++ {
			if likeRunes(s[i:], p[1:]) {
				return true
			}
		}
		return false
	case '_':
		return len(s) > 0 && likeRunes(s[1:], p[1:])
	default:
		return len(s) > 0 && s[0] == p[0] && likeRunes(s[1:], p[1:])
	}
}
