// Package engine executes the SQL subset produced by sqlparser over
// in-memory relations. It is the query processor that runs — identically —
// on every node of the vertical architecture, from the cloud server down to
// an appliance; only the *fragment* of the query a node receives differs
// (capability enforcement happens in the fragment package, not here).
//
// Execution is a pull-based, batch-at-a-time iterator pipeline (volcano
// with row batches): scans, filters, projections, join probes, DISTINCT and
// LIMIT stream; GROUP BY, window functions and ORDER BY are pipeline
// breakers that materialize their input. Engine.Select drains the pipeline
// into a materialized Result; Engine.Open exposes the pipeline itself so
// fragment chains and network nodes can process batches without holding
// whole intermediate relations.
package engine

import (
	"context"
	"errors"
	"fmt"

	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// ErrQuery wraps all semantic evaluation errors.
var ErrQuery = errors.New("engine: query error")

// Source supplies base relations by name. storage.Store implements it;
// the network simulator implements it per node. Sources that additionally
// implement BatchSource are scanned batch-at-a-time with projection and
// predicate pushdown instead of being materialized.
type Source interface {
	Relation(name string) (*schema.Relation, schema.Rows, error)
}

// Result is an evaluated relation: output schema plus rows.
type Result struct {
	Schema *schema.Relation
	Rows   schema.Rows
}

// WireSize is the simulated serialized size of the result in bytes.
func (r *Result) WireSize() int { return r.Rows.WireSize() }

// Engine evaluates SELECT statements against a Source.
type Engine struct {
	src Source
}

// New creates an engine over the given source.
func New(src Source) *Engine { return &Engine{src: src} }

// Query parses and executes a SQL string.
func (e *Engine) Query(ctx context.Context, sql string) (*Result, error) {
	sel, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.Select(ctx, sel)
}

// Select executes a parsed statement, materializing the full result.
func (e *Engine) Select(ctx context.Context, sel *sqlparser.Select) (*Result, error) {
	rel, it, err := e.Open(ctx, sel)
	if err != nil {
		return nil, err
	}
	rows, err := schema.DrainIterator(it)
	if err != nil {
		return nil, err
	}
	return &Result{Schema: rel, Rows: rows}, nil
}

// Open compiles a parsed statement into its output schema and a pull-based
// batch iterator. The caller owns the iterator and must Close it (or drain
// it with schema.DrainIterator, which closes on exhaustion); closing early
// stops upstream scans. Intermediate memory is bounded by the batch size
// except at pipeline breakers (GROUP BY, windows, ORDER BY), which buffer
// their own input.
//
// The pipeline is bound to ctx at every scan: cancellation is checked per
// batch, so a cancelled consumer stops pulling from storage within one
// batch (including inside pipeline breakers, which drain their input
// through the same ctx-bound scans).
func (e *Engine) Open(ctx context.Context, sel *sqlparser.Select) (*schema.Relation, schema.RowIterator, error) {
	if sel.Where != nil && sqlparser.ContainsAggregate(sel.Where) {
		return nil, nil, fmt.Errorf("%w: aggregate in WHERE clause", ErrQuery)
	}

	b, it, err := e.openFrom(ctx, sel)
	if err != nil {
		return nil, nil, err
	}

	grouped := len(sel.GroupBy) > 0 || sel.Having != nil || itemsContainAggregate(sel)
	if grouped || itemsContainWindow(sel) || len(sel.OrderBy) > 0 {
		rel, rows, err := e.evalBroken(sel, b, it, grouped)
		if err != nil {
			return nil, nil, err
		}
		return rel, schema.WithContext(ctx, schema.IterateRows(rows, schema.DefaultBatchSize)), nil
	}

	p, err := buildProjector(sel, b)
	if err != nil {
		it.Close()
		return nil, nil, err
	}
	out := schema.RowIterator(&projIter{src: it, p: p, env: &rowEnv{b: b}})
	if sel.Distinct {
		out = &distinctIter{src: out, seen: make(map[string]bool)}
	}
	if sel.Limit != nil {
		n := int(*sel.Limit)
		if n < 0 {
			n = 0
		}
		out = &limitIter{src: out, remaining: n}
	}
	// Bind the pipeline head to ctx as well: sources are contracted to
	// check ctx inside their scans, but this guarantees cancellation for
	// any Source implementation (overlays, fan-in shards, adapters).
	return p.rel, schema.WithContext(ctx, out), nil
}

// evalBroken is the pipeline-breaker path: grouping, window functions and
// ORDER BY need the whole input (ORDER BY + LIMIT sorts fully before
// truncating), so the upstream pipeline is drained here and the classic
// materialized operators run over it.
func (e *Engine) evalBroken(sel *sqlparser.Select, b *binding, it schema.RowIterator, grouped bool) (*schema.Relation, schema.Rows, error) {
	rows, err := schema.DrainIterator(it)
	if err != nil {
		return nil, nil, err
	}

	var out *Result
	var orderRows schema.Rows // rows aligned with out.Rows for ORDER BY fallback
	if grouped {
		out, err = e.evalGrouped(sel, b, rows)
		if err != nil {
			return nil, nil, err
		}
	} else {
		out, orderRows, err = e.evalProjection(sel, b, rows)
		if err != nil {
			return nil, nil, err
		}
	}

	if sel.Distinct {
		out.Rows = distinctRows(out.Rows)
		orderRows = nil
	}

	if len(sel.OrderBy) > 0 {
		if err := sortResult(out, orderRows, b, sel.OrderBy); err != nil {
			return nil, nil, err
		}
	}

	if sel.Limit != nil {
		n := int(*sel.Limit)
		if n < 0 {
			n = 0
		}
		if n < len(out.Rows) {
			out.Rows = out.Rows[:n]
		}
	}
	return out.Schema, out.Rows, nil
}

func itemsContainAggregate(sel *sqlparser.Select) bool {
	for _, it := range sel.Items {
		if sqlparser.ContainsAggregate(it.Expr) {
			return true
		}
	}
	return false
}

func itemsContainWindow(sel *sqlparser.Select) bool {
	for _, it := range sel.Items {
		if sqlparser.ContainsWindow(it.Expr) {
			return true
		}
	}
	return false
}

// openFrom opens the FROM clause as a batch pipeline and applies the WHERE
// filter — pushed into the scan when FROM is a single table, wrapped as a
// filter operator otherwise.
func (e *Engine) openFrom(ctx context.Context, sel *sqlparser.Select) (*binding, schema.RowIterator, error) {
	if tn, ok := sel.From.(*sqlparser.TableName); ok {
		return e.openTableScan(ctx, tn, sel)
	}
	b, it, err := e.openRef(ctx, sel.From)
	if err != nil {
		return nil, nil, err
	}
	if sel.Where != nil {
		it = &filterIter{src: it, env: &rowEnv{b: b}, cond: sel.Where}
	}
	return b, it, nil
}

// openTableScan opens a single-table FROM with the WHERE predicate compiled
// to a row closure and the set of referenced columns pushed down into the
// source's scan. The returned binding reflects the projected layout.
func (e *Engine) openTableScan(ctx context.Context, tn *sqlparser.TableName, sel *sqlparser.Select) (*binding, schema.RowIterator, error) {
	rel, err := RelationSchema(e.src, tn.Name)
	if err != nil {
		return nil, nil, err
	}
	qual := tn.Name
	if tn.Alias != "" {
		qual = tn.Alias
	}
	full := bindingFromRelation(rel, qual)

	var sc schema.Scan
	if sel.Where != nil {
		env := &rowEnv{b: full}
		cond := sel.Where
		sc.Filter = func(r schema.Row) (bool, error) {
			env.row = r
			return truthy(env, cond)
		}
	}
	b := full
	if cols, ok := pushdownColumns(sel, full); ok {
		sc.Columns = cols
		b = bindingFromRelation(rel.Project(cols), qual)
	}
	it, err := OpenScan(ctx, e.src, tn.Name, sc)
	if err != nil {
		return nil, nil, err
	}
	return b, it, nil
}

// openRef opens one FROM item (without any WHERE handling).
func (e *Engine) openRef(ctx context.Context, t sqlparser.TableRef) (*binding, schema.RowIterator, error) {
	switch x := t.(type) {
	case nil:
		// SELECT without FROM: one empty row.
		return &binding{}, schema.IterateRows(schema.Rows{{}}, 1), nil
	case *sqlparser.TableName:
		rel, err := RelationSchema(e.src, x.Name)
		if err != nil {
			return nil, nil, err
		}
		qual := x.Name
		if x.Alias != "" {
			qual = x.Alias
		}
		it, err := OpenScan(ctx, e.src, x.Name, schema.Scan{})
		if err != nil {
			return nil, nil, err
		}
		return bindingFromRelation(rel, qual), it, nil
	case *sqlparser.Subquery:
		rel, it, err := e.Open(ctx, x.Select)
		if err != nil {
			return nil, nil, err
		}
		return bindingFromRelation(rel, x.Alias), it, nil
	case *sqlparser.Join:
		return e.openJoin(ctx, x)
	default:
		return nil, nil, fmt.Errorf("%w: unsupported FROM item %T", ErrQuery, t)
	}
}

// openJoin builds a streaming join: the right (build) side is materialized,
// the left (probe) side streams batch-at-a-time. Equi-joins on plain column
// references use a hash index; everything else falls back to nested loops.
func (e *Engine) openJoin(ctx context.Context, j *sqlparser.Join) (*binding, schema.RowIterator, error) {
	lb, lit, err := e.openRef(ctx, j.Left)
	if err != nil {
		return nil, nil, err
	}
	rb, rit, err := e.openRef(ctx, j.Right)
	if err != nil {
		lit.Close()
		return nil, nil, err
	}
	rrows, err := schema.DrainIterator(rit)
	if err != nil {
		lit.Close()
		return nil, nil, err
	}
	cb := lb.concat(rb)

	if j.Type == sqlparser.JoinCross {
		return cb, &loopJoinIter{left: lit, rrows: rrows, cb: cb}, nil
	}

	// Hash join fast path: ON is a conjunction containing at least one
	// left.col = right.col equality.
	eqL, eqR, rest := splitEquiJoin(j.On, lb, rb)
	if len(eqL) > 0 {
		index := make(map[string][]int, len(rrows))
		for ri, rr := range rrows {
			key := rr.GroupKey(eqR)
			index[key] = append(index[key], ri)
		}
		return cb, &hashJoinIter{
			left: lit, rrows: rrows, index: index,
			eqL: eqL, rest: rest, cb: cb,
			leftJoin: j.Type == sqlparser.JoinLeft,
			nullR:    nullRow(len(rb.cols)),
		}, nil
	}

	return cb, &loopJoinIter{
		left: lit, rrows: rrows, on: j.On, cb: cb,
		leftJoin: j.Type == sqlparser.JoinLeft,
		nullR:    nullRow(len(rb.cols)),
	}, nil
}

func joinRow(l, r schema.Row) schema.Row {
	out := make(schema.Row, 0, len(l)+len(r))
	out = append(out, l...)
	out = append(out, r...)
	return out
}

func nullRow(n int) schema.Row {
	out := make(schema.Row, n)
	for i := range out {
		out[i] = schema.Null()
	}
	return out
}

// splitEquiJoin extracts left.col = right.col equalities from the ON
// condition. It returns aligned index slices into the left and right
// bindings plus the residual conjuncts.
func splitEquiJoin(on sqlparser.Expr, lb, rb *binding) (eqL, eqR []int, rest []sqlparser.Expr) {
	for _, c := range sqlparser.Conjuncts(on) {
		be, ok := c.(*sqlparser.BinaryExpr)
		if !ok || be.Op != sqlparser.OpEq {
			rest = append(rest, c)
			continue
		}
		lc, lok := be.L.(*sqlparser.ColumnRef)
		rc, rok := be.R.(*sqlparser.ColumnRef)
		if !lok || !rok {
			rest = append(rest, c)
			continue
		}
		li, lerr := lb.resolve(lc)
		ri, rerr := rb.resolve(rc)
		if lerr == nil && rerr == nil {
			eqL = append(eqL, li)
			eqR = append(eqR, ri)
			continue
		}
		// Try swapped sides.
		li, lerr = lb.resolve(rc)
		ri, rerr = rb.resolve(lc)
		if lerr == nil && rerr == nil {
			eqL = append(eqL, li)
			eqR = append(eqR, ri)
			continue
		}
		rest = append(rest, c)
	}
	return eqL, eqR, rest
}

func residualOK(b *binding, row schema.Row, rest []sqlparser.Expr) (bool, error) {
	for _, c := range rest {
		ok, err := truthy(&rowEnv{b: b, row: row}, c)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// outCol is one output column of a projection: either an expression to
// evaluate or a direct star expansion of an input position.
type outCol struct {
	expr    sqlparser.Expr
	name    string
	typ     schema.Type
	sens    bool
	starIdx int // >=0 when the column is a direct star expansion
}

// projector is the compiled select list of a non-grouped SELECT: output
// columns, output schema, and whether the projection is the identity.
type projector struct {
	cols     []outCol
	rel      *schema.Relation
	identity bool
}

// buildProjector expands stars and precomputes the output schema once, so
// per-batch projection only evaluates expressions.
func buildProjector(sel *sqlparser.Select, b *binding) (*projector, error) {
	var cols []outCol
	for i, it := range sel.Items {
		if st, ok := it.Expr.(*sqlparser.Star); ok {
			idxs, err := b.starIndexes(st)
			if err != nil {
				return nil, err
			}
			for _, idx := range idxs {
				c := b.cols[idx]
				cols = append(cols, outCol{name: c.name, typ: c.typ, sens: c.sens, starIdx: idx})
			}
			continue
		}
		name := it.Alias
		if name == "" {
			name = outputName(it.Expr, i)
		}
		// A plain column reference is a direct index copy: resolve it once
		// here instead of re-resolving per row (on failure, keep the
		// expression so the original runtime error surfaces).
		if c, ok := it.Expr.(*sqlparser.ColumnRef); ok {
			if idx, err := b.resolve(c); err == nil {
				bc := b.cols[idx]
				cols = append(cols, outCol{name: name, typ: bc.typ, sens: bc.sens, starIdx: idx})
				continue
			}
		}
		cols = append(cols, outCol{
			expr:    it.Expr,
			name:    name,
			typ:     b.staticType(it.Expr),
			sens:    b.sensitiveExpr(it.Expr),
			starIdx: -1,
		})
	}

	rel := &schema.Relation{Columns: make([]schema.Column, len(cols))}
	identity := len(cols) == len(b.cols)
	for i, c := range cols {
		rel.Columns[i] = schema.Column{Name: c.name, Type: c.typ, Sensitive: c.sens}
		if c.starIdx != i {
			identity = false
		}
	}
	return &projector{cols: cols, rel: rel, identity: identity}, nil
}

// projectRow evaluates one output row against the environment's current row.
func (p *projector) projectRow(env *rowEnv) (schema.Row, error) {
	if p.identity {
		return env.row, nil
	}
	orow := make(schema.Row, len(p.cols))
	for ci, c := range p.cols {
		if c.starIdx >= 0 {
			orow[ci] = env.row[c.starIdx]
			continue
		}
		v, err := evalExpr(env, c.expr)
		if err != nil {
			return nil, err
		}
		orow[ci] = v
	}
	return orow, nil
}

// evalProjection handles the materialized non-grouped case, including window
// functions. It returns the result plus the input rows aligned 1:1 with
// output rows so ORDER BY can fall back to input columns.
func (e *Engine) evalProjection(sel *sqlparser.Select, b *binding, rows schema.Rows) (*Result, schema.Rows, error) {
	p, err := buildProjector(sel, b)
	if err != nil {
		return nil, nil, err
	}

	// Precompute window values per row.
	winVals, err := e.evalWindows(sel, b, rows)
	if err != nil {
		return nil, nil, err
	}

	out := make(schema.Rows, len(rows))
	env := &rowEnv{b: b}
	for ri, row := range rows {
		env.row = row
		if winVals != nil {
			env.win = winVals[ri]
		}
		orow, err := p.projectRow(env)
		if err != nil {
			return nil, nil, err
		}
		out[ri] = orow
	}
	return &Result{Schema: p.rel, Rows: out}, rows, nil
}

func distinctRows(rows schema.Rows) schema.Rows {
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	for _, r := range rows {
		key := r.GroupKey(allIndexes(len(r)))
		if !seen[key] {
			seen[key] = true
			out = append(out, r)
		}
	}
	return out
}

func allIndexes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
