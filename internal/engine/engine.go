package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"paradise/internal/plan"
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// ErrQuery wraps all semantic evaluation errors.
var ErrQuery = errors.New("engine: query error")

// Source supplies base relations by name. storage.Store implements it;
// the network simulator implements it per node. Sources that additionally
// implement BatchSource are scanned batch-at-a-time with projection and
// predicate pushdown instead of being materialized.
type Source interface {
	Relation(name string) (*schema.Relation, schema.Rows, error)
}

// Result is an evaluated relation: output schema plus rows.
type Result struct {
	Schema *schema.Relation
	Rows   schema.Rows
}

// WireSize is the simulated serialized size of the result in bytes.
func (r *Result) WireSize() int { return r.Rows.WireSize() }

// Engine evaluates query plans against a Source.
type Engine struct {
	src Source
	par int
}

// New creates an engine over the given source. Execution is serial by
// default; WithParallelism opts pipelines into morsel-driven parallel
// execution.
func New(src Source) *Engine { return &Engine{src: src, par: 1} }

// WithParallelism sets the number of worker goroutines each compiled
// pipeline may use for its streamable segments (scan, filter, projection,
// join probe, DISTINCT, GROUP BY partitioning): n <= 0 means
// runtime.GOMAXPROCS(0), 1 keeps execution serial. Parallel pipelines are
// row- and order-identical to serial ones — the exchange re-emits worker
// output in morsel order (see parallel.go) — so the setting is purely a
// performance knob. It returns the engine for chaining and must be called
// before Open; an Engine must not be reconfigured while pipelines are
// open.
func (e *Engine) WithParallelism(n int) *Engine {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	e.par = n
	return e
}

// Parallelism reports the configured worker count (1 = serial).
func (e *Engine) Parallelism() int { return e.par }

// Catalog adapts the engine's source into the optimizer's catalog: column
// names per base relation, used for projection pruning and join-side
// attribution.
func (e *Engine) Catalog() plan.Catalog {
	return func(table string) ([]string, bool) {
		rel, err := RelationSchema(e.src, table)
		if err != nil {
			return nil, false
		}
		return rel.ColumnNames(), true
	}
}

// Query parses, lowers, optimizes and executes a SQL string.
func (e *Engine) Query(ctx context.Context, sql string) (*Result, error) {
	sel, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.Select(ctx, sel)
}

// Select executes a parsed statement, materializing the full result.
func (e *Engine) Select(ctx context.Context, sel *sqlparser.Select) (*Result, error) {
	rel, it, err := e.OpenSelect(ctx, sel)
	if err != nil {
		return nil, err
	}
	return drainResult(rel, it)
}

// SelectPlan executes an already-lowered plan, materializing the result.
func (e *Engine) SelectPlan(ctx context.Context, root plan.Node) (*Result, error) {
	rel, it, err := e.Open(ctx, root)
	if err != nil {
		return nil, err
	}
	return drainResult(rel, it)
}

func drainResult(rel *schema.Relation, it schema.RowIterator) (*Result, error) {
	rows, err := schema.DrainIterator(it)
	if err != nil {
		return nil, err
	}
	return &Result{Schema: rel, Rows: rows}, nil
}

// OpenSelect lowers a parsed statement into the logical plan IR, optimizes
// it against this engine's catalog (constant folding, predicate pushdown
// into the scans, projection pruning) and opens the compiled pipeline.
func (e *Engine) OpenSelect(ctx context.Context, sel *sqlparser.Select) (*schema.Relation, schema.RowIterator, error) {
	root, err := plan.FromAST(sel)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrQuery, err)
	}
	root = plan.Optimize(root, plan.Options{Catalog: e.Catalog(), CrossBlock: true})
	return e.Open(ctx, root)
}

// Open compiles a logical plan into its output schema and a pull-based
// batch iterator. The caller owns the iterator and must Close it (or drain
// it with schema.DrainIterator, which closes on exhaustion); closing early
// stops upstream scans. Intermediate memory is bounded by the batch size
// except at pipeline breakers (GROUP BY, windows, ORDER BY), which buffer
// their own input. The plan tree is only read, never modified, so one plan
// can be opened concurrently.
//
// The pipeline is bound to ctx at every scan: cancellation is checked per
// batch, so a cancelled consumer stops pulling from storage within one
// batch (including inside pipeline breakers, which drain their input
// through the same ctx-bound scans).
func (e *Engine) Open(ctx context.Context, root plan.Node) (*schema.Relation, schema.RowIterator, error) {
	return e.openBlock(ctx, root)
}

// openBlock compiles one query block (plan.SplitBlock — the single owner of
// the block-shape rule) into its output schema and iterator, taking the
// morsel-parallel path (parallel.go) when the engine is configured for it
// and the block shape is eligible.
func (e *Engine) openBlock(ctx context.Context, top plan.Node) (*schema.Relation, schema.RowIterator, error) {
	blk, src := plan.SplitBlock(top)

	if e.parallelizable(blk) {
		rel, it, ok, err := e.openBlockParallel(ctx, blk, src)
		if err != nil {
			return nil, nil, err
		}
		if ok {
			return rel, it, nil
		}
	}

	if s, ok := src.(*plan.Scan); ok {
		rel, it, ok, err := e.openVecBlock(ctx, s, blk)
		if err != nil {
			return nil, nil, err
		}
		if ok {
			return rel, it, nil
		}
	}

	b, it, err := e.openSource(ctx, src, blk)
	if err != nil {
		return nil, nil, err
	}

	if blk.Agg != nil || blk.Win != nil || blk.Sort != nil {
		rel, rows, err := e.evalBroken(blk, b, it)
		if err != nil {
			return nil, nil, err
		}
		return rel, schema.WithContext(ctx, schema.IterateRows(rows, schema.DefaultBatchSize)), nil
	}

	p, err := buildProjector(blk.Items(), b)
	if err != nil {
		it.Close()
		return nil, nil, err
	}
	out := schema.RowIterator(&projIter{src: it, p: p, env: (&rowEnv{b: b}).reuse()})
	// An all-plain-column projection directly over a vectorized join folds
	// into the join's output gather: the combined wide rows are never
	// materialized and the projector stage disappears. Any filter between
	// them wraps the iterator, so this only fires on the bare join head.
	if vj, ok := it.(*vecJoinIter); ok && !p.identity {
		if om, omOK := projOutMap(p); omOK {
			vj.ex.core.retarget(om)
			out = it
		}
	}
	if blk.Distinct != nil {
		out = &distinctIter{src: out, seen: make(map[string]bool)}
	}
	if blk.Limit != nil {
		n := int(blk.Limit.N)
		if n < 0 {
			n = 0
		}
		out = &limitIter{src: out, remaining: n}
	}
	// Bind the pipeline head to ctx as well: sources are contracted to
	// check ctx inside their scans, but this guarantees cancellation for
	// any Source implementation (overlays, fan-in shards, adapters).
	return p.rel, schema.WithContext(ctx, out), nil
}

// openSource compiles a block's source node and applies the block's residual
// filters — pushed into the scan when the source is a single relation,
// wrapped as filter operators otherwise.
func (e *Engine) openSource(ctx context.Context, src plan.Node, blk *plan.Block) (*binding, schema.RowIterator, error) {
	if s, ok := src.(*plan.Scan); ok {
		return e.openPlanScan(ctx, s, blk) // folds the filters into the scan itself
	}
	filters := blk.FilterConds()
	switch x := src.(type) {
	case *plan.Values:
		b := &binding{}
		var it schema.RowIterator = schema.IterateRows(schema.Rows{{}}, 1)
		return b, filterWrap(it, b, filters), nil
	case *plan.Derived:
		rel, it, err := e.openBlock(ctx, x.Input)
		if err != nil {
			return nil, nil, err
		}
		b := bindingFromRelation(rel, x.Alias)
		return b, filterWrap(it, b, filters), nil
	case *plan.Join:
		b, it, err := e.openJoin(ctx, x)
		if err != nil {
			return nil, nil, err
		}
		return b, filterWrap(it, b, filters), nil
	default:
		// A nested operator chain without a Derived marker: compile it as
		// its own block and bind the output unqualified.
		rel, it, err := e.openBlock(ctx, src)
		if err != nil {
			return nil, nil, err
		}
		b := bindingFromRelation(rel, "")
		return b, filterWrap(it, b, filters), nil
	}
}

// filterWrap applies residual filter conditions as streaming operators.
func filterWrap(it schema.RowIterator, b *binding, conds []sqlparser.Expr) schema.RowIterator {
	for _, c := range conds {
		it = &filterIter{src: it, env: (&rowEnv{b: b}).reuse(), cond: c}
	}
	return it
}

// openPlanScan opens a single-relation scan with the node's pushed
// predicate, the block's residual filters, and a pruned column set — the
// node's own Columns when the optimizer set them, otherwise derived from
// what the block reads — pushed down into the source's scan. The returned
// binding reflects the projected layout.
func (e *Engine) openPlanScan(ctx context.Context, s *plan.Scan, blk *plan.Block) (*binding, schema.RowIterator, error) {
	rel, err := RelationSchema(e.src, s.Table)
	if err != nil {
		return nil, nil, err
	}
	qual := s.Table
	if s.Alias != "" {
		qual = s.Alias
	}
	full := bindingFromRelation(rel, qual)

	// The scan predicate (and any residual block filters — a single
	// relation is always in scope) runs inside the scan, against the
	// full-width row, before projection.
	filters := blk.FilterConds()
	conds := make([]sqlparser.Expr, 0, 1+len(filters))
	if s.Predicate != nil {
		conds = append(conds, s.Predicate)
	}
	conds = append(conds, filters...)

	b := full
	cols := e.scanColumns(s, blk, full)
	if cols != nil {
		b = bindingFromRelation(rel.Project(cols), qual)
	}

	// Vectorized path: when the source serves column batches and at least
	// one filter conjunct compiles to a kernel, run the filter columnar and
	// pivot only the survivors. Without kernels the row path is equivalent
	// (storage already prunes columns at the pivot), so don't bother.
	if cs, ok := e.src.(ColScanner); ok {
		if p, pok := compileVecScan(rel, qual, full, conds, cols); pok && len(p.kernels) > 0 {
			ci, err := cs.OpenColScan(ctx, s.Table, p.colScan(rel.Arity()))
			if err != nil {
				return nil, nil, err
			}
			return b, &vecScanIter{src: ci, ex: newVecExec(p)}, nil
		}
	}

	var sc schema.Scan
	if len(conds) > 0 {
		env := (&rowEnv{b: full}).reuse()
		cond := sqlparser.AndAll(conds)
		sc.Filter = func(r schema.Row) (bool, error) {
			env.row = r
			return truthy(env, cond)
		}
		// The structured restatement of the filter's kernelizable prefix
		// lets storage skip segments even on the row path.
		sc.Predicate = prunePreds(full, sqlparser.Conjuncts(cond))
	}
	sc.Columns = cols
	// Limit pushdown into the batch size: when nothing between the scan and
	// the limit can drop or reorder rows (no filter, no breaker, no
	// DISTINCT), the scan never needs to materialize more than N rows at
	// once, so a small LIMIT stops after one small pivot.
	if blk.Limit != nil && len(conds) == 0 &&
		blk.Agg == nil && blk.Win == nil && blk.Sort == nil && blk.Distinct == nil {
		if n := int(blk.Limit.N); n >= 0 && n < schema.DefaultBatchSize {
			sc.BatchSize = n + 1 // never 0: 0 means "default"
		}
	}
	it, err := OpenScan(ctx, e.src, s.Table, sc)
	if err != nil {
		return nil, nil, err
	}
	return b, it, nil
}

// scanColumns decides the projection pushed into a scan: the plan's pruned
// set when the optimizer recorded one, otherwise resolved from the block's
// own requirements. nil keeps the full width.
func (e *Engine) scanColumns(s *plan.Scan, blk *plan.Block, full *binding) []int {
	if s.Columns != nil {
		idxs := make([]int, 0, len(s.Columns))
		for _, name := range s.Columns {
			i, err := full.resolve(&sqlparser.ColumnRef{Name: name})
			if err != nil {
				return nil // stale pruning: fall back to the full width
			}
			idxs = append(idxs, i)
		}
		return idxs
	}
	return scanPushdown(blk, full)
}

// scanPushdown resolves the block's column requirements (plan.Block's single
// analysis) onto positions of its single-table source, so the scan projects
// early and unused columns never leave storage. It returns positions in
// select-list-first order (making the downstream projection an identity
// whenever possible); nil means no pushdown (star projection, unresolvable
// reference, or nothing to prune). The scan's filter runs before projection,
// so filter-only columns (Requirements.FilterCols) need not be kept.
func scanPushdown(blk *plan.Block, b *binding) []int {
	reqs := blk.Requirements()
	if !reqs.Prunable() {
		return nil
	}
	var idxs []int
	seen := make(map[int]bool)
	for _, c := range reqs.Cols {
		i, err := b.resolve(c)
		if err != nil {
			return nil // let the original resolution error surface downstream
		}
		if !seen[i] {
			seen[i] = true
			idxs = append(idxs, i)
		}
	}

	if len(idxs) >= len(b.cols) {
		// Full width: only worthwhile when it reorders into an identity
		// projection of plain column references (the classic SELECT y, x
		// case); otherwise the scan copy costs more than it saves.
		if !allPlainItems(blk) || identityOrder(idxs) {
			return nil
		}
	}
	if len(idxs) == 0 {
		// COUNT(*)-style blocks read no columns at all; ship empty rows.
		return []int{}
	}
	return idxs
}

func allPlainItems(blk *plan.Block) bool {
	if blk.Agg != nil || blk.Win != nil || blk.Sort != nil {
		return false
	}
	for _, it := range blk.Items() {
		if _, ok := it.Expr.(*sqlparser.ColumnRef); !ok {
			return false
		}
	}
	return true
}

func identityOrder(idxs []int) bool {
	for i, v := range idxs {
		if i != v {
			return false
		}
	}
	return true
}

// evalBroken is the pipeline-breaker path: grouping, window functions and
// ORDER BY need the whole input (ORDER BY + LIMIT sorts fully before
// truncating), so the upstream pipeline is drained here and the classic
// materialized operators run over it.
func (e *Engine) evalBroken(blk *plan.Block, b *binding, it schema.RowIterator) (*schema.Relation, schema.Rows, error) {
	rows, err := schema.DrainIterator(it)
	if err != nil {
		return nil, nil, err
	}

	var out *Result
	var orderRows schema.Rows // rows aligned with out.Rows for ORDER BY fallback
	if blk.Agg != nil {
		out, err = e.evalGrouped(blk, b, rows)
		if err != nil {
			return nil, nil, err
		}
	} else {
		out, orderRows, err = e.evalProjection(blk, b, rows)
		if err != nil {
			return nil, nil, err
		}
	}
	return e.finishBroken(blk, b, out, orderRows)
}

// finishBroken applies the post-materialization clauses of a breaker block
// — DISTINCT, ORDER BY, LIMIT — shared by the serial and parallel grouped
// paths.
func (e *Engine) finishBroken(blk *plan.Block, b *binding, out *Result, orderRows schema.Rows) (*schema.Relation, schema.Rows, error) {
	if blk.Distinct != nil {
		out.Rows = distinctRows(out.Rows)
		orderRows = nil
	}

	if blk.Sort != nil {
		// A LIMIT below the sort turns it into top-K selection: sortResult
		// only needs the first n rows of the full ordering.
		limit := -1
		if blk.Limit != nil {
			if limit = int(blk.Limit.N); limit < 0 {
				limit = 0
			}
		}
		if err := sortResult(out, orderRows, b, blk.Sort.By, limit); err != nil {
			return nil, nil, err
		}
	}

	if blk.Limit != nil {
		n := int(blk.Limit.N)
		if n < 0 {
			n = 0
		}
		if n < len(out.Rows) {
			out.Rows = out.Rows[:n]
		}
	}
	return out.Schema, out.Rows, nil
}

// openJoin builds a streaming join: the right (build) side is materialized,
// the left (probe) side streams batch-at-a-time. Pure equi-joins over a
// columnar probe scan run the vectorized probe (vecjoin.go); remaining
// equi-joins on plain column references use the row-at-a-time hash index;
// everything else falls back to nested loops.
func (e *Engine) openJoin(ctx context.Context, j *plan.Join) (*binding, schema.RowIterator, error) {
	if cb, it, ok, err := e.openVecJoin(ctx, j); ok || err != nil {
		return cb, it, err
	}
	lb, lit, err := e.openJoinSide(ctx, j.Left)
	if err != nil {
		return nil, nil, err
	}
	rb, rit, err := e.openJoinSide(ctx, j.Right)
	if err != nil {
		lit.Close()
		return nil, nil, err
	}
	rrows, err := schema.DrainIterator(rit)
	if err != nil {
		lit.Close()
		return nil, nil, err
	}
	cb, it := joinFromBuild(j, lb, lit, rb, rrows)
	return cb, it, nil
}

// joinFromBuild assembles the row-path probe over an already-drained build
// side, shared by openJoin and openVecJoin's late declines.
func joinFromBuild(j *plan.Join, lb *binding, lit schema.RowIterator, rb *binding, rrows schema.Rows) (*binding, schema.RowIterator) {
	cb := lb.concat(rb)

	if j.Type == sqlparser.JoinCross {
		return cb, &loopJoinIter{left: lit, rrows: rrows, cb: cb}
	}

	// Hash join fast path: ON is a conjunction containing at least one
	// left.col = right.col equality.
	eqL, eqR, rest := splitEquiJoin(j.On, lb, rb)
	if len(eqL) > 0 {
		index := make(map[string][]int, len(rrows))
		var kbuf []byte
		for ri, rr := range rrows {
			kbuf = rr.AppendGroupKey(kbuf[:0], eqR)
			index[string(kbuf)] = append(index[string(kbuf)], ri)
		}
		return cb, &hashJoinIter{
			left: lit, rrows: rrows, index: index,
			eqL: eqL, rest: rest, cb: cb,
			leftJoin: j.Type == sqlparser.JoinLeft,
			nullR:    nullRow(len(rb.cols)),
		}
	}

	return cb, &loopJoinIter{
		left: lit, rrows: rrows, on: j.On, cb: cb,
		leftJoin: j.Type == sqlparser.JoinLeft,
		nullR:    nullRow(len(rb.cols)),
	}
}

// openJoinSide compiles one side of a join: a scan, a derived block, a
// nested join, or any of those under side-pushed filters.
func (e *Engine) openJoinSide(ctx context.Context, n plan.Node) (*binding, schema.RowIterator, error) {
	switch x := n.(type) {
	case *plan.Scan:
		return e.openPlanScan(ctx, x, &plan.Block{})
	case *plan.Derived:
		rel, it, err := e.openBlock(ctx, x.Input)
		if err != nil {
			return nil, nil, err
		}
		return bindingFromRelation(rel, x.Alias), it, nil
	case *plan.Join:
		return e.openJoin(ctx, x)
	case *plan.Filter:
		b, it, err := e.openJoinSide(ctx, x.Input)
		if err != nil {
			return nil, nil, err
		}
		return b, &filterIter{src: it, env: (&rowEnv{b: b}).reuse(), cond: x.Cond}, nil
	default:
		rel, it, err := e.openBlock(ctx, n)
		if err != nil {
			return nil, nil, err
		}
		return bindingFromRelation(rel, ""), it, nil
	}
}

func joinRow(l, r schema.Row) schema.Row {
	out := make(schema.Row, 0, len(l)+len(r))
	out = append(out, l...)
	out = append(out, r...)
	return out
}

func nullRow(n int) schema.Row {
	out := make(schema.Row, n)
	for i := range out {
		out[i] = schema.Null()
	}
	return out
}

// splitEquiJoin extracts left.col = right.col equalities from the ON
// condition. It returns aligned index slices into the left and right
// bindings plus the residual conjuncts.
func splitEquiJoin(on sqlparser.Expr, lb, rb *binding) (eqL, eqR []int, rest []sqlparser.Expr) {
	for _, c := range sqlparser.Conjuncts(on) {
		be, ok := c.(*sqlparser.BinaryExpr)
		if !ok || be.Op != sqlparser.OpEq {
			rest = append(rest, c)
			continue
		}
		lc, lok := be.L.(*sqlparser.ColumnRef)
		rc, rok := be.R.(*sqlparser.ColumnRef)
		if !lok || !rok {
			rest = append(rest, c)
			continue
		}
		li, lerr := lb.resolve(lc)
		ri, rerr := rb.resolve(rc)
		if lerr == nil && rerr == nil {
			eqL = append(eqL, li)
			eqR = append(eqR, ri)
			continue
		}
		// Try swapped sides.
		li, lerr = lb.resolve(rc)
		ri, rerr = rb.resolve(lc)
		if lerr == nil && rerr == nil {
			eqL = append(eqL, li)
			eqR = append(eqR, ri)
			continue
		}
		rest = append(rest, c)
	}
	return eqL, eqR, rest
}

func residualOK(env *rowEnv, row schema.Row, rest []sqlparser.Expr) (bool, error) {
	env.row = row
	for _, c := range rest {
		ok, err := truthy(env, c)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// outCol is one output column of a projection: either an expression to
// evaluate or a direct star expansion of an input position.
type outCol struct {
	expr    sqlparser.Expr
	name    string
	typ     schema.Type
	sens    bool
	starIdx int // >=0 when the column is a direct star expansion
}

// projector is the compiled select list of a non-grouped block: output
// columns, output schema, and whether the projection is the identity.
type projector struct {
	cols     []outCol
	rel      *schema.Relation
	identity bool
}

// buildProjector expands stars and precomputes the output schema once, so
// per-batch projection only evaluates expressions.
func buildProjector(items []sqlparser.SelectItem, b *binding) (*projector, error) {
	var cols []outCol
	for i, it := range items {
		if st, ok := it.Expr.(*sqlparser.Star); ok {
			idxs, err := b.starIndexes(st)
			if err != nil {
				return nil, err
			}
			for _, idx := range idxs {
				c := b.cols[idx]
				cols = append(cols, outCol{name: c.name, typ: c.typ, sens: c.sens, starIdx: idx})
			}
			continue
		}
		name := it.Alias
		if name == "" {
			name = outputName(it.Expr, i)
		}
		// A plain column reference is a direct index copy: resolve it once
		// here instead of re-resolving per row (on failure, keep the
		// expression so the original runtime error surfaces).
		if c, ok := it.Expr.(*sqlparser.ColumnRef); ok {
			if idx, err := b.resolve(c); err == nil {
				bc := b.cols[idx]
				cols = append(cols, outCol{name: name, typ: bc.typ, sens: bc.sens, starIdx: idx})
				continue
			}
		}
		cols = append(cols, outCol{
			expr:    it.Expr,
			name:    name,
			typ:     b.staticType(it.Expr),
			sens:    b.sensitiveExpr(it.Expr),
			starIdx: -1,
		})
	}

	rel := &schema.Relation{Columns: make([]schema.Column, len(cols))}
	identity := len(cols) == len(b.cols)
	for i, c := range cols {
		rel.Columns[i] = schema.Column{Name: c.name, Type: c.typ, Sensitive: c.sens}
		if c.starIdx != i {
			identity = false
		}
	}
	return &projector{cols: cols, rel: rel, identity: identity}, nil
}

// projectInto evaluates one output row into a caller-provided destination,
// so batch loops can back many rows with one allocation.
func (p *projector) projectInto(env *rowEnv, dst schema.Row) error {
	for ci, c := range p.cols {
		if c.starIdx >= 0 {
			dst[ci] = env.row[c.starIdx]
			continue
		}
		v, err := evalExpr(env, c.expr)
		if err != nil {
			return err
		}
		dst[ci] = v
	}
	return nil
}

// evalProjection handles the materialized non-grouped case, including window
// functions. It returns the result plus the input rows aligned 1:1 with
// output rows so ORDER BY can fall back to input columns.
func (e *Engine) evalProjection(blk *plan.Block, b *binding, rows schema.Rows) (*Result, schema.Rows, error) {
	items := blk.Items()
	p, err := buildProjector(items, b)
	if err != nil {
		return nil, nil, err
	}

	// Precompute window values per row.
	winVals, err := e.evalWindows(items, b, rows)
	if err != nil {
		return nil, nil, err
	}

	out := make(schema.Rows, len(rows))
	env := (&rowEnv{b: b}).reuse()
	nc := len(p.cols)
	var vals []schema.Value
	if !p.identity {
		// One backing array for the whole materialized projection.
		vals = make([]schema.Value, len(rows)*nc)
	}
	env.win = winVals
	for ri, row := range rows {
		env.row = row
		env.winRow = ri
		if p.identity {
			out[ri] = row
			continue
		}
		orow := vals[ri*nc : (ri+1)*nc : (ri+1)*nc]
		if err := p.projectInto(env, orow); err != nil {
			return nil, nil, err
		}
		out[ri] = orow
	}
	return &Result{Schema: p.rel, Rows: out}, rows, nil
}

func distinctRows(rows schema.Rows) schema.Rows {
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	var idx []int
	var kbuf []byte
	for _, r := range rows {
		if idx == nil {
			idx = allIndexes(len(r))
		}
		kbuf = r.AppendGroupKey(kbuf[:0], idx)
		if !seen[string(kbuf)] {
			seen[string(kbuf)] = true
			out = append(out, r)
		}
	}
	return out
}

func allIndexes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
