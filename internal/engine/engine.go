// Package engine executes the SQL subset produced by sqlparser over
// in-memory relations. It is the query processor that runs — identically —
// on every node of the vertical architecture, from the cloud server down to
// an appliance; only the *fragment* of the query a node receives differs
// (capability enforcement happens in the fragment package, not here).
package engine

import (
	"errors"
	"fmt"

	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// ErrQuery wraps all semantic evaluation errors.
var ErrQuery = errors.New("engine: query error")

// Source supplies base relations by name. storage.Store implements it;
// the network simulator implements it per node.
type Source interface {
	Relation(name string) (*schema.Relation, schema.Rows, error)
}

// Result is an evaluated relation: output schema plus rows.
type Result struct {
	Schema *schema.Relation
	Rows   schema.Rows
}

// WireSize is the simulated serialized size of the result in bytes.
func (r *Result) WireSize() int { return r.Rows.WireSize() }

// Engine evaluates SELECT statements against a Source.
type Engine struct {
	src Source
}

// New creates an engine over the given source.
func New(src Source) *Engine { return &Engine{src: src} }

// Query parses and executes a SQL string.
func (e *Engine) Query(sql string) (*Result, error) {
	sel, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.Select(sel)
}

// Select executes a parsed statement.
func (e *Engine) Select(sel *sqlparser.Select) (*Result, error) {
	b, rows, err := e.evalFrom(sel.From)
	if err != nil {
		return nil, err
	}

	if sel.Where != nil {
		if sqlparser.ContainsAggregate(sel.Where) {
			return nil, fmt.Errorf("%w: aggregate in WHERE clause", ErrQuery)
		}
		rows, err = filterRows(b, rows, sel.Where)
		if err != nil {
			return nil, err
		}
	}

	grouped := len(sel.GroupBy) > 0 || sel.Having != nil || itemsContainAggregate(sel)
	var out *Result
	var orderRows schema.Rows // rows aligned with out.Rows for ORDER BY fallback
	if grouped {
		out, err = e.evalGrouped(sel, b, rows)
		if err != nil {
			return nil, err
		}
		orderRows = nil
	} else {
		out, orderRows, err = e.evalProjection(sel, b, rows)
		if err != nil {
			return nil, err
		}
	}

	if sel.Distinct {
		out.Rows = distinctRows(out.Rows)
		orderRows = nil
	}

	if len(sel.OrderBy) > 0 {
		if err := sortResult(out, orderRows, b, sel.OrderBy); err != nil {
			return nil, err
		}
	}

	if sel.Limit != nil {
		n := int(*sel.Limit)
		if n < 0 {
			n = 0
		}
		if n < len(out.Rows) {
			out.Rows = out.Rows[:n]
		}
	}
	return out, nil
}

func itemsContainAggregate(sel *sqlparser.Select) bool {
	for _, it := range sel.Items {
		if sqlparser.ContainsAggregate(it.Expr) {
			return true
		}
	}
	return false
}

// evalFrom evaluates a FROM clause into a binding and its rows.
func (e *Engine) evalFrom(t sqlparser.TableRef) (*binding, schema.Rows, error) {
	switch x := t.(type) {
	case nil:
		// SELECT without FROM: one empty row.
		return &binding{}, schema.Rows{{}}, nil
	case *sqlparser.TableName:
		rel, rows, err := e.src.Relation(x.Name)
		if err != nil {
			return nil, nil, err
		}
		qual := x.Name
		if x.Alias != "" {
			qual = x.Alias
		}
		return bindingFromRelation(rel, qual), rows, nil
	case *sqlparser.Subquery:
		res, err := e.Select(x.Select)
		if err != nil {
			return nil, nil, err
		}
		return bindingFromRelation(res.Schema, x.Alias), res.Rows, nil
	case *sqlparser.Join:
		return e.evalJoin(x)
	default:
		return nil, nil, fmt.Errorf("%w: unsupported FROM item %T", ErrQuery, t)
	}
}

// evalJoin evaluates inner, left and cross joins. Equi-joins on plain column
// references use a hash join; everything else falls back to nested loops.
func (e *Engine) evalJoin(j *sqlparser.Join) (*binding, schema.Rows, error) {
	lb, lrows, err := e.evalFrom(j.Left)
	if err != nil {
		return nil, nil, err
	}
	rb, rrows, err := e.evalFrom(j.Right)
	if err != nil {
		return nil, nil, err
	}
	cb := lb.concat(rb)

	if j.Type == sqlparser.JoinCross {
		var out schema.Rows
		for _, lr := range lrows {
			for _, rr := range rrows {
				out = append(out, joinRow(lr, rr))
			}
		}
		return cb, out, nil
	}

	// Hash join fast path: ON is a conjunction containing at least one
	// left.col = right.col equality.
	eqL, eqR, rest := splitEquiJoin(j.On, lb, rb)
	var out schema.Rows
	if len(eqL) > 0 {
		index := make(map[string][]int)
		for ri, rr := range rrows {
			index[rowKey(rr, eqR)] = append(index[rowKey(rr, eqR)], ri)
		}
		for _, lr := range lrows {
			matched := false
			for _, ri := range index[rowKey(lr, eqL)] {
				combined := joinRow(lr, rrows[ri])
				ok, err := residualOK(cb, combined, rest)
				if err != nil {
					return nil, nil, err
				}
				if ok {
					out = append(out, combined)
					matched = true
				}
			}
			if !matched && j.Type == sqlparser.JoinLeft {
				out = append(out, joinRow(lr, nullRow(len(rb.cols))))
			}
		}
		return cb, out, nil
	}

	// Nested loop.
	for _, lr := range lrows {
		matched := false
		for _, rr := range rrows {
			combined := joinRow(lr, rr)
			ok := true
			if j.On != nil {
				ok, err = truthy(&rowEnv{b: cb, row: combined}, j.On)
				if err != nil {
					return nil, nil, err
				}
			}
			if ok {
				out = append(out, combined)
				matched = true
			}
		}
		if !matched && j.Type == sqlparser.JoinLeft {
			out = append(out, joinRow(lr, nullRow(len(rb.cols))))
		}
	}
	return cb, out, nil
}

func joinRow(l, r schema.Row) schema.Row {
	out := make(schema.Row, 0, len(l)+len(r))
	out = append(out, l...)
	out = append(out, r...)
	return out
}

func nullRow(n int) schema.Row {
	out := make(schema.Row, n)
	for i := range out {
		out[i] = schema.Null()
	}
	return out
}

func rowKey(r schema.Row, idx []int) string { return r.GroupKey(idx) }

// splitEquiJoin extracts left.col = right.col equalities from the ON
// condition. It returns aligned index slices into the left and right
// bindings plus the residual conjuncts.
func splitEquiJoin(on sqlparser.Expr, lb, rb *binding) (eqL, eqR []int, rest []sqlparser.Expr) {
	for _, c := range sqlparser.Conjuncts(on) {
		be, ok := c.(*sqlparser.BinaryExpr)
		if !ok || be.Op != sqlparser.OpEq {
			rest = append(rest, c)
			continue
		}
		lc, lok := be.L.(*sqlparser.ColumnRef)
		rc, rok := be.R.(*sqlparser.ColumnRef)
		if !lok || !rok {
			rest = append(rest, c)
			continue
		}
		li, lerr := lb.resolve(lc)
		ri, rerr := rb.resolve(rc)
		if lerr == nil && rerr == nil {
			eqL = append(eqL, li)
			eqR = append(eqR, ri)
			continue
		}
		// Try swapped sides.
		li, lerr = lb.resolve(rc)
		ri, rerr = rb.resolve(lc)
		if lerr == nil && rerr == nil {
			eqL = append(eqL, li)
			eqR = append(eqR, ri)
			continue
		}
		rest = append(rest, c)
	}
	return eqL, eqR, rest
}

func residualOK(b *binding, row schema.Row, rest []sqlparser.Expr) (bool, error) {
	for _, c := range rest {
		ok, err := truthy(&rowEnv{b: b, row: row}, c)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

func filterRows(b *binding, rows schema.Rows, cond sqlparser.Expr) (schema.Rows, error) {
	out := rows[:0:0]
	for _, r := range rows {
		ok, err := truthy(&rowEnv{b: b, row: r}, cond)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

// evalProjection handles the non-grouped case, including window functions.
// It returns the result plus the input rows aligned 1:1 with output rows so
// ORDER BY can fall back to input columns.
func (e *Engine) evalProjection(sel *sqlparser.Select, b *binding, rows schema.Rows) (*Result, schema.Rows, error) {
	// Expand stars into concrete output columns.
	type outCol struct {
		expr    sqlparser.Expr
		name    string
		typ     schema.Type
		sens    bool
		starIdx int // >=0 when the column is a direct star expansion
	}
	var cols []outCol
	for i, it := range sel.Items {
		if st, ok := it.Expr.(*sqlparser.Star); ok {
			idxs, err := b.starIndexes(st)
			if err != nil {
				return nil, nil, err
			}
			for _, idx := range idxs {
				c := b.cols[idx]
				cols = append(cols, outCol{name: c.name, typ: c.typ, sens: c.sens, starIdx: idx})
			}
			continue
		}
		name := it.Alias
		if name == "" {
			name = outputName(it.Expr, i)
		}
		cols = append(cols, outCol{
			expr:    it.Expr,
			name:    name,
			typ:     b.staticType(it.Expr),
			sens:    b.sensitiveExpr(it.Expr),
			starIdx: -1,
		})
	}

	// Precompute window values per row.
	winVals, err := e.evalWindows(sel, b, rows)
	if err != nil {
		return nil, nil, err
	}

	rel := &schema.Relation{Columns: make([]schema.Column, len(cols))}
	for i, c := range cols {
		rel.Columns[i] = schema.Column{Name: c.name, Type: c.typ, Sensitive: c.sens}
	}

	out := make(schema.Rows, len(rows))
	for ri, row := range rows {
		env := &rowEnv{b: b, row: row}
		if winVals != nil {
			env.win = winVals[ri]
		}
		orow := make(schema.Row, len(cols))
		for ci, c := range cols {
			if c.starIdx >= 0 {
				orow[ci] = row[c.starIdx]
				continue
			}
			v, err := evalExpr(env, c.expr)
			if err != nil {
				return nil, nil, err
			}
			orow[ci] = v
		}
		out[ri] = orow
	}
	return &Result{Schema: rel, Rows: out}, rows, nil
}

func distinctRows(rows schema.Rows) schema.Rows {
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	for _, r := range rows {
		key := r.GroupKey(allIndexes(len(r)))
		if !seen[key] {
			seen[key] = true
			out = append(out, r)
		}
	}
	return out
}

func allIndexes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
