package engine

import (
	"context"

	"paradise/internal/plan"
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// Vectorized grouped aggregation: GROUP BY keys are built straight from the
// column vectors and accumulators are fed streaming, batch by batch, so the
// input is never materialized as rows. The row path (group.go) materializes
// every group's rows and re-walks them once per aggregate call; here each
// input value is touched exactly once, and only group representatives are
// ever pivoted to row form.
//
// The path declines (ok=false) whenever faithfulness would need per-row
// expression evaluation: GROUP BY expressions or aggregate arguments that
// are not plain column references fall back to the row path, which remains
// the semantic reference. HAVING and the select list run per *group* and may
// be arbitrary expressions — group counts are small, so those stay on the
// shared row-at-a-time evaluator (evalExpr over the group representative).

// vecAgg is one compiled aggregate call: the accumulator factory input plus
// the load-layout positions of its (plain column) arguments.
type vecAgg struct {
	call *sqlparser.FuncCall
	args []int // nil for COUNT(*)
}

// vecGroupPlan is a compiled vectorized grouped block.
type vecGroupPlan struct {
	scan  *vecScanPlan
	gcols []int // GROUP BY positions in the load layout
	aggs  []vecAgg
	calls []*sqlparser.FuncCall
	orel  *schema.Relation
}

// vecGroup is one group under construction: its representative row (pivoted
// once, on first sight) and one accumulator per aggregate call.
type vecGroup struct {
	rep  schema.Row
	accs []accumulator
}

// compileVecGrouped validates the block shape on top of an already compiled
// scan. It reuses groupSpecCompile — the single owner of grouped-block
// validation and output-schema construction — against the load-layout
// binding, which covers every column the block reads.
func compileVecGrouped(p *vecScanPlan, blk *plan.Block) (*vecGroupPlan, bool) {
	calls, orel, err := groupSpecCompile(blk, p.lb)
	if err != nil {
		return nil, false // row path reports the validation error
	}
	g := &vecGroupPlan{scan: p, calls: calls, orel: orel}

	colAt := func(ex sqlparser.Expr) (int, bool) {
		c, ok := ex.(*sqlparser.ColumnRef)
		if !ok {
			return -1, false
		}
		i, err := p.lb.resolve(c)
		if err != nil {
			return -1, false
		}
		return i, true
	}
	for _, ex := range blk.GroupBy() {
		i, ok := colAt(ex)
		if !ok {
			return nil, false
		}
		g.gcols = append(g.gcols, i)
	}
	for _, f := range calls {
		if _, err := newAccumulator(f); err != nil {
			return nil, false
		}
		va := vecAgg{call: f}
		if !f.Star {
			for _, a := range f.Args {
				i, ok := colAt(a)
				if !ok {
					return nil, false
				}
				va.args = append(va.args, i)
			}
		}
		g.aggs = append(g.aggs, va)
	}
	return g, true
}

// openVecGrouped runs a grouped single-table block on the columnar scan.
func (e *Engine) openVecGrouped(ctx context.Context, cs ColScanner, s *plan.Scan, blk *plan.Block) (*schema.Relation, schema.RowIterator, bool, error) {
	if blk.Win != nil {
		return nil, nil, false, nil
	}
	p, rel, ok := e.vecBlockScan(s, blk)
	if !ok {
		return nil, nil, false, nil
	}
	gp, ok := compileVecGrouped(p, blk)
	if !ok {
		return nil, nil, false, nil
	}

	ci, err := cs.OpenColScan(ctx, s.Table, p.colScan(rel.Arity()))
	if err != nil {
		return nil, nil, false, err
	}
	defer ci.Close()
	groups, err := gp.drain(ci, newVecExec(p))
	if err != nil {
		return nil, nil, false, err
	}

	out, err := gp.finish(blk, groups)
	if err != nil {
		return nil, nil, false, err
	}
	orel, rows, err := e.finishBroken(blk, p.lb, out, nil)
	if err != nil {
		return nil, nil, false, err
	}
	return orel, schema.WithContext(ctx, schema.IterateRows(rows, schema.DefaultBatchSize)), true, nil
}

// drain consumes the columnar scan, building groups in first-seen order and
// feeding every accumulator exactly once per surviving row.
func (gp *vecGroupPlan) drain(ci schema.ColIterator, ex *vecExec) ([]*vecGroup, error) {
	index := make(map[string]*vecGroup)
	var order []*vecGroup
	if len(gp.gcols) == 0 {
		// No GROUP BY: the whole input is one group even when empty, so
		// COUNT(*) over an empty relation yields 0.
		g := gp.newGroup()
		order = append(order, g)
	}
	var kbuf []byte
	args := make([]schema.Value, 4)
	for {
		cb, err := ci.NextBatch()
		if err != nil {
			return nil, err
		}
		if cb == nil {
			return order, nil
		}
		sel, err := ex.filterSel(cb)
		if err != nil {
			return nil, err
		}
		feed := func(i int) {
			var g *vecGroup
			if len(gp.gcols) == 0 {
				g = order[0]
			} else {
				kbuf = kbuf[:0]
				for _, c := range gp.gcols {
					kbuf = cb.Vecs[c].AppendGroupKey(kbuf, i)
				}
				var ok bool
				if g, ok = index[string(kbuf)]; !ok {
					g = gp.newGroup()
					index[string(kbuf)] = g
					order = append(order, g)
				}
			}
			if g.rep == nil {
				g.rep = cb.RowAt(i)
			}
			for ai, va := range gp.aggs {
				if va.args == nil {
					g.accs[ai].add(nil)
					continue
				}
				if cap(args) < len(va.args) {
					args = make([]schema.Value, len(va.args))
				}
				a := args[:len(va.args)]
				for j, c := range va.args {
					a[j] = cb.Vecs[c].Value(i)
				}
				g.accs[ai].add(a)
			}
		}
		if sel == nil {
			for i := 0; i < cb.N; i++ {
				feed(i)
			}
		} else {
			for _, i := range sel {
				feed(i)
			}
		}
	}
}

func (gp *vecGroupPlan) newGroup() *vecGroup {
	g := &vecGroup{accs: make([]accumulator, len(gp.aggs))}
	for i, va := range gp.aggs {
		g.accs[i], _ = newAccumulator(va.call) // validated at compile time
	}
	return g
}

// finish evaluates HAVING and the select list per group, exactly like the
// row path's evalOneGroup: the group representative backs non-aggregate
// expressions and the accumulator results back the aggregate calls.
func (gp *vecGroupPlan) finish(blk *plan.Block, groups []*vecGroup) (*Result, error) {
	items := blk.Items()
	having := blk.Having()
	env := (&rowEnv{b: gp.scan.lb}).reuse()
	var out schema.Rows
	for _, g := range groups {
		aggVals := make(map[string]schema.Value, len(gp.aggs))
		for i, f := range gp.calls {
			aggVals[f.SQL()] = g.accs[i].result()
		}
		env.row, env.agg = g.rep, aggVals
		if having != nil {
			ok, err := truthy(env, having)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		orow := make(schema.Row, len(items))
		for i, it := range items {
			v, err := evalExpr(env, it.Expr)
			if err != nil {
				return nil, err
			}
			orow[i] = v
		}
		out = append(out, orow)
	}
	return &Result{Schema: gp.orel, Rows: out}, nil
}
