package engine

import (
	"sort"

	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// keySrc is the statically-planned source of one ORDER BY key: a direct
// output-row column, a direct input-row column, or per-row expression
// evaluation. The per-row decision chain in orderKey is row-independent for
// plain column references, so it is hoisted out of the row loop here — the
// hot path then extracts keys by plain slice indexing instead of resolving
// (and, for projected-away columns, failing to resolve) per row.
type keySrc struct {
	kind int // srcOut | srcIn | srcEval
	idx  int
}

const (
	srcOut = iota
	srcIn
	srcEval
)

// sortResult orders the result rows by the ORDER BY items. Each item may
// reference an output column (alias or projected name) or — when inputRows
// is non-nil and aligned 1:1 with the output — any expression over the input
// binding (SQL allows ordering by columns that were projected away).
//
// Keys are extracted once into typed key columns (schema.KeyCol) and
// compared unboxed; the comparator is pairwise-identical to the boxed
// lessKeys/compareForSort path, so the stable sort's output is unchanged.
// A non-negative limit additionally enables top-K selection — returning
// only the first limit rows of the full sort — when no key contains NaN
// (with NaN the comparison is not a strict weak order and only the full
// stable sort is deterministic).
func sortResult(res *Result, inputRows schema.Rows, b *binding, items []sqlparser.OrderItem, limit int) error {
	n := len(res.Rows)
	ks := newSortKeys(items)

	srcs := make([]keySrc, len(items))
	outB := bindingFromRelation(res.Schema, "")
	needEval := false
	for i, it := range items {
		srcs[i] = keySrc{kind: srcEval}
		c, ok := it.Expr.(*sqlparser.ColumnRef)
		if !ok {
			needEval = true
			continue
		}
		// Mirror orderKey's chain: unqualified output name, then output
		// binding resolution, then the aligned input row.
		if c.Table == "" {
			if j, err := res.Schema.Index(c.Name); err == nil {
				srcs[i] = keySrc{kind: srcOut, idx: j}
				continue
			}
		}
		if j, err := outB.resolve(c); err == nil {
			srcs[i] = keySrc{kind: srcOut, idx: j}
			continue
		}
		if inputRows != nil && b != nil {
			if j, err := b.resolve(c); err == nil {
				srcs[i] = keySrc{kind: srcIn, idx: j}
				continue
			}
		}
		needEval = true
	}

	// Expression keys first, row-major, so an evaluation error surfaces for
	// the same (row, item) as the row-at-a-time path would report.
	if needEval {
		outEnv := (&rowEnv{b: outB}).reuse()
		var inEnv *rowEnv
		if b != nil {
			inEnv = (&rowEnv{b: b}).reuse()
		}
		for ri := 0; ri < n; ri++ {
			for i := range items {
				if srcs[i].kind != srcEval {
					continue
				}
				v, err := orderKey(res, outEnv, inputRows, inEnv, ri, items[i].Expr)
				if err != nil {
					return err
				}
				ks.cols[i].Append(v)
			}
		}
	}
	// Column keys column-major: no resolution, no errors, cache-friendly.
	for i := range items {
		switch srcs[i].kind {
		case srcOut:
			for ri := 0; ri < n; ri++ {
				ks.cols[i].Append(res.Rows[ri][srcs[i].idx])
			}
		case srcIn:
			for ri := 0; ri < n; ri++ {
				ks.cols[i].Append(inputRows[ri][srcs[i].idx])
			}
		}
	}

	if limit >= 0 && limit < n && !ks.hasNaN() {
		perm := ks.topK(n, limit)
		sorted := make(schema.Rows, len(perm))
		for i, p := range perm {
			sorted[i] = res.Rows[p]
		}
		res.Rows = sorted
		return nil
	}

	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, c int) bool {
		return ks.less(perm[a], perm[c])
	})

	sorted := make(schema.Rows, n)
	for i, p := range perm {
		sorted[i] = res.Rows[p]
	}
	res.Rows = sorted
	return nil
}

// orderKey computes one ORDER BY key for one row, preferring output columns
// and falling back to the input row. The environments are reused across
// rows (resolution is memoized per expression node). sortResult pre-plans
// the column-reference cases; this remains the per-row path for expression
// keys, and the definition the static plan must mirror.
func orderKey(res *Result, outEnv *rowEnv, inputRows schema.Rows, inEnv *rowEnv, ri int, ex sqlparser.Expr) (schema.Value, error) {
	// A plain column reference that names an output column orders by it.
	if c, ok := ex.(*sqlparser.ColumnRef); ok && c.Table == "" {
		if i, err := res.Schema.Index(c.Name); err == nil {
			return res.Rows[ri][i], nil
		}
	}
	// Try the full expression against the output schema (covers ORDER BY on
	// computed aliases spelled out again).
	outEnv.row = res.Rows[ri]
	if v, err := evalExpr(outEnv, ex); err == nil {
		return v, nil
	}
	// Fall back to the aligned input row when available.
	if inputRows != nil && inEnv != nil {
		inEnv.row = inputRows[ri]
		return evalExpr(inEnv, ex)
	}
	// Surface the output-schema error.
	return evalExpr(outEnv, ex)
}
