package engine

import (
	"sort"

	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// sortResult orders the result rows by the ORDER BY items. Each item may
// reference an output column (alias or projected name) or — when inputRows
// is non-nil and aligned 1:1 with the output — any expression over the input
// binding (SQL allows ordering by columns that were projected away).
func sortResult(res *Result, inputRows schema.Rows, b *binding, items []sqlparser.OrderItem) error {
	n := len(res.Rows)
	keys := make([][]schema.Value, n)
	outB := bindingFromRelation(res.Schema, "")
	outEnv := (&rowEnv{b: outB}).reuse()
	var inEnv *rowEnv
	if b != nil {
		inEnv = (&rowEnv{b: b}).reuse()
	}

	kvals := make([]schema.Value, n*len(items))
	for ri := 0; ri < n; ri++ {
		ks := kvals[ri*len(items) : (ri+1)*len(items) : (ri+1)*len(items)]
		for i, it := range items {
			v, err := orderKey(res, outEnv, inputRows, inEnv, ri, it.Expr)
			if err != nil {
				return err
			}
			ks[i] = v
		}
		keys[ri] = ks
	}

	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, c int) bool {
		return lessKeys(keys[perm[a]], keys[perm[c]], items)
	})

	sorted := make(schema.Rows, n)
	for i, p := range perm {
		sorted[i] = res.Rows[p]
	}
	res.Rows = sorted
	return nil
}

// orderKey computes one ORDER BY key for one row, preferring output columns
// and falling back to the input row. The environments are reused across
// rows (resolution is memoized per expression node).
func orderKey(res *Result, outEnv *rowEnv, inputRows schema.Rows, inEnv *rowEnv, ri int, ex sqlparser.Expr) (schema.Value, error) {
	// A plain column reference that names an output column orders by it.
	if c, ok := ex.(*sqlparser.ColumnRef); ok && c.Table == "" {
		if i, err := res.Schema.Index(c.Name); err == nil {
			return res.Rows[ri][i], nil
		}
	}
	// Try the full expression against the output schema (covers ORDER BY on
	// computed aliases spelled out again).
	outEnv.row = res.Rows[ri]
	if v, err := evalExpr(outEnv, ex); err == nil {
		return v, nil
	}
	// Fall back to the aligned input row when available.
	if inputRows != nil && inEnv != nil {
		inEnv.row = inputRows[ri]
		return evalExpr(inEnv, ex)
	}
	// Surface the output-schema error.
	return evalExpr(outEnv, ex)
}
