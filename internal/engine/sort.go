package engine

import (
	"sort"

	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// sortResult orders the result rows by the ORDER BY items. Each item may
// reference an output column (alias or projected name) or — when inputRows
// is non-nil and aligned 1:1 with the output — any expression over the input
// binding (SQL allows ordering by columns that were projected away).
func sortResult(res *Result, inputRows schema.Rows, b *binding, items []sqlparser.OrderItem) error {
	n := len(res.Rows)
	keys := make([][]schema.Value, n)
	outB := bindingFromRelation(res.Schema, "")

	for ri := 0; ri < n; ri++ {
		ks := make([]schema.Value, len(items))
		for i, it := range items {
			v, err := orderKey(res, outB, inputRows, b, ri, it.Expr)
			if err != nil {
				return err
			}
			ks[i] = v
		}
		keys[ri] = ks
	}

	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, c int) bool {
		return lessKeys(keys[perm[a]], keys[perm[c]], items)
	})

	sorted := make(schema.Rows, n)
	for i, p := range perm {
		sorted[i] = res.Rows[p]
	}
	res.Rows = sorted
	return nil
}

// orderKey computes one ORDER BY key for one row, preferring output columns
// and falling back to the input row.
func orderKey(res *Result, outB *binding, inputRows schema.Rows, b *binding, ri int, ex sqlparser.Expr) (schema.Value, error) {
	// A plain column reference that names an output column orders by it.
	if c, ok := ex.(*sqlparser.ColumnRef); ok && c.Table == "" {
		if i, err := res.Schema.Index(c.Name); err == nil {
			return res.Rows[ri][i], nil
		}
	}
	// Try the full expression against the output schema (covers ORDER BY on
	// computed aliases spelled out again).
	if v, err := evalExpr(&rowEnv{b: outB, row: res.Rows[ri]}, ex); err == nil {
		return v, nil
	}
	// Fall back to the aligned input row when available.
	if inputRows != nil && b != nil {
		return evalExpr(&rowEnv{b: b, row: inputRows[ri]}, ex)
	}
	// Surface the output-schema error.
	return evalExpr(&rowEnv{b: outB, row: res.Rows[ri]}, ex)
}
