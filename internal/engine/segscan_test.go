package engine

import (
	"context"
	"testing"

	"paradise/internal/schema"
	"paradise/internal/storage"
)

// segStore is benchStore's segmented twin: the same deterministic corpus
// in a store that seals every segRows rows (t ascends with the row index,
// so segments carry disjoint t zone maps).
func segStore(t testing.TB, n, segRows int, noPrune bool) *storage.Store {
	t.Helper()
	st, err := storage.NewStoreWith(storage.Config{SegmentRows: segRows, DisablePruning: noPrune})
	if err != nil {
		t.Fatal(err)
	}
	d, err := st.CreateTable(schema.NewRelation("d",
		schema.Col("x", schema.TypeFloat),
		schema.Col("y", schema.TypeFloat),
		schema.Col("z", schema.TypeFloat),
		schema.Col("t", schema.TypeInt),
		schema.Col("cell", schema.TypeInt),
	))
	if err != nil {
		t.Fatal(err)
	}
	rows := make(schema.Rows, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, schema.Row{
			schema.Float(float64(i % 8)),
			schema.Float(float64(i % 6)),
			schema.Float(0.5 + float64(i%30)/10),
			schema.Int(int64(i)),
			schema.Int(int64(i % 64)),
		})
	}
	if err := d.Append(rows...); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestLimitStopsOpeningSegments extends the LIMIT early-termination
// property below the batch level: a satisfied limit must stop *opening*
// segments, not merely stop pulling rows — the opened counter stays O(1)
// while the table holds dozens of sealed segments.
func TestLimitStopsOpeningSegments(t *testing.T) {
	st := segStore(t, 10_000, 128, false) // 78 sealed segments + tail
	res, err := New(st).Query(context.Background(), "SELECT x, y FROM d LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("want 10 rows, got %d", len(res.Rows))
	}
	stats := st.StorageStats()
	if stats.Segments < 70 {
		t.Fatalf("store not segmented as expected: %d sealed segments", stats.Segments)
	}
	if stats.SegmentsOpened > 2 {
		t.Fatalf("LIMIT 10 opened %d segments, want <= 2 (of %d)", stats.SegmentsOpened, stats.Segments)
	}
}

// TestPruningSkipsSegmentsUnderSQL drives zone-map pruning end-to-end
// through SQL: a selective t-range predicate over the time-ordered corpus
// must skip (not open) every segment outside the range, and the result
// must equal the unpruned answer.
func TestPruningSkipsSegmentsUnderSQL(t *testing.T) {
	st := segStore(t, 10_000, 128, false)
	res, err := New(st).Query(context.Background(), "SELECT t FROM d WHERE t >= 9000 AND t < 9500")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 500 {
		t.Fatalf("want 500 rows, got %d", len(res.Rows))
	}
	for i, r := range res.Rows {
		if v := r[0].AsInt(); v != int64(9000+i) {
			t.Fatalf("row %d: t=%d, want %d", i, v, 9000+i)
		}
	}
	stats := st.StorageStats()
	if stats.SegmentsSkipped < 60 {
		t.Fatalf("selective range skipped only %d of %d segments", stats.SegmentsSkipped, stats.Segments)
	}
	if stats.SegmentsOpened > 8 {
		t.Fatalf("selective range opened %d segments", stats.SegmentsOpened)
	}

	// Same query with pruning disabled: identical rows.
	unpruned := segStore(t, 10_000, 128, true)
	res2, err := New(unpruned).Query(context.Background(), "SELECT t FROM d WHERE t >= 9000 AND t < 9500")
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != len(res.Rows) {
		t.Fatalf("pruning changed the row count: %d vs %d", len(res.Rows), len(res2.Rows))
	}
	for i := range res.Rows {
		if !res.Rows[i][0].Identical(res2.Rows[i][0]) {
			t.Fatalf("pruning changed row %d", i)
		}
	}
	if s := unpruned.StorageStats(); s.SegmentsSkipped != 0 {
		t.Fatalf("DisablePruning still skipped %d segments", s.SegmentsSkipped)
	}
}

// predCapture wraps a store and records the structured predicates pushed
// into each columnar scan, so tests can pin the decline shapes: only the
// kernelizable conjunct *prefix* may reach storage.
type predCapture struct {
	*storage.Store
	scans    []schema.ColScan
	rowScans []schema.Scan
}

func (p *predCapture) OpenScan(ctx context.Context, name string, sc schema.Scan) (schema.RowIterator, error) {
	p.rowScans = append(p.rowScans, sc)
	return p.Store.OpenScan(ctx, name, sc)
}

func (p *predCapture) OpenColScan(ctx context.Context, name string, sc schema.ColScan) (schema.ColIterator, error) {
	p.scans = append(p.scans, sc)
	return p.Store.OpenColScan(ctx, name, sc)
}

func (p *predCapture) OpenColMorsels(ctx context.Context, name string, sc schema.ColScan) (schema.ColMorselSource, error) {
	p.scans = append(p.scans, sc)
	return p.Store.OpenColMorsels(ctx, name, sc)
}

// TestPushdownDeclineShapes pins which conjuncts become pruning hints: a
// kernelizable comparison ahead of a non-kernelizable expression is pushed
// down; behind one, it is not (error order would change). NULL tests push
// down; arithmetic never does.
func TestPushdownDeclineShapes(t *testing.T) {
	cases := []struct {
		sql  string
		want int // pushed-down conjunct count
	}{
		{"SELECT x FROM d WHERE t > 100", 1},
		{"SELECT x FROM d WHERE t > 100 AND x < 3", 2},
		{"SELECT x FROM d WHERE t > 100 AND x + y > 3", 1},
		{"SELECT x FROM d WHERE x + y > 3 AND t > 100", 0},
		{"SELECT x FROM d WHERE t IS NOT NULL AND t > 100", 2},
		{"SELECT x FROM d WHERE x < y", 1},
	}
	for _, tc := range cases {
		src := &predCapture{Store: segStore(t, 1_000, 128, false)}
		if _, err := New(src).Query(context.Background(), tc.sql); err != nil {
			t.Fatalf("%s: %v", tc.sql, err)
		}
		var got int
		switch {
		case len(src.scans) > 0:
			got = len(src.scans[0].Predicate)
		case len(src.rowScans) > 0:
			got = len(src.rowScans[0].Predicate)
		default:
			t.Fatalf("%s: no scan opened", tc.sql)
		}
		if got != tc.want {
			t.Fatalf("%s: pushed %d structured conjuncts, want %d", tc.sql, got, tc.want)
		}
	}
}
