package engine

import (
	"context"
	"sync"

	"paradise/internal/plan"
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// This file is the morsel-driven parallel side of the engine. A query block
// whose streamable segment is per-row independent (scan, filter, join
// probe, projection, DISTINCT pre-pass, GROUP BY key computation) is
// compiled into a parSeg: a shared morsel source plus a list of per-worker
// stage factories. N workers pull morsels, run the fused stage pipeline
// over them, and hand the results to an order-preserving exchange that
// re-emits batches in morsel order.
//
// The ordering discipline is what makes parallel execution invisible:
// because the exchange restores the serial pull order, every downstream
// consumer — DISTINCT merges, group-by merges, sort ties, the fragment
// chain's accounting, the facade's cursors — observes exactly the rows,
// in exactly the order, of serial execution, and per-group aggregate folds
// visit rows in the serial order so even float aggregates are bit-identical.
// Errors are delivered at the seq of the batch that raised them, so the
// first error surfaces at the same point in the stream as it would
// serially.
//
// What stays serial, by design:
//
//   - Blocks with a *streaming* LIMIT (no breaker below it). Their
//     early-termination guarantee — a LIMIT-n query reads O(n + batch)
//     rows from storage — would be destroyed by workers prefetching
//     morsels past the cutoff.
//   - Pipeline breakers' own materialized evaluation (sort, windows),
//     whose input production still parallelizes.
//   - The per-morsel source pull (one short critical section per batch)
//     and the exchange's in-order re-emission.

// MorselScanner is an optional extension of BatchSource: relations can be
// opened as shared morsel sources feeding any number of concurrent
// workers. storage.Store implements it with locked subslice hand-offs;
// sources without it are adapted through schema.ShareIterator.
type MorselScanner interface {
	OpenMorsels(ctx context.Context, name string, batchSize int) (schema.MorselSource, error)
}

// batchFn transforms one morsel's rows inside a worker. It must not mutate
// the input batch (which may alias storage memory); it returns either the
// input untouched or a freshly allocated batch (see the ownership rules in
// schema's parallel contract).
type batchFn func(in schema.Rows) (schema.Rows, error)

// stageFactory builds one worker's instance of a stage. Factories are
// invoked once per worker, concurrently, and must only capture read-only
// compile artifacts; all mutable state (row environments, buffers, local
// dedup maps) is created inside.
type stageFactory func() batchFn

// keyFn is the optional keyed terminal stage of a worker pipeline: it
// returns the (possibly filtered) batch plus one key string per surviving
// row, for DISTINCT merges and GROUP BY partitioning.
type keyFn func(in schema.Rows) (schema.Rows, []string, error)

// keyFactory builds one worker's keyFn, under the same rules as
// stageFactory.
type keyFactory func() keyFn

// parSeg is a compiled streamable segment: where the morsels come from and
// what each worker does to them. Exactly one of ms (storage fast path) and
// it (any other source, shared via schema.ShareIterator) is set.
type parSeg struct {
	b  *binding
	ms schema.MorselSource
	it schema.RowIterator
	mk []stageFactory
}

// close releases an abandoned segment (compile error before any exchange
// took ownership).
func (s *parSeg) close() {
	if s.ms != nil {
		s.ms.Close()
	}
	if s.it != nil {
		s.it.Close()
	}
}

// source resolves the segment's morsel source.
func (s *parSeg) source() schema.MorselSource {
	if s.ms != nil {
		return s.ms
	}
	return schema.ShareIterator(s.it)
}

// iterator exposes the segment as a batch iterator: through an exchange
// when there is work to parallelize, directly otherwise (a bare
// pass-through segment gains nothing from workers).
func (s *parSeg) iterator(workers int) schema.RowIterator {
	if len(s.mk) == 0 {
		if s.it != nil {
			return s.it
		}
		// Sole consumer of the morsel source: closing the iterator must
		// close the source too (IterateMorsels alone only stops its own
		// partition).
		return &ownedMorselIter{RowIterator: schema.IterateMorsels(s.ms), ms: s.ms}
	}
	return &exchIter{x: newExchange(s, workers, nil)}
}

// ownedMorselIter is a single-partition view that owns its source.
type ownedMorselIter struct {
	schema.RowIterator
	ms schema.MorselSource
}

func (o *ownedMorselIter) Close() {
	o.RowIterator.Close()
	o.ms.Close()
}

// parcel is one processed morsel travelling from a worker to the exchange
// consumer: the transformed batch, optional per-row keys, or the error the
// serial pipeline would have surfaced at this position.
type parcel struct {
	rows schema.Rows
	keys []string
	err  error
}

// exchange runs N workers over a shared morsel source and re-emits their
// output parcels in morsel order. Workers run at most window parcels ahead
// of the consumer, bounding buffered memory; per-worker results are merged
// at the single consumer, which is where accounting-sensitive consumers
// (stage drains, group merges) observe them — in serial order.
type exchange struct {
	src     schema.MorselSource
	mk      []stageFactory
	kf      keyFactory
	workers int
	window  int

	mu      sync.Mutex
	cond    *sync.Cond
	buf     map[int]*parcel
	next    int // next seq to emit
	active  int // workers still running
	started bool
	stopped bool
	wg      sync.WaitGroup
}

func newExchange(seg *parSeg, workers int, kf keyFactory) *exchange {
	if workers < 1 {
		workers = 1
	}
	x := &exchange{
		src:     seg.source(),
		mk:      seg.mk,
		kf:      kf,
		workers: workers,
		window:  2*workers + 2,
		buf:     make(map[int]*parcel),
	}
	x.cond = sync.NewCond(&x.mu)
	return x
}

// start spawns the workers; called lazily on the first pull so an opened
// but never-consumed pipeline costs nothing and a pre-pull Close has
// nothing to unwind.
func (x *exchange) start() {
	x.mu.Lock()
	if x.started || x.stopped {
		x.mu.Unlock()
		return
	}
	x.started = true
	x.active = x.workers
	x.mu.Unlock()
	for w := 0; w < x.workers; w++ {
		x.wg.Add(1)
		go x.worker()
	}
}

func (x *exchange) worker() {
	defer x.wg.Done()
	defer func() {
		x.mu.Lock()
		x.active--
		if x.active == 0 {
			x.cond.Broadcast()
		}
		x.mu.Unlock()
	}()

	fns := make([]batchFn, len(x.mk))
	for i, mk := range x.mk {
		fns[i] = mk()
	}
	var kf keyFn
	if x.kf != nil {
		kf = x.kf()
	}

	for {
		m, err := x.src.NextMorsel()
		if err != nil {
			x.deliver(m.Seq, &parcel{err: err})
			return
		}
		if m.Rows == nil {
			return
		}
		rows := m.Rows
		var keys []string
		for _, fn := range fns {
			rows, err = fn(rows)
			if err != nil {
				break
			}
		}
		if err == nil && kf != nil && len(rows) > 0 {
			rows, keys, err = kf(rows)
		}
		if err != nil {
			x.deliver(m.Seq, &parcel{err: err})
			return
		}
		// Every claimed seq is delivered — even an empty batch — so the
		// emission order stays contiguous.
		x.deliver(m.Seq, &parcel{rows: rows, keys: keys})
	}
}

// deliver hands one parcel to the reorder buffer, waiting while the worker
// is too far ahead of the consumer.
func (x *exchange) deliver(seq int, p *parcel) {
	x.mu.Lock()
	defer x.mu.Unlock()
	for !x.stopped && seq >= x.next+x.window {
		x.cond.Wait()
	}
	if x.stopped {
		return
	}
	x.buf[seq] = p
	x.cond.Broadcast()
}

// nextParcel returns the next parcel in morsel order, or ok=false once the
// stream is exhausted or the exchange closed. Single-consumer.
func (x *exchange) nextParcel() (*parcel, bool) {
	x.start()
	x.mu.Lock()
	defer x.mu.Unlock()
	for {
		if x.stopped {
			return nil, false
		}
		if p, ok := x.buf[x.next]; ok {
			delete(x.buf, x.next)
			x.next++
			x.cond.Broadcast() // release window-blocked workers
			return p, true
		}
		if x.active == 0 && x.started {
			return nil, false
		}
		x.cond.Wait()
	}
}

// close stops the exchange: workers are released, the morsel source is
// closed (which for stage outputs triggers the drain-on-close accounting),
// and close blocks until every worker has exited, so no goroutine outlives
// the pipeline. Idempotent.
func (x *exchange) close() {
	x.mu.Lock()
	if x.stopped {
		x.mu.Unlock()
		return
	}
	x.stopped = true
	x.cond.Broadcast()
	x.mu.Unlock()
	x.src.Close()
	x.wg.Wait()
}

// exchIter is the plain iterator face of an exchange: batches come out in
// serial order, empty parcels are skipped, the first error ends the
// stream at its serial position.
type exchIter struct {
	x    *exchange
	err  error
	done bool
}

func (e *exchIter) Next() (schema.Rows, error) {
	if e.done {
		return nil, e.err
	}
	for {
		p, ok := e.x.nextParcel()
		if !ok {
			e.done = true
			e.x.close()
			return nil, nil
		}
		if p.err != nil {
			e.done, e.err = true, p.err
			e.x.close()
			return nil, e.err
		}
		if len(p.rows) > 0 {
			return p.rows, nil
		}
	}
}

func (e *exchIter) Close() {
	e.done = true
	e.x.close()
}

// distinctMergeIter merges worker streams for DISTINCT: workers pre-dedup
// their own streams and attach keys (distinctKeys); the merge keeps the
// first global occurrence. Because parcels arrive in serial order, the
// surviving row set and its order are identical to the serial operator.
type distinctMergeIter struct {
	x    *exchange
	seen map[string]bool
	err  error
	done bool
}

func (d *distinctMergeIter) Next() (schema.Rows, error) {
	if d.done {
		return nil, d.err
	}
	for {
		p, ok := d.x.nextParcel()
		if !ok {
			d.done = true
			d.x.close()
			return nil, nil
		}
		if p.err != nil {
			d.done, d.err = true, p.err
			d.x.close()
			return nil, d.err
		}
		// In-place compaction is safe: keyed parcels are worker-allocated
		// and ownership transferred with the parcel.
		out := p.rows[:0]
		for i, r := range p.rows {
			if !d.seen[p.keys[i]] {
				d.seen[p.keys[i]] = true
				out = append(out, r)
			}
		}
		if len(out) > 0 {
			return out, nil
		}
	}
}

func (d *distinctMergeIter) Close() {
	d.done = true
	d.x.close()
}

// --- Per-worker stage factories -------------------------------------------

// scanStage fuses a scan's pushed predicate and projection into the worker
// pipeline: the morsel source hands out raw batches, each worker filters
// and projects its own morsels. Mirrors schema's scanIterator semantics
// (filter over the full-width row, then projection backed by one fresh
// array per batch).
func scanStage(full *binding, conds []sqlparser.Expr, cols []int) stageFactory {
	var cond sqlparser.Expr
	if len(conds) > 0 {
		cond = sqlparser.AndAll(conds)
	}
	return func() batchFn {
		var env *rowEnv
		if cond != nil {
			env = (&rowEnv{b: full}).reuse()
		}
		return func(in schema.Rows) (schema.Rows, error) {
			if cond == nil && cols == nil {
				return in, nil
			}
			var vals []schema.Value
			if cols != nil {
				vals = make([]schema.Value, 0, len(in)*len(cols))
			}
			out := make(schema.Rows, 0, len(in))
			for _, r := range in {
				if cond != nil {
					env.row = r
					ok, err := truthy(env, cond)
					if err != nil {
						return nil, err
					}
					if !ok {
						continue
					}
				}
				if cols != nil {
					start := len(vals)
					for _, c := range cols {
						vals = append(vals, r[c])
					}
					r = vals[start:len(vals):len(vals)]
				}
				out = append(out, r)
			}
			return out, nil
		}
	}
}

// filterStage drops rows failing a residual condition (filters above a
// join or derived table).
func filterStage(b *binding, cond sqlparser.Expr) stageFactory {
	return func() batchFn {
		env := (&rowEnv{b: b}).reuse()
		return func(in schema.Rows) (schema.Rows, error) {
			out := make(schema.Rows, 0, len(in))
			for _, r := range in {
				env.row = r
				ok, err := truthy(env, cond)
				if err != nil {
					return nil, err
				}
				if ok {
					out = append(out, r)
				}
			}
			return out, nil
		}
	}
}

// projStage evaluates a non-identity select list, one fresh backing array
// per batch (mirrors projIter).
func projStage(p *projector, b *binding) stageFactory {
	return func() batchFn {
		env := (&rowEnv{b: b}).reuse()
		return func(in schema.Rows) (schema.Rows, error) {
			nc := len(p.cols)
			vals := make([]schema.Value, len(in)*nc)
			out := make(schema.Rows, 0, len(in))
			for i, r := range in {
				env.row = r
				orow := vals[i*nc : (i+1)*nc : (i+1)*nc]
				if err := p.projectInto(env, orow); err != nil {
					return nil, err
				}
				out = append(out, orow)
			}
			return out, nil
		}
	}
}

// hashProbeStage probes the shared read-only partitioned build index with
// this worker's morsels (mirrors hashJoinIter).
func hashProbeStage(ix *joinIndex, rrows schema.Rows, eqL []int, rest []sqlparser.Expr, cb *binding, leftJoin bool, nullR schema.Row) stageFactory {
	return func() batchFn {
		env := (&rowEnv{b: cb}).reuse()
		var kbuf []byte
		return func(in schema.Rows) (schema.Rows, error) {
			out := make(schema.Rows, 0, len(in))
			for _, lr := range in {
				matched := false
				kbuf = lr.AppendGroupKey(kbuf[:0], eqL)
				for _, ri := range ix.lookup(kbuf) {
					combined := joinRow(lr, rrows[ri])
					ok, err := residualOK(env, combined, rest)
					if err != nil {
						return nil, err
					}
					if ok {
						out = append(out, combined)
						matched = true
					}
				}
				if !matched && leftJoin {
					out = append(out, joinRow(lr, nullR))
				}
			}
			return out, nil
		}
	}
}

// loopProbeStage is the nested-loop fallback (nil on = cross join),
// mirroring loopJoinIter.
func loopProbeStage(rrows schema.Rows, on sqlparser.Expr, cb *binding, leftJoin bool, nullR schema.Row) stageFactory {
	return func() batchFn {
		env := (&rowEnv{b: cb}).reuse()
		return func(in schema.Rows) (schema.Rows, error) {
			out := make(schema.Rows, 0, len(in))
			for _, lr := range in {
				matched := false
				for _, rr := range rrows {
					combined := joinRow(lr, rr)
					ok := true
					if on != nil {
						env.row = combined
						var err error
						ok, err = truthy(env, on)
						if err != nil {
							return nil, err
						}
					}
					if ok {
						out = append(out, combined)
						matched = true
					}
				}
				if !matched && leftJoin {
					out = append(out, joinRow(lr, nullR))
				}
			}
			return out, nil
		}
	}
}

// distinctKeys is the keyed terminal stage for parallel DISTINCT: each
// worker computes row keys and drops repeats within its own stream (a
// later duplicate can never be the global first occurrence, so local
// pre-deduplication is always safe). The cross-worker merge happens in
// distinctMergeIter.
func distinctKeys() keyFactory {
	return func() keyFn {
		var idx []int
		var kbuf []byte
		local := make(map[string]bool)
		return func(in schema.Rows) (schema.Rows, []string, error) {
			out := make(schema.Rows, 0, len(in))
			keys := make([]string, 0, len(in))
			for _, r := range in {
				if idx == nil {
					idx = allIndexes(len(r))
				}
				kbuf = r.AppendGroupKey(kbuf[:0], idx)
				if local[string(kbuf)] {
					continue
				}
				// Only a first occurrence materializes its key string — it
				// is needed across batches (the local set and the merge).
				k := string(kbuf)
				local[k] = true
				out = append(out, r)
				keys = append(keys, k)
			}
			return out, keys, nil
		}
	}
}

// groupKeys is the keyed terminal stage for parallel GROUP BY: workers
// evaluate the grouping expressions for their morsels (the expensive part
// of grouping), producing the same key strings buildGroups would.
func groupKeys(b *binding, exprs []sqlparser.Expr) keyFactory {
	return func() keyFn {
		env := (&rowEnv{b: b}).reuse()
		var kbuf []byte
		return func(in schema.Rows) (schema.Rows, []string, error) {
			keys := make([]string, len(in))
			for i, r := range in {
				env.row = r
				kbuf = kbuf[:0]
				for _, ex := range exprs {
					v, err := evalExpr(env, ex)
					if err != nil {
						return nil, nil, err
					}
					kbuf = v.AppendGroupKey(kbuf)
				}
				keys[i] = string(kbuf)
			}
			return in, keys, nil
		}
	}
}

// --- Partitioned hash-join build ------------------------------------------

// joinIndex is a hash index over the build side, partitioned by key hash so
// it can be built by P workers without locking and probed lock-free (the
// partitions are immutable after the build barrier).
type joinIndex struct {
	parts []map[string][]int
}

func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// buildJoinIndex builds the probe index over the materialized build rows.
// Phase 1 computes keys and hashes in parallel row ranges; phase 2 lets
// each partition's worker insert exactly the rows hashing to it, scanning
// the shared key array in row order so per-key row lists match the serial
// build order.
func buildJoinIndex(rrows schema.Rows, eqR []int, workers int) *joinIndex {
	n := len(rrows)
	if workers < 2 || n < 2*schema.DefaultBatchSize {
		// Small build sides: one partition, built serially.
		m := make(map[string][]int, n)
		var kbuf []byte
		for ri, rr := range rrows {
			kbuf = rr.AppendGroupKey(kbuf[:0], eqR)
			m[string(kbuf)] = append(m[string(kbuf)], ri)
		}
		return &joinIndex{parts: []map[string][]int{m}}
	}

	keys := make([]string, n)
	hs := make([]uint32, n)
	parallelRanges(n, workers, func(lo, hi int) {
		var kbuf []byte
		for i := lo; i < hi; i++ {
			kbuf = rrows[i].AppendGroupKey(kbuf[:0], eqR)
			keys[i] = string(kbuf)
			hs[i] = fnv32a(keys[i])
		}
	})
	return &joinIndex{parts: partitionKeyIndex(keys, hs, workers)}
}

// partitionKeyIndex is phase 2 of the partitioned build (shared with the
// columnar build in vecjoin.go): each partition's worker inserts exactly
// the rows hashing to it, scanning the shared key array in row order so
// per-key row lists match the serial build order.
func partitionKeyIndex(keys []string, hs []uint32, workers int) []map[string][]int {
	n := len(keys)
	parts := make([]map[string][]int, workers)
	var wg sync.WaitGroup
	for p := 0; p < workers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			m := make(map[string][]int, n/workers+1)
			// Modulo in uint32: int(hs[i]) % workers would go negative on
			// 32-bit platforms for hashes >= 2^31.
			for i := 0; i < n; i++ {
				if hs[i]%uint32(workers) == uint32(p) {
					m[keys[i]] = append(m[keys[i]], i)
				}
			}
			parts[p] = m
		}(p)
	}
	wg.Wait()
	return parts
}

// lookup probes by raw key bytes: the string(key) map accesses compile
// allocation-free, so probing never copies the key.
func (ix *joinIndex) lookup(key []byte) []int {
	if len(ix.parts) == 1 {
		return ix.parts[0][string(key)]
	}
	h := uint32(2166136261)
	for _, b := range key {
		h ^= uint32(b)
		h *= 16777619
	}
	return ix.parts[h%uint32(len(ix.parts))][string(key)]
}

// parallelRanges splits [0, n) into one contiguous range per worker and
// runs fn over them concurrently, returning when all are done.
func parallelRanges(n, workers int, fn func(lo, hi int)) {
	if workers < 2 || n < 2 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// --- Parallel compilation --------------------------------------------------

// parallelizable reports whether a block may take the parallel path: a
// streaming LIMIT (no breaker below it) keeps the serial pipeline so its
// early-termination guarantee — O(n + batch) rows read from storage —
// survives; everything else is eligible.
func (e *Engine) parallelizable(blk *plan.Block) bool {
	if e.par < 2 {
		return false
	}
	streamingLimit := blk.Limit != nil && blk.Agg == nil && blk.Win == nil && blk.Sort == nil
	return !streamingLimit
}

// openBlockParallel compiles one query block onto the worker pipeline.
// ok=false (with no error and nothing opened) means the block shape is not
// worth parallelizing and the caller should take the serial path.
func (e *Engine) openBlockParallel(ctx context.Context, blk *plan.Block, src plan.Node) (*schema.Relation, schema.RowIterator, bool, error) {
	seg, ok, err := e.openParSource(ctx, src, blk)
	if err != nil {
		return nil, nil, true, err
	}
	if !ok {
		return nil, nil, false, nil
	}

	if blk.Agg != nil {
		rel, rows, err := e.evalGroupedParallel(blk, seg)
		if err != nil {
			return nil, nil, true, err
		}
		return rel, schema.WithContext(ctx, schema.IterateRows(rows, schema.DefaultBatchSize)), true, nil
	}
	if blk.Win != nil || blk.Sort != nil {
		// The breaker evaluation stays serial, but its input is produced by
		// the workers; the exchange's ordering makes the materialized input
		// — and therefore sort ties and window frames — identical to serial.
		rel, rows, err := e.evalBroken(blk, seg.b, seg.iterator(e.par))
		if err != nil {
			return nil, nil, true, err
		}
		return rel, schema.WithContext(ctx, schema.IterateRows(rows, schema.DefaultBatchSize)), true, nil
	}

	p, err := buildProjector(blk.Items(), seg.b)
	if err != nil {
		seg.close()
		return nil, nil, true, err
	}
	if !p.identity {
		// An all-plain-column projection directly over a vectorized join
		// (no intervening worker stages — residual filters would see the
		// combined layout) folds into the join's output gather.
		retargeted := false
		if vm, ok := seg.ms.(*vecJoinMorsels); ok && len(seg.mk) == 0 {
			if om, omOK := projOutMap(p); omOK {
				vm.core.retarget(om)
				retargeted = true
			}
		}
		if !retargeted {
			seg.mk = append(seg.mk, projStage(p, seg.b))
		}
	}
	var out schema.RowIterator
	if blk.Distinct != nil {
		out = &distinctMergeIter{x: newExchange(seg, e.par, distinctKeys()), seen: make(map[string]bool)}
	} else {
		out = seg.iterator(e.par)
	}
	// blk.Limit is nil here: streaming-limit blocks never take this path.
	return p.rel, schema.WithContext(ctx, out), true, nil
}

// openParSource compiles a block's source node into a segment, mirroring
// openSource. Residual block filters become worker stages (single-relation
// scans fold them into the scan stage itself).
func (e *Engine) openParSource(ctx context.Context, src plan.Node, blk *plan.Block) (*parSeg, bool, error) {
	if s, ok := src.(*plan.Scan); ok {
		seg, err := e.openParScan(ctx, s, blk) // folds the filters into the scan stage
		return seg, true, err
	}
	filters := blk.FilterConds()
	switch x := src.(type) {
	case *plan.Values:
		// A single synthetic row: nothing to parallelize.
		return nil, false, nil
	case *plan.Derived:
		rel, it, err := e.openBlock(ctx, x.Input)
		if err != nil {
			return nil, true, err
		}
		seg := &parSeg{b: bindingFromRelation(rel, x.Alias), it: it}
		seg.addFilters(filters)
		return seg, true, nil
	case *plan.Join:
		seg, ok, err := e.openParJoin(ctx, x)
		if err != nil || !ok {
			return nil, ok, err
		}
		seg.addFilters(filters)
		return seg, true, nil
	default:
		rel, it, err := e.openBlock(ctx, src)
		if err != nil {
			return nil, true, err
		}
		seg := &parSeg{b: bindingFromRelation(rel, ""), it: it}
		seg.addFilters(filters)
		return seg, true, nil
	}
}

func (s *parSeg) addFilters(conds []sqlparser.Expr) {
	for _, c := range conds {
		s.mk = append(s.mk, filterStage(s.b, c))
	}
}

// openParScan is the parallel counterpart of openPlanScan: the source is
// opened raw (no filter, no projection) as a morsel source, and the scan's
// predicate, residual filters and pruned projection run per worker.
func (e *Engine) openParScan(ctx context.Context, s *plan.Scan, blk *plan.Block) (*parSeg, error) {
	rel, err := RelationSchema(e.src, s.Table)
	if err != nil {
		return nil, err
	}
	qual := s.Table
	if s.Alias != "" {
		qual = s.Alias
	}
	full := bindingFromRelation(rel, qual)

	filters := blk.FilterConds()
	conds := make([]sqlparser.Expr, 0, 1+len(filters))
	if s.Predicate != nil {
		conds = append(conds, s.Predicate)
	}
	conds = append(conds, filters...)

	b := full
	cols := e.scanColumns(s, blk, full)
	if cols != nil {
		b = bindingFromRelation(rel.Project(cols), qual)
	}

	seg := &parSeg{b: b}

	// Vectorized path: a columnar morsel source runs the filter kernels and
	// the survivor pivot on each claiming worker, replacing the full-width
	// pivot plus row-at-a-time scan stage. Unlike the serial scan this pays
	// off even without kernels, because the pruned pivot happens columnar
	// per worker instead of full-width behind the shared cursor.
	if cs, ok := e.src.(ColScanner); ok {
		if p, pok := compileVecScan(rel, qual, full, conds, cols); pok {
			ms, err := cs.OpenColMorsels(ctx, s.Table, p.colScan(rel.Arity()))
			if err != nil {
				return nil, err
			}
			seg.ms = &vecMorsels{src: ms, p: p}
			return seg, nil
		}
	}

	if msrc, ok := e.src.(MorselScanner); ok {
		ms, err := msrc.OpenMorsels(ctx, s.Table, schema.DefaultBatchSize)
		if err != nil {
			return nil, err
		}
		seg.ms = ms
	} else {
		it, err := OpenScan(ctx, e.src, s.Table, schema.Scan{})
		if err != nil {
			return nil, err
		}
		seg.it = it
	}
	if len(conds) > 0 || cols != nil {
		seg.mk = append(seg.mk, scanStage(full, conds, cols))
	}
	return seg, nil
}

// openParJoin compiles a join onto the worker pipeline: the build (right)
// side is materialized and indexed by partitioned parallel build, the
// probe (left) side extends its segment with a probe stage so each worker
// probes its own morsels against the shared immutable index.
func (e *Engine) openParJoin(ctx context.Context, j *plan.Join) (*parSeg, bool, error) {
	if seg, handled, err := e.openParVecJoin(ctx, j); handled || err != nil {
		return seg, handled, err
	}
	left, ok, err := e.openParJoinSide(ctx, j.Left)
	if err != nil || !ok {
		return nil, ok, err
	}
	rb, rit, err := e.openJoinSide(ctx, j.Right)
	if err != nil {
		left.close()
		return nil, true, err
	}
	rrows, err := schema.DrainIterator(rit)
	if err != nil {
		left.close()
		return nil, true, err
	}
	return e.parJoinFromBuild(j, left, rb, rrows), true, nil
}

// parJoinFromBuild appends the row-path probe stage for an already-drained
// build side, shared by openParJoin and openParVecJoin's late declines.
func (e *Engine) parJoinFromBuild(j *plan.Join, left *parSeg, rb *binding, rrows schema.Rows) *parSeg {
	lb := left.b
	cb := lb.concat(rb)
	seg := left
	seg.b = cb

	if j.Type == sqlparser.JoinCross {
		seg.mk = append(seg.mk, loopProbeStage(rrows, nil, cb, false, nil))
		return seg
	}

	eqL, eqR, rest := splitEquiJoin(j.On, lb, rb)
	if len(eqL) > 0 {
		ix := buildJoinIndex(rrows, eqR, e.par)
		seg.mk = append(seg.mk, hashProbeStage(ix, rrows, eqL, rest, cb,
			j.Type == sqlparser.JoinLeft, nullRow(len(rb.cols))))
		return seg
	}
	seg.mk = append(seg.mk, loopProbeStage(rrows, j.On, cb,
		j.Type == sqlparser.JoinLeft, nullRow(len(rb.cols))))
	return seg
}

// openParJoinSide compiles one probe-side input, mirroring openJoinSide.
func (e *Engine) openParJoinSide(ctx context.Context, n plan.Node) (*parSeg, bool, error) {
	switch x := n.(type) {
	case *plan.Scan:
		seg, err := e.openParScan(ctx, x, &plan.Block{})
		return seg, true, err
	case *plan.Derived:
		rel, it, err := e.openBlock(ctx, x.Input)
		if err != nil {
			return nil, true, err
		}
		return &parSeg{b: bindingFromRelation(rel, x.Alias), it: it}, true, nil
	case *plan.Join:
		return e.openParJoin(ctx, x)
	case *plan.Filter:
		seg, ok, err := e.openParJoinSide(ctx, x.Input)
		if err != nil || !ok {
			return nil, ok, err
		}
		seg.mk = append(seg.mk, filterStage(seg.b, x.Cond))
		return seg, true, nil
	default:
		rel, it, err := e.openBlock(ctx, n)
		if err != nil {
			return nil, true, err
		}
		return &parSeg{b: bindingFromRelation(rel, ""), it: it}, true, nil
	}
}

// --- Parallel grouped evaluation ------------------------------------------

// evalGroupedParallel is the partitioned aggregation path: workers compute
// group keys morsel-parallel, the merge partitions rows into groups in
// serial order (so each group's row list is exactly the serial one), and
// per-group aggregate folds + HAVING + projection run group-parallel. The
// merge order makes group output order — and, because every group folds
// its rows in serial order, every aggregate value — bit-identical to
// serial execution.
func (e *Engine) evalGroupedParallel(blk *plan.Block, seg *parSeg) (*schema.Relation, schema.Rows, error) {
	groupBy := blk.GroupBy()
	var kf keyFactory
	if len(groupBy) > 0 {
		kf = groupKeys(seg.b, groupBy)
	}
	x := newExchange(seg, e.par, kf)
	groups, err := collectGroups(x, len(groupBy) == 0)
	if err != nil {
		return nil, nil, err
	}

	// Deliberately after the drain: the serial path (evalBroken →
	// evalGrouped) also drains the whole input before validating the select
	// list, so a query with both a scan error and an invalid grouped select
	// list surfaces the same error either way.
	aggCalls, rel, err := groupSpecCompile(blk, seg.b)
	if err != nil {
		return nil, nil, err
	}
	out, err := e.evalGroupsParallel(blk, seg.b, aggCalls, rel, groups)
	if err != nil {
		return nil, nil, err
	}
	return e.finishBroken(blk, seg.b, out, nil)
}

// collectGroups drains the exchange in morsel order, partitioning rows
// into groups by the worker-computed keys (or into the single implicit
// group when the block has no GROUP BY — which exists even for empty
// input, so COUNT(*) over nothing yields 0, exactly like buildGroups).
func collectGroups(x *exchange, single bool) ([]*group, error) {
	defer x.close()
	index := make(map[string]*group)
	var order []*group
	if single {
		order = []*group{{}}
	}
	for {
		p, ok := x.nextParcel()
		if !ok {
			return order, nil
		}
		if p.err != nil {
			return nil, p.err
		}
		if single {
			g := order[0]
			for _, r := range p.rows {
				if g.rep == nil {
					g.rep = r
				}
				g.rows = append(g.rows, r)
			}
			continue
		}
		for i, r := range p.rows {
			key := p.keys[i]
			g, ok := index[key]
			if !ok {
				g = &group{rep: r}
				index[key] = g
				order = append(order, g)
			}
			g.rows = append(g.rows, r)
		}
	}
}

// evalGroupsParallel evaluates aggregates, HAVING and the select list for
// contiguous chunks of groups concurrently. Output slots are per-group, so
// the compacted result preserves group order; on errors the lowest group
// index wins, matching the group at which serial evaluation would stop.
func (e *Engine) evalGroupsParallel(blk *plan.Block, b *binding, aggCalls []*sqlparser.FuncCall, rel *schema.Relation, groups []*group) (*Result, error) {
	n := len(groups)
	workers := e.par
	if workers > n {
		workers = n
	}
	if workers < 2 {
		env := (&rowEnv{b: b}).reuse()
		out := make(schema.Rows, 0, n)
		for _, g := range groups {
			row, keep, err := evalOneGroup(b, env, blk, aggCalls, g)
			if err != nil {
				return nil, err
			}
			if keep {
				out = append(out, row)
			}
		}
		return &Result{Schema: rel, Rows: out}, nil
	}

	rows := make(schema.Rows, n)
	keep := make([]bool, n)
	errIdx := make([]int, workers)
	errs := make([]error, workers)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			env := (&rowEnv{b: b}).reuse()
			for gi := lo; gi < hi; gi++ {
				row, ok, err := evalOneGroup(b, env, blk, aggCalls, groups[gi])
				if err != nil {
					errIdx[w], errs[w] = gi, err
					return
				}
				rows[gi], keep[gi] = row, ok
			}
			errIdx[w] = n
		}(w, lo, hi)
	}
	wg.Wait()

	firstErr := error(nil)
	firstIdx := n
	for w := range errs {
		if errs[w] != nil && errIdx[w] < firstIdx {
			firstIdx, firstErr = errIdx[w], errs[w]
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	out := make(schema.Rows, 0, n)
	for gi := 0; gi < n; gi++ {
		if keep[gi] {
			out = append(out, rows[gi])
		}
	}
	return &Result{Schema: rel, Rows: out}, nil
}
