package engine

import (
	"context"
	"strings"
	"testing"

	"paradise/internal/plan"
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
	"paradise/internal/storage"
)

// cellCountingSource measures what actually crosses the storage→engine
// boundary: rows and cells (rows × columns) per scan, after the storage
// layer applied any pushed-down predicate and projection. It is how the
// plan-IR acceptance tests prove that pruned columns and pushed predicates
// shrink the data leaving storage.
type cellCountingSource struct {
	st    *storage.Store
	rows  int
	cells int
}

func (c *cellCountingSource) Relation(name string) (*schema.Relation, schema.Rows, error) {
	return c.st.Relation(name)
}

func (c *cellCountingSource) RelationSchema(name string) (*schema.Relation, error) {
	return c.st.RelationSchema(name)
}

func (c *cellCountingSource) OpenScan(ctx context.Context, name string, sc schema.Scan) (schema.RowIterator, error) {
	it, err := c.st.OpenScan(ctx, name, sc)
	if err != nil {
		return nil, err
	}
	return &cellCountingIter{src: it, s: c}, nil
}

type cellCountingIter struct {
	src schema.RowIterator
	s   *cellCountingSource
}

func (c *cellCountingIter) Next() (schema.Rows, error) {
	b, err := c.src.Next()
	c.s.rows += len(b)
	for _, r := range b {
		c.s.cells += len(r)
	}
	return b, err
}

func (c *cellCountingIter) Close() { c.src.Close() }

func queryCells(t *testing.T, n int, sql string) (rows, cells, resultRows int) {
	t.Helper()
	src := &cellCountingSource{st: benchStore(t, n)}
	res, err := New(src).Query(context.Background(), sql)
	if err != nil {
		t.Fatalf("%q: %v", sql, err)
	}
	return src.rows, src.cells, len(res.Rows)
}

// TestPrunedColumnsExpressionProjection: a projection over expressions reads
// only the referenced columns — 2 of the 5-column relation — instead of
// materializing full-width rows (the pre-IR engine only pruned when every
// select item was a bare column).
func TestPrunedColumnsExpressionProjection(t *testing.T) {
	const n = 4_000
	rows, cells, _ := queryCells(t, n, "SELECT x + y AS s FROM d")
	if rows != n {
		t.Fatalf("scanned %d rows, want %d", rows, n)
	}
	if want := 2 * n; cells != want {
		t.Fatalf("projection pruning: %d cells left storage, want %d (2 of 5 columns)", cells, want)
	}
}

// TestPrunedColumnsGroupedQuery: an aggregation reads only its GROUP BY
// column and aggregate arguments.
func TestPrunedColumnsGroupedQuery(t *testing.T) {
	const n = 4_000
	rows, cells, _ := queryCells(t, n, "SELECT cell, AVG(z) AS za FROM d GROUP BY cell")
	if rows != n {
		t.Fatalf("scanned %d rows, want %d", rows, n)
	}
	if want := 2 * n; cells != want {
		t.Fatalf("grouped pruning: %d cells left storage, want %d (cell and z only)", cells, want)
	}
}

// TestPushedPredicateThroughDerivedBlock: an outer predicate over a derived
// table's computed column migrates into the base scan (rewritten through
// the projection), so rows failing it never leave storage. x and y are
// in [0, 8) and [0, 6), so x + y > 100 matches nothing: the scan must hand
// the engine zero rows.
func TestPushedPredicateThroughDerivedBlock(t *testing.T) {
	const n = 4_000
	rows, cells, resultRows := queryCells(t, n,
		"SELECT s FROM (SELECT x + y AS s, z FROM d) WHERE s > 100")
	if resultRows != 0 {
		t.Fatalf("expected empty result, got %d rows", resultRows)
	}
	if rows != 0 || cells != 0 {
		t.Fatalf("pushed predicate: %d rows / %d cells left storage, want 0/0", rows, cells)
	}
}

// TestPrunedColumnsJoinSides: qualified references prune each join side's
// scan independently. d keeps only x and cell of its 5 columns — the filter
// column z rides the pushed predicate (which runs before projection inside
// the scan) and never leaves storage at all.
func TestPrunedColumnsJoinSides(t *testing.T) {
	const n = 4_000
	src := &cellCountingSource{st: benchStore(t, n)}
	res, err := New(src).Query(context.Background(),
		"SELECT d.x, cells.label FROM d JOIN cells ON d.cell = cells.cell WHERE d.z < 100")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != n {
		t.Fatalf("join lost rows: %d of %d", len(res.Rows), n)
	}
	// d contributes x, cell (2 of 5); cells is already minimal (2 of 2).
	want := 2*n + 2*64
	if src.cells != want {
		t.Fatalf("join pruning: %d cells left storage, want %d", src.cells, want)
	}
}

// TestJoinResidualFilterSurvivesPruning: a WHERE conjunct referencing both
// join sides cannot be pushed below the join; the columns it reads must
// survive each side's scan pruning (regression: the pruner once dropped
// them, failing with an unknown-column error).
func TestJoinResidualFilterSurvivesPruning(t *testing.T) {
	st := benchStore(t, 1_000)
	q := "SELECT d.x FROM d JOIN cells ON d.cell = cells.cell WHERE d.x > cells.cell"
	pruned, err := New(st).Query(context.Background(), q)
	if err != nil {
		t.Fatalf("mixed-side join filter failed under pruning: %v", err)
	}
	// Cross-check against the unoptimized plan (no catalog, no pruning).
	sel, err := sqlparser.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	root, err := plan.FromAST(sel)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(st).SelectPlan(context.Background(), root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned.Rows) != len(plain.Rows) {
		t.Fatalf("pruning changed the join result: %d vs %d rows", len(pruned.Rows), len(plain.Rows))
	}
}

// TestGroupedOrderByAggregateKeepsArgColumns: aggregate calls in a grouped
// ORDER BY are evaluated over input rows, so their argument columns must
// not be pruned from the scan. The shape itself is unsupported at the sort
// (as before the plan IR), but it must fail there — not earlier with a
// pruning-induced unknown-column error.
func TestGroupedOrderByAggregateKeepsArgColumns(t *testing.T) {
	st := benchStore(t, 500)
	_, err := New(st).Query(context.Background(),
		"SELECT cell, COUNT(*) AS n FROM d GROUP BY cell ORDER BY MAX(x)")
	if err == nil {
		t.Skip("grouped ORDER BY aggregate became supported; drop this guard")
	}
	if !strings.Contains(err.Error(), "not allowed here") {
		t.Fatalf("want the pre-IR sort error, got a pruning casualty: %v", err)
	}
}

// TestPushdownKeepsResults: pruning and pushdown must not change answers —
// the same queries over a counting source and a plain store agree.
func TestPushdownKeepsResults(t *testing.T) {
	queries := []string{
		"SELECT x + y AS s FROM d WHERE x > y ORDER BY s LIMIT 20",
		"SELECT cell, AVG(z) AS za FROM d GROUP BY cell HAVING COUNT(*) > 5 ORDER BY za",
		"SELECT s FROM (SELECT x + y AS s, z FROM d WHERE z < 1.5) WHERE s > 3",
		"SELECT d.x, cells.label FROM d JOIN cells ON d.cell = cells.cell WHERE d.z < 1",
	}
	st := benchStore(t, 2_000)
	for _, q := range queries {
		plain, err := New(st).Query(context.Background(), q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		counted, err := New(&cellCountingSource{st: st}).Query(context.Background(), q)
		if err != nil {
			t.Fatalf("%q (counted): %v", q, err)
		}
		if len(plain.Rows) != len(counted.Rows) {
			t.Fatalf("%q: row count diverged %d vs %d", q, len(plain.Rows), len(counted.Rows))
		}
		for i := range plain.Rows {
			for j := range plain.Rows[i] {
				if !plain.Rows[i][j].Identical(counted.Rows[i][j]) {
					t.Fatalf("%q: row %d differs", q, i)
				}
			}
		}
	}
}

// TestAmbiguousDerivedNameErrorsWithOptimization (regression, PR 3 bug):
// duplicate derived-table output names must error "ambiguous" with the
// optimizer on, exactly like the unoptimized plan — cross-block pushdown
// used to resolve the reference to the last duplicate and return rows.
func TestAmbiguousDerivedNameErrorsWithOptimization(t *testing.T) {
	st := benchStore(t, 100)
	q := "SELECT z FROM (SELECT x AS s, y AS s, z FROM d) WHERE s > 3"

	_, optErr := New(st).Query(context.Background(), q)
	if optErr == nil || !strings.Contains(optErr.Error(), "ambiguous") {
		t.Fatalf("optimized plan: want ambiguous-column error, got %v", optErr)
	}

	sel, err := sqlparser.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	root, err := plan.FromAST(sel)
	if err != nil {
		t.Fatal(err)
	}
	_, plainErr := New(st).SelectPlan(context.Background(), root)
	if plainErr == nil || !strings.Contains(plainErr.Error(), "ambiguous") {
		t.Fatalf("unoptimized plan: want ambiguous-column error, got %v", plainErr)
	}
}

// TestAmbiguousDerivedOutputNameErrors extends the duplicate-name guard to
// derived (unaliased) output names: SELECT abs(x), y AS abs exposes "abs"
// twice even though only one item is aliased. The push must bail so the
// reference errors "ambiguous" like the unoptimized plan.
func TestAmbiguousDerivedOutputNameErrors(t *testing.T) {
	st := benchStore(t, 100)
	q := "SELECT z FROM (SELECT abs(x), y AS abs, z FROM d) WHERE abs > 3"
	_, err := New(st).Query(context.Background(), q)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("optimized plan: want ambiguous-column error, got %v", err)
	}
}
