package engine

import (
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// EvalExpr evaluates a scalar expression against a single row of the given
// relation. It is used by the stream processor (sensor-level filters) and by
// the policy engine when checking atomic conditions.
func EvalExpr(rel *schema.Relation, row schema.Row, e sqlparser.Expr) (schema.Value, error) {
	env := &rowEnv{b: bindingFromRelation(rel, rel.Name), row: row}
	return evalExpr(env, e)
}

// EvalPredicate evaluates a boolean expression as a filter over one row,
// collapsing NULL to false per SQL filter semantics.
func EvalPredicate(rel *schema.Relation, row schema.Row, e sqlparser.Expr) (bool, error) {
	env := &rowEnv{b: bindingFromRelation(rel, rel.Name), row: row}
	return truthy(env, e)
}

// EvalAggregate computes a single aggregate call over a set of rows of the
// given relation, e.g. AVG(z) over the rows of a stream window.
func EvalAggregate(rel *schema.Relation, rows schema.Rows, f *sqlparser.FuncCall) (schema.Value, error) {
	return evalAggregate(bindingFromRelation(rel, rel.Name), rows, f)
}

// OutputSchema computes the output relation a SELECT statement produces
// against the source, without executing it (it does execute subqueries'
// schema derivation recursively but touches no rows). Used by the rewriter
// and fragmenter for schema reasoning.
func (e *Engine) OutputSchema(sel *sqlparser.Select) (*schema.Relation, error) {
	b, err := e.bindFrom(sel.From)
	if err != nil {
		return nil, err
	}
	rel := &schema.Relation{}
	for i, it := range sel.Items {
		if st, ok := it.Expr.(*sqlparser.Star); ok {
			idxs, err := b.starIndexes(st)
			if err != nil {
				return nil, err
			}
			for _, idx := range idxs {
				c := b.cols[idx]
				rel.Columns = append(rel.Columns, schema.Column{Name: c.name, Type: c.typ, Sensitive: c.sens})
			}
			continue
		}
		name := it.Alias
		if name == "" {
			name = outputName(it.Expr, i)
		}
		rel.Columns = append(rel.Columns, schema.Column{
			Name:      name,
			Type:      b.staticType(it.Expr),
			Sensitive: b.sensitiveExpr(it.Expr),
		})
	}
	return rel, nil
}

// bindFrom derives the binding of a FROM clause without evaluating rows.
func (e *Engine) bindFrom(t sqlparser.TableRef) (*binding, error) {
	switch x := t.(type) {
	case nil:
		return &binding{}, nil
	case *sqlparser.TableName:
		rel, err := RelationSchema(e.src, x.Name)
		if err != nil {
			return nil, err
		}
		qual := x.Name
		if x.Alias != "" {
			qual = x.Alias
		}
		return bindingFromRelation(rel, qual), nil
	case *sqlparser.Subquery:
		rel, err := e.OutputSchema(x.Select)
		if err != nil {
			return nil, err
		}
		return bindingFromRelation(rel, x.Alias), nil
	case *sqlparser.Join:
		lb, err := e.bindFrom(x.Left)
		if err != nil {
			return nil, err
		}
		rb, err := e.bindFrom(x.Right)
		if err != nil {
			return nil, err
		}
		return lb.concat(rb), nil
	default:
		return nil, ErrQuery
	}
}
