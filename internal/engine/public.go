package engine

import (
	"fmt"

	"paradise/internal/plan"
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// EvalExpr evaluates a scalar expression against a single row of the given
// relation. It is used by the stream processor (sensor-level filters) and by
// the policy engine when checking atomic conditions.
func EvalExpr(rel *schema.Relation, row schema.Row, e sqlparser.Expr) (schema.Value, error) {
	env := &rowEnv{b: bindingFromRelation(rel, rel.Name), row: row}
	return evalExpr(env, e)
}

// EvalPredicate evaluates a boolean expression as a filter over one row,
// collapsing NULL to false per SQL filter semantics.
func EvalPredicate(rel *schema.Relation, row schema.Row, e sqlparser.Expr) (bool, error) {
	env := &rowEnv{b: bindingFromRelation(rel, rel.Name), row: row}
	return truthy(env, e)
}

// EvalAggregate computes a single aggregate call over a set of rows of the
// given relation, e.g. AVG(z) over the rows of a stream window.
func EvalAggregate(rel *schema.Relation, rows schema.Rows, f *sqlparser.FuncCall) (schema.Value, error) {
	return evalAggregate(bindingFromRelation(rel, rel.Name), rows, f)
}

// OutputSchema computes the output relation a SELECT statement produces
// against the source, without executing it: the statement is lowered to the
// plan IR and the schema is derived operator by operator (no rows are
// touched). Used by the rewriter and fragmenter for schema reasoning.
func (e *Engine) OutputSchema(sel *sqlparser.Select) (*schema.Relation, error) {
	root, err := plan.FromAST(sel)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrQuery, err)
	}
	return e.PlanSchema(root)
}

// PlanSchema derives the output relation of a plan without executing it.
func (e *Engine) PlanSchema(root plan.Node) (*schema.Relation, error) {
	blk, src := plan.SplitBlock(root)
	b, err := e.bindSource(src)
	if err != nil {
		return nil, err
	}
	items := blk.Items()
	if blk.Agg != nil {
		rel := &schema.Relation{Columns: make([]schema.Column, len(items))}
		for i, it := range items {
			name := it.Alias
			if name == "" {
				name = outputName(it.Expr, i)
			}
			rel.Columns[i] = schema.Column{
				Name:      name,
				Type:      b.staticType(it.Expr),
				Sensitive: b.sensitiveExpr(it.Expr),
			}
		}
		return rel, nil
	}
	p, err := buildProjector(items, b)
	if err != nil {
		return nil, err
	}
	return p.rel, nil
}

// bindSource derives the binding of a plan source node without opening any
// scans.
func (e *Engine) bindSource(src plan.Node) (*binding, error) {
	switch x := src.(type) {
	case *plan.Values:
		return &binding{}, nil
	case *plan.Scan:
		rel, err := RelationSchema(e.src, x.Table)
		if err != nil {
			return nil, err
		}
		qual := x.Table
		if x.Alias != "" {
			qual = x.Alias
		}
		b := bindingFromRelation(rel, qual)
		if x.Columns != nil {
			if idxs := e.scanColumns(x, &plan.Block{}, b); idxs != nil {
				b = bindingFromRelation(rel.Project(idxs), qual)
			}
		}
		return b, nil
	case *plan.Derived:
		rel, err := e.PlanSchema(x.Input)
		if err != nil {
			return nil, err
		}
		return bindingFromRelation(rel, x.Alias), nil
	case *plan.Join:
		lb, err := e.bindSource(x.Left)
		if err != nil {
			return nil, err
		}
		rb, err := e.bindSource(x.Right)
		if err != nil {
			return nil, err
		}
		return lb.concat(rb), nil
	case *plan.Filter:
		return e.bindSource(x.Input)
	default:
		rel, err := e.PlanSchema(src)
		if err != nil {
			return nil, err
		}
		return bindingFromRelation(rel, ""), nil
	}
}
