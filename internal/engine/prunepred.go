package engine

import (
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// Structured pruning predicates: the kernelizable conjunct prefix of a scan
// filter, restated over base-table column positions so the storage layer
// can consult segment zone maps (see schema.ColPred for the soundness
// contract). The accepted forms mirror compileConjKernel exactly —
// comparisons between column references and literals (either side), and
// IS [NOT] NULL on a column — so the structured prefix and the kernel
// prefix stop at the same conjunct.

// prunePreds converts the longest convertible prefix of the conjunct list.
// Conversion stopping early only weakens pruning, never soundness: the
// prefix property (no conjunct past the first unconvertible one) is what
// keeps error/short-circuit order intact.
func prunePreds(full *binding, conjs []sqlparser.Expr) []schema.ColPred {
	var out []schema.ColPred
	for _, c := range conjs {
		p, ok := prunePred(full, c)
		if !ok {
			break
		}
		out = append(out, p)
	}
	return out
}

func prunePred(full *binding, c sqlparser.Expr) (schema.ColPred, bool) {
	switch x := c.(type) {
	case *sqlparser.IsNull:
		cr, ok := x.X.(*sqlparser.ColumnRef)
		if !ok {
			return schema.ColPred{}, false
		}
		ti, err := full.resolve(cr)
		if err != nil {
			return schema.ColPred{}, false
		}
		op := schema.PredIsNull
		if x.Not {
			op = schema.PredNotNull
		}
		return schema.ColPred{Op: op, Col: ti, RCol: -1}, true
	case *sqlparser.BinaryExpr:
		op, ok := predOpOf(x.Op)
		if !ok {
			return schema.ColPred{}, false
		}
		l, lok := pruneOperand(full, x.L)
		r, rok := pruneOperand(full, x.R)
		if !lok || !rok || (l.col < 0 && r.col < 0) {
			return schema.ColPred{}, false
		}
		if l.col < 0 {
			// Literal on the left: normalize column-on-the-left with the
			// comparison sense mirrored, exactly like the kernel compiler.
			l, r = r, l
			op = mirrorPredOp(op)
		}
		if r.col >= 0 {
			return schema.ColPred{Op: op, Col: l.col, RCol: r.col}, true
		}
		return schema.ColPred{Op: op, Col: l.col, RCol: -1, Lit: r.lit}, true
	}
	return schema.ColPred{}, false
}

// pruneOperand compiles one comparison side to a base-table position or a
// literal (col < 0).
func pruneOperand(full *binding, e sqlparser.Expr) (operand, bool) {
	switch x := e.(type) {
	case *sqlparser.Literal:
		return operand{col: -1, lit: x.Value}, true
	case *sqlparser.ColumnRef:
		ti, err := full.resolve(x)
		if err != nil {
			return operand{}, false
		}
		return operand{col: ti}, true
	}
	return operand{}, false
}

func predOpOf(op sqlparser.BinaryOp) (schema.PredOp, bool) {
	switch op {
	case sqlparser.OpEq:
		return schema.PredEq, true
	case sqlparser.OpNeq:
		return schema.PredNe, true
	case sqlparser.OpLt:
		return schema.PredLt, true
	case sqlparser.OpLeq:
		return schema.PredLe, true
	case sqlparser.OpGt:
		return schema.PredGt, true
	case sqlparser.OpGeq:
		return schema.PredGe, true
	}
	return 0, false
}

// mirrorPredOp flips a comparison around its operands: x OP y == y OP' x.
func mirrorPredOp(op schema.PredOp) schema.PredOp {
	switch op {
	case schema.PredLt:
		return schema.PredGt
	case schema.PredLe:
		return schema.PredGe
	case schema.PredGt:
		return schema.PredLt
	case schema.PredGe:
		return schema.PredLe
	}
	return op // Eq and Ne are symmetric
}
