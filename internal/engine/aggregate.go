package engine

import (
	"fmt"
	"math"

	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// accumulator folds argument tuples of one aggregate call over the rows of a
// group (or window frame) and produces the aggregate value.
type accumulator interface {
	// add feeds the evaluated arguments for one row. For COUNT(*) the slice
	// is empty.
	add(args []schema.Value)
	// result returns the aggregate value over everything added so far.
	// Accumulators are cumulative: add may be interleaved with result,
	// which is what the window operator's running frames rely on.
	result() schema.Value
}

// newAccumulator builds the accumulator for the named aggregate.
func newAccumulator(f *sqlparser.FuncCall) (accumulator, error) {
	var inner accumulator
	switch f.Name {
	case "count":
		inner = &countAcc{star: f.Star}
	case "sum":
		inner = &sumAcc{}
	case "avg":
		inner = &avgAcc{}
	case "min":
		inner = &minmaxAcc{min: true}
	case "max":
		inner = &minmaxAcc{min: false}
	case "stddev", "variance":
		inner = &varAcc{std: f.Name == "stddev"}
	case "regr_intercept", "regr_slope", "regr_r2", "corr":
		if f.Star || len(f.Args) != 2 {
			return nil, fmt.Errorf("%w: %s takes exactly 2 arguments", ErrQuery, f.Name)
		}
		inner = &regrAcc{kind: f.Name}
	default:
		return nil, fmt.Errorf("%w: unknown aggregate %s", ErrQuery, f.Name)
	}
	if f.Distinct {
		return &distinctAcc{inner: inner, seen: make(map[string]bool)}, nil
	}
	return inner, nil
}

// distinctAcc deduplicates argument tuples before forwarding to the wrapped
// accumulator (COUNT(DISTINCT x), SUM(DISTINCT x), ...).
type distinctAcc struct {
	inner accumulator
	seen  map[string]bool
	kbuf  []byte
}

func (d *distinctAcc) add(args []schema.Value) {
	d.kbuf = d.kbuf[:0]
	for _, a := range args {
		d.kbuf = a.AppendGroupKey(d.kbuf)
	}
	if d.seen[string(d.kbuf)] {
		return
	}
	d.seen[string(d.kbuf)] = true
	d.inner.add(args)
}

func (d *distinctAcc) result() schema.Value { return d.inner.result() }

// countAcc implements COUNT(*) and COUNT(x).
type countAcc struct {
	star bool
	n    int64
}

func (c *countAcc) add(args []schema.Value) {
	if c.star {
		c.n++
		return
	}
	if len(args) > 0 && !args[0].IsNull() {
		c.n++
	}
}

func (c *countAcc) result() schema.Value { return schema.Int(c.n) }

// sumAcc implements SUM with integer preservation.
type sumAcc struct {
	anyFloat bool
	sawValue bool
	i        int64
	f        float64
}

func (s *sumAcc) add(args []schema.Value) {
	if len(args) == 0 || args[0].IsNull() {
		return
	}
	v := args[0]
	s.sawValue = true
	if v.Type() == schema.TypeFloat {
		s.anyFloat = true
	}
	if v.Type().Numeric() {
		s.f += v.AsFloat()
		if v.Type() == schema.TypeInt {
			s.i += v.AsInt()
		}
	}
}

func (s *sumAcc) result() schema.Value {
	if !s.sawValue {
		return schema.Null() // SQL: SUM over empty/all-NULL input is NULL
	}
	if s.anyFloat {
		return schema.Float(s.f)
	}
	return schema.Int(s.i)
}

// avgAcc implements AVG.
type avgAcc struct {
	n   int64
	sum float64
}

func (a *avgAcc) add(args []schema.Value) {
	if len(args) == 0 || args[0].IsNull() || !args[0].Type().Numeric() {
		return
	}
	a.n++
	a.sum += args[0].AsFloat()
}

func (a *avgAcc) result() schema.Value {
	if a.n == 0 {
		return schema.Null()
	}
	return schema.Float(a.sum / float64(a.n))
}

// minmaxAcc implements MIN/MAX over any comparable type.
type minmaxAcc struct {
	min  bool
	best schema.Value
}

func (m *minmaxAcc) add(args []schema.Value) {
	if len(args) == 0 || args[0].IsNull() {
		return
	}
	v := args[0]
	if m.best.IsNull() {
		m.best = v
		return
	}
	if c, ok := v.Compare(m.best); ok && ((m.min && c < 0) || (!m.min && c > 0)) {
		m.best = v
	}
}

func (m *minmaxAcc) result() schema.Value { return m.best }

// varAcc implements sample VARIANCE and STDDEV via Welford's algorithm.
type varAcc struct {
	std  bool
	n    int64
	mean float64
	m2   float64
}

func (v *varAcc) add(args []schema.Value) {
	if len(args) == 0 || args[0].IsNull() || !args[0].Type().Numeric() {
		return
	}
	x := args[0].AsFloat()
	v.n++
	d := x - v.mean
	v.mean += d / float64(v.n)
	v.m2 += d * (x - v.mean)
}

func (v *varAcc) result() schema.Value {
	if v.n < 2 {
		return schema.Null()
	}
	variance := v.m2 / float64(v.n-1)
	if v.std {
		return schema.Float(math.Sqrt(variance))
	}
	return schema.Float(variance)
}

// regrAcc implements the SQL:2003 linear-regression aggregates over (y, x)
// pairs: REGR_SLOPE, REGR_INTERCEPT, REGR_R2 and CORR. Pairs with a NULL on
// either side are ignored, per the standard.
type regrAcc struct {
	kind string
	n    int64
	sx   float64
	sy   float64
	sxx  float64
	syy  float64
	sxy  float64
}

func (r *regrAcc) add(args []schema.Value) {
	if len(args) != 2 || args[0].IsNull() || args[1].IsNull() {
		return
	}
	if !args[0].Type().Numeric() || !args[1].Type().Numeric() {
		return
	}
	y, x := args[0].AsFloat(), args[1].AsFloat()
	r.n++
	r.sx += x
	r.sy += y
	r.sxx += x * x
	r.syy += y * y
	r.sxy += x * y
}

func (r *regrAcc) result() schema.Value {
	if r.n == 0 {
		return schema.Null()
	}
	n := float64(r.n)
	covXY := r.sxy - r.sx*r.sy/n
	varX := r.sxx - r.sx*r.sx/n
	varY := r.syy - r.sy*r.sy/n
	switch r.kind {
	case "regr_slope":
		if varX == 0 {
			return schema.Null()
		}
		return schema.Float(covXY / varX)
	case "regr_intercept":
		if varX == 0 {
			return schema.Null()
		}
		slope := covXY / varX
		return schema.Float(r.sy/n - slope*r.sx/n)
	case "regr_r2":
		if varX == 0 {
			return schema.Null()
		}
		if varY == 0 {
			return schema.Float(1)
		}
		rr := covXY * covXY / (varX * varY)
		return schema.Float(rr)
	case "corr":
		if varX == 0 || varY == 0 {
			return schema.Null()
		}
		return schema.Float(covXY / math.Sqrt(varX*varY))
	default:
		return schema.Null()
	}
}

// evalAggregate computes one aggregate call over a set of rows.
func evalAggregate(b *binding, rows schema.Rows, f *sqlparser.FuncCall) (schema.Value, error) {
	acc, err := newAccumulator(f)
	if err != nil {
		return schema.Null(), err
	}
	af := newAggFeeder(b, f)
	for _, row := range rows {
		if err := af.feed(acc, row); err != nil {
			return schema.Null(), err
		}
	}
	return acc.result(), nil
}

// aggFeeder evaluates one aggregate call's arguments row after row with a
// single environment and argument buffer: accumulators consume the argument
// values synchronously, so the buffer is safe to reuse across rows.
type aggFeeder struct {
	f    *sqlparser.FuncCall
	env  *rowEnv
	args []schema.Value
}

func newAggFeeder(b *binding, f *sqlparser.FuncCall) *aggFeeder {
	af := &aggFeeder{f: f, env: (&rowEnv{b: b}).reuse()}
	if !f.Star {
		af.args = make([]schema.Value, len(f.Args))
	}
	return af
}

// feed evaluates the call's arguments against one row and adds them to acc.
func (af *aggFeeder) feed(acc accumulator, row schema.Row) error {
	if af.f.Star {
		acc.add(nil)
		return nil
	}
	af.env.row = row
	for i, a := range af.f.Args {
		v, err := evalExpr(af.env, a)
		if err != nil {
			return err
		}
		af.args[i] = v
	}
	acc.add(af.args)
	return nil
}
