package engine

import (
	"fmt"
	"math"

	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// This file holds the vectorized filter kernels: predicate conjuncts
// compiled into tight loops over typed column vectors, producing selection
// vectors instead of evaluating the expression tree per row. The kernels
// never pivot to row-major form — they read schema.ColVec payload slices
// directly (scripts/vecguard.sh pins this).
//
// Semantics contract — a kernelized conjunct chain is bit-identical to the
// row-at-a-time AND chain (truthy over evalBinary), including three-valued
// logic and error positions:
//
//   - Kleene AND short-circuits on FALSE only. A conjunct yielding NULL for
//     a row keeps the row as a *marked* candidate: later conjuncts still
//     evaluate it (they may raise the error the row path would raise, or
//     turn the whole AND to FALSE), but a row still marked after the last
//     conjunct is NULL overall and is dropped, exactly like truthy.
//   - A conjunct that errors on a row stops there: the kernel returns the
//     physical row with the error, and its output selection holds only the
//     survivors before that row. Later kernels run on that truncated set,
//     so an error they raise is necessarily at an earlier row and wins —
//     matching the row-at-a-time order, where the first erroring row
//     surfaces and short-circuited rows never evaluate. The batch that
//     carries a pending error produces no rows, exactly like the row scan,
//     which discards the whole batch on a filter error.
//
// Only comparisons between column references and literals (and IS [NOT]
// NULL on a column) compile to kernels; anything else stays row-at-a-time
// residual. The kernelizable *prefix* of the conjunct list is taken — a
// later kernelizable conjunct behind a non-kernelizable one must not run
// early, because the row path would have short-circuited rows the earlier
// conjunct rejects (or errors on).

// selBuf is a selection vector under construction: the physical row indices
// that survive a kernel, plus an optional parallel mark slice flagging rows
// whose AND chain is NULL so far. marks == nil means no row is marked.
type selBuf struct {
	sel   []int
	marks []bool
}

func (s *selBuf) reset() {
	s.sel = s.sel[:0]
	s.marks = nil
}

// keep appends a surviving row. The mark slice is materialized lazily on
// the first marked row, so the common no-NULL case never touches it.
func (s *selBuf) keep(i int, mark bool) {
	if mark && s.marks == nil {
		s.marks = make([]bool, len(s.sel), cap(s.sel)+1)
	}
	s.sel = append(s.sel, i)
	if s.marks != nil {
		s.marks = append(s.marks, mark)
	}
}

// mark reports whether candidate position k is marked.
func (s *selBuf) mark(k int) bool { return s.marks != nil && s.marks[k] }

// kernel evaluates one conjunct over the candidate rows in `in`, writing
// survivors to `out` (out is reset first). A non-nil error is positioned:
// errRow is the physical row the evaluation failed at, and out holds the
// survivors strictly before it.
type kernel func(cb *schema.ColBatch, in, out *selBuf) (errRow int, err error)

// operand is one side of a comparison: a column position in the loaded
// batch (col >= 0) or a literal value.
type operand struct {
	col int
	lit schema.Value
}

func (o operand) value(cb *schema.ColBatch, i int) schema.Value {
	if o.col < 0 {
		return o.lit
	}
	return cb.Vecs[o.col].Value(i)
}

func (o operand) typeAt(cb *schema.ColBatch, i int) schema.Type {
	return o.value(cb, i).Type()
}

// operandOf compiles an expression into an operand. pos maps a column
// reference to its position in the loaded batch layout.
func operandOf(e sqlparser.Expr, pos func(*sqlparser.ColumnRef) (int, bool)) (operand, bool) {
	switch x := e.(type) {
	case *sqlparser.Literal:
		return operand{col: -1, lit: x.Value}, true
	case *sqlparser.ColumnRef:
		if i, ok := pos(x); ok {
			return operand{col: i}, true
		}
	}
	return operand{}, false
}

// opTruth maps a comparison operator to its truth table over the sign of
// Compare: the result is true when the comparison returns <0 / ==0 / >0 and
// the corresponding flag is set.
func opTruth(op sqlparser.BinaryOp) (lt, eq, gt, ok bool) {
	switch op {
	case sqlparser.OpEq:
		return false, true, false, true
	case sqlparser.OpNeq:
		return true, false, true, true
	case sqlparser.OpLt:
		return true, false, false, true
	case sqlparser.OpLeq:
		return true, true, false, true
	case sqlparser.OpGt:
		return false, false, true, true
	case sqlparser.OpGeq:
		return false, true, true, true
	}
	return false, false, false, false
}

// compileConjKernel compiles one conjunct into a kernel, or reports that it
// must stay residual.
func compileConjKernel(c sqlparser.Expr, pos func(*sqlparser.ColumnRef) (int, bool)) (kernel, bool) {
	switch x := c.(type) {
	case *sqlparser.IsNull:
		cr, ok := x.X.(*sqlparser.ColumnRef)
		if !ok {
			return nil, false
		}
		col, ok := pos(cr)
		if !ok {
			return nil, false
		}
		return isNullKernel(col, x.Not), true
	case *sqlparser.BinaryExpr:
		lt, eq, gt, ok := opTruth(x.Op)
		if !ok {
			return nil, false
		}
		l, lok := operandOf(x.L, pos)
		r, rok := operandOf(x.R, pos)
		if !lok || !rok || (l.col < 0 && r.col < 0) {
			return nil, false
		}
		swapped := false
		if l.col < 0 {
			// Literal on the left: evaluate as col <op'> lit with the
			// comparison sense flipped. Error messages unswap the types.
			l, r = r, l
			lt, gt = gt, lt
			swapped = true
		}
		if r.col < 0 && r.lit.IsNull() {
			// Comparison with a NULL literal is NULL for every row: all
			// candidates survive marked, none error.
			return markAllKernel(), true
		}
		return cmpKernel(l, r, lt, eq, gt, swapped, x), true
	}
	return nil, false
}

// markAllKernel passes every candidate through marked (AND-with-NULL).
func markAllKernel() kernel {
	return func(cb *schema.ColBatch, in, out *selBuf) (int, error) {
		out.reset()
		for _, i := range in.sel {
			out.keep(i, true)
		}
		return -1, nil
	}
}

// isNullKernel compiles `col IS [NOT] NULL`. The result is always boolean
// (never NULL, never an error), so marks pass through survivors untouched.
func isNullKernel(col int, not bool) kernel {
	return func(cb *schema.ColBatch, in, out *selBuf) (int, error) {
		out.reset()
		v := &cb.Vecs[col]
		if !v.Boxed() && v.Nulls == nil {
			if !not {
				return -1, nil // IS NULL over a dense vector: nothing survives
			}
			// IS NOT NULL over a dense vector: everything survives.
			out.sel = append(out.sel, in.sel...)
			if in.marks != nil {
				out.marks = append(out.marks, in.marks...)
			}
			return -1, nil
		}
		for k, i := range in.sel {
			if v.Null(i) != not {
				out.keep(i, in.mark(k))
			}
		}
		return -1, nil
	}
}

// cmpKernel compiles a comparison conjunct. The typed fast loops run when
// the batch's vectors match a supported shape; everything else (boxed
// vectors, booleans, timestamps, NaN literals) takes the generic Value loop,
// which is still a kernel — no expression-tree walk, no row pivot.
func cmpKernel(l, r operand, lt, eq, gt, swapped bool, at *sqlparser.BinaryExpr) kernel {
	cmpErr := func(lv, rv schema.Value) error {
		lt, rt := lv.Type(), rv.Type()
		if swapped {
			lt, rt = rt, lt
		}
		return fmt.Errorf("%w: cannot compare %s and %s in %s", ErrQuery, lt, rt, at.SQL())
	}

	return func(cb *schema.ColBatch, in, out *selBuf) (int, error) {
		out.reset()
		lv := &cb.Vecs[l.col]
		if r.col >= 0 {
			rv := &cb.Vecs[r.col]
			if !lv.Boxed() && !rv.Boxed() {
				switch {
				case lv.Typ == schema.TypeFloat && rv.Typ == schema.TypeFloat:
					return cmpFloatCols(lv, rv, in, out, lt, eq, gt, cmpErr)
				case lv.Typ == schema.TypeInt && rv.Typ == schema.TypeInt:
					return cmpIntCols(lv, rv, in, out, lt, eq, gt)
				case lv.Typ == schema.TypeString && rv.Typ == schema.TypeString:
					return cmpStrCols(lv, rv, in, out, lt, eq, gt)
				}
			}
			return cmpGeneric(cb, l, r, in, out, lt, eq, gt, cmpErr)
		}
		if !lv.Boxed() {
			rt := r.lit.Type()
			switch {
			case lv.Typ == schema.TypeFloat && rt.Numeric() && !math.IsNaN(r.lit.AsFloat()):
				return cmpFloatLit(lv, r.lit, in, out, lt, eq, gt, cmpErr)
			case lv.Typ == schema.TypeInt && rt == schema.TypeInt:
				return cmpIntLit(lv, r.lit.AsInt(), in, out, lt, eq, gt)
			case lv.Typ == schema.TypeInt && rt == schema.TypeFloat && !math.IsNaN(r.lit.AsFloat()):
				return cmpIntFloatLit(lv, r.lit.AsFloat(), in, out, lt, eq, gt)
			case lv.Typ == schema.TypeString && rt == schema.TypeString:
				return cmpStrLit(lv, r.lit.AsString(), in, out, lt, eq, gt)
			}
		}
		return cmpGeneric(cb, l, r, in, out, lt, eq, gt, cmpErr)
	}
}

// cmpFloatLit: float column vs non-NaN numeric literal. A NaN column value
// is incomparable (Value.Compare returns !ok) and errors like the row path.
func cmpFloatLit(v *schema.ColVec, rlit schema.Value, in, out *selBuf, lt, eq, gt bool, cmpErr func(lv, rv schema.Value) error) (int, error) {
	xs, nulls := v.Floats, v.Nulls
	lit := rlit.AsFloat()
	for k, i := range in.sel {
		if nulls != nil && nulls[i] {
			out.keep(i, true)
			continue
		}
		x := xs[i]
		if x != x {
			return i, cmpErr(schema.Float(x), rlit)
		}
		if lt && x < lit || eq && x == lit || gt && x > lit {
			out.keep(i, in.mark(k))
		}
	}
	return -1, nil
}

// cmpIntLit: int column vs int literal. Exact comparison, never errors.
func cmpIntLit(v *schema.ColVec, lit int64, in, out *selBuf, lt, eq, gt bool) (int, error) {
	xs, nulls := v.Ints, v.Nulls
	for k, i := range in.sel {
		if nulls != nil && nulls[i] {
			out.keep(i, true)
			continue
		}
		x := xs[i]
		if lt && x < lit || eq && x == lit || gt && x > lit {
			out.keep(i, in.mark(k))
		}
	}
	return -1, nil
}

// cmpIntFloatLit: int column vs non-NaN float literal, compared as float64
// exactly like Value.Compare's cross-numeric branch. Never errors.
func cmpIntFloatLit(v *schema.ColVec, lit float64, in, out *selBuf, lt, eq, gt bool) (int, error) {
	xs, nulls := v.Ints, v.Nulls
	for k, i := range in.sel {
		if nulls != nil && nulls[i] {
			out.keep(i, true)
			continue
		}
		x := float64(xs[i])
		if lt && x < lit || eq && x == lit || gt && x > lit {
			out.keep(i, in.mark(k))
		}
	}
	return -1, nil
}

// cmpStrLit: string column vs string literal. Never errors.
func cmpStrLit(v *schema.ColVec, lit string, in, out *selBuf, lt, eq, gt bool) (int, error) {
	xs, nulls := v.Strs, v.Nulls
	for k, i := range in.sel {
		if nulls != nil && nulls[i] {
			out.keep(i, true)
			continue
		}
		x := xs[i]
		if lt && x < lit || eq && x == lit || gt && x > lit {
			out.keep(i, in.mark(k))
		}
	}
	return -1, nil
}

// cmpFloatCols: float column vs float column. NaN on either side errors.
func cmpFloatCols(lv, rv *schema.ColVec, in, out *selBuf, lt, eq, gt bool, cmpErr func(lv, rv schema.Value) error) (int, error) {
	xs, xnulls := lv.Floats, lv.Nulls
	ys, ynulls := rv.Floats, rv.Nulls
	for k, i := range in.sel {
		if (xnulls != nil && xnulls[i]) || (ynulls != nil && ynulls[i]) {
			out.keep(i, true)
			continue
		}
		x, y := xs[i], ys[i]
		if x != x || y != y {
			return i, cmpErr(schema.Float(x), schema.Float(y))
		}
		if lt && x < y || eq && x == y || gt && x > y {
			out.keep(i, in.mark(k))
		}
	}
	return -1, nil
}

// cmpIntCols: int column vs int column. Exact, never errors.
func cmpIntCols(lv, rv *schema.ColVec, in, out *selBuf, lt, eq, gt bool) (int, error) {
	xs, xnulls := lv.Ints, lv.Nulls
	ys, ynulls := rv.Ints, rv.Nulls
	for k, i := range in.sel {
		if (xnulls != nil && xnulls[i]) || (ynulls != nil && ynulls[i]) {
			out.keep(i, true)
			continue
		}
		x, y := xs[i], ys[i]
		if lt && x < y || eq && x == y || gt && x > y {
			out.keep(i, in.mark(k))
		}
	}
	return -1, nil
}

// cmpStrCols: string column vs string column. Never errors.
func cmpStrCols(lv, rv *schema.ColVec, in, out *selBuf, lt, eq, gt bool) (int, error) {
	xs, xnulls := lv.Strs, lv.Nulls
	ys, ynulls := rv.Strs, rv.Nulls
	for k, i := range in.sel {
		if (xnulls != nil && xnulls[i]) || (ynulls != nil && ynulls[i]) {
			out.keep(i, true)
			continue
		}
		x, y := xs[i], ys[i]
		if lt && x < y || eq && x == y || gt && x > y {
			out.keep(i, in.mark(k))
		}
	}
	return -1, nil
}

// cmpGeneric is the Value-based loop: boxed vectors, mixed column types,
// booleans, timestamps, NaN literals. It mirrors evalBinary's comparison
// branch exactly — NULL on either side yields NULL (marked candidate),
// incomparable values error.
func cmpGeneric(cb *schema.ColBatch, l, r operand, in, out *selBuf, lt, eq, gt bool, cmpErr func(lv, rv schema.Value) error) (int, error) {
	for k, i := range in.sel {
		lval := l.value(cb, i)
		rval := r.value(cb, i)
		if lval.IsNull() || rval.IsNull() {
			out.keep(i, true)
			continue
		}
		c, ok := lval.Compare(rval)
		if !ok {
			return i, cmpErr(lval, rval)
		}
		if lt && c < 0 || eq && c == 0 || gt && c > 0 {
			out.keep(i, in.mark(k))
		}
	}
	return -1, nil
}
