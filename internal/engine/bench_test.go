package engine

import (
	"context"
	"math/rand"
	"testing"

	"paradise/internal/schema"
	"paradise/internal/storage"
)

// benchStore builds an n-row position table plus a small dimension table.
func benchStore(b testing.TB, n int) *storage.Store {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	st := storage.NewStore()
	d := st.Create(schema.NewRelation("d",
		schema.Col("x", schema.TypeFloat),
		schema.Col("y", schema.TypeFloat),
		schema.Col("z", schema.TypeFloat),
		schema.Col("t", schema.TypeInt),
		schema.Col("cell", schema.TypeInt),
	))
	rows := make(schema.Rows, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, schema.Row{
			schema.Float(rng.Float64() * 8),
			schema.Float(rng.Float64() * 6),
			schema.Float(rng.Float64() * 2),
			schema.Int(int64(i)),
			schema.Int(int64(rng.Intn(64))),
		})
	}
	if err := d.Append(rows...); err != nil {
		b.Fatal(err)
	}
	dim := st.Create(schema.NewRelation("cells",
		schema.Col("cell", schema.TypeInt),
		schema.Col("label", schema.TypeString),
	))
	for i := 0; i < 64; i++ {
		if err := dim.Append(schema.Row{schema.Int(int64(i)), schema.String("room")}); err != nil {
			b.Fatal(err)
		}
	}
	return st
}

func benchQuery(b *testing.B, sql string) {
	b.Helper()
	eng := New(benchStore(b, 10_000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(context.Background(), sql); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanFilter(b *testing.B) {
	benchQuery(b, "SELECT * FROM d WHERE z < 1")
}

func BenchmarkProjectExpression(b *testing.B) {
	benchQuery(b, "SELECT x + y AS s, z * 2 FROM d WHERE x > y")
}

func BenchmarkGroupByHaving(b *testing.B) {
	benchQuery(b, "SELECT cell, AVG(z) AS za, COUNT(*) AS n FROM d GROUP BY cell HAVING COUNT(*) > 10")
}

func BenchmarkWindowCumulative(b *testing.B) {
	benchQuery(b, "SELECT SUM(z) OVER (PARTITION BY cell ORDER BY t) FROM d")
}

func BenchmarkHashJoin(b *testing.B) {
	benchQuery(b, "SELECT d.x, cells.label FROM d JOIN cells ON d.cell = cells.cell WHERE d.z < 1")
}

func BenchmarkRegressionAggregates(b *testing.B) {
	benchQuery(b, "SELECT regr_intercept(y, x), regr_slope(y, x), corr(y, x) FROM d")
}

func BenchmarkOrderByLimit(b *testing.B) {
	benchQuery(b, "SELECT x, y FROM d ORDER BY z DESC LIMIT 100")
}

func BenchmarkDistinct(b *testing.B) {
	benchQuery(b, "SELECT DISTINCT cell FROM d")
}

func BenchmarkNestedSubquery(b *testing.B) {
	benchQuery(b, "SELECT AVG(s) FROM (SELECT x + y AS s, z FROM d WHERE z < 1.5) WHERE s > 3")
}

func BenchmarkLimitEarlyTermination(b *testing.B) {
	benchQuery(b, "SELECT x, y FROM d LIMIT 10")
}

// benchQueryPar is benchQuery on a 4-worker engine: the serial-vs-parallel
// pairs below are the BENCH_4.json record. Run with -cpu 4 (or more) —
// under GOMAXPROCS=1 the workers time-slice one core and parallel can only
// measure its own overhead.
func benchQueryPar(b *testing.B, sql string) {
	b.Helper()
	eng := New(benchStore(b, 10_000)).WithParallelism(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(context.Background(), sql); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanFilterParallel(b *testing.B) {
	benchQueryPar(b, "SELECT * FROM d WHERE z < 1")
}

func BenchmarkProjectExpressionParallel(b *testing.B) {
	benchQueryPar(b, "SELECT x + y AS s, z * 2 FROM d WHERE x > y")
}

func BenchmarkGroupByHavingParallel(b *testing.B) {
	benchQueryPar(b, "SELECT cell, AVG(z) AS za, COUNT(*) AS n FROM d GROUP BY cell HAVING COUNT(*) > 10")
}

func BenchmarkHashJoinParallel(b *testing.B) {
	benchQueryPar(b, "SELECT d.x, cells.label FROM d JOIN cells ON d.cell = cells.cell WHERE d.z < 1")
}

func BenchmarkDistinctParallel(b *testing.B) {
	benchQueryPar(b, "SELECT DISTINCT cell FROM d")
}
