package engine

import (
	"context"
	"fmt"
	"math"

	"paradise/internal/plan"
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// Vectorized expression projection: numeric select-list expressions are
// compiled into a tree of vector operators that run over unboxed payload
// slices, so x + y over a 256-row batch is one tight float64 loop instead of
// 256 evalExpr walks boxing six-field Values at every node. Pass-through
// columns keep using ColVec.fill, and only the final output rows pivot to
// row form.
//
// The compiler is deliberately narrow: plain column references of static
// numeric type, numeric literals, NULL, unary minus/plus and the arithmetic
// operators + - * / %. Anything else — string ops, CASE, functions,
// comparisons producing booleans — declines, and the block falls back to the
// row path, which stays the semantic reference. Within that fragment the
// semantics are bit-identical to evalBinary/evalArith:
//
//   - NULL on either side yields NULL (checked before any arithmetic, so
//     NULL / 0 is NULL, not an error).
//   - int op int stays integral except division; both use Go's wrapping
//     int64 arithmetic like the row path.
//   - Division/modulo by zero errors with the row path's exact message and
//     expression text.
//   - Error ordering: the row path aborts on the first failing row,
//     evaluating items left to right. Vector evaluation runs item by item
//     (column-major), so each item reports its first error position and the
//     iterator surfaces the error with the smallest row index, ties broken
//     by item order.
//
// Boxed vectors (heterogeneous columns) make static types meaningless; any
// batch referencing one falls back to row-at-a-time projection for that
// batch, keeping results exact.

// ptype is the static result type of a compiled projection node.
type ptype int

const (
	pInt ptype = iota
	pFloat
	pNull // statically NULL (a NULL literal somewhere in the tree)
)

// pcol is one evaluated projection column over the current batch's
// candidates: dense payloads of length n, or a single constant (konst), or
// all-NULL. Payload and null slices are scratch owned by the producing node,
// valid until its next eval.
type pcol struct {
	isFloat bool
	konst   bool
	allNull bool
	ints    []int64
	floats  []float64
	nulls   []bool // nil = no NULLs (ignored for konst/allNull)
}

func (p *pcol) nullAt(k int) bool {
	if p.allNull {
		return true
	}
	return !p.konst && p.nulls != nil && p.nulls[k]
}

func (p *pcol) intAt(k int) int64 {
	if p.konst {
		return p.ints[0]
	}
	return p.ints[k]
}

func (p *pcol) floatAt(k int) float64 {
	if p.isFloat {
		if p.konst {
			return p.floats[0]
		}
		return p.floats[k]
	}
	return float64(p.intAt(k))
}

// pnode is a compiled projection operator. eval returns the column over the
// batch's candidates (sel nil = all n physical rows), or the node's first
// error with its candidate position (the row the serial evaluator would have
// failed at).
type pnode interface {
	eval(cb *schema.ColBatch, sel []int, n int) (*pcol, int, error)
}

// pLit is a numeric or NULL literal.
type pLit struct{ out pcol }

func (l *pLit) eval(*schema.ColBatch, []int, int) (*pcol, int, error) { return &l.out, -1, nil }

// pRef reads one loaded column: a zero-copy alias of the payload when no
// selection is active, a gather into scratch otherwise.
type pRef struct {
	col     int
	isFloat bool
	out     pcol
	ibuf    []int64
	fbuf    []float64
	nbuf    []bool
}

func (r *pRef) eval(cb *schema.ColBatch, sel []int, n int) (*pcol, int, error) {
	v := &cb.Vecs[r.col]
	o := &r.out
	o.isFloat, o.konst, o.allNull = r.isFloat, false, false
	if sel == nil {
		o.nulls = v.Nulls
		if r.isFloat {
			o.floats = v.Floats
		} else {
			o.ints = v.Ints
		}
		return o, -1, nil
	}
	if r.isFloat {
		r.fbuf = r.fbuf[:0]
		for _, i := range sel {
			r.fbuf = append(r.fbuf, v.Floats[i])
		}
		o.floats = r.fbuf
	} else {
		r.ibuf = r.ibuf[:0]
		for _, i := range sel {
			r.ibuf = append(r.ibuf, v.Ints[i])
		}
		o.ints = r.ibuf
	}
	o.nulls = nil
	if v.Nulls != nil {
		r.nbuf = r.nbuf[:0]
		for _, i := range sel {
			r.nbuf = append(r.nbuf, v.Nulls[i])
		}
		o.nulls = r.nbuf
	}
	return o, -1, nil
}

// pNeg is unary minus (and unary plus compiles to the child directly).
type pNeg struct {
	x    pnode
	out  pcol
	ibuf []int64
	fbuf []float64
}

func (g *pNeg) eval(cb *schema.ColBatch, sel []int, n int) (*pcol, int, error) {
	xc, k, err := g.x.eval(cb, sel, n)
	if err != nil {
		return nil, k, err
	}
	o := &g.out
	if xc.allNull {
		*o = pcol{konst: true, allNull: true}
		return o, -1, nil
	}
	o.isFloat, o.konst, o.allNull, o.nulls = xc.isFloat, xc.konst, false, nil
	m := n
	if o.konst {
		m = 1
	} else {
		o.nulls = xc.nulls
	}
	if xc.isFloat {
		g.fbuf = g.fbuf[:0]
		for k := 0; k < m; k++ {
			g.fbuf = append(g.fbuf, -xc.floatAt(k))
		}
		o.floats = g.fbuf
	} else {
		g.ibuf = g.ibuf[:0]
		for k := 0; k < m; k++ {
			g.ibuf = append(g.ibuf, -xc.intAt(k))
		}
		o.ints = g.ibuf
	}
	return o, -1, nil
}

// pBin is one arithmetic operator.
type pBin struct {
	op     sqlparser.BinaryOp
	at     *sqlparser.BinaryExpr // for error text, like the row path
	l, r   pnode
	intRes bool // statically int op int with op != / (stays integral)
	out    pcol
	ibuf   []int64
	fbuf   []float64
	nbuf   []bool
}

func (b *pBin) eval(cb *schema.ColBatch, sel []int, n int) (*pcol, int, error) {
	// Both children always evaluate (the row path evaluates both operands
	// before its NULL check, so a dividing-by-zero right side errors even
	// under a NULL left side). The earlier error position wins; on the same
	// row the left operand fails first.
	lc, kl, el := b.l.eval(cb, sel, n)
	rc, kr, er := b.r.eval(cb, sel, n)
	if el != nil || er != nil {
		if el != nil && (er == nil || kl <= kr) {
			return nil, kl, el
		}
		return nil, kr, er
	}
	o := &b.out
	if lc.allNull || rc.allNull {
		*o = pcol{konst: true, allNull: true}
		return o, -1, nil
	}
	o.allNull = false
	o.konst = lc.konst && rc.konst
	m := n
	if o.konst {
		m = 1
	}
	// Merge the null masks: NULL on either side nulls the result row.
	var ln, rn []bool
	if !lc.konst {
		ln = lc.nulls
	}
	if !rc.konst {
		rn = rc.nulls
	}
	switch {
	case ln == nil:
		o.nulls = rn
	case rn == nil:
		o.nulls = ln
	default:
		b.nbuf = b.nbuf[:0]
		for k := 0; k < m; k++ {
			b.nbuf = append(b.nbuf, ln[k] || rn[k])
		}
		o.nulls = b.nbuf
	}
	nulls := o.nulls
	if o.konst {
		nulls = nil
	}

	if b.intRes {
		o.isFloat = false
		b.ibuf = b.ibuf[:0]
		for k := 0; k < m; k++ {
			if nulls != nil && nulls[k] {
				b.ibuf = append(b.ibuf, 0)
				continue
			}
			x, y := lc.intAt(k), rc.intAt(k)
			var z int64
			switch b.op {
			case sqlparser.OpAdd:
				z = x + y
			case sqlparser.OpSub:
				z = x - y
			case sqlparser.OpMul:
				z = x * y
			case sqlparser.OpMod:
				if y == 0 {
					return nil, k, fmt.Errorf("%w: division by zero in %s", ErrQuery, b.at.SQL())
				}
				z = x % y
			}
			b.ibuf = append(b.ibuf, z)
		}
		o.ints = b.ibuf
		return o, -1, nil
	}

	o.isFloat = true
	b.fbuf = b.fbuf[:0]
	for k := 0; k < m; k++ {
		if nulls != nil && nulls[k] {
			b.fbuf = append(b.fbuf, 0)
			continue
		}
		x, y := lc.floatAt(k), rc.floatAt(k)
		var z float64
		switch b.op {
		case sqlparser.OpAdd:
			z = x + y
		case sqlparser.OpSub:
			z = x - y
		case sqlparser.OpMul:
			z = x * y
		case sqlparser.OpDiv:
			if y == 0 {
				return nil, k, fmt.Errorf("%w: division by zero in %s", ErrQuery, b.at.SQL())
			}
			z = x / y
		case sqlparser.OpMod:
			if y == 0 {
				return nil, k, fmt.Errorf("%w: division by zero in %s", ErrQuery, b.at.SQL())
			}
			z = math.Mod(x, y)
		}
		b.fbuf = append(b.fbuf, z)
	}
	o.floats = b.fbuf
	return o, -1, nil
}

// compilePExpr compiles one select-list expression into a projection node,
// recording every referenced load-layout column in *refs. ok=false declines
// (unsupported form or non-numeric static type).
func compilePExpr(e sqlparser.Expr, lb *binding, lrel *schema.Relation, refs *[]int) (pnode, ptype, bool) {
	switch x := e.(type) {
	case *sqlparser.Literal:
		switch x.Value.Type() {
		case schema.TypeInt:
			return &pLit{out: pcol{konst: true, ints: []int64{x.Value.AsInt()}}}, pInt, true
		case schema.TypeFloat:
			return &pLit{out: pcol{konst: true, isFloat: true, floats: []float64{x.Value.AsFloat()}}}, pFloat, true
		case schema.TypeNull:
			return &pLit{out: pcol{konst: true, allNull: true}}, pNull, true
		}
		return nil, 0, false
	case *sqlparser.ColumnRef:
		i, err := lb.resolve(x)
		if err != nil {
			return nil, 0, false
		}
		switch lrel.Columns[i].Type {
		case schema.TypeInt:
			*refs = append(*refs, i)
			return &pRef{col: i}, pInt, true
		case schema.TypeFloat:
			*refs = append(*refs, i)
			return &pRef{col: i, isFloat: true}, pFloat, true
		}
		return nil, 0, false
	case *sqlparser.UnaryExpr:
		if x.Op != sqlparser.UnaryNeg {
			return nil, 0, false
		}
		child, t, ok := compilePExpr(x.X, lb, lrel, refs)
		if !ok {
			return nil, 0, false
		}
		return &pNeg{x: child}, t, true
	case *sqlparser.BinaryExpr:
		switch x.Op {
		case sqlparser.OpAdd, sqlparser.OpSub, sqlparser.OpMul, sqlparser.OpDiv, sqlparser.OpMod:
		default:
			return nil, 0, false
		}
		l, lt, ok := compilePExpr(x.L, lb, lrel, refs)
		if !ok {
			return nil, 0, false
		}
		r, rt, ok := compilePExpr(x.R, lb, lrel, refs)
		if !ok {
			return nil, 0, false
		}
		t := pFloat
		switch {
		case lt == pNull || rt == pNull:
			t = pNull
		case lt == pInt && rt == pInt && x.Op != sqlparser.OpDiv:
			t = pInt
		}
		return &pBin{op: x.Op, at: x, l: l, r: r, intRes: t == pInt}, t, true
	}
	return nil, 0, false
}

// projItem is one output column of the vectorized projection: a pass-through
// of a loaded column, or a compiled expression node.
type projItem struct {
	pass int // load-layout position when >= 0
	node pnode
}

// openVecProject compiles a plain single-table SELECT whose expression items
// are all vectorizable. Declines when every item is a pass-through (the scan
// paths already handle pure column projection).
func (e *Engine) openVecProject(ctx context.Context, cs ColScanner, s *plan.Scan, blk *plan.Block) (*schema.Relation, schema.RowIterator, bool, error) {
	p, rel, ok := e.vecBlockScan(s, blk)
	if !ok {
		return nil, nil, false, nil
	}
	proj, err := buildProjector(blk.Items(), p.lb)
	if err != nil {
		return nil, nil, false, nil // row path reports the projection error
	}
	items := make([]projItem, len(proj.cols))
	var refs []int
	exprs := 0
	for i, c := range proj.cols {
		if c.starIdx >= 0 {
			items[i] = projItem{pass: c.starIdx}
			continue
		}
		node, _, ok := compilePExpr(c.expr, p.lb, p.lrel, &refs)
		if !ok {
			return nil, nil, false, nil
		}
		items[i] = projItem{pass: -1, node: node}
		exprs++
	}
	if exprs == 0 {
		return nil, nil, false, nil
	}

	ci, err := cs.OpenColScan(ctx, s.Table, p.colScan(rel.Arity()))
	if err != nil {
		return nil, nil, false, err
	}
	var out schema.RowIterator = &vecProjIter{
		src:     ci,
		ex:      newVecExec(p),
		proj:    proj,
		env:     (&rowEnv{b: p.lb}).reuse(),
		items:   items,
		results: make([]*pcol, len(items)),
		refs:    refs,
		orel:    proj.rel,
	}
	if blk.Limit != nil {
		n := int(blk.Limit.N)
		if n < 0 {
			n = 0
		}
		out = &limitIter{src: out, remaining: n}
	}
	return proj.rel, schema.WithContext(ctx, out), true, nil
}

// vecProjIter filters each batch with the compiled kernels, evaluates the
// projection item by item over the surviving candidates, and pivots only the
// final output rows.
type vecProjIter struct {
	src     schema.ColIterator
	ex      *vecExec
	proj    *projector // row fallback for batches with boxed vectors
	env     *rowEnv
	items   []projItem
	results []*pcol
	refs    []int
	orel    *schema.Relation
}

func (v *vecProjIter) Next() (schema.Rows, error) {
	for {
		cb, err := v.src.NextBatch()
		if err != nil {
			return nil, err
		}
		if cb == nil {
			return nil, nil
		}
		sel, err := v.ex.filterSel(cb)
		if err != nil {
			return nil, err
		}
		n := cb.N
		if sel != nil {
			n = len(sel)
		}
		if n == 0 {
			continue
		}
		boxed := false
		for _, c := range v.refs {
			if cb.Vecs[c].Boxed() {
				boxed = true
				break
			}
		}
		if boxed {
			// Heterogeneous column: static types don't hold, pivot the
			// survivors and project row-at-a-time.
			rows, err := v.rowFallback(cb, sel)
			if err != nil {
				return nil, err
			}
			return rows, nil
		}

		var pend error
		pendK := -1
		for ci, it := range v.items {
			if it.pass >= 0 {
				continue
			}
			pc, k, err := it.node.eval(cb, sel, n)
			if err != nil {
				if pend == nil || k < pendK {
					pend, pendK = err, k
				}
				continue
			}
			v.results[ci] = pc
		}
		if pend != nil {
			return nil, pend
		}

		w := len(v.items)
		vals := make([]schema.Value, n*w)
		out := make(schema.Rows, n)
		for i := range out {
			out[i] = schema.Row(vals[i*w : (i+1)*w : (i+1)*w])
		}
		for ci, it := range v.items {
			if it.pass >= 0 {
				cb.Vecs[it.pass].Fill(vals[ci:], w, cb.N, sel)
				continue
			}
			pc := v.results[ci]
			if pc.allNull {
				continue // zero Values are NULL already
			}
			if pc.isFloat {
				for k := 0; k < n; k++ {
					if !pc.nullAt(k) {
						vals[k*w+ci] = schema.Float(pc.floatAt(k))
					}
				}
			} else {
				for k := 0; k < n; k++ {
					if !pc.nullAt(k) {
						vals[k*w+ci] = schema.Int(pc.intAt(k))
					}
				}
			}
		}
		return out, nil
	}
}

func (v *vecProjIter) rowFallback(cb *schema.ColBatch, sel []int) (schema.Rows, error) {
	tmp := schema.ColBatch{Rel: v.ex.p.lrel, Vecs: cb.Vecs, N: cb.N, Sel: sel, View: cb.View}
	in := tmp.Rows()
	w := len(v.proj.cols)
	vals := make([]schema.Value, len(in)*w)
	out := make(schema.Rows, len(in))
	for i, r := range in {
		v.env.row = r
		orow := schema.Row(vals[i*w : (i+1)*w : (i+1)*w])
		if err := v.proj.projectInto(v.env, orow); err != nil {
			return nil, err
		}
		out[i] = orow
	}
	return out, nil
}

func (v *vecProjIter) Close() { v.src.Close() }
