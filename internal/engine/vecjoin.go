package engine

import (
	"context"

	"paradise/internal/plan"
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// Vectorized equi-join probe. The build (right) side is materialized into
// column vectors and indexed by canonical group-key bytes computed
// vector-at-a-time; the probe (left) side stays columnar through the scan's
// filter kernels, probes the index per surviving batch position, and both
// sides' payloads are gathered by selection vector into the combined output
// rows — one backing array per batch, no per-match row allocation.
//
// Decline-don't-approximate: the path requires an inner or left join whose
// ON clause is purely equi (no residual conjuncts — the row probe owns
// residual evaluation order), with the probe a bare base-table scan over a
// ColScanner whose predicate vectorizes. Anything else takes the row path,
// reusing the already-drained build side where possible.

// vecJoinCore is the shared immutable state of one compiled vectorized
// join: the probe scan plan, the partitioned build index, and the build
// payload vectors. Safe for concurrent probes after construction.
type vecJoinCore struct {
	p        *vecScanPlan
	arity    int // probe base-table arity, for loadCols
	ix       *joinIndex
	bvecs    []schema.ColVec
	eqL      []int // key positions in the probe batch layout
	leftJoin bool
	lw, rw   int
	out      []int // combined-layout positions to emit; identity unless retargeted
}

// retarget narrows the emitted columns to the given combined-layout
// positions, folding an all-column downstream projection into the gather
// (the combined wide rows are then never materialized). Must be called
// before the first probe.
func (c *vecJoinCore) retarget(out []int) { c.out = out }

// newVecJoinCore materializes the build side into vectors and builds the
// partitioned key index (one partition when workers < 2).
func newVecJoinCore(p *vecScanPlan, arity int, rb *binding, rrows schema.Rows, eqL, eqR []int, leftJoin bool, workers int) *vecJoinCore {
	bcols := make([]schema.Column, len(rb.cols))
	for i, c := range rb.cols {
		if c.sens {
			bcols[i] = schema.SensitiveCol(c.name, c.typ)
		} else {
			bcols[i] = schema.Col(c.name, c.typ)
		}
	}
	bb := schema.BatchFromRows(schema.NewRelation("", bcols...), rrows)
	core := &vecJoinCore{
		p:        p,
		arity:    arity,
		bvecs:    bb.Vecs,
		eqL:      eqL,
		leftJoin: leftJoin,
		lw:       p.m,
		rw:       len(rb.cols),
	}
	core.ix = buildColJoinIndex(bb.Vecs, len(rrows), eqR, workers)
	core.out = make([]int, core.lw+core.rw)
	for i := range core.out {
		core.out[i] = i
	}
	return core
}

// buildColJoinIndex is the columnar twin of buildJoinIndex: build keys come
// from the typed key vectors instead of boxed rows, vector-at-a-time.
func buildColJoinIndex(bvecs []schema.ColVec, n int, eqR []int, workers int) *joinIndex {
	if workers < 2 || n < 2*schema.DefaultBatchSize {
		m := make(map[string][]int, n)
		var kbuf []byte
		for i := 0; i < n; i++ {
			kbuf = kbuf[:0]
			for _, c := range eqR {
				kbuf = bvecs[c].AppendGroupKey(kbuf, i)
			}
			m[string(kbuf)] = append(m[string(kbuf)], i)
		}
		return &joinIndex{parts: []map[string][]int{m}}
	}

	keys := make([]string, n)
	hs := make([]uint32, n)
	parallelRanges(n, workers, func(lo, hi int) {
		var kbuf []byte
		for i := lo; i < hi; i++ {
			kbuf = kbuf[:0]
			for _, c := range eqR {
				kbuf = bvecs[c].AppendGroupKey(kbuf, i)
			}
			keys[i] = string(kbuf)
			hs[i] = fnv32a(keys[i])
		}
	})
	return &joinIndex{parts: partitionKeyIndex(keys, hs, workers)}
}

// vecJoinExec is one goroutine's probe state: the filter executor, the key
// scratch, and the match selection vectors (probe and build positions; a
// build position of -1 is a left-join null extension).
type vecJoinExec struct {
	core       *vecJoinCore
	ex         *vecExec
	kbuf       []byte
	lsel, rsel []int
}

func newVecJoinExec(core *vecJoinCore) *vecJoinExec {
	return &vecJoinExec{core: core, ex: newVecExec(core.p)}
}

// probe filters one probe batch, probes the build index for each survivor,
// and gathers the matched payloads into combined output rows. This is the
// operator's documented pivot boundary: everything upstream of the returned
// rows is columnar.
func (e *vecJoinExec) probe(cb *schema.ColBatch) (schema.Rows, error) {
	c := e.core
	sel, err := e.ex.filterSel(cb)
	if err != nil {
		return nil, err
	}
	lsel, rsel := e.lsel[:0], e.rsel[:0]
	probeOne := func(i int) {
		e.kbuf = e.kbuf[:0]
		for _, k := range c.eqL {
			e.kbuf = cb.Vecs[k].AppendGroupKey(e.kbuf, i)
		}
		matches := c.ix.lookup(e.kbuf)
		if len(matches) == 0 {
			if c.leftJoin {
				lsel = append(lsel, i)
				rsel = append(rsel, -1)
			}
			return
		}
		for _, ri := range matches {
			lsel = append(lsel, i)
			rsel = append(rsel, ri)
		}
	}
	if sel == nil {
		for i := 0; i < cb.N; i++ {
			probeOne(i)
		}
	} else {
		for _, i := range sel {
			probeOne(i)
		}
	}
	e.lsel, e.rsel = lsel, rsel

	// Never nil on success: a nil Rows in a morsel means worker exhaustion
	// to the exchange, and an all-filtered batch is not exhaustion.
	nout := len(lsel)
	if nout == 0 {
		return schema.Rows{}, nil
	}
	w := len(c.out)
	vals := make([]schema.Value, nout*w)
	rows := make(schema.Rows, nout)
	for k := range rows {
		rows[k] = vals[k*w : (k+1)*w : (k+1)*w]
	}
	for oc, pos := range c.out {
		if pos < c.lw {
			cb.Vecs[pos].Gather(vals[oc:], w, lsel)
		} else {
			c.bvecs[pos-c.lw].Gather(vals[oc:], w, rsel)
		}
	}
	return rows, nil
}

// vecJoinIter is the serial surface: one probe executor over a columnar
// scan.
type vecJoinIter struct {
	src schema.ColIterator
	ex  *vecJoinExec
}

func (v *vecJoinIter) Next() (schema.Rows, error) {
	for {
		cb, err := v.src.NextBatch()
		if err != nil {
			return nil, err
		}
		if cb == nil {
			return nil, nil
		}
		rows, err := v.ex.probe(cb)
		if err != nil {
			return nil, err
		}
		if len(rows) > 0 {
			return rows, nil
		}
	}
}

func (v *vecJoinIter) Close() { v.src.Close() }

// vecJoinMorsels is the parallel surface: each claim filters, probes and
// gathers its own batch on the claiming worker's goroutine against the
// shared immutable core.
type vecJoinMorsels struct {
	src  schema.ColMorselSource
	core *vecJoinCore
}

func (v *vecJoinMorsels) NextMorsel() (schema.Morsel, error) {
	cm, err := v.src.NextColMorsel()
	if err != nil {
		return schema.Morsel{Seq: cm.Seq}, err
	}
	if cm.Batch == nil {
		return schema.Morsel{}, nil
	}
	rows, err := newVecJoinExec(v.core).probe(cm.Batch)
	if err != nil {
		return schema.Morsel{Seq: cm.Seq}, err
	}
	return schema.Morsel{Seq: cm.Seq, Rows: rows}, nil
}

func (v *vecJoinMorsels) Close() { v.src.Close() }

// compileVecJoinProbe compiles the probe (left) side of a join for the
// vectorized path: it must be a bare base-table scan over a ColScanner
// whose predicate vectorizes. Returns the scan plan, the scan node, the
// projected probe binding and the base-table arity. ok=false (nothing
// opened, no I/O) sends the caller to the row path — including for unknown
// tables, so open-error ordering stays exactly the row path's.
func (e *Engine) compileVecJoinProbe(n plan.Node) (*vecScanPlan, *plan.Scan, *binding, int, bool) {
	s, ok := n.(*plan.Scan)
	if !ok {
		return nil, nil, nil, 0, false
	}
	if _, ok := e.src.(ColScanner); !ok {
		return nil, nil, nil, 0, false
	}
	rel, err := RelationSchema(e.src, s.Table)
	if err != nil {
		return nil, nil, nil, 0, false
	}
	qual := s.Table
	if s.Alias != "" {
		qual = s.Alias
	}
	full := bindingFromRelation(rel, qual)
	var conds []sqlparser.Expr
	if s.Predicate != nil {
		conds = append(conds, s.Predicate)
	}
	b := full
	cols := e.scanColumns(s, &plan.Block{}, full)
	if cols != nil {
		b = bindingFromRelation(rel.Project(cols), qual)
	}
	p, ok := compileVecScan(rel, qual, full, conds, cols)
	if !ok {
		return nil, nil, nil, 0, false
	}
	return p, s, b, rel.Arity(), true
}

// openVecJoin tries the vectorized probe for a serial join. ok=false means
// nothing was opened and the caller owns the row path. When ok is true the
// vec path owns the join — including the late declines (no equi key,
// residual ON conjuncts) discovered only after draining the build side,
// which fall back to the row probe over the already-drained build rows.
func (e *Engine) openVecJoin(ctx context.Context, j *plan.Join) (*binding, schema.RowIterator, bool, error) {
	if j.Type != sqlparser.JoinInner && j.Type != sqlparser.JoinLeft {
		return nil, nil, false, nil
	}
	p, s, pb, arity, ok := e.compileVecJoinProbe(j.Left)
	if !ok {
		return nil, nil, false, nil
	}
	rb, rit, err := e.openJoinSide(ctx, j.Right)
	if err != nil {
		return nil, nil, true, err
	}
	rrows, err := schema.DrainIterator(rit)
	if err != nil {
		return nil, nil, true, err
	}
	eqL, eqR, rest := splitEquiJoin(j.On, pb, rb)
	if len(eqL) == 0 || len(rest) > 0 {
		lb, lit, err := e.openJoinSide(ctx, j.Left)
		if err != nil {
			return nil, nil, true, err
		}
		cb, it := joinFromBuild(j, lb, lit, rb, rrows)
		return cb, it, true, nil
	}
	core := newVecJoinCore(p, arity, rb, rrows, eqL, eqR, j.Type == sqlparser.JoinLeft, 1)
	ci, err := e.src.(ColScanner).OpenColScan(ctx, s.Table, p.colScan(arity))
	if err != nil {
		return nil, nil, true, err
	}
	return pb.concat(rb), &vecJoinIter{src: ci, ex: newVecJoinExec(core)}, true, nil
}

// openParVecJoin is the parallel twin: the build index is built by
// partitioned parallel workers and the probe runs per-claim on columnar
// morsels. handled=false means nothing was opened.
func (e *Engine) openParVecJoin(ctx context.Context, j *plan.Join) (*parSeg, bool, error) {
	if j.Type != sqlparser.JoinInner && j.Type != sqlparser.JoinLeft {
		return nil, false, nil
	}
	p, s, pb, arity, ok := e.compileVecJoinProbe(j.Left)
	if !ok {
		return nil, false, nil
	}
	rb, rit, err := e.openJoinSide(ctx, j.Right)
	if err != nil {
		return nil, true, err
	}
	rrows, err := schema.DrainIterator(rit)
	if err != nil {
		return nil, true, err
	}
	eqL, eqR, rest := splitEquiJoin(j.On, pb, rb)
	if len(eqL) == 0 || len(rest) > 0 {
		left, lok, err := e.openParJoinSide(ctx, j.Left)
		if err != nil || !lok {
			return nil, lok, err
		}
		return e.parJoinFromBuild(j, left, rb, rrows), true, nil
	}
	core := newVecJoinCore(p, arity, rb, rrows, eqL, eqR, j.Type == sqlparser.JoinLeft, e.par)
	ms, err := e.src.(ColScanner).OpenColMorsels(ctx, s.Table, p.colScan(arity))
	if err != nil {
		return nil, true, err
	}
	return &parSeg{b: pb.concat(rb), ms: &vecJoinMorsels{src: ms, core: core}}, true, nil
}

// projOutMap flattens an all-plain-column projection into source positions;
// ok=false when any output column computes an expression.
func projOutMap(p *projector) ([]int, bool) {
	om := make([]int, len(p.cols))
	for i, c := range p.cols {
		if c.starIdx < 0 {
			return nil, false
		}
		om[i] = c.starIdx
	}
	return om, true
}
