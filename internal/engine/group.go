package engine

import (
	"fmt"

	"paradise/internal/plan"
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// group is one GROUP BY equivalence class.
type group struct {
	rep  schema.Row // representative (first) row for non-aggregate exprs
	rows schema.Rows
}

// evalGrouped handles blocks with GROUP BY, HAVING or aggregate functions in
// the select list. Output is one row per surviving group.
func (e *Engine) evalGrouped(blk *plan.Block, b *binding, rows schema.Rows) (*Result, error) {
	aggCalls, rel, err := groupSpecCompile(blk, b)
	if err != nil {
		return nil, err
	}
	groups, err := buildGroups(b, rows, blk.GroupBy())
	if err != nil {
		return nil, err
	}
	var out schema.Rows
	env := (&rowEnv{b: b}).reuse()
	for _, g := range groups {
		orow, keep, err := evalOneGroup(b, env, blk, aggCalls, g)
		if err != nil {
			return nil, err
		}
		if keep {
			out = append(out, orow)
		}
	}
	return &Result{Schema: rel, Rows: out}, nil
}

// groupSpecCompile validates a grouped block's select list, collects every
// aggregate call appearing in items, HAVING and ORDER BY, and builds the
// output schema. Shared by the serial and parallel grouped paths.
func groupSpecCompile(blk *plan.Block, b *binding) ([]*sqlparser.FuncCall, *schema.Relation, error) {
	items := blk.Items()
	for _, it := range items {
		if _, ok := it.Expr.(*sqlparser.Star); ok {
			return nil, nil, fmt.Errorf("%w: SELECT * is not valid in a grouped query", ErrQuery)
		}
		if sqlparser.ContainsWindow(it.Expr) {
			return nil, nil, fmt.Errorf("%w: window function over a grouped query is not supported", ErrQuery)
		}
	}

	var aggCalls []*sqlparser.FuncCall
	seen := make(map[string]bool)
	collect := func(ex sqlparser.Expr) {
		for _, f := range sqlparser.Aggregates(ex) {
			if !seen[f.SQL()] {
				seen[f.SQL()] = true
				aggCalls = append(aggCalls, f)
			}
		}
	}
	for _, it := range items {
		collect(it.Expr)
	}
	collect(blk.Having())
	for _, o := range blk.OrderBy() {
		collect(o.Expr)
	}

	rel := &schema.Relation{Columns: make([]schema.Column, len(items))}
	for i, it := range items {
		name := it.Alias
		if name == "" {
			name = outputName(it.Expr, i)
		}
		rel.Columns[i] = schema.Column{
			Name:      name,
			Type:      b.staticType(it.Expr),
			Sensitive: b.sensitiveExpr(it.Expr),
		}
	}
	return aggCalls, rel, nil
}

// evalOneGroup folds one group's aggregates (over its rows in input
// order), applies HAVING and evaluates the select list. keep is false when
// HAVING rejected the group. env must belong to the calling goroutine;
// groups are otherwise independent, which is what the parallel grouped
// path exploits.
func evalOneGroup(b *binding, env *rowEnv, blk *plan.Block, aggCalls []*sqlparser.FuncCall, g *group) (schema.Row, bool, error) {
	aggVals := make(map[string]schema.Value, len(aggCalls))
	for _, f := range aggCalls {
		v, err := evalAggregate(b, g.rows, f)
		if err != nil {
			return nil, false, err
		}
		aggVals[f.SQL()] = v
	}
	env.row, env.agg = g.rep, aggVals
	if having := blk.Having(); having != nil {
		ok, err := truthy(env, having)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, nil
		}
	}
	items := blk.Items()
	orow := make(schema.Row, len(items))
	for i, it := range items {
		v, err := evalExpr(env, it.Expr)
		if err != nil {
			return nil, false, err
		}
		orow[i] = v
	}
	return orow, true, nil
}

// buildGroups partitions rows by the GROUP BY expressions. With no GROUP BY
// the whole input is one group (even when empty, so that COUNT(*) over an
// empty relation yields 0).
func buildGroups(b *binding, rows schema.Rows, exprs []sqlparser.Expr) ([]*group, error) {
	if len(exprs) == 0 {
		g := &group{rows: rows}
		if len(rows) > 0 {
			g.rep = rows[0]
		}
		return []*group{g}, nil
	}
	index := make(map[string]*group)
	var order []*group
	env := (&rowEnv{b: b}).reuse()
	var kbuf []byte
	for _, r := range rows {
		env.row = r
		// Canonical byte keys are self-delimiting (see Value.AppendGroupKey),
		// so concatenation needs no separator; the scratch buffer makes the
		// per-row map lookup allocation-free.
		kbuf = kbuf[:0]
		for _, ex := range exprs {
			v, err := evalExpr(env, ex)
			if err != nil {
				return nil, err
			}
			kbuf = v.AppendGroupKey(kbuf)
		}
		g, ok := index[string(kbuf)]
		if !ok {
			g = &group{rep: r}
			index[string(kbuf)] = g
			order = append(order, g)
		}
		g.rows = append(g.rows, r)
	}
	return order, nil
}
