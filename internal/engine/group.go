package engine

import (
	"fmt"

	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// group is one GROUP BY equivalence class.
type group struct {
	rep  schema.Row // representative (first) row for non-aggregate exprs
	rows schema.Rows
}

// evalGrouped handles blocks with GROUP BY, HAVING or aggregate functions in
// the select list. Output is one row per surviving group.
func (e *Engine) evalGrouped(spec *blockSpec, b *binding, rows schema.Rows) (*Result, error) {
	for _, it := range spec.items {
		if _, ok := it.Expr.(*sqlparser.Star); ok {
			return nil, fmt.Errorf("%w: SELECT * is not valid in a grouped query", ErrQuery)
		}
		if sqlparser.ContainsWindow(it.Expr) {
			return nil, fmt.Errorf("%w: window function over a grouped query is not supported", ErrQuery)
		}
	}

	groups, err := buildGroups(b, rows, spec.groupBy)
	if err != nil {
		return nil, err
	}

	// Collect every aggregate call appearing in items, HAVING and ORDER BY.
	var aggCalls []*sqlparser.FuncCall
	seen := make(map[string]bool)
	collect := func(ex sqlparser.Expr) {
		for _, f := range sqlparser.Aggregates(ex) {
			if !seen[f.SQL()] {
				seen[f.SQL()] = true
				aggCalls = append(aggCalls, f)
			}
		}
	}
	for _, it := range spec.items {
		collect(it.Expr)
	}
	collect(spec.having)
	for _, o := range spec.orderBy {
		collect(o.Expr)
	}

	// Output schema.
	rel := &schema.Relation{Columns: make([]schema.Column, len(spec.items))}
	for i, it := range spec.items {
		name := it.Alias
		if name == "" {
			name = outputName(it.Expr, i)
		}
		rel.Columns[i] = schema.Column{
			Name:      name,
			Type:      b.staticType(it.Expr),
			Sensitive: b.sensitiveExpr(it.Expr),
		}
	}

	var out schema.Rows
	env := (&rowEnv{b: b}).reuse()
	for _, g := range groups {
		aggVals := make(map[string]schema.Value, len(aggCalls))
		for _, f := range aggCalls {
			v, err := evalAggregate(b, g.rows, f)
			if err != nil {
				return nil, err
			}
			aggVals[f.SQL()] = v
		}
		env.row, env.agg = g.rep, aggVals
		if spec.having != nil {
			ok, err := truthy(env, spec.having)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		orow := make(schema.Row, len(spec.items))
		for i, it := range spec.items {
			v, err := evalExpr(env, it.Expr)
			if err != nil {
				return nil, err
			}
			orow[i] = v
		}
		out = append(out, orow)
	}
	return &Result{Schema: rel, Rows: out}, nil
}

// buildGroups partitions rows by the GROUP BY expressions. With no GROUP BY
// the whole input is one group (even when empty, so that COUNT(*) over an
// empty relation yields 0).
func buildGroups(b *binding, rows schema.Rows, exprs []sqlparser.Expr) ([]*group, error) {
	if len(exprs) == 0 {
		g := &group{rows: rows}
		if len(rows) > 0 {
			g.rep = rows[0]
		}
		return []*group{g}, nil
	}
	index := make(map[string]*group)
	var order []*group
	env := (&rowEnv{b: b}).reuse()
	for _, r := range rows {
		env.row = r
		key := ""
		for _, ex := range exprs {
			v, err := evalExpr(env, ex)
			if err != nil {
				return nil, err
			}
			key += v.GroupKey() + "\x1f"
		}
		g, ok := index[key]
		if !ok {
			g = &group{rep: r}
			index[key] = g
			order = append(order, g)
		}
		g.rows = append(g.rows, r)
	}
	return order, nil
}
