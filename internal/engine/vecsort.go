package engine

import (
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// sortKeys is the typed ORDER BY machinery: one schema.KeyCol per order
// item, appended in row order, compared unboxed. It mirrors lessKeys /
// equalKeys exactly — schema.KeyCol.Compare is pairwise-identical to
// compareForSort — so swapping it under sort.SliceStable cannot change any
// result, only the cost per comparison.
type sortKeys struct {
	cols []schema.KeyCol
	desc []bool
}

func newSortKeys(items []sqlparser.OrderItem) *sortKeys {
	ks := &sortKeys{cols: make([]schema.KeyCol, len(items)), desc: make([]bool, len(items))}
	for i, it := range items {
		ks.desc[i] = it.Desc
	}
	return ks
}

// less orders rows a and b like lessKeys orders their key tuples.
func (ks *sortKeys) less(a, b int) bool {
	for i := range ks.cols {
		c := ks.cols[i].Compare(a, b)
		if c == 0 {
			continue
		}
		if ks.desc[i] {
			return c > 0
		}
		return c < 0
	}
	return false
}

// equal reports whether rows a and b are peers (all keys tie).
func (ks *sortKeys) equal(a, b int) bool {
	for i := range ks.cols {
		if ks.cols[i].Compare(a, b) != 0 {
			return false
		}
	}
	return true
}

// hasNaN reports whether any key column saw a float NaN. NaN ties with
// every float-comparable value, which breaks transitivity — less is then
// not a strict weak order. The full stable sort still matches the row path
// exactly (both run the identical comparator through sort.SliceStable on
// the same input order), but selection shortcuts like top-K would diverge,
// so they must decline.
func (ks *sortKeys) hasNaN() bool {
	for i := range ks.cols {
		if ks.cols[i].HasNaN() {
			return true
		}
	}
	return false
}

// lessStrict extends less to a strict total order by an original-index
// tiebreak. Valid only when hasNaN() is false: less is then a strict weak
// order, and under the tiebreak the first k elements of the full stable
// sort are exactly the k smallest under lessStrict, in lessStrict order.
func (ks *sortKeys) lessStrict(a, b int) bool {
	for i := range ks.cols {
		c := ks.cols[i].Compare(a, b)
		if c == 0 {
			continue
		}
		if ks.desc[i] {
			return c > 0
		}
		return c < 0
	}
	return a < b
}

// topK selects the first k rows of the full stable sort of n rows without
// sorting all n, using a bounded max-heap under lessStrict (the heap root
// is the largest retained row; anything beating it displaces it). The
// result is in final output order. Caller guarantees 0 <= k < n and
// !hasNaN().
func (ks *sortKeys) topK(n, k int) []int {
	if k == 0 {
		return nil
	}
	h := make([]int, k)
	for i := 0; i < k; i++ {
		h[i] = i
	}
	for i := k/2 - 1; i >= 0; i-- {
		ks.siftDown(h, i)
	}
	for i := k; i < n; i++ {
		if ks.lessStrict(i, h[0]) {
			h[0] = i
			ks.siftDown(h, 0)
		}
	}
	// Heapsort extraction: repeatedly swap the max to the end. The array
	// ends up ascending under lessStrict — the final output order.
	for m := len(h) - 1; m > 0; m-- {
		h[0], h[m] = h[m], h[0]
		ks.siftDown(h[:m], 0)
	}
	return h
}

func (ks *sortKeys) siftDown(h []int, i int) {
	for {
		c := 2*i + 1
		if c >= len(h) {
			return
		}
		if r := c + 1; r < len(h) && ks.lessStrict(h[c], h[r]) {
			c = r
		}
		if !ks.lessStrict(h[i], h[c]) {
			return
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
}
