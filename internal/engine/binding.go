package engine

import (
	"fmt"
	"strings"

	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// bcol is one column visible to expression resolution: its optional table
// qualifier (alias or base-table name), its name and static type.
type bcol struct {
	qual string
	name string
	typ  schema.Type
	sens bool
}

// binding is the set of columns produced by a FROM clause (or by a derived
// table) against which expressions resolve.
type binding struct {
	cols []bcol
}

// resolve finds the positional index of a column reference. Plain-identifier
// matching is case-insensitive (the parser lower-cases unquoted names).
func (b *binding) resolve(c *sqlparser.ColumnRef) (int, error) {
	name := strings.ToLower(c.Name)
	qual := strings.ToLower(c.Table)
	found := -1
	for i, col := range b.cols {
		if strings.ToLower(col.name) != name {
			continue
		}
		if qual != "" && strings.ToLower(col.qual) != qual {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("%w: column %q is ambiguous", ErrQuery, c.SQL())
		}
		found = i
	}
	if found < 0 {
		return -1, fmt.Errorf("%w: %q not found in %s", schema.ErrUnknownColumn, c.SQL(), b.describe())
	}
	return found, nil
}

// has reports whether the reference resolves without error.
func (b *binding) has(c *sqlparser.ColumnRef) bool {
	_, err := b.resolve(c)
	return err == nil
}

func (b *binding) describe() string {
	parts := make([]string, len(b.cols))
	for i, c := range b.cols {
		if c.qual != "" {
			parts[i] = c.qual + "." + c.name
		} else {
			parts[i] = c.name
		}
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// starIndexes returns the column positions a (possibly qualified) star
// expands to.
func (b *binding) starIndexes(s *sqlparser.Star) ([]int, error) {
	var out []int
	qual := strings.ToLower(s.Table)
	for i, c := range b.cols {
		if qual == "" || strings.ToLower(c.qual) == qual {
			out = append(out, i)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: %s matches no columns in %s", ErrQuery, s.SQL(), b.describe())
	}
	return out, nil
}

// bindingFromRelation lifts a base-table schema into a binding under the
// given qualifier.
func bindingFromRelation(rel *schema.Relation, qual string) *binding {
	b := &binding{cols: make([]bcol, rel.Arity())}
	for i, c := range rel.Columns {
		b.cols[i] = bcol{qual: qual, name: c.Name, typ: c.Type, sens: c.Sensitive}
	}
	return b
}

// concat merges two bindings (for joins).
func (b *binding) concat(o *binding) *binding {
	out := &binding{cols: make([]bcol, 0, len(b.cols)+len(o.cols))}
	out.cols = append(out.cols, b.cols...)
	out.cols = append(out.cols, o.cols...)
	return out
}

// relation converts a binding into an output relation schema.
func (b *binding) relation(name string) *schema.Relation {
	rel := &schema.Relation{Name: name, Columns: make([]schema.Column, len(b.cols))}
	for i, c := range b.cols {
		rel.Columns[i] = schema.Column{Name: c.name, Type: c.typ, Sensitive: c.sens}
	}
	return rel
}

// staticType infers the type an expression will evaluate to, used to type
// derived-table columns. Unknown cases degrade to TypeNull, which the
// runtime tolerates because values carry their own types.
func (b *binding) staticType(e sqlparser.Expr) schema.Type {
	switch x := e.(type) {
	case *sqlparser.Literal:
		return x.Value.Type()
	case *sqlparser.ColumnRef:
		if i, err := b.resolve(x); err == nil {
			return b.cols[i].typ
		}
		return schema.TypeNull
	case *sqlparser.BinaryExpr:
		if x.Op.Comparison() || x.Op == sqlparser.OpAnd || x.Op == sqlparser.OpOr {
			return schema.TypeBool
		}
		if x.Op == sqlparser.OpConcat {
			return schema.TypeString
		}
		lt, rt := b.staticType(x.L), b.staticType(x.R)
		if x.Op == sqlparser.OpDiv || lt == schema.TypeFloat || rt == schema.TypeFloat {
			return schema.TypeFloat
		}
		if lt == schema.TypeInt && rt == schema.TypeInt {
			return schema.TypeInt
		}
		return schema.TypeFloat
	case *sqlparser.UnaryExpr:
		if x.Op == sqlparser.UnaryNot {
			return schema.TypeBool
		}
		return b.staticType(x.X)
	case *sqlparser.IsNull, *sqlparser.Between, *sqlparser.InList:
		return schema.TypeBool
	case *sqlparser.CaseExpr:
		if len(x.Whens) > 0 {
			return b.staticType(x.Whens[0].Then)
		}
		return schema.TypeNull
	case *sqlparser.FuncCall:
		return b.funcType(x)
	default:
		return schema.TypeNull
	}
}

func (b *binding) funcType(f *sqlparser.FuncCall) schema.Type {
	switch f.Name {
	case "count", "row_number", "rank", "dense_rank", "length", "sign":
		return schema.TypeInt
	case "avg", "stddev", "variance", "regr_intercept", "regr_slope", "regr_r2",
		"corr", "sqrt", "power", "exp", "ln", "log10", "round", "floor", "ceil":
		return schema.TypeFloat
	case "sum", "min", "max", "abs", "lag", "lead", "first_value", "last_value",
		"coalesce", "nullif", "least", "greatest":
		if len(f.Args) > 0 {
			return b.staticType(f.Args[0])
		}
		return schema.TypeNull
	case "upper", "lower", "substr", "trim", "concat":
		return schema.TypeString
	case "like":
		return schema.TypeBool
	default:
		return schema.TypeNull
	}
}

// sensitiveExpr reports whether the expression touches any column flagged
// Sensitive in the base schemas; derived columns propagate the flag.
func (b *binding) sensitiveExpr(e sqlparser.Expr) bool {
	out := false
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
		if c, ok := x.(*sqlparser.ColumnRef); ok {
			if i, err := b.resolve(c); err == nil && b.cols[i].sens {
				out = true
			}
		}
		return true
	})
	return out
}

// outputName derives the column name for a select item without alias.
func outputName(e sqlparser.Expr, idx int) string {
	switch x := e.(type) {
	case *sqlparser.ColumnRef:
		return x.Name
	case *sqlparser.FuncCall:
		return x.Name
	default:
		return fmt.Sprintf("col%d", idx+1)
	}
}
