package engine

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"paradise/internal/plan"
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
	"paradise/internal/storage"
)

// mustPlan lowers a SQL string into its logical plan.
func mustPlan(t testing.TB, sql string) plan.Node {
	t.Helper()
	sel, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	root, err := plan.FromAST(sel)
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// parallelCorpus is the serial-vs-parallel equivalence corpus: the engine
// benchmark queries plus shapes that stress every parallel operator
// (probe residuals, LEFT JOIN null-extension, DISTINCT merges, grouped
// merges, breakers over parallel input, nested blocks, empty groups).
var parallelCorpus = []string{
	"SELECT * FROM d WHERE z < 1",
	"SELECT x + y AS s, z * 2 FROM d WHERE x > y",
	"SELECT cell, AVG(z) AS za, COUNT(*) AS n FROM d GROUP BY cell HAVING COUNT(*) > 10",
	"SELECT SUM(z) OVER (PARTITION BY cell ORDER BY t) FROM d",
	"SELECT d.x, cells.label FROM d JOIN cells ON d.cell = cells.cell WHERE d.z < 1",
	"SELECT REGR_SLOPE(y, x) AS m, REGR_INTERCEPT(y, x) AS b0, CORR(y, x) AS r FROM d",
	"SELECT x, y FROM d ORDER BY y DESC, x LIMIT 25",
	"SELECT DISTINCT cell FROM d",
	"SELECT s.cell, s.za FROM (SELECT cell, AVG(z) AS za FROM d GROUP BY cell) AS s WHERE s.za > 0.9",
	"SELECT x FROM d LIMIT 10",
	"SELECT COUNT(*) AS n FROM d WHERE z > 100",
	"SELECT cell, COUNT(*) AS n FROM d WHERE z > 100 GROUP BY cell",
	"SELECT AVG(x) AS ax, SUM(y) AS sy, MIN(z) AS mz, MAX(z) AS xz, STDDEV(x) AS sd FROM d",
	"SELECT d.t, cells.label FROM d LEFT JOIN cells ON d.cell = cells.cell AND cells.cell < 8 WHERE d.z < 0.5",
	"SELECT a.cell, b.cell FROM cells AS a JOIN cells AS b ON a.cell = b.cell WHERE a.cell < 5",
	"SELECT DISTINCT cell, t / 1000 AS bucket FROM d WHERE z < 1 ORDER BY cell, bucket LIMIT 40",
	"SELECT cell, COUNT(*) AS n FROM d GROUP BY cell ORDER BY n DESC, cell LIMIT 5",
	"SELECT x, ROW_NUMBER() OVER (ORDER BY t) AS rn FROM d WHERE cell = 3",
}

// TestParallelEquivalence pins the tentpole guarantee: a parallel pipeline
// is row-identical — same rows, same order, bit-identical values (floats
// included, because per-group folds and projections visit rows in serial
// order) — to the serial pipeline, over the whole corpus and several
// worker counts.
func TestParallelEquivalence(t *testing.T) {
	st := benchStore(t, 10_000)
	for _, workers := range []int{2, 4, 7} {
		for _, sql := range parallelCorpus {
			serial, err := New(st).Query(context.Background(), sql)
			if err != nil {
				t.Fatalf("serial %q: %v", sql, err)
			}
			par, err := New(st).WithParallelism(workers).Query(context.Background(), sql)
			if err != nil {
				t.Fatalf("parallel(%d) %q: %v", workers, sql, err)
			}
			if !reflect.DeepEqual(serial.Schema.ColumnNames(), par.Schema.ColumnNames()) {
				t.Fatalf("parallel(%d) %q: schema %v != %v", workers, sql,
					par.Schema.ColumnNames(), serial.Schema.ColumnNames())
			}
			if len(serial.Rows) != len(par.Rows) {
				t.Fatalf("parallel(%d) %q: %d rows != %d", workers, sql,
					len(par.Rows), len(serial.Rows))
			}
			if !reflect.DeepEqual(serial.Rows, par.Rows) {
				t.Fatalf("parallel(%d) %q: rows differ from serial", workers, sql)
			}
		}
	}
}

// TestParallelEquivalenceEmptyInput covers the empty-relation edge: the
// implicit group of an aggregate without GROUP BY must survive the
// parallel merge (COUNT(*) over nothing is 0, not no-rows).
func TestParallelEquivalenceEmptyInput(t *testing.T) {
	st := storage.NewStore()
	st.Create(schema.NewRelation("e",
		schema.Col("a", schema.TypeInt), schema.Col("b", schema.TypeFloat)))
	for _, sql := range []string{
		"SELECT COUNT(*) AS n FROM e",
		"SELECT SUM(b) AS s FROM e",
		"SELECT a, COUNT(*) AS n FROM e GROUP BY a",
		"SELECT DISTINCT a FROM e",
		"SELECT * FROM e WHERE a > 0",
	} {
		serial, err := New(st).Query(context.Background(), sql)
		if err != nil {
			t.Fatalf("serial %q: %v", sql, err)
		}
		par, err := New(st).WithParallelism(4).Query(context.Background(), sql)
		if err != nil {
			t.Fatalf("parallel %q: %v", sql, err)
		}
		if !reflect.DeepEqual(serial.Rows, par.Rows) {
			t.Fatalf("%q: parallel rows %v != serial %v", sql, par.Rows, serial.Rows)
		}
	}
}

// atomicCountingSource counts rows handed out by its scans with an atomic
// counter, so parallel workers can be observed race-free.
type atomicCountingSource struct {
	st      *storage.Store
	scanned atomic.Int64
}

func (c *atomicCountingSource) Relation(name string) (*schema.Relation, schema.Rows, error) {
	return c.st.Relation(name)
}

func (c *atomicCountingSource) RelationSchema(name string) (*schema.Relation, error) {
	return c.st.RelationSchema(name)
}

func (c *atomicCountingSource) OpenScan(ctx context.Context, name string, sc schema.Scan) (schema.RowIterator, error) {
	it, err := c.st.OpenScan(ctx, name, sc)
	if err != nil {
		return nil, err
	}
	return &atomicCountingIter{src: it, n: &c.scanned}, nil
}

type atomicCountingIter struct {
	src schema.RowIterator
	n   *atomic.Int64
}

func (c *atomicCountingIter) Next() (schema.Rows, error) {
	b, err := c.src.Next()
	c.n.Add(int64(len(b)))
	return b, err
}

func (c *atomicCountingIter) Close() { c.src.Close() }

// TestParallelCancellationStopsScan: cancelling the context mid-stream
// stops the storage reads within one batch per worker (plus the bounded
// exchange look-ahead) — the bulk of a large table is never read.
func TestParallelCancellationStopsScan(t *testing.T) {
	const total = 50_000
	src := &atomicCountingSource{st: benchStore(t, total)}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	eng := New(src).WithParallelism(4)
	root := mustPlan(t, "SELECT * FROM d WHERE z < 100")
	_, it, err := eng.Open(ctx, root)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	if _, err := it.Next(); err != nil {
		t.Fatalf("first batch: %v", err)
	}
	cancel()
	var last error
	for {
		b, err := it.Next()
		if err != nil {
			last = err
			break
		}
		if b == nil {
			break
		}
	}
	if !errors.Is(last, context.Canceled) {
		t.Fatalf("want context.Canceled after cancel, got %v", last)
	}
	// Bound: consumed batches + one in-flight batch per worker + the
	// exchange window, all in batch units — far below the full table.
	if n := src.scanned.Load(); n > 10_000 {
		t.Fatalf("scanned %d of %d rows after mid-stream cancel; reads did not stop", n, total)
	}
}

// TestParallelCancelBeforePull: a pipeline opened under an already
// cancelled context reads nothing at all from storage.
func TestParallelCancelBeforePull(t *testing.T) {
	src := &atomicCountingSource{st: benchStore(t, 10_000)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, it, err := New(src).WithParallelism(4).Open(ctx, mustPlan(t, "SELECT * FROM d WHERE z < 1"))
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if _, err := it.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := src.scanned.Load(); n != 0 {
		t.Fatalf("cancelled-before-pull pipeline read %d rows from storage", n)
	}
}

// TestParallelErrorPosition: a mid-stream source error surfaces through
// the exchange exactly once, as the same error serial execution reports.
func TestParallelErrorPosition(t *testing.T) {
	errBoom := errors.New("boom")
	st := benchStore(t, 10_000)
	for _, workers := range []int{1, 4} {
		src := &failingSource{st: st, failAfter: 5, err: errBoom}
		_, err := New(src).WithParallelism(workers).Query(context.Background(), "SELECT * FROM d WHERE z < 1")
		if !errors.Is(err, errBoom) {
			t.Fatalf("workers=%d: want boom error, got %v", workers, err)
		}
	}
}

// failingSource injects an error after failAfter batches of any scan.
type failingSource struct {
	st        *storage.Store
	failAfter int
	err       error
}

func (f *failingSource) Relation(name string) (*schema.Relation, schema.Rows, error) {
	return f.st.Relation(name)
}

func (f *failingSource) RelationSchema(name string) (*schema.Relation, error) {
	return f.st.RelationSchema(name)
}

func (f *failingSource) OpenScan(ctx context.Context, name string, sc schema.Scan) (schema.RowIterator, error) {
	it, err := f.st.OpenScan(ctx, name, sc)
	if err != nil {
		return nil, err
	}
	return &failingIter{src: it, left: f.failAfter, err: f.err}, nil
}

type failingIter struct {
	src  schema.RowIterator
	left int
	err  error
}

func (f *failingIter) Next() (schema.Rows, error) {
	if f.left <= 0 {
		return nil, f.err
	}
	f.left--
	return f.src.Next()
}

func (f *failingIter) Close() { f.src.Close() }

// TestParallelConcurrentOpens: one engine, one plan, many goroutines each
// opening and draining their own parallel pipeline — plans are read-only
// under Open, and pipelines must not share mutable state.
func TestParallelConcurrentOpens(t *testing.T) {
	st := benchStore(t, 5_000)
	eng := New(st).WithParallelism(3)
	root := mustPlan(t, "SELECT cell, COUNT(*) AS n FROM d WHERE z < 1 GROUP BY cell")
	want, err := eng.SelectPlan(context.Background(), root)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := eng.SelectPlan(context.Background(), root)
			if err != nil {
				errs[g] = err
				return
			}
			if !reflect.DeepEqual(res.Rows, want.Rows) {
				errs[g] = errors.New("rows differ across concurrent opens")
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
