package engine

import (
	"testing"

	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// Tests for OutputSchema — the row-free schema derivation the rewriter and
// fragmenter rely on.

func mustSelect(t *testing.T, q string) *sqlparser.Select {
	t.Helper()
	sel, err := sqlparser.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	return sel
}

func TestOutputSchemaSimple(t *testing.T) {
	e := New(testStore(t))
	rel, err := e.OutputSchema(mustSelect(t, "SELECT x, y FROM d"))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Arity() != 2 || rel.Columns[0].Name != "x" || rel.Columns[0].Type != schema.TypeFloat {
		t.Fatalf("schema = %s", rel)
	}
}

func TestOutputSchemaStarExpansion(t *testing.T) {
	e := New(testStore(t))
	rel, err := e.OutputSchema(mustSelect(t, "SELECT * FROM people"))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Arity() != 3 {
		t.Fatalf("arity = %d", rel.Arity())
	}
	if !rel.Columns[0].Sensitive {
		t.Fatal("sensitivity must survive star expansion")
	}
}

func TestOutputSchemaAliasesAndTypes(t *testing.T) {
	e := New(testStore(t))
	rel, err := e.OutputSchema(mustSelect(t,
		"SELECT x + y AS s, COUNT(*) AS n, AVG(z) FROM d GROUP BY t"))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Columns[0].Name != "s" || rel.Columns[0].Type != schema.TypeFloat {
		t.Fatalf("s: %v", rel.Columns[0])
	}
	if rel.Columns[1].Name != "n" || rel.Columns[1].Type != schema.TypeInt {
		t.Fatalf("n: %v", rel.Columns[1])
	}
	if rel.Columns[2].Name != "avg" || rel.Columns[2].Type != schema.TypeFloat {
		t.Fatalf("avg: %v", rel.Columns[2])
	}
}

func TestOutputSchemaNested(t *testing.T) {
	e := New(testStore(t))
	rel, err := e.OutputSchema(mustSelect(t,
		"SELECT s FROM (SELECT x + y AS s, z FROM d) WHERE z < 1"))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Arity() != 1 || rel.Columns[0].Name != "s" {
		t.Fatalf("schema = %s", rel)
	}
}

func TestOutputSchemaJoin(t *testing.T) {
	e := New(testStore(t))
	rel, err := e.OutputSchema(mustSelect(t,
		"SELECT p.name, r.floor FROM people AS p JOIN rooms AS r ON p.room = r.room"))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Arity() != 2 || rel.Columns[1].Type != schema.TypeInt {
		t.Fatalf("schema = %s", rel)
	}
}

func TestOutputSchemaUnknownTable(t *testing.T) {
	e := New(testStore(t))
	if _, err := e.OutputSchema(mustSelect(t, "SELECT a FROM nosuch")); err == nil {
		t.Fatal("unknown table must error")
	}
}

func TestEvalExprHelpers(t *testing.T) {
	rel := schema.NewRelation("s",
		schema.Col("a", schema.TypeInt), schema.Col("b", schema.TypeInt))
	row := schema.Row{schema.Int(3), schema.Int(4)}

	e, err := sqlparser.ParseExpr("a + b")
	if err != nil {
		t.Fatal(err)
	}
	v, err := EvalExpr(rel, row, e)
	if err != nil || v.AsInt() != 7 {
		t.Fatalf("EvalExpr = %v, %v", v, err)
	}

	p, err := sqlparser.ParseExpr("a < b")
	if err != nil {
		t.Fatal(err)
	}
	ok, err := EvalPredicate(rel, row, p)
	if err != nil || !ok {
		t.Fatalf("EvalPredicate = %v, %v", ok, err)
	}

	agg := &sqlparser.FuncCall{Name: "sum", Args: []sqlparser.Expr{&sqlparser.ColumnRef{Name: "a"}}}
	sv, err := EvalAggregate(rel, schema.Rows{row, row, row}, agg)
	if err != nil || sv.AsInt() != 9 {
		t.Fatalf("EvalAggregate = %v, %v", sv, err)
	}
}
