package engine

import (
	"context"

	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// ColScanner is the optional source capability behind vectorized scans: a
// source that can serve column batches (and columnar morsels) directly, so
// filter kernels run over typed vectors and rejected rows are never pivoted
// to row form. storage.Store implements it; fragment, stream and network
// sources do not, and those scans silently stay on the row path.
type ColScanner interface {
	// OpenColScan opens a serial columnar scan over the named relation with
	// the given projection, structured pruning predicate and batch size.
	OpenColScan(ctx context.Context, name string, sc schema.ColScan) (schema.ColIterator, error)
	// OpenColMorsels is the parallel twin: a partitioned columnar scan
	// safe for concurrent claims.
	OpenColMorsels(ctx context.Context, name string, sc schema.ColScan) (schema.ColMorselSource, error)
}

// vecScanPlan is a compiled vectorized scan: which columns to load, the
// kernelized prefix of the filter conjuncts, and the row-at-a-time residual
// for whatever the kernels cannot express.
//
// The load layout is the m output columns first (in projection order),
// followed by any extra columns only the residual reads. Batches arrive in
// this layout; kernels and the residual address positions in it, and the
// output pivot takes Vecs[:m].
type vecScanPlan struct {
	// load is the table column positions to fetch, output columns first.
	load []int
	// m is the output width: Vecs[:m] of a loaded batch is the result layout.
	m int
	// kernels is the compiled prefix of the filter conjuncts, in order.
	kernels []kernel
	// preds is the same prefix restated over base-table positions: the
	// pruning hint storage consults against segment zone maps.
	preds []schema.ColPred
	// residual is the AND of the remaining conjuncts (nil when all conjuncts
	// compiled); evaluated row-at-a-time on kernel survivors.
	residual sqlparser.Expr
	// lb binds the load layout for residual evaluation; lrel is its schema;
	// orel is the output schema (load[:m]).
	lb   *binding
	lrel *schema.Relation
	orel *schema.Relation
}

// compileVecScan builds a vectorized plan for a base-table scan with the
// given filter conjuncts and output projection (outCols nil = full width).
// It reports ok=false when the scan cannot be vectorized faithfully (an
// unresolvable residual column); the caller then uses the row path.
//
// Kernels take the longest compilable *prefix* of the conjunct list: a
// kernelizable conjunct behind a non-kernelizable one must not run early,
// because the row path would have short-circuited rows the earlier conjunct
// rejects or errors on.
func compileVecScan(rel *schema.Relation, qual string, full *binding, conds []sqlparser.Expr, outCols []int) (*vecScanPlan, bool) {
	p := &vecScanPlan{}
	if outCols == nil {
		p.load = make([]int, rel.Arity())
		for i := range p.load {
			p.load[i] = i
		}
	} else {
		p.load = append([]int(nil), outCols...)
	}
	p.m = len(p.load)

	// pos resolves a column reference to its position in the load layout,
	// extending the layout for residual-only columns.
	pos := func(c *sqlparser.ColumnRef) (int, bool) {
		ti, err := full.resolve(c)
		if err != nil {
			return -1, false
		}
		for i, t := range p.load {
			if t == ti {
				return i, true
			}
		}
		p.load = append(p.load, ti)
		return len(p.load) - 1, true
	}

	conjs := sqlparser.Conjuncts(sqlparser.AndAll(conds))
	for ci, c := range conjs {
		k, ok := compileConjKernel(c, pos)
		if !ok {
			p.residual = sqlparser.AndAll(conjs[ci:])
			break
		}
		p.kernels = append(p.kernels, k)
	}
	p.preds = prunePreds(full, conjs[:len(p.kernels)])
	if p.residual != nil {
		// Every residual column must live in the load layout.
		for _, c := range sqlparser.ColumnRefs(p.residual) {
			if _, ok := pos(c); !ok {
				return nil, false
			}
		}
	}

	p.lrel = rel.Project(p.load)
	p.orel = rel.Project(p.load[:p.m])
	p.lb = bindingFromRelation(p.lrel, qual)
	return p, true
}

// loadCols is the column set to request from the source: nil when the load
// layout is the full identity, which lets the store serve full-width
// windows with their row view attached.
func (p *vecScanPlan) loadCols(arity int) []int {
	if len(p.load) != arity {
		return p.load
	}
	for i, c := range p.load {
		if c != i {
			return p.load
		}
	}
	return nil
}

// colScan packages the plan's load layout and pruning predicate as the
// pushed-down columnar scan request.
func (p *vecScanPlan) colScan(arity int) schema.ColScan {
	return schema.ColScan{
		Columns:   p.loadCols(arity),
		Predicate: p.preds,
		BatchSize: schema.DefaultBatchSize,
	}
}

// vecExec runs a compiled scan plan over column batches. One instance is
// single-goroutine state (selection scratch, residual env); parallel
// morsels allocate one per claim.
type vecExec struct {
	p    *vecScanPlan
	a, b selBuf
	env  *rowEnv
}

func newVecExec(p *vecScanPlan) *vecExec {
	x := &vecExec{p: p, env: (&rowEnv{b: p.lb}).reuse()}
	// The scratch selections start non-nil: a computed selection that ends
	// up empty must stay distinguishable from ColBatch's nil-means-all-rows.
	x.a.sel = make([]int, 0, schema.DefaultBatchSize)
	x.b.sel = make([]int, 0, schema.DefaultBatchSize)
	return x
}

// filterSel runs the kernel chain and residual over one batch and returns
// the surviving selection (physical row indices, ascending). The returned
// slice is scratch owned by the executor — consume it before the next call.
//
// Error positions follow the row-at-a-time contract: a kernel error is held
// pending while later conjuncts run over the survivors *before* the error
// row, because any error they raise is at an earlier row — the one the
// serial evaluation would have hit first. The whole batch yields no rows on
// error, exactly like the row scan, whose filter aborts mid-batch.
func (x *vecExec) filterSel(cb *schema.ColBatch) ([]int, error) {
	p := x.p
	if len(p.kernels) == 0 && p.residual == nil {
		return cb.Sel, nil
	}
	in, out := &x.a, &x.b
	in.reset()
	if cb.Sel != nil {
		in.sel = append(in.sel, cb.Sel...)
	} else {
		for i := 0; i < cb.N; i++ {
			in.sel = append(in.sel, i)
		}
	}

	var pendErr error
	for _, k := range p.kernels {
		_, err := k(cb, in, out)
		if err != nil {
			pendErr = err
		}
		in, out = out, in
		if len(in.sel) == 0 {
			if pendErr != nil {
				return nil, pendErr
			}
			return in.sel, nil
		}
	}

	if p.residual != nil {
		tmp := schema.ColBatch{Rel: p.lrel, Vecs: cb.Vecs, N: cb.N, Sel: in.sel}
		rows := tmp.Rows()
		sel := out.sel[:0]
		for k, i := range in.sel {
			x.env.row = rows[k]
			ok, err := truthy(x.env, p.residual)
			if err != nil {
				return nil, err
			}
			if ok && !in.mark(k) {
				sel = append(sel, i)
			}
		}
		out.sel = sel
		if pendErr != nil {
			return nil, pendErr
		}
		return sel, nil
	}

	if pendErr != nil {
		return nil, pendErr
	}
	if in.marks == nil {
		return in.sel, nil
	}
	// Rows still marked after the last conjunct are NULL overall: drop them.
	sel := out.sel[:0]
	for k, i := range in.sel {
		if !in.marks[k] {
			sel = append(sel, i)
		}
	}
	out.sel = sel
	return sel, nil
}

// apply filters one batch and pivots the survivors into the output layout.
// The result is never nil.
func (x *vecExec) apply(cb *schema.ColBatch) (schema.Rows, error) {
	sel, err := x.filterSel(cb)
	if err != nil {
		return nil, err
	}
	out := schema.ColBatch{Rel: x.p.orel, Vecs: cb.Vecs[:x.p.m], N: cb.N, Sel: sel}
	if x.p.m == len(cb.Vecs) {
		// Full-width output: forward the store's row view (when present) so
		// survivors are gathered as references, not re-materialized.
		out.View = cb.View
	}
	return out.Rows(), nil
}

// vecScanIter adapts a columnar scan + compiled plan to the row-iterator
// surface: filter kernels run columnar, only survivors pivot to rows.
type vecScanIter struct {
	src schema.ColIterator
	ex  *vecExec
}

func (v *vecScanIter) Next() (schema.Rows, error) {
	for {
		cb, err := v.src.NextBatch()
		if err != nil {
			return nil, err
		}
		if cb == nil {
			return nil, nil
		}
		rows, err := v.ex.apply(cb)
		if err != nil {
			return nil, err
		}
		if len(rows) > 0 {
			return rows, nil
		}
	}
}

func (v *vecScanIter) Close() { v.src.Close() }

// vecMorsels adapts a columnar morsel source to the row-morsel surface:
// each claim filters and pivots its batch on the claiming worker's
// goroutine, so kernels run in parallel and the scan stage disappears.
type vecMorsels struct {
	src schema.ColMorselSource
	p   *vecScanPlan
}

func (v *vecMorsels) NextMorsel() (schema.Morsel, error) {
	cm, err := v.src.NextColMorsel()
	if err != nil {
		return schema.Morsel{Seq: cm.Seq}, err
	}
	if cm.Batch == nil {
		return schema.Morsel{}, nil
	}
	rows, err := newVecExec(v.p).apply(cm.Batch)
	if err != nil {
		return schema.Morsel{Seq: cm.Seq}, err
	}
	return schema.Morsel{Seq: cm.Seq, Rows: rows}, nil
}

func (v *vecMorsels) Close() { v.src.Close() }
