package engine

import (
	"fmt"
	"sort"

	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// evalWindows computes the value of every window call appearing in the
// select list, for every input row. The result is indexed [row][call-SQL].
// It returns nil when the statement has no window functions.
//
// Semantics follow SQL's default frame: with an ORDER BY inside OVER(...)
// the frame is RANGE BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW (peer rows
// — equal order keys — share the frame); without ORDER BY the frame is the
// whole partition. This is exactly what the paper's running example
// (regr_intercept OVER (PARTITION BY z ORDER BY t)) requires.
func (e *Engine) evalWindows(items []sqlparser.SelectItem, b *binding, rows schema.Rows) ([]map[string]schema.Value, error) {
	var calls []*sqlparser.FuncCall
	seen := make(map[string]bool)
	for _, it := range items {
		for _, f := range sqlparser.WindowCalls(it.Expr) {
			if !seen[f.SQL()] {
				seen[f.SQL()] = true
				calls = append(calls, f)
			}
		}
	}
	if len(calls) == 0 {
		return nil, nil
	}
	out := make([]map[string]schema.Value, len(rows))
	for i := range out {
		out[i] = make(map[string]schema.Value, len(calls))
	}
	for _, f := range calls {
		if err := e.evalOneWindow(b, rows, f, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (e *Engine) evalOneWindow(b *binding, rows schema.Rows, f *sqlparser.FuncCall, out []map[string]schema.Value) error {
	key := f.SQL()

	// Partition rows.
	parts := make(map[string][]int)
	var order []string
	env := (&rowEnv{b: b}).reuse()
	var kbuf []byte
	for ri, row := range rows {
		env.row = row
		kbuf = kbuf[:0]
		for _, pe := range f.Over.PartitionBy {
			v, err := evalExpr(env, pe)
			if err != nil {
				return err
			}
			kbuf = v.AppendGroupKey(kbuf)
		}
		if _, ok := parts[string(kbuf)]; !ok {
			order = append(order, string(kbuf))
		}
		parts[string(kbuf)] = append(parts[string(kbuf)], ri)
	}

	for _, pk := range order {
		idxs := parts[pk]
		if len(f.Over.OrderBy) > 0 {
			// Sort partition rows by the window ORDER BY, stably.
			keys := make([][]schema.Value, len(idxs))
			for i, ri := range idxs {
				env := &rowEnv{b: b, row: rows[ri]}
				ks := make([]schema.Value, len(f.Over.OrderBy))
				for j, o := range f.Over.OrderBy {
					v, err := evalExpr(env, o.Expr)
					if err != nil {
						return err
					}
					ks[j] = v
				}
				keys[i] = ks
			}
			perm := make([]int, len(idxs))
			for i := range perm {
				perm[i] = i
			}
			sort.SliceStable(perm, func(a, c int) bool {
				return lessKeys(keys[perm[a]], keys[perm[c]], f.Over.OrderBy)
			})
			if err := runOrderedWindow(b, rows, f, idxs, perm, keys, key, out); err != nil {
				return err
			}
		} else {
			if err := runUnorderedWindow(b, rows, f, idxs, key, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// runOrderedWindow computes cumulative (RANGE UNBOUNDED PRECEDING) values
// along the sorted partition, assigning peer groups the same value. It also
// implements the pure window functions row_number, rank, dense_rank, lag,
// lead, first_value and last_value.
func runOrderedWindow(b *binding, rows schema.Rows, f *sqlparser.FuncCall, idxs, perm []int, keys [][]schema.Value, key string, out []map[string]schema.Value) error {
	switch f.Name {
	case "row_number":
		for pos, pi := range perm {
			out[idxs[pi]][key] = schema.Int(int64(pos + 1))
		}
		return nil
	case "rank", "dense_rank":
		rank, dense := 0, 0
		for pos, pi := range perm {
			if pos == 0 || !equalKeys(keys[perm[pos-1]], keys[pi]) {
				rank = pos + 1
				dense++
			}
			if f.Name == "rank" {
				out[idxs[pi]][key] = schema.Int(int64(rank))
			} else {
				out[idxs[pi]][key] = schema.Int(int64(dense))
			}
		}
		return nil
	case "lag", "lead":
		if len(f.Args) < 1 {
			return fmt.Errorf("%w: %s needs an argument", ErrQuery, f.Name)
		}
		for pos, pi := range perm {
			src := pos - 1
			if f.Name == "lead" {
				src = pos + 1
			}
			if src < 0 || src >= len(perm) {
				out[idxs[pi]][key] = schema.Null()
				continue
			}
			env := &rowEnv{b: b, row: rows[idxs[perm[src]]]}
			v, err := evalExpr(env, f.Args[0])
			if err != nil {
				return err
			}
			out[idxs[pi]][key] = v
		}
		return nil
	case "first_value", "last_value":
		if len(f.Args) < 1 {
			return fmt.Errorf("%w: %s needs an argument", ErrQuery, f.Name)
		}
		for pos, pi := range perm {
			src := 0
			if f.Name == "last_value" {
				src = pos // default frame ends at current row
			}
			env := &rowEnv{b: b, row: rows[idxs[perm[src]]]}
			v, err := evalExpr(env, f.Args[0])
			if err != nil {
				return err
			}
			out[idxs[pi]][key] = v
		}
		return nil
	}

	// Cumulative aggregate with peer handling.
	acc, err := newAccumulator(f)
	if err != nil {
		return err
	}
	af := newAggFeeder(b, f)
	pos := 0
	for pos < len(perm) {
		// Find the peer group [pos, end).
		end := pos + 1
		for end < len(perm) && equalKeys(keys[perm[pos]], keys[perm[end]]) {
			end++
		}
		for i := pos; i < end; i++ {
			if err := af.feed(acc, rows[idxs[perm[i]]]); err != nil {
				return err
			}
		}
		v := acc.result()
		for i := pos; i < end; i++ {
			out[idxs[perm[i]]][key] = v
		}
		pos = end
	}
	return nil
}

// runUnorderedWindow evaluates the aggregate over the whole partition and
// assigns it to every row.
func runUnorderedWindow(b *binding, rows schema.Rows, f *sqlparser.FuncCall, idxs []int, key string, out []map[string]schema.Value) error {
	switch f.Name {
	case "row_number":
		for pos, ri := range idxs {
			out[ri][key] = schema.Int(int64(pos + 1))
		}
		return nil
	case "rank", "dense_rank":
		for _, ri := range idxs {
			out[ri][key] = schema.Int(1)
		}
		return nil
	}
	acc, err := newAccumulator(f)
	if err != nil {
		return err
	}
	af := newAggFeeder(b, f)
	for _, ri := range idxs {
		if err := af.feed(acc, rows[ri]); err != nil {
			return err
		}
	}
	v := acc.result()
	for _, ri := range idxs {
		out[ri][key] = v
	}
	return nil
}

// lessKeys orders two order-by key tuples honouring ASC/DESC, with NULLs
// sorting first (ascending).
func lessKeys(a, b []schema.Value, items []sqlparser.OrderItem) bool {
	for i := range items {
		c := compareForSort(a[i], b[i])
		if c == 0 {
			continue
		}
		if items[i].Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

func equalKeys(a, b []schema.Value) bool {
	for i := range a {
		if compareForSort(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

// compareForSort totally orders values: NULL < everything, incomparable
// types order by type tag so sorting is deterministic.
func compareForSort(a, b schema.Value) int {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0
		case a.IsNull():
			return -1
		default:
			return 1
		}
	}
	if c, ok := a.Compare(b); ok {
		return c
	}
	switch {
	case a.Type() < b.Type():
		return -1
	case a.Type() > b.Type():
		return 1
	default:
		return 0
	}
}
