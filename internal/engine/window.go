package engine

import (
	"fmt"
	"sort"

	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// winTable holds computed window-call values as one column per distinct
// call (keyed by its canonical SQL text), each aligned 1:1 with the input
// rows. A single table serves the whole materialized projection — rowEnv
// carries the table plus the current row index instead of one map per row.
type winTable map[string][]schema.Value

// evalWindows computes the value of every window call appearing in the
// select list, for every input row. It returns nil when the statement has
// no window functions.
//
// Semantics follow SQL's default frame: with an ORDER BY inside OVER(...)
// the frame is RANGE BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW (peer rows
// — equal order keys — share the frame); without ORDER BY the frame is the
// whole partition. This is exactly what the paper's running example
// (regr_intercept OVER (PARTITION BY z ORDER BY t)) requires.
func (e *Engine) evalWindows(items []sqlparser.SelectItem, b *binding, rows schema.Rows) (winTable, error) {
	var calls []*sqlparser.FuncCall
	seen := make(map[string]bool)
	for _, it := range items {
		for _, f := range sqlparser.WindowCalls(it.Expr) {
			if !seen[f.SQL()] {
				seen[f.SQL()] = true
				calls = append(calls, f)
			}
		}
	}
	if len(calls) == 0 {
		return nil, nil
	}
	out := make(winTable, len(calls))
	for _, f := range calls {
		col := make([]schema.Value, len(rows))
		if err := e.evalOneWindow(b, rows, f, col); err != nil {
			return nil, err
		}
		out[f.SQL()] = col
	}
	return out, nil
}

func (e *Engine) evalOneWindow(b *binding, rows schema.Rows, f *sqlparser.FuncCall, out []schema.Value) error {
	// Partition rows. All-plain column partitions build their keys with the
	// canonical group-key kernel straight off the rows — the same bytes the
	// expression path produces value-by-value, without per-row evaluation.
	pidx := make([]int, 0, len(f.Over.PartitionBy))
	plain := true
	for _, pe := range f.Over.PartitionBy {
		c, ok := pe.(*sqlparser.ColumnRef)
		if !ok {
			plain = false
			break
		}
		i, err := b.resolve(c)
		if err != nil {
			plain = false // let the expression path surface the error
			break
		}
		pidx = append(pidx, i)
	}

	parts := make(map[string][]int)
	var order []string
	var kbuf []byte
	if plain {
		for ri, row := range rows {
			kbuf = row.AppendGroupKey(kbuf[:0], pidx)
			if _, ok := parts[string(kbuf)]; !ok {
				order = append(order, string(kbuf))
			}
			parts[string(kbuf)] = append(parts[string(kbuf)], ri)
		}
	} else {
		env := (&rowEnv{b: b}).reuse()
		for ri, row := range rows {
			env.row = row
			kbuf = kbuf[:0]
			for _, pe := range f.Over.PartitionBy {
				v, err := evalExpr(env, pe)
				if err != nil {
					return err
				}
				kbuf = v.AppendGroupKey(kbuf)
			}
			if _, ok := parts[string(kbuf)]; !ok {
				order = append(order, string(kbuf))
			}
			parts[string(kbuf)] = append(parts[string(kbuf)], ri)
		}
	}

	env := (&rowEnv{b: b}).reuse()
	for _, pk := range order {
		idxs := parts[pk]
		if len(f.Over.OrderBy) > 0 {
			// Extract the window ORDER BY keys into typed key columns
			// (partition-local positions) and sort stably over them; the
			// typed comparator is pairwise-identical to the boxed one.
			ks := newSortKeys(f.Over.OrderBy)
			for _, ri := range idxs {
				env.row = rows[ri]
				for j, o := range f.Over.OrderBy {
					v, err := evalExpr(env, o.Expr)
					if err != nil {
						return err
					}
					ks.cols[j].Append(v)
				}
			}
			perm := make([]int, len(idxs))
			for i := range perm {
				perm[i] = i
			}
			sort.SliceStable(perm, func(a, c int) bool {
				return ks.less(perm[a], perm[c])
			})
			if err := runOrderedWindow(b, rows, f, idxs, perm, ks, out); err != nil {
				return err
			}
		} else {
			if err := runUnorderedWindow(b, rows, f, idxs, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// runOrderedWindow computes cumulative (RANGE UNBOUNDED PRECEDING) values
// along the sorted partition, assigning peer groups the same value. It also
// implements the pure window functions row_number, rank, dense_rank, lag,
// lead, first_value and last_value. ks compares partition-local positions
// (the values perm permutes).
func runOrderedWindow(b *binding, rows schema.Rows, f *sqlparser.FuncCall, idxs, perm []int, ks *sortKeys, out []schema.Value) error {
	switch f.Name {
	case "row_number":
		for pos, pi := range perm {
			out[idxs[pi]] = schema.Int(int64(pos + 1))
		}
		return nil
	case "rank", "dense_rank":
		rank, dense := 0, 0
		for pos, pi := range perm {
			if pos == 0 || !ks.equal(perm[pos-1], pi) {
				rank = pos + 1
				dense++
			}
			if f.Name == "rank" {
				out[idxs[pi]] = schema.Int(int64(rank))
			} else {
				out[idxs[pi]] = schema.Int(int64(dense))
			}
		}
		return nil
	case "lag", "lead":
		if len(f.Args) < 1 {
			return fmt.Errorf("%w: %s needs an argument", ErrQuery, f.Name)
		}
		env := (&rowEnv{b: b}).reuse()
		for pos, pi := range perm {
			src := pos - 1
			if f.Name == "lead" {
				src = pos + 1
			}
			if src < 0 || src >= len(perm) {
				out[idxs[pi]] = schema.Null()
				continue
			}
			env.row = rows[idxs[perm[src]]]
			v, err := evalExpr(env, f.Args[0])
			if err != nil {
				return err
			}
			out[idxs[pi]] = v
		}
		return nil
	case "first_value", "last_value":
		if len(f.Args) < 1 {
			return fmt.Errorf("%w: %s needs an argument", ErrQuery, f.Name)
		}
		env := (&rowEnv{b: b}).reuse()
		for pos, pi := range perm {
			src := 0
			if f.Name == "last_value" {
				src = pos // default frame ends at current row
			}
			env.row = rows[idxs[perm[src]]]
			v, err := evalExpr(env, f.Args[0])
			if err != nil {
				return err
			}
			out[idxs[pi]] = v
		}
		return nil
	}

	// Cumulative aggregate with peer handling.
	acc, err := newAccumulator(f)
	if err != nil {
		return err
	}
	af := newAggFeeder(b, f)
	pos := 0
	for pos < len(perm) {
		// Find the peer group [pos, end).
		end := pos + 1
		for end < len(perm) && ks.equal(perm[pos], perm[end]) {
			end++
		}
		for i := pos; i < end; i++ {
			if err := af.feed(acc, rows[idxs[perm[i]]]); err != nil {
				return err
			}
		}
		v := acc.result()
		for i := pos; i < end; i++ {
			out[idxs[perm[i]]] = v
		}
		pos = end
	}
	return nil
}

// runUnorderedWindow evaluates the aggregate over the whole partition and
// assigns it to every row.
func runUnorderedWindow(b *binding, rows schema.Rows, f *sqlparser.FuncCall, idxs []int, out []schema.Value) error {
	switch f.Name {
	case "row_number":
		for pos, ri := range idxs {
			out[ri] = schema.Int(int64(pos + 1))
		}
		return nil
	case "rank", "dense_rank":
		for _, ri := range idxs {
			out[ri] = schema.Int(1)
		}
		return nil
	}
	acc, err := newAccumulator(f)
	if err != nil {
		return err
	}
	af := newAggFeeder(b, f)
	for _, ri := range idxs {
		if err := af.feed(acc, rows[ri]); err != nil {
			return err
		}
	}
	v := acc.result()
	for _, ri := range idxs {
		out[ri] = v
	}
	return nil
}

// compareForSort totally orders values: NULL < everything, incomparable
// types order by type tag so sorting is deterministic. The implementation
// lives in schema (schema.CompareForSort) so the typed key columns
// (schema.KeyCol) can guarantee pairwise-identical comparisons.
func compareForSort(a, b schema.Value) int {
	return schema.CompareForSort(a, b)
}
