// Package engine executes logical query plans over in-memory relations. It
// is the query processor that runs — identically — on every node of the
// vertical architecture, from the cloud server down to an appliance; only
// the *fragment* of the query a node receives differs (capability
// enforcement happens in the fragment package, not here).
//
// The engine compiles a plan.Node tree (the shared logical IR produced by
// plan.FromAST and rewritten by plan.Optimize) block by block — the block
// decomposition and the column-requirement analysis behind scan pushdown
// both come from plan.Block, never re-derived here — into a pull-based,
// batch-at-a-time iterator pipeline (volcano with row batches): scans,
// filters, projections, join probes, DISTINCT and LIMIT stream; GROUP BY,
// window functions and ORDER BY are pipeline breakers that materialize
// their input. Scan nodes carry pruned column sets and pushed predicates
// into the source's scans, so unused columns never leave storage.
// Engine.Select drains the pipeline into a materialized Result; Engine.Open
// exposes the pipeline itself so fragment chains and network nodes can
// process batches without holding whole intermediate relations.
//
// Over sources that serve column batches (ColScanner; storage.Store does),
// the hot paths run vectorized: filter conjuncts compile into comparison
// kernels over typed vectors refining a selection vector (vecscan.go, with
// the non-kernelizable suffix evaluated row-at-a-time on pivoted
// survivors), numeric projections evaluate vector-at-a-time
// (vecproject.go), and simple DISTINCT and GROUP BY blocks skip row
// pipelines entirely (vecblock.go, vecgroup.go). Every vectorized path is
// an internal fast path pinned bit-identical to the row path — same rows,
// order, and error text — and declines to the row path whenever exact
// semantics would be at risk (windows, sorts, boxed vectors, non-numeric
// expressions). Hashed operators share one key definition,
// schema.AppendGroupKey, built alloc-free from rows or vectors alike.
//
// With WithParallelism(n), n > 1, streamable segments run morsel-parallel
// (parallel.go): n workers pull sequence-numbered morsels from a shared
// cursor, apply per-worker scan/filter/probe/projection stages, and an
// order-preserving exchange re-emits their output in morsel order. GROUP BY
// partitions its key computation across workers and folds groups in
// parallel; hash-join builds are hash-partitioned across workers. Because
// the exchange restores serial order — and each group folds its rows in
// serial order — parallel execution is row-identical (floats included) and
// accounting-identical to serial execution: the worker count is purely a
// performance knob. Blocks with a streaming LIMIT stay serial to preserve
// their O(limit + batch) storage-read guarantee.
package engine
