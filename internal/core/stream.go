package core

import (
	"context"

	"paradise/internal/engine"
	"paradise/internal/network"
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// Stream is the streaming counterpart of Process: the same Figure 2
// pipeline, but the final result reaches the caller batch-at-a-time
// instead of as a materialized Outcome. Preprocessing (policy rewrite,
// satisfaction check, fragmentation) runs at open time; the chain execution
// is pulled lazily through Next, bound to the opening context with
// cancellation checked per batch down to the storage scans.
//
// When the processor is configured with an anonymization method the
// postprocessor needs the whole result, so the first Next drains the chain
// (still under the context), anonymizes, and serves the anonymized rows in
// batches — the caller's contract is unchanged.
//
// The caller must Close the stream (idempotent). Close drains the
// remainder so the Figure 3 accounting is final — the chain nodes ship
// their full outputs regardless of how much the requester reads — and then
// journals the query like Process would: the journal records the rows the
// chain produced (what a full drain delivers), not how many the consumer
// happened to read before closing.
type Stream struct {
	p        *Processor
	sel      *sqlparser.Select
	moduleID string
	out      *Outcome
	net      *network.Stream
	cur      schema.RowIterator // non-nil once the anonymized batches are being served
	finished bool
	err      error
}

// Open parses a SQL query and opens it as a stream under the named policy
// module.
func (p *Processor) Open(ctx context.Context, sql, moduleID string) (*Stream, error) {
	sel, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return p.OpenSelect(ctx, sel, moduleID)
}

// OpenSelect is Open for an already-parsed statement. Errors found at open
// time (unknown module, policy denial, fragmentation failure) are journaled
// like Process denials.
func (p *Processor) OpenSelect(ctx context.Context, sel *sqlparser.Select, moduleID string) (*Stream, error) {
	out, plan, err := p.prepare(ctx, sel, moduleID)
	if err == nil {
		var net *network.Stream
		net, err = network.Open(ctx, p.topo, plan, p.store, network.WithParallelism(p.par))
		if err == nil {
			return &Stream{p: p, sel: sel, moduleID: moduleID, out: out, net: net}, nil
		}
	}
	if p.journal != nil {
		p.journal.Append(journalEntry(sel, moduleID, nil, 0, err))
	}
	return nil, err
}

// Schema is the output relation of the stream (identical before and after
// postprocessing — anonymization rewrites values, not columns).
func (s *Stream) Schema() *schema.Relation { return s.net.Schema() }

// Next returns the next batch of result rows, or a nil batch once the
// stream is exhausted (at which point the Outcome is final). The returned
// slice is only valid until the following Next call; the rows inside it are
// immutable and may be retained.
func (s *Stream) Next() (schema.Rows, error) {
	if s.finished {
		return nil, s.err
	}
	if s.cur == nil && s.anonymizing() {
		if err := s.materialize(); err != nil {
			s.fail(err)
			return nil, err
		}
	}

	var batch schema.Rows
	var err error
	if s.cur != nil {
		batch, err = s.cur.Next()
	} else {
		batch, err = s.net.Next()
	}
	if err != nil {
		s.fail(err)
		return nil, err
	}
	if batch == nil {
		s.finish()
		return nil, s.err
	}
	return batch, nil
}

// Close finalizes the stream: the remaining chain is drained so the
// Figure 3 accounting is complete, the Outcome is sealed and the query is
// journaled. Idempotent — the first call decides the result.
func (s *Stream) Close() {
	s.finish()
}

// Outcome returns the audit trail of the streamed query. It is only final
// once the stream is exhausted or closed; calling it earlier closes the
// stream (draining the remainder). On the pure streaming path
// Outcome.Result and Outcome.PreAnonymization are nil — the rows went to
// the consumer batch by batch; Outcome.Net carries the full transfer
// accounting either way.
func (s *Stream) Outcome() (*Outcome, error) {
	s.finish()
	if s.err != nil {
		return nil, s.err
	}
	return s.out, nil
}

// anonymizing reports whether postprocessing forces materialization.
func (s *Stream) anonymizing() bool {
	return s.p.anon.Method != "" && s.p.anon.Method != AnonNone
}

// materialize drains the chain and runs the postprocessor, switching the
// stream to serve the anonymized rows.
func (s *Stream) materialize() error {
	rows, err := schema.DrainIterator(s.net)
	if err != nil {
		return err
	}
	stats, err := s.net.Stats()
	if err != nil {
		return err
	}
	pre := &engine.Result{Schema: s.net.Schema(), Rows: rows}
	stats.Result = pre
	s.out.Net = stats
	s.out.PreAnonymization = pre
	res, anonRep, err := s.p.postprocess(pre)
	if err != nil {
		return err
	}
	s.out.Result = res
	s.out.Anon = anonRep
	s.cur = schema.IterateRows(res.Rows, schema.DefaultBatchSize)
	return nil
}

// fail seals the stream with an error, releasing the chain.
func (s *Stream) fail(err error) {
	if s.finished {
		return
	}
	s.finished = true
	s.err = err
	s.net.Close()
	s.journal()
}

// finish seals the stream successfully: drain the remaining chain for the
// accounting, fill the Outcome, journal.
func (s *Stream) finish() {
	if s.finished {
		return
	}
	s.finished = true
	// An anonymizing stream closed before the first pull still owes the
	// postprocessed outcome: materialize now, so the journal entry and the
	// Outcome match Process regardless of consumer read behaviour.
	if s.cur == nil && s.anonymizing() {
		if err := s.materialize(); err != nil {
			s.err = err
			s.net.Close()
			s.journal()
			return
		}
	}
	if s.cur != nil {
		s.cur.Close()
	}
	if s.out.Net == nil { // streaming path: stats not yet finalized
		stats, err := s.net.Stats()
		if err != nil {
			s.err = err
			s.journal()
			return
		}
		s.out.Net = stats
	}
	s.net.Close()
	s.journal()
}

func (s *Stream) journal() {
	if s.p.journal == nil {
		return
	}
	s.p.journal.Append(journalEntry(s.sel, s.moduleID, s.out, s.producedRows(), s.err))
}

// producedRows is the cardinality of the full result — what Process would
// journal — regardless of how much the consumer read before closing. On
// every successful finish either Result (anonymizing path) or Net
// (streaming path) is set; errored streams never reach the row count in
// the journal entry.
func (s *Stream) producedRows() int {
	if s.out.Result != nil { // anonymized path: the postprocessed rows
		return len(s.out.Result.Rows)
	}
	if s.out.Net != nil && len(s.out.Net.Assignments) > 0 {
		return s.out.Net.Assignments[len(s.out.Net.Assignments)-1].OutRows
	}
	return 0
}
