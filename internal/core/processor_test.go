package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"paradise/internal/anonymize"
	"paradise/internal/audit"
	"paradise/internal/engine"
	"paradise/internal/policy"
	"paradise/internal/recognition"
	"paradise/internal/sensors"
	"paradise/internal/storage"
)

func apartmentProcessor(t testing.TB, anon AnonConfig) (*Processor, *sensors.Trace) {
	t.Helper()
	tr, err := sensors.Generate(sensors.Apartment(30*time.Second, true, 42))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sensors.BuildStore(tr)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{
		Store:       st,
		Policy:      Figure4PolicyForTest(),
		Anon:        anon,
		MaxInfoLoss: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, tr
}

// Figure4PolicyForTest returns the paper's policy.
func Figure4PolicyForTest() *policy.Policy { return policy.Figure4() }

func TestProcessPaperQuery(t *testing.T) {
	p, _ := apartmentProcessor(t, AnonConfig{})
	out, err := p.Process(context.Background(),
		"SELECT regr_intercept(y, x) OVER (PARTITION BY z ORDER BY t) FROM (SELECT x, y, z, t FROM d)",
		"ActionFilter")
	if err != nil {
		t.Fatal(err)
	}
	// The rewrite must contain the Figure 4 conditions and aggregation.
	for _, want := range []string{"x > y", "z < 2", "GROUP BY x, y", "SUM(z) > 100", "zavg"} {
		if !strings.Contains(out.RewrittenSQL, want) {
			t.Errorf("rewritten SQL lacks %q: %s", want, out.RewrittenSQL)
		}
	}
	// The plan starts at the sensor with the constant filter.
	if got := out.Plan.Fragments[0].SQL(); got != "SELECT * FROM d WHERE z < 2" {
		t.Errorf("sensor fragment = %q", got)
	}
	// Fragmented egress is below the raw volume.
	if out.Net.EgressBytes >= out.Net.RawBytes {
		t.Errorf("no reduction: egress %d raw %d", out.Net.EgressBytes, out.Net.RawBytes)
	}
	if out.Result == nil {
		t.Fatal("no result")
	}
	if !strings.Contains(out.Summary(), "rewritten") {
		t.Error("summary incomplete")
	}
}

// TestProcessorUnchangedByStreamingExecutor pins the Figure-2 contract the
// batch-iterator refactor must honour: running the same query twice yields
// identical results, byte accounting and reduction factor, and the numbers
// agree between the chain execution and a direct monolithic evaluation.
func TestProcessorUnchangedByStreamingExecutor(t *testing.T) {
	p, _ := apartmentProcessor(t, AnonConfig{})
	const q = "SELECT regr_intercept(y, x) OVER (PARTITION BY z ORDER BY t) FROM (SELECT x, y, z, t FROM d)"
	a, err := p.Process(context.Background(), q, "ActionFilter")
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Process(context.Background(), q, "ActionFilter")
	if err != nil {
		t.Fatal(err)
	}
	if a.Net.EgressBytes != b.Net.EgressBytes || a.Net.RawBytes != b.Net.RawBytes {
		t.Fatalf("byte accounting not deterministic: %d/%d vs %d/%d",
			a.Net.EgressBytes, a.Net.RawBytes, b.Net.EgressBytes, b.Net.RawBytes)
	}
	if a.Net.Reduction() != b.Net.Reduction() {
		t.Fatalf("reduction not deterministic: %v vs %v", a.Net.Reduction(), b.Net.Reduction())
	}
	if len(a.Result.Rows) != len(b.Result.Rows) {
		t.Fatalf("result cardinality not deterministic: %d vs %d",
			len(a.Result.Rows), len(b.Result.Rows))
	}
	// The chain's pre-anonymization answer matches the rewritten query run
	// monolithically over the store.
	direct, err := engine.New(p.store).Query(context.Background(), a.RewrittenSQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Rows) != len(a.PreAnonymization.Rows) {
		t.Fatalf("chain result %d rows, monolithic %d rows",
			len(a.PreAnonymization.Rows), len(direct.Rows))
	}
	for i := range direct.Rows {
		for j := range direct.Rows[i] {
			if !direct.Rows[i][j].Identical(a.PreAnonymization.Rows[i][j]) {
				t.Fatalf("row %d col %d: chain %v != monolithic %v", i, j,
					a.PreAnonymization.Rows[i][j].Format(), direct.Rows[i][j].Format())
			}
		}
	}
}

func TestProcessDeniedQuery(t *testing.T) {
	p, _ := apartmentProcessor(t, AnonConfig{})
	_, err := p.Process(context.Background(), "SELECT user FROM d", "ActionFilter")
	if err == nil {
		t.Fatal("user-only query must be denied")
	}
}

func TestProcessUnknownModule(t *testing.T) {
	p, _ := apartmentProcessor(t, AnonConfig{})
	if _, err := p.Process(context.Background(), "SELECT x FROM d", "NoSuchModule"); !errors.Is(err, ErrProcessor) {
		t.Fatalf("want ErrProcessor, got %v", err)
	}
}

func TestProcessWithMondrian(t *testing.T) {
	p, _ := apartmentProcessor(t, AnonConfig{
		Method: AnonMondrian, K: 5, QuasiIdentifiers: []string{"x", "y"}, Seed: 1,
	})
	out, err := p.Process(context.Background(), "SELECT x, y, t FROM d", "ActionFilter")
	if err != nil {
		t.Fatal(err)
	}
	if out.Anon == nil || out.Anon.Method != AnonMondrian {
		t.Fatal("anonymization report missing")
	}
	ok, err := anonymize.IsKAnonymous(out.Result.Schema, out.Result.Rows, []string{"x", "y"}, 5)
	if err != nil || !ok {
		t.Fatalf("result not 5-anonymous: %v", err)
	}
	if out.Anon.DD == 0 {
		t.Fatal("DD should be positive after generalization")
	}
	if out.Anon.DDRatio <= 0 || out.Anon.DDRatio > 1 {
		t.Fatalf("DD ratio out of range: %v", out.Anon.DDRatio)
	}
	// Pre-anonymization result preserved for auditing.
	if len(out.PreAnonymization.Rows) != len(out.Result.Rows) {
		t.Fatal("pre-anonymization result should be retained")
	}
}

func TestProcessWithDP(t *testing.T) {
	p, _ := apartmentProcessor(t, AnonConfig{
		Method: AnonDifferential, Epsilon: 1, Sensitivity: 0.5, Seed: 7,
	})
	out, err := p.Process(context.Background(), "SELECT x, y, t FROM d", "ActionFilter")
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for i := range out.Result.Rows {
		if !out.Result.Rows[i][0].Identical(out.PreAnonymization.Rows[i][0]) {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("DP noise should perturb values")
	}
}

func TestProcessWithSlicing(t *testing.T) {
	p, _ := apartmentProcessor(t, AnonConfig{
		Method: AnonSlicing, BucketSize: 4, QuasiIdentifiers: []string{"x", "y"}, Seed: 3,
	})
	out, err := p.Process(context.Background(), "SELECT x, y, t FROM d", "ActionFilter")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Result.Rows) != len(out.PreAnonymization.Rows) {
		t.Fatal("slicing preserves cardinality")
	}
}

func TestProcessPipelineEndToEnd(t *testing.T) {
	p, _ := apartmentProcessor(t, AnonConfig{})
	pl, err := recognition.PaperPipeline()
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.ProcessPipeline(context.Background(), pl, "ActionFilter")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.ResidualR, "filterByClass(d'") {
		t.Fatalf("residual = %s", out.ResidualR)
	}
	if out.Final == nil {
		t.Fatal("no final result")
	}
	// The pipeline's SQL was rewritten on the way.
	if !strings.Contains(out.RewrittenSQL, "zavg") {
		t.Fatalf("pipeline SQL not rewritten: %s", out.RewrittenSQL)
	}
}

func TestInfoLossSatisfactionCheck(t *testing.T) {
	p, _ := apartmentProcessor(t, AnonConfig{})
	// A query the policy transforms heavily: info loss measured.
	out, err := p.Process(context.Background(), "SELECT x, y, t FROM d", "ActionFilter")
	if err != nil {
		t.Fatal(err)
	}
	if out.InfoLoss < 0 {
		t.Fatal("info loss should have been measured")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Policy: policy.Figure4()}); !errors.Is(err, ErrProcessor) {
		t.Fatal("nil store must fail")
	}
	if _, err := New(Config{Store: storage.NewStore()}); !errors.Is(err, ErrProcessor) {
		t.Fatal("nil policy must fail")
	}
	if _, err := New(Config{Store: storage.NewStore(), Policy: &policy.Policy{}}); err == nil {
		t.Fatal("invalid policy must fail")
	}
}

func TestResidualRisk(t *testing.T) {
	p, _ := apartmentProcessor(t, AnonConfig{})
	// The wide pipeline query releases (x, y, zavg, t, trend) after the
	// policy rewrite.
	out, err := p.Process(context.Background(),
		"SELECT x, y, z, t, regr_intercept(y, x) OVER (PARTITION BY z ORDER BY t) AS trend FROM (SELECT x, y, z, t FROM d)",
		"ActionFilter")
	if err != nil {
		t.Fatal(err)
	}
	// The profiling query (raw trajectories per user) must be dead on d'.
	v, err := p.ResidualRisk("SELECT user, x, y, z, t FROM d", out)
	if err != nil {
		t.Fatal(err)
	}
	if v.Answerable {
		t.Fatalf("profiling should not survive the rewrite: %s", v)
	}
	// Raw z trajectories are gone too (only zavg per cell remains).
	v, err = p.ResidualRisk("SELECT z, t FROM d WHERE x > y AND z < 2", out)
	if err != nil {
		t.Fatal(err)
	}
	if v.Answerable {
		t.Fatalf("raw z should be aggregated away: %s", v)
	}
	// The intended cell-level analysis is still answerable.
	v, err = p.ResidualRisk("SELECT x, y, zavg FROM d WHERE x > y AND z < 2", out)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Answerable {
		t.Fatalf("intended analysis should survive: %s", v)
	}
}

func TestLDiversityPostprocessing(t *testing.T) {
	tr, err := sensors.Generate(sensors.Apartment(30*time.Second, true, 42))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sensors.BuildStore(tr)
	if err != nil {
		t.Fatal(err)
	}
	// A permissive module so per-sample rows reach the postprocessor.
	pol := &policy.Policy{Modules: []*policy.Module{
		policy.DefaultModule("Permissive", st.Catalog().MustLookup("d")),
	}}
	p, err := New(Config{Store: st, Policy: pol, Anon: AnonConfig{
		Method: AnonMondrian, K: 3, QuasiIdentifiers: []string{"x", "y"},
		LDiversity: 2, SensitiveColumn: "z", Seed: 9,
	}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Process(context.Background(), "SELECT x, y, z, t FROM d", "Permissive")
	if err != nil {
		t.Fatal(err)
	}
	if out.Anon == nil {
		t.Fatal("anonymization report missing")
	}
	ok, err := anonymize.IsLDiverse(out.Result.Schema, out.Result.Rows, []string{"x", "y"}, "z", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("result should be 2-diverse in z")
	}
}

func TestJournalRecordsQueriesAndDenials(t *testing.T) {
	tr, err := sensors.Generate(sensors.Apartment(20*time.Second, false, 3))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sensors.BuildStore(tr)
	if err != nil {
		t.Fatal(err)
	}
	j := audit.NewJournal()
	p, err := New(Config{Store: st, Policy: policy.Figure4(), Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Process(context.Background(), "SELECT x, y, t FROM d", "ActionFilter"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Process(context.Background(), "SELECT user FROM d", "ActionFilter"); err == nil {
		t.Fatal("user query should be denied")
	}
	if j.Len() != 2 {
		t.Fatalf("journal len = %d", j.Len())
	}
	entries := j.All()
	if entries[0].Denied || entries[0].EgressBytes == 0 {
		t.Fatalf("first entry wrong: %+v", entries[0])
	}
	if !entries[1].Denied || entries[1].DenyReason == "" {
		t.Fatalf("denial not recorded: %+v", entries[1])
	}
	if p.Journal() != j {
		t.Fatal("Journal accessor broken")
	}
}

func TestUnknownAnonMethod(t *testing.T) {
	p, _ := apartmentProcessor(t, AnonConfig{Method: AnonMethod("bogus")})
	if _, err := p.Process(context.Background(), "SELECT x, y, t FROM d", "ActionFilter"); !errors.Is(err, ErrProcessor) {
		t.Fatal("unknown method must fail")
	}
}

// TestProcessBuildsExactlyOnePlanTree pins the lazy -explain contract: a
// plain Process (no Explain call) lowers exactly one plan tree — the one
// the fragmenter executes. The second tree (the optimized -explain view) is
// only built when Outcome.Logical/Explain is actually used, and is then
// memoized.
func TestProcessBuildsExactlyOnePlanTree(t *testing.T) {
	tr, err := sensors.Generate(sensors.Apartment(20*time.Second, false, 7))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sensors.BuildStore(tr)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(Config{Store: st, Policy: policy.Figure4()})
	if err != nil {
		t.Fatal(err)
	}

	lowered := 0
	lowerPlanHook = func() { lowered++ }
	defer func() { lowerPlanHook = nil }()

	out, err := p.Process(context.Background(), "SELECT x, y, t FROM d", "ActionFilter")
	if err != nil {
		t.Fatal(err)
	}
	if lowered != 1 {
		t.Fatalf("plain Process lowered %d plan trees, want exactly 1", lowered)
	}

	// First Explain builds the second tree; the result is memoized.
	expl := out.Explain()
	if lowered != 2 {
		t.Fatalf("Explain lowered %d trees in total, want 2", lowered)
	}
	if !strings.Contains(expl, "logical plan (rewritten, optimized):") || out.Logical() == nil {
		t.Fatalf("explain view incomplete:\n%s", expl)
	}
	if out.Explain() != expl || lowered != 2 {
		t.Fatalf("Explain not memoized (lowered %d)", lowered)
	}

	// The streaming path shares prepare and therefore the same guarantee.
	lowered = 0
	s, err := p.Open(context.Background(), "SELECT x, y, t FROM d", "ActionFilter")
	if err != nil {
		t.Fatal(err)
	}
	for {
		batch, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if batch == nil {
			break
		}
	}
	s.Close()
	if lowered != 1 {
		t.Fatalf("plain streaming Query lowered %d plan trees, want exactly 1", lowered)
	}
}
