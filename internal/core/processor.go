package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"

	"paradise/internal/anonymize"
	"paradise/internal/audit"
	"paradise/internal/containment"
	"paradise/internal/engine"
	"paradise/internal/fragment"
	"paradise/internal/network"
	logical "paradise/internal/plan"
	"paradise/internal/policy"
	"paradise/internal/privmetrics"
	"paradise/internal/recognition"
	"paradise/internal/rewrite"
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
	"paradise/internal/storage"
)

// ErrProcessor wraps configuration errors.
var ErrProcessor = errors.New("core: processor error")

// AnonMethod selects the postprocessing algorithm.
type AnonMethod string

// Available postprocessing methods (§3.2 names them all).
const (
	AnonNone         AnonMethod = "none"
	AnonMondrian     AnonMethod = "mondrian"   // k-anonymity, multidimensional
	AnonFullDomain   AnonMethod = "fulldomain" // k-anonymity, Samarati
	AnonSlicing      AnonMethod = "slicing"    // column-wise (Li et al.)
	AnonDifferential AnonMethod = "dp"         // Laplace mechanism
)

// AnonConfig tunes the postprocessor.
type AnonConfig struct {
	Method AnonMethod
	// K for the k-anonymity flavours.
	K int
	// Epsilon and Sensitivity for differential privacy.
	Epsilon     float64
	Sensitivity float64
	// BucketSize for slicing.
	BucketSize int
	// QuasiIdentifiers to protect; empty means auto-detection.
	QuasiIdentifiers []string
	// Seed for the randomized methods (slicing permutations, DP noise).
	Seed int64
	// MaxSuppress bounds row suppression for the full-domain flavour.
	MaxSuppress int
	// LDiversity, when > 1 together with SensitiveColumn, additionally
	// suppresses equivalence classes with fewer than l distinct sensitive
	// values after the k-anonymity step (homogeneity-attack defence).
	LDiversity int
	// SensitiveColumn names the attribute l-diversity protects.
	SensitiveColumn string
}

// Config assembles a Processor.
type Config struct {
	// Store holds the environment's integrated sensor database d.
	Store *storage.Store
	// Policy is the user's privacy policy.
	Policy *policy.Policy
	// Topology is the peer chain; nil uses network.DefaultApartment().
	Topology *network.Topology
	// Rewrite options (table substitutions).
	Rewrite rewrite.Options
	// Anonymization of results (postprocessing).
	Anon AnonConfig
	// MaxInfoLoss is the KL-divergence budget of the §3.1 satisfaction
	// check: when the rewritten query's answer diverges from the original
	// by more than this (per shared numeric column, max), the outcome is
	// flagged unsatisfactory. <= 0 disables the check.
	MaxInfoLoss float64
	// Journal, when set, records an audit entry for every processed query
	// including denials (provenance, cf. [Heu15]).
	Journal *audit.Journal
	// Parallelism is the number of worker goroutines a query pipeline may
	// use (morsel-driven, order-preserving — results and Figure 3
	// accounting are identical to serial execution): <= 0 means
	// runtime.GOMAXPROCS(0), 1 keeps execution serial.
	Parallelism int
	// Cache, when set, memoizes prepared statements (rewrite → lower →
	// annotate → fragment) keyed by normalized SQL, policy module, policy
	// fingerprint and the store's schema epoch. One cache may be shared by
	// several processors over the same store — the policy fingerprint keeps
	// their entries apart. Nil disables caching.
	Cache *PlanCache
	// FixedPlacement disables the cost-based fragment placement search:
	// every fragment runs at its MinLevel floor, the fixed pre-search
	// policy. The default (false) places each fragment at the rung
	// minimizing modeled bytes crossing level boundaries, with MinLevel as
	// a hard floor — privacy and capability are never traded for traffic.
	// Placement changes only which node runs a stage, never its rows or
	// the egress bytes.
	FixedPlacement bool
	// ReorderJoins enables greedy cost-based join reordering (smallest
	// modeled intermediate first) on inner equi-join clusters before
	// fragmentation. Off by default: reordering changes the fragment SQL
	// surface, so callers opt in.
	ReorderJoins bool
}

// Processor is the privacy-aware query processor.
type Processor struct {
	store    *storage.Store
	pol      *policy.Policy
	topo     *network.Topology
	rewriter *rewrite.Rewriter
	anon     AnonConfig
	maxLoss  float64
	journal  *audit.Journal
	par      int
	cache    *PlanCache
	// polFP is the policy fingerprint component of cache keys, computed
	// once — the policy is immutable after validation.
	polFP string
	// fixedPlace and reorder mirror Config.FixedPlacement/ReorderJoins;
	// both are cache-key components (the same SQL compiles to different
	// plans under different planning modes).
	fixedPlace bool
	reorder    bool
}

// New validates the configuration and builds a Processor.
func New(cfg Config) (*Processor, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("%w: nil store", ErrProcessor)
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("%w: nil policy", ErrProcessor)
	}
	if err := cfg.Policy.Validate(); err != nil {
		return nil, err
	}
	topo := cfg.Topology
	if topo == nil {
		topo = network.DefaultApartment()
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	return &Processor{
		store:      cfg.Store,
		pol:        cfg.Policy,
		topo:       topo,
		rewriter:   rewrite.New(cfg.Store.Catalog(), cfg.Rewrite),
		anon:       cfg.Anon,
		maxLoss:    cfg.MaxInfoLoss,
		journal:    cfg.Journal,
		par:        par,
		cache:      cfg.Cache,
		polFP:      cfg.Policy.Fingerprint(),
		fixedPlace: cfg.FixedPlacement,
		reorder:    cfg.ReorderJoins,
	}, nil
}

// statsSource adapts the store's per-table statistics (row counts, wire
// bytes, per-column NDV/min/max/null counts) to the plan estimator's
// interface. The closure reads the store live, so each compilation sees
// the statistics as of compile time; cached plans keep the placement they
// were compiled with until DDL shifts the schema epoch.
func (p *Processor) statsSource() logical.Stats {
	st := p.store
	return func(table string) (*logical.TableStats, bool) {
		ts, err := st.TableStats(table)
		if err != nil {
			return nil, false
		}
		out := &logical.TableStats{
			Rows: float64(ts.Rows),
			Cols: make(map[string]logical.ColStats, len(ts.Cols)),
		}
		if ts.Rows > 0 {
			out.RowBytes = float64(ts.Bytes) / float64(ts.Rows)
		}
		for _, c := range ts.Cols {
			nullFrac := 0.0
			if ts.Rows > 0 {
				nullFrac = float64(c.Nulls) / float64(ts.Rows)
			}
			cs := logical.ColStats{
				NDV:      float64(c.NDV),
				NullFrac: nullFrac,
				HasRange: c.HasRange,
				Min:      c.Min,
				Max:      c.Max,
				AvgBytes: c.AvgBytes(ts.Rows),
			}
			if c.Hist != nil {
				cs.Hist = c.Hist
			}
			out.Cols[strings.ToLower(c.Name)] = cs
		}
		return out, true
	}
}

// Cache returns the processor's plan cache, or nil.
func (p *Processor) Cache() *PlanCache { return p.cache }

// Parallelism reports the worker count query pipelines run with (1 =
// serial).
func (p *Processor) Parallelism() int { return p.par }

// Journal returns the configured audit journal, or nil.
func (p *Processor) Journal() *audit.Journal { return p.journal }

// AnonReport documents the postprocessing step.
type AnonReport struct {
	Method           AnonMethod
	QuasiIdentifiers []string
	// DD and DDRatio follow §3.2's Direct Distance.
	DD      int
	DDRatio float64
	// SuppressedRows counts rows dropped by full-domain suppression.
	SuppressedRows int
	// LDiversitySuppressed counts rows dropped to restore l-diversity.
	LDiversitySuppressed int
}

// Outcome is the complete audit trail of one processed query.
type Outcome struct {
	// OriginalSQL and RewrittenSQL document the preprocessing.
	OriginalSQL  string
	RewrittenSQL string
	// RewriteReport details the applied policy transformations.
	RewriteReport *rewrite.Report
	// Plan is the vertical fragmentation.
	Plan *fragment.Plan
	// Net is the simulated chain execution with byte accounting.
	Net *network.RunStats
	// Result is the final (anonymized) result the requester receives.
	Result *engine.Result
	// PreAnonymization is the result before postprocessing.
	PreAnonymization *engine.Result
	// Anon documents the postprocessing, nil when method is none.
	Anon *AnonReport

	// logical memoizes Logical(); logicalFn builds it on first use. The
	// -explain view costs a second lowering + annotation + optimization, so
	// plain Process/Query calls that never Explain must not pay for it.
	logical   logical.Node
	logicalFn func() logical.Node
	// InfoLoss is the max per-column KL divergence between the original
	// query's answer and the rewritten one (§3.1 satisfaction check);
	// negative when the check was disabled or the original is denied.
	InfoLoss float64
	// Satisfactory is false when InfoLoss exceeded the configured budget.
	Satisfactory bool
}

// Logical returns the optimized logical plan of the rewritten query, with
// policy transformations annotated as operator provenance (the -explain
// view). It is informational; execution runs over Plan's fragments. The
// plan is built lazily on first call and memoized — Outcome is not safe for
// concurrent first use of Logical/Explain.
func (o *Outcome) Logical() logical.Node {
	if o.logical == nil && o.logicalFn != nil {
		o.logical = o.logicalFn()
		o.logicalFn = nil
	}
	return o.logical
}

// Process runs the full Figure 2 pipeline for a SQL query under the named
// policy module. The whole vertical — rewrite evaluation, fragment chain,
// storage scans — is bound to ctx; cancellation is checked per batch.
func (p *Processor) Process(ctx context.Context, sql, moduleID string) (*Outcome, error) {
	sel, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return p.ProcessSelect(ctx, sel, moduleID)
}

// ProcessSelect is Process for an already-parsed statement.
func (p *Processor) ProcessSelect(ctx context.Context, sel *sqlparser.Select, moduleID string) (*Outcome, error) {
	out, err := p.processSelect(ctx, sel, moduleID)
	if p.journal != nil {
		rows := 0
		if err == nil {
			rows = len(out.Result.Rows)
		}
		p.journal.Append(journalEntry(sel, moduleID, out, rows, err))
	}
	return out, err
}

// journalEntry builds the audit record for one processed (or denied) query.
// Policy refusals are recorded as denials; other errors (cancellation,
// execution failure) as failures, so the denial log stays meaningful.
func journalEntry(sel *sqlparser.Select, moduleID string, out *Outcome, resultRows int, err error) audit.Entry {
	e := audit.Entry{Module: moduleID, OriginalSQL: sel.SQL()}
	if err != nil {
		if errors.Is(err, rewrite.ErrDenied) {
			e.Denied = true
			e.DenyReason = err.Error()
		} else {
			e.Failed = true
			e.FailReason = err.Error()
		}
		return e
	}
	e.RewrittenSQL = out.RewrittenSQL
	e.RewriteSummary = out.RewriteReport.Summary()
	e.RawBytes = out.Net.RawBytes
	e.EgressBytes = out.Net.EgressBytes
	e.ResultRows = resultRows
	e.Satisfactory = out.Satisfactory
	if out.Anon != nil {
		e.AnonMethod = string(out.Anon.Method)
		e.DDRatio = out.Anon.DDRatio
	}
	return e
}

// lowerPlan is the one place core lowers a statement into the plan IR;
// tests hook it to prove how many plan trees a call path builds.
var lowerPlanHook func()

func lowerPlan(sel *sqlparser.Select) (logical.Node, error) {
	if lowerPlanHook != nil {
		lowerPlanHook()
	}
	return logical.FromAST(sel)
}

// prepare runs the preprocessing common to the materialized and streaming
// paths: module lookup, policy rewrite, satisfaction check, fragmentation.
// The returned Outcome carries everything known before execution. The
// per-statement compilation (rewrite → lower → annotate → fragment) goes
// through preparedFor, which memoizes it when the processor has a plan
// cache; the satisfaction check stays per-call — it compares answers, not
// statements.
func (p *Processor) prepare(ctx context.Context, sel *sqlparser.Select, moduleID string) (*Outcome, *fragment.Plan, error) {
	mod, ok := p.pol.ModuleByID(moduleID)
	if !ok {
		return nil, nil, fmt.Errorf("%w: no policy module %q", ErrProcessor, moduleID)
	}

	out := &Outcome{OriginalSQL: sel.SQL(), Satisfactory: true, InfoLoss: -1}

	// --- Preprocessing: policy rewrite (§3.1), lowered to the logical
	// plan IR with policy provenance on the operators it introduced,
	// fragmented vertically (§4) — cached per statement shape. ---
	pr, err := p.preparedFor(sel, mod)
	if err != nil {
		return nil, nil, err
	}
	out.RewrittenSQL = pr.rewrittenSQL
	out.RewriteReport = pr.report
	out.Plan = pr.plan

	// Satisfaction check: compare original and rewritten answers.
	if p.maxLoss > 0 {
		loss, err := p.infoLoss(ctx, sel, pr.rewritten)
		if err == nil {
			out.InfoLoss = loss
			out.Satisfactory = loss <= p.maxLoss
		}
	}

	// The -explain view: a fresh lowering (the fragments share subtrees of
	// the prepared one), annotated and optimized against the store's catalog
	// so pruned scan columns and pushed predicates are visible. Deferred
	// until Outcome.Logical/Explain actually asks for it — a plain
	// Process/Query builds at most one plan tree (none on a cache hit).
	moduleID = mod.ID
	store := p.store
	rewritten, rep := pr.rewritten, pr.report
	out.logicalFn = func() logical.Node {
		expl, err := lowerPlan(rewritten)
		if err != nil {
			return nil
		}
		rep.Annotate(expl, moduleID)
		return logical.Optimize(expl, logical.Options{Catalog: engine.New(store).Catalog()})
	}
	return out, pr.plan, nil
}

func (p *Processor) processSelect(ctx context.Context, sel *sqlparser.Select, moduleID string) (*Outcome, error) {
	out, plan, err := p.prepare(ctx, sel, moduleID)
	if err != nil {
		return nil, err
	}

	// --- Chain execution (§4). ---
	stats, err := network.Run(ctx, p.topo, plan, p.store, network.WithParallelism(p.par))
	if err != nil {
		return nil, err
	}
	out.Net = stats
	out.PreAnonymization = stats.Result

	// --- Postprocessing: anonymization A (§3.2). ---
	res, anonRep, err := p.postprocess(stats.Result)
	if err != nil {
		return nil, err
	}
	out.Result = res
	out.Anon = anonRep
	return out, nil
}

// infoLoss measures the §3.1 information-loss estimate: the maximum KL
// divergence over the numeric columns shared by the original and rewritten
// answers.
func (p *Processor) infoLoss(ctx context.Context, orig, rewritten *sqlparser.Select) (float64, error) {
	eng := engine.New(p.store).WithParallelism(p.par)
	or, err := eng.Select(ctx, orig)
	if err != nil {
		return 0, err
	}
	rr, err := eng.Select(ctx, rewritten)
	if err != nil {
		return 0, err
	}
	maxLoss := 0.0
	for _, c := range or.Schema.Columns {
		if !c.Type.Numeric() {
			continue
		}
		ri, err := rr.Schema.Index(c.Name)
		if err != nil {
			continue
		}
		oi, _ := or.Schema.Index(c.Name)
		loss, err := columnKL(or, oi, rr, ri)
		if err != nil {
			continue
		}
		if loss > maxLoss {
			maxLoss = loss
		}
	}
	return maxLoss, nil
}

// columnKL compares one column of two results via privmetrics histograms.
func columnKL(a *engine.Result, ai int, b *engine.Result, bi int) (float64, error) {
	rel := schema.NewRelation("cmp", schema.Col("v", schema.TypeFloat))
	proj := func(r *engine.Result, idx int) schema.Rows {
		out := make(schema.Rows, 0, len(r.Rows))
		for _, row := range r.Rows {
			if row[idx].Type().Numeric() {
				out = append(out, schema.Row{schema.Float(row[idx].AsFloat())})
			}
		}
		return out
	}
	return privmetrics.ColumnKL(rel, proj(a, ai), proj(b, bi), "v", 16)
}

// postprocess anonymizes a result set per the configured method.
func (p *Processor) postprocess(res *engine.Result) (*engine.Result, *AnonReport, error) {
	if p.anon.Method == "" || p.anon.Method == AnonNone || len(res.Rows) == 0 {
		return res, nil, nil
	}
	qi := p.anon.QuasiIdentifiers
	if len(qi) == 0 {
		qi = anonymize.DetectQuasiIdentifiers(res.Schema, res.Rows, 0.2)
	}
	rep := &AnonReport{Method: p.anon.Method, QuasiIdentifiers: qi}
	rng := rand.New(rand.NewSource(p.anon.Seed))

	var anonRows schema.Rows
	var err error
	switch p.anon.Method {
	case AnonMondrian:
		if len(qi) == 0 {
			return res, nil, nil // nothing identifying to protect
		}
		anonRows, err = anonymize.Mondrian(res.Schema, res.Rows, qi, p.anon.K)
	case AnonFullDomain:
		if len(qi) == 0 {
			return res, nil, nil
		}
		maxSup := p.anon.MaxSuppress
		if maxSup == 0 {
			maxSup = len(res.Rows) / 10
		}
		var suppressed int
		anonRows, suppressed, err = anonymize.FullDomain(res.Schema, res.Rows, qi, p.anon.K, maxSup)
		rep.SuppressedRows = suppressed
	case AnonSlicing:
		groups := sliceGroups(res.Schema, qi)
		bucket := p.anon.BucketSize
		if bucket == 0 {
			bucket = 4
		}
		anonRows, err = anonymize.Slice(res.Schema, res.Rows, groups, bucket, rng)
	case AnonDifferential:
		var cols []string
		for _, c := range res.Schema.Columns {
			if c.Type.Numeric() {
				cols = append(cols, c.Name)
			}
		}
		sens := p.anon.Sensitivity
		if sens == 0 {
			sens = 1
		}
		anonRows, err = anonymize.NoisyRows(res.Schema, res.Rows, cols, sens, p.anon.Epsilon, rng)
	default:
		return nil, nil, fmt.Errorf("%w: unknown anonymization method %q", ErrProcessor, p.anon.Method)
	}
	if err != nil {
		return nil, nil, err
	}

	// Optional l-diversity pass: suppress homogeneous equivalence classes
	// (the homogeneity attack k-anonymity alone leaves open).
	if p.anon.LDiversity > 1 && p.anon.SensitiveColumn != "" && res.Schema.Has(p.anon.SensitiveColumn) {
		diverse, suppressed, derr := anonymize.EnforceLDiversity(
			res.Schema, anonRows, qi, p.anon.SensitiveColumn, p.anon.LDiversity)
		if derr != nil {
			return nil, nil, derr
		}
		anonRows = diverse
		rep.LDiversitySuppressed = suppressed
	}

	// Quality accounting with the paper's Direct Distance. Suppression
	// changes cardinality; DD is only defined for equal shapes.
	if len(anonRows) == len(res.Rows) {
		dd, err := privmetrics.DirectDistance(res.Rows, anonRows)
		if err == nil {
			rep.DD = dd
			rep.DDRatio, _ = privmetrics.DirectDistanceRatio(res.Rows, anonRows)
		}
	}
	return &engine.Result{Schema: res.Schema, Rows: anonRows}, rep, nil
}

// sliceGroups partitions the schema for slicing: the quasi-identifiers form
// one permuted group; every remaining column anchors the buckets.
func sliceGroups(rel *schema.Relation, qi []string) [][]string {
	if len(qi) == 0 {
		// Fall back to permuting each column independently except the
		// first (which anchors).
		var groups [][]string
		for _, c := range rel.Columns[1:] {
			groups = append(groups, []string{c.Name})
		}
		return groups
	}
	return [][]string{qi}
}

// ResidualRisk addresses the open problem the paper closes with: whether a
// privacy-violating query Q↓ can still be computed from the released d′
// (the rewritten query's output). When the verdict is Answerable, the
// anonymization step A must be extended (§4.1). The check is conservative
// in the attacker's favour: it may flag a query as answerable although no
// rewriting exists, never the reverse.
func (p *Processor) ResidualRisk(violatingSQL string, out *Outcome) (*containment.Verdict, error) {
	violating, err := sqlparser.Parse(violatingSQL)
	if err != nil {
		return nil, err
	}
	view, err := sqlparser.Parse(out.RewrittenSQL)
	if err != nil {
		return nil, err
	}
	return containment.New(p.store.Catalog()).Answerable(violating, view)
}

// PipelineOutcome extends Outcome for full analysis pipelines: the residual
// R part that stays on the cloud plus its final answer.
type PipelineOutcome struct {
	*Outcome
	// ResidualR describes the cloud-side remainder Qδ in R-like syntax.
	ResidualR string
	// Final is the answer of the residual analysis applied to d′.
	Final *engine.Result
}

// ProcessPipeline runs the §4.2 end-to-end flow for an analysis pipeline:
// the SQLable part is extracted ([Weu16]), privacy-rewritten, fragmented and
// executed down the chain; the residual R code (filterByClass) runs on the
// cloud against the shipped d′.
func (p *Processor) ProcessPipeline(ctx context.Context, pl recognition.Node, moduleID string) (*PipelineOutcome, error) {
	sel, ok := recognition.ExtractSQL(pl)
	if !ok {
		return nil, fmt.Errorf("%w: pipeline has no SQLable part", ErrProcessor)
	}
	out, err := p.ProcessSelect(ctx, sel, moduleID)
	if err != nil {
		return nil, err
	}
	residual := recognition.Residual(pl, "d'")
	frames := map[string]*engine.Result{"d'": out.Result}
	final, err := recognition.Run(ctx, residual, engine.New(p.store).WithParallelism(p.par), frames)
	if err != nil {
		return nil, err
	}
	return &PipelineOutcome{
		Outcome:   out,
		ResidualR: residual.Describe(),
		Final:     final,
	}, nil
}

// Explain renders the EXPLAIN view of the processed query: the optimized
// logical plan of the rewritten statement (policy transformations appear as
// operator provenance lines) followed by the per-fragment plan trees and
// their placement levels.
func (o *Outcome) Explain() string {
	var b strings.Builder
	b.WriteString("logical plan (rewritten, optimized):\n")
	if lp := o.Logical(); lp != nil {
		for _, line := range strings.Split(strings.TrimRight(logical.String(lp), "\n"), "\n") {
			b.WriteString("  " + line + "\n")
		}
	}
	b.WriteString("fragment plans (placement):\n")
	if o.Plan != nil {
		b.WriteString(o.Plan.Explain())
	}
	return b.String()
}

// Summary renders the audit trail.
func (o *Outcome) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "original : %s\n", o.OriginalSQL)
	fmt.Fprintf(&b, "rewritten: %s\n", o.RewrittenSQL)
	fmt.Fprintf(&b, "rewrite  : %s\n", o.RewriteReport.Summary())
	if o.InfoLoss >= 0 {
		fmt.Fprintf(&b, "info loss: %.4f (satisfactory: %v)\n", o.InfoLoss, o.Satisfactory)
	}
	b.WriteString("plan:\n")
	b.WriteString(o.Plan.String())
	b.WriteString(o.Net.Summary())
	if o.Anon != nil {
		fmt.Fprintf(&b, "anonymized with %s over QI %v: DD=%d (ratio %.3f)\n",
			o.Anon.Method, o.Anon.QuasiIdentifiers, o.Anon.DD, o.Anon.DDRatio)
	}
	return b.String()
}
