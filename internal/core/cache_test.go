package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"paradise/internal/policy"
	"paradise/internal/rewrite"
	"paradise/internal/schema"
	"paradise/internal/storage"
)

// cacheStore builds a small deterministic d with a sensitive column, so
// Figure 4 denials are reachable.
func cacheStore(t testing.TB) *storage.Store {
	t.Helper()
	st := storage.NewStore()
	tab := st.Create(schema.NewRelation("d",
		schema.SensitiveCol("user", schema.TypeString),
		schema.Col("x", schema.TypeFloat),
		schema.Col("y", schema.TypeFloat),
		schema.Col("z", schema.TypeFloat),
		schema.Col("t", schema.TypeInt),
	))
	for i := 0; i < 64; i++ {
		if err := tab.Append(schema.Row{
			schema.String(fmt.Sprintf("u%d", i%3)),
			schema.Float(float64(i % 8)),
			schema.Float(float64(i % 6)),
			schema.Float(0.5 + float64(i%30)/10),
			schema.Int(int64(i) * 50),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func cachedProcessor(t testing.TB, st *storage.Store, pol *policy.Policy, c *PlanCache) *Processor {
	t.Helper()
	p, err := New(Config{Store: st, Policy: pol, Cache: c, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// allowAllActionFilter is a second policy under the same module ID as
// Figure 4 but with different rules: everything plainly allowed. Same SQL,
// same module — only the policy fingerprint tells cache entries apart.
func allowAllActionFilter() *policy.Policy {
	mod := &policy.Module{ID: "ActionFilter"}
	for _, n := range []string{"user", "x", "y", "z", "t"} {
		mod.Attributes = append(mod.Attributes, &policy.Attribute{Name: n, Allow: true})
	}
	return &policy.Policy{Modules: []*policy.Module{mod}}
}

func wantStats(t *testing.T, c *PlanCache, hits, misses uint64, size int) {
	t.Helper()
	s := c.Stats()
	if s.Hits != hits || s.Misses != misses || s.Size != size {
		t.Fatalf("cache stats = hits %d misses %d size %d, want %d/%d/%d",
			s.Hits, s.Misses, s.Size, hits, misses, size)
	}
}

// TestPlanCacheHitOnRepeat: the second run of the same statement shape is a
// hit, including spelling variants that parse to the same normalized SQL.
func TestPlanCacheHitOnRepeat(t *testing.T) {
	c := NewPlanCache(0)
	p := cachedProcessor(t, cacheStore(t), policy.Figure4(), c)
	ctx := context.Background()

	if _, err := p.Process(ctx, "SELECT x, y FROM d", "ActionFilter"); err != nil {
		t.Fatal(err)
	}
	wantStats(t, c, 0, 1, 1)
	if _, err := p.Process(ctx, "SELECT x, y FROM d", "ActionFilter"); err != nil {
		t.Fatal(err)
	}
	wantStats(t, c, 1, 1, 1)
	// Different raw spelling, same parse: whitespace and keyword case
	// normalize away in the canonical rendering the key is built from.
	if _, err := p.Process(ctx, "select  x,   y from d", "ActionFilter"); err != nil {
		t.Fatal(err)
	}
	wantStats(t, c, 2, 1, 1)
}

// TestPlanCacheDifferentPolicyMisses: two processors sharing one cache and
// one store, same SQL, same module ID, different policies — the second must
// miss and compile its own plan (the Figure 4 session injects x > y, the
// allow-all one must not inherit it).
func TestPlanCacheDifferentPolicyMisses(t *testing.T) {
	st := cacheStore(t)
	c := NewPlanCache(0)
	fig4 := cachedProcessor(t, st, policy.Figure4(), c)
	open := cachedProcessor(t, st, allowAllActionFilter(), c)
	ctx := context.Background()

	const q = "SELECT x, y FROM d"
	a, err := fig4.Process(ctx, q, "ActionFilter")
	if err != nil {
		t.Fatal(err)
	}
	b, err := open.Process(ctx, q, "ActionFilter")
	if err != nil {
		t.Fatal(err)
	}
	wantStats(t, c, 0, 2, 2)
	if a.RewrittenSQL == b.RewrittenSQL {
		t.Fatalf("policies shared a rewrite: %q", a.RewrittenSQL)
	}
	// Each processor now hits its own entry.
	if _, err := fig4.Process(ctx, q, "ActionFilter"); err != nil {
		t.Fatal(err)
	}
	if _, err := open.Process(ctx, q, "ActionFilter"); err != nil {
		t.Fatal(err)
	}
	wantStats(t, c, 2, 2, 2)
}

// TestPlanCacheEpochInvalidation: DDL on the store bumps the schema epoch,
// so the statement recompiles; the stale entry stays behind until the LRU
// evicts it (capacity, not correctness).
func TestPlanCacheEpochInvalidation(t *testing.T) {
	st := cacheStore(t)
	c := NewPlanCache(0)
	p := cachedProcessor(t, st, policy.Figure4(), c)
	ctx := context.Background()

	const q = "SELECT x, y FROM d"
	if _, err := p.Process(ctx, q, "ActionFilter"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Process(ctx, q, "ActionFilter"); err != nil {
		t.Fatal(err)
	}
	wantStats(t, c, 1, 1, 1)

	st.Create(schema.NewRelation("other", schema.Col("v", schema.TypeInt)))
	if _, err := p.Process(ctx, q, "ActionFilter"); err != nil {
		t.Fatal(err)
	}
	wantStats(t, c, 1, 2, 2) // recompiled under the new epoch; old entry lingers
	if _, err := p.Process(ctx, q, "ActionFilter"); err != nil {
		t.Fatal(err)
	}
	wantStats(t, c, 2, 2, 2)
}

// TestPlanCacheLRUBound: the cache never exceeds its capacity; the least
// recently used entry goes first, and a re-run of the evicted statement is
// a miss again.
func TestPlanCacheLRUBound(t *testing.T) {
	c := NewPlanCache(2)
	p := cachedProcessor(t, cacheStore(t), policy.Figure4(), c)
	ctx := context.Background()

	queries := []string{
		"SELECT x FROM d",
		"SELECT y FROM d",
		"SELECT t FROM d",
	}
	for _, q := range queries {
		if _, err := p.Process(ctx, q, "ActionFilter"); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Size != 2 || s.Evictions != 1 {
		t.Fatalf("after 3 inserts at capacity 2: size %d evictions %d", s.Size, s.Evictions)
	}
	// The first statement was the LRU victim: running it again misses.
	if _, err := p.Process(ctx, queries[0], "ActionFilter"); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Misses != 4 || got.Hits != 0 {
		t.Fatalf("evicted statement did not miss: %+v", got)
	}
}

// TestPlanCacheNeverCachesDenials: a policy-denied statement recompiles
// (and re-denies) on every run; nothing is inserted.
func TestPlanCacheNeverCachesDenials(t *testing.T) {
	c := NewPlanCache(0)
	p := cachedProcessor(t, cacheStore(t), policy.Figure4(), c)
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		_, err := p.Process(ctx, "SELECT user FROM d", "ActionFilter")
		if !errors.Is(err, rewrite.ErrDenied) {
			t.Fatalf("run %d: err = %v, want policy denial", i, err)
		}
	}
	wantStats(t, c, 0, 2, 0)
}

// TestPlanCacheSingleflight: N goroutines racing one cold key perform
// exactly one compilation — the leader's — and all requests succeed with
// the shared artifact. Run under -race this also proves the flight's
// publication ordering.
func TestPlanCacheSingleflight(t *testing.T) {
	c := NewPlanCache(0)
	p := cachedProcessor(t, cacheStore(t), policy.Figure4(), c)
	ctx := context.Background()

	var lowered atomic.Int64
	lowerPlanHook = func() { lowered.Add(1) }
	defer func() { lowerPlanHook = nil }()

	const workers = 16
	start := make(chan struct{})
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, errs[i] = p.Process(ctx, "SELECT x, y FROM d", "ActionFilter")
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if got := lowered.Load(); got != 1 {
		t.Fatalf("lowered %d plan trees for one cold key, want 1", got)
	}
	s := c.Stats()
	if s.Size != 1 {
		t.Fatalf("cache size = %d, want 1", s.Size)
	}
	// Every lookup still counts exactly once; how many were hits depends on
	// arrival timing, but at least the leader missed.
	if s.Hits+s.Misses != workers || s.Misses < 1 {
		t.Fatalf("lookup accounting off: hits %d misses %d, want %d total with >= 1 miss",
			s.Hits, s.Misses, workers)
	}
}

// TestPlanCacheSingleflightDenial: a failed flight caches nothing and every
// racing request re-derives its own denial.
func TestPlanCacheSingleflightDenial(t *testing.T) {
	c := NewPlanCache(0)
	p := cachedProcessor(t, cacheStore(t), policy.Figure4(), c)
	ctx := context.Background()

	const workers = 8
	start := make(chan struct{})
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, errs[i] = p.Process(ctx, "SELECT user FROM d", "ActionFilter")
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, rewrite.ErrDenied) {
			t.Fatalf("worker %d: err = %v, want policy denial", i, err)
		}
	}
	if s := c.Stats(); s.Size != 0 {
		t.Fatalf("denied statement was cached: size %d", s.Size)
	}
}

// TestPolicyFingerprint: equal rule content gives equal fingerprints
// regardless of instance identity; any rule difference changes it.
func TestPolicyFingerprint(t *testing.T) {
	a, b := policy.Figure4(), policy.Figure4()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("two Figure4 instances disagree on fingerprint")
	}
	if a.Fingerprint() == allowAllActionFilter().Fingerprint() {
		t.Fatal("different policies share a fingerprint")
	}
}
