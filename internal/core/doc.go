// Package core assembles the PArADISE privacy-aware query processor of
// Figure 2: a preprocessor that checks and rewrites queries against the
// user's privacy policy, the vertical fragmentation and simulated execution
// across the peer chain, and a postprocessor that anonymizes result sets and
// scores the information loss ("Golden Path", §3.2). It is the public entry
// point of this library; the cmd tools and examples drive everything through
// the Processor type.
package core
