package core

import (
	"container/list"
	"strconv"
	"strings"
	"sync"

	"paradise/internal/fragment"
	logical "paradise/internal/plan"
	"paradise/internal/policy"
	"paradise/internal/rewrite"
	"paradise/internal/sqlparser"
)

// prepared is the immutable product of the per-statement compilation
// pipeline — rewrite → lower → annotate → fragment — for one statement
// shape under one policy module. Everything in it is shared read-only
// across the requests that hit the cache: fragment execution compiles the
// plan trees into fresh operator pipelines without mutating them (the
// plan.Block Rebuild invariant), and the rewrite report is only read after
// construction. The satisfaction check and the chain execution stay
// per-request — they depend on the data, not the statement.
type prepared struct {
	rewritten    *sqlparser.Select
	rewrittenSQL string
	report       *rewrite.Report
	plan         *fragment.Plan
}

// CacheStats is a point-in-time snapshot of plan-cache effectiveness.
type CacheStats struct {
	// Hits and Misses count lookups; a miss is followed by a compile and,
	// on success, an insert. Denied or malformed statements count as misses
	// but are never inserted, so they recompile (and re-deny) every time.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evictions counts entries pushed out by the LRU capacity bound.
	// Entries keyed by a stale schema epoch linger until evicted — they can
	// never be looked up again, so staleness costs capacity, not
	// correctness.
	Evictions uint64 `json:"evictions"`
	// Size and Capacity describe the current occupancy.
	Size     int `json:"size"`
	Capacity int `json:"capacity"`
}

// PlanCache memoizes prepared statements across the sessions that share it.
// Keys combine the normalized SQL (the canonical rendering of the parsed
// statement, so spelling variants collide), the policy module, the policy
// fingerprint (sessions with different policies never share plans, even on
// identical SQL) and the store's schema epoch (any DDL shifts the epoch,
// orphaning every earlier entry). It is safe for concurrent use and bounded
// by an LRU over lookup recency.
//
// A PlanCache is optional: sessions without one (the default) compile every
// statement per call, exactly as before.
type PlanCache struct {
	mu        sync.Mutex
	cap       int
	entries   map[string]*list.Element
	lru       *list.List // front = most recently used
	inflight  map[string]*flight
	hits      uint64
	misses    uint64
	evictions uint64
}

// flight coalesces concurrent compilations of one cold key: the first
// misser becomes the leader and compiles; everyone else blocks on done and
// shares the leader's artifact. pr is nil after a failed flight — waiters
// then compile (and re-deny, re-journal) for themselves, preserving the
// denials-are-never-cached contract per request.
type flight struct {
	done chan struct{}
	pr   *prepared
}

type cacheEntry struct {
	key string
	pr  *prepared
}

// DefaultPlanCacheSize bounds a NewPlanCache(0) cache: generous for any
// realistic statement-shape population, small enough that stale-epoch
// leftovers are irrelevant.
const DefaultPlanCacheSize = 256

// NewPlanCache creates a plan cache holding at most capacity prepared
// statements (<= 0 selects DefaultPlanCacheSize).
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheSize
	}
	return &PlanCache{
		cap:      capacity,
		entries:  make(map[string]*list.Element, capacity),
		lru:      list.New(),
		inflight: make(map[string]*flight),
	}
}

// acquire is the singleflight lookup: a present key is a hit; a cold key is
// a miss that either joins the in-progress flight for that key or starts a
// new one (leader=true — the caller must compile and call complete). A
// lookup that joins an existing flight is counted later, when the flight
// resolves (coalescedHit/coalescedMiss) — whether it was effectively a hit
// depends on whether the leader's compile succeeds. Every lookup still
// counts exactly one hit or one miss.
func (c *PlanCache) acquire(key string) (pr *prepared, fl *flight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).pr, nil, false
	}
	if fl, ok := c.inflight[key]; ok {
		return nil, fl, false
	}
	c.misses++
	fl = &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	return nil, fl, true
}

// coalescedHit and coalescedMiss account a lookup that joined an in-flight
// compilation, once its outcome is known: sharing the leader's artifact is
// a hit (this lookup compiled nothing), while a failed flight's
// per-request recompile is a miss. With this split, Misses counts actual
// lookup-triggered compiles, so a burst of concurrent misses on one cold
// key reports one miss and N−1 hits.
func (c *PlanCache) coalescedHit() {
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
}

func (c *PlanCache) coalescedMiss() {
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
}

// complete finishes a flight: a successful artifact is inserted before the
// flight is retired, so lookups arriving in between hit the cache instead
// of starting a redundant compile. Closing done releases the waiters (the
// channel close orders fl.pr's publication before their reads).
func (c *PlanCache) complete(key string, fl *flight, pr *prepared) {
	if pr != nil {
		c.put(key, pr)
	}
	c.mu.Lock()
	fl.pr = pr
	delete(c.inflight, key)
	c.mu.Unlock()
	close(fl.done)
}

// put inserts a prepared statement, evicting the least recently used entry
// beyond capacity.
func (c *PlanCache) put(key string, pr *prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).pr = pr
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, pr: pr})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Stats snapshots the counters.
func (c *PlanCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Size:      c.lru.Len(),
		Capacity:  c.cap,
	}
}

// cacheKey builds the composite lookup key for one statement under one
// module. The components are joined with NUL — none of them can contain it
// (SQL rendering escapes control characters, module IDs are validated
// identifiers, the fingerprint is hex, the epoch decimal) — so distinct
// component tuples never collide.
func (p *Processor) cacheKey(sel *sqlparser.Select, mod *policy.Module) string {
	var b strings.Builder
	b.WriteString(sel.SQL())
	b.WriteByte(0)
	b.WriteString(strings.ToLower(mod.ID))
	b.WriteByte(0)
	b.WriteString(p.polFP)
	b.WriteByte(0)
	b.WriteString(strconv.FormatUint(p.store.Epoch(), 10))
	b.WriteByte(0)
	// Planning-mode flags: the same statement compiles to different plans
	// under fixed vs cost-based placement and with/without join reordering.
	if p.fixedPlace {
		b.WriteByte('f')
	}
	if p.reorder {
		b.WriteByte('r')
	}
	return b.String()
}

// prepared returns the statement's compiled form — rewritten SQL, rewrite
// report, fragment plan — consulting the plan cache when the processor has
// one. Compile errors (policy denials, unsupported shapes) are never
// cached: they recompile per request so every denial is re-derived and
// journaled from a live evaluation.
//
// Concurrent misses on one cold key are coalesced (singleflight): the first
// misser compiles once for everyone, waiters block on the flight and share
// the artifact. A failed flight releases its waiters to compile for
// themselves — errors stay per-request, never shared, never cached.
func (p *Processor) preparedFor(sel *sqlparser.Select, mod *policy.Module) (*prepared, error) {
	if p.cache == nil {
		return p.compileStatement(sel, mod)
	}
	key := p.cacheKey(sel, mod)
	pr, fl, leader := p.cache.acquire(key)
	if pr != nil {
		return pr, nil
	}
	if !leader {
		<-fl.done
		if fl.pr != nil {
			p.cache.coalescedHit()
			return fl.pr, nil
		}
		p.cache.coalescedMiss()
		return p.compileStatement(sel, mod)
	}
	pr, err := p.compileStatement(sel, mod)
	p.cache.complete(key, fl, pr)
	return pr, err
}

// compileStatement runs the per-statement compilation pipeline: rewrite →
// lower → annotate → [reorder] → fragment → [place]. The two bracketed
// cost-based steps consult the store's live statistics; the placement they
// bake into the plan persists for the entry's cache lifetime (until DDL
// shifts the epoch or the LRU evicts it).
func (p *Processor) compileStatement(sel *sqlparser.Select, mod *policy.Module) (*prepared, error) {
	rewritten, rep, err := p.rewriter.Rewrite(sel, mod)
	if err != nil {
		return nil, err
	}
	root, err := lowerPlan(rewritten)
	if err != nil {
		return nil, err
	}
	rep.Annotate(root, mod.ID)
	if p.reorder {
		root = logical.ReorderJoins(root, p.statsSource())
	}
	plan, err := fragment.New().FromPlan(root)
	if err != nil {
		return nil, err
	}
	if !p.fixedPlace {
		plan.PlaceCostBased(p.statsSource())
	}
	return &prepared{
		rewritten:    rewritten,
		rewrittenSQL: rewritten.SQL(),
		report:       rep,
		plan:         plan,
	}, nil
}
