package containment

import (
	"testing"

	"paradise/internal/sqlparser"
)

func iv(t *testing.T, cond string) interval {
	t.Helper()
	e, err := sqlparser.ParseExpr(cond)
	if err != nil {
		t.Fatal(err)
	}
	cols := map[string]string{"z": "z", "x": "x"}
	_, out, ok := constInterval(e, cols)
	if !ok {
		t.Fatalf("constInterval(%q) not recognized", cond)
	}
	return out
}

func TestIntervalContains(t *testing.T) {
	cases := []struct {
		outer, inner string
		want         bool
	}{
		{"z < 2", "z < 1", true},
		{"z < 2", "z < 2", true},
		{"z < 2", "z <= 2", false}, // open vs closed at the boundary
		{"z <= 2", "z < 2", true},
		{"z < 2", "z < 3", false},
		{"z > 0", "z > 1", true},
		{"z > 1", "z > 0", false},
		{"z >= 1", "z > 1", true},
		{"z > 1", "z >= 1", false},
		{"z < 2", "z = 1", true},
		{"z < 2", "z = 2", false},
		{"z = 1", "z = 1", true},
		{"z = 1", "z = 2", false},
	}
	for _, c := range cases {
		outer, inner := iv(t, c.outer), iv(t, c.inner)
		if got := outer.contains(inner); got != c.want {
			t.Errorf("(%s).contains(%s) = %v, want %v", c.outer, c.inner, got, c.want)
		}
	}
}

func TestIntervalFullContainsEverything(t *testing.T) {
	full := fullInterval()
	for _, cond := range []string{"z < 2", "z > 0", "z = 5", "z >= -1"} {
		if !full.contains(iv(t, cond)) {
			t.Errorf("full interval should contain %s", cond)
		}
	}
	// And nothing bounded contains the full interval.
	if iv(t, "z < 2").contains(full) {
		t.Error("bounded interval cannot contain the full one")
	}
}

func TestIntervalIntersect(t *testing.T) {
	// z > 0 ∩ z < 2 = (0, 2)
	both := iv(t, "z > 0").intersect(iv(t, "z < 2"))
	if !both.hasLo || !both.hasHi || both.lo != 0 || both.hi != 2 || !both.loOpen || !both.hiOpen {
		t.Fatalf("intersection wrong: %+v", both)
	}
	// Intersecting the same bound keeps the stricter openness.
	mixed := iv(t, "z <= 2").intersect(iv(t, "z < 2"))
	if !mixed.hiOpen {
		t.Fatalf("open bound should win at the same point: %+v", mixed)
	}
	// Intersection narrows: the result is contained in both inputs.
	a, b := iv(t, "z > 1"), iv(t, "z < 3")
	isect := a.intersect(b)
	if !a.contains(isect) || !b.contains(isect) {
		t.Fatal("intersection not contained in operands")
	}
}

func TestConstIntervalMirrored(t *testing.T) {
	cols := map[string]string{"z": "z"}
	e, err := sqlparser.ParseExpr("2 >= z")
	if err != nil {
		t.Fatal(err)
	}
	col, out, ok := constInterval(e, cols)
	if !ok || col != "z" || !out.hasHi || out.hi != 2 || out.hiOpen {
		t.Fatalf("mirrored 2 >= z: %v %+v %v", col, out, ok)
	}
}

func TestConstIntervalRejectsNonConst(t *testing.T) {
	cols := map[string]string{"z": "z", "x": "x"}
	for _, cond := range []string{"x > z", "z <> 2", "z + 1 < 2"} {
		e, err := sqlparser.ParseExpr(cond)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, ok := constInterval(e, cols); ok {
			t.Errorf("constInterval(%q) should be rejected", cond)
		}
	}
	// Derived column (empty mapping) is rejected.
	e, _ := sqlparser.ParseExpr("z < 2")
	if _, _, ok := constInterval(e, map[string]string{"z": ""}); ok {
		t.Error("derived column should not yield an interval")
	}
}
