// Package containment addresses the open problem the paper closes with
// (§4.1/§5): "decide whether a privacy-violating query Q↓ can be performed
// even on d′ instead of d. In this case, we have to extend the anonymization
// step A already performed. This open problem results in a query containment
// problem."
//
// Full query containment is undecidable for the SQL the engine supports, so
// this package implements a *conservative* answerability test in the style
// of view-based query answering over a single released view d′ (the output
// of the rewritten, fragmented query):
//
//   - attribute coverage — every attribute Q↓ needs must survive into d′
//     (an attribute replaced by its mandated aggregate is gone in raw form);
//   - tuple coverage — the region Q↓ selects must be contained in the
//     region d′ retains, checked by per-attribute interval implication over
//     the conjunctive constant predicates;
//   - aggregation compatibility — if d′ is grouped, Q↓ may only use the
//     grouping attributes and aggregates derivable from the released ones.
//
// The test errs on the safe side in the *privacy* direction required here:
// it may report "answerable" although a clever rewriting is impossible
// (over-approximation), never the reverse. A privacy checker must
// over-approximate the attacker.
package containment
