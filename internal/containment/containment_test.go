package containment

import (
	"errors"
	"strings"
	"testing"

	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

func testChecker() *Checker {
	cat := schema.NewCatalog()
	cat.Register(schema.NewRelation("d",
		schema.SensitiveCol("user", schema.TypeString),
		schema.Col("x", schema.TypeFloat),
		schema.Col("y", schema.TypeFloat),
		schema.Col("z", schema.TypeFloat),
		schema.Col("t", schema.TypeInt),
	))
	return New(cat)
}

func verdict(t *testing.T, violating, view string) *Verdict {
	t.Helper()
	c := testChecker()
	q, err := sqlparser.Parse(violating)
	if err != nil {
		t.Fatal(err)
	}
	v, err := sqlparser.Parse(view)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Answerable(q, v)
	if err != nil {
		t.Fatalf("Answerable(%q | %q): %v", violating, view, err)
	}
	return out
}

func TestAttributeRemovedBlocksQuery(t *testing.T) {
	// The view projects user away; a user-profiling query is dead.
	v := verdict(t,
		"SELECT user, x FROM d",
		"SELECT x, y, z, t FROM d")
	if v.Answerable {
		t.Fatalf("user is not released: %s", v)
	}
	if !strings.Contains(v.String(), "user") {
		t.Fatalf("reason should name the attribute: %s", v)
	}
}

func TestSubsetQueryIsAnswerable(t *testing.T) {
	// d' retains z < 2; a query asking for z < 1 is inside the region.
	v := verdict(t,
		"SELECT x, y FROM d WHERE z < 1 AND z < 2",
		"SELECT x, y, z, t FROM d WHERE z < 2")
	if !v.Answerable {
		t.Fatalf("sub-range query should be answerable: %s", v)
	}
}

func TestSupersetRangeBlocked(t *testing.T) {
	// The view only keeps z < 2; a query over z < 5 needs dropped tuples.
	v := verdict(t,
		"SELECT x, y FROM d WHERE z < 5",
		"SELECT x, y, z, t FROM d WHERE z < 2")
	if v.Answerable {
		t.Fatalf("query exceeding released range must be blocked: %s", v)
	}
}

func TestUnconstrainedQueryAgainstFilteredViewBlocked(t *testing.T) {
	v := verdict(t,
		"SELECT x, y FROM d",
		"SELECT x, y FROM d WHERE z < 2")
	if v.Answerable {
		t.Fatalf("full-table query on filtered view must be blocked: %s", v)
	}
}

func TestAggregatedViewHidesRawValues(t *testing.T) {
	// The paper's rewritten view: z only as AVG per (x, y) cell.
	view := "SELECT x, y, AVG(z) AS zavg, t FROM d WHERE x > y AND z < 2 GROUP BY x, y HAVING SUM(z) > 100"
	// Q↓ wants raw z trajectories.
	v := verdict(t, "SELECT z, t FROM d WHERE x > y AND z < 2", view)
	if v.Answerable {
		t.Fatalf("raw z must be aggregated away: %s", v)
	}
	// But the cell-level aggregate itself is available.
	v = verdict(t, "SELECT x, y, zavg FROM d WHERE x > y AND z < 2", view)
	if !v.Answerable {
		t.Fatalf("released aggregate should be answerable: %s", v)
	}
}

func TestAttrFilterMustBeImplied(t *testing.T) {
	view := "SELECT x, y, z, t FROM d WHERE x > y"
	// The query repeats the filter: fine.
	v := verdict(t, "SELECT x FROM d WHERE x > y", view)
	if !v.Answerable {
		t.Fatalf("repeated filter should be answerable: %s", v)
	}
	// The query does not imply x > y: needs dropped tuples.
	v = verdict(t, "SELECT x FROM d", view)
	if v.Answerable {
		t.Fatalf("query ignoring the view filter must be blocked: %s", v)
	}
}

func TestOpenVsClosedBounds(t *testing.T) {
	// view keeps z < 2 (open); query wants z <= 2 (closed): not contained.
	v := verdict(t,
		"SELECT x FROM d WHERE z <= 2",
		"SELECT x, z FROM d WHERE z < 2")
	if v.Answerable {
		t.Fatalf("closed bound exceeds open bound: %s", v)
	}
	// The mirror-spelled constant (2 > z) is recognized.
	v = verdict(t,
		"SELECT x FROM d WHERE 2 > z",
		"SELECT x, z FROM d WHERE z < 2")
	if !v.Answerable {
		t.Fatalf("mirrored comparison should be parsed: %s", v)
	}
}

func TestEqualityInsideRange(t *testing.T) {
	v := verdict(t,
		"SELECT x FROM d WHERE z = 1.5",
		"SELECT x, z FROM d WHERE z < 2")
	if !v.Answerable {
		t.Fatalf("point query inside range: %s", v)
	}
	v = verdict(t,
		"SELECT x FROM d WHERE z = 3",
		"SELECT x, z FROM d WHERE z < 2")
	if v.Answerable {
		t.Fatalf("point query outside range must be blocked: %s", v)
	}
}

func TestNestedViewSpine(t *testing.T) {
	// Conditions distributed across the spine still accumulate.
	view := "SELECT s, t FROM (SELECT x + y AS s, z, t FROM d WHERE z < 2) WHERE z > 0"
	v := verdict(t, "SELECT x FROM d", view)
	if v.Answerable {
		t.Fatalf("x only survives inside a derived column: %s", v)
	}
}

func TestUnknownRelation(t *testing.T) {
	c := testChecker()
	q, _ := sqlparser.Parse("SELECT a FROM unknown")
	v, _ := sqlparser.Parse("SELECT a FROM unknown")
	if _, err := c.Answerable(q, v); !errors.Is(err, ErrContainment) {
		t.Fatalf("want ErrContainment, got %v", err)
	}
}

func TestPaperScenario(t *testing.T) {
	// The full paper view (rewritten §4.2 inner query): does the profiling
	// query "where was the user at each point in time" survive?
	view := "SELECT x, y, AVG(z) AS zavg, t FROM d WHERE x > y AND z < 2 GROUP BY x, y HAVING SUM(z) > 100"
	profiling := "SELECT user, x, y, t FROM d"
	v := verdict(t, profiling, view)
	if v.Answerable {
		t.Fatalf("profiling must be dead on d': %s", v)
	}
	// Reasons should mention both the missing user attribute and the
	// unimplied filters.
	if !strings.Contains(v.String(), "user") {
		t.Fatalf("verdict should explain: %s", v)
	}
}
