package containment

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// ErrContainment wraps analysis errors.
var ErrContainment = errors.New("containment: error")

// Verdict is the result of an answerability check.
type Verdict struct {
	// Answerable: the violating query can (conservatively) be computed
	// from the released view — the anonymization step A must be extended.
	Answerable bool
	// Reasons lists, when not answerable, which guard blocked each path;
	// when answerable, what the attacker can use.
	Reasons []string
}

// String renders the verdict.
func (v *Verdict) String() string {
	s := "NOT answerable on d'"
	if v.Answerable {
		s = "ANSWERABLE on d'"
	}
	if len(v.Reasons) > 0 {
		s += ": " + strings.Join(v.Reasons, "; ")
	}
	return s
}

// Checker decides answerability of queries against one released view.
type Checker struct {
	cat *schema.Catalog
}

// New builds a checker over the base catalog (needed to resolve the view's
// base relations).
func New(cat *schema.Catalog) *Checker {
	return &Checker{cat: cat}
}

// viewProfile is the analyzed shape of the released query d′ = view(d).
type viewProfile struct {
	// columns maps released output names to the expression they carry:
	// "" for a raw base column, else the SQL of the deriving expression.
	columns map[string]string
	// rawOf maps a released name to the base column when it is raw.
	rawOf map[string]string
	// intervals are the per-base-column retained ranges from conjunctive
	// constant predicates over the whole spine.
	intervals map[string]interval
	// baseCols are the columns of the underlying base relation.
	baseCols map[string]bool
	// grouped reports whether the view aggregates.
	grouped bool
	// groupBy lists base columns the view groups by (raw only).
	groupBy []string
	// attrFilters are non-constant predicates the view applies (their SQL,
	// lower-cased); a containing query must repeat them or select within.
	attrFilters map[string]bool
}

// interval is a closed/open numeric range with optional bounds.
type interval struct {
	lo, hi         float64
	loOpen, hiOpen bool
	hasLo, hasHi   bool
}

func fullInterval() interval {
	return interval{lo: math.Inf(-1), hi: math.Inf(1)}
}

// contains reports whether i contains o (o ⊆ i).
func (i interval) contains(o interval) bool {
	if i.hasLo {
		if !o.hasLo {
			return false
		}
		if o.lo < i.lo || (o.lo == i.lo && i.loOpen && !o.loOpen) {
			return false
		}
	}
	if i.hasHi {
		if !o.hasHi {
			return false
		}
		if o.hi > i.hi || (o.hi == i.hi && i.hiOpen && !o.hiOpen) {
			return false
		}
	}
	return true
}

// intersect narrows i by o.
func (i interval) intersect(o interval) interval {
	out := i
	if o.hasLo && (!out.hasLo || o.lo > out.lo || (o.lo == out.lo && o.loOpen)) {
		out.lo, out.loOpen, out.hasLo = o.lo, o.loOpen, true
	}
	if o.hasHi && (!out.hasHi || o.hi < out.hi || (o.hi == out.hi && o.hiOpen)) {
		out.hi, out.hiOpen, out.hasHi = o.hi, o.hiOpen, true
	}
	return out
}

// Answerable checks whether violating can be computed from the released
// view. Both queries must read the same base relation (the integrated d);
// anything else is reported as not comparable.
func (c *Checker) Answerable(violating, view *sqlparser.Select) (*Verdict, error) {
	vp, err := c.profileView(view)
	if err != nil {
		return nil, err
	}
	qp, err := c.profileQuery(violating)
	if err != nil {
		return nil, err
	}

	verdict := &Verdict{Answerable: true}
	blocked := func(reason string) {
		verdict.Answerable = false
		verdict.Reasons = append(verdict.Reasons, reason)
	}

	// Conjuncts the view already enforces are free; the rest needs
	// released attributes and raw access.
	live := effectiveConds(qp, vp)
	attrs := append([]string{}, qp.attrs...)
	rawNeeded := append([]string{}, qp.rawNeeded...)
	for _, cu := range live {
		attrs = append(attrs, cu.cols...)
		rawNeeded = append(rawNeeded, cu.cols...)
	}

	// 1. Attribute coverage.
	for _, a := range dedupe(attrs) {
		if _, ok := vp.rawOf[a]; ok {
			continue
		}
		if _, ok := vp.columns[a]; ok && !vp.grouped {
			continue
		}
		if vp.grouped {
			if inStrings(vp.groupBy, a) {
				continue
			}
			if _, ok := vp.columns[a]; ok {
				// A derived aggregate column: usable as such, raw is gone.
				continue
			}
		}
		blocked(fmt.Sprintf("attribute %q is not released", a))
	}

	// 2. Raw-value access under aggregation: a query touching a column
	// that only survives as an aggregate cannot see raw values.
	if vp.grouped {
		for _, a := range dedupe(rawNeeded) {
			if !vp.baseCols[a] {
				continue // derived released column; its values ARE d′
			}
			if !inStrings(vp.groupBy, a) {
				if _, isRaw := vp.rawOf[a]; !isRaw {
					blocked(fmt.Sprintf("raw values of %q are aggregated away", a))
				}
			}
		}
	}

	// 3. Tuple coverage: the query's selected region must lie inside the
	// view's retained region.
	for col, vi := range vp.intervals {
		qi, ok := qp.intervals[col]
		if !ok {
			qi = fullInterval()
		}
		if !vi.contains(qi) {
			blocked(fmt.Sprintf("query selects %s outside the released range", col))
		}
	}

	// 4. Non-constant view filters must be implied by the query: the view
	// dropped those tuples, so an answerable query must not need them.
	// Conservative test: the query repeats the filter verbatim.
	qConj := map[string]bool{}
	for _, cu := range qp.conds {
		qConj[cu.sql] = true
	}
	for f := range vp.attrFilters {
		if !qConj[f] {
			blocked(fmt.Sprintf("query does not imply released filter %q", f))
		}
	}

	if verdict.Answerable {
		verdict.Reasons = append(verdict.Reasons,
			"all needed attributes and tuples survive into d'")
	}
	return verdict, nil
}

// profileView analyzes the released query.
func (c *Checker) profileView(view *sqlparser.Select) (*viewProfile, error) {
	vp := &viewProfile{
		columns:     map[string]string{},
		rawOf:       map[string]string{},
		baseCols:    map[string]bool{},
		intervals:   map[string]interval{},
		attrFilters: map[string]bool{},
	}

	// Walk the spine innermost-out, tracking renames raw->alias.
	var spine []*sqlparser.Select
	cur := view
	for {
		spine = append(spine, cur)
		sq, ok := cur.From.(*sqlparser.Subquery)
		if !ok {
			break
		}
		cur = sq.Select
	}
	inner := spine[len(spine)-1]
	baseRel, err := c.baseRelation(inner.From)
	if err != nil {
		return nil, err
	}

	// Raw columns visible at the innermost level.
	current := map[string]string{} // output name -> base column ("" if derived)
	for _, col := range baseRel.ColumnNames() {
		current[col] = col
		vp.baseCols[col] = true
	}

	for i := len(spine) - 1; i >= 0; i-- {
		q := spine[i]
		// Accumulate predicates over base columns.
		for _, conj := range sqlparser.Conjuncts(q.Where) {
			if col, iv, ok := constInterval(conj, current); ok {
				prev, has := vp.intervals[col]
				if !has {
					prev = fullInterval()
				}
				vp.intervals[col] = prev.intersect(iv)
			} else {
				vp.attrFilters[strings.ToLower(conj.SQL())] = true
			}
		}
		if len(q.GroupBy) > 0 || q.Having != nil || anyAggregate(q) {
			vp.grouped = true
			for _, g := range q.GroupBy {
				if cr, ok := g.(*sqlparser.ColumnRef); ok {
					if base, ok := current[cr.Name]; ok && base != "" {
						vp.groupBy = append(vp.groupBy, base)
					}
				}
			}
		}
		// Compute this level's output mapping.
		next := map[string]string{}
		for idx, it := range q.Items {
			if _, ok := it.Expr.(*sqlparser.Star); ok {
				for n, b := range current {
					next[n] = b
				}
				continue
			}
			name := it.Alias
			if name == "" {
				if cr, ok := it.Expr.(*sqlparser.ColumnRef); ok {
					name = cr.Name
				} else if f, ok := it.Expr.(*sqlparser.FuncCall); ok {
					name = f.Name
				} else {
					name = fmt.Sprintf("col%d", idx+1)
				}
			}
			if cr, ok := it.Expr.(*sqlparser.ColumnRef); ok {
				next[name] = current[cr.Name]
			} else {
				next[name] = "" // derived
			}
		}
		current = next
	}

	for name, base := range current {
		vp.columns[name] = base
		if base != "" {
			vp.rawOf[name] = base
		}
	}
	return vp, nil
}

// condUse is one WHERE conjunct of the violating query with its analysis.
type condUse struct {
	sql  string // lower-cased canonical text
	cols []string
	// col/iv are set for constant-interval conjuncts.
	col  string
	iv   interval
	isIv bool
}

// queryProfile is the analyzed shape of the violating query. Attributes and
// raw needs from WHERE conjuncts are kept separate, because a conjunct the
// view already enforces is *redundant* on d′ and needs no raw access.
type queryProfile struct {
	attrs     []string // from items, GROUP BY, HAVING, ORDER BY
	rawNeeded []string
	conds     []condUse
	intervals map[string]interval
}

func (c *Checker) profileQuery(q *sqlparser.Select) (*queryProfile, error) {
	qp := &queryProfile{intervals: map[string]interval{}}
	seen := map[string]bool{}
	addAttr := func(name string) {
		if !seen[name] {
			seen[name] = true
			qp.attrs = append(qp.attrs, name)
		}
	}

	sqlparser.WalkSelects(q, func(s *sqlparser.Select) {
		for _, it := range s.Items {
			for _, cr := range sqlparser.ColumnRefs(it.Expr) {
				addAttr(cr.Name)
			}
			// Raw access: column used outside an aggregate call.
			for _, cr := range rawRefs(it.Expr) {
				qp.rawNeeded = append(qp.rawNeeded, cr.Name)
			}
		}
		for _, conj := range sqlparser.Conjuncts(s.Where) {
			use := condUse{sql: strings.ToLower(conj.SQL())}
			ident := map[string]string{}
			for _, cr := range sqlparser.ColumnRefs(conj) {
				use.cols = append(use.cols, cr.Name)
				ident[cr.Name] = cr.Name
			}
			if col, iv, ok := constInterval(conj, ident); ok {
				use.col, use.iv, use.isIv = col, iv, true
				prev, has := qp.intervals[col]
				if !has {
					prev = fullInterval()
				}
				qp.intervals[col] = prev.intersect(iv)
			}
			qp.conds = append(qp.conds, use)
		}
		for _, g := range s.GroupBy {
			for _, cr := range sqlparser.ColumnRefs(g) {
				addAttr(cr.Name)
				qp.rawNeeded = append(qp.rawNeeded, cr.Name)
			}
		}
		for _, cr := range sqlparser.ColumnRefs(s.Having) {
			addAttr(cr.Name)
		}
		for _, o := range s.OrderBy {
			for _, cr := range sqlparser.ColumnRefs(o.Expr) {
				addAttr(cr.Name)
			}
		}
	})
	return qp, nil
}

// effectiveConds splits the query's conjuncts into those the view already
// enforces (redundant on d′) and those the attacker would still have to
// evaluate (needing released attributes).
func effectiveConds(qp *queryProfile, vp *viewProfile) (live []condUse) {
	for _, cu := range qp.conds {
		if cu.isIv {
			if vi, ok := vp.intervals[cu.col]; ok && cu.iv.contains(vi) {
				// The view's retained region already satisfies this
				// conjunct everywhere: redundant.
				continue
			}
		}
		if vp.attrFilters[cu.sql] {
			continue // exact filter the view applies
		}
		live = append(live, cu)
	}
	return live
}

// rawRefs returns column references that appear outside aggregate calls.
func rawRefs(e sqlparser.Expr) []*sqlparser.ColumnRef {
	var out []*sqlparser.ColumnRef
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
		if f, ok := x.(*sqlparser.FuncCall); ok && (f.IsAggregate() || f.IsWindow()) {
			return false // stop: inside an aggregate, access is not raw
		}
		if cr, ok := x.(*sqlparser.ColumnRef); ok {
			out = append(out, cr)
		}
		return true
	})
	return out
}

// constInterval recognizes col-vs-constant comparisons and converts them
// into a base-column interval, using mapping from visible name to base
// column.
func constInterval(e sqlparser.Expr, mapping map[string]string) (string, interval, bool) {
	be, ok := e.(*sqlparser.BinaryExpr)
	if !ok || !be.Op.Comparison() {
		return "", interval{}, false
	}
	cr, crOK := be.L.(*sqlparser.ColumnRef)
	lit, litOK := be.R.(*sqlparser.Literal)
	op := be.Op
	if !crOK || !litOK {
		cr, crOK = be.R.(*sqlparser.ColumnRef)
		lit, litOK = be.L.(*sqlparser.Literal)
		if !crOK || !litOK {
			return "", interval{}, false
		}
		// Mirror the operator: 2 > z  ==  z < 2.
		switch op {
		case sqlparser.OpLt:
			op = sqlparser.OpGt
		case sqlparser.OpLeq:
			op = sqlparser.OpGeq
		case sqlparser.OpGt:
			op = sqlparser.OpLt
		case sqlparser.OpGeq:
			op = sqlparser.OpLeq
		}
	}
	base, ok := mapping[cr.Name]
	if !ok || base == "" {
		return "", interval{}, false
	}
	if !lit.Value.Type().Numeric() {
		return "", interval{}, false
	}
	v := lit.Value.AsFloat()
	iv := fullInterval()
	switch op {
	case sqlparser.OpLt:
		iv.hi, iv.hiOpen, iv.hasHi = v, true, true
	case sqlparser.OpLeq:
		iv.hi, iv.hasHi = v, true
	case sqlparser.OpGt:
		iv.lo, iv.loOpen, iv.hasLo = v, true, true
	case sqlparser.OpGeq:
		iv.lo, iv.hasLo = v, true
	case sqlparser.OpEq:
		iv.lo, iv.hi, iv.hasLo, iv.hasHi = v, v, true, true
	default: // <> carries no interval information
		return "", interval{}, false
	}
	return base, iv, true
}

func anyAggregate(q *sqlparser.Select) bool {
	for _, it := range q.Items {
		if sqlparser.ContainsAggregate(it.Expr) {
			return true
		}
	}
	return q.Having != nil && sqlparser.ContainsAggregate(q.Having)
}

// baseRelation resolves the single base relation of the innermost FROM.
func (c *Checker) baseRelation(t sqlparser.TableRef) (*schema.Relation, error) {
	tn, ok := t.(*sqlparser.TableName)
	if !ok {
		return nil, fmt.Errorf("%w: containment analysis needs a single base relation, got %T", ErrContainment, t)
	}
	rel, ok := c.cat.Lookup(tn.Name)
	if !ok {
		return nil, fmt.Errorf("%w: unknown relation %q", ErrContainment, tn.Name)
	}
	return rel, nil
}

func dedupe(s []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, v := range s {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func inStrings(hay []string, needle string) bool {
	for _, h := range hay {
		if h == needle {
			return true
		}
	}
	return false
}
