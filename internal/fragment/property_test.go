package fragment

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"paradise/internal/engine"
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
	"paradise/internal/storage"
)

// randomQuery builds a random, valid single-table SELECT over
// d(x, y, z, t). The space covers the operator mix the fragmenter splits:
// constant filters, attribute comparisons, projections, expressions,
// grouping with HAVING, DISTINCT, ORDER BY and LIMIT.
func randomQuery(rng *rand.Rand) string {
	cols := []string{"x", "y", "z", "t"}
	var b strings.Builder
	b.WriteString("SELECT ")

	grouped := rng.Intn(3) == 0
	var groupCols []string
	if grouped {
		n := 1 + rng.Intn(2)
		perm := rng.Perm(len(cols))
		for i := 0; i < n; i++ {
			groupCols = append(groupCols, cols[perm[i]])
		}
		aggCol := cols[rng.Intn(len(cols))]
		aggFn := []string{"AVG", "SUM", "MIN", "MAX", "COUNT"}[rng.Intn(5)]
		b.WriteString(strings.Join(groupCols, ", "))
		fmt.Fprintf(&b, ", %s(%s) AS a1", aggFn, aggCol)
	} else {
		switch rng.Intn(3) {
		case 0:
			b.WriteString("*")
		case 1:
			n := 1 + rng.Intn(3)
			perm := rng.Perm(len(cols))
			var sel []string
			for i := 0; i < n; i++ {
				sel = append(sel, cols[perm[i]])
			}
			b.WriteString(strings.Join(sel, ", "))
		default:
			fmt.Fprintf(&b, "%s + %s AS s, z", cols[rng.Intn(2)], cols[2+rng.Intn(2)])
		}
	}
	b.WriteString(" FROM d")

	// WHERE: 0-3 conjuncts mixing constant and attribute predicates.
	var conj []string
	for i := 0; i < rng.Intn(4); i++ {
		col := cols[rng.Intn(len(cols))]
		op := []string{"<", "<=", ">", ">=", "="}[rng.Intn(5)]
		if rng.Intn(2) == 0 {
			conj = append(conj, fmt.Sprintf("%s %s %.1f", col, op, rng.Float64()*4))
		} else {
			other := cols[rng.Intn(len(cols))]
			if other != col {
				conj = append(conj, fmt.Sprintf("%s %s %s", col, op, other))
			}
		}
	}
	if len(conj) > 0 {
		b.WriteString(" WHERE " + strings.Join(conj, " AND "))
	}

	if grouped {
		b.WriteString(" GROUP BY " + strings.Join(groupCols, ", "))
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&b, " HAVING COUNT(*) > %d", rng.Intn(3))
		}
		if rng.Intn(3) == 0 {
			b.WriteString(" ORDER BY " + groupCols[0])
		}
	} else {
		if rng.Intn(4) == 0 {
			b.WriteString(" ORDER BY " + cols[rng.Intn(len(cols))])
			if rng.Intn(2) == 0 {
				b.WriteString(" DESC")
			}
		}
		if rng.Intn(4) == 0 {
			fmt.Fprintf(&b, " LIMIT %d", 1+rng.Intn(20))
		}
	}
	return b.String()
}

func propertyStore(t *testing.T, rng *rand.Rand, n int) *storage.Store {
	t.Helper()
	st := storage.NewStore()
	d := st.Create(schema.NewRelation("d",
		schema.Col("x", schema.TypeFloat),
		schema.Col("y", schema.TypeFloat),
		schema.Col("z", schema.TypeFloat),
		schema.Col("t", schema.TypeInt),
	))
	rows := make(schema.Rows, n)
	for i := range rows {
		rows[i] = schema.Row{
			schema.Float(float64(rng.Intn(40)) / 10),
			schema.Float(float64(rng.Intn(40)) / 10),
			schema.Float(float64(rng.Intn(40)) / 10),
			schema.Int(int64(i)),
		}
	}
	if err := d.Append(rows...); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestPropertyFragmentEquivalence is the core soundness property of the
// vertical fragmentation: for random queries, executing the fragment chain
// equals executing the query monolithically (as multisets; ORDER BY-free
// queries may legally reorder).
func TestPropertyFragmentEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20160315))
	st := propertyStore(t, rng, 400)
	fr := New()
	eng := engine.New(st)

	const trials = 300
	for trial := 0; trial < trials; trial++ {
		q := randomQuery(rng)
		sel, err := sqlparser.Parse(q)
		if err != nil {
			t.Fatalf("generator produced invalid SQL %q: %v", q, err)
		}
		want, err := eng.Select(context.Background(), sel)
		if err != nil {
			t.Fatalf("direct execution of %q: %v", q, err)
		}
		plan, err := fr.Fragment(sel)
		if err != nil {
			t.Fatalf("fragmenting %q: %v", q, err)
		}
		got, err := Execute(context.Background(), plan, st)
		if err != nil {
			t.Fatalf("executing plan of %q: %v\n%s", q, err, plan)
		}
		if !sameRowMultiset(want.Rows, got.Result.Rows) {
			t.Fatalf("trial %d: %q\nplan:\n%s\ndirect %d rows, fragmented %d rows",
				trial, q, plan, len(want.Rows), len(got.Result.Rows))
		}
		// Ordered queries must agree on order too.
		if len(sel.OrderBy) > 0 && !sameRowSequenceByKeys(want, got.Result, sel) {
			t.Fatalf("trial %d: %q: ORDER BY violated by fragmentation", trial, q)
		}
	}
}

// TestPropertyPlanLevelsMonotone: fragments never need a *lower* level than
// an earlier stage provides — the chain only moves up.
func TestPropertyPlanLevelsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	fr := New()
	for trial := 0; trial < 300; trial++ {
		q := randomQuery(rng)
		sel, err := sqlparser.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := fr.Fragment(sel)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(plan.Fragments); i++ {
			if plan.Fragments[i].MinLevel < plan.Fragments[i-1].MinLevel {
				t.Fatalf("%q: levels regress at stage %d:\n%s", q, i+1, plan)
			}
		}
		// Stage 1 never exceeds the sensor unless a join forces it.
		if plan.Fragments[0].MinLevel > LevelAppliance {
			t.Fatalf("%q: first stage at %s", q, plan.Fragments[0].MinLevel)
		}
	}
}

func sameRowMultiset(a, b schema.Rows) bool {
	if len(a) != len(b) {
		return false
	}
	count := map[string]int{}
	for _, r := range a {
		count[r.GroupKey(allIdx(len(r)))]++
	}
	for _, r := range b {
		count[r.GroupKey(allIdx(len(r)))]--
	}
	for _, v := range count {
		if v != 0 {
			return false
		}
	}
	return true
}

// sameRowSequenceByKeys checks that the ORDER BY key sequence matches
// (ties may reorder freely, so only the keys are compared).
func sameRowSequenceByKeys(a, b *engine.Result, sel *sqlparser.Select) bool {
	keyOf := func(res *engine.Result, i int) string {
		parts := make([]string, 0, len(sel.OrderBy))
		for _, o := range sel.OrderBy {
			if c, ok := o.Expr.(*sqlparser.ColumnRef); ok {
				if idx, err := res.Schema.Index(c.Name); err == nil {
					parts = append(parts, res.Rows[i][idx].GroupKey())
				}
			}
		}
		return strings.Join(parts, "|")
	}
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		if keyOf(a, i) != keyOf(b, i) {
			return false
		}
	}
	return true
}

func allIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
