// Package fragment implements the vertical fragmentation of queries from
// Grunert & Heuer §4: a (rewritten) query Q against the integrated sensor
// database d is decomposed into pushed-down fragments Q1..Qj that execute as
// close to the data sources as possible, plus a remainder Qδ for the more
// powerful nodes — Q(d) → Qδ(d′). The capability ladder follows Table 1:
//
//	E1 cloud      — complex ML in R, SQL:2003 with UDFs
//	E2 PC         — SQL-92 (we include window functions, which the paper's
//	                local server executes for the regression analysis)
//	E3 appliance  — "SQL light" with joins, attribute comparisons,
//	                projections, grouping/aggregation (the media center)
//	E4 sensor     — filters against constants and simple stream aggregates;
//	                cannot project single attributes (SELECT * only)
//
// Decomposition walks the plan's spine of query blocks with plan.SplitBlock
// (the block-shape and column-requirement rules live in internal/plan;
// this package only decides placement levels and conjunct partitioning).
//
// Execution side (execute.go): OpenChain wires a plan's fragments into one
// lazy batch pipeline — each stage's output iterator feeds the next
// stage's scan — with per-stage row/byte accounting that is finalized by
// draining on Close, so stats match the fully materialized baseline even
// when the consumer stops early. WithParallelism lets each stage's engine
// pipeline run morsel-parallel; batch sums are order-independent, so the
// accounting stays bit-identical to serial execution.
package fragment
