package fragment

import (
	"math"
	"strings"

	logical "paradise/internal/plan"
)

// Cost-based fragment placement.
//
// The fixed policy runs every fragment at its MinLevel — the lowest rung
// capable of executing it. That minimizes how far raw data travels, which
// is right exactly when every stage shrinks its input. A stage that
// *expands* data (a fan-out join, a window that widens rows) inverts the
// argument: shipping its small input one more hop and running it higher
// is cheaper than producing the large output low and shipping that.
//
// PlaceCostBased searches the monotone level assignments
//
//	MinLevel_i <= l_i,  l_1 <= l_2 <= ... <= l_n <= E1
//
// minimizing the modeled bytes crossing level boundaries:
//
//	cost = in_1·(l_1 - E4) + Σ out_i·(l_{i+1} - l_i) + out_n·(E1 - l_n)
//
// where in_1 is the modeled size of the base relations (resident at the
// sensor) and out_i is the modeled output of stage i, chained through the
// cardinality model: stage i's estimate is derived with stage i-1's
// derived output statistics standing in for its d<k> input relation.
//
// Invariants, pinned by the placement suites:
//
//   - l_i >= MinLevel_i always — the privacy/capability floor is hard;
//     the search only ever moves a stage UP, never down.
//   - l_i <= E2 (the apartment's top) unless MinLevel itself demands the
//     cloud: placement never moves data across the apartment boundary
//     that would not have crossed it anyway. Raw and intermediate data
//     stay in-home, so the egress d′ — what the cloud sees — is
//     byte-identical to the fixed policy, and privacy is never traded
//     for traffic.
//   - Ties break to the LOWEST level, so whenever the model shows no
//     strict gain the placement equals the fixed baseline and the run is
//     byte-identical to it.
//   - Levels are monotone along the chain — data only flows up, exactly
//     as the paper's Figure 3 topology requires.

// PlaceCostBased computes per-fragment placement levels and modeled
// output sizes from the given statistics source. A nil source (or an
// empty plan) leaves the plan unplaced: every fragment keeps its
// MinLevel and the run is identical to the fixed policy.
func (p *Plan) PlaceCostBased(stats logical.Stats) {
	n := len(p.Fragments)
	if n == 0 || stats == nil {
		return
	}

	// Chain the per-stage estimates: derived output statistics of stage i
	// are the input statistics of stage i+1 (its scans read f.Output).
	derived := make(map[string]*logical.TableStats, n)
	src := func(name string) (*logical.TableStats, bool) {
		if ts, ok := derived[strings.ToLower(name)]; ok {
			return ts, true
		}
		return stats(name)
	}
	out := make([]float64, n)
	for i, f := range p.Fragments {
		ts := logical.Derive(f.Root, src)
		rows := ts.Rows
		bytes := ts.Rows * ts.RowBytes
		f.EstRows = roundNonNeg(rows)
		f.EstBytes = roundNonNeg(bytes)
		out[i] = bytes
		derived[strings.ToLower(f.Output)] = ts
	}

	// Modeled size of the base input: the relations stage 1 reads, sized
	// straight from the statistics (exact for predicate-free scans).
	baseBytes := 0.0
	for _, tbl := range logical.BaseTables(p.Fragments[0].Root) {
		if ts, ok := stats(tbl); ok {
			baseBytes += ts.Rows * ts.RowBytes
		}
	}

	const lo, hi = int(LevelSensor), int(LevelCloud)
	inf := math.Inf(1)

	// cost[i][l]: minimal modeled bytes to have run fragments 0..i with
	// fragment i at level l. from[i][l] backtracks the choice for i-1.
	cost := make([][hi + 1]float64, n)
	from := make([][hi + 1]int, n)
	for i := range cost {
		for l := 0; l <= hi; l++ {
			cost[i][l] = inf
		}
	}
	// maxFor caps the search at the apartment's top rung (E2): a stage is
	// only ever placed on the cloud when its floor already demands it, so
	// the bytes crossing the apartment boundary — the egress d′ — are
	// exactly the fixed policy's.
	maxFor := func(f *Fragment) int {
		if f.MinLevel > LevelPC {
			return int(f.MinLevel)
		}
		return int(LevelPC)
	}

	for l := lo; l <= maxFor(p.Fragments[0]); l++ {
		if Level(l) >= p.Fragments[0].MinLevel {
			cost[0][l] = baseBytes * float64(l-lo)
		}
	}
	for i := 1; i < n; i++ {
		for l := lo; l <= maxFor(p.Fragments[i]); l++ {
			if Level(l) < p.Fragments[i].MinLevel {
				continue
			}
			for prev := lo; prev <= l; prev++ {
				if math.IsInf(cost[i-1][prev], 1) {
					continue
				}
				// Strict < with ascending prev: ties keep the lowest level.
				c := cost[i-1][prev] + out[i-1]*float64(l-prev)
				if c < cost[i][l] {
					cost[i][l] = c
					from[i][l] = prev
				}
			}
		}
	}

	// Close the chain: the result always ships to the cloud. Strict <
	// with ascending l keeps the last stage as low as possible on ties.
	bestL, bestC := -1, inf
	for l := lo; l <= hi; l++ {
		if math.IsInf(cost[n-1][l], 1) {
			continue
		}
		c := cost[n-1][l] + out[n-1]*float64(hi-l)
		if c < bestC {
			bestL, bestC = l, c
		}
	}
	if bestL < 0 {
		return // infeasible floor (MinLevel above cloud) — leave unplaced
	}
	for i := n - 1; i >= 0; i-- {
		p.Fragments[i].Level = Level(bestL)
		bestL = from[i][bestL]
	}
}

// roundNonNeg converts a modeled float to a reportable int64, clamping
// the junk cases (negative, NaN, Inf) the estimator already guards.
func roundNonNeg(v float64) int64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > math.MaxInt64/2 {
		return math.MaxInt64 / 2
	}
	return int64(v + 0.5)
}
