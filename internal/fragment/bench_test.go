package fragment

import (
	"context"
	"math/rand"
	"testing"

	"paradise/internal/schema"
	"paradise/internal/sqlparser"
	"paradise/internal/storage"
)

// benchStore builds an n-row position table shaped like the engine benchmarks
// so engine and fragment hot paths are measured over the same data.
func benchStore(b *testing.B, n int) *storage.Store {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	st := storage.NewStore()
	d := st.Create(schema.NewRelation("d",
		schema.Col("x", schema.TypeFloat),
		schema.Col("y", schema.TypeFloat),
		schema.Col("z", schema.TypeFloat),
		schema.Col("t", schema.TypeInt),
		schema.Col("cell", schema.TypeInt),
	))
	rows := make(schema.Rows, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, schema.Row{
			schema.Float(rng.Float64() * 8),
			schema.Float(rng.Float64() * 6),
			schema.Float(rng.Float64() * 2),
			schema.Int(int64(i)),
			schema.Int(int64(rng.Intn(64))),
		})
	}
	if err := d.Append(rows...); err != nil {
		b.Fatal(err)
	}
	return st
}

func benchExecute(b *testing.B, q string) {
	st := benchStore(b, 10_000)
	sel, err := sqlparser.Parse(q)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := New().Fragment(sel)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(context.Background(), plan, st); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteFilterProject(b *testing.B) {
	benchExecute(b, "SELECT x, y FROM d WHERE x > y AND z < 1")
}

func BenchmarkExecuteAggregateChain(b *testing.B) {
	benchExecute(b, "SELECT cell, AVG(z) AS za FROM d WHERE x > y AND z < 2 GROUP BY cell HAVING COUNT(*) > 5")
}

func BenchmarkExecuteLimitAcrossStages(b *testing.B) {
	benchExecute(b, "SELECT s FROM (SELECT x + y AS s, z FROM d WHERE z < 1.5) LIMIT 10")
}
