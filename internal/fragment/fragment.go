package fragment

import (
	"errors"
	"fmt"
	"strings"

	"paradise/internal/sqlparser"
)

// ErrFragment wraps fragmentation errors.
var ErrFragment = errors.New("fragment: cannot fragment query")

// Fragment is one pushed-down piece of the vertical decomposition. Fragments
// form a chain: each reads the output relation of its predecessor (or a base
// relation) and ships its result one hop up.
type Fragment struct {
	// Stage is the 1-based position in the chain, bottom (sensor) first.
	Stage int
	// MinLevel is the least capable rung that can execute the fragment.
	MinLevel Level
	// Query is the fragment's SQL; its FROM references Input.
	Query *sqlparser.Select
	// Input is the relation the fragment reads: a base table for stage 1,
	// else the previous fragment's Output.
	Input string
	// Output is the name under which the fragment's result is visible to
	// the next stage (d1, d2, ... — the paper's notation).
	Output string
	// Description summarizes the fragment's role for reports and the CLI.
	Description string
}

// SQL renders the fragment query.
func (f *Fragment) SQL() string { return f.Query.SQL() }

// Plan is a complete vertical decomposition of one query.
type Plan struct {
	// Fragments bottom-up: Fragments[0] runs at the sensor.
	Fragments []*Fragment
	// Original is the query the plan decomposes (already privacy-rewritten).
	Original *sqlparser.Select
}

// Remainder returns the highest fragment — the paper's Qδ, the only part
// that must run on a node above the apartment boundary when the in-home
// ladder tops out at the given level.
func (p *Plan) Remainder(homeTop Level) []*Fragment {
	var out []*Fragment
	for _, f := range p.Fragments {
		if f.MinLevel > homeTop {
			out = append(out, f)
		}
	}
	return out
}

// String renders a human-readable plan.
func (p *Plan) String() string {
	var b strings.Builder
	for _, f := range p.Fragments {
		fmt.Fprintf(&b, "Q%d @ %-12s %-28s %s\n", f.Stage, f.MinLevel, f.Description, f.SQL())
	}
	return b.String()
}

// Fragmenter decomposes queries along the capability ladder.
type Fragmenter struct{}

// New creates a Fragmenter.
func New() *Fragmenter { return &Fragmenter{} }

// Fragment decomposes a (rewritten) query into the maximal pushed-down
// chain. The input is not modified. Decomposition walks the FROM spine of
// nested derived tables: the innermost SELECT is split into sensor-level
// constant filters, appliance-level attribute filters and projections, and
// an appliance-level aggregation; every enclosing SELECT becomes one
// fragment at the level its features require.
func (fr *Fragmenter) Fragment(q *sqlparser.Select) (*Plan, error) {
	q = sqlparser.CloneSelect(q)

	// Collect the spine, innermost last.
	var spine []*sqlparser.Select
	cur := q
	for {
		spine = append(spine, cur)
		sq, ok := cur.From.(*sqlparser.Subquery)
		if !ok {
			break
		}
		cur = sq.Select
	}
	inner := spine[len(spine)-1]

	plan := &Plan{Original: q}
	next := 1
	output := func() string { return fmt.Sprintf("d%d", next) }

	addFragment := func(sel *sqlparser.Select, lvl Level, desc string, input string) *Fragment {
		f := &Fragment{
			Stage:       next,
			MinLevel:    lvl,
			Query:       sel,
			Input:       input,
			Output:      output(),
			Description: desc,
		}
		plan.Fragments = append(plan.Fragments, f)
		next++
		return f
	}

	// --- Innermost SELECT decomposition ---
	baseName, err := baseInput(inner.From)
	if err != nil {
		return nil, err
	}

	// A join in the innermost FROM cannot run on a single sensor, and
	// splitting it would lose the column qualifiers its clauses rely on:
	// the whole SELECT becomes one appliance-level fragment (sensors still
	// only ship their own streams; the join happens one hop up).
	if _, isJoin := inner.From.(*sqlparser.Join); isJoin {
		joinSel := sqlparser.CloneSelect(inner)
		lvl := LevelAppliance
		if itemsWindow(inner) || len(inner.OrderBy) > 0 || inner.Limit != nil || inner.Distinct {
			lvl = LevelPC
		}
		prev := addFragment(joinSel, lvl, "appliance join", baseName)
		for i := len(spine) - 2; i >= 0; i-- {
			s := sqlparser.CloneSelect(spine[i])
			s.From = &sqlparser.TableName{Name: prev.Output}
			prev = addFragment(s, levelOfSelect(s), descOfSelect(s), prev.Output)
		}
		return plan, nil
	}

	constConj, otherConj := splitConjuncts(inner.Where)

	// Stage 1 (E4): SELECT * FROM base WHERE <constant filters>.
	sensorSel := &sqlparser.Select{
		Items: []sqlparser.SelectItem{{Expr: &sqlparser.Star{}}},
		From:  sqlparser.CloneTableRef(inner.From),
		Where: sqlparser.AndAll(constConj),
	}
	desc := "sensor scan"
	if len(constConj) > 0 {
		desc = "sensor filter (attr vs const)"
	}
	prev := addFragment(sensorSel, LevelSensor, desc, baseName)

	hasAgg := len(inner.GroupBy) > 0 || inner.Having != nil || itemsAggregate(inner)
	hasWin := itemsWindow(inner)

	// Above the sensor stage the single base table is renamed d1, d2, ...;
	// qualified references to the original name would dangle, and with one
	// table they are redundant, so they are stripped.
	stripQualifiers(inner)
	otherConj = stripExprQualifiers(otherConj)

	switch {
	case hasWin:
		// Rare shape: innermost with windows — keep it whole above the
		// sensor filter.
		rest := sqlparser.CloneSelect(inner)
		rest.From = &sqlparser.TableName{Name: prev.Output}
		rest.Where = sqlparser.AndAll(otherConj)
		addFragment(rest, LevelPC, "window evaluation", prev.Output)
	case hasAgg:
		// Stage 2 (E3): attribute filter + projection of the raw columns
		// the aggregation needs.
		needed := neededColumns(inner)
		projSel := &sqlparser.Select{
			Items: columnsToItems(needed),
			From:  &sqlparser.TableName{Name: prev.Output},
			Where: sqlparser.AndAll(otherConj),
		}
		desc := "appliance projection"
		if len(otherConj) > 0 {
			desc = "appliance filter + projection"
		}
		prev = addFragment(projSel, LevelAppliance, desc, prev.Output)

		// Stage 3 (E3): the aggregation itself (the media center's part).
		aggSel := &sqlparser.Select{
			Items:   cloneItems(inner.Items),
			From:    &sqlparser.TableName{Name: prev.Output},
			GroupBy: cloneExprs(inner.GroupBy),
			Having:  sqlparser.CloneExpr(inner.Having),
			OrderBy: cloneOrder(inner.OrderBy),
			Limit:   cloneLimit(inner.Limit),
		}
		lvl := LevelAppliance
		if len(inner.OrderBy) > 0 || inner.Limit != nil {
			lvl = LevelPC
		}
		prev = addFragment(aggSel, lvl, "aggregation (GROUP BY/HAVING)", prev.Output)
	default:
		// Stage 2 (E3): attribute filters + the final projection of this
		// SELECT in one appliance fragment.
		projSel := &sqlparser.Select{
			Distinct: inner.Distinct,
			Items:    cloneItems(inner.Items),
			From:     &sqlparser.TableName{Name: prev.Output},
			Where:    sqlparser.AndAll(otherConj),
			OrderBy:  cloneOrder(inner.OrderBy),
			Limit:    cloneLimit(inner.Limit),
		}
		lvl := LevelAppliance
		if len(inner.OrderBy) > 0 || inner.Limit != nil || inner.Distinct {
			lvl = LevelPC
		}
		if onlyStarItems(inner.Items) && len(otherConj) == 0 && lvl == LevelAppliance {
			// Nothing left to do at this level; skip the no-op fragment.
			break
		}
		prev = addFragment(projSel, lvl, "appliance filter + projection", prev.Output)
	}

	// --- Enclosing spine SELECTs, inner to outer ---
	for i := len(spine) - 2; i >= 0; i-- {
		s := sqlparser.CloneSelect(spine[i])
		s.From = &sqlparser.TableName{Name: prev.Output}
		lvl := levelOfSelect(s)
		prev = addFragment(s, lvl, descOfSelect(s), prev.Output)
	}

	return plan, nil
}

// baseInput names the base relation the innermost SELECT reads. Joins are
// supported by treating the join as the sensor-level input is not possible —
// a join already needs E3 — so for joins the "sensor" fragment degenerates
// to the join itself at E3.
func baseInput(t sqlparser.TableRef) (string, error) {
	switch x := t.(type) {
	case *sqlparser.TableName:
		return x.Name, nil
	case *sqlparser.Join:
		names := collectJoinTables(x)
		return strings.Join(names, "+"), nil
	case nil:
		return "", fmt.Errorf("%w: SELECT without FROM", ErrFragment)
	default:
		return "", fmt.Errorf("%w: unexpected FROM item %T", ErrFragment, t)
	}
}

func collectJoinTables(j *sqlparser.Join) []string {
	var out []string
	var walk func(t sqlparser.TableRef)
	walk = func(t sqlparser.TableRef) {
		switch x := t.(type) {
		case *sqlparser.TableName:
			out = append(out, x.Name)
		case *sqlparser.Join:
			walk(x.Left)
			walk(x.Right)
		}
	}
	walk(j)
	return out
}

// splitConjuncts partitions a WHERE into sensor-capable constant filters and
// the rest.
func splitConjuncts(where sqlparser.Expr) (constConj, other []sqlparser.Expr) {
	for _, c := range sqlparser.Conjuncts(where) {
		if isConstFilter(c) {
			constConj = append(constConj, sqlparser.CloneExpr(c))
		} else {
			other = append(other, sqlparser.CloneExpr(c))
		}
	}
	return constConj, other
}

// neededColumns lists the raw columns an aggregation stage consumes: every
// column referenced in items, GROUP BY and HAVING, plus ORDER BY references
// that are not output aliases (ORDER BY peak sorts the stage's own output
// column, not an input one).
func neededColumns(q *sqlparser.Select) []string {
	aliases := map[string]bool{}
	for _, it := range q.Items {
		if it.Alias != "" {
			aliases[it.Alias] = true
		}
	}
	seen := map[string]bool{}
	var out []string
	add := func(e sqlparser.Expr) {
		for _, c := range sqlparser.ColumnRefs(e) {
			if !seen[c.Name] {
				seen[c.Name] = true
				out = append(out, c.Name)
			}
		}
	}
	for _, it := range q.Items {
		add(it.Expr)
	}
	for _, g := range q.GroupBy {
		add(g)
	}
	add(q.Having)
	for _, o := range q.OrderBy {
		for _, c := range sqlparser.ColumnRefs(o.Expr) {
			if aliases[c.Name] {
				continue
			}
			if !seen[c.Name] {
				seen[c.Name] = true
				out = append(out, c.Name)
			}
		}
	}
	return out
}

func columnsToItems(cols []string) []sqlparser.SelectItem {
	out := make([]sqlparser.SelectItem, len(cols))
	for i, c := range cols {
		out[i] = sqlparser.SelectItem{Expr: &sqlparser.ColumnRef{Name: c}}
	}
	return out
}

func cloneItems(items []sqlparser.SelectItem) []sqlparser.SelectItem {
	out := make([]sqlparser.SelectItem, len(items))
	for i, it := range items {
		out[i] = sqlparser.SelectItem{Expr: sqlparser.CloneExpr(it.Expr), Alias: it.Alias}
	}
	return out
}

func cloneExprs(es []sqlparser.Expr) []sqlparser.Expr {
	out := make([]sqlparser.Expr, len(es))
	for i, e := range es {
		out[i] = sqlparser.CloneExpr(e)
	}
	return out
}

func cloneOrder(os []sqlparser.OrderItem) []sqlparser.OrderItem {
	out := make([]sqlparser.OrderItem, len(os))
	for i, o := range os {
		out[i] = sqlparser.OrderItem{Expr: sqlparser.CloneExpr(o.Expr), Desc: o.Desc}
	}
	return out
}

func cloneLimit(l *int64) *int64 {
	if l == nil {
		return nil
	}
	v := *l
	return &v
}

// stripQualifiers removes table qualifiers from every clause of one SELECT
// (valid only when the SELECT reads a single base table).
func stripQualifiers(q *sqlparser.Select) {
	strip := func(e sqlparser.Expr) sqlparser.Expr {
		return sqlparser.RewriteExpr(e, func(x sqlparser.Expr) sqlparser.Expr {
			if c, ok := x.(*sqlparser.ColumnRef); ok && c.Table != "" {
				return &sqlparser.ColumnRef{Name: c.Name}
			}
			if s, ok := x.(*sqlparser.Star); ok && s.Table != "" {
				return &sqlparser.Star{}
			}
			return x
		})
	}
	for i := range q.Items {
		q.Items[i].Expr = strip(q.Items[i].Expr)
	}
	q.Where = strip(q.Where)
	for i := range q.GroupBy {
		q.GroupBy[i] = strip(q.GroupBy[i])
	}
	q.Having = strip(q.Having)
	for i := range q.OrderBy {
		q.OrderBy[i].Expr = strip(q.OrderBy[i].Expr)
	}
}

func stripExprQualifiers(es []sqlparser.Expr) []sqlparser.Expr {
	out := make([]sqlparser.Expr, len(es))
	for i, e := range es {
		out[i] = sqlparser.RewriteExpr(e, func(x sqlparser.Expr) sqlparser.Expr {
			if c, ok := x.(*sqlparser.ColumnRef); ok && c.Table != "" {
				return &sqlparser.ColumnRef{Name: c.Name}
			}
			return x
		})
	}
	return out
}

func itemsAggregate(q *sqlparser.Select) bool {
	for _, it := range q.Items {
		if sqlparser.ContainsAggregate(it.Expr) {
			return true
		}
	}
	return false
}

func itemsWindow(q *sqlparser.Select) bool {
	for _, it := range q.Items {
		if sqlparser.ContainsWindow(it.Expr) {
			return true
		}
	}
	return false
}

func onlyStarItems(items []sqlparser.SelectItem) bool {
	for _, it := range items {
		if _, ok := it.Expr.(*sqlparser.Star); !ok {
			return false
		}
	}
	return true
}

// levelOfSelect classifies one already-isolated spine SELECT.
func levelOfSelect(s *sqlparser.Select) Level {
	lvl := LevelAppliance
	if itemsWindow(s) || len(s.OrderBy) > 0 || s.Limit != nil || s.Distinct {
		lvl = LevelPC
	}
	return lvl
}

func descOfSelect(s *sqlparser.Select) string {
	switch {
	case itemsWindow(s):
		return "window/analytic evaluation"
	case len(s.GroupBy) > 0 || itemsAggregate(s):
		return "aggregation (GROUP BY/HAVING)"
	case len(s.OrderBy) > 0 || s.Limit != nil:
		return "sort/limit"
	default:
		return "filter + projection"
	}
}
