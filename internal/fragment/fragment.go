package fragment

import (
	"errors"
	"fmt"
	"strings"

	logical "paradise/internal/plan"
	"paradise/internal/sqlparser"
)

// ErrFragment wraps fragmentation errors.
var ErrFragment = errors.New("fragment: cannot fragment query")

// Fragment is one pushed-down piece of the vertical decomposition. Fragments
// form a chain: each reads the output relation of its predecessor (or a base
// relation) and ships its result one hop up.
type Fragment struct {
	// Stage is the 1-based position in the chain, bottom (sensor) first.
	Stage int
	// MinLevel is the least capable rung that can execute the fragment.
	MinLevel Level
	// Root is the fragment's logical plan subtree; its scans reference
	// Input. The engine compiles Root directly — fragments ship plan trees,
	// not SQL strings.
	Root logical.Node
	// Query is the SQL surface of Root (rendered via plan.ToSelect), kept
	// for reports, the CLI and the paper-match exhibits.
	Query *sqlparser.Select
	// Input is the relation the fragment reads: a base table for stage 1,
	// else the previous fragment's Output.
	Input string
	// Output is the name under which the fragment's result is visible to
	// the next stage (d1, d2, ... — the paper's notation).
	Output string
	// Description summarizes the fragment's role for reports and the CLI.
	Description string
}

// SQL renders the fragment query.
func (f *Fragment) SQL() string { return f.Query.SQL() }

// Plan is a complete vertical decomposition of one query.
type Plan struct {
	// Fragments bottom-up: Fragments[0] runs at the sensor.
	Fragments []*Fragment
	// Root is the logical plan the decomposition was derived from (already
	// privacy-rewritten).
	Root logical.Node
	// Original is the SQL surface of Root, for reports.
	Original *sqlparser.Select
}

// Remainder returns the highest fragment — the paper's Qδ, the only part
// that must run on a node above the apartment boundary when the in-home
// ladder tops out at the given level.
func (p *Plan) Remainder(homeTop Level) []*Fragment {
	var out []*Fragment
	for _, f := range p.Fragments {
		if f.MinLevel > homeTop {
			out = append(out, f)
		}
	}
	return out
}

// String renders a human-readable plan.
func (p *Plan) String() string {
	var b strings.Builder
	for _, f := range p.Fragments {
		fmt.Fprintf(&b, "Q%d @ %-12s %-28s %s\n", f.Stage, f.MinLevel, f.Description, f.SQL())
	}
	return b.String()
}

// Explain renders every fragment's logical plan tree, for -explain output.
func (p *Plan) Explain() string {
	var b strings.Builder
	for _, f := range p.Fragments {
		fmt.Fprintf(&b, "Q%d @ %s — %s (reads %s, emits %s)\n", f.Stage, f.MinLevel, f.Description, f.Input, f.Output)
		for _, line := range strings.Split(strings.TrimRight(logical.String(f.Root), "\n"), "\n") {
			b.WriteString("  " + line + "\n")
		}
	}
	return b.String()
}

// Fragmenter decomposes queries along the capability ladder.
type Fragmenter struct{}

// New creates a Fragmenter.
func New() *Fragmenter { return &Fragmenter{} }

// block is one query block of the logical plan, in clause form: the
// operator tail between two Derived boundaries.
type block struct {
	items    []sqlparser.SelectItem
	groupBy  []sqlparser.Expr
	having   sqlparser.Expr
	orderBy  []sqlparser.OrderItem
	distinct bool
	limit    *int64
	grouped  bool
	filters  []sqlparser.Expr     // WHERE conjuncts, in original order
	prov     []logical.Provenance // provenance of policy-injected conjuncts
	src      logical.Node         // *plan.Scan, *plan.Join or *plan.Values for the innermost block, nil for outer blocks (they read the next block)
}

// Fragment parses the statement's logical structure and decomposes it.
// The input is not modified.
func (fr *Fragmenter) Fragment(q *sqlparser.Select) (*Plan, error) {
	root, err := logical.FromAST(q)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFragment, err)
	}
	return fr.FromPlan(root)
}

// FromPlan decomposes a logical plan into the maximal pushed-down chain.
// Decomposition walks the plan's block spine (Derived boundaries — the
// nesting of the source SQL): the innermost block is split into
// sensor-level constant filters, appliance-level attribute filters and
// projections, and an appliance-level aggregation; every enclosing block
// becomes one fragment at the level its operators require. The plan tree is
// not modified; fragment Roots are fresh trees.
func (fr *Fragmenter) FromPlan(root logical.Node) (*Plan, error) {
	orig, err := logical.ToSelect(root)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFragment, err)
	}

	// Collect the block spine, outermost first.
	var spine []*block
	cur := root
	for {
		b, src := gatherBlock(cur)
		spine = append(spine, b)
		if d, ok := src.(*logical.Derived); ok {
			cur = d.Input
			continue
		}
		b.src = src
		break
	}
	inner := spine[len(spine)-1]

	plan := &Plan{Root: root, Original: orig}
	next := 1
	output := func() string { return fmt.Sprintf("d%d", next) }

	addFragment := func(node logical.Node, lvl Level, desc string, input string) (*Fragment, error) {
		sel, err := logical.ToSelect(node)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFragment, err)
		}
		f := &Fragment{
			Stage:       next,
			MinLevel:    lvl,
			Root:        node,
			Query:       sel,
			Input:       input,
			Output:      output(),
			Description: desc,
		}
		plan.Fragments = append(plan.Fragments, f)
		next++
		return f, nil
	}

	baseName, err := baseInput(inner.src)
	if err != nil {
		return nil, err
	}

	// A join in the innermost block cannot run on a single sensor, and
	// splitting it would lose the column qualifiers its clauses rely on:
	// the whole block becomes one appliance-level fragment (sensors still
	// only ship their own streams; the join happens one hop up).
	if _, isJoin := inner.src.(*logical.Join); isJoin {
		lvl := LevelAppliance
		if itemsWindow(inner.items) || len(inner.orderBy) > 0 || inner.limit != nil || inner.distinct {
			lvl = LevelPC
		}
		prev, err := addFragment(inner.rebuild(inner.src), lvl, "appliance join", baseName)
		if err != nil {
			return nil, err
		}
		return plan, fr.addSpine(plan, spine, prev, addFragment)
	}

	scan, ok := inner.src.(*logical.Scan)
	if !ok {
		return nil, fmt.Errorf("%w: SELECT without FROM", ErrFragment)
	}

	constConj, otherConj := splitConjuncts(inner.filters)

	// Stage 1 (E4): SELECT * FROM base WHERE <constant filters>.
	sensorRoot := &logical.Project{
		Items: []sqlparser.SelectItem{{Expr: &sqlparser.Star{}}},
		Input: &logical.Scan{
			Table:     scan.Table,
			Alias:     scan.Alias,
			Predicate: sqlparser.AndAll(constConj),
			Prov:      provFiltered(inner.prov, constConj),
		},
	}
	desc := "sensor scan"
	if len(constConj) > 0 {
		desc = "sensor filter (attr vs const)"
	}
	prev, err := addFragment(sensorRoot, LevelSensor, desc, baseName)
	if err != nil {
		return nil, err
	}

	hasAgg := inner.grouped
	hasWin := itemsWindow(inner.items)

	// Above the sensor stage the single base table is renamed d1, d2, ...;
	// qualified references to the original name would dangle, and with one
	// table they are redundant, so they are stripped.
	inner.stripQualifiers()
	otherConj = stripExprQualifiers(otherConj)

	switch {
	case hasWin:
		// Rare shape: innermost with windows — keep it whole above the
		// sensor filter.
		rest := *inner
		rest.filters = otherConj
		prev, err = addFragment(rest.rebuild(&logical.Scan{Table: prev.Output}), LevelPC, "window evaluation", prev.Output)
		if err != nil {
			return nil, err
		}
	case hasAgg:
		// Stage 2 (E3): attribute filter + projection of the raw columns
		// the aggregation needs.
		needed := inner.neededColumns()
		projRoot := &logical.Project{
			Items: columnsToItems(needed),
			Input: &logical.Scan{
				Table:     prev.Output,
				Predicate: sqlparser.AndAll(otherConj),
				Prov:      provFiltered(inner.prov, otherConj),
			},
		}
		desc := "appliance projection"
		if len(otherConj) > 0 {
			desc = "appliance filter + projection"
		}
		prev, err = addFragment(projRoot, LevelAppliance, desc, prev.Output)
		if err != nil {
			return nil, err
		}

		// Stage 3 (E3): the aggregation itself (the media center's part).
		agg := &block{
			items:   cloneItems(inner.items),
			groupBy: cloneExprs(inner.groupBy),
			having:  sqlparser.CloneExpr(inner.having),
			orderBy: cloneOrder(inner.orderBy),
			limit:   cloneLimit(inner.limit),
			grouped: true,
		}
		lvl := LevelAppliance
		if len(inner.orderBy) > 0 || inner.limit != nil {
			lvl = LevelPC
		}
		prev, err = addFragment(agg.rebuild(&logical.Scan{Table: prev.Output}), lvl, "aggregation (GROUP BY/HAVING)", prev.Output)
		if err != nil {
			return nil, err
		}
	default:
		// Stage 2 (E3): attribute filters + the final projection of this
		// block in one appliance fragment.
		lvl := LevelAppliance
		if len(inner.orderBy) > 0 || inner.limit != nil || inner.distinct {
			lvl = LevelPC
		}
		if onlyStarItems(inner.items) && len(otherConj) == 0 && lvl == LevelAppliance {
			// Nothing left to do at this level; skip the no-op fragment.
			break
		}
		proj := *inner
		proj.filters = otherConj
		prev, err = addFragment(proj.rebuild(&logical.Scan{Table: prev.Output}), lvl, "appliance filter + projection", prev.Output)
		if err != nil {
			return nil, err
		}
	}

	return plan, fr.addSpine(plan, spine, prev, addFragment)
}

// addSpine appends one fragment per enclosing spine block, inner to outer.
func (fr *Fragmenter) addSpine(plan *Plan, spine []*block, prev *Fragment,
	addFragment func(logical.Node, Level, string, string) (*Fragment, error)) error {
	for i := len(spine) - 2; i >= 0; i-- {
		b := spine[i]
		node := b.rebuild(&logical.Scan{Table: prev.Output})
		f, err := addFragment(node, b.level(), b.describe(), prev.Output)
		if err != nil {
			return err
		}
		prev = f
	}
	return nil
}

// gatherBlock decomposes one query block of the plan: [Limit] [Sort]
// [Distinct] [Aggregate|Window|Project] [Filter*] source.
func gatherBlock(top logical.Node) (*block, logical.Node) {
	b := &block{}
	cur := top
	if l, ok := cur.(*logical.Limit); ok {
		n := l.N
		b.limit = &n
		cur = l.Input
	}
	if s, ok := cur.(*logical.Sort); ok {
		b.orderBy = cloneOrder(s.By)
		cur = s.Input
	}
	if d, ok := cur.(*logical.Distinct); ok {
		b.distinct = true
		cur = d.Input
	}
	switch x := cur.(type) {
	case *logical.Aggregate:
		b.items = cloneItems(x.Items)
		b.groupBy = cloneExprs(x.GroupBy)
		b.having = sqlparser.CloneExpr(x.Having)
		b.grouped = true
		cur = x.Input
	case *logical.Window:
		b.items = cloneItems(x.Items)
		cur = x.Input
	case *logical.Project:
		b.items = cloneItems(x.Items)
		cur = x.Input
	default:
		b.items = []sqlparser.SelectItem{{Expr: &sqlparser.Star{}}}
	}
	for {
		f, ok := cur.(*logical.Filter)
		if !ok {
			break
		}
		conjs := make([]sqlparser.Expr, 0, 1)
		for _, c := range sqlparser.Conjuncts(f.Cond) {
			conjs = append(conjs, sqlparser.CloneExpr(c))
		}
		b.filters = append(conjs, b.filters...)
		b.prov = append(b.prov, f.Prov...)
		cur = f.Input
	}
	if s, ok := cur.(*logical.Scan); ok && s.Predicate != nil {
		// A predicate already pushed into the scan joins the conjunct list
		// ahead of the filters above it.
		var conjs []sqlparser.Expr
		for _, c := range sqlparser.Conjuncts(s.Predicate) {
			conjs = append(conjs, sqlparser.CloneExpr(c))
		}
		b.filters = append(conjs, b.filters...)
		b.prov = append(b.prov, s.Prov...)
	}
	return b, cur
}

// rebuild assembles the block's operator chain over the given source; the
// block's filters become the scan predicate (single-relation sources) or a
// filter node.
func (b *block) rebuild(src logical.Node) logical.Node {
	n := src
	if cond := sqlparser.AndAll(b.filters); cond != nil {
		if s, ok := n.(*logical.Scan); ok {
			s.Predicate = sqlparser.And(s.Predicate, cond)
		} else {
			n = &logical.Filter{Input: n, Cond: cond}
		}
	}
	switch {
	case b.grouped:
		n = &logical.Aggregate{Input: n, GroupBy: b.groupBy, Items: b.items, Having: b.having}
	case itemsWindow(b.items):
		n = &logical.Window{Input: n, Items: b.items}
	default:
		n = &logical.Project{Input: n, Items: b.items}
	}
	if b.distinct {
		n = &logical.Distinct{Input: n}
	}
	if len(b.orderBy) > 0 {
		n = &logical.Sort{Input: n, By: b.orderBy}
	}
	if b.limit != nil {
		n = &logical.Limit{Input: n, N: *b.limit}
	}
	return n
}

// level classifies one already-isolated block.
func (b *block) level() Level {
	if itemsWindow(b.items) || len(b.orderBy) > 0 || b.limit != nil || b.distinct {
		return LevelPC
	}
	return LevelAppliance
}

func (b *block) describe() string {
	switch {
	case itemsWindow(b.items):
		return "window/analytic evaluation"
	case b.grouped:
		return "aggregation (GROUP BY/HAVING)"
	case len(b.orderBy) > 0 || b.limit != nil:
		return "sort/limit"
	default:
		return "filter + projection"
	}
}

// baseInput names the base relation(s) the innermost block reads.
func baseInput(src logical.Node) (string, error) {
	switch x := src.(type) {
	case *logical.Scan:
		return x.Table, nil
	case *logical.Join:
		return strings.Join(logical.BaseTables(x), "+"), nil
	case *logical.Values, nil:
		return "", fmt.Errorf("%w: SELECT without FROM", ErrFragment)
	default:
		return "", fmt.Errorf("%w: unexpected source %T", ErrFragment, src)
	}
}

// splitConjuncts partitions the block's WHERE conjuncts into sensor-capable
// constant filters and the rest.
func splitConjuncts(conjs []sqlparser.Expr) (constConj, other []sqlparser.Expr) {
	for _, c := range conjs {
		if isConstFilter(c) {
			constConj = append(constConj, sqlparser.CloneExpr(c))
		} else {
			other = append(other, sqlparser.CloneExpr(c))
		}
	}
	return constConj, other
}

// provFiltered keeps the provenance entries describing one of the given
// conjuncts, so policy annotations follow their conditions into the stage
// that evaluates them.
func provFiltered(prov []logical.Provenance, conjs []sqlparser.Expr) []logical.Provenance {
	if len(prov) == 0 || len(conjs) == 0 {
		return nil
	}
	var out []logical.Provenance
	for _, p := range prov {
		if p.Detail == "" {
			continue
		}
		for _, c := range conjs {
			if strings.EqualFold(p.Detail, c.SQL()) {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

// neededColumns lists the raw columns an aggregation stage consumes: every
// column referenced in items, GROUP BY and HAVING, plus ORDER BY references
// that are not output aliases (ORDER BY peak sorts the stage's own output
// column, not an input one).
func (b *block) neededColumns() []string {
	aliases := map[string]bool{}
	for _, it := range b.items {
		if it.Alias != "" {
			aliases[it.Alias] = true
		}
	}
	seen := map[string]bool{}
	var out []string
	add := func(e sqlparser.Expr) {
		for _, c := range sqlparser.ColumnRefs(e) {
			if !seen[c.Name] {
				seen[c.Name] = true
				out = append(out, c.Name)
			}
		}
	}
	for _, it := range b.items {
		add(it.Expr)
	}
	for _, g := range b.groupBy {
		add(g)
	}
	add(b.having)
	for _, o := range b.orderBy {
		for _, c := range sqlparser.ColumnRefs(o.Expr) {
			if aliases[c.Name] {
				continue
			}
			if !seen[c.Name] {
				seen[c.Name] = true
				out = append(out, c.Name)
			}
		}
	}
	return out
}

func columnsToItems(cols []string) []sqlparser.SelectItem {
	out := make([]sqlparser.SelectItem, len(cols))
	for i, c := range cols {
		out[i] = sqlparser.SelectItem{Expr: &sqlparser.ColumnRef{Name: c}}
	}
	return out
}

func cloneItems(items []sqlparser.SelectItem) []sqlparser.SelectItem {
	out := make([]sqlparser.SelectItem, len(items))
	for i, it := range items {
		out[i] = sqlparser.SelectItem{Expr: sqlparser.CloneExpr(it.Expr), Alias: it.Alias}
	}
	return out
}

func cloneExprs(es []sqlparser.Expr) []sqlparser.Expr {
	if es == nil {
		return nil
	}
	out := make([]sqlparser.Expr, len(es))
	for i, e := range es {
		out[i] = sqlparser.CloneExpr(e)
	}
	return out
}

func cloneOrder(os []sqlparser.OrderItem) []sqlparser.OrderItem {
	if os == nil {
		return nil
	}
	out := make([]sqlparser.OrderItem, len(os))
	for i, o := range os {
		out[i] = sqlparser.OrderItem{Expr: sqlparser.CloneExpr(o.Expr), Desc: o.Desc}
	}
	return out
}

func cloneLimit(l *int64) *int64 {
	if l == nil {
		return nil
	}
	v := *l
	return &v
}

// stripQualifiers removes table qualifiers from every clause of the block
// (valid only when the block reads a single base table).
func (b *block) stripQualifiers() {
	strip := func(e sqlparser.Expr) sqlparser.Expr {
		return sqlparser.RewriteExpr(e, func(x sqlparser.Expr) sqlparser.Expr {
			if c, ok := x.(*sqlparser.ColumnRef); ok && c.Table != "" {
				return &sqlparser.ColumnRef{Name: c.Name}
			}
			if s, ok := x.(*sqlparser.Star); ok && s.Table != "" {
				return &sqlparser.Star{}
			}
			return x
		})
	}
	for i := range b.items {
		b.items[i].Expr = strip(b.items[i].Expr)
	}
	for i := range b.groupBy {
		b.groupBy[i] = strip(b.groupBy[i])
	}
	b.having = strip(b.having)
	for i := range b.orderBy {
		b.orderBy[i].Expr = strip(b.orderBy[i].Expr)
	}
}

func stripExprQualifiers(es []sqlparser.Expr) []sqlparser.Expr {
	out := make([]sqlparser.Expr, len(es))
	for i, e := range es {
		out[i] = sqlparser.RewriteExpr(e, func(x sqlparser.Expr) sqlparser.Expr {
			if c, ok := x.(*sqlparser.ColumnRef); ok && c.Table != "" {
				return &sqlparser.ColumnRef{Name: c.Name}
			}
			return x
		})
	}
	return out
}

func itemsWindow(items []sqlparser.SelectItem) bool {
	for _, it := range items {
		if sqlparser.ContainsWindow(it.Expr) {
			return true
		}
	}
	return false
}

func onlyStarItems(items []sqlparser.SelectItem) bool {
	for _, it := range items {
		if _, ok := it.Expr.(*sqlparser.Star); !ok {
			return false
		}
	}
	return true
}
