package fragment

import (
	"errors"
	"fmt"
	"strings"

	logical "paradise/internal/plan"
	"paradise/internal/sqlparser"
)

// ErrFragment wraps fragmentation errors.
var ErrFragment = errors.New("fragment: cannot fragment query")

// Fragment is one pushed-down piece of the vertical decomposition. Fragments
// form a chain: each reads the output relation of its predecessor (or a base
// relation) and ships its result one hop up.
type Fragment struct {
	// Stage is the 1-based position in the chain, bottom (sensor) first.
	Stage int
	// MinLevel is the least capable rung that can execute the fragment.
	MinLevel Level
	// Root is the fragment's logical plan subtree; its scans reference
	// Input. The engine compiles Root directly — fragments ship plan trees,
	// not SQL strings.
	Root logical.Node
	// Query is the SQL surface of Root (rendered via plan.ToSelect), kept
	// for reports, the CLI and the paper-match exhibits.
	Query *sqlparser.Select
	// Input is the relation the fragment reads: a base table for stage 1,
	// else the previous fragment's Output.
	Input string
	// Output is the name under which the fragment's result is visible to
	// the next stage (d1, d2, ... — the paper's notation).
	Output string
	// Description summarizes the fragment's role for reports and the CLI.
	Description string
	// Level is the placement decision: the rung the fragment should run
	// at, chosen by PlaceCostBased to minimize modeled traffic. Zero means
	// unplaced — execution falls back to MinLevel (the fixed policy).
	// Level never goes below MinLevel: privacy and capability floors are
	// hard, only the traffic model is negotiable.
	Level Level
	// EstRows and EstBytes are the modeled output size of the fragment
	// (cardinality model over the plan IR), for explain output and the
	// modeled-vs-measured harness. Zero when the plan was never placed.
	EstRows  int64
	EstBytes int64
}

// EffectiveLevel is the rung the fragment executes at: the cost-based
// placement when one was computed, else the MinLevel floor.
func (f *Fragment) EffectiveLevel() Level {
	if f.Level > f.MinLevel {
		return f.Level
	}
	return f.MinLevel
}

// SQL renders the fragment query.
func (f *Fragment) SQL() string { return f.Query.SQL() }

// Plan is a complete vertical decomposition of one query.
type Plan struct {
	// Fragments bottom-up: Fragments[0] runs at the sensor.
	Fragments []*Fragment
	// Root is the logical plan the decomposition was derived from (already
	// privacy-rewritten).
	Root logical.Node
	// Original is the SQL surface of Root, for reports.
	Original *sqlparser.Select
}

// Remainder returns the highest fragment — the paper's Qδ, the only part
// that must run on a node above the apartment boundary when the in-home
// ladder tops out at the given level.
func (p *Plan) Remainder(homeTop Level) []*Fragment {
	var out []*Fragment
	for _, f := range p.Fragments {
		if f.MinLevel > homeTop {
			out = append(out, f)
		}
	}
	return out
}

// String renders a human-readable plan. When cost-based placement moved a
// fragment above its floor, the chosen rung is appended after the floor.
func (p *Plan) String() string {
	var b strings.Builder
	for _, f := range p.Fragments {
		lvl := f.MinLevel.String()
		if f.Level > f.MinLevel {
			lvl += "->" + f.Level.String()
		}
		fmt.Fprintf(&b, "Q%d @ %-12s %-28s %s\n", f.Stage, lvl, f.Description, f.SQL())
	}
	return b.String()
}

// Explain renders every fragment's logical plan tree, for -explain output,
// with the placement decision and modeled output size when available.
func (p *Plan) Explain() string {
	var b strings.Builder
	for _, f := range p.Fragments {
		fmt.Fprintf(&b, "Q%d @ %s — %s (reads %s, emits %s)", f.Stage, f.MinLevel, f.Description, f.Input, f.Output)
		if f.Level > f.MinLevel {
			fmt.Fprintf(&b, " [placed %s]", f.Level)
		}
		if f.EstRows > 0 || f.EstBytes > 0 {
			fmt.Fprintf(&b, " [est %d rows / %d bytes]", f.EstRows, f.EstBytes)
		}
		b.WriteByte('\n')
		for _, line := range strings.Split(strings.TrimRight(logical.String(f.Root), "\n"), "\n") {
			b.WriteString("  " + line + "\n")
		}
	}
	return b.String()
}

// Fragmenter decomposes queries along the capability ladder.
type Fragmenter struct{}

// New creates a Fragmenter.
func New() *Fragmenter { return &Fragmenter{} }

// Fragment parses the statement's logical structure and decomposes it.
// The input is not modified.
func (fr *Fragmenter) Fragment(q *sqlparser.Select) (*Plan, error) {
	root, err := logical.FromAST(q)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFragment, err)
	}
	return fr.FromPlan(root)
}

// FromPlan decomposes a logical plan into the maximal pushed-down chain.
// Decomposition walks the plan's block spine (Derived boundaries — the
// nesting of the source SQL) with plan.SplitBlock — the block-shape rule
// itself lives in internal/plan; this package only decides placement. The
// innermost block is split into sensor-level constant filters,
// appliance-level attribute filters and projections, and an appliance-level
// aggregation; every enclosing block becomes one fragment at the level its
// operators require. The plan tree is not modified; fragment Roots are
// fresh trees (blocks are cloned before any mutation).
func (fr *Fragmenter) FromPlan(root logical.Node) (*Plan, error) {
	orig, err := logical.ToSelect(root)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFragment, err)
	}

	// Collect the block spine, outermost first.
	var spine []*logical.Block
	cur := root
	for {
		blk, src := logical.SplitBlock(cur)
		spine = append(spine, blk)
		if d, ok := src.(*logical.Derived); ok {
			cur = d.Input
			continue
		}
		break
	}
	inner := spine[len(spine)-1]

	plan := &Plan{Root: root, Original: orig}
	next := 1
	output := func() string { return fmt.Sprintf("d%d", next) }

	addFragment := func(node logical.Node, lvl Level, desc string, input string) (*Fragment, error) {
		sel, err := logical.ToSelect(node)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFragment, err)
		}
		f := &Fragment{
			Stage:       next,
			MinLevel:    lvl,
			Root:        node,
			Query:       sel,
			Input:       input,
			Output:      output(),
			Description: desc,
		}
		plan.Fragments = append(plan.Fragments, f)
		next++
		return f, nil
	}

	baseName, err := baseInput(inner.Src)
	if err != nil {
		return nil, err
	}

	// A join in the innermost block cannot run on a single sensor, and
	// splitting it would lose the column qualifiers its clauses rely on:
	// the whole block becomes one appliance-level fragment (sensors still
	// only ship their own streams; the join happens one hop up).
	if _, isJoin := inner.Src.(*logical.Join); isJoin {
		lvl := LevelAppliance
		if itemsWindow(inner.Items()) || inner.Sort != nil || inner.Limit != nil || inner.Distinct != nil {
			lvl = LevelPC
		}
		conds, _ := inner.Conjuncts() // returns clones; no need to Clone the filters too
		joinBlk := inner.Clone()
		joinBlk.Filters = nil
		prev, err := addFragment(rebuildOver(joinBlk, inner.Src, conds), lvl, "appliance join", baseName)
		if err != nil {
			return nil, err
		}
		return plan, fr.addSpine(plan, spine, prev, addFragment)
	}

	scan, ok := inner.Src.(*logical.Scan)
	if !ok {
		return nil, fmt.Errorf("%w: SELECT without FROM", ErrFragment)
	}

	// The innermost WHERE surface (scan predicate + residual filters) as
	// conjuncts with their policy provenance, re-partitioned across levels.
	conds, prov := inner.Conjuncts()
	constConj, otherConj := splitConjuncts(conds)

	// Stage 1 (E4): SELECT * FROM base WHERE <constant filters>.
	sensorRoot := &logical.Project{
		Items: []sqlparser.SelectItem{{Expr: &sqlparser.Star{}}},
		Input: &logical.Scan{
			Table:     scan.Table,
			Alias:     scan.Alias,
			Predicate: sqlparser.AndAll(constConj),
			Prov:      provFiltered(prov, constConj),
		},
	}
	desc := "sensor scan"
	if len(constConj) > 0 {
		desc = "sensor filter (attr vs const)"
	}
	prev, err := addFragment(sensorRoot, LevelSensor, desc, baseName)
	if err != nil {
		return nil, err
	}

	hasAgg := inner.Agg != nil
	hasWin := itemsWindow(inner.Items())

	// The stages above the sensor work on an owned copy of the block (the
	// input tree must not be mutated); their WHERE travels in otherConj.
	work := inner.Clone()
	work.Filters = nil

	// Above the sensor stage the single base table is renamed d1, d2, ...;
	// qualified references to the original name would dangle, and with one
	// table they are redundant, so they are stripped.
	stripQualifiers(work)
	otherConj = stripExprQualifiers(otherConj)

	switch {
	case hasWin:
		// Rare shape: innermost with windows — keep it whole above the
		// sensor filter.
		prev, err = addFragment(rebuildOver(work, &logical.Scan{Table: prev.Output}, otherConj), LevelPC, "window evaluation", prev.Output)
		if err != nil {
			return nil, err
		}
	case hasAgg:
		// Stage 2 (E3): attribute filter + projection of the raw columns
		// the aggregation needs.
		needed := neededColumns(work)
		projRoot := &logical.Project{
			Items: columnsToItems(needed),
			Input: &logical.Scan{
				Table:     prev.Output,
				Predicate: sqlparser.AndAll(otherConj),
				Prov:      provFiltered(prov, otherConj),
			},
		}
		desc := "appliance projection"
		if len(otherConj) > 0 {
			desc = "appliance filter + projection"
		}
		prev, err = addFragment(projRoot, LevelAppliance, desc, prev.Output)
		if err != nil {
			return nil, err
		}

		// Stage 3 (E3): the aggregation itself (the media center's part).
		agg := &logical.Block{
			Agg:   work.Agg,
			Sort:  work.Sort,
			Limit: work.Limit,
		}
		lvl := LevelAppliance
		if work.Sort != nil || work.Limit != nil {
			lvl = LevelPC
		}
		prev, err = addFragment(agg.Rebuild(&logical.Scan{Table: prev.Output}), lvl, "aggregation (GROUP BY/HAVING)", prev.Output)
		if err != nil {
			return nil, err
		}
	default:
		// Stage 2 (E3): attribute filters + the final projection of this
		// block in one appliance fragment.
		lvl := LevelAppliance
		if work.Sort != nil || work.Limit != nil || work.Distinct != nil {
			lvl = LevelPC
		}
		if onlyStarItems(work.Items()) && len(otherConj) == 0 && lvl == LevelAppliance {
			// Nothing left to do at this level; skip the no-op fragment.
			break
		}
		prev, err = addFragment(rebuildOver(work, &logical.Scan{Table: prev.Output}, otherConj), lvl, "appliance filter + projection", prev.Output)
		if err != nil {
			return nil, err
		}
	}

	return plan, fr.addSpine(plan, spine, prev, addFragment)
}

// addSpine appends one fragment per enclosing spine block, inner to outer.
func (fr *Fragmenter) addSpine(plan *Plan, spine []*logical.Block, prev *Fragment,
	addFragment func(logical.Node, Level, string, string) (*Fragment, error)) error {
	for i := len(spine) - 2; i >= 0; i-- {
		conds, _ := spine[i].Conjuncts() // returns clones; no need to Clone the filters too
		b := spine[i].Clone()
		b.Filters = nil
		node := rebuildOver(b, &logical.Scan{Table: prev.Output}, conds)
		f, err := addFragment(node, blockLevel(b), blockDescribe(b), prev.Output)
		if err != nil {
			return err
		}
		prev = f
	}
	return nil
}

// rebuildOver reassembles a block over the given source with the given
// WHERE conjuncts, folding them into the scan predicate (single-relation
// sources keep the paper's SELECT ... WHERE surface) or wrapping them as a
// filter node otherwise. The block's own Filters slot must be empty — the
// fragmenter always re-partitions conjuncts explicitly.
func rebuildOver(b *logical.Block, src logical.Node, conds []sqlparser.Expr) logical.Node {
	if cond := sqlparser.AndAll(conds); cond != nil {
		if s, ok := src.(*logical.Scan); ok {
			s.Predicate = sqlparser.And(s.Predicate, cond)
		} else {
			src = &logical.Filter{Input: src, Cond: cond}
		}
	}
	return b.Rebuild(src)
}

// blockLevel classifies one already-isolated block on the capability ladder.
func blockLevel(b *logical.Block) Level {
	if itemsWindow(b.Items()) || b.Sort != nil || b.Limit != nil || b.Distinct != nil {
		return LevelPC
	}
	return LevelAppliance
}

func blockDescribe(b *logical.Block) string {
	switch {
	case itemsWindow(b.Items()):
		return "window/analytic evaluation"
	case b.Agg != nil:
		return "aggregation (GROUP BY/HAVING)"
	case b.Sort != nil || b.Limit != nil:
		return "sort/limit"
	default:
		return "filter + projection"
	}
}

// baseInput names the base relation(s) the innermost block reads.
func baseInput(src logical.Node) (string, error) {
	switch x := src.(type) {
	case *logical.Scan:
		return x.Table, nil
	case *logical.Join:
		return strings.Join(logical.BaseTables(x), "+"), nil
	case *logical.Values, nil:
		return "", fmt.Errorf("%w: SELECT without FROM", ErrFragment)
	default:
		return "", fmt.Errorf("%w: unexpected source %T", ErrFragment, src)
	}
}

// splitConjuncts partitions the block's WHERE conjuncts (already cloned by
// plan.Block.Conjuncts) into sensor-capable constant filters and the rest.
func splitConjuncts(conjs []sqlparser.Expr) (constConj, other []sqlparser.Expr) {
	for _, c := range conjs {
		if isConstFilter(c) {
			constConj = append(constConj, c)
		} else {
			other = append(other, c)
		}
	}
	return constConj, other
}

// provFiltered keeps the provenance entries describing one of the given
// conjuncts, so policy annotations follow their conditions into the stage
// that evaluates them.
func provFiltered(prov []logical.Provenance, conjs []sqlparser.Expr) []logical.Provenance {
	if len(prov) == 0 || len(conjs) == 0 {
		return nil
	}
	var out []logical.Provenance
	for _, p := range prov {
		if p.Detail == "" {
			continue
		}
		for _, c := range conjs {
			if strings.EqualFold(p.Detail, c.SQL()) {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

// neededColumns lists the raw columns an aggregation stage consumes, in
// first-use order — the plan.Block requirements analysis projected onto
// plain names. Stars (COUNT(*)) read no columns; ORDER BY references that
// resolve in the stage's own output (aliases, projected names) do not need
// to be shipped by the projection stage below it.
func neededColumns(b *logical.Block) []string {
	reqs := b.Requirements()
	seen := map[string]bool{}
	var out []string
	for _, r := range reqs.Cols {
		key := strings.ToLower(r.Name)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, r.Name)
	}
	return out
}

func columnsToItems(cols []string) []sqlparser.SelectItem {
	out := make([]sqlparser.SelectItem, len(cols))
	for i, c := range cols {
		out[i] = sqlparser.SelectItem{Expr: &sqlparser.ColumnRef{Name: c}}
	}
	return out
}

// stripQualifiers removes table qualifiers from every clause of an owned
// (cloned) block — valid only when the block reads a single base table,
// whose name the chain replaces with d1, d2, ...
func stripQualifiers(b *logical.Block) {
	strip := func(e sqlparser.Expr) sqlparser.Expr {
		return sqlparser.RewriteExpr(e, func(x sqlparser.Expr) sqlparser.Expr {
			if c, ok := x.(*sqlparser.ColumnRef); ok && c.Table != "" {
				return &sqlparser.ColumnRef{Name: c.Name}
			}
			if s, ok := x.(*sqlparser.Star); ok && s.Table != "" {
				return &sqlparser.Star{}
			}
			return x
		})
	}
	stripItems := func(items []sqlparser.SelectItem) {
		for i := range items {
			items[i].Expr = strip(items[i].Expr)
		}
	}
	switch {
	case b.Agg != nil:
		stripItems(b.Agg.Items)
		for i := range b.Agg.GroupBy {
			b.Agg.GroupBy[i] = strip(b.Agg.GroupBy[i])
		}
		b.Agg.Having = strip(b.Agg.Having)
	case b.Win != nil:
		stripItems(b.Win.Items)
	case b.Proj != nil:
		stripItems(b.Proj.Items)
	}
	if b.Sort != nil {
		for i := range b.Sort.By {
			b.Sort.By[i].Expr = strip(b.Sort.By[i].Expr)
		}
	}
}

func stripExprQualifiers(es []sqlparser.Expr) []sqlparser.Expr {
	out := make([]sqlparser.Expr, len(es))
	for i, e := range es {
		out[i] = sqlparser.RewriteExpr(e, func(x sqlparser.Expr) sqlparser.Expr {
			if c, ok := x.(*sqlparser.ColumnRef); ok && c.Table != "" {
				return &sqlparser.ColumnRef{Name: c.Name}
			}
			return x
		})
	}
	return out
}

func itemsWindow(items []sqlparser.SelectItem) bool {
	for _, it := range items {
		if sqlparser.ContainsWindow(it.Expr) {
			return true
		}
	}
	return false
}

func onlyStarItems(items []sqlparser.SelectItem) bool {
	for _, it := range items {
		if _, ok := it.Expr.(*sqlparser.Star); !ok {
			return false
		}
	}
	return true
}
