package fragment

import (
	"context"
	"strings"
	"testing"

	"paradise/internal/engine"
	logical "paradise/internal/plan"
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
	"paradise/internal/storage"
)

func planTestStore(t *testing.T) *storage.Store {
	t.Helper()
	st := storage.NewStore()
	tb := st.Create(schema.NewRelation("d",
		schema.Col("x", schema.TypeFloat),
		schema.Col("y", schema.TypeFloat),
		schema.Col("z", schema.TypeFloat),
		schema.Col("t", schema.TypeInt),
	))
	for i := 0; i < 500; i++ {
		if err := tb.Append(schema.Row{
			schema.Float(float64(i % 13)),
			schema.Float(float64(i % 7)),
			schema.Float(float64(i%5) / 2),
			schema.Int(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestFragmentRootMatchesQuery: every fragment carries a plan tree whose
// SQL surface is exactly its Query — executing the Root (what OpenChain
// does) and executing the rendered Query agree row for row.
func TestFragmentRootMatchesQuery(t *testing.T) {
	st := planTestStore(t)
	queries := []string{
		"SELECT x, y FROM d WHERE t > 5 AND x > y",
		"SELECT x, AVG(z) AS za FROM d WHERE z < 2 GROUP BY x HAVING COUNT(*) > 2 ORDER BY za LIMIT 5",
		"SELECT v FROM (SELECT x AS v, z FROM d WHERE z < 1.5) WHERE v > 3 ORDER BY v",
	}
	for _, q := range queries {
		sel, err := sqlparser.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := New().Fragment(sel)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		for _, f := range plan.Fragments {
			if f.Root == nil {
				t.Fatalf("%q: fragment Q%d has no plan tree", q, f.Stage)
			}
			rendered, err := logical.ToSelect(f.Root)
			if err != nil {
				t.Fatalf("%q Q%d: render: %v", q, f.Stage, err)
			}
			if rendered.SQL() != f.Query.SQL() {
				t.Errorf("%q Q%d: Root renders %q, Query is %q", q, f.Stage, rendered.SQL(), f.Query.SQL())
			}
		}
		// The chain executes the plan trees; the property tests pin full
		// equivalence against the monolithic engine — here we pin that the
		// first stage's Root is engine-compilable standalone.
		rel, it, err := engine.New(st).Open(context.Background(), plan.Fragments[0].Root)
		if err != nil {
			t.Fatalf("%q Q1: open root: %v", q, err)
		}
		if _, err := schema.DrainIterator(it); err != nil {
			t.Fatalf("%q Q1: drain: %v", q, err)
		}
		if rel == nil || rel.Arity() == 0 {
			t.Fatalf("%q Q1: empty schema", q)
		}
	}
}

// TestFromPlanPreservesPolicyProvenance: provenance attached to the
// rewritten plan's filters follows the conjuncts into the stage that
// evaluates them (sensor stage for constant filters).
func TestFromPlanPreservesPolicyProvenance(t *testing.T) {
	sel, err := sqlparser.Parse("SELECT x, y FROM d WHERE z < 2 AND x > y")
	if err != nil {
		t.Fatal(err)
	}
	root, err := logical.FromAST(sel)
	if err != nil {
		t.Fatal(err)
	}
	logical.Walk(root, func(n logical.Node) {
		if f, ok := n.(*logical.Filter); ok {
			f.Prov = append(f.Prov, logical.Provenance{
				Origin: "policy", Module: "M", Rule: "selection control (injected condition)",
				Columns: []string{"z"}, Detail: "z < 2",
			})
		}
	})
	plan, err := New().FromPlan(root)
	if err != nil {
		t.Fatal(err)
	}
	sensor := plan.Fragments[0]
	if !strings.Contains(logical.String(sensor.Root), "policy:M") {
		t.Fatalf("sensor stage lost policy provenance:\n%s", logical.String(sensor.Root))
	}
}
