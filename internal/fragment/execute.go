package fragment

import (
	"fmt"

	"paradise/internal/engine"
	"paradise/internal/schema"
)

// StageResult records one executed fragment for accounting: the rows it
// produced and their simulated wire size (what ships to the next node).
type StageResult struct {
	Fragment *Fragment
	Rows     int
	Bytes    int
}

// Execution is the outcome of running a whole plan.
type Execution struct {
	Result *engine.Result
	Stages []StageResult
}

// BytesShipped sums the bytes crossing node boundaries (every stage output
// travels one hop up the ladder).
func (e *Execution) BytesShipped() int {
	total := 0
	for _, s := range e.Stages {
		total += s.Bytes
	}
	return total
}

// stageSource exposes the previous stage's output under its relation name,
// falling back to the base source for stage 1 (and for any base relation a
// join references).
type stageSource struct {
	base engine.Source
	name string
	rel  *schema.Relation
	rows schema.Rows
}

func (s *stageSource) Relation(name string) (*schema.Relation, schema.Rows, error) {
	if s.rel != nil && name == s.name {
		return s.rel, s.rows, nil
	}
	return s.base.Relation(name)
}

// Execute runs the plan bottom-up against the base source, materializing
// each fragment's result and feeding it to the next stage under its output
// name. It returns the final result and per-stage accounting. Execution is
// semantically equivalent to evaluating the original query directly (the
// property tests in this package assert exactly that).
func Execute(plan *Plan, base engine.Source) (*Execution, error) {
	exec := &Execution{}
	src := &stageSource{base: base}
	for _, f := range plan.Fragments {
		eng := engine.New(src)
		res, err := eng.Select(f.Query)
		if err != nil {
			return nil, fmt.Errorf("fragment: stage %d (%s): %w", f.Stage, f.Description, err)
		}
		out := res.Schema.Clone(f.Output)
		src = &stageSource{base: base, name: f.Output, rel: out, rows: res.Rows}
		exec.Stages = append(exec.Stages, StageResult{
			Fragment: f,
			Rows:     len(res.Rows),
			Bytes:    res.Rows.WireSize(),
		})
		exec.Result = &engine.Result{Schema: out, Rows: res.Rows}
	}
	if exec.Result == nil {
		return nil, fmt.Errorf("%w: empty plan", ErrFragment)
	}
	return exec, nil
}
