package fragment

import (
	"errors"
	"fmt"

	"paradise/internal/engine"
	"paradise/internal/schema"
)

// StageResult records one executed fragment for accounting: the rows it
// produced and their simulated wire size (what ships to the next node).
type StageResult struct {
	Fragment *Fragment
	Rows     int
	Bytes    int
}

// Execution is the outcome of running a whole plan.
type Execution struct {
	Result *engine.Result
	Stages []StageResult
}

// BytesShipped sums the bytes crossing node boundaries (every stage output
// travels one hop up the ladder).
func (e *Execution) BytesShipped() int {
	total := 0
	for _, s := range e.Stages {
		total += s.Bytes
	}
	return total
}

// stageErr marks an error already attributed to a fragment stage so outer
// stages do not re-wrap it as it propagates up the iterator chain.
type stageErr struct{ err error }

func (e *stageErr) Error() string { return e.err.Error() }
func (e *stageErr) Unwrap() error { return e.err }

func wrapStage(f *Fragment, err error) error {
	var se *stageErr
	if errors.As(err, &se) {
		return err
	}
	return &stageErr{err: fmt.Errorf("fragment: stage %d (%s): %w", f.Stage, f.Description, err)}
}

// stageIter wraps one fragment's output pipeline: it counts rows and wire
// bytes per batch for the stage accounting, and attributes errors to its
// stage. Close drains the remainder first — the producing node ships its
// whole output up the chain regardless of how much the consumer reads, so
// per-stage stats match the fully materialized baseline exactly even when a
// later stage stops early (LIMIT).
type stageIter struct {
	src    schema.RowIterator
	f      *Fragment
	rows   int
	bytes  int
	closed bool
	err    error // runtime error surfaced while draining on Close
}

func (s *stageIter) Next() (schema.Rows, error) {
	batch, err := s.src.Next()
	if err != nil {
		return nil, wrapStage(s.f, err)
	}
	s.rows += len(batch)
	s.bytes += batch.WireSize()
	return batch, nil
}

func (s *stageIter) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for {
		batch, err := s.src.Next()
		if err != nil {
			// The baseline would have evaluated this row and failed the
			// whole execution: record the error for Execute to surface.
			s.err = wrapStage(s.f, err)
			break
		}
		if batch == nil {
			break
		}
		s.rows += len(batch)
		s.bytes += batch.WireSize()
	}
	s.src.Close()
}

// stageSource exposes the previous stage's output iterator under its
// relation name, falling back to the base source for any base relation a
// join references. The stage output is one-shot: fragment plans read each
// intermediate exactly once.
type stageSource struct {
	base     engine.Source
	name     string
	rel      *schema.Relation
	it       *stageIter
	consumed bool
}

func (s *stageSource) take() (*stageIter, error) {
	if s.consumed {
		return nil, fmt.Errorf("%w: stage output %q read twice", ErrFragment, s.name)
	}
	s.consumed = true
	return s.it, nil
}

func (s *stageSource) RelationSchema(name string) (*schema.Relation, error) {
	if name == s.name {
		return s.rel, nil
	}
	return engine.RelationSchema(s.base, name)
}

func (s *stageSource) OpenScan(name string, sc schema.Scan) (schema.RowIterator, error) {
	if name == s.name {
		it, err := s.take()
		if err != nil {
			return nil, err
		}
		return schema.FilterProject(it, sc), nil
	}
	return engine.OpenScan(s.base, name, sc)
}

// Relation is the materialized fallback of the engine's Source interface;
// the engine only takes this path for sources without batch scans, but the
// interface contract requires it.
func (s *stageSource) Relation(name string) (*schema.Relation, schema.Rows, error) {
	if name == s.name {
		it, err := s.take()
		if err != nil {
			return nil, nil, err
		}
		rows, err := schema.DrainIterator(it)
		if err != nil {
			return nil, nil, err
		}
		return s.rel, rows, nil
	}
	return s.base.Relation(name)
}

// Execute runs the plan bottom-up against the base source as one chained
// batch pipeline: each fragment's iterator feeds the next stage's scan, so
// no intermediate relation is materialized in full (memory is bounded by
// batch size plus any pipeline breakers inside a stage). The final result
// is materialized for the caller, and per-stage row/byte accounting is
// collected from the streamed batches. Execution is semantically equivalent
// to evaluating the original query directly (the property tests in this
// package assert exactly that).
func Execute(plan *Plan, base engine.Source) (*Execution, error) {
	if len(plan.Fragments) == 0 {
		return nil, fmt.Errorf("%w: empty plan", ErrFragment)
	}

	var src engine.Source = base
	stages := make([]*stageIter, 0, len(plan.Fragments))
	var rel *schema.Relation
	for _, f := range plan.Fragments {
		stageRel, it, err := engine.New(src).Open(f.Query)
		if err != nil {
			// Abandon the chain. Open's own cleanup may already have
			// closed (and thereby drained) upstream stages; the stats are
			// discarded with the error, so only release what remains.
			for _, s := range stages {
				s.src.Close()
			}
			return nil, wrapStage(f, err)
		}
		rel = stageRel.Clone(f.Output)
		st := &stageIter{src: it, f: f}
		stages = append(stages, st)
		src = &stageSource{base: base, name: f.Output, rel: rel, it: st}
	}

	last := stages[len(stages)-1]
	rows, err := schema.DrainIterator(last)
	if err != nil {
		return nil, err
	}
	// Drain-close the whole chain so every stage's accounting is final even
	// if a downstream LIMIT stopped pulling early — and fail if the drain
	// hit a row the materialized baseline would have choked on.
	for i := len(stages) - 1; i >= 0; i-- {
		stages[i].Close()
	}
	for _, st := range stages {
		if st.err != nil {
			return nil, st.err
		}
	}

	exec := &Execution{Result: &engine.Result{Schema: rel, Rows: rows}}
	for i, f := range plan.Fragments {
		exec.Stages = append(exec.Stages, StageResult{
			Fragment: f,
			Rows:     stages[i].rows,
			Bytes:    stages[i].bytes,
		})
	}
	return exec, nil
}
