package fragment

import (
	"context"
	"errors"
	"fmt"

	"paradise/internal/engine"
	"paradise/internal/schema"
)

// StageResult records one executed fragment for accounting: the rows it
// produced and their simulated wire size (what ships to the next node).
type StageResult struct {
	Fragment *Fragment
	Rows     int
	Bytes    int
}

// Execution is the outcome of running a whole plan.
type Execution struct {
	Result *engine.Result
	Stages []StageResult
}

// BytesShipped sums the bytes crossing node boundaries (every stage output
// travels one hop up the ladder).
func (e *Execution) BytesShipped() int {
	total := 0
	for _, s := range e.Stages {
		total += s.Bytes
	}
	return total
}

// stageErr marks an error already attributed to a fragment stage so outer
// stages do not re-wrap it as it propagates up the iterator chain.
type stageErr struct{ err error }

func (e *stageErr) Error() string { return e.err.Error() }
func (e *stageErr) Unwrap() error { return e.err }

func wrapStage(f *Fragment, err error) error {
	var se *stageErr
	if errors.As(err, &se) {
		return err
	}
	return &stageErr{err: fmt.Errorf("fragment: stage %d (%s): %w", f.Stage, f.Description, err)}
}

// stageIter wraps one fragment's output pipeline: it counts rows and wire
// bytes per batch for the stage accounting, and attributes errors to its
// stage. Close drains the remainder first — the producing node ships its
// whole output up the chain regardless of how much the consumer reads, so
// per-stage stats match the fully materialized baseline exactly even when a
// later stage stops early (LIMIT).
type stageIter struct {
	src    schema.RowIterator
	f      *Fragment
	rows   int
	bytes  int
	closed bool
	err    error // runtime error surfaced while draining on Close
}

func (s *stageIter) Next() (schema.Rows, error) {
	batch, err := s.src.Next()
	if err != nil {
		return nil, wrapStage(s.f, err)
	}
	s.rows += len(batch)
	s.bytes += batch.WireSize()
	return batch, nil
}

func (s *stageIter) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for {
		batch, err := s.src.Next()
		if err != nil {
			// The baseline would have evaluated this row and failed the
			// whole execution: record the error for Execute to surface.
			s.err = wrapStage(s.f, err)
			break
		}
		if batch == nil {
			break
		}
		s.rows += len(batch)
		s.bytes += batch.WireSize()
	}
	s.src.Close()
}

// stageSource exposes the previous stage's output iterator under its
// relation name, falling back to the base source for any base relation a
// join references. The stage output is one-shot: fragment plans read each
// intermediate exactly once.
type stageSource struct {
	base     engine.Source
	name     string
	rel      *schema.Relation
	it       *stageIter
	consumed bool
}

func (s *stageSource) take() (*stageIter, error) {
	if s.consumed {
		return nil, fmt.Errorf("%w: stage output %q read twice", ErrFragment, s.name)
	}
	s.consumed = true
	return s.it, nil
}

func (s *stageSource) RelationSchema(name string) (*schema.Relation, error) {
	if name == s.name {
		return s.rel, nil
	}
	return engine.RelationSchema(s.base, name)
}

func (s *stageSource) OpenScan(ctx context.Context, name string, sc schema.Scan) (schema.RowIterator, error) {
	if name == s.name {
		it, err := s.take()
		if err != nil {
			return nil, err
		}
		return schema.FilterProject(it, sc), nil
	}
	return engine.OpenScan(ctx, s.base, name, sc)
}

// Relation is the materialized fallback of the engine's Source interface;
// the engine only takes this path for sources without batch scans, but the
// interface contract requires it.
func (s *stageSource) Relation(name string) (*schema.Relation, schema.Rows, error) {
	if name == s.name {
		it, err := s.take()
		if err != nil {
			return nil, nil, err
		}
		rows, err := schema.DrainIterator(it)
		if err != nil {
			return nil, nil, err
		}
		return s.rel, rows, nil
	}
	return s.base.Relation(name)
}

// Option configures how a fragment plan executes.
type Option func(*execConfig)

type execConfig struct{ par int }

// WithParallelism sets the number of worker goroutines each stage's engine
// pipeline may use (morsel-driven, see the engine package): n <= 0 means
// runtime.GOMAXPROCS(0), 1 (the default) keeps execution serial. Stage
// outputs feed the next stage's workers through a shared morsel cursor, so
// the per-stage row/byte accounting accrues under that cursor's lock —
// batch sums are order-independent, making a parallel chain's accounting
// bit-identical to the serial chain's.
func WithParallelism(n int) Option {
	return func(c *execConfig) { c.par = n }
}

// Chain is an opened fragment plan: the stages wired into one lazy batch
// pipeline whose final iterator the caller pulls. Each fragment's iterator
// feeds the next stage's scan, so no intermediate relation is materialized
// in full (memory is bounded by batch size plus any pipeline breakers
// inside a stage). Per-stage row/byte accounting accrues as batches flow
// and is finalized by Close, which drains every stage — the accounting of a
// fully drained chain matches the materialized baseline exactly even when
// the consumer stopped early (LIMIT, cursor Close).
type Chain struct {
	rel    *schema.Relation
	stages []*stageIter
	closed bool
}

// OpenChain wires the plan's fragments into one lazy pipeline over the base
// source, bound to ctx (cancellation is checked per batch at every scan).
// The caller pulls Iterator and must Close the chain; Close is idempotent.
func OpenChain(ctx context.Context, plan *Plan, base engine.Source, opts ...Option) (*Chain, error) {
	if len(plan.Fragments) == 0 {
		return nil, fmt.Errorf("%w: empty plan", ErrFragment)
	}
	cfg := execConfig{par: 1}
	for _, o := range opts {
		o(&cfg)
	}

	var src engine.Source = base
	stages := make([]*stageIter, 0, len(plan.Fragments))
	var rel *schema.Relation
	for _, f := range plan.Fragments {
		stageRel, it, err := engine.New(src).WithParallelism(cfg.par).Open(ctx, f.Root)
		if err != nil {
			// Abandon the chain. Open's own cleanup may already have
			// closed (and thereby drained) upstream stages; the stats are
			// discarded with the error, so only release what remains.
			for _, s := range stages {
				s.src.Close()
			}
			return nil, wrapStage(f, err)
		}
		rel = stageRel.Clone(f.Output)
		st := &stageIter{src: it, f: f}
		stages = append(stages, st)
		src = &stageSource{base: base, name: f.Output, rel: rel, it: st}
	}
	return &Chain{rel: rel, stages: stages}, nil
}

// Schema is the output relation of the final fragment.
func (c *Chain) Schema() *schema.Relation { return c.rel }

// Iterator is the final stage's batch iterator. Closing it closes (and
// drains) the whole chain; prefer Chain.Close, which also surfaces drain
// errors.
func (c *Chain) Iterator() schema.RowIterator { return c.stages[len(c.stages)-1] }

// Close drain-closes the whole chain so every stage's accounting is final
// even if the consumer stopped pulling early, and reports any error the
// drain hit — a row the materialized baseline would have choked on, or the
// context cancelled mid-drain. Close is idempotent; later calls return the
// first result.
func (c *Chain) Close() error {
	if !c.closed {
		c.closed = true
		for i := len(c.stages) - 1; i >= 0; i-- {
			c.stages[i].Close()
		}
	}
	for _, st := range c.stages {
		if st.err != nil {
			return st.err
		}
	}
	return nil
}

// Stages returns the per-stage accounting. Only final after Close (or after
// the final iterator is exhausted and Close confirmed no drain error).
func (c *Chain) Stages() []StageResult {
	out := make([]StageResult, len(c.stages))
	for i, st := range c.stages {
		out[i] = StageResult{Fragment: st.f, Rows: st.rows, Bytes: st.bytes}
	}
	return out
}

// Execute runs the plan bottom-up against the base source as one chained
// batch pipeline (see OpenChain). The final result is materialized for the
// caller, and per-stage row/byte accounting is collected from the streamed
// batches. Execution is semantically equivalent to evaluating the original
// query directly (the property tests in this package assert exactly that).
func Execute(ctx context.Context, plan *Plan, base engine.Source, opts ...Option) (*Execution, error) {
	chain, err := OpenChain(ctx, plan, base, opts...)
	if err != nil {
		return nil, err
	}
	rows, err := schema.DrainIterator(chain.Iterator())
	if err != nil {
		chain.Close()
		return nil, err
	}
	// Fail if the drain-close hit a row the materialized baseline would
	// have choked on.
	if err := chain.Close(); err != nil {
		return nil, err
	}
	return &Execution{
		Result: &engine.Result{Schema: chain.Schema(), Rows: rows},
		Stages: chain.Stages(),
	}, nil
}
