package fragment

import (
	"context"
	"errors"
	"strings"
	"testing"

	"paradise/internal/engine"
	"paradise/internal/schema"
	"paradise/internal/storage"
)

// materializedBaseline replays the plan the pre-streaming way: each stage's
// full result materialized into an overlay source, stats from len/WireSize.
// The streamed Execute must report exactly the same per-stage accounting.
func materializedBaseline(t *testing.T, plan *Plan, base engine.Source) []StageResult {
	t.Helper()
	type overlay struct {
		base engine.Source
		name string
		rel  *schema.Relation
		rows schema.Rows
	}
	var cur *overlay
	var out []StageResult
	for _, f := range plan.Fragments {
		src := base
		if cur != nil {
			src = sourceFunc(func(name string) (*schema.Relation, schema.Rows, error) {
				if name == cur.name {
					return cur.rel, cur.rows, nil
				}
				return base.Relation(name)
			})
		}
		res, err := engine.New(src).Select(context.Background(), f.Query)
		if err != nil {
			t.Fatalf("baseline stage %d: %v", f.Stage, err)
		}
		cur = &overlay{base: base, name: f.Output, rel: res.Schema.Clone(f.Output), rows: res.Rows}
		out = append(out, StageResult{Fragment: f, Rows: len(res.Rows), Bytes: res.Rows.WireSize()})
	}
	return out
}

// sourceFunc adapts a closure to engine.Source. Deliberately NOT a
// BatchSource: the baseline takes the fully materialized path.
type sourceFunc func(string) (*schema.Relation, schema.Rows, error)

func (f sourceFunc) Relation(name string) (*schema.Relation, schema.Rows, error) { return f(name) }

// TestStreamedStatsMatchMaterializedBaseline pins the accounting contract:
// chaining stage iterators must not change per-stage row/byte stats — even
// when a later stage carries a LIMIT that stops pulling early, because the
// producing node ships its whole output regardless.
func TestStreamedStatsMatchMaterializedBaseline(t *testing.T) {
	st := testStore(t)
	queries := []string{
		"SELECT x, y FROM d WHERE x > y AND z < 2",
		"SELECT x, y, AVG(z) AS zavg FROM d WHERE x > y GROUP BY x, y HAVING SUM(z) > 1",
		"SELECT s FROM (SELECT x + y AS s, z FROM d WHERE z < 1.5) LIMIT 2",
		"SELECT s FROM (SELECT x + y AS s FROM d WHERE z < 2) WHERE s > 8",
		"SELECT x, y FROM d WHERE x > y ORDER BY x DESC LIMIT 3",
		"SELECT DISTINCT x FROM d WHERE z < 2",
	}
	for _, q := range queries {
		t.Run(q, func(t *testing.T) {
			plan := mustFragment(t, q)
			exec, err := Execute(context.Background(), plan, st)
			if err != nil {
				t.Fatal(err)
			}
			want := materializedBaseline(t, plan, st)
			if len(exec.Stages) != len(want) {
				t.Fatalf("stage count %d != %d", len(exec.Stages), len(want))
			}
			for i := range want {
				if exec.Stages[i].Rows != want[i].Rows || exec.Stages[i].Bytes != want[i].Bytes {
					t.Fatalf("stage %d: streamed rows=%d bytes=%d, baseline rows=%d bytes=%d",
						i+1, exec.Stages[i].Rows, exec.Stages[i].Bytes, want[i].Rows, want[i].Bytes)
				}
			}
		})
	}
}

// TestExecuteEmptyPlan preserves the empty-plan error.
func TestExecuteEmptyPlan(t *testing.T) {
	if _, err := Execute(context.Background(), &Plan{}, testStore(t)); err == nil {
		t.Fatal("empty plan must error")
	}
}

// TestExecuteErrorBeyondLimitStillSurfaces: a runtime error past the rows a
// downstream LIMIT consumed must still fail the execution — the
// materialized baseline would have evaluated every row of every stage.
func TestExecuteErrorBeyondLimitStillSurfaces(t *testing.T) {
	st := storage.NewStore()
	d := st.Create(schema.NewRelation("d",
		schema.Col("x", schema.TypeFloat),
		schema.Col("z", schema.TypeFloat),
	))
	rows := make(schema.Rows, 0, 600)
	for i := 0; i < 600; i++ {
		z := 1.0
		if i == 500 {
			z = 0 // division by zero deep in the table
		}
		rows = append(rows, schema.Row{schema.Float(float64(i)), schema.Float(z)})
	}
	if err := d.Append(rows...); err != nil {
		t.Fatal(err)
	}
	plan := mustFragment(t, "SELECT s FROM (SELECT x / z AS s FROM d) LIMIT 1")
	if _, err := Execute(context.Background(), plan, st); err == nil {
		t.Fatal("division by zero beyond the LIMIT must fail the execution")
	}
}

// TestExecuteStageErrorAttribution: runtime errors carry the stage that
// caused them, once, even though they surface lazily through the chain.
func TestExecuteStageErrorAttribution(t *testing.T) {
	st := testStore(t)
	plan := mustFragment(t, "SELECT x / 0 AS bad FROM d WHERE z < 2")
	_, err := Execute(context.Background(), plan, st)
	if err == nil {
		t.Fatal("division by zero must surface")
	}
	if got := err.Error(); strings.Count(got, "fragment: stage") != 1 {
		t.Fatalf("error should be attributed to exactly one stage: %q", got)
	}
}

// TestChainCloseIdempotent: a chain (and its stage iterators) tolerates
// repeated Close, keeps its accounting stable, and a consumer that closed
// early still sees the fully drained per-stage stats.
func TestChainCloseIdempotent(t *testing.T) {
	st := testStore(t)
	plan := mustFragment(t, "SELECT x, y FROM d WHERE x > y AND z < 2")
	chain, err := OpenChain(context.Background(), plan, st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chain.Iterator().Next(); err != nil {
		t.Fatal(err)
	}
	if err := chain.Close(); err != nil {
		t.Fatal(err)
	}
	first := chain.Stages()
	if err := chain.Close(); err != nil {
		t.Fatal(err)
	}
	second := chain.Stages()
	for i := range first {
		if first[i].Rows != second[i].Rows || first[i].Bytes != second[i].Bytes {
			t.Fatalf("stage %d accounting changed across Close calls: %+v vs %+v",
				i+1, first[i], second[i])
		}
	}
	// The drain-on-close accounting matches a full materialized run.
	want := materializedBaseline(t, plan, st)
	for i := range want {
		if first[i].Rows != want[i].Rows || first[i].Bytes != want[i].Bytes {
			t.Fatalf("stage %d: closed-early rows=%d bytes=%d, baseline rows=%d bytes=%d",
				i+1, first[i].Rows, first[i].Bytes, want[i].Rows, want[i].Bytes)
		}
	}
	// Closing the final iterator directly (as DrainIterator does) must
	// also be safe after the chain closed.
	chain.Iterator().Close()
}

// TestChainCancelledContext: a cancelled context surfaces from Close as
// the drain error.
func TestChainCancelledContext(t *testing.T) {
	st := testStore(t)
	plan := mustFragment(t, "SELECT x, y FROM d WHERE x > y AND z < 2")
	ctx, cancel := context.WithCancel(context.Background())
	chain, err := OpenChain(ctx, plan, st)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := chain.Close(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close after cancel = %v, want context.Canceled", err)
	}
}
