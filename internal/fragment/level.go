package fragment

import (
	"paradise/internal/sqlparser"
)

// Level is a rung of the capability ladder. Higher value = more capable.
type Level int

// Capability levels, ordered by power. The paper numbers them E1 (cloud,
// most powerful) to E4 (sensor); the integer ordering here is by power so
// comparisons read naturally.
const (
	LevelSensor    Level = 1 // E4
	LevelAppliance Level = 2 // E3
	LevelPC        Level = 3 // E2
	LevelCloud     Level = 4 // E1
)

// String returns the paper's level name.
func (l Level) String() string {
	switch l {
	case LevelSensor:
		return "E4/sensor"
	case LevelAppliance:
		return "E3/appliance"
	case LevelPC:
		return "E2/PC"
	case LevelCloud:
		return "E1/cloud"
	default:
		return "E?/unknown"
	}
}

// Capability describes what a level can execute, mirroring Table 1.
type Capability struct {
	// SelectStar: level can only SELECT * (no single-attribute projection).
	ProjectAttributes bool
	// CompareAttributes: attribute-vs-attribute predicates.
	CompareAttributes bool
	// Joins between relations.
	Joins bool
	// Aggregation with GROUP BY / HAVING.
	Aggregation bool
	// Window functions and sorting (SQL-92 class processing and beyond).
	WindowsAndSort bool
	// MachineLearning: opaque analysis code (R) around the SQL.
	MachineLearning bool
}

// CapabilityOf returns the Table 1 capability row of a level.
func CapabilityOf(l Level) Capability {
	switch l {
	case LevelSensor:
		return Capability{}
	case LevelAppliance:
		return Capability{ProjectAttributes: true, CompareAttributes: true, Joins: true, Aggregation: true}
	case LevelPC:
		return Capability{ProjectAttributes: true, CompareAttributes: true, Joins: true, Aggregation: true, WindowsAndSort: true}
	default:
		return Capability{ProjectAttributes: true, CompareAttributes: true, Joins: true, Aggregation: true, WindowsAndSort: true, MachineLearning: true}
	}
}

// NodesPerPerson returns Table 1's "number of nodes" column for one person:
// how many processors of each level a typical assistive installation has.
func NodesPerPerson(l Level) string {
	switch l {
	case LevelCloud:
		return "n for m persons"
	case LevelPC:
		return "1"
	case LevelAppliance:
		return "10-50"
	case LevelSensor:
		return ">= 100"
	default:
		return "?"
	}
}

// isConstFilter reports whether the conjunct is a comparison between one
// column and one literal — the only predicate form a sensor can evaluate
// ("the sensor can only compare an attribute against a constant", §4.2).
func isConstFilter(e sqlparser.Expr) bool {
	b, ok := e.(*sqlparser.BinaryExpr)
	if !ok || !b.Op.Comparison() {
		return false
	}
	_, lCol := b.L.(*sqlparser.ColumnRef)
	_, rLit := b.R.(*sqlparser.Literal)
	if lCol && rLit {
		return true
	}
	_, lLit := b.L.(*sqlparser.Literal)
	_, rCol := b.R.(*sqlparser.ColumnRef)
	return lLit && rCol
}

// IsSensorPredicate reports whether a whole predicate can run on a sensor:
// every top-level conjunct must compare one attribute against one constant.
func IsSensorPredicate(e sqlparser.Expr) bool {
	if e == nil {
		return true
	}
	for _, c := range sqlparser.Conjuncts(e) {
		if !isConstFilter(c) {
			return false
		}
	}
	return true
}

// RequiredLevel computes the minimal capability level able to execute the
// SELECT as a whole (used for fragments after decomposition and by the
// ablation benches for un-fragmented execution).
func RequiredLevel(q *sqlparser.Select) Level {
	lvl := LevelSensor
	raise := func(l Level) {
		if l > lvl {
			lvl = l
		}
	}
	sqlparser.WalkSelects(q, func(s *sqlparser.Select) {
		if len(s.OrderBy) > 0 || s.Limit != nil || s.Distinct {
			raise(LevelPC)
		}
		if len(s.GroupBy) > 0 || s.Having != nil {
			raise(LevelAppliance)
		}
		if _, ok := s.From.(*sqlparser.Join); ok {
			raise(LevelAppliance)
		}
		if _, ok := s.From.(*sqlparser.Subquery); ok {
			raise(LevelAppliance)
		}
		for _, it := range s.Items {
			if sqlparser.ContainsWindow(it.Expr) {
				raise(LevelPC)
			}
			if sqlparser.ContainsAggregate(it.Expr) {
				raise(LevelAppliance)
			}
			if _, ok := it.Expr.(*sqlparser.Star); !ok {
				raise(LevelAppliance) // projection of single attributes
			}
		}
		for _, c := range sqlparser.Conjuncts(s.Where) {
			if !isConstFilter(c) {
				raise(LevelAppliance)
			}
		}
	})
	return lvl
}
