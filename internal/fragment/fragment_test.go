package fragment

import (
	"context"
	"math"
	"strings"
	"testing"

	"paradise/internal/engine"
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
	"paradise/internal/storage"
)

func testStore(t testing.TB) *storage.Store {
	t.Helper()
	st := storage.NewStore()
	d := st.Create(schema.NewRelation("d",
		schema.Col("x", schema.TypeFloat),
		schema.Col("y", schema.TypeFloat),
		schema.Col("z", schema.TypeFloat),
		schema.Col("t", schema.TypeInt),
	))
	vals := []struct{ x, y, z float64 }{
		{5, 1, 1.5}, {6, 2, 1.0}, {7, 3, 0.5}, {2, 4, 1.9},
		{8, 1, 3.0}, {9, 2, 1.2}, {3, 9, 0.8}, {10, 4, 1.1},
		{5, 1, 1.7}, {6, 2, 0.9}, {5, 1, 1.8}, {6, 2, 1.1},
	}
	for i, v := range vals {
		if err := d.Append(schema.Row{
			schema.Float(v.x), schema.Float(v.y), schema.Float(v.z), schema.Int(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	other := st.Create(schema.NewRelation("meta",
		schema.Col("x", schema.TypeFloat),
		schema.Col("label", schema.TypeString),
	))
	for _, m := range []struct {
		x float64
		l string
	}{{5, "a"}, {6, "b"}, {7, "c"}} {
		if err := other.Append(schema.Row{schema.Float(m.x), schema.String(m.l)}); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func mustFragment(t testing.TB, q string) *Plan {
	t.Helper()
	sel, err := sqlparser.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := New().Fragment(sel)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// equivalent asserts fragmented and monolithic execution agree.
func equivalent(t *testing.T, st *storage.Store, q string) *Execution {
	t.Helper()
	plan := mustFragment(t, q)
	exec, err := Execute(context.Background(), plan, st)
	if err != nil {
		t.Fatalf("execute plan for %q: %v\nplan:\n%s", q, err, plan)
	}
	want, err := engine.New(st).Query(context.Background(), q)
	if err != nil {
		t.Fatalf("monolithic %q: %v", q, err)
	}
	if len(exec.Result.Rows) != len(want.Rows) {
		t.Fatalf("row count mismatch for %q: plan %d vs direct %d\nplan:\n%s",
			q, len(exec.Result.Rows), len(want.Rows), plan)
	}
	// Compare as multisets of formatted rows (fragmented execution may
	// reorder rows when the query has no ORDER BY).
	count := map[string]int{}
	for _, r := range want.Rows {
		count[fmtRow(r)]++
	}
	for _, r := range exec.Result.Rows {
		count[fmtRow(r)]--
	}
	for k, v := range count {
		if v != 0 {
			t.Fatalf("row multiset mismatch for %q at %q (delta %d)", q, k, v)
		}
	}
	return exec
}

func fmtRow(r schema.Row) string {
	parts := make([]string, len(r))
	for i, v := range r {
		if v.Type() == schema.TypeFloat {
			parts[i] = schema.Float(math.Round(v.AsFloat()*1e9) / 1e9).Format()
		} else {
			parts[i] = v.Format()
		}
	}
	return strings.Join(parts, "|")
}

func TestPaperUseCaseFragmentation(t *testing.T) {
	// The rewritten §4.2 query fragments into the paper's staged pushdown:
	// sensor (z<2), appliance (x>y + projection), media center (GROUP
	// BY/HAVING), local server (window).
	q := `SELECT regr_intercept(y, x) OVER (PARTITION BY zavg ORDER BY t)
	      FROM (SELECT x, y, AVG(z) AS zavg, t FROM d
	            WHERE x > y AND z < 2 GROUP BY x, y HAVING SUM(z) > 0.5)`
	plan := mustFragment(t, q)

	if len(plan.Fragments) != 4 {
		t.Fatalf("want 4 fragments, got %d:\n%s", len(plan.Fragments), plan)
	}

	f1 := plan.Fragments[0]
	if f1.MinLevel != LevelSensor {
		t.Fatalf("stage 1 at %s", f1.MinLevel)
	}
	if got := f1.SQL(); got != "SELECT * FROM d WHERE z < 2" {
		t.Fatalf("sensor fragment = %q", got)
	}

	f2 := plan.Fragments[1]
	if f2.MinLevel != LevelAppliance {
		t.Fatalf("stage 2 at %s", f2.MinLevel)
	}
	if !strings.Contains(f2.SQL(), "WHERE x > y") {
		t.Fatalf("appliance fragment = %q", f2.SQL())
	}
	if strings.Contains(f2.SQL(), "GROUP BY") {
		t.Fatalf("aggregation leaked into stage 2: %q", f2.SQL())
	}

	f3 := plan.Fragments[2]
	if f3.MinLevel != LevelAppliance {
		t.Fatalf("stage 3 at %s", f3.MinLevel)
	}
	if !strings.Contains(f3.SQL(), "GROUP BY x, y") || !strings.Contains(f3.SQL(), "HAVING") {
		t.Fatalf("media-center fragment = %q", f3.SQL())
	}

	f4 := plan.Fragments[3]
	if f4.MinLevel != LevelPC {
		t.Fatalf("stage 4 at %s", f4.MinLevel)
	}
	if !strings.Contains(f4.SQL(), "OVER (PARTITION BY zavg ORDER BY t)") {
		t.Fatalf("local-server fragment = %q", f4.SQL())
	}

	// Chain naming d1, d2, d3 per the paper.
	if f2.Input != "d1" || f3.Input != "d2" || f4.Input != "d3" {
		t.Fatalf("chain inputs: %s %s %s", f2.Input, f3.Input, f4.Input)
	}
}

func TestFragmentEquivalence(t *testing.T) {
	st := testStore(t)
	queries := []string{
		"SELECT * FROM d",
		"SELECT * FROM d WHERE z < 2",
		"SELECT x, y FROM d WHERE x > y",
		"SELECT x, y FROM d WHERE x > y AND z < 2",
		"SELECT x, y, AVG(z) AS zavg FROM d WHERE x > y AND z < 2 GROUP BY x, y HAVING SUM(z) > 1",
		"SELECT x + y AS s, z FROM d WHERE z < 1.5",
		"SELECT COUNT(*) FROM d",
		"SELECT x, COUNT(*) AS n FROM d GROUP BY x",
		"SELECT s FROM (SELECT x + y AS s FROM d WHERE z < 2) WHERE s > 8",
		"SELECT AVG(s) FROM (SELECT x + y AS s, z FROM d) WHERE z < 2",
		"SELECT x, y FROM d WHERE x > y ORDER BY x DESC LIMIT 3",
		"SELECT DISTINCT x FROM d WHERE z < 2",
		"SELECT zavg FROM (SELECT x, y, AVG(z) AS zavg FROM d GROUP BY x, y) WHERE zavg > 1",
		"SELECT regr_intercept(y, x) OVER (PARTITION BY zavg ORDER BY t) FROM (SELECT x, y, AVG(z) AS zavg, t FROM d WHERE x > y AND z < 2 GROUP BY x, y HAVING SUM(z) > 0.5)",
		"SELECT MIN(t), MAX(t) FROM d WHERE z < 2",
		// ORDER BY on an output alias must not leak into the projection
		// stage (regression: the meeting-room power-socket query).
		"SELECT x, MAX(z) AS peak FROM d GROUP BY x ORDER BY peak DESC LIMIT 3",
		"SELECT x, AVG(z) AS za FROM d WHERE z < 2 GROUP BY x ORDER BY za, x",
	}
	for _, q := range queries {
		t.Run(q, func(t *testing.T) { equivalent(t, st, q) })
	}
}

func TestJoinFragmentation(t *testing.T) {
	st := testStore(t)
	exec := equivalent(t, st, "SELECT d.x, meta.label FROM d JOIN meta ON d.x = meta.x WHERE d.z < 2")
	if exec.Stages[0].Fragment.MinLevel != LevelAppliance {
		t.Fatalf("join stage should need an appliance, got %s", exec.Stages[0].Fragment.MinLevel)
	}
}

func TestSensorFilterReducesShippedBytes(t *testing.T) {
	st := testStore(t)
	filtered := equivalent(t, st, "SELECT x, y FROM d WHERE z < 1")
	unfiltered := equivalent(t, st, "SELECT x, y FROM d")
	if filtered.Stages[0].Bytes >= unfiltered.Stages[0].Bytes {
		t.Fatalf("sensor filter should reduce stage-1 bytes: %d vs %d",
			filtered.Stages[0].Bytes, unfiltered.Stages[0].Bytes)
	}
}

func TestRemainder(t *testing.T) {
	plan := mustFragment(t,
		"SELECT AVG(z) OVER (ORDER BY t) FROM (SELECT z, t FROM d WHERE z < 2)")
	// With the home ladder topping out at appliances, the window fragment
	// remains for the outside.
	rem := plan.Remainder(LevelAppliance)
	if len(rem) != 1 || !strings.Contains(rem[0].SQL(), "OVER") {
		t.Fatalf("remainder = %v", rem)
	}
	// With a PC in the home, nothing leaves.
	if len(plan.Remainder(LevelPC)) != 0 {
		t.Fatal("PC should absorb the window fragment")
	}
}

func TestRequiredLevel(t *testing.T) {
	cases := []struct {
		q    string
		want Level
	}{
		{"SELECT * FROM stream WHERE z < 2", LevelSensor},
		{"SELECT * FROM stream", LevelSensor},
		{"SELECT x FROM d", LevelAppliance},
		{"SELECT * FROM d WHERE x > y", LevelAppliance},
		{"SELECT x, AVG(z) FROM d GROUP BY x", LevelAppliance},
		{"SELECT a.x FROM d AS a JOIN meta AS b ON a.x = b.x", LevelAppliance},
		{"SELECT AVG(z) OVER (ORDER BY t) FROM d", LevelPC},
		{"SELECT x FROM d ORDER BY x", LevelPC},
		{"SELECT DISTINCT x FROM d", LevelPC},
		{"SELECT x FROM (SELECT x FROM d)", LevelAppliance},
	}
	for _, c := range cases {
		sel, err := sqlparser.Parse(c.q)
		if err != nil {
			t.Fatal(err)
		}
		if got := RequiredLevel(sel); got != c.want {
			t.Errorf("RequiredLevel(%q) = %s, want %s", c.q, got, c.want)
		}
	}
}

func TestCapabilityLadderMonotone(t *testing.T) {
	// Each rung strictly extends the one below (Table 1).
	caps := []Capability{
		CapabilityOf(LevelSensor), CapabilityOf(LevelAppliance),
		CapabilityOf(LevelPC), CapabilityOf(LevelCloud),
	}
	count := func(c Capability) int {
		n := 0
		for _, b := range []bool{c.ProjectAttributes, c.CompareAttributes, c.Joins, c.Aggregation, c.WindowsAndSort, c.MachineLearning} {
			if b {
				n++
			}
		}
		return n
	}
	for i := 1; i < len(caps); i++ {
		if count(caps[i]) <= count(caps[i-1]) {
			t.Fatalf("level %d not more capable than %d", i, i-1)
		}
	}
}

func TestIsConstFilter(t *testing.T) {
	cases := []struct {
		e    string
		want bool
	}{
		{"z < 2", true},
		{"2 > z", true},
		{"x > y", false},
		{"z < 2 AND x > y", false}, // conjunction is split before this check
		{"x + 1 < 2", false},
		{"z = 2", true},
	}
	for _, c := range cases {
		e, err := sqlparser.ParseExpr(c.e)
		if err != nil {
			t.Fatal(err)
		}
		if got := isConstFilter(e); got != c.want {
			t.Errorf("isConstFilter(%q) = %v", c.e, got)
		}
	}
}

func TestPlanString(t *testing.T) {
	plan := mustFragment(t, "SELECT x, y FROM d WHERE x > y AND z < 2")
	s := plan.String()
	for _, want := range []string{"Q1", "E4/sensor", "E3/appliance"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string lacks %q:\n%s", want, s)
		}
	}
}

func TestNodesPerPerson(t *testing.T) {
	if NodesPerPerson(LevelSensor) != ">= 100" || NodesPerPerson(LevelPC) != "1" {
		t.Fatal("Table 1 node counts wrong")
	}
}
