package fragment

import (
	"context"
	"reflect"
	"testing"

	"paradise/internal/sqlparser"
)

// TestParallelChainStatsBitIdentical pins the accounting half of the
// parallel contract: executing a fragment chain with worker parallelism
// must leave the result rows AND the per-stage row/byte accounting —
// the Figure 3 quantities — bit-identical to the serial chain. Stage
// outputs cross the exchange as morsels, but every batch still passes the
// stage counter exactly once, and integer sums are order-independent.
func TestParallelChainStatsBitIdentical(t *testing.T) {
	st := testStore(t)
	queries := []string{
		"SELECT x, y FROM d WHERE x > y AND z < 2",
		"SELECT x, COUNT(*) AS n FROM d GROUP BY x HAVING COUNT(*) > 1",
		"SELECT x, n FROM (SELECT x, COUNT(*) AS n FROM d GROUP BY x) AS s WHERE n > 1",
		"SELECT DISTINCT x FROM d WHERE z < 2",
		"SELECT x, y FROM d ORDER BY y LIMIT 3",
	}
	for _, q := range queries {
		sel, err := sqlparser.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := New().Fragment(sel)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		serial, err := Execute(context.Background(), plan, st)
		if err != nil {
			t.Fatalf("serial %q: %v", q, err)
		}
		par, err := Execute(context.Background(), plan, st, WithParallelism(4))
		if err != nil {
			t.Fatalf("parallel %q: %v", q, err)
		}
		if !reflect.DeepEqual(serial.Result.Rows, par.Result.Rows) {
			t.Fatalf("%q: parallel rows differ from serial", q)
		}
		if len(serial.Stages) != len(par.Stages) {
			t.Fatalf("%q: stage count %d != %d", q, len(par.Stages), len(serial.Stages))
		}
		for i := range serial.Stages {
			if serial.Stages[i].Rows != par.Stages[i].Rows ||
				serial.Stages[i].Bytes != par.Stages[i].Bytes {
				t.Fatalf("%q stage %d: parallel accounting (%d rows, %d bytes) != serial (%d rows, %d bytes)",
					q, i,
					par.Stages[i].Rows, par.Stages[i].Bytes,
					serial.Stages[i].Rows, serial.Stages[i].Bytes)
			}
		}
	}
}

// TestParallelChainEarlyClose: closing a parallel chain before exhaustion
// still drains every stage, so the accounting matches the serial chain's
// full-drain numbers (every node ships its whole output regardless of how
// much the consumer read).
func TestParallelChainEarlyClose(t *testing.T) {
	st := testStore(t)
	sel, err := sqlparser.Parse("SELECT x, y FROM d WHERE z < 2")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := New().Fragment(sel)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Execute(context.Background(), plan, st)
	if err != nil {
		t.Fatal(err)
	}

	chain, err := OpenChain(context.Background(), plan, st, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chain.Iterator().Next(); err != nil {
		t.Fatal(err)
	}
	if err := chain.Close(); err != nil {
		t.Fatal(err)
	}
	got := chain.Stages()
	for i := range serial.Stages {
		if serial.Stages[i].Rows != got[i].Rows || serial.Stages[i].Bytes != got[i].Bytes {
			t.Fatalf("stage %d after early close: (%d rows, %d bytes) != serial (%d rows, %d bytes)",
				i, got[i].Rows, got[i].Bytes, serial.Stages[i].Rows, serial.Stages[i].Bytes)
		}
	}
}
