package fragment

import (
	"math"
	"math/rand"
	"testing"

	logical "paradise/internal/plan"
	"paradise/internal/sqlparser"
)

// placePlan parses sql, lowers it, and fragments it — the same path the
// processor takes before PlaceCostBased.
func placePlan(t *testing.T, sql string) *Plan {
	t.Helper()
	sel, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	root, err := logical.FromAST(sel)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	plan, err := New().FromPlan(root)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return plan
}

// dStats describes the test relation d(x, y, z, t): 400 rows, values
// uniform over small ranges — every stage of a single-table query shrinks.
func dStats() logical.Stats {
	ts := &logical.TableStats{
		Rows:     400,
		RowBytes: 40,
		Cols: map[string]logical.ColStats{
			"x": {NDV: 8, HasRange: true, Min: 0, Max: 3.5, AvgBytes: 9},
			"y": {NDV: 6, HasRange: true, Min: 0, Max: 3.5, AvgBytes: 9},
			"z": {NDV: 30, HasRange: true, Min: 0.5, Max: 3.4, AvgBytes: 9},
			"t": {NDV: 400, HasRange: true, Min: 0, Max: 20000, AvgBytes: 9},
		},
	}
	return func(name string) (*logical.TableStats, bool) {
		if name == "d" {
			return ts, true
		}
		return nil, false
	}
}

// TestPlaceShrinkingChainKeepsFloor: every stage of a plain single-table
// chain shrinks its input, so the search finds no gain and the lowest-level
// tie-break keeps each fragment at its MinLevel — the fixed baseline.
func TestPlaceShrinkingChainKeepsFloor(t *testing.T) {
	for _, sql := range []string{
		"SELECT x, y FROM d WHERE z < 2",
		"SELECT x, AVG(z) AS a1 FROM d GROUP BY x HAVING COUNT(*) > 3",
		"SELECT DISTINCT x FROM d ORDER BY x LIMIT 5",
	} {
		plan := placePlan(t, sql)
		plan.PlaceCostBased(dStats())
		for _, f := range plan.Fragments {
			if f.EffectiveLevel() != f.MinLevel {
				t.Errorf("%s: Q%d hoisted to %s with no modeled gain (floor %s)\n%s",
					sql, f.Stage, f.EffectiveLevel(), f.MinLevel, plan)
			}
			if f.EstRows <= 0 || f.EstBytes <= 0 {
				t.Errorf("%s: Q%d missing estimate: %d rows / %d bytes",
					sql, f.Stage, f.EstRows, f.EstBytes)
			}
		}
	}
}

// TestPlaceHoistsExpandingJoin: a fan-out join whose modeled output exceeds
// its base input is hoisted to the apartment's top rung (E2/pc) — shipping
// the small input up beats producing the large output low — but NEVER to
// the cloud: the apartment boundary cap holds even though E1 would be
// even "closer" to the final destination.
func TestPlaceHoistsExpandingJoin(t *testing.T) {
	plan := placePlan(t, "SELECT a.v, b.w FROM a JOIN b ON a.k = b.k")
	small := func() *logical.TableStats {
		return &logical.TableStats{
			Rows:     100,
			RowBytes: 30,
			Cols: map[string]logical.ColStats{
				"k": {NDV: 4, HasRange: true, Min: 0, Max: 3, AvgBytes: 9},
				"v": {NDV: 50, AvgBytes: 12},
				"w": {NDV: 50, AvgBytes: 12},
			},
		}
	}
	stats := func(name string) (*logical.TableStats, bool) {
		if name == "a" || name == "b" {
			return small(), true
		}
		return nil, false
	}
	plan.PlaceCostBased(stats)
	// 100×100 rows over 4 key values ⇒ ~2500 output rows, far above the
	// ~6000 base bytes; the join stage must sit at LevelPC.
	hoisted := false
	for _, f := range plan.Fragments {
		lvl := f.EffectiveLevel()
		if lvl > LevelPC {
			t.Fatalf("Q%d crossed the apartment boundary: %s\n%s", f.Stage, lvl, plan)
		}
		if lvl == LevelPC && f.MinLevel < LevelPC {
			hoisted = true
		}
	}
	if !hoisted {
		t.Fatalf("expanding join not hoisted:\n%s", plan)
	}
}

// TestPlaceNilStatsLeavesUnplaced: without a statistics source the plan is
// untouched — zero Level, zero estimates, EffectiveLevel == MinLevel.
func TestPlaceNilStatsLeavesUnplaced(t *testing.T) {
	plan := placePlan(t, "SELECT x, y FROM d WHERE z < 2")
	plan.PlaceCostBased(nil)
	for _, f := range plan.Fragments {
		if f.Level != 0 || f.EstRows != 0 || f.EstBytes != 0 {
			t.Fatalf("Q%d placed without stats: level %s, est %d/%d",
				f.Stage, f.Level, f.EstRows, f.EstBytes)
		}
		if f.EffectiveLevel() != f.MinLevel {
			t.Fatalf("Q%d effective level %s != floor %s", f.Stage, f.EffectiveLevel(), f.MinLevel)
		}
	}
}

// perturbedStats builds a deliberately hostile statistics source: negative
// and NaN row counts, zero/negative/infinite NDVs, inverted ranges, NaN
// widths. The placement search must absorb all of it.
func perturbedStats(rng *rand.Rand) logical.Stats {
	junkF := func() float64 {
		switch rng.Intn(6) {
		case 0:
			return -rng.Float64() * 100
		case 1:
			return 0
		case 2:
			return math.NaN()
		case 3:
			return math.Inf(1)
		default:
			return rng.Float64() * 1000
		}
	}
	col := func() logical.ColStats {
		c := logical.ColStats{
			NDV:      junkF(),
			NullFrac: junkF(),
			AvgBytes: junkF(),
			HasRange: rng.Intn(2) == 0,
		}
		c.Min, c.Max = junkF(), junkF()
		if rng.Intn(3) == 0 {
			c.Min, c.Max = c.Max, c.Min // inverted range
		}
		return c
	}
	ts := &logical.TableStats{
		Rows:     junkF(),
		RowBytes: junkF(),
		Cols: map[string]logical.ColStats{
			"x": col(), "y": col(), "z": col(), "t": col(),
		},
	}
	missing := rng.Intn(4) == 0
	return func(name string) (*logical.TableStats, bool) {
		if missing {
			return nil, false
		}
		return ts, true
	}
}

// TestPlaceFuzz: random queries × hostile statistics through the full
// fragment + placement path. Whatever the stats claim, placement must not
// panic, estimates stay non-negative, every level respects the privacy
// floor and the apartment boundary cap, and the chain stays monotone.
func TestPlaceFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(20160316))
	for trial := 0; trial < 500; trial++ {
		q := randomQuery(rng)
		plan := placePlan(t, q)
		plan.PlaceCostBased(perturbedStats(rng))

		prev := Level(0)
		for _, f := range plan.Fragments {
			if f.EstRows < 0 || f.EstBytes < 0 {
				t.Fatalf("trial %d %q: Q%d negative estimate %d/%d",
					trial, q, f.Stage, f.EstRows, f.EstBytes)
			}
			if f.Level != 0 && f.Level < f.MinLevel {
				t.Fatalf("trial %d %q: Q%d placed at %s below floor %s",
					trial, q, f.Stage, f.Level, f.MinLevel)
			}
			cap := LevelPC
			if f.MinLevel > cap {
				cap = f.MinLevel
			}
			if f.Level > cap {
				t.Fatalf("trial %d %q: Q%d placed at %s above cap %s",
					trial, q, f.Stage, f.Level, cap)
			}
			if f.EffectiveLevel() < prev {
				t.Fatalf("trial %d %q: chain regresses at Q%d:\n%s", trial, q, f.Stage, plan)
			}
			prev = f.EffectiveLevel()
		}
	}
}
