// Package recognition models the activity- and intention-recognition
// analyses of the paper's smart environment: the R pipeline of §4.2
// (filterByClass(sqldf(SELECT ...), action="walk", do.plot=F)), a Kalman
// filter for position smoothing, a height/speed-based activity classifier,
// and the detection of "SQLable" patterns inside the pipeline ([Weu16]).
//
// The paper notes that recognizing the maximal SQL part of an arbitrary R
// program is undecidable in general; like the cited bachelor thesis it
// therefore detects *explicit* SQL patterns. Our pipeline IR makes the
// sqldf boundary first-class, which is exactly the structure those patterns
// recover from R source.
package recognition
