package recognition

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"paradise/internal/engine"
	"paradise/internal/schema"
	"paradise/internal/sensors"
	"paradise/internal/sqlparser"
)

// ErrPipeline wraps pipeline evaluation errors.
var ErrPipeline = errors.New("recognition: pipeline error")

// Node is one stage of an analysis pipeline (the IR of the R script).
type Node interface {
	// Describe renders the node in R-like syntax for reports.
	Describe() string
}

// SQLNode is a sqldf(...) call: the SQLable part of the pipeline.
type SQLNode struct {
	Query *sqlparser.Select
}

// Describe implements Node.
func (n *SQLNode) Describe() string { return "sqldf(" + n.Query.SQL() + ")" }

// FilterByClassNode is the R function filterByClass(input, action, do.plot):
// it classifies each tuple's activity and keeps those matching Action.
type FilterByClassNode struct {
	Input  Node
	Action sensors.Activity
	DoPlot bool
}

// Describe implements Node.
func (n *FilterByClassNode) Describe() string {
	plot := "F"
	if n.DoPlot {
		plot = "T"
	}
	return fmt.Sprintf("filterByClass(%s, action=%q, do.plot=%s)", n.Input.Describe(), n.Action, plot)
}

// KalmanNode smooths the z coordinate of its input with a 1-D Kalman filter
// (the paper's example is "an excerpt of a Kalman filter").
type KalmanNode struct {
	Input      Node
	ProcessVar float64 // Q
	MeasureVar float64 // R
}

// Describe implements Node.
func (n *KalmanNode) Describe() string {
	return fmt.Sprintf("kalman(%s, Q=%g, R=%g)", n.Input.Describe(), n.ProcessVar, n.MeasureVar)
}

// DataNode stands for an already-materialized DataFrame d′ — the shape the
// cloud-side residual takes after pushdown: filterByClass(d', ...).
type DataNode struct {
	Name string
}

// Describe implements Node.
func (n *DataNode) Describe() string { return n.Name }

// PaperPipeline builds the exact §4.2 analysis:
//
//	filterByClass(sqldf(
//	    SELECT regr_intercept(y, x) OVER (PARTITION BY z ORDER BY t)
//	    FROM (SELECT x, y, z, t FROM d)
//	), action="walk", do.plot=F)
//
// The SELECT list is widened with the partition attributes so the activity
// classifier has positions to work on (the paper's sqldf result is an
// R DataFrame carrying the frame columns along).
func PaperPipeline() (*FilterByClassNode, error) {
	q, err := sqlparser.Parse(`
		SELECT x, y, z, t, regr_intercept(y, x) OVER (PARTITION BY z ORDER BY t) AS trend
		FROM (SELECT x, y, z, t FROM d)`)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPipeline, err)
	}
	return &FilterByClassNode{Input: &SQLNode{Query: q}, Action: sensors.ActivityWalk}, nil
}

// ExtractSQL finds the maximal SQLable subtree: the outermost SQLNode
// reachable without crossing another SQL boundary. ok=false when the
// pipeline has no SQL part.
func ExtractSQL(n Node) (*sqlparser.Select, bool) {
	switch x := n.(type) {
	case *SQLNode:
		return x.Query, true
	case *FilterByClassNode:
		return ExtractSQL(x.Input)
	case *KalmanNode:
		return ExtractSQL(x.Input)
	default:
		return nil, false
	}
}

// ReplaceSQL substitutes the (first) SQL subtree with a new query — the hook
// the preprocessor uses after rewriting. It returns a structurally shared
// copy with only the path to the SQL node rebuilt.
func ReplaceSQL(n Node, repl *sqlparser.Select) (Node, bool) {
	switch x := n.(type) {
	case *SQLNode:
		return &SQLNode{Query: repl}, true
	case *FilterByClassNode:
		in, ok := ReplaceSQL(x.Input, repl)
		if !ok {
			return n, false
		}
		return &FilterByClassNode{Input: in, Action: x.Action, DoPlot: x.DoPlot}, true
	case *KalmanNode:
		in, ok := ReplaceSQL(x.Input, repl)
		if !ok {
			return n, false
		}
		return &KalmanNode{Input: in, ProcessVar: x.ProcessVar, MeasureVar: x.MeasureVar}, true
	default:
		return n, false
	}
}

// Residual replaces the SQL subtree by a DataFrame reference — the R part
// that stays on the cloud after the SQL was pushed down: Q(d) → Qδ(d′).
func Residual(n Node, dataName string) Node {
	out, _ := ReplaceSQL(n, nil)
	return stripSQL(out, dataName)
}

func stripSQL(n Node, dataName string) Node {
	switch x := n.(type) {
	case *SQLNode:
		return &DataNode{Name: dataName}
	case *FilterByClassNode:
		return &FilterByClassNode{Input: stripSQL(x.Input, dataName), Action: x.Action, DoPlot: x.DoPlot}
	case *KalmanNode:
		return &KalmanNode{Input: stripSQL(x.Input, dataName), ProcessVar: x.ProcessVar, MeasureVar: x.MeasureVar}
	default:
		return n
	}
}

// Run evaluates a pipeline: SQL nodes execute on the engine, DataNodes read
// a pre-materialized frame, Kalman and filterByClass stages run in Go.
func Run(ctx context.Context, n Node, eng *engine.Engine, frames map[string]*engine.Result) (*engine.Result, error) {
	switch x := n.(type) {
	case *SQLNode:
		res, err := eng.Select(ctx, x.Query)
		if err != nil {
			return nil, fmt.Errorf("%w: sqldf: %v", ErrPipeline, err)
		}
		return res, nil
	case *DataNode:
		res, ok := frames[x.Name]
		if !ok {
			return nil, fmt.Errorf("%w: unknown DataFrame %q", ErrPipeline, x.Name)
		}
		return res, nil
	case *KalmanNode:
		in, err := Run(ctx, x.Input, eng, frames)
		if err != nil {
			return nil, err
		}
		return kalmanSmooth(in, x.ProcessVar, x.MeasureVar)
	case *FilterByClassNode:
		in, err := Run(ctx, x.Input, eng, frames)
		if err != nil {
			return nil, err
		}
		return FilterByClass(in, x.Action)
	default:
		return nil, fmt.Errorf("%w: unknown node %T", ErrPipeline, n)
	}
}

// Kalman1D is a scalar Kalman filter with constant model, the building
// block of the paper's example analysis.
type Kalman1D struct {
	q, r    float64 // process and measurement variance
	x, p    float64 // state estimate and covariance
	started bool
}

// NewKalman1D builds a filter with the given process variance q and
// measurement variance r.
func NewKalman1D(q, r float64) *Kalman1D {
	if q <= 0 {
		q = 1e-4
	}
	if r <= 0 {
		r = 1e-2
	}
	return &Kalman1D{q: q, r: r}
}

// Update feeds one measurement and returns the filtered estimate.
func (k *Kalman1D) Update(z float64) float64 {
	if !k.started {
		k.started = true
		k.x = z
		k.p = k.r
		return k.x
	}
	// Predict.
	k.p += k.q
	// Update.
	gain := k.p / (k.p + k.r)
	k.x += gain * (z - k.x)
	k.p *= 1 - gain
	return k.x
}

// heightIndex finds the tag-height column: the raw z, or — after the
// privacy rewrite replaced it with its mandated aggregate — the derived
// zavg. The intended analysis keeps working on the policy-compliant
// aggregate; that degradation-not-breakage is the paper's "Golden Path".
func heightIndex(rel *schema.Relation) (int, error) {
	for _, cand := range []string{"z", "zavg"} {
		if i, err := rel.Index(cand); err == nil {
			return i, nil
		}
	}
	return -1, fmt.Errorf("%w: no height column (z or zavg) in %s", ErrPipeline, rel)
}

// kalmanSmooth applies the filter to the z column, per entity when a tag or
// user column exists, in timestamp order.
func kalmanSmooth(in *engine.Result, q, r float64) (*engine.Result, error) {
	zi, err := heightIndex(in.Schema)
	if err != nil {
		return nil, err
	}
	order, entity, err := entityTimeOrder(in)
	if err != nil {
		return nil, err
	}
	out := &engine.Result{Schema: in.Schema, Rows: in.Rows.Clone()}
	filters := map[string]*Kalman1D{}
	for _, ri := range order {
		key := entity(ri)
		f, ok := filters[key]
		if !ok {
			f = NewKalman1D(q, r)
			filters[key] = f
		}
		if out.Rows[ri][zi].Type().Numeric() {
			out.Rows[ri][zi] = schema.Float(f.Update(out.Rows[ri][zi].AsFloat()))
		}
	}
	return out, nil
}

// entityTimeOrder returns row indexes sorted by (entity, t) plus the entity
// key function. Entity is the user or tag_id column when present.
func entityTimeOrder(in *engine.Result) ([]int, func(int) string, error) {
	ti, err := in.Schema.Index("t")
	if err != nil {
		return nil, nil, fmt.Errorf("%w: analysis needs a timestamp column t", ErrPipeline)
	}
	entityIdx := -1
	for _, cand := range []string{"user", "tag_id"} {
		if i, err := in.Schema.Index(cand); err == nil {
			entityIdx = i
			break
		}
	}
	entity := func(ri int) string {
		if entityIdx < 0 {
			return ""
		}
		return in.Rows[ri][entityIdx].GroupKey()
	}
	order := make([]int, len(in.Rows))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ea, eb := entity(order[a]), entity(order[b])
		if ea != eb {
			return ea < eb
		}
		va, vb := in.Rows[order[a]][ti], in.Rows[order[b]][ti]
		if va.Type().Numeric() && vb.Type().Numeric() {
			return va.AsFloat() < vb.AsFloat()
		}
		return false
	})
	return order, entity, nil
}

// Classify maps a tag height (z, metres) and movement speed (m/s) to an
// activity, mirroring how the simulated UbiSense tags encode activities:
// a tag near the floor is a fall, a low tag a sitting person, a moving tag
// a walking person, a stationary one standing/presenting.
func Classify(z, speed float64) sensors.Activity {
	switch {
	case z < 0.6:
		return sensors.ActivityFall
	case z < 1.15:
		return sensors.ActivitySit
	case speed > 0.4:
		return sensors.ActivityWalk
	default:
		return sensors.ActivityStand
	}
}

// Annotate classifies every row of a position relation (needs x, y, z, t;
// per-entity when user or tag_id exists). The result is aligned with
// in.Rows.
func Annotate(in *engine.Result) ([]sensors.Activity, error) {
	xi, err := in.Schema.Index("x")
	if err != nil {
		return nil, fmt.Errorf("%w: classifier needs x: %v", ErrPipeline, err)
	}
	yi, err := in.Schema.Index("y")
	if err != nil {
		return nil, fmt.Errorf("%w: classifier needs y: %v", ErrPipeline, err)
	}
	zi, err := heightIndex(in.Schema)
	if err != nil {
		return nil, err
	}
	ti, err := in.Schema.Index("t")
	if err != nil {
		return nil, fmt.Errorf("%w: classifier needs t: %v", ErrPipeline, err)
	}
	order, entity, err := entityTimeOrder(in)
	if err != nil {
		return nil, err
	}
	out := make([]sensors.Activity, len(in.Rows))
	type prev struct {
		x, y, t float64
		ok      bool
	}
	last := map[string]prev{}
	for _, ri := range order {
		row := in.Rows[ri]
		if !row[xi].Type().Numeric() || !row[yi].Type().Numeric() ||
			!row[zi].Type().Numeric() || !row[ti].Type().Numeric() {
			out[ri] = sensors.ActivityStand
			continue
		}
		x, y, z := row[xi].AsFloat(), row[yi].AsFloat(), row[zi].AsFloat()
		tms := row[ti].AsFloat()
		speed := 0.0
		key := entity(ri)
		if p := last[key]; p.ok && tms > p.t {
			speed = math.Hypot(x-p.x, y-p.y) / ((tms - p.t) / 1000)
		}
		last[key] = prev{x: x, y: y, t: tms, ok: true}
		out[ri] = Classify(z, speed)
	}
	return out, nil
}

// FilterByClass keeps the rows whose classified activity equals action —
// the semantics of the paper's R function.
func FilterByClass(in *engine.Result, action sensors.Activity) (*engine.Result, error) {
	acts, err := Annotate(in)
	if err != nil {
		return nil, err
	}
	out := &engine.Result{Schema: in.Schema}
	for i, a := range acts {
		if a == action {
			out.Rows = append(out.Rows, in.Rows[i])
		}
	}
	return out, nil
}

// Accuracy scores classified activities against the trace ground truth,
// returning the fraction of samples whose prediction matches the label.
// Rows must carry tag_id or user plus t.
func Accuracy(tr *sensors.Trace, in *engine.Result, acts []sensors.Activity) (float64, error) {
	if len(acts) != len(in.Rows) {
		return 0, fmt.Errorf("%w: %d activities for %d rows", ErrPipeline, len(acts), len(in.Rows))
	}
	ti, err := in.Schema.Index("t")
	if err != nil {
		return 0, fmt.Errorf("%w: accuracy needs t", ErrPipeline)
	}
	tagIdx, userIdx := -1, -1
	if i, err := in.Schema.Index("tag_id"); err == nil {
		tagIdx = i
	}
	if i, err := in.Schema.Index("user"); err == nil {
		userIdx = i
	}
	if tagIdx < 0 && userIdx < 0 {
		return 0, fmt.Errorf("%w: accuracy needs tag_id or user", ErrPipeline)
	}
	nameToTag := map[string]int64{}
	for _, p := range tr.Scenario.Persons {
		nameToTag[p.Name] = p.TagID
	}
	matched, total := 0, 0
	for i, row := range in.Rows {
		var tag int64
		switch {
		case tagIdx >= 0 && row[tagIdx].Type() == schema.TypeInt:
			tag = row[tagIdx].AsInt()
		case userIdx >= 0 && row[userIdx].Type() == schema.TypeString:
			tag = nameToTag[row[userIdx].AsString()]
		default:
			continue
		}
		if !row[ti].Type().Numeric() {
			continue
		}
		truth := tr.TruthAt(tag, int64(row[ti].AsFloat()))
		if truth == "" {
			continue
		}
		total++
		want := truth
		if want == sensors.ActivityPresent {
			want = sensors.ActivityStand // presenting is standing kinematics
		}
		if acts[i] == want {
			matched++
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("%w: no rows matched ground truth", ErrPipeline)
	}
	return float64(matched) / float64(total), nil
}
