package recognition

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"paradise/internal/engine"
	"paradise/internal/schema"
	"paradise/internal/sensors"
	"paradise/internal/sqlparser"
)

func apartmentStore(t testing.TB, withFall bool) (*sensors.Trace, *engine.Engine) {
	t.Helper()
	tr, err := sensors.Generate(sensors.Apartment(30*time.Second, withFall, 42))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sensors.BuildStore(tr)
	if err != nil {
		t.Fatal(err)
	}
	return tr, engine.New(st)
}

func TestPaperPipelineShape(t *testing.T) {
	pl, err := PaperPipeline()
	if err != nil {
		t.Fatal(err)
	}
	desc := pl.Describe()
	for _, want := range []string{"filterByClass", "sqldf", "REGR_INTERCEPT", "PARTITION BY", `action="walk"`, "do.plot=F"} {
		if !strings.Contains(desc, want) {
			t.Errorf("pipeline description lacks %q: %s", want, desc)
		}
	}
}

func TestExtractAndReplaceSQL(t *testing.T) {
	pl, err := PaperPipeline()
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := ExtractSQL(pl)
	if !ok || sel == nil {
		t.Fatal("SQL part not found")
	}
	repl, err := sqlparser.Parse("SELECT x, y, z, t FROM d WHERE z < 2")
	if err != nil {
		t.Fatal(err)
	}
	out, ok := ReplaceSQL(pl, repl)
	if !ok {
		t.Fatal("ReplaceSQL failed")
	}
	got, _ := ExtractSQL(out)
	if got.SQL() != repl.SQL() {
		t.Fatalf("replacement not visible: %s", got.SQL())
	}
	// Original untouched.
	orig, _ := ExtractSQL(pl)
	if orig.SQL() == repl.SQL() {
		t.Fatal("ReplaceSQL mutated its input")
	}
}

func TestResidual(t *testing.T) {
	pl, err := PaperPipeline()
	if err != nil {
		t.Fatal(err)
	}
	res := Residual(pl, "d'")
	desc := res.Describe()
	if strings.Contains(desc, "sqldf") {
		t.Fatalf("residual still contains SQL: %s", desc)
	}
	// The paper's final cloud code: filterByClass(d', action="walk", ...).
	if !strings.Contains(desc, `filterByClass(d', action="walk"`) {
		t.Fatalf("residual = %s", desc)
	}
	if _, ok := ExtractSQL(res); ok {
		t.Fatal("residual must have no SQLable part")
	}
}

func TestKalman1DConvergesToConstant(t *testing.T) {
	k := NewKalman1D(1e-4, 0.05)
	var last float64
	for i := 0; i < 200; i++ {
		noise := 0.1 * math.Sin(float64(i)*1.7) // deterministic pseudo-noise
		last = k.Update(5 + noise)
	}
	if math.Abs(last-5) > 0.08 {
		t.Fatalf("filter should converge near 5, got %v", last)
	}
}

func TestKalman1DDefensiveDefaults(t *testing.T) {
	k := NewKalman1D(-1, 0)
	if got := k.Update(3); got != 3 {
		t.Fatalf("first update returns measurement, got %v", got)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		z, speed float64
		want     sensors.Activity
	}{
		{0.25, 0, sensors.ActivityFall},
		{0.95, 0, sensors.ActivitySit},
		{1.4, 1.3, sensors.ActivityWalk},
		{1.4, 0.0, sensors.ActivityStand},
	}
	for _, c := range cases {
		if got := Classify(c.z, c.speed); got != c.want {
			t.Errorf("Classify(%v, %v) = %s, want %s", c.z, c.speed, got, c.want)
		}
	}
}

func TestAnnotateAndAccuracyOnTrace(t *testing.T) {
	tr, eng := apartmentStore(t, true)
	res, err := eng.Query(context.Background(), "SELECT user, x, y, z, t FROM d")
	if err != nil {
		t.Fatal(err)
	}
	acts, err := Annotate(res)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(tr, res, acts)
	if err != nil {
		t.Fatal(err)
	}
	// The simulated kinematics encode the activities crisply; the
	// classifier should get the clear majority right.
	if acc < 0.7 {
		t.Fatalf("recognition accuracy %.2f too low", acc)
	}
}

func TestFilterByClassFindsWalks(t *testing.T) {
	_, eng := apartmentStore(t, false)
	res, err := eng.Query(context.Background(), "SELECT user, x, y, z, t FROM d")
	if err != nil {
		t.Fatal(err)
	}
	walks, err := FilterByClass(res, sensors.ActivityWalk)
	if err != nil {
		t.Fatal(err)
	}
	if len(walks.Rows) == 0 || len(walks.Rows) >= len(res.Rows) {
		t.Fatalf("walk filter kept %d of %d rows", len(walks.Rows), len(res.Rows))
	}
}

func TestFallDetection(t *testing.T) {
	_, eng := apartmentStore(t, true)
	res, err := eng.Query(context.Background(), "SELECT user, x, y, z, t FROM d")
	if err != nil {
		t.Fatal(err)
	}
	falls, err := FilterByClass(res, sensors.ActivityFall)
	if err != nil {
		t.Fatal(err)
	}
	if len(falls.Rows) == 0 {
		t.Fatal("the fall must be detected")
	}
	// And the no-fall scenario must not produce (many) falls.
	_, engNF := apartmentStore(t, false)
	resNF, err := engNF.Query(context.Background(), "SELECT user, x, y, z, t FROM d")
	if err != nil {
		t.Fatal(err)
	}
	fallsNF, err := FilterByClass(resNF, sensors.ActivityFall)
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(fallsNF.Rows)) > 0.02*float64(len(resNF.Rows)) {
		t.Fatalf("false fall rate too high: %d of %d", len(fallsNF.Rows), len(resNF.Rows))
	}
}

func TestRunPipelineEndToEnd(t *testing.T) {
	_, eng := apartmentStore(t, false)
	pl, err := PaperPipeline()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(context.Background(), pl, eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) == 0 {
		t.Fatal("pipeline should find walking samples")
	}
	// The trend column from regr_intercept must be present.
	if _, err := out.Schema.Index("trend"); err != nil {
		t.Fatalf("trend column missing: %s", out.Schema)
	}
}

func TestRunWithDataFrame(t *testing.T) {
	_, eng := apartmentStore(t, false)
	base, err := eng.Query(context.Background(), "SELECT user, x, y, z, t FROM d")
	if err != nil {
		t.Fatal(err)
	}
	node := &FilterByClassNode{Input: &DataNode{Name: "d'"}, Action: sensors.ActivityWalk}
	out, err := Run(context.Background(), node, eng, map[string]*engine.Result{"d'": base})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) == 0 {
		t.Fatal("frame-based run found nothing")
	}
	// Unknown frame errors.
	if _, err := Run(context.Background(), &DataNode{Name: "nope"}, eng, nil); !errors.Is(err, ErrPipeline) {
		t.Fatal("unknown frame should error")
	}
}

func TestKalmanNodeSmoothsZ(t *testing.T) {
	_, eng := apartmentStore(t, false)
	raw, err := eng.Query(context.Background(), "SELECT user, x, y, z, t FROM d")
	if err != nil {
		t.Fatal(err)
	}
	node := &KalmanNode{Input: &DataNode{Name: "raw"}, ProcessVar: 1e-4, MeasureVar: 0.05}
	smooth, err := Run(context.Background(), node, eng, map[string]*engine.Result{"raw": raw})
	if err != nil {
		t.Fatal(err)
	}
	zi, _ := raw.Schema.Index("z")
	varOf := func(rows schema.Rows) float64 {
		var sum, sumsq float64
		var prev float64
		n := 0
		for i, r := range rows {
			z := r[zi].AsFloat()
			if i > 0 {
				d := z - prev
				sum += d
				sumsq += d * d
				n++
			}
			prev = z
		}
		if n == 0 {
			return 0
		}
		m := sum / float64(n)
		return sumsq/float64(n) - m*m
	}
	if varOf(smooth.Rows) >= varOf(raw.Rows) {
		t.Fatalf("Kalman smoothing should reduce step variance: %v vs %v",
			varOf(smooth.Rows), varOf(raw.Rows))
	}
	if !strings.Contains(node.Describe(), "kalman") {
		t.Fatal("describe")
	}
}

func TestAnnotateRequiresColumns(t *testing.T) {
	res := &engine.Result{
		Schema: schema.NewRelation("r", schema.Col("a", schema.TypeInt)),
		Rows:   schema.Rows{{schema.Int(1)}},
	}
	if _, err := Annotate(res); !errors.Is(err, ErrPipeline) {
		t.Fatal("missing columns should error")
	}
}

func TestAccuracyErrors(t *testing.T) {
	tr, eng := apartmentStore(t, false)
	res, _ := eng.Query(context.Background(), "SELECT x, y, z, t FROM d") // no entity column
	acts := make([]sensors.Activity, len(res.Rows))
	if _, err := Accuracy(tr, res, acts); !errors.Is(err, ErrPipeline) {
		t.Fatal("missing entity column should error")
	}
	res2, _ := eng.Query(context.Background(), "SELECT user, x, y, z, t FROM d")
	if _, err := Accuracy(tr, res2, acts[:1]); !errors.Is(err, ErrPipeline) {
		t.Fatal("length mismatch should error")
	}
}
