package stream

import (
	"errors"
	"testing"

	"paradise/internal/policy"
	"paradise/internal/schema"
	"paradise/internal/sensors"
	"paradise/internal/sqlparser"
)

func tagRows(n int, stepMs int64) schema.Rows {
	rows := make(schema.Rows, n)
	for i := range rows {
		z := 1.2
		if i%5 == 0 {
			z = 2.4
		}
		rows[i] = schema.Row{
			schema.Int(1), schema.Float(float64(i) / 10), schema.Float(0),
			schema.Float(z), schema.Int(int64(i) * stepMs),
		}
	}
	return rows
}

func avgZ() *sqlparser.FuncCall {
	return &sqlparser.FuncCall{Name: "avg", Args: []sqlparser.Expr{&sqlparser.ColumnRef{Name: "z"}}}
}

func TestContinuousReplayEmitsAtInterval(t *testing.T) {
	rel := sensors.StreamSchema()
	rows := tagRows(200, 50) // 10 s of data at 20 Hz
	cq := &ContinuousQuery{
		Module:     "ActionFilter",
		Query:      &SensorQuery{Aggregate: avgZ(), WindowMs: 1000},
		IntervalMs: 1000,
	}
	ems, err := cq.Replay(rel, rows, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// 10 s of data, 1 Hz emissions: ~9-10 firings.
	if len(ems) < 8 || len(ems) > 10 {
		t.Fatalf("emissions = %d", len(ems))
	}
	for _, e := range ems {
		if e.Dropped {
			t.Fatalf("no gate configured; emission at %d dropped: %s", e.AtMs, e.Reason)
		}
		if len(e.Result.Rows) != 1 {
			t.Fatalf("aggregate emission should be one row")
		}
	}
}

func TestContinuousGateDropsFastQueries(t *testing.T) {
	rel := sensors.StreamSchema()
	rows := tagRows(200, 50)
	cq := &ContinuousQuery{
		Module:     "ActionFilter",
		Query:      &SensorQuery{Aggregate: avgZ(), WindowMs: 2000},
		IntervalMs: 500, // twice as fast as the policy allows
		Rules:      &policy.StreamRules{MinQueryIntervalMs: 1000},
	}
	ems, err := cq.Replay(rel, rows, 1024)
	if err != nil {
		t.Fatal(err)
	}
	dropped, fired := 0, 0
	for _, e := range ems {
		if e.Dropped {
			dropped++
			if e.Reason == "" {
				t.Fatal("dropped emission must carry a reason")
			}
		} else {
			fired++
		}
	}
	if dropped == 0 || fired == 0 {
		t.Fatalf("gate should drop roughly every other firing: fired=%d dropped=%d", fired, dropped)
	}
	// Roughly alternating.
	if dropped < fired/2 {
		t.Fatalf("too few drops: fired=%d dropped=%d", fired, dropped)
	}
}

func TestContinuousPolicyRequiresAggregation(t *testing.T) {
	rel := sensors.StreamSchema()
	filter, _ := sqlparser.ParseExpr("z < 2")
	cq := &ContinuousQuery{
		Module:     "ActionFilter",
		Query:      &SensorQuery{Filter: filter}, // raw rows, no aggregate
		IntervalMs: 1000,
		Rules:      &policy.StreamRules{MinAggregationWindowMs: 60_000},
	}
	if _, err := cq.Replay(rel, tagRows(10, 50), 64); !errors.Is(err, ErrStream) {
		t.Fatalf("raw emission must be refused under a min aggregation window, got %v", err)
	}

	// Window below the minimum is refused too.
	cq.Query = &SensorQuery{Aggregate: avgZ(), WindowMs: 1000}
	if _, err := cq.Replay(rel, tagRows(10, 50), 64); !errors.Is(err, ErrStream) {
		t.Fatal("short window must be refused")
	}

	// Compliant window passes.
	cq.Query = &SensorQuery{Aggregate: avgZ(), WindowMs: 60_000}
	if _, err := cq.Replay(rel, tagRows(10, 50), 64); err != nil {
		t.Fatalf("compliant query refused: %v", err)
	}
}

func TestContinuousValidation(t *testing.T) {
	cq := &ContinuousQuery{Query: &SensorQuery{}, IntervalMs: 0}
	if err := cq.Validate(); !errors.Is(err, ErrStream) {
		t.Fatal("zero interval must fail")
	}
}

func TestContinuousFromGeneratedTrace(t *testing.T) {
	// End-to-end: the simulated apartment's UbiSense stream drives a
	// standing policy-gated average-height query.
	tr, err := sensors.Generate(sensors.Apartment(20_000_000_000, false, 5)) // 20 s
	if err != nil {
		t.Fatal(err)
	}
	rel := sensors.StreamSchema()
	var rows schema.Rows
	for _, r := range tr.Device[sensors.DeviceUbisense] {
		if r[5].AsBool() {
			rows = append(rows, schema.Row{r[0], r[2], r[3], r[4], r[1]})
		}
	}
	cq := &ContinuousQuery{
		Module:     "ActionFilter",
		Query:      &SensorQuery{Aggregate: avgZ(), WindowMs: 5_000},
		IntervalMs: 5_000,
		Rules:      &policy.StreamRules{MinQueryIntervalMs: 5_000, MinAggregationWindowMs: 1_000},
	}
	ems, err := cq.Replay(rel, rows, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(ems) < 2 {
		t.Fatalf("expected several emissions over 20 s, got %d", len(ems))
	}
	for _, e := range ems {
		if e.Dropped {
			continue
		}
		v := e.Result.Rows[0][0]
		if v.IsNull() {
			continue
		}
		if h := v.AsFloat(); h < 0.1 || h > 2.0 {
			t.Fatalf("implausible average tag height %v", h)
		}
	}
}
