// Package stream implements the sensor-level (E4) processing of Table 1:
// bounded time-ordered buffers fed by the sensor hardware, constant-only
// filters, and simple aggregates over sliding windows "over the last
// seconds". It also enforces the stream extensions of the privacy policy
// (§3.3): the allowed query interval and the minimum aggregation window
// before values may leave the sensor.
package stream
