package stream

import (
	"errors"
	"math"
	"testing"

	"paradise/internal/schema"
	"paradise/internal/sensors"
	"paradise/internal/sqlparser"
)

func newTestStream(t *testing.T, capacity int) *Stream {
	t.Helper()
	s, err := New(sensors.StreamSchema(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func push(t *testing.T, s *Stream, tag int64, x, y, z float64, ts int64) {
	t.Helper()
	if err := s.Push(schema.Row{
		schema.Int(tag), schema.Float(x), schema.Float(y), schema.Float(z), schema.Int(ts),
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPushAndWindow(t *testing.T) {
	s := newTestStream(t, 100)
	for i := int64(0); i < 50; i++ {
		push(t, s, 1, float64(i), 0, 1.0, i*100)
	}
	if s.Len() != 50 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Now() != 4900 {
		t.Fatalf("now = %d", s.Now())
	}
	w := s.Window(1000) // readings with t > 3900
	if len(w) != 10 {
		t.Fatalf("window = %d rows, want 10", len(w))
	}
}

func TestCapacityEviction(t *testing.T) {
	s := newTestStream(t, 10)
	for i := int64(0); i < 25; i++ {
		push(t, s, 1, 0, 0, 1, i)
	}
	if s.Len() != 10 {
		t.Fatalf("capacity not enforced: %d", s.Len())
	}
	w := s.Window(s.Now() + 1)
	if w[0][4].AsInt() != 15 {
		t.Fatalf("oldest surviving row t = %d, want 15", w[0][4].AsInt())
	}
}

func TestPushBatchMatchesPerRowPush(t *testing.T) {
	one := newTestStream(t, 20)
	batch := newTestStream(t, 20)
	rows := make(schema.Rows, 0, 30)
	for i := int64(0); i < 30; i++ {
		rows = append(rows, schema.Row{
			schema.Int(1), schema.Float(float64(i)), schema.Float(0), schema.Float(1), schema.Int(i * 10),
		})
	}
	for _, r := range rows {
		if err := one.Push(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := batch.PushBatch(rows); err != nil {
		t.Fatal(err)
	}
	if one.Len() != batch.Len() || one.Now() != batch.Now() {
		t.Fatalf("batch push diverges: len %d/%d now %d/%d",
			one.Len(), batch.Len(), one.Now(), batch.Now())
	}
	a, b := one.Window(100), batch.Window(100)
	if len(a) != len(b) {
		t.Fatalf("windows diverge: %d vs %d", len(a), len(b))
	}
}

func TestPushBatchRejectsOutOfOrderMidBatch(t *testing.T) {
	s := newTestStream(t, 20)
	err := s.PushBatch(schema.Rows{
		{schema.Int(1), schema.Float(0), schema.Float(0), schema.Float(1), schema.Int(100)},
		{schema.Int(1), schema.Float(0), schema.Float(0), schema.Float(1), schema.Int(50)},
	})
	if !errors.Is(err, ErrStream) {
		t.Fatalf("want ErrStream, got %v", err)
	}
	if s.Len() != 1 {
		t.Fatalf("rows before the bad one are applied: len = %d", s.Len())
	}
}

func TestWindowIterStreamsBatches(t *testing.T) {
	s := newTestStream(t, 100)
	for i := int64(0); i < 50; i++ {
		push(t, s, 1, float64(i), 0, 1.0, i*100)
	}
	it := s.WindowIter(1000, 4) // same rows as Window(1000): t > 3900
	total := 0
	for {
		b, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		total += len(b)
	}
	if total != 10 {
		t.Fatalf("window iterator yielded %d rows, want 10", total)
	}
	// The snapshot stays valid while new rows arrive.
	it = s.WindowIter(1000, 4)
	first, err := it.Next()
	if err != nil {
		t.Fatal(err)
	}
	want := first[0][4].AsInt()
	push(t, s, 1, 0, 0, 1.0, 10_000)
	if first[0][4].AsInt() != want {
		t.Fatal("window snapshot corrupted by concurrent push")
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	s := newTestStream(t, 10)
	push(t, s, 1, 0, 0, 1, 100)
	err := s.Push(schema.Row{
		schema.Int(1), schema.Float(0), schema.Float(0), schema.Float(1), schema.Int(50),
	})
	if !errors.Is(err, ErrStream) {
		t.Fatalf("want ErrStream, got %v", err)
	}
}

func TestBadRows(t *testing.T) {
	s := newTestStream(t, 10)
	if err := s.Push(schema.Row{schema.Int(1)}); !errors.Is(err, ErrStream) {
		t.Fatal("short row should error")
	}
	if _, err := New(schema.NewRelation("x", schema.Col("a", schema.TypeInt)), 5); !errors.Is(err, ErrStream) {
		t.Fatal("schema without t should error")
	}
	if _, err := New(sensors.StreamSchema(), 0); !errors.Is(err, ErrStream) {
		t.Fatal("zero capacity should error")
	}
}

func TestSensorQueryPaperExample(t *testing.T) {
	// SELECT * FROM stream WHERE z < 2 — the lowest fragment of §4.2.
	s := newTestStream(t, 100)
	for i := int64(0); i < 20; i++ {
		z := 1.0
		if i%4 == 0 {
			z = 2.5
		}
		push(t, s, 1, 0, 0, z, i*50)
	}
	filter, err := sqlparser.ParseExpr("z < 2")
	if err != nil {
		t.Fatal(err)
	}
	q := &SensorQuery{Filter: filter}
	res, err := q.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 15 {
		t.Fatalf("want 15 rows with z < 2, got %d", len(res.Rows))
	}
	// Sensors ship all attributes (SELECT *).
	if res.Schema.Arity() != s.Schema().Arity() {
		t.Fatal("sensor result must keep all attributes")
	}
}

func TestSensorQueryRejectsAttrComparison(t *testing.T) {
	s := newTestStream(t, 10)
	push(t, s, 1, 2, 1, 1, 0)
	filter, _ := sqlparser.ParseExpr("x > y")
	q := &SensorQuery{Filter: filter}
	if _, err := q.Run(s); !errors.Is(err, ErrStream) {
		t.Fatal("attribute-vs-attribute filter must be rejected at the sensor")
	}
}

func TestSensorWindowAggregate(t *testing.T) {
	// "average of last minute" — the paper's example of a sensor window
	// function.
	s := newTestStream(t, 1000)
	for i := int64(0); i < 120; i++ {
		push(t, s, 1, 0, 0, float64(i), i*1000) // one reading per second
	}
	agg := &sqlparser.FuncCall{Name: "avg", Args: []sqlparser.Expr{&sqlparser.ColumnRef{Name: "z"}}}
	q := &SensorQuery{Aggregate: agg, WindowMs: 60_000}
	res, err := q.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("aggregate should yield one row, got %d", len(res.Rows))
	}
	// Last 60 s: t in (59000, 119000] -> z values 60..119, mean 89.5.
	got := res.Rows[0][0].AsFloat()
	if math.Abs(got-89.5) > 1e-9 {
		t.Fatalf("window avg = %v, want 89.5", got)
	}
}

func TestSensorQueryValidation(t *testing.T) {
	notAgg := &sqlparser.FuncCall{Name: "upper", Args: []sqlparser.Expr{&sqlparser.ColumnRef{Name: "z"}}}
	q := &SensorQuery{Aggregate: notAgg}
	if err := q.Validate(); !errors.Is(err, ErrStream) {
		t.Fatal("non-aggregate should fail validation")
	}
	q = &SensorQuery{WindowMs: -1}
	if err := q.Validate(); !errors.Is(err, ErrStream) {
		t.Fatal("negative window should fail")
	}
}

func TestGateEnforcesInterval(t *testing.T) {
	g := NewGate(1000)
	if err := g.Admit("ActionFilter", 0); err != nil {
		t.Fatal("first query must be admitted")
	}
	if err := g.Admit("ActionFilter", 500); !errors.Is(err, ErrRateLimited) {
		t.Fatal("early query must be rejected")
	}
	if err := g.Admit("ActionFilter", 1200); err != nil {
		t.Fatal("query after the interval must pass")
	}
	// Other modules are independent.
	if err := g.Admit("OtherModule", 1201); err != nil {
		t.Fatal("modules must be rate-limited independently")
	}
	// Disabled gate admits everything.
	g0 := NewGate(0)
	for i := int64(0); i < 5; i++ {
		if err := g0.Admit("m", i); err != nil {
			t.Fatal("disabled gate must admit")
		}
	}
}
