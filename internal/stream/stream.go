package stream

import (
	"errors"
	"fmt"
	"sync"

	"paradise/internal/engine"
	"paradise/internal/fragment"
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// ErrStream wraps stream processing errors.
var ErrStream = errors.New("stream: error")

// ErrRateLimited is returned when a query violates the policy's minimum
// query interval.
var ErrRateLimited = errors.New("stream: query interval below policy minimum")

// Stream is a bounded, time-ordered buffer of sensor rows. The timestamp
// column t holds milliseconds since scenario start (monotone per stream).
type Stream struct {
	mu       sync.RWMutex
	rel      *schema.Relation
	tsIdx    int
	capacity int
	buf      schema.Rows // oldest first; len <= capacity
	lastTs   int64
}

// New creates a stream with the given schema (which must contain an integer
// column t) and buffer capacity.
func New(rel *schema.Relation, capacity int) (*Stream, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("%w: capacity must be positive", ErrStream)
	}
	ti, err := rel.Index("t")
	if err != nil {
		return nil, fmt.Errorf("%w: stream schema needs a t column: %v", ErrStream, err)
	}
	return &Stream{rel: rel, tsIdx: ti, capacity: capacity}, nil
}

// Schema returns the stream's relation schema.
func (s *Stream) Schema() *schema.Relation { return s.rel }

// Push appends one reading; out-of-order rows (t going backwards) are
// rejected, mirroring real sensor firmware.
func (s *Stream) Push(row schema.Row) error {
	return s.PushBatch(schema.Rows{row})
}

// PushBatch appends a batch of readings under one lock acquisition — the
// arrival path of the batch pipeline. Rows must be in timestamp order;
// the first out-of-order row rejects with everything before it applied.
func (s *Stream) PushBatch(rows schema.Rows) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, row := range rows {
		if len(row) != s.rel.Arity() {
			return fmt.Errorf("%w: row arity %d != schema arity %d", ErrStream, len(row), s.rel.Arity())
		}
		if row[s.tsIdx].Type() != schema.TypeInt {
			return fmt.Errorf("%w: timestamp must be integer milliseconds", ErrStream)
		}
		ts := row[s.tsIdx].AsInt()
		if ts < s.lastTs {
			return fmt.Errorf("%w: out-of-order timestamp %d after %d", ErrStream, ts, s.lastTs)
		}
		s.lastTs = ts
		s.buf = append(s.buf, row)
	}
	if len(s.buf) > s.capacity {
		// Reslice instead of copying: rows are immutable and the backing
		// array is shared safely with any in-flight window iterators.
		s.buf = s.buf[len(s.buf)-s.capacity:]
	}
	return nil
}

// Len returns the buffered row count.
func (s *Stream) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.buf)
}

// Now returns the newest timestamp seen.
func (s *Stream) Now() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lastTs
}

// Window returns the rows of the last sizeMs milliseconds (relative to the
// newest timestamp), oldest first.
func (s *Stream) Window(sizeMs int64) schema.Rows {
	tail := s.windowTail(sizeMs)
	out := make(schema.Rows, len(tail))
	copy(out, tail)
	return out
}

// WindowIter streams the current window batch-at-a-time without copying it:
// the tail of the append-only buffer is snapshotted as a slice header under
// the read lock and served in batches. Rows pushed after the call are not
// observed; the snapshot stays valid because rows are immutable and
// eviction reslices rather than overwrites.
func (s *Stream) WindowIter(sizeMs int64, batchSize int) schema.RowIterator {
	return schema.IterateRows(s.windowTail(sizeMs), batchSize)
}

// windowTail locates the window start and returns the shared buffer tail.
func (s *Stream) windowTail(sizeMs int64) schema.Rows {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cut := s.lastTs - sizeMs
	// Binary search would work; the buffer is small (sensor memory).
	start := 0
	for start < len(s.buf) && s.buf[start][s.tsIdx].AsInt() <= cut {
		start++
	}
	return s.buf[start:]
}

// SensorQuery is the only query shape a sensor can run (Table 1, row E4):
// SELECT * (optionally aggregated) over a recent window, filtered by
// attribute-vs-constant predicates.
type SensorQuery struct {
	// Filter must be a conjunction of attribute-vs-constant comparisons
	// (z < 2 in the paper's example); nil means no filter.
	Filter sqlparser.Expr
	// Aggregate, when set, reduces the window to a single value (e.g.
	// AVG(z) over the last minute). Nil ships the raw filtered rows.
	Aggregate *sqlparser.FuncCall
	// WindowMs bounds the query to the last WindowMs milliseconds;
	// 0 means the whole buffer.
	WindowMs int64
}

// Validate checks the query against the sensor capability.
func (q *SensorQuery) Validate() error {
	if !fragment.IsSensorPredicate(q.Filter) {
		return fmt.Errorf("%w: sensor filters may only compare attributes with constants: %s",
			ErrStream, q.Filter.SQL())
	}
	if q.Aggregate != nil && !q.Aggregate.IsAggregate() {
		return fmt.Errorf("%w: %s is not an aggregate", ErrStream, q.Aggregate.SQL())
	}
	if q.WindowMs < 0 {
		return fmt.Errorf("%w: negative window", ErrStream)
	}
	return nil
}

// Run evaluates the sensor query against the stream's current content.
// With an aggregate the result is a single row (value); otherwise the
// filtered window rows ship as-is (SELECT * — sensors cannot project).
// The window feeds through as batches — the full window is never copied,
// only the rows that survive the filter are collected.
func (q *SensorQuery) Run(s *Stream) (*engine.Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	sizeMs := q.WindowMs
	if sizeMs <= 0 {
		sizeMs = s.Now() + 1 // whole buffer
	}
	it := s.WindowIter(sizeMs, schema.DefaultBatchSize)
	if q.Filter != nil {
		filter := q.Filter
		rel := s.rel
		it = schema.FilterProject(it, schema.Scan{Filter: func(r schema.Row) (bool, error) {
			return engine.EvalPredicate(rel, r, filter)
		}})
	}
	rows, err := schema.DrainIterator(it)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrStream, err)
	}
	if q.Aggregate == nil {
		return &engine.Result{Schema: s.rel, Rows: rows}, nil
	}
	v, err := engine.EvalAggregate(s.rel, rows, q.Aggregate)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrStream, err)
	}
	rel := schema.NewRelation("", schema.Col(q.Aggregate.Name, v.Type()))
	return &engine.Result{Schema: rel, Rows: schema.Rows{{v}}}, nil
}

// Gate enforces the policy's minimum query interval per module (§3.3): a
// module may only query the stream every MinIntervalMs milliseconds.
type Gate struct {
	mu            sync.Mutex
	minIntervalMs int64
	lastQuery     map[string]int64
}

// NewGate builds a gate with the given minimum interval; 0 disables
// rate limiting.
func NewGate(minIntervalMs int64) *Gate {
	return &Gate{minIntervalMs: minIntervalMs, lastQuery: make(map[string]int64)}
}

// Admit checks whether the module may query at time nowMs; admission
// records the query. The first query of a module is always admitted.
func (g *Gate) Admit(module string, nowMs int64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.minIntervalMs > 0 {
		if last, ok := g.lastQuery[module]; ok && nowMs-last < g.minIntervalMs {
			return fmt.Errorf("%w: module %q queried %dms after previous (minimum %dms)",
				ErrRateLimited, module, nowMs-last, g.minIntervalMs)
		}
	}
	g.lastQuery[module] = nowMs
	return nil
}
