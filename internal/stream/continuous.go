package stream

import (
	"fmt"

	"paradise/internal/engine"
	"paradise/internal/policy"
	"paradise/internal/schema"
)

// ContinuousQuery is a standing sensor-level query: every IntervalMs of
// stream time the SensorQuery runs over the buffer and emits its result to
// the next node up. The policy's stream rules (§3.3) gate the execution:
// queries arriving faster than the allowed interval are dropped, and raw
// (non-aggregated) emission is refused when the policy demands a minimum
// aggregation window.
type ContinuousQuery struct {
	// Module names the analysis module for rate limiting.
	Module string
	// Query is the sensor-level query to run.
	Query *SensorQuery
	// IntervalMs is the desired execution period in stream time.
	IntervalMs int64
	// Rules are the policy's stream rules; nil means unrestricted.
	Rules *policy.StreamRules
}

// Emission is one continuous-query result.
type Emission struct {
	AtMs   int64
	Result *engine.Result
	// Dropped marks executions suppressed by the policy gate.
	Dropped bool
	// Reason explains a drop.
	Reason string
}

// Validate checks the standing query against the sensor capability and the
// policy's stream rules.
func (cq *ContinuousQuery) Validate() error {
	if cq.IntervalMs <= 0 {
		return fmt.Errorf("%w: continuous query needs a positive interval", ErrStream)
	}
	if err := cq.Query.Validate(); err != nil {
		return err
	}
	if cq.Rules != nil {
		if cq.Rules.MinAggregationWindowMs > 0 {
			if cq.Query.Aggregate == nil {
				return fmt.Errorf("%w: policy requires aggregation over >= %dms before values leave the sensor",
					ErrStream, cq.Rules.MinAggregationWindowMs)
			}
			if cq.Query.WindowMs < cq.Rules.MinAggregationWindowMs {
				return fmt.Errorf("%w: aggregation window %dms below policy minimum %dms",
					ErrStream, cq.Query.WindowMs, cq.Rules.MinAggregationWindowMs)
			}
		}
	}
	return nil
}

// Replay feeds the given rows (which must be in timestamp order) into a
// fresh stream of the given capacity and runs the continuous query at its
// interval, returning every emission. It models one sensor's lifetime
// without real time: stream time is driven by the data, exactly like the
// deterministic trace generator.
func (cq *ContinuousQuery) Replay(rel *schema.Relation, rows schema.Rows, capacity int) ([]Emission, error) {
	if err := cq.Validate(); err != nil {
		return nil, err
	}
	s, err := New(rel, capacity)
	if err != nil {
		return nil, err
	}
	var gate *Gate
	if cq.Rules != nil {
		gate = NewGate(cq.Rules.MinQueryIntervalMs)
	} else {
		gate = NewGate(0)
	}

	tsIdx, err := rel.Index("t")
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrStream, err)
	}

	// Arriving tuples feed the stream as batches: rows are pushed in runs
	// that end at each firing boundary (the run includes the row whose
	// timestamp crosses it, exactly like the per-row arrival loop), so the
	// buffer is rebuilt once per firing instead of once per tuple.
	var out []Emission
	nextFire := cq.IntervalMs
	start := 0
	for i, row := range rows {
		now := row[tsIdx].AsInt()
		if now < nextFire {
			continue
		}
		if err := s.PushBatch(rows[start : i+1]); err != nil {
			return nil, err
		}
		start = i + 1
		for now >= nextFire {
			em := Emission{AtMs: nextFire}
			if err := gate.Admit(cq.Module, nextFire); err != nil {
				em.Dropped = true
				em.Reason = err.Error()
			} else {
				res, err := cq.Query.Run(s)
				if err != nil {
					return nil, err
				}
				em.Result = res
			}
			out = append(out, em)
			nextFire += cq.IntervalMs
		}
	}
	if start < len(rows) {
		if err := s.PushBatch(rows[start:]); err != nil {
			return nil, err
		}
	}
	return out, nil
}
