package privmetrics

import (
	"errors"
	"math"
	"testing"

	"paradise/internal/schema"
)

func TestDirectDistance(t *testing.T) {
	orig := schema.Rows{
		{schema.Int(1), schema.String("a")},
		{schema.Int(2), schema.String("b")},
	}
	same := orig.Clone()
	dd, err := DirectDistance(orig, same)
	if err != nil || dd != 0 {
		t.Fatalf("identical relations: DD = %d, %v", dd, err)
	}
	anon := orig.Clone()
	anon[0][0] = schema.Int(9)
	anon[1][1] = schema.String("*")
	dd, err = DirectDistance(orig, anon)
	if err != nil || dd != 2 {
		t.Fatalf("DD = %d, want 2 (%v)", dd, err)
	}
	ratio, err := DirectDistanceRatio(orig, anon)
	if err != nil || math.Abs(ratio-0.5) > 1e-12 {
		t.Fatalf("ratio = %v, want 0.5", ratio)
	}
}

func TestDirectDistanceNullHandling(t *testing.T) {
	// The paper's distance(i,j) compares values; NULL == NULL counts as
	// unchanged (Identical semantics).
	a := schema.Rows{{schema.Null()}}
	b := schema.Rows{{schema.Null()}}
	dd, err := DirectDistance(a, b)
	if err != nil || dd != 0 {
		t.Fatalf("NULL vs NULL: %d %v", dd, err)
	}
	b[0][0] = schema.Int(1)
	dd, _ = DirectDistance(a, b)
	if dd != 1 {
		t.Fatalf("NULL vs 1 should count: %d", dd)
	}
}

func TestDirectDistanceShapeErrors(t *testing.T) {
	a := schema.Rows{{schema.Int(1)}}
	b := schema.Rows{{schema.Int(1)}, {schema.Int(2)}}
	if _, err := DirectDistance(a, b); !errors.Is(err, ErrMetrics) {
		t.Fatal("cardinality mismatch must error")
	}
	c := schema.Rows{{schema.Int(1), schema.Int(2)}}
	if _, err := DirectDistance(a, c); !errors.Is(err, ErrMetrics) {
		t.Fatal("arity mismatch must error")
	}
}

func TestKLDivergence(t *testing.T) {
	// Identical distributions: 0.
	d, err := KLDivergence([]float64{1, 2, 3}, []float64{2, 4, 6})
	if err != nil || d > 1e-9 {
		t.Fatalf("proportional histograms should have ~0 divergence: %v %v", d, err)
	}
	// Diverging distributions: positive, asymmetric.
	d1, _ := KLDivergence([]float64{10, 0, 0}, []float64{1, 1, 8})
	d2, _ := KLDivergence([]float64{1, 1, 8}, []float64{10, 0, 0})
	if d1 <= 0 || d2 <= 0 {
		t.Fatalf("divergence should be positive: %v %v", d1, d2)
	}
	if math.Abs(d1-d2) < 1e-9 {
		t.Fatal("KL is asymmetric; both directions equal suggests a bug")
	}
	// Errors.
	if _, err := KLDivergence([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrMetrics) {
		t.Fatal("bin mismatch must error")
	}
	if _, err := KLDivergence([]float64{-1}, []float64{1}); !errors.Is(err, ErrMetrics) {
		t.Fatal("negative weights must error")
	}
}

func TestColumnKL(t *testing.T) {
	rel := schema.NewRelation("r", schema.Col("v", schema.TypeFloat))
	orig := schema.Rows{}
	for i := 0; i < 100; i++ {
		orig = append(orig, schema.Row{schema.Float(float64(i % 10))})
	}
	// Unchanged column: zero loss.
	loss, err := ColumnKL(rel, orig, orig, "v", 10)
	if err != nil || loss > 1e-9 {
		t.Fatalf("identical column: %v %v", loss, err)
	}
	// Coarsened column (every value snapped to 0): positive loss.
	anon := orig.Clone()
	for _, r := range anon {
		r[0] = schema.Float(0)
	}
	loss2, err := ColumnKL(rel, orig, anon, "v", 10)
	if err != nil || loss2 <= loss {
		t.Fatalf("coarsening must increase loss: %v vs %v (%v)", loss2, loss, err)
	}
	// Unknown column and bad bins.
	if _, err := ColumnKL(rel, orig, anon, "nope", 10); !errors.Is(err, ErrMetrics) {
		t.Fatal("unknown column")
	}
	if _, err := ColumnKL(rel, orig, anon, "v", 1); !errors.Is(err, ErrMetrics) {
		t.Fatal("bins < 2")
	}
}

func TestDiscernibilityAndClassSize(t *testing.T) {
	rel := schema.NewRelation("r", schema.Col("q", schema.TypeInt))
	rows := schema.Rows{
		{schema.Int(1)}, {schema.Int(1)}, {schema.Int(1)},
		{schema.Int(2)}, {schema.Int(2)},
	}
	disc, err := Discernibility(rel, rows, []string{"q"})
	if err != nil || disc != 9+4 {
		t.Fatalf("discernibility = %d, want 13", disc)
	}
	avg, err := AvgClassSize(rel, rows, []string{"q"})
	if err != nil || math.Abs(avg-2.5) > 1e-12 {
		t.Fatalf("avg class size = %v, want 2.5", avg)
	}
}

func TestLinkageRisk(t *testing.T) {
	rel := schema.NewRelation("r", schema.Col("q", schema.TypeInt))
	rows := schema.Rows{
		{schema.Int(1)}, {schema.Int(1)},
		{schema.Int(2)}, // unique -> re-identifiable
		{schema.Int(3)}, // unique
	}
	risk, err := LinkageRisk(rel, rows, []string{"q"})
	if err != nil || math.Abs(risk-0.5) > 1e-12 {
		t.Fatalf("risk = %v, want 0.5", risk)
	}
	risk, err = LinkageRisk(rel, nil, []string{"q"})
	if err != nil || risk != 0 {
		t.Fatalf("empty relation risk = %v", risk)
	}
	if _, err := LinkageRisk(rel, rows, []string{"nope"}); !errors.Is(err, ErrMetrics) {
		t.Fatal("unknown column must error")
	}
}

// The "Golden Path" sanity check of §3.2: generalizing positions must hurt
// a fine-grained (unintended) analysis more than a coarse (intended) one.
func TestGoldenPathShape(t *testing.T) {
	rel := schema.NewRelation("r", schema.Col("v", schema.TypeFloat))
	orig := schema.Rows{}
	for i := 0; i < 400; i++ {
		orig = append(orig, schema.Row{schema.Float(float64(i%40) / 2)})
	}
	// Mild generalization: snap to integers (intended analysis works on
	// coarse positions).
	mild := orig.Clone()
	for _, r := range mild {
		r[0] = schema.Float(math.Round(r[0].AsFloat()))
	}
	// Aggressive generalization: snap to one value.
	hard := orig.Clone()
	for _, r := range hard {
		r[0] = schema.Float(10)
	}
	lMild, _ := ColumnKL(rel, orig, mild, "v", 16)
	lHard, _ := ColumnKL(rel, orig, hard, "v", 16)
	if !(lMild < lHard) {
		t.Fatalf("mild loss %v should undercut hard loss %v", lMild, lHard)
	}
	ddMild, _ := DirectDistanceRatio(orig, mild)
	ddHard, _ := DirectDistanceRatio(orig, hard)
	if !(ddMild < ddHard) {
		t.Fatalf("DD should order the same way: %v vs %v", ddMild, ddHard)
	}
}
