package privmetrics

import (
	"errors"
	"fmt"
	"math"

	"paradise/internal/schema"
)

// ErrMetrics wraps metric computation errors.
var ErrMetrics = errors.New("privmetrics: error")

// DirectDistance computes the paper's DD(R, R′) = Σᵢ Σⱼ distance(i, j) with
// distance(i, j) = 0 when value[Rᵢⱼ] = value[R′ᵢⱼ] and 1 otherwise: the
// number of cells the anonymization changed. Both relations must have the
// same shape.
func DirectDistance(orig, anon schema.Rows) (int, error) {
	if len(orig) != len(anon) {
		return 0, fmt.Errorf("%w: DD over different cardinalities (%d vs %d)",
			ErrMetrics, len(orig), len(anon))
	}
	dd := 0
	for i := range orig {
		if len(orig[i]) != len(anon[i]) {
			return 0, fmt.Errorf("%w: DD row %d arity mismatch", ErrMetrics, i)
		}
		for j := range orig[i] {
			if !orig[i][j].Identical(anon[i][j]) {
				dd++
			}
		}
	}
	return dd, nil
}

// DirectDistanceRatio is DD normalized by the total cell count m*n — the
// paper's "ratio of different values in R′ to the total number of values in
// R", its quality measure for anonymized results. 0 = unchanged, 1 = every
// value replaced.
func DirectDistanceRatio(orig, anon schema.Rows) (float64, error) {
	dd, err := DirectDistance(orig, anon)
	if err != nil {
		return 0, err
	}
	cells := 0
	for _, r := range orig {
		cells += len(r)
	}
	if cells == 0 {
		return 0, nil
	}
	return float64(dd) / float64(cells), nil
}

// KLDivergence computes D(P ‖ Q) = Σ p log(p/q) over two discrete
// distributions given as non-negative weight vectors (normalized
// internally). Bins where p > 0 but q = 0 receive a small smoothing mass so
// the divergence stays finite, matching the usual practice for empirical
// histograms [HS10].
func KLDivergence(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("%w: KL over different bin counts (%d vs %d)",
			ErrMetrics, len(p), len(q))
	}
	const eps = 1e-10
	sp, sq := 0.0, 0.0
	for i := range p {
		if p[i] < 0 || q[i] < 0 {
			return 0, fmt.Errorf("%w: negative histogram weight", ErrMetrics)
		}
		sp += p[i] + eps
		sq += q[i] + eps
	}
	d := 0.0
	for i := range p {
		pi := (p[i] + eps) / sp
		qi := (q[i] + eps) / sq
		d += pi * math.Log(pi/qi)
	}
	if d < 0 { // numeric noise
		d = 0
	}
	return d, nil
}

// ColumnKL measures the information loss of one numeric column between the
// original and anonymized relation as the KL divergence of equi-width
// histograms with the given number of bins.
func ColumnKL(rel *schema.Relation, orig, anon schema.Rows, column string, bins int) (float64, error) {
	if bins < 2 {
		return 0, fmt.Errorf("%w: need at least 2 bins", ErrMetrics)
	}
	idx, err := rel.Index(column)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrMetrics, err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	collect := func(rows schema.Rows) {
		for _, r := range rows {
			if idx < len(r) && r[idx].Type().Numeric() {
				f := r[idx].AsFloat()
				lo, hi = math.Min(lo, f), math.Max(hi, f)
			}
		}
	}
	collect(orig)
	collect(anon)
	if !(hi > lo) {
		// Degenerate column: identical distributions.
		return 0, nil
	}
	hist := func(rows schema.Rows) []float64 {
		h := make([]float64, bins)
		for _, r := range rows {
			if idx < len(r) && r[idx].Type().Numeric() {
				f := r[idx].AsFloat()
				b := int((f - lo) / (hi - lo) * float64(bins))
				if b >= bins {
					b = bins - 1
				}
				if b < 0 {
					b = 0
				}
				h[b]++
			}
		}
		return h
	}
	return KLDivergence(hist(orig), hist(anon))
}

// Discernibility is the classic penalty Σ |class|² over the equivalence
// classes induced by the quasi-identifier columns: larger classes hide
// individuals better but cost utility quadratically.
func Discernibility(rel *schema.Relation, rows schema.Rows, qi []string) (int, error) {
	classes, err := classSizes(rel, rows, qi)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, c := range classes {
		total += c * c
	}
	return total, nil
}

// AvgClassSize is the mean equivalence-class size under the
// quasi-identifiers; k-anonymity guarantees a lower bound of k.
func AvgClassSize(rel *schema.Relation, rows schema.Rows, qi []string) (float64, error) {
	classes, err := classSizes(rel, rows, qi)
	if err != nil {
		return 0, err
	}
	if len(classes) == 0 {
		return 0, nil
	}
	return float64(len(rows)) / float64(len(classes)), nil
}

// LinkageRisk estimates the re-identification risk as the fraction of rows
// that are unique under the quasi-identifier combination (an attacker who
// knows the QI values of a target re-identifies exactly those rows).
func LinkageRisk(rel *schema.Relation, rows schema.Rows, qi []string) (float64, error) {
	classes, err := classSizes(rel, rows, qi)
	if err != nil {
		return 0, err
	}
	if len(rows) == 0 {
		return 0, nil
	}
	singles := 0
	for _, c := range classes {
		if c == 1 {
			singles++
		}
	}
	return float64(singles) / float64(len(rows)), nil
}

func classSizes(rel *schema.Relation, rows schema.Rows, qi []string) ([]int, error) {
	idx := make([]int, len(qi))
	for i, c := range qi {
		j, err := rel.Index(c)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMetrics, err)
		}
		idx[i] = j
	}
	counts := map[string]int{}
	for _, r := range rows {
		counts[r.GroupKey(idx)]++
	}
	out := make([]int, 0, len(counts))
	for _, c := range counts {
		out = append(out, c)
	}
	return out, nil
}
