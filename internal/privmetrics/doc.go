// Package privmetrics implements the information-loss and privacy metrics
// of §3.2: the paper's Direct Distance DD(R, R′), the Kullback–Leibler
// divergence the preprocessor uses to judge whether enough information
// survives for the intended analysis, plus the classic discernibility and
// average-equivalence-class-size measures used to compare anonymization
// operators.
package privmetrics
