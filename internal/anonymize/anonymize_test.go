package anonymize

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"paradise/internal/schema"
)

func positionsRelation() *schema.Relation {
	return schema.NewRelation("r",
		schema.Col("x", schema.TypeFloat),
		schema.Col("y", schema.TypeFloat),
		schema.Col("z", schema.TypeFloat),
		schema.SensitiveCol("user", schema.TypeString),
	)
}

func positionsRows(n int, seed int64) schema.Rows {
	rng := rand.New(rand.NewSource(seed))
	users := []string{"alice", "bob", "carol"}
	rows := make(schema.Rows, n)
	for i := range rows {
		rows[i] = schema.Row{
			schema.Float(math.Round(rng.Float64()*80) / 10),
			schema.Float(math.Round(rng.Float64()*60) / 10),
			schema.Float(math.Round(rng.Float64()*20) / 10),
			schema.String(users[rng.Intn(len(users))]),
		}
	}
	return rows
}

func TestMondrianKAnonymity(t *testing.T) {
	rel := positionsRelation()
	rows := positionsRows(200, 1)
	qi := []string{"x", "y"}
	for _, k := range []int{2, 5, 10, 25} {
		anon, err := Mondrian(rel, rows, qi, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(anon) != len(rows) {
			t.Fatalf("k=%d: cardinality changed", k)
		}
		ok, err := IsKAnonymous(rel, anon, qi, k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("k=%d: result not k-anonymous", k)
		}
		// Non-QI columns untouched.
		for i := range rows {
			if !rows[i][3].Identical(anon[i][3]) {
				t.Fatalf("k=%d: non-QI column modified", k)
			}
		}
	}
}

func TestMondrianDoesNotMutateInput(t *testing.T) {
	rel := positionsRelation()
	rows := positionsRows(50, 2)
	before := rows.Clone()
	if _, err := Mondrian(rel, rows, []string{"x", "y"}, 5); err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		for j := range rows[i] {
			if !rows[i][j].Identical(before[i][j]) {
				t.Fatal("input mutated")
			}
		}
	}
}

func TestMondrianUtilityGrowsWithSmallerK(t *testing.T) {
	rel := positionsRelation()
	rows := positionsRows(300, 3)
	qi := []string{"x", "y", "z"}
	changed := func(k int) int {
		anon, err := Mondrian(rel, rows, qi, k)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for i := range rows {
			for j := range rows[i] {
				if !rows[i][j].Identical(anon[i][j]) {
					n++
				}
			}
		}
		return n
	}
	if c2, c25 := changed(2), changed(25); c2 > c25 {
		t.Fatalf("k=2 should change fewer cells than k=25: %d vs %d", c2, c25)
	}
}

func TestMondrianErrors(t *testing.T) {
	rel := positionsRelation()
	rows := positionsRows(3, 4)
	if _, err := Mondrian(rel, rows, []string{"x"}, 0); !errors.Is(err, ErrAnonymize) {
		t.Fatal("k=0 should error")
	}
	if _, err := Mondrian(rel, rows, []string{"x"}, 10); !errors.Is(err, ErrAnonymize) {
		t.Fatal("k > n should error")
	}
	if _, err := Mondrian(rel, rows, []string{"nope"}, 2); !errors.Is(err, ErrAnonymize) {
		t.Fatal("unknown column should error")
	}
	empty, err := Mondrian(rel, nil, []string{"x"}, 2)
	if err != nil || len(empty) != 0 {
		t.Fatal("empty input should yield empty output")
	}
}

func TestFullDomainKAnonymity(t *testing.T) {
	rel := positionsRelation()
	rows := positionsRows(200, 5)
	qi := []string{"x", "y"}
	anon, suppressed, err := FullDomain(rel, rows, qi, 5, len(rows)/5)
	if err != nil {
		t.Fatal(err)
	}
	if suppressed != len(rows)-len(anon) {
		t.Fatalf("suppression accounting: %d vs %d", suppressed, len(rows)-len(anon))
	}
	ok, err := IsKAnonymous(rel, anon, qi, 5)
	if err != nil || !ok {
		t.Fatalf("not 5-anonymous after full-domain: %v", err)
	}
}

func TestFullDomainBudgetExceeded(t *testing.T) {
	rel := schema.NewRelation("u", schema.Col("id", schema.TypeString))
	// All-distinct strings cannot be generalized below level 3 and the
	// budget forbids suppressing everything.
	rows := schema.Rows{}
	for _, s := range []string{"a", "b", "c", "d"} {
		rows = append(rows, schema.Row{schema.String(s)})
	}
	// Strings suppress to "*" at level 3, making them all one class — so
	// this actually succeeds. Verify that.
	anon, _, err := FullDomain(rel, rows, []string{"id"}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range anon {
		if r[0].AsString() != "*" {
			t.Fatal("strings should be suppressed at the top level")
		}
	}
}

func TestIsKAnonymousTrivialK(t *testing.T) {
	rel := positionsRelation()
	ok, err := IsKAnonymous(rel, positionsRows(5, 6), []string{"x"}, 1)
	if err != nil || !ok {
		t.Fatal("k=1 is always satisfied")
	}
}

func TestEquivalenceClasses(t *testing.T) {
	rel := schema.NewRelation("r", schema.Col("a", schema.TypeInt))
	rows := schema.Rows{
		{schema.Int(1)}, {schema.Int(1)}, {schema.Int(2)},
	}
	classes, err := EquivalenceClasses(rel, rows, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 2 {
		t.Fatalf("classes = %d", len(classes))
	}
}

func TestSlicePreservesColumnMultisets(t *testing.T) {
	rel := positionsRelation()
	rows := positionsRows(100, 7)
	rng := rand.New(rand.NewSource(1))
	sliced, err := Slice(rel, rows, [][]string{{"x", "y"}}, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sliced) != len(rows) {
		t.Fatal("cardinality changed")
	}
	// Per-column multisets must be identical (slicing only permutes).
	for col := 0; col < rel.Arity(); col++ {
		orig := map[string]int{}
		got := map[string]int{}
		for i := range rows {
			orig[rows[i][col].GroupKey()]++
			got[sliced[i][col].GroupKey()]++
		}
		for k, v := range orig {
			if got[k] != v {
				t.Fatalf("column %d multiset changed", col)
			}
		}
	}
	// The (x, y) pair must stay intact (same group), i.e. every output
	// pair exists in the input.
	pairs := map[string]int{}
	for _, r := range rows {
		pairs[r[0].GroupKey()+"/"+r[1].GroupKey()]++
	}
	for _, r := range sliced {
		if pairs[r[0].GroupKey()+"/"+r[1].GroupKey()] == 0 {
			t.Fatal("slicing broke an intra-group pair")
		}
	}
}

func TestSliceBreaksLinkage(t *testing.T) {
	rel := positionsRelation()
	rows := positionsRows(200, 8)
	rng := rand.New(rand.NewSource(2))
	sliced, err := Slice(rel, rows, [][]string{{"x", "y"}}, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := range rows {
		if !rows[i][0].Identical(sliced[i][0]) || !rows[i][1].Identical(sliced[i][1]) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("slicing should move tuples between rows")
	}
}

func TestSliceErrors(t *testing.T) {
	rel := positionsRelation()
	rows := positionsRows(10, 9)
	rng := rand.New(rand.NewSource(3))
	if _, err := Slice(rel, rows, [][]string{{"x"}}, 1, rng); !errors.Is(err, ErrAnonymize) {
		t.Fatal("bucket size 1 should error")
	}
	if _, err := Slice(rel, rows, [][]string{{"x"}, {"x"}}, 4, rng); !errors.Is(err, ErrAnonymize) {
		t.Fatal("overlapping groups should error")
	}
	if _, err := Slice(rel, rows, [][]string{{"nope"}}, 4, rng); !errors.Is(err, ErrAnonymize) {
		t.Fatal("unknown column should error")
	}
}

func TestLaplaceMechanismStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 20000
	eps := 1.0
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := LaplaceMechanism(0, 1, eps, rng)
		sum += v
		sumsq += v * v
	}
	meanV := sum / float64(n)
	variance := sumsq/float64(n) - meanV*meanV
	// Laplace(b=1): mean 0, variance 2b² = 2.
	if math.Abs(meanV) > 0.05 {
		t.Fatalf("mean = %v", meanV)
	}
	if math.Abs(variance-2) > 0.2 {
		t.Fatalf("variance = %v, want ~2", variance)
	}
	// No noise for disabled epsilon.
	if LaplaceMechanism(5, 1, 0, rng) != 5 {
		t.Fatal("epsilon<=0 must be a no-op")
	}
}

func TestNoisyRowsEpsilonScalesNoise(t *testing.T) {
	rel := positionsRelation()
	rows := positionsRows(500, 10)
	noise := func(eps float64) float64 {
		rng := rand.New(rand.NewSource(5))
		noisy, err := NoisyRows(rel, rows, []string{"x"}, 1, eps, rng)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for i := range rows {
			total += math.Abs(noisy[i][0].AsFloat() - rows[i][0].AsFloat())
		}
		return total / float64(len(rows))
	}
	if noise(0.1) <= noise(10) {
		t.Fatalf("smaller epsilon must add more noise: eps=0.1 -> %v, eps=10 -> %v",
			noise(0.1), noise(10))
	}
}

func TestDetectQuasiIdentifiers(t *testing.T) {
	rel := schema.NewRelation("r",
		schema.Col("zip", schema.TypeInt),
		schema.Col("age", schema.TypeInt),
		schema.Col("flag", schema.TypeBool),
		schema.SensitiveCol("name", schema.TypeString),
	)
	rng := rand.New(rand.NewSource(11))
	rows := schema.Rows{}
	for i := 0; i < 200; i++ {
		rows = append(rows, schema.Row{
			schema.Int(int64(10000 + rng.Intn(5000))), // near-unique
			schema.Int(int64(20 + rng.Intn(60))),
			schema.Bool(rng.Intn(2) == 0),
			schema.String("p"),
		})
	}
	qi := DetectQuasiIdentifiers(rel, rows, 0.2)
	if len(qi) == 0 {
		t.Fatal("zip+age should be detected as quasi-identifying")
	}
	for _, q := range qi {
		if q == "name" {
			t.Fatal("sensitive columns are direct identifiers, not QI candidates")
		}
	}
	// A relation of constants has no QI.
	flat := schema.Rows{}
	for i := 0; i < 50; i++ {
		flat = append(flat, schema.Row{schema.Int(1), schema.Int(2), schema.Bool(true), schema.String("p")})
	}
	if qi := DetectQuasiIdentifiers(rel, flat, 0.2); qi != nil {
		t.Fatalf("constant data has no QI, got %v", qi)
	}
}

func TestMondrianKAnonymityProperty(t *testing.T) {
	rel := schema.NewRelation("r",
		schema.Col("a", schema.TypeFloat), schema.Col("b", schema.TypeFloat))
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%8) + 2
		rng := rand.New(rand.NewSource(seed))
		n := k*3 + rng.Intn(60)
		rows := make(schema.Rows, n)
		for i := range rows {
			rows[i] = schema.Row{
				schema.Float(float64(rng.Intn(50))),
				schema.Float(float64(rng.Intn(50))),
			}
		}
		anon, err := Mondrian(rel, rows, []string{"a", "b"}, k)
		if err != nil {
			return false
		}
		ok, err := IsKAnonymous(rel, anon, []string{"a", "b"}, k)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
