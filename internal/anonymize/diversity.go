package anonymize

import (
	"fmt"
	"math"

	"paradise/internal/schema"
)

// This file implements the "similar concepts" beyond plain k-anonymity the
// paper alludes to in §3.2: l-diversity (Machanavajjhala et al.) and
// t-closeness (Li et al.) as checks and as suppression-based enforcement.
// k-anonymity alone leaves the homogeneity attack open — an equivalence
// class whose sensitive values are all equal reveals them despite k ≥ 2.

// IsLDiverse reports whether every equivalence class under the
// quasi-identifiers contains at least l distinct values of the sensitive
// column.
func IsLDiverse(rel *schema.Relation, rows schema.Rows, qi []string, sensitive string, l int) (bool, error) {
	if l <= 1 {
		return true, nil
	}
	classes, sIdx, err := classesWithSensitive(rel, rows, qi, sensitive)
	if err != nil {
		return false, err
	}
	for _, members := range classes {
		if distinctSensitive(rows, members, sIdx) < l {
			return false, nil
		}
	}
	return true, nil
}

// EnforceLDiversity suppresses (drops) every equivalence class with fewer
// than l distinct sensitive values. It returns the surviving rows and the
// number suppressed. Suppression is the conservative remedy the paper's
// postprocessor can always apply when a more powerful node is unavailable.
func EnforceLDiversity(rel *schema.Relation, rows schema.Rows, qi []string, sensitive string, l int) (schema.Rows, int, error) {
	if l <= 1 {
		return rows.Clone(), 0, nil
	}
	classes, sIdx, err := classesWithSensitive(rel, rows, qi, sensitive)
	if err != nil {
		return nil, 0, err
	}
	keep := make([]bool, len(rows))
	for _, members := range classes {
		ok := distinctSensitive(rows, members, sIdx) >= l
		for _, m := range members {
			keep[m] = ok
		}
	}
	var out schema.Rows
	for i, r := range rows {
		if keep[i] {
			out = append(out, r.Clone())
		}
	}
	return out, len(rows) - len(out), nil
}

// TCloseness computes, for every equivalence class, the distance between
// the class's sensitive-value distribution and the global one, returning
// the maximum. For numeric sensitive columns the distance is the
// earth-mover's distance over the sorted domain (the t-closeness paper's
// choice for ordered attributes); for categorical columns it is total
// variation distance.
func TCloseness(rel *schema.Relation, rows schema.Rows, qi []string, sensitive string) (float64, error) {
	classes, sIdx, err := classesWithSensitive(rel, rows, qi, sensitive)
	if err != nil {
		return 0, err
	}
	if len(rows) == 0 {
		return 0, nil
	}

	numeric := rel.Columns[sIdx].Type.Numeric()
	// Build the global domain.
	domain, globalDist := sensitiveDistribution(rows, allRowIndexes(len(rows)), sIdx)
	maxDist := 0.0
	for _, members := range classes {
		_, classDist := sensitiveDistributionOver(rows, members, sIdx, domain)
		var d float64
		if numeric {
			d = emd(globalDist, classDist)
		} else {
			d = totalVariation(globalDist, classDist)
		}
		if d > maxDist {
			maxDist = d
		}
	}
	return maxDist, nil
}

// IsTClose reports whether the relation satisfies t-closeness.
func IsTClose(rel *schema.Relation, rows schema.Rows, qi []string, sensitive string, t float64) (bool, error) {
	d, err := TCloseness(rel, rows, qi, sensitive)
	if err != nil {
		return false, err
	}
	return d <= t, nil
}

func classesWithSensitive(rel *schema.Relation, rows schema.Rows, qi []string, sensitive string) (map[string][]int, int, error) {
	classes, err := EquivalenceClasses(rel, rows, qi)
	if err != nil {
		return nil, 0, err
	}
	sIdx, err := rel.Index(sensitive)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrAnonymize, err)
	}
	return classes, sIdx, nil
}

func distinctSensitive(rows schema.Rows, members []int, sIdx int) int {
	seen := map[string]bool{}
	for _, m := range members {
		seen[rows[m][sIdx].GroupKey()] = true
	}
	return len(seen)
}

// sensitiveDistribution builds the ordered domain and the normalized
// distribution of the sensitive column over the given rows.
func sensitiveDistribution(rows schema.Rows, members []int, sIdx int) ([]schema.Value, []float64) {
	counts := map[string]int{}
	rep := map[string]schema.Value{}
	var order []string
	for _, m := range members {
		k := rows[m][sIdx].GroupKey()
		if _, ok := counts[k]; !ok {
			order = append(order, k)
			rep[k] = rows[m][sIdx]
		}
		counts[k]++
	}
	// Order numerically when possible for the EMD ground distance.
	sortKeys(order, rep)
	domain := make([]schema.Value, len(order))
	dist := make([]float64, len(order))
	total := float64(len(members))
	for i, k := range order {
		domain[i] = rep[k]
		dist[i] = float64(counts[k]) / total
	}
	return domain, dist
}

// sensitiveDistributionOver projects the members' distribution onto an
// existing domain (bins absent from the class get probability 0).
func sensitiveDistributionOver(rows schema.Rows, members []int, sIdx int, domain []schema.Value) ([]schema.Value, []float64) {
	index := map[string]int{}
	for i, v := range domain {
		index[v.GroupKey()] = i
	}
	dist := make([]float64, len(domain))
	total := float64(len(members))
	for _, m := range members {
		if i, ok := index[rows[m][sIdx].GroupKey()]; ok {
			dist[i] += 1 / total
		}
	}
	return domain, dist
}

func sortKeys(order []string, rep map[string]schema.Value) {
	lessVal := func(a, b schema.Value) bool {
		if c, ok := a.Compare(b); ok {
			return c < 0
		}
		return a.GroupKey() < b.GroupKey()
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && lessVal(rep[order[j]], rep[order[j-1]]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
}

// emd computes the earth-mover's distance between two distributions over
// the same ordered domain with unit ground distance between adjacent bins,
// normalized by the domain span (so 0 <= emd <= 1).
func emd(p, q []float64) float64 {
	if len(p) <= 1 {
		return 0
	}
	carry, total := 0.0, 0.0
	for i := range p {
		carry += p[i] - q[i]
		total += math.Abs(carry)
	}
	return total / float64(len(p)-1)
}

// totalVariation is ½ Σ |p - q|.
func totalVariation(p, q []float64) float64 {
	d := 0.0
	for i := range p {
		d += math.Abs(p[i] - q[i])
	}
	return d / 2
}

func allRowIndexes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
