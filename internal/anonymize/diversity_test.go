package anonymize

import (
	"math"
	"testing"

	"paradise/internal/schema"
)

// diversityFixture: two equivalence classes under qi=cell; class A has a
// homogeneous sensitive value (the l-diversity failure case), class B is
// diverse.
func diversityFixture() (*schema.Relation, schema.Rows) {
	rel := schema.NewRelation("r",
		schema.Col("cell", schema.TypeInt),
		schema.Col("activity", schema.TypeString),
	)
	rows := schema.Rows{
		{schema.Int(1), schema.String("sleep")},
		{schema.Int(1), schema.String("sleep")},
		{schema.Int(1), schema.String("sleep")},
		{schema.Int(2), schema.String("walk")},
		{schema.Int(2), schema.String("cook")},
		{schema.Int(2), schema.String("sleep")},
	}
	return rel, rows
}

func TestIsLDiverse(t *testing.T) {
	rel, rows := diversityFixture()
	ok, err := IsLDiverse(rel, rows, []string{"cell"}, "activity", 2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("class 1 is homogeneous; not 2-diverse")
	}
	ok, err = IsLDiverse(rel, rows[3:], []string{"cell"}, "activity", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("class 2 has 3 distinct activities")
	}
	// l=1 is trivially satisfied.
	if ok, _ := IsLDiverse(rel, rows, []string{"cell"}, "activity", 1); !ok {
		t.Fatal("l=1 always holds")
	}
}

func TestEnforceLDiversity(t *testing.T) {
	rel, rows := diversityFixture()
	out, suppressed, err := EnforceLDiversity(rel, rows, []string{"cell"}, "activity", 2)
	if err != nil {
		t.Fatal(err)
	}
	if suppressed != 3 {
		t.Fatalf("suppressed = %d, want 3 (the homogeneous class)", suppressed)
	}
	ok, _ := IsLDiverse(rel, out, []string{"cell"}, "activity", 2)
	if !ok {
		t.Fatal("result should be 2-diverse")
	}
	// Input untouched.
	if len(rows) != 6 {
		t.Fatal("input mutated")
	}
	// Unknown sensitive column errors.
	if _, _, err := EnforceLDiversity(rel, rows, []string{"cell"}, "nope", 2); err == nil {
		t.Fatal("unknown sensitive column should error")
	}
}

func TestTClosenessCategorical(t *testing.T) {
	rel, rows := diversityFixture()
	// Class 1 is all-sleep vs global 4/6 sleep, 1/6 walk, 1/6 cook:
	// TV distance = (|1-4/6| + |0-1/6| + |0-1/6|)/2 = 1/3.
	d, err := TCloseness(rel, rows, []string{"cell"}, "activity")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1.0/3.0) > 1e-9 {
		t.Fatalf("t-closeness = %v, want 1/3", d)
	}
	ok, _ := IsTClose(rel, rows, []string{"cell"}, "activity", 0.5)
	if !ok {
		t.Fatal("0.34 < 0.5 should satisfy t=0.5")
	}
	ok, _ = IsTClose(rel, rows, []string{"cell"}, "activity", 0.2)
	if ok {
		t.Fatal("1/3 > 0.2 should violate t=0.2")
	}
}

func TestTClosenessNumericEMD(t *testing.T) {
	rel := schema.NewRelation("r",
		schema.Col("cell", schema.TypeInt),
		schema.Col("age", schema.TypeInt),
	)
	// Global ages: 20, 30, 40 uniform; class 1 concentrated at 20.
	rows := schema.Rows{
		{schema.Int(1), schema.Int(20)},
		{schema.Int(1), schema.Int(20)},
		{schema.Int(2), schema.Int(30)},
		{schema.Int(2), schema.Int(40)},
		{schema.Int(2), schema.Int(30)},
		{schema.Int(2), schema.Int(40)},
	}
	d, err := TCloseness(rel, rows, []string{"cell"}, "age")
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d > 1 {
		t.Fatalf("EMD out of range: %v", d)
	}
	// A perfectly mirrored relation has closeness 0.
	uniform := schema.Rows{
		{schema.Int(1), schema.Int(20)},
		{schema.Int(1), schema.Int(30)},
		{schema.Int(2), schema.Int(20)},
		{schema.Int(2), schema.Int(30)},
	}
	d0, err := TCloseness(rel, uniform, []string{"cell"}, "age")
	if err != nil {
		t.Fatal(err)
	}
	if d0 > 1e-9 {
		t.Fatalf("identical distributions should have closeness 0, got %v", d0)
	}
}

func TestHomogeneityAttackScenario(t *testing.T) {
	// The classic k-anonymity failure: a class is 3-anonymous yet leaks
	// the sensitive value. l-diversity catches it, k-anonymity does not.
	rel, rows := diversityFixture()
	kOK, err := IsKAnonymous(rel, rows, []string{"cell"}, 3)
	if err != nil || !kOK {
		t.Fatalf("fixture should be 3-anonymous: %v", err)
	}
	lOK, _ := IsLDiverse(rel, rows, []string{"cell"}, "activity", 2)
	if lOK {
		t.Fatal("fixture must fail 2-diversity (homogeneity attack)")
	}
}

func TestTClosenessEmpty(t *testing.T) {
	rel, _ := diversityFixture()
	d, err := TCloseness(rel, nil, []string{"cell"}, "activity")
	if err != nil || d != 0 {
		t.Fatalf("empty relation: %v %v", d, err)
	}
}
