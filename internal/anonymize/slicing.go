package anonymize

import (
	"fmt"
	"math/rand"
	"sort"

	"paradise/internal/schema"
)

// Slice implements the column-wise anonymization of Li, Li, Zhang & Molloy
// (SIGMOD 2012) the paper cites for attribute-wise processing: the columns
// are partitioned into groups, the rows into buckets of bucketSize, and
// within each bucket the value tuples of every column group are permuted
// independently. Attribute correlations *within* a group survive; linkage
// *across* groups is broken, which is exactly the privacy/utility trade the
// technique offers.
//
// The column groups must cover disjoint subsets of the relation; columns not
// mentioned form an implicit final group (kept in original row order — they
// anchor the bucket like Li et al.'s sensitive column).
func Slice(rel *schema.Relation, rows schema.Rows, colGroups [][]string, bucketSize int, rng *rand.Rand) (schema.Rows, error) {
	if bucketSize < 2 {
		return nil, fmt.Errorf("%w: bucket size must be >= 2, got %d", ErrAnonymize, bucketSize)
	}
	seen := map[int]bool{}
	groups := make([][]int, 0, len(colGroups))
	for _, g := range colGroups {
		idx, err := columnIndexes(rel, g)
		if err != nil {
			return nil, err
		}
		for _, i := range idx {
			if seen[i] {
				return nil, fmt.Errorf("%w: column %s in more than one slice group",
					ErrAnonymize, rel.Columns[i].Name)
			}
			seen[i] = true
		}
		groups = append(groups, idx)
	}

	out := rows.Clone()
	for start := 0; start < len(out); start += bucketSize {
		end := start + bucketSize
		if end > len(out) {
			end = len(out)
		}
		n := end - start
		if n < 2 {
			continue
		}
		for _, g := range groups {
			perm := rng.Perm(n)
			// Extract the group's value tuples, then write them back
			// permuted.
			tuples := make([][]schema.Value, n)
			for i := 0; i < n; i++ {
				t := make([]schema.Value, len(g))
				for j, c := range g {
					t[j] = out[start+i][c]
				}
				tuples[i] = t
			}
			for i := 0; i < n; i++ {
				src := tuples[perm[i]]
				for j, c := range g {
					out[start+i][c] = src[j]
				}
			}
		}
	}
	return out, nil
}

// DetectQuasiIdentifiers finds a minimal (greedy) set of columns whose value
// combination re-identifies more than riskThreshold of the rows (fraction of
// rows in singleton equivalence classes). Columns already flagged Sensitive
// are direct identifiers and excluded — they must be removed or masked, not
// generalized. This implements the "detecting quasi-identifiers" step of the
// paper's postprocessing summary (§5).
func DetectQuasiIdentifiers(rel *schema.Relation, rows schema.Rows, riskThreshold float64) []string {
	if len(rows) == 0 {
		return nil
	}
	var candidates []int
	for i, c := range rel.Columns {
		if !c.Sensitive {
			candidates = append(candidates, i)
		}
	}
	// Order candidates by decreasing distinctness: the most identifying
	// columns first, so the greedy set stays small.
	sort.SliceStable(candidates, func(a, b int) bool {
		return distinctness(rows, candidates[a]) > distinctness(rows, candidates[b])
	})

	var chosen []int
	for _, c := range candidates {
		if singletonFraction(rows, chosen) > riskThreshold {
			break
		}
		chosen = append(chosen, c)
	}
	if singletonFraction(rows, chosen) <= riskThreshold {
		// Even all quasi-columns together do not re-identify: no QI set.
		return nil
	}
	// Shrink greedily: drop columns that are not needed to stay above the
	// threshold.
	for i := 0; i < len(chosen); {
		trial := append(append([]int{}, chosen[:i]...), chosen[i+1:]...)
		if len(trial) > 0 && singletonFraction(rows, trial) > riskThreshold {
			chosen = trial
		} else {
			i++
		}
	}
	names := make([]string, len(chosen))
	for i, c := range chosen {
		names[i] = rel.Columns[c].Name
	}
	sort.Strings(names)
	return names
}

func distinctness(rows schema.Rows, col int) float64 {
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r[col].GroupKey()] = true
	}
	return float64(len(seen)) / float64(len(rows))
}

// singletonFraction computes the fraction of rows that are unique under the
// given column combination.
func singletonFraction(rows schema.Rows, cols []int) float64 {
	if len(cols) == 0 || len(rows) == 0 {
		return 0
	}
	counts := map[string]int{}
	for _, r := range rows {
		counts[r.GroupKey(cols)]++
	}
	singles := 0
	for _, c := range counts {
		if c == 1 {
			singles++
		}
	}
	return float64(singles) / float64(len(rows))
}
