package anonymize

import (
	"math/rand"
	"testing"

	"paradise/internal/schema"
)

func benchRows(n int) (*schema.Relation, schema.Rows) {
	rng := rand.New(rand.NewSource(7))
	rel := schema.NewRelation("r",
		schema.Col("x", schema.TypeFloat),
		schema.Col("y", schema.TypeFloat),
		schema.Col("z", schema.TypeFloat),
		schema.Col("t", schema.TypeInt),
	)
	rows := make(schema.Rows, n)
	for i := range rows {
		rows[i] = schema.Row{
			schema.Float(rng.Float64() * 8),
			schema.Float(rng.Float64() * 6),
			schema.Float(rng.Float64() * 2),
			schema.Int(int64(i)),
		}
	}
	return rel, rows
}

func BenchmarkMondrianK5(b *testing.B) {
	rel, rows := benchRows(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mondrian(rel, rows, []string{"x", "y"}, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMondrianK50(b *testing.B) {
	rel, rows := benchRows(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mondrian(rel, rows, []string{"x", "y"}, 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullDomainK5(b *testing.B) {
	rel, rows := benchRows(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := FullDomain(rel, rows, []string{"x", "y"}, 5, len(rows)/10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSlice(b *testing.B) {
	rel, rows := benchRows(10_000)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Slice(rel, rows, [][]string{{"x", "y"}}, 4, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLaplaceNoise(b *testing.B) {
	rel, rows := benchRows(10_000)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NoisyRows(rel, rows, []string{"x", "y", "z"}, 0.5, 1.0, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectQuasiIdentifiers(b *testing.B) {
	rel, rows := benchRows(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DetectQuasiIdentifiers(rel, rows, 0.2)
	}
}
