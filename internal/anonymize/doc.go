// Package anonymize implements the postprocessing stage of the PArADISE
// processor (§3.2): result-set anonymization with k-anonymity (Samarati) in
// both full-domain-generalization and Mondrian multidimensional flavours,
// column-wise slicing (Li, Li, Zhang & Molloy), and the Laplace mechanism of
// differential privacy (Dwork) for aggregate releases, plus the
// quasi-identifier detection the paper's summary mentions.
package anonymize
