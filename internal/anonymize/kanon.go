package anonymize

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"paradise/internal/schema"
)

// ErrAnonymize wraps anonymization errors.
var ErrAnonymize = errors.New("anonymize: error")

// columnIndexes resolves quasi-identifier names to positions.
func columnIndexes(rel *schema.Relation, cols []string) ([]int, error) {
	out := make([]int, len(cols))
	for i, c := range cols {
		idx, err := rel.Index(c)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrAnonymize, err)
		}
		out[i] = idx
	}
	return out, nil
}

// IsKAnonymous reports whether every combination of quasi-identifier values
// occurs at least k times.
func IsKAnonymous(rel *schema.Relation, rows schema.Rows, qi []string, k int) (bool, error) {
	if k <= 1 {
		return true, nil
	}
	idx, err := columnIndexes(rel, qi)
	if err != nil {
		return false, err
	}
	counts := make(map[string]int)
	for _, r := range rows {
		counts[r.GroupKey(idx)]++
	}
	for _, c := range counts {
		if c < k {
			return false, nil
		}
	}
	return true, nil
}

// EquivalenceClasses groups row indexes by identical quasi-identifier
// values.
func EquivalenceClasses(rel *schema.Relation, rows schema.Rows, qi []string) (map[string][]int, error) {
	idx, err := columnIndexes(rel, qi)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]int)
	for i, r := range rows {
		key := r.GroupKey(idx)
		out[key] = append(out[key], i)
	}
	return out, nil
}

// Mondrian anonymizes rows to k-anonymity over the given quasi-identifiers
// using multidimensional median partitioning. Numeric QI values inside a
// partition are replaced by the partition mean; strings and other types by
// the partition's first value when uniform or a "*" suppression marker
// otherwise. The input rows are not modified.
func Mondrian(rel *schema.Relation, rows schema.Rows, qi []string, k int) (schema.Rows, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: k must be >= 1, got %d", ErrAnonymize, k)
	}
	idx, err := columnIndexes(rel, qi)
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return schema.Rows{}, nil
	}
	if len(rows) < k {
		return nil, fmt.Errorf("%w: %d rows cannot be %d-anonymous", ErrAnonymize, len(rows), k)
	}
	out := rows.Clone()
	order := make([]int, len(rows))
	for i := range order {
		order[i] = i
	}
	mondrianSplit(out, rows, order, idx, k)
	return out, nil
}

// mondrianSplit recursively partitions `members` (row indexes) and
// generalizes each leaf partition in-place in out.
func mondrianSplit(out, in schema.Rows, members []int, qiIdx []int, k int) {
	if len(members) >= 2*k {
		// Choose the QI dimension with the widest normalized range.
		dim, ok := widestDimension(in, members, qiIdx)
		if ok {
			// Sort by the chosen dimension (stable, NULLs first).
			sorted := append([]int{}, members...)
			sort.SliceStable(sorted, func(a, b int) bool {
				return compareVals(in[sorted[a]][dim], in[sorted[b]][dim]) < 0
			})
			cut := len(sorted) / 2
			// Move the cut off a run of equal values so both halves are
			// non-trivial.
			for cut < len(sorted)-k && cut > 0 &&
				compareVals(in[sorted[cut-1]][dim], in[sorted[cut]][dim]) == 0 {
				cut++
			}
			if cut >= k && len(sorted)-cut >= k &&
				compareVals(in[sorted[cut-1]][dim], in[sorted[cut]][dim]) != 0 {
				mondrianSplit(out, in, sorted[:cut], qiIdx, k)
				mondrianSplit(out, in, sorted[cut:], qiIdx, k)
				return
			}
		}
	}
	generalizePartition(out, in, members, qiIdx)
}

// widestDimension picks the allowed-cut dimension with the largest value
// spread; ok=false when no dimension has more than one distinct value.
func widestDimension(in schema.Rows, members []int, qiIdx []int) (int, bool) {
	bestDim, bestSpread, ok := -1, -1.0, false
	for _, dim := range qiIdx {
		lo, hi := math.Inf(1), math.Inf(-1)
		distinct := map[string]bool{}
		numeric := true
		for _, m := range members {
			v := in[m][dim]
			distinct[v.GroupKey()] = true
			if v.Type().Numeric() {
				f := v.AsFloat()
				lo, hi = math.Min(lo, f), math.Max(hi, f)
			} else {
				numeric = false
			}
		}
		if len(distinct) < 2 {
			continue
		}
		spread := float64(len(distinct))
		if numeric {
			spread = hi - lo
		}
		if spread > bestSpread {
			bestSpread, bestDim, ok = spread, dim, true
		}
	}
	return bestDim, ok
}

// generalizePartition replaces each QI value of the partition by the
// partition representative.
func generalizePartition(out, in schema.Rows, members []int, qiIdx []int) {
	for _, dim := range qiIdx {
		// Numeric: mean. Uniform non-numeric: keep. Mixed: suppress.
		numeric := true
		uniform := true
		var sum float64
		var n int
		first := in[members[0]][dim]
		for _, m := range members {
			v := in[m][dim]
			if v.Type().Numeric() {
				sum += v.AsFloat()
				n++
			} else {
				numeric = false
			}
			if !v.Identical(first) {
				uniform = false
			}
		}
		var rep schema.Value
		switch {
		case uniform:
			rep = first
		case numeric && n > 0:
			rep = schema.Float(round6(sum / float64(n)))
		default:
			rep = schema.String("*")
		}
		for _, m := range members {
			out[m][dim] = rep
		}
	}
}

func compareVals(a, b schema.Value) int {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0
		case a.IsNull():
			return -1
		default:
			return 1
		}
	}
	if c, ok := a.Compare(b); ok {
		return c
	}
	return 0
}

func round6(f float64) float64 { return math.Round(f*1e6) / 1e6 }

// FullDomain anonymizes to k-anonymity Samarati-style: all quasi-identifier
// columns are generalized uniformly level by level (numeric values are
// binned with doubling widths, strings suppressed at the top), and rows
// still violating k at the maximum level are suppressed entirely (removed),
// as long as no more than maxSuppress rows would be dropped.
func FullDomain(rel *schema.Relation, rows schema.Rows, qi []string, k int, maxSuppress int) (schema.Rows, int, error) {
	if k < 1 {
		return nil, 0, fmt.Errorf("%w: k must be >= 1, got %d", ErrAnonymize, k)
	}
	idx, err := columnIndexes(rel, qi)
	if err != nil {
		return nil, 0, err
	}
	if len(rows) == 0 {
		return schema.Rows{}, 0, nil
	}

	// Precompute per-column base bin width from the data spread.
	widths := make([]float64, len(idx))
	for i, dim := range idx {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range rows {
			if r[dim].Type().Numeric() {
				f := r[dim].AsFloat()
				lo, hi = math.Min(lo, f), math.Max(hi, f)
			}
		}
		if hi > lo {
			widths[i] = (hi - lo) / 16 // level 1 ~ 16 bins
		} else {
			widths[i] = 1
		}
	}

	const maxLevel = 6
	for level := 0; level <= maxLevel; level++ {
		gen := rows.Clone()
		for _, r := range gen {
			for i, dim := range idx {
				r[dim] = generalizeValue(r[dim], level, widths[i])
			}
		}
		counts := map[string]int{}
		for _, r := range gen {
			counts[r.GroupKey(idx)]++
		}
		suppress := 0
		for _, c := range counts {
			if c < k {
				suppress += c
			}
		}
		if suppress <= maxSuppress {
			var out schema.Rows
			for _, r := range gen {
				if counts[r.GroupKey(idx)] >= k {
					out = append(out, r)
				}
			}
			return out, suppress, nil
		}
	}
	return nil, 0, fmt.Errorf("%w: cannot reach %d-anonymity within suppression budget %d",
		ErrAnonymize, k, maxSuppress)
}

// generalizeValue applies the level-th generalization step: numeric values
// snap to bins whose width doubles per level (level 0 = exact); all other
// types are kept until level >= 3, then suppressed.
func generalizeValue(v schema.Value, level int, baseWidth float64) schema.Value {
	if level == 0 || v.IsNull() {
		return v
	}
	if v.Type().Numeric() {
		w := baseWidth * math.Pow(2, float64(level-1))
		if w <= 0 {
			return v
		}
		f := v.AsFloat()
		return schema.Float(round6(math.Floor(f/w)*w + w/2))
	}
	if level >= 3 {
		return schema.String("*")
	}
	return v
}

// LaplaceMechanism adds Laplace(sensitivity/epsilon) noise to a value —
// the standard ε-differential-privacy release for numeric aggregates.
func LaplaceMechanism(value, sensitivity, epsilon float64, rng *rand.Rand) float64 {
	if epsilon <= 0 || sensitivity <= 0 {
		return value
	}
	b := sensitivity / epsilon
	u := rng.Float64() - 0.5
	return value - b*sign(u)*math.Log(1-2*math.Abs(u))
}

func sign(f float64) float64 {
	if f < 0 {
		return -1
	}
	return 1
}

// NoisyRows applies the Laplace mechanism to every numeric value of the
// given columns, modelling a per-record DP release (local model). Rows are
// copied; non-numeric values pass through.
func NoisyRows(rel *schema.Relation, rows schema.Rows, cols []string, sensitivity, epsilon float64, rng *rand.Rand) (schema.Rows, error) {
	idx, err := columnIndexes(rel, cols)
	if err != nil {
		return nil, err
	}
	out := rows.Clone()
	for _, r := range out {
		for _, dim := range idx {
			if r[dim].Type().Numeric() {
				r[dim] = schema.Float(round6(LaplaceMechanism(r[dim].AsFloat(), sensitivity, epsilon, rng)))
			}
		}
	}
	return out, nil
}
