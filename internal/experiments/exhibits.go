package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"paradise/internal/anonymize"
	"paradise/internal/containment"
	"paradise/internal/engine"
	"paradise/internal/fragment"
	"paradise/internal/network"
	"paradise/internal/policy"
	"paradise/internal/privmetrics"
	"paradise/internal/rewrite"
	"paradise/internal/schema"
	"paradise/internal/sqlparser"
)

// sameMultiset compares two row sets as multisets of formatted rows.
func sameMultiset(a, b schema.Rows) bool {
	if len(a) != len(b) {
		return false
	}
	count := map[string]int{}
	key := func(r schema.Row) string {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.GroupKey()
		}
		return strings.Join(parts, "\x1f")
	}
	for _, r := range a {
		count[key(r)]++
	}
	for _, r := range b {
		count[key(r)]--
	}
	for _, v := range count {
		if v != 0 {
			return false
		}
	}
	return true
}

// anonymizeMondrian is the Figure 2 postprocessing probe.
func anonymizeMondrian(res *engine.Result, k int) (schema.Rows, error) {
	return anonymize.Mondrian(res.Schema, res.Rows, []string{"x", "y"}, k)
}

// --------------------------------------------------------------- Figure 4

// Figure4Result documents the policy-rewrite exhibit.
type Figure4Result struct {
	PolicyXML    string
	OriginalSQL  string
	RewrittenSQL string
	// MatchesPaper verifies the five structural facts of the published
	// rewriting (conditions, grouping, having, alias propagation).
	MatchesPaper bool
	Problems     []string
	RewriteTime  time.Duration
}

// Figure4 parses the paper's policy, rewrites the use-case query and checks
// the result against the published transformation.
func Figure4(n int, seed int64) (*Figure4Result, error) {
	st := SyntheticDB(n, seed)
	pol := policy.Figure4()
	xmlBytes, err := policy.Marshal(pol)
	if err != nil {
		return nil, err
	}
	mod, _ := pol.ModuleByID("ActionFilter")
	sel, err := sqlparser.Parse(OriginalUseCaseQuery)
	if err != nil {
		return nil, err
	}
	rw := rewrite.New(st.Catalog(), rewrite.Options{})
	start := time.Now()
	rewritten, _, err := rw.Rewrite(sel, mod)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	res := &Figure4Result{
		PolicyXML:    string(xmlBytes),
		OriginalSQL:  sel.SQL(),
		RewrittenSQL: rewritten.SQL(),
		RewriteTime:  elapsed,
	}
	inner := sqlparser.InnermostSelect(rewritten)
	check := func(ok bool, problem string) {
		if !ok {
			res.Problems = append(res.Problems, problem)
		}
	}
	where := ""
	if inner.Where != nil {
		where = inner.Where.SQL()
	}
	check(strings.Contains(where, "x > y"), "WHERE lacks x > y")
	check(strings.Contains(where, "z < 2"), "WHERE lacks z < 2")
	check(len(inner.GroupBy) == 2, "GROUP BY is not x, y")
	check(inner.Having != nil && inner.Having.SQL() == "SUM(z) > 100", "HAVING is not SUM(z) > 100")
	check(strings.Contains(strings.ToLower(rewritten.SQL()), "partition by zavg"),
		"PARTITION BY not renamed to zavg")
	aggFound := false
	for _, it := range inner.Items {
		if f, ok := it.Expr.(*sqlparser.FuncCall); ok && f.Name == "avg" && strings.EqualFold(it.Alias, "zavg") {
			aggFound = true
		}
	}
	check(aggFound, "AVG(z) AS zavg missing")
	res.MatchesPaper = len(res.Problems) == 0
	return res, nil
}

// ------------------------------------------------------ §4.2 staged pushdown

// StageCheck compares one emitted fragment against the paper's listing.
type StageCheck struct {
	Stage    int
	Node     string
	Level    fragment.Level
	PaperSQL string
	OurSQL   string
	// Match is a structural comparison (the paper renames relations per
	// hop; we compare shape, not identifier spelling).
	Match bool
}

// UseCaseResult is the full staged-pushdown exhibit.
type UseCaseResult struct {
	Stages []StageCheck
	// Equivalent: executing the chain == executing the monolithic query.
	Equivalent bool
	// CloudResidual is the R remainder.
	CloudResidual string
}

// UseCase fragments the rewritten §4.2 query and verifies each stage against
// the paper's per-level listings.
func UseCase(n int, seed int64) (*UseCaseResult, error) {
	st := SyntheticDB(n, seed)
	sel, err := sqlparser.Parse(UseCaseQuery)
	if err != nil {
		return nil, err
	}
	plan, err := fragment.New().Fragment(sel)
	if err != nil {
		return nil, err
	}
	stats, err := network.Run(context.Background(), network.DefaultApartment(), plan, st)
	if err != nil {
		return nil, err
	}

	// The paper's staged queries (§4.2), bottom-up.
	paper := []struct {
		sql      string
		contains []string
	}{
		{"SELECT * FROM stream WHERE z<2", []string{"SELECT *", "z < 2"}},
		{"SELECT x, y, z, t FROM d1 WHERE x>y", []string{"x, y, z, t", "x > y"}},
		{"SELECT x, y, AVG(z) AS zAVG, t FROM d2 GROUP BY x, y HAVING SUM(z) > 100",
			[]string{"AVG(z)", "GROUP BY x, y", "HAVING SUM(z) > 100"}},
		{"SELECT regr_intercept(y, x) OVER (PARTITION BY zAVG ORDER BY t) FROM d3",
			[]string{"REGR_INTERCEPT(y, x)", "PARTITION BY zavg", "ORDER BY t"}},
	}
	res := &UseCaseResult{CloudResidual: `filterByClass(d', action="walk", do.plot=F)`}
	for i, f := range plan.Fragments {
		sc := StageCheck{
			Stage:  f.Stage,
			Level:  f.MinLevel,
			OurSQL: f.SQL(),
		}
		if i < len(stats.Assignments) {
			sc.Node = stats.Assignments[i].Node.Name
		}
		if i < len(paper) {
			sc.PaperSQL = paper[i].sql
			sc.Match = true
			for _, want := range paper[i].contains {
				if !strings.Contains(sc.OurSQL, want) {
					sc.Match = false
				}
			}
		}
		res.Stages = append(res.Stages, sc)
	}

	// Equivalence with the monolithic evaluation.
	direct, err := engine.New(st).Select(context.Background(), sel)
	if err != nil {
		return nil, err
	}
	res.Equivalent = sameMultiset(direct.Rows.Clone(), stats.Result.Rows.Clone())
	return res, nil
}

// ---------------------------------------------------------------- §3.2

// Sec32Row is one anonymization operating point.
type Sec32Row struct {
	Method string
	Param  string
	// DDRatio is the paper's normalized Direct Distance (utility cost).
	DDRatio float64
	// KLIntended is the KL loss of the intended coarse analysis (the x
	// position distribution driving the occupancy/activity signal).
	KLIntended float64
	// RiskBefore/RiskAfter is the linkage risk over the QI columns.
	RiskBefore float64
	RiskAfter  float64
	// AvgClass is the mean equivalence-class size after anonymization
	// (>= k for the k-anonymity methods).
	AvgClass float64
	Elapsed  time.Duration
}

// fineGrainedDB builds a publishable position table with millimetre
// positions: nearly every (x, y) pair is unique, so the raw release is
// trivially re-identifiable — the §3.2 starting point.
func fineGrainedDB(n int, seed int64) (*engine.Result, error) {
	rng := rand.New(rand.NewSource(seed))
	rows := make(schema.Rows, 0, n)
	for i := 0; i < n; i++ {
		z := 1.4
		r := rng.Float64()
		switch {
		case r < 0.05:
			z = 0.3
		case r < 0.30:
			z = 0.95
		}
		rows = append(rows, schema.Row{
			schema.String("resident"),
			schema.Float(float64(int(rng.Float64()*8000)) / 1000),
			schema.Float(float64(int(rng.Float64()*6000)) / 1000),
			schema.Float(float64(int((z+rng.NormFloat64()*0.05)*1000)) / 1000),
			schema.Int(int64(i) * 50),
		})
	}
	// Publish x, y, z, t (user projected away by the preprocessor).
	out := &engine.Result{Schema: schema.NewRelation("published",
		schema.Col("x", schema.TypeFloat), schema.Col("y", schema.TypeFloat),
		schema.Col("z", schema.TypeFloat), schema.Col("t", schema.TypeInt))}
	for _, r := range rows {
		out.Rows = append(out.Rows, schema.Row{r[1], r[2], r[3], r[4]})
	}
	return out, nil
}

// Sec32 sweeps the anonymization operators over a published position table.
func Sec32(n int, seed int64) ([]Sec32Row, error) {
	res, err := fineGrainedDB(n, seed)
	if err != nil {
		return nil, err
	}
	qi := []string{"x", "y"}
	riskBefore, err := privmetrics.LinkageRisk(res.Schema, res.Rows, qi)
	if err != nil {
		return nil, err
	}

	var out []Sec32Row
	add := func(method, param string, rows schema.Rows, elapsed time.Duration) error {
		row := Sec32Row{Method: method, Param: param, RiskBefore: riskBefore, Elapsed: elapsed}
		if rows != nil && len(rows) == len(res.Rows) {
			row.DDRatio, err = privmetrics.DirectDistanceRatio(res.Rows, rows)
			if err != nil {
				return err
			}
			row.KLIntended, err = privmetrics.ColumnKL(res.Schema, res.Rows, rows, "x", 16)
			if err != nil {
				return err
			}
		}
		if rows != nil {
			row.RiskAfter, err = privmetrics.LinkageRisk(res.Schema, rows, qi)
			if err != nil {
				return err
			}
			row.AvgClass, err = privmetrics.AvgClassSize(res.Schema, rows, qi)
			if err != nil {
				return err
			}
		}
		out = append(out, row)
		return nil
	}

	for _, k := range []int{2, 5, 10, 20} {
		start := time.Now()
		rows, err := anonymize.Mondrian(res.Schema, res.Rows, qi, k)
		if err != nil {
			return nil, err
		}
		if err := add("mondrian", fmt.Sprintf("k=%d", k), rows, time.Since(start)); err != nil {
			return nil, err
		}
	}
	{
		start := time.Now()
		rows, _, err := anonymize.FullDomain(res.Schema, res.Rows, qi, 5, len(res.Rows)/10)
		if err != nil {
			return nil, err
		}
		if err := add("fulldomain", "k=5", rows, time.Since(start)); err != nil {
			return nil, err
		}
	}
	{
		start := time.Now()
		rows, err := anonymize.Slice(res.Schema, res.Rows, [][]string{qi}, 4, rand.New(rand.NewSource(seed)))
		if err != nil {
			return nil, err
		}
		if err := add("slicing", "bucket=4", rows, time.Since(start)); err != nil {
			return nil, err
		}
	}
	for _, eps := range []float64{0.1, 1, 10} {
		start := time.Now()
		rows, err := anonymize.NoisyRows(res.Schema, res.Rows, []string{"x", "y", "z"}, 0.5, eps, rand.New(rand.NewSource(seed)))
		if err != nil {
			return nil, err
		}
		if err := add("dp", fmt.Sprintf("eps=%.1f", eps), rows, time.Since(start)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ------------------------------------------------------------ open problem

// OpenProblemRow is one attacker query checked against the released view.
type OpenProblemRow struct {
	Query      string
	Intent     string // "intended" or "violating"
	Answerable bool
	Reason     string
}

// OpenProblem exercises the paper's closing open problem — deciding whether
// a privacy-violating query can still be answered on d′ — with the
// conservative containment checker of internal/containment. The view is the
// §4.2 rewritten inner query (what actually leaves the apartment).
func OpenProblem(n int, seed int64) ([]OpenProblemRow, error) {
	st := SyntheticDB(n, seed)
	chk := containment.New(st.Catalog())
	view, err := sqlparser.Parse(
		"SELECT x, y, AVG(z) AS zavg, t FROM d WHERE x > y AND z < 2 GROUP BY x, y HAVING SUM(z) > 100")
	if err != nil {
		return nil, err
	}
	probes := []struct {
		intent string
		sql    string
	}{
		{"intended", "SELECT x, y, zavg FROM d WHERE x > y AND z < 2"},
		{"intended", "SELECT x, y, zavg, t FROM d WHERE x > y AND z < 2 AND x < 4"},
		{"violating", "SELECT user, x, y, t FROM d"},
		{"violating", "SELECT z, t FROM d WHERE x > y AND z < 2"},
		{"violating", "SELECT x, y FROM d WHERE z < 5"},
		{"violating", "SELECT x, y FROM d"},
	}
	var out []OpenProblemRow
	for _, p := range probes {
		q, err := sqlparser.Parse(p.sql)
		if err != nil {
			return nil, err
		}
		v, err := chk.Answerable(q, view)
		if err != nil {
			return nil, err
		}
		out = append(out, OpenProblemRow{
			Query: p.sql, Intent: p.intent,
			Answerable: v.Answerable, Reason: strings.Join(v.Reasons, "; "),
		})
	}
	return out, nil
}

// ---------------------------------------------------------------- ablations

// PlacementRow compares innermost vs outermost condition placement.
type PlacementRow struct {
	Placement   string
	EgressBytes int
	SensorOut   int
}

// AblationConditionPlacement quantifies the paper's "innermost possible
// part" design decision: the same query with z < 2 placed at the sensor
// level versus evaluated only at the top of the chain.
func AblationConditionPlacement(n int, seed int64) ([]PlacementRow, error) {
	st := SyntheticDB(n, seed)
	topo := network.DefaultApartment()

	innermost := "SELECT x, y, AVG(z) AS zavg FROM (SELECT x, y, z FROM d WHERE z < 2) GROUP BY x, y"
	outermost := "SELECT x, y, zavg FROM (SELECT x, y, AVG(z) AS zavg, MIN(z) AS zmin FROM d GROUP BY x, y) WHERE zmin < 2"

	var out []PlacementRow
	for _, tc := range []struct{ name, q string }{
		{"innermost (pushdown)", innermost},
		{"outermost (late filter)", outermost},
	} {
		sel, err := sqlparser.Parse(tc.q)
		if err != nil {
			return nil, err
		}
		plan, err := fragment.New().Fragment(sel)
		if err != nil {
			return nil, err
		}
		stats, err := network.Run(context.Background(), topo, plan, st)
		if err != nil {
			return nil, err
		}
		row := PlacementRow{Placement: tc.name, EgressBytes: stats.EgressBytes}
		if len(stats.Assignments) > 0 {
			row.SensorOut = stats.Assignments[0].OutRows
		}
		out = append(out, row)
	}
	return out, nil
}

// FallbackRow measures the §3.2 weak-node fallback.
type FallbackRow struct {
	Config      string
	EgressBytes int
	// MidLinkBytes is the traffic on the appliance -> media center hop:
	// the fallback ships *raw* data across it instead of the appliance's
	// filtered output.
	MidLinkBytes int
	SimTime      time.Duration
	FallbackUsed bool
}

// AblationWeakNode compares a healthy chain against one whose appliance
// cannot hold the sensor output, forcing raw data one hop further up.
func AblationWeakNode(n int, seed int64) ([]FallbackRow, error) {
	st := SyntheticDB(n, seed)
	sel, err := sqlparser.Parse("SELECT x, y, AVG(z) AS zavg FROM d WHERE x > y AND z < 2 GROUP BY x, y")
	if err != nil {
		return nil, err
	}
	plan, err := fragment.New().Fragment(sel)
	if err != nil {
		return nil, err
	}
	var out []FallbackRow
	for _, tc := range []struct {
		name    string
		memRows int
	}{
		{"healthy appliance", 500_000},
		{"weak appliance (fallback)", 8},
	} {
		topo := network.DefaultApartment()
		topo.Nodes[1].MemRows = tc.memRows
		stats, err := network.Run(context.Background(), topo, plan, st)
		if err != nil {
			return nil, err
		}
		fb := false
		for _, a := range stats.Assignments {
			if a.FellBack {
				fb = true
			}
		}
		out = append(out, FallbackRow{
			Config: tc.name, EgressBytes: stats.EgressBytes,
			MidLinkBytes: stats.Traffic[1].Bytes,
			SimTime:      stats.SimTime, FallbackUsed: fb,
		})
	}
	return out, nil
}
