// Package experiments implements the reproduction harness: one entry point
// per exhibit of the paper (Table 1, Figures 1-4, the §4.2 staged pushdown
// and the §3.2 information-loss study) plus the ablations DESIGN.md calls
// out. cmd/benchrunner formats the outputs; the repository-root benchmarks
// wrap them in testing.B loops. Keeping the logic here guarantees the CLI
// and the benches measure the same code.
package experiments
