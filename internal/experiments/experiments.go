package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"paradise/internal/engine"
	"paradise/internal/fragment"
	"paradise/internal/network"
	logical "paradise/internal/plan"
	"paradise/internal/policy"
	"paradise/internal/rewrite"
	"paradise/internal/schema"
	"paradise/internal/sensors"
	"paradise/internal/sqlparser"
	"paradise/internal/storage"
)

// SyntheticDB builds an integrated database d with n position rows following
// the simulator's distributions (deterministic in seed). It is the scaling
// workload for Figure 3 and Table 1, where trace semantics do not matter but
// cardinality does.
func SyntheticDB(n int, seed int64) *storage.Store {
	rng := rand.New(rand.NewSource(seed))
	st := storage.NewStore()
	d := st.Create(sensors.IntegratedSchema())
	users := []string{"alice", "bob", "carol", "dave"}
	rows := make(schema.Rows, 0, n)
	for i := 0; i < n; i++ {
		// Tag heights by activity mix, with a 10% multipath-glitch tail
		// above 2 m that the sensor-level z < 2 filter removes.
		z := 1.4
		r := rng.Float64()
		switch {
		case r < 0.05:
			z = 0.3 // fallen
		case r < 0.30:
			z = 0.95 // sitting
		case r < 0.40:
			z = 2.5 // glitch
		}
		// Positions snap to the localization system's 1 m cell grid of an
		// 8 x 6 m room so GROUP BY x, y forms real grouping sets.
		rows = append(rows, schema.Row{
			schema.String(users[rng.Intn(len(users))]),
			schema.Float(float64(rng.Intn(8))),
			schema.Float(float64(rng.Intn(6))),
			schema.Float(z + rng.NormFloat64()*0.05),
			schema.Int(int64(i) * 50),
		})
	}
	if err := d.Append(rows...); err != nil {
		panic(err) // deterministic construction; arity is fixed
	}
	return st
}

// UseCaseQuery is the §4.2 query after the Figure 4 policy rewrite (the
// input of the fragmentation experiments). The HAVING threshold is the
// paper's.
const UseCaseQuery = `SELECT regr_intercept(y, x) OVER (PARTITION BY zavg ORDER BY t)
 FROM (SELECT x, y, AVG(z) AS zavg, t FROM d
       WHERE x > y AND z < 2 GROUP BY x, y HAVING SUM(z) > 100)`

// OriginalUseCaseQuery is the §4.2 query as the assistive system sends it.
const OriginalUseCaseQuery = `SELECT regr_intercept(y, x) OVER (PARTITION BY z ORDER BY t)
 FROM (SELECT x, y, z, t FROM d)`

// ---------------------------------------------------------------- Table 1

// Table1Row is one rung of the capability ladder with a measured throughput
// for a representative query of that rung.
type Table1Row struct {
	Level      fragment.Level
	System     string
	Capability string
	Nodes      string
	Query      string
	Rows       int
	Elapsed    time.Duration
}

// Table1 measures the ladder on a synthetic database of n rows.
func Table1(n int, seed int64) ([]Table1Row, error) {
	st := SyntheticDB(n, seed)
	eng := engine.New(st)
	probes := []struct {
		level  fragment.Level
		system string
		cap    string
		query  string
	}{
		{fragment.LevelSensor, "sensor in appliance/environment",
			"filter / window, simple selection, aggregates on streams",
			"SELECT * FROM d WHERE z < 2"},
		{fragment.LevelAppliance, "appliance in apartment",
			"SQL light with joins, attribute comparisons, projections",
			"SELECT x, y, t FROM d WHERE x > y"},
		{fragment.LevelAppliance, "appliance (media center)",
			"aggregation with GROUP BY / HAVING",
			"SELECT x, y, AVG(z) AS zavg FROM d GROUP BY x, y HAVING SUM(z) > 1"},
		{fragment.LevelPC, "PC in apartment",
			"SQL-92 incl. window functions and sorting",
			"SELECT x, AVG(z) OVER (PARTITION BY x ORDER BY t) FROM d"},
		{fragment.LevelCloud, "cloud",
			"complex ML algorithm in R, SQL:2003 with UDF",
			"SELECT regr_intercept(y, x), regr_slope(y, x), corr(y, x) FROM d WHERE z < 2"},
	}
	out := make([]Table1Row, 0, len(probes))
	for _, p := range probes {
		start := time.Now()
		res, err := eng.Query(context.Background(), p.query)
		if err != nil {
			return nil, fmt.Errorf("table1 probe %q: %w", p.query, err)
		}
		out = append(out, Table1Row{
			Level:      p.level,
			System:     p.system,
			Capability: p.cap,
			Nodes:      fragment.NodesPerPerson(p.level),
			Query:      p.query,
			Rows:       len(res.Rows),
			Elapsed:    time.Since(start),
		})
	}
	return out, nil
}

// --------------------------------------------------------------- Figure 1

// Figure1Result summarizes trace generation for the Smart Appliance Lab.
type Figure1Result struct {
	Scenario   string
	Persons    int
	Duration   time.Duration
	PerDevice  map[sensors.Device]int
	Integrated int
	TotalRows  int
	WireBytes  int
	Elapsed    time.Duration
}

// Figure1 generates a meeting trace with the full device ensemble.
func Figure1(personCount int, dur time.Duration, seed int64) (*Figure1Result, error) {
	start := time.Now()
	tr, err := sensors.Generate(sensors.Meeting(personCount, dur, seed))
	if err != nil {
		return nil, err
	}
	st, err := sensors.BuildStore(tr)
	if err != nil {
		return nil, err
	}
	total := len(tr.Integrated)
	for _, rows := range tr.Device {
		total += len(rows)
	}
	bytes := 0
	for _, name := range st.Names() {
		tab, _ := st.Table(name)
		bytes += tab.WireSize()
	}
	return &Figure1Result{
		Scenario:   "meeting",
		Persons:    personCount,
		Duration:   dur,
		PerDevice:  tr.RowCounts(),
		Integrated: len(tr.Integrated),
		TotalRows:  total,
		WireBytes:  bytes,
		Elapsed:    time.Since(start),
	}, nil
}

// --------------------------------------------------------------- Figure 2

// Figure2Result is the stage-latency breakdown of the processor pipeline.
type Figure2Result struct {
	Rows      int
	Parse     time.Duration
	Rewrite   time.Duration
	Fragment  time.Duration
	Execute   time.Duration
	Anonymize time.Duration
}

// Figure2 measures each stage of the Figure 2 pipeline once on a synthetic
// database of n rows.
func Figure2(n int, seed int64) (*Figure2Result, error) {
	st := SyntheticDB(n, seed)
	mod, _ := policy.Figure4().ModuleByID("ActionFilter")
	rw := rewrite.New(st.Catalog(), rewrite.Options{})

	out := &Figure2Result{Rows: n}

	start := time.Now()
	sel, err := sqlparser.Parse(OriginalUseCaseQuery)
	if err != nil {
		return nil, err
	}
	out.Parse = time.Since(start)

	start = time.Now()
	rewritten, _, err := rw.Rewrite(sel, mod)
	if err != nil {
		return nil, err
	}
	out.Rewrite = time.Since(start)

	start = time.Now()
	plan, err := fragment.New().Fragment(rewritten)
	if err != nil {
		return nil, err
	}
	out.Fragment = time.Since(start)

	start = time.Now()
	stats, err := network.Run(context.Background(), network.DefaultApartment(), plan, st)
	if err != nil {
		return nil, err
	}
	out.Execute = time.Since(start)

	start = time.Now()
	// Anonymize the pre-aggregation appliance output (the raw-est data a
	// weak node might have to ship, per §3.2): generalize positions.
	res, err := engine.New(st).Query(context.Background(), "SELECT x, y, z, t FROM d WHERE z < 2")
	if err != nil {
		return nil, err
	}
	if len(res.Rows) >= 5 {
		if _, err := anonymizeMondrian(res, 5); err != nil {
			return nil, err
		}
	}
	out.Anonymize = time.Since(start)
	_ = stats
	return out, nil
}

// --------------------------------------------------------------- Figure 3

// Figure3Row compares fragmented and naive execution at one trace size.
type Figure3Row struct {
	Rows           int
	RawBytes       int
	NaiveEgress    int
	FragEgress     int
	Reduction      float64
	FragSimTime    time.Duration
	NaiveSimTime   time.Duration
	SensorOutRows  int
	ApplianceRows  int
	EgressRows     int
	EgressFraction float64
}

// Figure3 runs the rewritten use-case query at several database sizes.
func Figure3(sizes []int, seed int64) ([]Figure3Row, error) {
	sel, err := sqlparser.Parse(UseCaseQuery)
	if err != nil {
		return nil, err
	}
	orig, err := sqlparser.Parse(OriginalUseCaseQuery)
	if err != nil {
		return nil, err
	}
	var out []Figure3Row
	for _, n := range sizes {
		st := SyntheticDB(n, seed)
		topo := network.DefaultApartment()
		plan, err := fragment.New().Fragment(sel)
		if err != nil {
			return nil, err
		}
		frag, err := network.Run(context.Background(), topo, plan, st)
		if err != nil {
			return nil, err
		}
		origRoot, err := logical.FromAST(orig)
		if err != nil {
			return nil, err
		}
		naive, err := network.RunNaive(context.Background(), topo, origRoot, st)
		if err != nil {
			return nil, err
		}
		row := Figure3Row{
			Rows:         n,
			RawBytes:     frag.RawBytes,
			NaiveEgress:  naive.EgressBytes,
			FragEgress:   frag.EgressBytes,
			FragSimTime:  frag.SimTime,
			NaiveSimTime: naive.SimTime,
		}
		if frag.EgressBytes > 0 {
			row.Reduction = float64(naive.EgressBytes) / float64(frag.EgressBytes)
		} else {
			row.Reduction = float64(naive.EgressBytes)
		}
		if len(frag.Assignments) > 0 {
			row.SensorOutRows = frag.Assignments[0].OutRows
		}
		if len(frag.Assignments) > 1 {
			row.ApplianceRows = frag.Assignments[1].OutRows
		}
		row.EgressRows = frag.Traffic[len(frag.Traffic)-1].Rows
		if n > 0 {
			row.EgressFraction = float64(row.EgressRows) / float64(n)
		}
		out = append(out, row)
	}
	return out, nil
}

// LadderRow is the fragmentation-granularity ablation: how much data leaves
// the apartment when the in-home ladder tops out at a given level.
type LadderRow struct {
	HomeTop     fragment.Level
	Description string
	EgressBytes int
}

// Figure3Ladder compares the full ladder against degenerate topologies.
func Figure3Ladder(n int, seed int64) ([]LadderRow, error) {
	sel, err := sqlparser.Parse(UseCaseQuery)
	if err != nil {
		return nil, err
	}
	st := SyntheticDB(n, seed)
	plan, err := fragment.New().Fragment(sel)
	if err != nil {
		return nil, err
	}

	topos := []struct {
		top  fragment.Level
		desc string
		topo *network.Topology
	}{
		{fragment.LevelPC, "full ladder (sensor..PC at home)", network.DefaultApartment()},
		{fragment.LevelAppliance, "no PC (appliances only)", ladderWithout(fragment.LevelPC)},
		{fragment.LevelSensor, "sensors only (everything else in cloud)", ladderWithout(fragment.LevelAppliance, fragment.LevelPC)},
	}
	var out []LadderRow
	for _, tc := range topos {
		stats, err := network.Run(context.Background(), tc.topo, plan, st)
		if err != nil {
			return nil, err
		}
		out = append(out, LadderRow{HomeTop: tc.top, Description: tc.desc, EgressBytes: stats.EgressBytes})
	}
	// Baseline: no home processing at all.
	orig, _ := sqlparser.Parse(OriginalUseCaseQuery)
	origRoot, err := logical.FromAST(orig)
	if err != nil {
		return nil, err
	}
	naive, err := network.RunNaive(context.Background(), network.DefaultApartment(), origRoot, st)
	if err != nil {
		return nil, err
	}
	out = append(out, LadderRow{
		HomeTop:     0,
		Description: "no fragmentation (ship raw d to cloud)",
		EgressBytes: naive.EgressBytes,
	})
	return out, nil
}

// FanInRow compares sensor counts at fixed data volume.
type FanInRow struct {
	Sensors     int
	EgressBytes int
	SimTime     time.Duration
}

// Figure3FanIn runs the use-case plan with the base data spread over
// 1..n sensors (Table 1: >= 100 sensors per person). Sensor compute
// parallelizes; the shared radio medium does not.
func Figure3FanIn(n int, sensorCounts []int, seed int64) ([]FanInRow, error) {
	sel, err := sqlparser.Parse(UseCaseQuery)
	if err != nil {
		return nil, err
	}
	st := SyntheticDB(n, seed)
	plan, err := fragment.New().Fragment(sel)
	if err != nil {
		return nil, err
	}
	topo := network.DefaultApartment()
	var out []FanInRow
	for _, sc := range sensorCounts {
		stats, err := network.RunFanIn(context.Background(), topo, plan, st, sc)
		if err != nil {
			return nil, err
		}
		out = append(out, FanInRow{Sensors: sc, EgressBytes: stats.EgressBytes, SimTime: stats.SimTime})
	}
	return out, nil
}

// ladderWithout removes the named levels from the default apartment chain.
func ladderWithout(drop ...fragment.Level) *network.Topology {
	def := network.DefaultApartment()
	skip := map[fragment.Level]bool{}
	for _, l := range drop {
		skip[l] = true
	}
	topo := &network.Topology{}
	for _, n := range def.Nodes {
		if n.Level != fragment.LevelCloud && skip[n.Level] {
			continue
		}
		topo.Nodes = append(topo.Nodes, n)
	}
	for i := 0; i+1 < len(topo.Nodes); i++ {
		topo.Links = append(topo.Links, &network.Link{
			From: topo.Nodes[i].Name, To: topo.Nodes[i+1].Name,
			BytesPerMs: 1_250, LatencyMs: 5,
		})
	}
	return topo
}
