package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"paradise/internal/anonymize"
	"paradise/internal/engine"
	"paradise/internal/privmetrics"
	"paradise/internal/recognition"
	"paradise/internal/schema"
	"paradise/internal/sensors"
)

// GoldenPathRow is one privacy-processing variant scored on the *intended*
// analysis: activity recognition against simulation ground truth. The §3.2
// "Golden Path" asks for minimal loss on the intended query and maximal
// loss on unintended ones; this exhibit measures the intended half
// directly as recognition accuracy.
type GoldenPathRow struct {
	Variant string
	// Accuracy is the fraction of samples whose classified activity
	// matches the ground truth.
	Accuracy float64
	// FallDetected: the safety-critical event must survive processing.
	FallDetected bool
	// DDRatio is the paper's utility-cost measure vs the raw release.
	DDRatio float64
}

// GoldenPath generates an apartment trace ending in a fall and scores the
// activity classifier on the raw positions and on several privacy-processed
// variants of them.
func GoldenPath(dur time.Duration, seed int64) ([]GoldenPathRow, error) {
	tr, err := sensors.Generate(sensors.Apartment(dur, true, seed))
	if err != nil {
		return nil, err
	}
	st, err := sensors.BuildStore(tr)
	if err != nil {
		return nil, err
	}
	raw, err := engine.New(st).Query(context.Background(), "SELECT user, x, y, z, t FROM d")
	if err != nil {
		return nil, err
	}

	score := func(variant string, res *engine.Result) (GoldenPathRow, error) {
		row := GoldenPathRow{Variant: variant}
		acts, err := recognition.Annotate(res)
		if err != nil {
			return row, err
		}
		row.Accuracy, err = recognition.Accuracy(tr, res, acts)
		if err != nil {
			return row, err
		}
		for _, a := range acts {
			if a == sensors.ActivityFall {
				row.FallDetected = true
				break
			}
		}
		if len(res.Rows) == len(raw.Rows) {
			row.DDRatio, _ = privmetrics.DirectDistanceRatio(raw.Rows, res.Rows)
		}
		return row, nil
	}

	var out []GoldenPathRow
	add := func(variant string, res *engine.Result) error {
		row, err := score(variant, res)
		if err != nil {
			return fmt.Errorf("golden path %s: %w", variant, err)
		}
		out = append(out, row)
		return nil
	}

	// Baseline: raw positions.
	if err := add("raw", raw); err != nil {
		return nil, err
	}

	// Compression: positions snapped to a 0.5 m grid (the §3.3 operation).
	compressed := &engine.Result{Schema: raw.Schema, Rows: raw.Rows.Clone()}
	for _, r := range compressed.Rows {
		for _, idx := range []int{1, 2} { // x, y
			if r[idx].Type().Numeric() {
				v := r[idx].AsFloat()
				r[idx] = roundTo(v, 0.5)
			}
		}
	}
	if err := add("compression grid=0.5m", compressed); err != nil {
		return nil, err
	}

	// Differential privacy on x, y, z at two budgets.
	for _, eps := range []float64{1.0, 0.1} {
		rng := rand.New(rand.NewSource(seed))
		noisy, err := anonymize.NoisyRows(raw.Schema, raw.Rows, []string{"x", "y", "z"}, 0.5, eps, rng)
		if err != nil {
			return nil, err
		}
		if err := add(fmt.Sprintf("dp eps=%.1f", eps),
			&engine.Result{Schema: raw.Schema, Rows: noisy}); err != nil {
			return nil, err
		}
	}

	// Mondrian k-anonymity over the position quasi-identifiers.
	for _, k := range []int{5, 25} {
		anon, err := anonymize.Mondrian(raw.Schema, raw.Rows, []string{"x", "y"}, k)
		if err != nil {
			return nil, err
		}
		if err := add(fmt.Sprintf("mondrian k=%d", k),
			&engine.Result{Schema: raw.Schema, Rows: anon}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func roundTo(v, grid float64) schema.Value {
	return schema.Float(math.Round(v/grid) * grid)
}
