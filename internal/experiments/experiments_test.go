package experiments

import (
	"testing"
	"time"
)

// These tests double as the shape assertions of EXPERIMENTS.md: every
// exhibit must reproduce the qualitative result the paper claims.

func TestTable1Shapes(t *testing.T) {
	rows, err := Table1(5_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("probes = %d", len(rows))
	}
	// Levels appear in ladder order bottom-up.
	for i := 1; i < len(rows); i++ {
		if rows[i].Level < rows[i-1].Level {
			t.Fatalf("ladder out of order at %d", i)
		}
	}
	for _, r := range rows {
		if r.Elapsed <= 0 {
			t.Fatalf("probe %q has no timing", r.Query)
		}
	}
}

func TestFigure1Shapes(t *testing.T) {
	res, err := Figure1(3, 20*time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRows == 0 || res.WireBytes == 0 {
		t.Fatal("empty trace")
	}
	// UbiSense dominates the row count (100x sampling rate vs ambient).
	max := 0
	for _, n := range res.PerDevice {
		if n > max {
			max = n
		}
	}
	if res.PerDevice["ubisense"] != max {
		t.Fatalf("ubisense should dominate: %v", res.PerDevice)
	}
}

func TestFigure2Shapes(t *testing.T) {
	res, err := Figure2(5_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's implicit claim: rewriting is cheap relative to
	// execution. Give it two orders of magnitude headroom.
	if res.Rewrite > res.Execute {
		t.Fatalf("rewrite %v slower than execution %v", res.Rewrite, res.Execute)
	}
	if res.Parse <= 0 || res.Fragment <= 0 {
		t.Fatal("stages not measured")
	}
}

func TestFigure3Shapes(t *testing.T) {
	rows, err := Figure3([]int{5_000, 20_000}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.FragEgress >= r.NaiveEgress {
			t.Fatalf("n=%d: fragmentation did not reduce egress (%d vs %d)",
				r.Rows, r.FragEgress, r.NaiveEgress)
		}
		if r.Reduction < 10 {
			t.Fatalf("n=%d: reduction %v below an order of magnitude", r.Rows, r.Reduction)
		}
	}
	// Reduction grows with trace size (aggregation output is ~constant).
	if rows[1].Reduction <= rows[0].Reduction {
		t.Fatalf("reduction should grow with size: %v -> %v", rows[0].Reduction, rows[1].Reduction)
	}
}

func TestFigure3LadderShapes(t *testing.T) {
	rows, err := Figure3Ladder(20_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("ladder rows = %d", len(rows))
	}
	// Deeper in-home ladders never increase egress; the no-fragmentation
	// baseline is the worst.
	full, none := rows[0].EgressBytes, rows[3].EgressBytes
	if full > none {
		t.Fatalf("full ladder (%d) worse than no fragmentation (%d)", full, none)
	}
	if rows[2].EgressBytes > none {
		t.Fatal("sensors-only worse than shipping raw")
	}
}

func TestFigure4MatchesPaper(t *testing.T) {
	res, err := Figure4(1_000, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !res.MatchesPaper {
		t.Fatalf("rewrite diverges from the paper: %v", res.Problems)
	}
	if res.RewriteTime <= 0 {
		t.Fatal("rewrite not timed")
	}
}

func TestUseCaseMatchesPaper(t *testing.T) {
	res, err := UseCase(5_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatal("fragmented != monolithic")
	}
	if len(res.Stages) != 4 {
		t.Fatalf("stages = %d", len(res.Stages))
	}
	for _, s := range res.Stages {
		if s.PaperSQL != "" && !s.Match {
			t.Fatalf("stage %d mismatch: %s", s.Stage, s.OurSQL)
		}
	}
}

func TestSec32Shapes(t *testing.T) {
	rows, err := Sec32(2_000, 8)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Sec32Row{}
	for _, r := range rows {
		byKey[r.Method+"/"+r.Param] = r
	}
	// k-anonymity: class size grows with k, risk collapses.
	if byKey["mondrian/k=20"].AvgClass <= byKey["mondrian/k=2"].AvgClass {
		t.Fatal("class size should grow with k")
	}
	if byKey["mondrian/k=20"].AvgClass < 20 {
		t.Fatalf("k=20 class size %v < 20", byKey["mondrian/k=20"].AvgClass)
	}
	for _, k := range []string{"k=2", "k=5", "k=10", "k=20"} {
		r := byKey["mondrian/"+k]
		if r.RiskBefore < 0.9 || r.RiskAfter > 0.01 {
			t.Fatalf("mondrian %s risk %v -> %v", k, r.RiskBefore, r.RiskAfter)
		}
	}
	// DP: noise shrinks with epsilon.
	if byKey["dp/eps=0.1"].KLIntended <= byKey["dp/eps=10.0"].KLIntended {
		t.Fatal("KL should shrink as epsilon grows")
	}
	// Slicing preserves marginals.
	if byKey["slicing/bucket=4"].KLIntended > 1e-6 {
		t.Fatalf("slicing KL = %v, want ~0", byKey["slicing/bucket=4"].KLIntended)
	}
}

func TestAblationShapes(t *testing.T) {
	place, err := AblationConditionPlacement(5_000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if place[0].SensorOut >= place[1].SensorOut {
		t.Fatalf("innermost placement should ship fewer rows from the sensor: %d vs %d",
			place[0].SensorOut, place[1].SensorOut)
	}

	fb, err := AblationWeakNode(5_000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if fb[0].FallbackUsed || !fb[1].FallbackUsed {
		t.Fatal("fallback flags wrong")
	}
	if fb[1].MidLinkBytes <= fb[0].MidLinkBytes {
		t.Fatalf("fallback should ship more raw bytes mid-chain: %d vs %d",
			fb[1].MidLinkBytes, fb[0].MidLinkBytes)
	}
	if fb[0].EgressBytes != fb[1].EgressBytes {
		t.Fatal("egress should be unchanged by the fallback")
	}
}

func TestFigure3FanInShapes(t *testing.T) {
	rows, err := Figure3FanIn(5_000, []int{1, 8, 64}, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Egress is independent of the sensor count (the same d' leaves).
	for _, r := range rows[1:] {
		if r.EgressBytes != rows[0].EgressBytes {
			t.Fatalf("egress varies with sensor count: %d vs %d",
				r.EgressBytes, rows[0].EgressBytes)
		}
	}
	// More sensors never slow the chain down (compute parallelizes, the
	// shared radio stays constant).
	if rows[2].SimTime > rows[0].SimTime {
		t.Fatalf("64 sensors slower than 1: %v vs %v", rows[2].SimTime, rows[0].SimTime)
	}
}

func TestGoldenPathShapes(t *testing.T) {
	rows, err := GoldenPath(40*time.Second, 17)
	if err != nil {
		t.Fatal(err)
	}
	byVariant := map[string]GoldenPathRow{}
	for _, r := range rows {
		byVariant[r.Variant] = r
	}
	raw := byVariant["raw"]
	if raw.Accuracy < 0.7 {
		t.Fatalf("raw accuracy %v too low", raw.Accuracy)
	}
	// Every variant must still detect the fall (the safety-critical
	// intended event).
	for _, r := range rows {
		if !r.FallDetected {
			t.Errorf("%s lost the fall", r.Variant)
		}
		if r.Variant != "raw" && r.Accuracy >= raw.Accuracy {
			t.Errorf("%s should cost some accuracy (%v vs raw %v)",
				r.Variant, r.Accuracy, raw.Accuracy)
		}
	}
	// Stronger privacy costs more accuracy.
	if byVariant["dp eps=0.1"].Accuracy >= byVariant["dp eps=1.0"].Accuracy {
		t.Fatal("smaller epsilon should cost more accuracy")
	}
	if byVariant["mondrian k=25"].Accuracy >= byVariant["mondrian k=5"].Accuracy {
		t.Fatal("larger k should cost more accuracy")
	}
}

func TestOpenProblemShapes(t *testing.T) {
	rows, err := OpenProblem(2_000, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		switch r.Intent {
		case "intended":
			if !r.Answerable {
				t.Errorf("intended query blocked: %s (%s)", r.Query, r.Reason)
			}
		case "violating":
			if r.Answerable {
				t.Errorf("violating query survives: %s", r.Query)
			}
		default:
			t.Fatalf("bad intent %q", r.Intent)
		}
	}
}

func TestSyntheticDBDeterministic(t *testing.T) {
	a := SyntheticDB(100, 42)
	b := SyntheticDB(100, 42)
	ra, _ := a.Table("d")
	rb, _ := b.Table("d")
	sa, sb := ra.Snapshot(), rb.Snapshot()
	for i := range sa {
		for j := range sa[i] {
			if !sa[i][j].Identical(sb[i][j]) {
				t.Fatal("SyntheticDB not deterministic")
			}
		}
	}
}
