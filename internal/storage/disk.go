package storage

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"

	"math"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"paradise/internal/schema"
)

// DiskBackend is the append-only on-disk segment store: one file per
// sealed segment, written once and never modified. The layout keeps the
// hot path lazy and the recovery path footer-only:
//
//	<dir>/<table>/seg-000000.seg
//	┌──────────┬──────────────┬─────────────┬───────────────────────────┐
//	│ magic 8B │ col regions… │ JSON footer │ footerLen u32 · crc32 u32 │
//	│          │   (binary)   │             │ · magic 8B                │
//	└──────────┴──────────────┴─────────────┴───────────────────────────┘
//
// The footer carries everything but the rows: schema (names and types),
// zone maps, seal-time histograms, KMV sketches, and per-column region
// offsets with CRCs. Recovery therefore reads only trailers and footers —
// statistics and pruning state come back exactly without decoding one
// column — and scans decode individual columns on demand through a
// ReaderAt, so only the columns a query touches are ever read.
//
// Durability: segments are written to a temp file, fsynced, renamed into
// place, and the directory fsynced. RecoverAll admits only the contiguous
// valid prefix seg-0..seg-k; a torn or missing file truncates recovery
// there and deletes the remainder, which is exactly the
// last-sealed-segment semantics Append promises.
type DiskBackend struct {
	dir string
}

// NewDiskBackend opens (creating if needed) a segment directory.
func NewDiskBackend(dir string) (*DiskBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: open segment dir: %w", err)
	}
	return &DiskBackend{dir: dir}, nil
}

const segMagic = "PDISESG1"

var errSegCorrupt = errors.New("storage: corrupt segment file")

// diskFooter is the JSON footer of one segment file. Floats travel as IEEE
// bit patterns (JSON cannot carry NaN/Inf) and zone-map strings as []byte
// (JSON mangles invalid UTF-8, and pruning bounds must round-trip exactly).
type diskFooter struct {
	Table string     `json:"table"`
	Rows  int        `json:"rows"`
	Wire  int        `json:"wire"`
	Cols  []diskCol  `json:"cols"`
	Zone  []diskZone `json:"zone"`
}

type diskCol struct {
	Name string `json:"name"`
	Type int    `json:"type"`
	// Off/Len locate the column's binary region; Crc is its CRC32
	// (Castagnoli), verified at decode time.
	Off int64  `json:"off"`
	Len int64  `json:"len"`
	Crc uint32 `json:"crc"`
	// Hist is the seal-time equi-width histogram (bit-pattern bounds).
	Hist *diskHist `json:"hist,omitempty"`
	// Sketch is the column's KMV NDV sketch.
	Sketch []uint64 `json:"sketch,omitempty"`
}

type diskHist struct {
	Min    uint64  `json:"min"`
	Max    uint64  `json:"max"`
	Counts []int64 `json:"counts"`
}

type diskZone struct {
	Rows, Nulls, NaNs                        int64
	HasNum                                   bool
	NumMin, NumMax                           uint64
	HasStr                                   bool
	StrMin, StrMax                           []byte
	Ints, Floats, Strs, Bools, Times, Others int64
	Bytes                                    int64
}

func zoneToDisk(z ZoneEntry) diskZone {
	return diskZone{
		Rows: z.Rows, Nulls: z.Nulls, NaNs: z.NaNs,
		HasNum: z.HasNum, NumMin: math.Float64bits(z.NumMin), NumMax: math.Float64bits(z.NumMax),
		HasStr: z.HasStr, StrMin: []byte(z.StrMin), StrMax: []byte(z.StrMax),
		Ints: z.Ints, Floats: z.Floats, Strs: z.Strs, Bools: z.Bools, Times: z.Times, Others: z.Others,
		Bytes: z.Bytes,
	}
}

func zoneFromDisk(d diskZone) ZoneEntry {
	return ZoneEntry{
		Rows: d.Rows, Nulls: d.Nulls, NaNs: d.NaNs,
		HasNum: d.HasNum, NumMin: math.Float64frombits(d.NumMin), NumMax: math.Float64frombits(d.NumMax),
		HasStr: d.HasStr, StrMin: string(d.StrMin), StrMax: string(d.StrMax),
		Ints: d.Ints, Floats: d.Floats, Strs: d.Strs, Bools: d.Bools, Times: d.Times, Others: d.Others,
		Bytes: d.Bytes,
	}
}

func histToDisk(h *Histogram) *diskHist {
	if h == nil {
		return nil
	}
	return &diskHist{
		Min:    math.Float64bits(h.Min),
		Max:    math.Float64bits(h.Max),
		Counts: append([]int64(nil), h.Counts...),
	}
}

func histFromDisk(d *diskHist) *Histogram {
	if d == nil {
		return nil
	}
	return &Histogram{
		Min:    math.Float64frombits(d.Min),
		Max:    math.Float64frombits(d.Max),
		Counts: append([]int64(nil), d.Counts...),
	}
}

// tableDir maps a table name to its directory, escaping anything the
// filesystem would choke on. Case-insensitive like the store's catalog.
func (b *DiskBackend) tableDir(table string) string {
	return filepath.Join(b.dir, url.PathEscape(strings.ToLower(table)))
}

func segFileName(seq int) string { return fmt.Sprintf("seg-%06d.seg", seq) }

// Seal writes one segment file durably and returns its lazy handle.
func (b *DiskBackend) Seal(table string, seq int, seg *SealedSegment) (SegmentData, error) {
	dir := b.tableDir(table)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	footer := diskFooter{
		Table: seg.Rel.Name,
		Rows:  seg.Rows,
		Wire:  seg.Wire,
		Cols:  make([]diskCol, len(seg.Cols)),
		Zone:  make([]diskZone, len(seg.Zone)),
	}
	for i, z := range seg.Zone {
		footer.Zone[i] = zoneToDisk(z)
	}

	var buf []byte
	buf = append(buf, segMagic...)
	for i := range seg.Cols {
		region := encodeColVec(nil, &seg.Cols[i], seg.Rows)
		dc := &footer.Cols[i]
		dc.Name = seg.Rel.Columns[i].Name
		dc.Type = int(seg.Rel.Columns[i].Type)
		dc.Off = int64(len(buf))
		dc.Len = int64(len(region))
		dc.Crc = crc32.Checksum(region, crcTable)
		if i < len(seg.Hists) {
			dc.Hist = histToDisk(seg.Hists[i])
		}
		if i < len(seg.Sketches) {
			dc.Sketch = seg.Sketches[i]
		}
		buf = append(buf, region...)
	}
	fj, err := json.Marshal(&footer)
	if err != nil {
		return nil, err
	}
	buf = append(buf, fj...)
	var trailer [16]byte
	binary.LittleEndian.PutUint32(trailer[0:], uint32(len(fj)))
	binary.LittleEndian.PutUint32(trailer[4:], crc32.Checksum(fj, crcTable))
	copy(trailer[8:], segMagic)
	buf = append(buf, trailer[:]...)

	path := filepath.Join(dir, segFileName(seq))
	if err := writeDurably(path, buf); err != nil {
		return nil, err
	}
	return &diskSegData{path: path, footer: &footer}, nil
}

// writeDurably writes a file via tmp + fsync + rename + dir fsync, so a
// crash leaves either no file or a complete one at the final name.
func writeDurably(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Drop removes every sealed segment of the table.
func (b *DiskBackend) Drop(table string) error {
	return os.RemoveAll(b.tableDir(table))
}

// RecoverAll scans the directory for previously sealed tables and returns
// each one's valid contiguous segment prefix, discarding (and deleting)
// anything after the first missing or invalid file — the clean-truncation
// guarantee after a mid-write crash.
func (b *DiskBackend) RecoverAll() ([]*RecoveredTable, error) {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []*RecoveredTable
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		rt, err := b.recoverTable(filepath.Join(b.dir, e.Name()))
		if err != nil {
			return nil, err
		}
		if rt != nil {
			out = append(out, rt)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rel.Name < out[j].Rel.Name })
	return out, nil
}

func (b *DiskBackend) recoverTable(dir string) (*RecoveredTable, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make(map[string]bool, len(entries))
	for _, e := range entries {
		n := e.Name()
		if strings.HasSuffix(n, ".tmp") {
			// A torn write that never reached rename: always garbage.
			os.Remove(filepath.Join(dir, n))
			continue
		}
		names[n] = true
	}
	var rt *RecoveredTable
	seq := 0
	for ; names[segFileName(seq)]; seq++ {
		path := filepath.Join(dir, segFileName(seq))
		footer, err := readFooter(path)
		if err != nil {
			if errors.Is(err, errSegCorrupt) {
				break // truncate recovery at the first torn segment
			}
			return nil, err
		}
		rel := relFromFooter(footer)
		if rt == nil {
			rt = &RecoveredTable{Rel: rel}
		} else if !sameRel(rt.Rel, rel) {
			break // schema drift across segments: trust the earlier prefix
		}
		seg := &RecoveredSegment{
			Rows:     footer.Rows,
			Wire:     footer.Wire,
			Zone:     make([]ZoneEntry, len(footer.Zone)),
			Hists:    make([]*Histogram, len(footer.Cols)),
			Sketches: make([][]uint64, len(footer.Cols)),
			Data:     &diskSegData{path: path, footer: footer},
		}
		for i, z := range footer.Zone {
			seg.Zone[i] = zoneFromDisk(z)
		}
		for i := range footer.Cols {
			seg.Hists[i] = histFromDisk(footer.Cols[i].Hist)
			seg.Sketches[i] = footer.Cols[i].Sketch
		}
		rt.Segments = append(rt.Segments, seg)
	}
	// Everything at or after the truncation point is unreachable: delete it
	// so a later seal at that seq can never be shadowed by stale data.
	for n := range names {
		if !strings.HasPrefix(n, "seg-") || !strings.HasSuffix(n, ".seg") {
			continue
		}
		var k int
		if _, err := fmt.Sscanf(n, "seg-%06d.seg", &k); err == nil && k >= seq {
			os.Remove(filepath.Join(dir, n))
		}
	}
	if rt == nil {
		os.Remove(dir) // best-effort: an empty table dir carries no state
		return nil, nil
	}
	return rt, nil
}

func relFromFooter(f *diskFooter) *schema.Relation {
	rel := &schema.Relation{Name: f.Table, Columns: make([]schema.Column, len(f.Cols))}
	for i, c := range f.Cols {
		rel.Columns[i] = schema.Column{Name: c.Name, Type: schema.Type(c.Type)}
	}
	return rel
}

func sameRel(a, b *schema.Relation) bool {
	if !strings.EqualFold(a.Name, b.Name) || len(a.Columns) != len(b.Columns) {
		return false
	}
	for i := range a.Columns {
		if !strings.EqualFold(a.Columns[i].Name, b.Columns[i].Name) || a.Columns[i].Type != b.Columns[i].Type {
			return false
		}
	}
	return true
}

// readFooter validates a segment file's framing (magics, trailer, footer
// CRC, region bounds) and parses the footer. Structural damage returns
// errSegCorrupt; I/O failure returns the underlying error.
func readFooter(path string) (*diskFooter, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < int64(len(segMagic))+16 {
		return nil, fmt.Errorf("%w: %s: too short", errSegCorrupt, path)
	}
	var head [8]byte
	if _, err := f.ReadAt(head[:], 0); err != nil {
		return nil, err
	}
	if string(head[:]) != segMagic {
		return nil, fmt.Errorf("%w: %s: bad header magic", errSegCorrupt, path)
	}
	var trailer [16]byte
	if _, err := f.ReadAt(trailer[:], size-16); err != nil {
		return nil, err
	}
	if string(trailer[8:]) != segMagic {
		return nil, fmt.Errorf("%w: %s: bad trailer magic", errSegCorrupt, path)
	}
	flen := int64(binary.LittleEndian.Uint32(trailer[0:]))
	fcrc := binary.LittleEndian.Uint32(trailer[4:])
	if flen <= 0 || flen > size-16-int64(len(segMagic)) {
		return nil, fmt.Errorf("%w: %s: bad footer length", errSegCorrupt, path)
	}
	fj := make([]byte, flen)
	if _, err := f.ReadAt(fj, size-16-flen); err != nil {
		return nil, err
	}
	if crc32.Checksum(fj, crcTable) != fcrc {
		return nil, fmt.Errorf("%w: %s: footer checksum mismatch", errSegCorrupt, path)
	}
	var footer diskFooter
	if err := json.Unmarshal(fj, &footer); err != nil {
		return nil, fmt.Errorf("%w: %s: footer: %v", errSegCorrupt, path, err)
	}
	if footer.Rows < 0 || len(footer.Zone) != len(footer.Cols) {
		return nil, fmt.Errorf("%w: %s: inconsistent footer", errSegCorrupt, path)
	}
	for _, c := range footer.Cols {
		if c.Off < int64(len(segMagic)) || c.Len < 0 || c.Off+c.Len > size-16-flen {
			return nil, fmt.Errorf("%w: %s: column region out of bounds", errSegCorrupt, path)
		}
	}
	return &footer, nil
}

// diskSegData lazily decodes one on-disk segment. Load opens the file per
// call (concurrent Loads never share state), reads only the requested
// column regions and verifies each against its footer CRC.
type diskSegData struct {
	path   string
	footer *diskFooter
}

func (d *diskSegData) Load(cols []int) ([]schema.ColVec, error) {
	if cols == nil {
		cols = make([]int, len(d.footer.Cols))
		for i := range cols {
			cols[i] = i
		}
	}
	f, err := os.Open(d.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make([]schema.ColVec, len(cols))
	for k, c := range cols {
		if c < 0 || c >= len(d.footer.Cols) {
			return nil, fmt.Errorf("%w: %s: column %d out of range", errSegCorrupt, d.path, c)
		}
		meta := d.footer.Cols[c]
		region := make([]byte, meta.Len)
		if _, err := f.ReadAt(region, meta.Off); err != nil {
			return nil, err
		}
		if crc32.Checksum(region, crcTable) != meta.Crc {
			return nil, fmt.Errorf("%w: %s: column %q checksum mismatch", errSegCorrupt, d.path, meta.Name)
		}
		v, err := decodeColVec(region, schema.Type(meta.Type), d.footer.Rows)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: column %q: %v", errSegCorrupt, d.path, meta.Name, err)
		}
		out[k] = v
	}
	return out, nil
}

// Column region encoding: one layout byte, then the payload.
//
//	layout 0: typed dense    — payload only
//	layout 1: typed + nulls  — n null bytes, then payload
//	layout 2: boxed          — n tagged values
//
// Payloads are fixed-width little-endian for ints/floats/bools/times
// (times as UnixNano; the wall clock is what group keys and comparisons
// use, so dropping the monotonic reading is lossless here) and
// uvarint-length-prefixed bytes for strings. Floats round-trip by bit
// pattern, NaNs included.
const (
	colDense byte = 0
	colNulls byte = 1
	colBoxed byte = 2
)

func encodeColVec(dst []byte, v *schema.ColVec, n int) []byte {
	if v.Boxed() {
		dst = append(dst, colBoxed)
		for i := 0; i < n; i++ {
			dst = encodeValue(dst, v.Box[i])
		}
		return dst
	}
	if v.Nulls != nil {
		dst = append(dst, colNulls)
		for i := 0; i < n; i++ {
			if v.Nulls[i] {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		}
	} else {
		dst = append(dst, colDense)
	}
	switch v.Typ {
	case schema.TypeBool:
		for i := 0; i < n; i++ {
			if v.Bools[i] {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		}
	case schema.TypeInt:
		for i := 0; i < n; i++ {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v.Ints[i]))
		}
	case schema.TypeFloat:
		for i := 0; i < n; i++ {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Floats[i]))
		}
	case schema.TypeString:
		for i := 0; i < n; i++ {
			dst = binary.AppendUvarint(dst, uint64(len(v.Strs[i])))
			dst = append(dst, v.Strs[i]...)
		}
	case schema.TypeTime:
		for i := 0; i < n; i++ {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v.Times[i].UnixNano()))
		}
	}
	return dst
}

func decodeColVec(src []byte, typ schema.Type, n int) (schema.ColVec, error) {
	if len(src) < 1 {
		return schema.ColVec{}, errors.New("empty region")
	}
	layout := src[0]
	src = src[1:]
	v := schema.NewColVec(typ)
	if layout == colBoxed {
		box := make([]schema.Value, n)
		for i := 0; i < n; i++ {
			var err error
			box[i], src, err = decodeValue(src)
			if err != nil {
				return schema.ColVec{}, err
			}
		}
		v.Box = box
		return v, nil
	}
	var nulls []bool
	if layout == colNulls {
		if len(src) < n {
			return schema.ColVec{}, errors.New("truncated null mask")
		}
		nulls = make([]bool, n)
		for i := range nulls {
			nulls[i] = src[i] != 0
		}
		src = src[n:]
	} else if layout != colDense {
		return schema.ColVec{}, fmt.Errorf("unknown layout %d", layout)
	}
	v.Nulls = nulls
	switch typ {
	case schema.TypeBool:
		if len(src) < n {
			return schema.ColVec{}, errors.New("truncated bool payload")
		}
		v.Bools = make([]bool, n)
		for i := range v.Bools {
			v.Bools[i] = src[i] != 0
		}
	case schema.TypeInt:
		if len(src) < 8*n {
			return schema.ColVec{}, errors.New("truncated int payload")
		}
		v.Ints = make([]int64, n)
		for i := range v.Ints {
			v.Ints[i] = int64(binary.LittleEndian.Uint64(src[8*i:]))
		}
	case schema.TypeFloat:
		if len(src) < 8*n {
			return schema.ColVec{}, errors.New("truncated float payload")
		}
		v.Floats = make([]float64, n)
		for i := range v.Floats {
			v.Floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
		}
	case schema.TypeString:
		v.Strs = make([]string, n)
		for i := range v.Strs {
			l, k := binary.Uvarint(src)
			if k <= 0 || uint64(len(src)-k) < l {
				return schema.ColVec{}, errors.New("truncated string payload")
			}
			v.Strs[i] = string(src[k : k+int(l)])
			src = src[k+int(l):]
		}
	case schema.TypeTime:
		if len(src) < 8*n {
			return schema.ColVec{}, errors.New("truncated time payload")
		}
		v.Times = make([]time.Time, n)
		for i := range v.Times {
			ns := int64(binary.LittleEndian.Uint64(src[8*i:]))
			v.Times[i] = time.Unix(0, ns).UTC()
		}
	default:
		return schema.ColVec{}, fmt.Errorf("undecodable declared type %v", typ)
	}
	return v, nil
}

// Boxed values are tagged: one type byte, then the value's payload in the
// same encodings as typed columns. Tag 0 is NULL.
func encodeValue(dst []byte, val schema.Value) []byte {
	t := val.Type()
	dst = append(dst, byte(t))
	switch t {
	case schema.TypeNull:
	case schema.TypeBool:
		if val.AsBool() {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case schema.TypeInt:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(val.AsInt()))
	case schema.TypeFloat:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(val.AsFloat()))
	case schema.TypeString:
		dst = binary.AppendUvarint(dst, uint64(len(val.AsString())))
		dst = append(dst, val.AsString()...)
	case schema.TypeTime:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(val.AsTime().UnixNano()))
	}
	return dst
}

func decodeValue(src []byte) (schema.Value, []byte, error) {
	if len(src) < 1 {
		return schema.Value{}, nil, errors.New("truncated boxed value")
	}
	t := schema.Type(src[0])
	src = src[1:]
	switch t {
	case schema.TypeNull:
		return schema.Value{}, src, nil
	case schema.TypeBool:
		if len(src) < 1 {
			return schema.Value{}, nil, errors.New("truncated boxed bool")
		}
		return schema.Bool(src[0] != 0), src[1:], nil
	case schema.TypeInt:
		if len(src) < 8 {
			return schema.Value{}, nil, errors.New("truncated boxed int")
		}
		return schema.Int(int64(binary.LittleEndian.Uint64(src))), src[8:], nil
	case schema.TypeFloat:
		if len(src) < 8 {
			return schema.Value{}, nil, errors.New("truncated boxed float")
		}
		return schema.Float(math.Float64frombits(binary.LittleEndian.Uint64(src))), src[8:], nil
	case schema.TypeString:
		l, k := binary.Uvarint(src)
		if k <= 0 || uint64(len(src)-k) < l {
			return schema.Value{}, nil, errors.New("truncated boxed string")
		}
		return schema.String(string(src[k : k+int(l)])), src[k+int(l):], nil
	case schema.TypeTime:
		if len(src) < 8 {
			return schema.Value{}, nil, errors.New("truncated boxed time")
		}
		ns := int64(binary.LittleEndian.Uint64(src))
		return schema.Time(time.Unix(0, ns).UTC()), src[8:], nil
	}
	return schema.Value{}, nil, fmt.Errorf("unknown boxed tag %d", t)
}
