package storage

import (
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"paradise/internal/schema"
)

// ErrNoTable is returned when a referenced table does not exist.
var ErrNoTable = errors.New("storage: no such table")

// ErrArity is returned when a row's width does not match the table schema.
var ErrArity = errors.New("storage: row arity mismatch")

// Config tunes a Store's tables.
type Config struct {
	// SegmentRows is the seal threshold: the active tail is sealed into an
	// immutable segment once it reaches this many rows. <= 0 selects
	// DefaultSegmentRows.
	SegmentRows int
	// Backend, when set, persists sealed segments (the tail stays in
	// memory until sealed). nil keeps sealed segments in memory.
	Backend Backend
	// DisablePruning turns zone-map segment pruning off — every scan
	// touches every segment. For A/B measurement only; results are
	// identical either way (pinned by the equivalence suites).
	DisablePruning bool
}

func (c Config) segRows() int {
	if c.SegmentRows <= 0 {
		return DefaultSegmentRows
	}
	return c.SegmentRows
}

// Table is an append-only relation stored as a sequence of immutable
// sealed segments plus one mutable active tail, all column-major (one
// typed vector per column, see schema.ColVec). Columnar storage serves the
// engine's vectorized scan path directly — pruned columns are never
// materialized, kernels loop over unboxed payload slices — while row-major
// consumers get their rows by pivoting at the batch boundary.
//
// Each sealed segment carries a zone map (per-column min/max, null count,
// NaN count, type census — see segment.go) consulted by every scan path:
// a scan with a structured predicate (schema.Scan.Predicate) skips whole
// segments the zone maps prove matchless before materializing a single
// batch. With a persistent Backend, sealed segments live on disk and are
// decoded lazily per scan, so tables larger than RAM scan fine and a
// restart recovers the sealed prefix without re-ingest.
//
// Alongside the tail vectors the table mirrors tail rows in row-major
// form, as do in-memory sealed segments. The mirror is the pivot-elision
// cache: full-width windows attach it as the batch View (see
// schema.ColBatch), so serving rows costs one reference per row instead of
// re-materializing wide Value structs. Both layouts share nothing mutable,
// since rows and vector elements are immutable once appended.
type Table struct {
	mu     sync.RWMutex
	schema *schema.Relation
	cfg    Config

	// Sealed, immutable segments in append order.
	sealed     []*segment
	sealedRows int
	sealedWire int

	// The active tail: mutable under mu, vectors append-only so windows
	// handed to scans stay valid after unlock.
	cols     []schema.ColVec
	rows     schema.Rows
	tailRows int
	tailWire int

	nrows int
	// wire caches the cumulative serialized size of rows, maintained on
	// Append/Truncate so WireSize is O(1). Stored values are immutable, so
	// the cache can never go stale.
	wire int

	// stats holds the table-lifetime statistics accumulators (NDV sketch,
	// min/max, null count — see stats.go); segStats the segment-local ones
	// reset at every seal, whose snapshot becomes the seal's zone map.
	stats    []colStat
	segStats []colStat

	// Pruning-effectiveness counters, exposed via Store.StorageStats.
	segsScanned atomic.Int64 // segments admitted by (or exempt from) pruning
	segsSkipped atomic.Int64 // segments skipped by zone maps
	segsOpened  atomic.Int64 // segments actually materialized by a scan
}

// NewTable creates an empty table with the given schema and default
// configuration (in-memory, DefaultSegmentRows).
func NewTable(rel *schema.Relation) *Table {
	return newTableWith(rel, Config{})
}

func newTableWith(rel *schema.Relation, cfg Config) *Table {
	t := &Table{
		schema:   rel,
		cfg:      cfg,
		cols:     make([]schema.ColVec, rel.Arity()),
		stats:    make([]colStat, rel.Arity()),
		segStats: make([]colStat, rel.Arity()),
	}
	for i := range t.cols {
		t.cols[i] = schema.NewColVec(rel.Columns[i].Type)
	}
	return t
}

// Schema returns the table schema. The returned value must not be mutated.
func (t *Table) Schema() *schema.Relation { return t.schema }

// Append adds rows, validating arity. Values are copied into the column
// vectors, so the caller keeps ownership of its row slices. Whenever the
// tail reaches the configured segment size it is sealed — with a
// persistent backend that write is durable before Append returns.
func (t *Table) Append(rows ...schema.Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var keyBuf []byte
	for _, r := range rows {
		if len(r) != t.schema.Arity() {
			return fmt.Errorf("%w: table %s has %d columns, row has %d",
				ErrArity, t.schema.Name, t.schema.Arity(), len(r))
		}
		for i := range t.cols {
			t.cols[i].Append(r[i])
			keyBuf = t.foldValue(i, r[i], keyBuf)
		}
		t.rows = append(t.rows, r.Clone())
		t.tailRows++
		t.nrows++
		w := r.WireSize()
		t.tailWire += w
		t.wire += w
		if t.tailRows >= t.cfg.segRows() {
			if err := t.sealLocked(); err != nil {
				return err
			}
		}
	}
	return nil
}

// foldValue folds one appended value into both the table-lifetime and the
// segment-local accumulator, hashing its canonical group key once.
func (t *Table) foldValue(i int, v schema.Value, keyBuf []byte) []byte {
	if v.IsNull() {
		t.stats[i].foldNull(v)
		t.segStats[i].foldNull(v)
		return keyBuf
	}
	keyBuf = v.AppendGroupKey(keyBuf[:0])
	h := fnv64a(keyBuf)
	t.stats[i].fold(v, h)
	t.segStats[i].fold(v, h)
	return keyBuf
}

// sealLocked turns the current tail into an immutable sealed segment:
// zone map and histogram from the segment-local accumulators, then either
// an in-memory segment (keeping vectors and row mirror) or a durable
// backend write (dropping both). Caller holds the write lock.
func (t *Table) sealLocked() error {
	n := t.tailRows
	if n == 0 {
		return nil
	}
	arity := t.schema.Arity()
	seg := &segment{
		rows: n,
		wire: t.tailWire,
		zone: make([]ZoneEntry, arity),
		hist: make([]*Histogram, arity),
	}
	for i := range seg.zone {
		seg.zone[i] = zoneEntryOf(&t.segStats[i], int64(n))
		seg.hist[i] = buildHist(&t.cols[i], n, seg.zone[i])
	}
	if t.cfg.Backend != nil {
		sketches := make([][]uint64, arity)
		for i := range sketches {
			sketches[i] = t.segStats[i].sketch()
		}
		data, err := t.cfg.Backend.Seal(t.schema.Name, len(t.sealed), &SealedSegment{
			Rows:     n,
			Wire:     t.tailWire,
			Rel:      t.schema,
			Cols:     t.cols,
			Zone:     seg.zone,
			Hists:    seg.hist,
			Sketches: sketches,
		})
		if err != nil {
			return fmt.Errorf("storage: seal %s segment %d: %w", t.schema.Name, len(t.sealed), err)
		}
		seg.data = data
	} else {
		seg.mem = &segMem{cols: t.cols, view: t.rows}
	}
	t.sealed = append(t.sealed, seg)
	t.sealedRows += n
	t.sealedWire += t.tailWire

	// Fresh tail.
	t.cols = make([]schema.ColVec, arity)
	for i := range t.cols {
		t.cols[i] = schema.NewColVec(t.schema.Columns[i].Type)
	}
	t.rows = nil
	t.tailRows = 0
	t.tailWire = 0
	for i := range t.segStats {
		t.segStats[i].reset()
	}
	return nil
}

// attachRecovered installs a backend-recovered segment sequence (called
// once, before the table is shared).
func (t *Table) attachRecovered(segs []*RecoveredSegment) {
	for _, r := range segs {
		seg := &segment{rows: r.Rows, wire: r.Wire, zone: r.Zone, hist: r.Hists, data: r.Data}
		t.sealed = append(t.sealed, seg)
		t.sealedRows += r.Rows
		t.sealedWire += r.Wire
		t.nrows += r.Rows
		t.wire += r.Wire
		for i := range t.stats {
			var sk []uint64
			if i < len(r.Sketches) {
				sk = r.Sketches[i]
			}
			if i < len(r.Zone) {
				t.stats[i].restore(r.Zone[i], sk)
			}
		}
	}
}

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nrows
}

// scanPart is one segment (or the tail) of a scan snapshot. The batch is
// resolved on first open — for on-disk segments that is the lazy column
// decode; for in-memory parts it is a header-only window. open is safe for
// concurrent callers (morsel workers share parts).
type scanPart struct {
	nrows int
	once  sync.Once
	get   func() (*schema.ColBatch, error)
	batch *schema.ColBatch
	err   error
}

func (p *scanPart) open() (*schema.ColBatch, error) {
	p.once.Do(func() { p.batch, p.err = p.get() })
	return p.batch, p.err
}

// tableSnap is a scan's view of the table: the projected relation and the
// parts (post-pruning) in row order. Parts alias append-only storage, so a
// snapshot stays valid after the table lock is released; Truncate replaces
// storage wholesale and never mutates it.
type tableSnap struct {
	rel   *schema.Relation
	parts []*scanPart
	total int
}

// snapshotScan builds a scan snapshot over the selected columns (nil cols
// keeps every column), consulting zone maps with the structured predicate
// to skip segments. Pruning follows the soundness rule in segment.go; with
// no predicate (or pruning disabled) every part is admitted.
func (t *Table) snapshotScan(cols []int, preds []schema.ColPred) *tableSnap {
	t.mu.RLock()
	defer t.mu.RUnlock()
	prune := len(preds) > 0 && !t.cfg.DisablePruning
	snap := &tableSnap{rel: t.schema.Project(cols)}
	var skipped, scanned int64
	for _, seg := range t.sealed {
		if prune && zonePrune(preds, seg.zone) {
			skipped++
			continue
		}
		scanned++
		snap.parts = append(snap.parts, t.segPart(seg, cols))
		snap.total += seg.rows
	}
	if t.tailRows > 0 {
		admit := true
		if prune {
			zone := make([]ZoneEntry, len(t.segStats))
			for i := range t.segStats {
				zone[i] = zoneEntryOf(&t.segStats[i], int64(t.tailRows))
			}
			admit = !zonePrune(preds, zone)
		}
		if admit {
			scanned++
			snap.parts = append(snap.parts, t.tailPartLocked(cols))
			snap.total += t.tailRows
		} else {
			skipped++
		}
	}
	t.segsSkipped.Add(skipped)
	t.segsScanned.Add(scanned)
	return snap
}

// segPart wraps one sealed segment as a scan part.
func (t *Table) segPart(seg *segment, cols []int) *scanPart {
	rel := t.schema.Project(cols)
	n := seg.rows
	p := &scanPart{nrows: n}
	if seg.mem != nil {
		mem := seg.mem
		p.get = func() (*schema.ColBatch, error) {
			t.segsOpened.Add(1)
			return projectBatch(rel, mem.cols, mem.view, n, cols), nil
		}
		return p
	}
	data := seg.data
	p.get = func() (*schema.ColBatch, error) {
		t.segsOpened.Add(1)
		vecs, err := data.Load(cols)
		if err != nil {
			return nil, err
		}
		return &schema.ColBatch{Rel: rel, Vecs: vecs, N: n}, nil
	}
	return p
}

// tailPartLocked windows the active tail. The windows are taken here,
// under the lock, over exactly the rows present now: the snapshot is
// unaffected by later appends. Caller holds at least a read lock.
func (t *Table) tailPartLocked(cols []int) *scanPart {
	rel := t.schema.Project(cols)
	n := t.tailRows
	vecs := make([]schema.ColVec, rel.Arity())
	var view schema.Rows
	if cols == nil {
		for i := range t.cols {
			vecs[i] = t.cols[i].Window(0, n)
		}
		// Full width in storage order: the row mirror aligns with the
		// vectors, so consumers can gather references instead of pivoting.
		view = t.rows[:n]
	} else {
		for k, c := range cols {
			vecs[k] = t.cols[c].Window(0, n)
		}
	}
	p := &scanPart{nrows: n}
	p.get = func() (*schema.ColBatch, error) {
		t.segsOpened.Add(1)
		return &schema.ColBatch{Rel: rel, Vecs: vecs, N: n, View: view}, nil
	}
	return p
}

// projectBatch builds a batch over fully materialized segment columns,
// applying the projection (nil cols = full width, row view attached).
func projectBatch(rel *schema.Relation, src []schema.ColVec, view schema.Rows, n int, cols []int) *schema.ColBatch {
	if cols == nil {
		return &schema.ColBatch{Rel: rel, Vecs: src, N: n, View: view}
	}
	vecs := make([]schema.ColVec, len(cols))
	for k, c := range cols {
		vecs[k] = src[c]
	}
	return &schema.ColBatch{Rel: rel, Vecs: vecs, N: n}
}

// windowBatch cuts rows [lo, hi) out of a part's batch. No lock: the batch
// aliases immutable (sealed or append-only) storage.
func windowBatch(b *schema.ColBatch, lo, hi int) *schema.ColBatch {
	vecs := make([]schema.ColVec, len(b.Vecs))
	for i := range vecs {
		vecs[i] = b.Vecs[i].Window(lo, hi)
	}
	var view schema.Rows
	if b.View != nil {
		view = b.View[lo:hi]
	}
	return &schema.ColBatch{Rel: b.Rel, Vecs: vecs, N: hi - lo, View: view}
}

// Snapshot returns a stable row-major copy of the table (a full pivot).
func (t *Table) Snapshot() schema.Rows {
	snap := t.snapshotScan(nil, nil)
	out := make(schema.Rows, 0, snap.total)
	for _, p := range snap.parts {
		b, err := p.open()
		if err != nil {
			// Snapshot has no error surface; scans do. A backend segment
			// that fails to decode yields its rows as absent here and the
			// error on every scan path.
			continue
		}
		out = append(out, b.Rows()...)
	}
	return out
}

// Scan opens an incremental batch scan over the table with the given
// projection and predicate pushed down. Unlike Snapshot, a scan never
// pivots the whole table: each pull windows one batch of a part's column
// vectors and pivots it to rows. Segments whose zone maps prove the scan's
// structured predicate (sc.Predicate) matchless are skipped outright —
// never opened, never decoded. When the scan has no row filter, the
// projection is applied at the pivot, so pruned columns are never
// materialized at all; a predicate needs the full-width row, so filtering
// scans pivot full width and project afterwards. The scan sees the rows
// present at open; later appends are not observed.
//
// The scan is bound to ctx: cancellation is checked on every pull, so a
// cancelled query stops reading the table within one batch.
func (t *Table) Scan(ctx context.Context, sc schema.Scan) schema.RowIterator {
	batch := sc.BatchSize
	if batch <= 0 {
		batch = schema.DefaultBatchSize
	}
	if sc.Filter == nil {
		snap := t.snapshotScan(sc.Columns, sc.Predicate)
		return schema.WithContext(ctx, &tableScan{cur: partCursor{snap: snap, batch: batch}})
	}
	snap := t.snapshotScan(nil, sc.Predicate)
	return schema.FilterProject(
		schema.WithContext(ctx, &tableScan{cur: partCursor{snap: snap, batch: batch}}), sc)
}

// ScanColumns opens a columnar scan serving zero-copy windows of the
// selected columns (sc.Columns nil keeps all), skipping segments via
// sc.Predicate. This is the engine's vectorized fast path: no rows are
// built, kernels consume the vectors directly.
func (t *Table) ScanColumns(ctx context.Context, sc schema.ColScan) schema.ColIterator {
	batch := sc.BatchSize
	if batch <= 0 {
		batch = schema.DefaultBatchSize
	}
	snap := t.snapshotScan(sc.Columns, sc.Predicate)
	return &tableColScan{ctx: ctx, cur: partCursor{snap: snap, batch: batch}}
}

// partCursor advances serially over a snapshot's parts, one batch window
// at a time. Parts open (and on-disk segments decode) only when the cursor
// reaches them — a consumer that stops early (LIMIT) never touches the
// segments behind its stop point.
type partCursor struct {
	snap  *tableSnap
	batch int
	pi    int
	pos   int
	done  bool
}

func (c *partCursor) next() (*schema.ColBatch, error) {
	for !c.done {
		if c.pi >= len(c.snap.parts) {
			c.done = true
			return nil, nil
		}
		p := c.snap.parts[c.pi]
		if c.pos >= p.nrows {
			c.pi++
			c.pos = 0
			continue
		}
		b, err := p.open()
		if err != nil {
			c.done = true
			return nil, err
		}
		end := c.pos + c.batch
		if end > p.nrows {
			end = p.nrows
		}
		out := windowBatch(b, c.pos, end)
		c.pos = end
		return out, nil
	}
	return nil, nil
}

// remaining reports the exact unread row count of the snapshot.
func (c *partCursor) remaining() int {
	if c.done {
		return 0
	}
	n := 0
	for i := c.pi; i < len(c.snap.parts); i++ {
		n += c.snap.parts[i].nrows
	}
	return n - c.pos
}

func (c *partCursor) close() { c.done = true }

// tableScan pivots part windows to rows batch-at-a-time.
type tableScan struct{ cur partCursor }

func (s *tableScan) Next() (schema.Rows, error) {
	b, err := s.cur.next()
	if err != nil || b == nil {
		return nil, err
	}
	return b.Rows(), nil
}

func (s *tableScan) Close() { s.cur.close() }

// SizeHint reports the exact remaining row count of the snapshot. Pruned
// segments contained no matching rows by construction, but a scan with a
// predicate is always wrapped by its filter, whose hint is 0 — this exact
// hint only surfaces for plain scans.
func (s *tableScan) SizeHint() int { return s.cur.remaining() }

// tableColScan is the columnar twin of tableScan: same cursor, no pivot.
type tableColScan struct {
	ctx context.Context
	cur partCursor
}

func (s *tableColScan) NextBatch() (*schema.ColBatch, error) {
	if err := s.ctx.Err(); err != nil {
		s.cur.close()
		return nil, err
	}
	return s.cur.next()
}

func (s *tableColScan) Close() { s.cur.close() }

// ScanMorsels opens a partitioned scan: the snapshot is split into morsels
// (sequence-numbered row batches) handed out to however many worker
// goroutines pull from the returned source. The cursor is one atomic
// counter — claiming a morsel is a single fetch-and-add, so workers never
// serialize on a lock. Morsel boundaries are segment-aligned: a morsel
// never spans two segments, so each claim touches exactly one segment and
// on-disk segments decode once, on the first worker to claim into them.
// The claim index is the Seq, so numbering is contiguous by construction.
// The row pivot runs on the claiming worker's goroutine, outside any lock.
//
// The source snapshots the table at open: workers partition exactly the
// rows present then, and stay unaffected by concurrent Append or Truncate.
//
// The source is bound to ctx: cancellation is checked on every pull, so
// after a cancel each worker stops within one batch (its in-flight morsel)
// and no new morsels are handed out. The cancellation error is delivered
// to exactly one caller; with concurrent pullers its Seq may race with an
// in-flight claim, so order-sensitive consumers (the engine's exchange)
// additionally bind their pipeline head to ctx, which guarantees the error
// surfaces even if the morsel-level delivery is overtaken.
func (t *Table) ScanMorsels(ctx context.Context, batchSize int) schema.MorselSource {
	return &tableMorsels{cursor: t.openCursor(ctx, schema.ColScan{BatchSize: batchSize})}
}

// ScanColMorsels is the columnar twin of ScanMorsels: workers claim
// zero-copy column windows of the selected columns and run their kernels
// without ever building rows. Segments pruned by sc.Predicate produce no
// morsels at all.
func (t *Table) ScanColMorsels(ctx context.Context, sc schema.ColScan) schema.ColMorselSource {
	return &tableColMorsels{cursor: t.openCursor(ctx, sc)}
}

func (t *Table) openCursor(ctx context.Context, sc schema.ColScan) *morselCursor {
	batch := sc.BatchSize
	if batch <= 0 {
		batch = schema.DefaultBatchSize
	}
	snap := t.snapshotScan(sc.Columns, sc.Predicate)
	c := &morselCursor{ctx: ctx, snap: snap, batch: batch}
	c.starts = make([]int, len(snap.parts)+1)
	for i, p := range snap.parts {
		c.starts[i+1] = c.starts[i] + (p.nrows+batch-1)/batch
	}
	return c
}

// morselCursor is the shared lock-free heart of both morsel sources: a
// part-list snapshot plus one atomic claim counter. claim() is wait-free;
// everything per-morsel (opening the part, windowing, pivoting) happens on
// the caller's goroutine. starts[i] is the first morsel seq of part i, so
// morsels are segment-aligned and contiguous across parts.
type morselCursor struct {
	ctx     context.Context
	snap    *tableSnap
	batch   int
	starts  []int
	next    atomic.Int64
	errOnce atomic.Bool
	closed  atomic.Bool
}

// claim reserves the next morsel range. The claimed index doubles as the
// Seq: indices come from one fetch-and-add, so they are contiguous in
// claim order across all workers.
func (c *morselCursor) claim() (seq int, part *scanPart, lo, hi int, ok bool) {
	if c.closed.Load() {
		return 0, nil, 0, 0, false
	}
	seq = int(c.next.Add(1) - 1)
	total := c.starts[len(c.starts)-1]
	if seq >= total {
		return 0, nil, 0, 0, false
	}
	// Find the part owning this seq: the last i with starts[i] <= seq.
	pi := sort.Search(len(c.starts), func(i int) bool { return c.starts[i] > seq }) - 1
	p := c.snap.parts[pi]
	lo = (seq - c.starts[pi]) * c.batch
	hi = lo + c.batch
	if hi > p.nrows {
		hi = p.nrows
	}
	return seq, p, lo, hi, true
}

// cancelled checks ctx before a claim. The error is handed to exactly one
// caller (CAS-guarded); every other caller observes exhaustion.
func (c *morselCursor) cancelled() (int, error, bool) {
	err := c.ctx.Err()
	if err == nil {
		return 0, nil, false
	}
	if c.errOnce.CompareAndSwap(false, true) {
		c.closed.Store(true)
		return int(c.next.Load()), err, true
	}
	return 0, nil, true
}

// window opens the claimed part (first claimant decodes; the rest share)
// and cuts [lo, hi) out of it.
func (c *morselCursor) window(p *scanPart, lo, hi int) (*schema.ColBatch, error) {
	b, err := p.open()
	if err != nil {
		return nil, err
	}
	return windowBatch(b, lo, hi), nil
}

func (c *morselCursor) close() { c.closed.Store(true) }

// tableMorsels serves row-major morsels: claim, window, pivot worker-side.
type tableMorsels struct{ cursor *morselCursor }

func (m *tableMorsels) NextMorsel() (schema.Morsel, error) {
	if seq, err, done := m.cursor.cancelled(); done {
		if err != nil {
			return schema.Morsel{Seq: seq}, err
		}
		return schema.Morsel{}, nil
	}
	seq, part, lo, hi, ok := m.cursor.claim()
	if !ok {
		return schema.Morsel{}, nil
	}
	b, err := m.cursor.window(part, lo, hi)
	if err != nil {
		return schema.Morsel{Seq: seq}, err
	}
	return schema.Morsel{Seq: seq, Rows: b.Rows()}, nil
}

func (m *tableMorsels) Close() { m.cursor.close() }

// tableColMorsels serves columnar morsels: claim and window only, no pivot.
type tableColMorsels struct{ cursor *morselCursor }

func (m *tableColMorsels) NextColMorsel() (schema.ColMorsel, error) {
	if seq, err, done := m.cursor.cancelled(); done {
		if err != nil {
			return schema.ColMorsel{Seq: seq}, err
		}
		return schema.ColMorsel{}, nil
	}
	seq, part, lo, hi, ok := m.cursor.claim()
	if !ok {
		return schema.ColMorsel{}, nil
	}
	b, err := m.cursor.window(part, lo, hi)
	if err != nil {
		return schema.ColMorsel{Seq: seq}, err
	}
	return schema.ColMorsel{Seq: seq, Batch: b}, nil
}

func (m *tableColMorsels) Close() { m.cursor.close() }

// ScanPartitions splits the table scan into n iterators sharing one morsel
// cursor: each iterator pull claims the next unclaimed morsel and applies
// the scan's filter and projection worker-side, so n goroutines draining
// one iterator each cover the table exactly once. Segment pruning applies
// through sc.Predicate exactly as in Scan. Row order across partitions
// follows claim order, not table order; callers needing the serial order
// must merge by morsel sequence (the engine's exchange does, via
// ScanMorsels directly). Because one sc.Filter closure is shared by all n
// partitions, it must be safe for concurrent calls (a pure function of the
// row); stateful per-worker filters belong in per-partition stages over
// ScanMorsels instead.
func (t *Table) ScanPartitions(ctx context.Context, sc schema.Scan, n int) []schema.RowIterator {
	if n < 1 {
		n = 1
	}
	src := &tableMorsels{cursor: t.openCursor(ctx, schema.ColScan{Predicate: sc.Predicate, BatchSize: sc.BatchSize})}
	out := make([]schema.RowIterator, n)
	for i := range out {
		out[i] = schema.FilterProject(schema.IterateMorsels(src), sc)
	}
	return out
}

// Truncate removes all rows: sealed segments are dropped (a persistent
// backend deletes their files), the tail vectors are replaced wholesale,
// so windows held by in-flight scans keep reading the old (still
// immutable) storage.
func (t *Table) Truncate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cfg.Backend != nil {
		// A failed backend drop leaves orphan files behind; the in-memory
		// truncation still proceeds (re-ingest after a restart would
		// resurface them — documented with the backend).
		_ = t.cfg.Backend.Drop(t.schema.Name)
	}
	t.sealed = nil
	t.sealedRows = 0
	t.sealedWire = 0
	for i := range t.cols {
		t.cols[i] = schema.NewColVec(t.schema.Columns[i].Type)
	}
	t.rows = nil
	t.tailRows = 0
	t.tailWire = 0
	t.nrows = 0
	t.wire = 0
	for i := range t.stats {
		t.stats[i].reset()
		t.segStats[i].reset()
	}
}

// WireSize is the simulated serialized size of the whole table. O(1): the
// size is maintained incrementally on Append.
func (t *Table) WireSize() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.wire
}

// Segments reports the sealed segment count.
func (t *Table) Segments() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.sealed)
}

// Flush seals the active tail (even when it is below the segment-size
// threshold), so a durable backend persists every appended row. A no-op on
// an empty tail; subsequent appends start a fresh tail.
func (t *Table) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sealLocked()
}

// Store is a named collection of tables: the database d of one environment
// node. It implements the engine's Source interface.
type Store struct {
	mu     sync.RWMutex
	cfg    Config
	tables map[string]*Table
	// epoch counts schema-changing operations (Create, Put, Drop). Prepared
	// plans embed the epoch they were built against in their cache key, so
	// any DDL invalidates every cached plan without the store knowing who
	// caches what.
	epoch atomic.Uint64
}

// NewStore creates an empty in-memory store with default configuration.
func NewStore() *Store {
	s, _ := NewStoreWith(Config{})
	return s
}

// NewStoreWith creates a store with the given configuration. With a
// persistent backend, previously sealed tables are recovered here — schema
// from the segment footers, rows served lazily from disk, statistics
// rebuilt from the persisted zone maps and NDV sketches without decoding a
// single column.
func NewStoreWith(cfg Config) (*Store, error) {
	s := &Store{cfg: cfg, tables: make(map[string]*Table)}
	if cfg.Backend != nil {
		rec, err := cfg.Backend.RecoverAll()
		if err != nil {
			return nil, err
		}
		for _, rt := range rec {
			t := newTableWith(rt.Rel, cfg)
			t.attachRecovered(rt.Segments)
			s.tables[strings.ToLower(rt.Rel.Name)] = t
			s.epoch.Add(1)
		}
	}
	return s, nil
}

// Epoch returns the store's schema epoch: a counter bumped by every
// schema-changing operation (Create, Put, Drop). A prepared plan is valid
// exactly as long as the epoch it was built under; consumers key their
// caches by it instead of subscribing to invalidation events.
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

// Create registers a new empty table and returns it. An existing table
// with the same name is replaced — on a persistent backend its sealed
// segments are dropped (a drop failure is reported by CreateTable; Create
// proceeds regardless and the new table overwrites segment files as it
// seals). Bumps the schema epoch.
func (s *Store) Create(rel *schema.Relation) *Table {
	t, _ := s.CreateTable(rel)
	return t
}

// CreateTable is Create with the backend error surface: replacing a table
// on a persistent backend drops its previously sealed segments, and that
// drop can fail.
func (s *Store) CreateTable(rel *schema.Relation) (*Table, error) {
	var dropErr error
	if s.cfg.Backend != nil {
		dropErr = s.cfg.Backend.Drop(rel.Name)
	}
	t := newTableWith(rel, s.cfg)
	s.mu.Lock()
	s.tables[strings.ToLower(rel.Name)] = t
	s.mu.Unlock()
	s.epoch.Add(1)
	return t, dropErr
}

// Put registers an existing table under its schema name. Bumps the schema
// epoch.
func (s *Store) Put(t *Table) {
	s.mu.Lock()
	s.tables[strings.ToLower(t.Schema().Name)] = t
	s.mu.Unlock()
	s.epoch.Add(1)
}

// Drop removes a table by name (case-insensitive), including its sealed
// segments on a persistent backend. Dropping a missing table is a no-op
// and does not bump the schema epoch.
func (s *Store) Drop(name string) {
	key := strings.ToLower(name)
	s.mu.Lock()
	t, ok := s.tables[key]
	delete(s.tables, key)
	s.mu.Unlock()
	if ok {
		if s.cfg.Backend != nil {
			_ = s.cfg.Backend.Drop(t.Schema().Name)
		}
		s.epoch.Add(1)
	}
}

// Table finds a table by name (case-insensitive).
func (s *Store) Table(name string) (*Table, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// Relation implements the engine Source: it returns schema and a row
// snapshot for the named table.
func (s *Store) Relation(name string) (*schema.Relation, schema.Rows, error) {
	t, err := s.Table(name)
	if err != nil {
		return nil, nil, err
	}
	return t.Schema(), t.Snapshot(), nil
}

// RelationStats returns the row count and serialized size of the named
// table without materializing (or even walking) its rows. The network
// simulator uses it to size |d| when opening a streaming run.
func (s *Store) RelationStats(name string) (rows, wireBytes int, err error) {
	t, err := s.Table(name)
	if err != nil {
		return 0, 0, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nrows, t.wire, nil
}

// RelationSchema returns just the schema of the named table, without
// touching rows. Together with OpenScan it makes the store a streaming
// (engine.BatchSource) relation source.
func (s *Store) RelationSchema(name string) (*schema.Relation, error) {
	t, err := s.Table(name)
	if err != nil {
		return nil, err
	}
	return t.Schema(), nil
}

// OpenScan opens an incremental batch scan over the named table with
// projection, predicate pushdown and zone-map segment pruning, bound to
// ctx (see Table.Scan).
func (s *Store) OpenScan(ctx context.Context, name string, sc schema.Scan) (schema.RowIterator, error) {
	t, err := s.Table(name)
	if err != nil {
		return nil, err
	}
	return t.Scan(ctx, sc), nil
}

// OpenMorsels opens a partitioned batch scan over the named table (see
// Table.ScanMorsels). It is the storage fast path of the engine's parallel
// scans: morsels are locked subslices, never copies.
func (s *Store) OpenMorsels(ctx context.Context, name string, batchSize int) (schema.MorselSource, error) {
	t, err := s.Table(name)
	if err != nil {
		return nil, err
	}
	return t.ScanMorsels(ctx, batchSize), nil
}

// OpenColScan opens a columnar scan over the named table: zero-copy typed
// column windows of the selected positions (nil cols keeps all), bound to
// ctx, with zone-map segment pruning from sc.Predicate. It makes the store
// an engine.ColScanner, enabling the vectorized scan path.
func (s *Store) OpenColScan(ctx context.Context, name string, sc schema.ColScan) (schema.ColIterator, error) {
	t, err := s.Table(name)
	if err != nil {
		return nil, err
	}
	return t.ScanColumns(ctx, sc), nil
}

// OpenColMorsels opens a partitioned columnar scan over the named table
// (see Table.ScanColMorsels): the parallel twin of OpenColScan.
func (s *Store) OpenColMorsels(ctx context.Context, name string, sc schema.ColScan) (schema.ColMorselSource, error) {
	t, err := s.Table(name)
	if err != nil {
		return nil, err
	}
	return t.ScanColMorsels(ctx, sc), nil
}

// Names lists table names in sorted order.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Catalog builds a schema catalog over all tables, for the rewriter and
// fragmenter.
func (s *Store) Catalog() *schema.Catalog {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := schema.NewCatalog()
	for _, t := range s.tables {
		c.Register(t.Schema())
	}
	return c
}

// StorageStats aggregates the store's physical-layout and pruning
// counters, the serving layer's observability view of segment pruning in
// production (/v1/stats).
type StorageStats struct {
	// Tables is the number of registered tables.
	Tables int `json:"tables"`
	// Segments counts sealed segments across all tables; SealedRows and
	// SealedBytes their rows and simulated wire bytes. TailRows counts
	// rows still in active (unsealed) tails.
	Segments    int   `json:"segments"`
	SealedRows  int64 `json:"sealed_rows"`
	SealedBytes int64 `json:"sealed_bytes"`
	TailRows    int64 `json:"tail_rows"`
	// SegmentsScanned / SegmentsSkipped count scan-snapshot admission
	// decisions (the tail counts as one segment when non-empty);
	// SegmentsOpened counts parts actually materialized — opened minus
	// scanned measures how much LIMIT-style early termination saved on
	// top of pruning.
	SegmentsScanned int64 `json:"segments_scanned"`
	SegmentsSkipped int64 `json:"segments_skipped"`
	SegmentsOpened  int64 `json:"segments_opened"`
}

// Flush seals every table's active tail, persisting all appended rows
// when the store has a durable backend (see Table.Flush).
func (s *Store) Flush() error {
	s.mu.RLock()
	tables := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		tables = append(tables, t)
	}
	s.mu.RUnlock()
	for _, t := range tables {
		if err := t.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// StorageStats snapshots the store-wide storage totals.
func (s *Store) StorageStats() StorageStats {
	s.mu.RLock()
	tables := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		tables = append(tables, t)
	}
	s.mu.RUnlock()
	var out StorageStats
	out.Tables = len(tables)
	for _, t := range tables {
		t.mu.RLock()
		out.Segments += len(t.sealed)
		out.SealedRows += int64(t.sealedRows)
		out.SealedBytes += int64(t.sealedWire)
		out.TailRows += int64(t.tailRows)
		t.mu.RUnlock()
		out.SegmentsScanned += t.segsScanned.Load()
		out.SegmentsSkipped += t.segsSkipped.Load()
		out.SegmentsOpened += t.segsOpened.Load()
	}
	return out
}

// WriteCSV writes a table as CSV with a header row.
func WriteCSV(w io.Writer, rel *schema.Relation, rows schema.Rows) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(rel.ColumnNames()); err != nil {
		return fmt.Errorf("storage: write csv header: %w", err)
	}
	rec := make([]string, rel.Arity())
	for _, r := range rows {
		for i, v := range r {
			if v.IsNull() {
				rec[i] = ""
			} else {
				rec[i] = v.Format()
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("storage: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads CSV data (with header) into rows following the relation's
// declared column order and types. Header names must match the schema.
func ReadCSV(r io.Reader, rel *schema.Relation) (schema.Rows, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("storage: read csv header: %w", err)
	}
	if len(header) != rel.Arity() {
		return nil, fmt.Errorf("storage: csv header has %d columns, schema %s has %d",
			len(header), rel.Name, rel.Arity())
	}
	for i, h := range header {
		if !strings.EqualFold(h, rel.Columns[i].Name) {
			return nil, fmt.Errorf("storage: csv column %d is %q, schema expects %q",
				i, h, rel.Columns[i].Name)
		}
	}
	var rows schema.Rows
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return rows, nil
		}
		if err != nil {
			return nil, fmt.Errorf("storage: read csv row: %w", err)
		}
		row := make(schema.Row, rel.Arity())
		for i, f := range rec {
			v, err := schema.ParseValue(f, rel.Columns[i].Type)
			if err != nil {
				return nil, fmt.Errorf("storage: csv row %d col %s: %w", len(rows)+1, rel.Columns[i].Name, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
}
