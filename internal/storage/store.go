package storage

import (
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"paradise/internal/schema"
)

// ErrNoTable is returned when a referenced table does not exist.
var ErrNoTable = errors.New("storage: no such table")

// ErrArity is returned when a row's width does not match the table schema.
var ErrArity = errors.New("storage: row arity mismatch")

// Table is an append-only in-memory relation.
type Table struct {
	mu     sync.RWMutex
	schema *schema.Relation
	rows   schema.Rows
	// wire caches the cumulative serialized size of rows, maintained on
	// Append/Truncate so WireSize is O(1). Rows are immutable, so the
	// cache can never go stale.
	wire int
}

// NewTable creates an empty table with the given schema.
func NewTable(rel *schema.Relation) *Table {
	return &Table{schema: rel}
}

// Schema returns the table schema. The returned value must not be mutated.
func (t *Table) Schema() *schema.Relation { return t.schema }

// Append adds rows, validating arity.
func (t *Table) Append(rows ...schema.Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range rows {
		if len(r) != t.schema.Arity() {
			return fmt.Errorf("%w: table %s has %d columns, row has %d",
				ErrArity, t.schema.Name, t.schema.Arity(), len(r))
		}
		t.rows = append(t.rows, r)
		t.wire += r.WireSize()
	}
	return nil
}

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Snapshot returns a stable copy-on-read view of the rows. The slice header
// is copied; rows themselves are immutable by convention.
func (t *Table) Snapshot() schema.Rows {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(schema.Rows, len(t.rows))
	copy(out, t.rows)
	return out
}

// Scan opens an incremental batch scan over the table with the given
// projection and predicate pushed down. Unlike Snapshot, a scan never copies
// the whole table: each pull reads one batch of the append-only row slice
// under the read lock and applies filter and projection outside it, so a
// consumer that stops early (LIMIT) leaves the remaining rows untouched.
// Rows appended after the scan starts may or may not be observed.
//
// The scan is bound to ctx: cancellation is checked on every pull, so a
// cancelled query stops reading the table within one batch.
func (t *Table) Scan(ctx context.Context, sc schema.Scan) schema.RowIterator {
	batch := sc.BatchSize
	if batch <= 0 {
		batch = schema.DefaultBatchSize
	}
	// The raw scan only pulls locked subslices; filter and projection run
	// outside the lock in the shared schema-layer wrapper.
	return schema.FilterProject(schema.WithContext(ctx, &tableScan{t: t, batch: batch}), sc)
}

// tableScan pulls batches straight off the table's row slice. Returning a
// subslice is safe after unlocking: the table is append-only (existing
// elements are never overwritten) and Truncate replaces the slice wholesale.
type tableScan struct {
	t     *Table
	batch int
	pos   int
	done  bool
}

func (s *tableScan) Next() (schema.Rows, error) {
	if s.done {
		return nil, nil
	}
	s.t.mu.RLock()
	defer s.t.mu.RUnlock()
	n := len(s.t.rows)
	if s.pos >= n { // exhausted, or the table was truncated mid-scan
		s.done = true
		return nil, nil
	}
	end := s.pos + s.batch
	if end >= n {
		end = n
		s.done = true
	}
	raw := s.t.rows[s.pos:end]
	s.pos = end
	return raw, nil
}

func (s *tableScan) Close() { s.done = true }

// SizeHint reports the exact remaining row count.
func (s *tableScan) SizeHint() int {
	if s.done {
		return 0
	}
	s.t.mu.RLock()
	n := len(s.t.rows)
	s.t.mu.RUnlock()
	if s.pos >= n {
		return 0
	}
	return n - s.pos
}

// ScanMorsels opens a partitioned scan: the table is split into morsels
// (sequence-numbered batches of the append-only row slice) handed out to
// however many worker goroutines pull from the returned source. Each pull
// takes one locked subslice — no copying, no per-morsel allocation — so the
// serial fraction of a parallel scan is one short critical section per
// batch. Filtering and projection are the workers' business (the engine
// applies them per worker, outside the lock).
//
// The source is bound to ctx: cancellation is checked on every pull, so
// after a cancel each worker stops reading the table within one batch (its
// in-flight morsel) and no new morsels are handed out.
func (t *Table) ScanMorsels(ctx context.Context, batchSize int) schema.MorselSource {
	if batchSize <= 0 {
		batchSize = schema.DefaultBatchSize
	}
	return &tableMorsels{ctx: ctx, scan: tableScan{t: t, batch: batchSize}}
}

// tableMorsels shares one table cursor between concurrent workers. Morsels
// are raw subslices of the table's row slice, which is append-only (see
// tableScan), so handing them out without copying is safe even while the
// table keeps ingesting.
type tableMorsels struct {
	ctx  context.Context
	mu   sync.Mutex
	scan tableScan
	seq  int
}

func (m *tableMorsels) NextMorsel() (schema.Morsel, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.scan.done {
		return schema.Morsel{}, nil
	}
	if err := m.ctx.Err(); err != nil {
		m.scan.done = true
		return schema.Morsel{Seq: m.seq}, err
	}
	batch, err := m.scan.Next()
	if err != nil {
		m.scan.done = true
		return schema.Morsel{Seq: m.seq}, err
	}
	if batch == nil {
		return schema.Morsel{}, nil
	}
	out := schema.Morsel{Seq: m.seq, Rows: batch}
	m.seq++
	return out, nil
}

func (m *tableMorsels) Close() {
	m.mu.Lock()
	m.scan.done = true
	m.mu.Unlock()
}

// ScanPartitions splits the table scan into n iterators sharing one morsel
// cursor: each iterator pull claims the next unclaimed morsel and applies
// the scan's filter and projection worker-side, so n goroutines draining
// one iterator each cover the table exactly once. Row order across
// partitions follows claim order, not table order; callers needing the
// serial order must merge by morsel sequence (the engine's exchange does,
// via ScanMorsels directly). Because one sc.Filter closure is shared by
// all n partitions, it must be safe for concurrent calls (a pure function
// of the row); stateful per-worker filters belong in per-partition stages
// over ScanMorsels instead.
func (t *Table) ScanPartitions(ctx context.Context, sc schema.Scan, n int) []schema.RowIterator {
	if n < 1 {
		n = 1
	}
	src := t.ScanMorsels(ctx, sc.BatchSize)
	out := make([]schema.RowIterator, n)
	for i := range out {
		out[i] = schema.FilterProject(schema.IterateMorsels(src), sc)
	}
	return out
}

// Truncate removes all rows.
func (t *Table) Truncate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = nil
	t.wire = 0
}

// WireSize is the simulated serialized size of the whole table. O(1): the
// size is maintained incrementally on Append.
func (t *Table) WireSize() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.wire
}

// Store is a named collection of tables: the database d of one environment
// node. It implements the engine's Source interface.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{tables: make(map[string]*Table)}
}

// Create registers a new empty table and returns it. An existing table with
// the same name is replaced.
func (s *Store) Create(rel *schema.Relation) *Table {
	t := NewTable(rel)
	s.mu.Lock()
	s.tables[strings.ToLower(rel.Name)] = t
	s.mu.Unlock()
	return t
}

// Put registers an existing table under its schema name.
func (s *Store) Put(t *Table) {
	s.mu.Lock()
	s.tables[strings.ToLower(t.Schema().Name)] = t
	s.mu.Unlock()
}

// Table finds a table by name (case-insensitive).
func (s *Store) Table(name string) (*Table, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// Relation implements the engine Source: it returns schema and a row
// snapshot for the named table.
func (s *Store) Relation(name string) (*schema.Relation, schema.Rows, error) {
	t, err := s.Table(name)
	if err != nil {
		return nil, nil, err
	}
	return t.Schema(), t.Snapshot(), nil
}

// RelationStats returns the row count and serialized size of the named
// table without materializing (or even walking) its rows. The network
// simulator uses it to size |d| when opening a streaming run.
func (s *Store) RelationStats(name string) (rows, wireBytes int, err error) {
	t, err := s.Table(name)
	if err != nil {
		return 0, 0, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows), t.wire, nil
}

// RelationSchema returns just the schema of the named table, without
// touching rows. Together with OpenScan it makes the store a streaming
// (engine.BatchSource) relation source.
func (s *Store) RelationSchema(name string) (*schema.Relation, error) {
	t, err := s.Table(name)
	if err != nil {
		return nil, err
	}
	return t.Schema(), nil
}

// OpenScan opens an incremental batch scan over the named table with
// projection and predicate pushdown, bound to ctx (see Table.Scan).
func (s *Store) OpenScan(ctx context.Context, name string, sc schema.Scan) (schema.RowIterator, error) {
	t, err := s.Table(name)
	if err != nil {
		return nil, err
	}
	return t.Scan(ctx, sc), nil
}

// OpenMorsels opens a partitioned batch scan over the named table (see
// Table.ScanMorsels). It is the storage fast path of the engine's parallel
// scans: morsels are locked subslices, never copies.
func (s *Store) OpenMorsels(ctx context.Context, name string, batchSize int) (schema.MorselSource, error) {
	t, err := s.Table(name)
	if err != nil {
		return nil, err
	}
	return t.ScanMorsels(ctx, batchSize), nil
}

// Names lists table names in sorted order.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Catalog builds a schema catalog over all tables, for the rewriter and
// fragmenter.
func (s *Store) Catalog() *schema.Catalog {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := schema.NewCatalog()
	for _, t := range s.tables {
		c.Register(t.Schema())
	}
	return c
}

// WriteCSV writes a table as CSV with a header row.
func WriteCSV(w io.Writer, rel *schema.Relation, rows schema.Rows) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(rel.ColumnNames()); err != nil {
		return fmt.Errorf("storage: write csv header: %w", err)
	}
	rec := make([]string, rel.Arity())
	for _, r := range rows {
		for i, v := range r {
			if v.IsNull() {
				rec[i] = ""
			} else {
				rec[i] = v.Format()
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("storage: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads CSV data (with header) into rows following the relation's
// declared column order and types. Header names must match the schema.
func ReadCSV(r io.Reader, rel *schema.Relation) (schema.Rows, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("storage: read csv header: %w", err)
	}
	if len(header) != rel.Arity() {
		return nil, fmt.Errorf("storage: csv header has %d columns, schema %s has %d",
			len(header), rel.Name, rel.Arity())
	}
	for i, h := range header {
		if !strings.EqualFold(h, rel.Columns[i].Name) {
			return nil, fmt.Errorf("storage: csv column %d is %q, schema expects %q",
				i, h, rel.Columns[i].Name)
		}
	}
	var rows schema.Rows
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return rows, nil
		}
		if err != nil {
			return nil, fmt.Errorf("storage: read csv row: %w", err)
		}
		row := make(schema.Row, rel.Arity())
		for i, f := range rec {
			v, err := schema.ParseValue(f, rel.Columns[i].Type)
			if err != nil {
				return nil, fmt.Errorf("storage: csv row %d col %s: %w", len(rows)+1, rel.Columns[i].Name, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
}
