package storage

import (
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"paradise/internal/schema"
)

// ErrNoTable is returned when a referenced table does not exist.
var ErrNoTable = errors.New("storage: no such table")

// ErrArity is returned when a row's width does not match the table schema.
var ErrArity = errors.New("storage: row arity mismatch")

// Table is an append-only in-memory relation, stored column-major: one
// typed vector per column (see schema.ColVec). Columnar storage serves the
// engine's vectorized scan path directly — pruned columns are never
// materialized, kernels loop over unboxed payload slices — while row-major
// consumers get their rows by pivoting at the batch boundary.
//
// Alongside the vectors the table mirrors every row in row-major form. The
// mirror is the pivot-elision cache: full-width windows attach it as the
// batch View (see schema.ColBatch), so serving rows costs one reference
// per row instead of re-materializing wide Value structs — scans that keep
// most rows would otherwise spend their time in the pivot and the GC
// behind it. The memory price is one extra Row header and one boxed Value
// per element; both layouts share nothing mutable, since rows and vector
// elements are immutable once appended.
type Table struct {
	mu     sync.RWMutex
	schema *schema.Relation
	cols   []schema.ColVec
	rows   schema.Rows
	nrows  int
	// wire caches the cumulative serialized size of rows, maintained on
	// Append/Truncate so WireSize is O(1). Stored values are immutable, so
	// the cache can never go stale.
	wire int
	// stats holds one incremental statistics accumulator per column (NDV
	// sketch, min/max, null count — see stats.go), updated on Append and
	// reset on Truncate under the same lock as the wire cache.
	stats []colStat
}

// NewTable creates an empty table with the given schema.
func NewTable(rel *schema.Relation) *Table {
	t := &Table{
		schema: rel,
		cols:   make([]schema.ColVec, rel.Arity()),
		stats:  make([]colStat, rel.Arity()),
	}
	for i := range t.cols {
		t.cols[i] = schema.NewColVec(rel.Columns[i].Type)
	}
	return t
}

// Schema returns the table schema. The returned value must not be mutated.
func (t *Table) Schema() *schema.Relation { return t.schema }

// Append adds rows, validating arity. Values are copied into the column
// vectors, so the caller keeps ownership of its row slices.
func (t *Table) Append(rows ...schema.Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var keyBuf []byte
	for _, r := range rows {
		if len(r) != t.schema.Arity() {
			return fmt.Errorf("%w: table %s has %d columns, row has %d",
				ErrArity, t.schema.Name, t.schema.Arity(), len(r))
		}
		for i := range t.cols {
			t.cols[i].Append(r[i])
			keyBuf = t.stats[i].observe(r[i], keyBuf)
		}
		t.rows = append(t.rows, r.Clone())
		t.nrows++
		t.wire += r.WireSize()
	}
	return nil
}

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nrows
}

// colWindowLocked builds a zero-copy columnar window over rows [lo, hi) of
// the selected columns (nil cols keeps every column). Caller must hold at
// least a read lock; the returned batch stays valid after unlocking because
// vectors are append-only and Truncate replaces them wholesale.
func (t *Table) colWindowLocked(lo, hi int, cols []int) *schema.ColBatch {
	rel := t.schema
	var vecs []schema.ColVec
	var view schema.Rows
	if cols == nil {
		vecs = make([]schema.ColVec, len(t.cols))
		for i := range t.cols {
			vecs[i] = t.cols[i].Window(lo, hi)
		}
		// Full width in storage order: the row mirror aligns with the
		// vectors, so consumers can gather references instead of pivoting.
		view = t.rows[lo:hi]
	} else {
		rel = rel.Project(cols)
		vecs = make([]schema.ColVec, len(cols))
		for k, c := range cols {
			vecs[k] = t.cols[c].Window(lo, hi)
		}
	}
	return &schema.ColBatch{Rel: rel, Vecs: vecs, N: hi - lo, View: view}
}

// Snapshot returns a stable row-major copy of the table (a full pivot).
func (t *Table) Snapshot() schema.Rows {
	t.mu.RLock()
	b := t.colWindowLocked(0, t.nrows, nil)
	t.mu.RUnlock()
	return b.Rows()
}

// Scan opens an incremental batch scan over the table with the given
// projection and predicate pushed down. Unlike Snapshot, a scan never
// pivots the whole table: each pull windows one batch of the column vectors
// under the read lock and pivots it to rows outside the lock. When the scan
// has no predicate, the projection is applied at the pivot, so pruned
// columns are never materialized at all; a predicate needs the full-width
// row, so filtering scans pivot full width and project afterwards. Rows
// appended after the scan starts may or may not be observed.
//
// The scan is bound to ctx: cancellation is checked on every pull, so a
// cancelled query stops reading the table within one batch.
func (t *Table) Scan(ctx context.Context, sc schema.Scan) schema.RowIterator {
	batch := sc.BatchSize
	if batch <= 0 {
		batch = schema.DefaultBatchSize
	}
	if sc.Filter == nil {
		return schema.WithContext(ctx, &tableScan{t: t, cols: sc.Columns, batch: batch})
	}
	return schema.FilterProject(schema.WithContext(ctx, &tableScan{t: t, batch: batch}), sc)
}

// ScanColumns opens a columnar scan serving zero-copy windows of the
// selected columns (nil keeps all). This is the engine's vectorized fast
// path: no rows are built, kernels consume the vectors directly.
func (t *Table) ScanColumns(ctx context.Context, cols []int, batchSize int) schema.ColIterator {
	if batchSize <= 0 {
		batchSize = schema.DefaultBatchSize
	}
	return &tableColScan{ctx: ctx, t: t, cols: cols, batch: batchSize}
}

// tableScan pivots batches off the table's column vectors. The window is
// taken under the read lock; the pivot runs outside it (windows stay valid
// because vectors are append-only and Truncate replaces them wholesale).
type tableScan struct {
	t     *Table
	cols  []int
	batch int
	pos   int
	done  bool
}

// claim advances the cursor over [pos, min(pos+batch, nrows)) and returns
// the claimed window, or nil when the scan is exhausted (or the table was
// truncated mid-scan).
func (s *tableScan) claim() *schema.ColBatch {
	s.t.mu.RLock()
	defer s.t.mu.RUnlock()
	n := s.t.nrows
	if s.pos >= n {
		s.done = true
		return nil
	}
	end := s.pos + s.batch
	if end >= n {
		end = n
		s.done = true
	}
	b := s.t.colWindowLocked(s.pos, end, s.cols)
	s.pos = end
	return b
}

func (s *tableScan) Next() (schema.Rows, error) {
	if s.done {
		return nil, nil
	}
	b := s.claim()
	if b == nil {
		return nil, nil
	}
	return b.Rows(), nil
}

func (s *tableScan) Close() { s.done = true }

// SizeHint reports the exact remaining row count.
func (s *tableScan) SizeHint() int {
	if s.done {
		return 0
	}
	s.t.mu.RLock()
	n := s.t.nrows
	s.t.mu.RUnlock()
	if s.pos >= n {
		return 0
	}
	return n - s.pos
}

// tableColScan is the columnar twin of tableScan: same cursor, no pivot.
type tableColScan struct {
	ctx   context.Context
	t     *Table
	cols  []int
	batch int
	pos   int
	done  bool
}

func (s *tableColScan) NextBatch() (*schema.ColBatch, error) {
	if s.done {
		return nil, nil
	}
	if err := s.ctx.Err(); err != nil {
		s.done = true
		return nil, err
	}
	s.t.mu.RLock()
	n := s.t.nrows
	if s.pos >= n {
		s.t.mu.RUnlock()
		s.done = true
		return nil, nil
	}
	end := s.pos + s.batch
	if end >= n {
		end = n
		s.done = true
	}
	b := s.t.colWindowLocked(s.pos, end, s.cols)
	s.t.mu.RUnlock()
	s.pos = end
	return b, nil
}

func (s *tableColScan) Close() { s.done = true }

// ScanMorsels opens a partitioned scan: the table is split into morsels
// (sequence-numbered row batches) handed out to however many worker
// goroutines pull from the returned source. The cursor is one atomic
// counter — claiming a morsel is a single fetch-and-add, so workers never
// serialize on a lock (the previous implementation took a mutex per
// 256-row morsel, which ROADMAP flagged as the scan's scalability ceiling).
// The morsel index is the Seq, so numbering is contiguous by construction.
// The row pivot runs on the claiming worker's goroutine, outside any lock.
//
// The source snapshots the table's row count and vector windows at open:
// workers partition exactly the rows present then, and stay unaffected by
// concurrent Append or Truncate.
//
// The source is bound to ctx: cancellation is checked on every pull, so
// after a cancel each worker stops within one batch (its in-flight morsel)
// and no new morsels are handed out. The cancellation error is delivered
// to exactly one caller; with concurrent pullers its Seq may race with an
// in-flight claim, so order-sensitive consumers (the engine's exchange)
// additionally bind their pipeline head to ctx, which guarantees the error
// surfaces even if the morsel-level delivery is overtaken.
func (t *Table) ScanMorsels(ctx context.Context, batchSize int) schema.MorselSource {
	return &tableMorsels{cursor: t.openCursor(ctx, nil, batchSize)}
}

// ScanColMorsels is the columnar twin of ScanMorsels: workers claim
// zero-copy column windows of the selected columns (nil keeps all) and run
// their kernels without ever building rows.
func (t *Table) ScanColMorsels(ctx context.Context, cols []int, batchSize int) schema.ColMorselSource {
	return &tableColMorsels{cursor: t.openCursor(ctx, cols, batchSize)}
}

func (t *Table) openCursor(ctx context.Context, cols []int, batchSize int) *morselCursor {
	if batchSize <= 0 {
		batchSize = schema.DefaultBatchSize
	}
	t.mu.RLock()
	snap := t.colWindowLocked(0, t.nrows, cols)
	t.mu.RUnlock()
	return &morselCursor{ctx: ctx, snap: snap, batch: batchSize}
}

// morselCursor is the shared lock-free heart of both morsel sources: a
// row-count snapshot plus one atomic claim counter. claim() is wait-free;
// everything per-morsel (windowing, pivoting) happens on the caller's
// goroutine.
type morselCursor struct {
	ctx     context.Context
	snap    *schema.ColBatch
	batch   int
	next    atomic.Int64
	errOnce atomic.Bool
	closed  atomic.Bool
}

// claim reserves the next morsel range. The claimed index doubles as the
// Seq: indices come from one fetch-and-add, so they are contiguous in claim
// order across all workers.
func (c *morselCursor) claim() (seq, lo, hi int, ok bool) {
	if c.closed.Load() {
		return 0, 0, 0, false
	}
	seq = int(c.next.Add(1) - 1)
	lo = seq * c.batch
	if lo >= c.snap.N {
		return 0, 0, 0, false
	}
	hi = lo + c.batch
	if hi > c.snap.N {
		hi = c.snap.N
	}
	return seq, lo, hi, true
}

// cancelled checks ctx before a claim. The error is handed to exactly one
// caller (CAS-guarded); every other caller observes exhaustion.
func (c *morselCursor) cancelled() (int, error, bool) {
	err := c.ctx.Err()
	if err == nil {
		return 0, nil, false
	}
	if c.errOnce.CompareAndSwap(false, true) {
		c.closed.Store(true)
		return int(c.next.Load()), err, true
	}
	return 0, nil, true
}

// window cuts [lo, hi) out of the snapshot. No lock: the snapshot's vector
// windows are immutable headers over append-only storage.
func (c *morselCursor) window(lo, hi int) *schema.ColBatch {
	vecs := make([]schema.ColVec, len(c.snap.Vecs))
	for i := range vecs {
		vecs[i] = c.snap.Vecs[i].Window(lo, hi)
	}
	var view schema.Rows
	if c.snap.View != nil {
		view = c.snap.View[lo:hi]
	}
	return &schema.ColBatch{Rel: c.snap.Rel, Vecs: vecs, N: hi - lo, View: view}
}

func (c *morselCursor) close() { c.closed.Store(true) }

// tableMorsels serves row-major morsels: claim, window, pivot worker-side.
type tableMorsels struct{ cursor *morselCursor }

func (m *tableMorsels) NextMorsel() (schema.Morsel, error) {
	if seq, err, done := m.cursor.cancelled(); done {
		if err != nil {
			return schema.Morsel{Seq: seq}, err
		}
		return schema.Morsel{}, nil
	}
	seq, lo, hi, ok := m.cursor.claim()
	if !ok {
		return schema.Morsel{}, nil
	}
	return schema.Morsel{Seq: seq, Rows: m.cursor.window(lo, hi).Rows()}, nil
}

func (m *tableMorsels) Close() { m.cursor.close() }

// tableColMorsels serves columnar morsels: claim and window only, no pivot.
type tableColMorsels struct{ cursor *morselCursor }

func (m *tableColMorsels) NextColMorsel() (schema.ColMorsel, error) {
	if seq, err, done := m.cursor.cancelled(); done {
		if err != nil {
			return schema.ColMorsel{Seq: seq}, err
		}
		return schema.ColMorsel{}, nil
	}
	seq, lo, hi, ok := m.cursor.claim()
	if !ok {
		return schema.ColMorsel{}, nil
	}
	return schema.ColMorsel{Seq: seq, Batch: m.cursor.window(lo, hi)}, nil
}

func (m *tableColMorsels) Close() { m.cursor.close() }

// ScanPartitions splits the table scan into n iterators sharing one morsel
// cursor: each iterator pull claims the next unclaimed morsel and applies
// the scan's filter and projection worker-side, so n goroutines draining
// one iterator each cover the table exactly once. Row order across
// partitions follows claim order, not table order; callers needing the
// serial order must merge by morsel sequence (the engine's exchange does,
// via ScanMorsels directly). Because one sc.Filter closure is shared by
// all n partitions, it must be safe for concurrent calls (a pure function
// of the row); stateful per-worker filters belong in per-partition stages
// over ScanMorsels instead.
func (t *Table) ScanPartitions(ctx context.Context, sc schema.Scan, n int) []schema.RowIterator {
	if n < 1 {
		n = 1
	}
	src := t.ScanMorsels(ctx, sc.BatchSize)
	out := make([]schema.RowIterator, n)
	for i := range out {
		out[i] = schema.FilterProject(schema.IterateMorsels(src), sc)
	}
	return out
}

// Truncate removes all rows. The column vectors are replaced wholesale, so
// windows held by in-flight scans keep reading the old (still immutable)
// storage.
func (t *Table) Truncate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.cols {
		t.cols[i] = schema.NewColVec(t.schema.Columns[i].Type)
	}
	t.rows = nil
	t.nrows = 0
	t.wire = 0
	for i := range t.stats {
		t.stats[i].reset()
	}
}

// WireSize is the simulated serialized size of the whole table. O(1): the
// size is maintained incrementally on Append.
func (t *Table) WireSize() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.wire
}

// Store is a named collection of tables: the database d of one environment
// node. It implements the engine's Source interface.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*Table
	// epoch counts schema-changing operations (Create, Put, Drop). Prepared
	// plans embed the epoch they were built against in their cache key, so
	// any DDL invalidates every cached plan without the store knowing who
	// caches what.
	epoch atomic.Uint64
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{tables: make(map[string]*Table)}
}

// Epoch returns the store's schema epoch: a counter bumped by every
// schema-changing operation (Create, Put, Drop). A prepared plan is valid
// exactly as long as the epoch it was built under; consumers key their
// caches by it instead of subscribing to invalidation events.
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

// Create registers a new empty table and returns it. An existing table with
// the same name is replaced. Bumps the schema epoch.
func (s *Store) Create(rel *schema.Relation) *Table {
	t := NewTable(rel)
	s.mu.Lock()
	s.tables[strings.ToLower(rel.Name)] = t
	s.mu.Unlock()
	s.epoch.Add(1)
	return t
}

// Put registers an existing table under its schema name. Bumps the schema
// epoch.
func (s *Store) Put(t *Table) {
	s.mu.Lock()
	s.tables[strings.ToLower(t.Schema().Name)] = t
	s.mu.Unlock()
	s.epoch.Add(1)
}

// Drop removes a table by name (case-insensitive). Dropping a missing table
// is a no-op and does not bump the schema epoch.
func (s *Store) Drop(name string) {
	key := strings.ToLower(name)
	s.mu.Lock()
	_, ok := s.tables[key]
	delete(s.tables, key)
	s.mu.Unlock()
	if ok {
		s.epoch.Add(1)
	}
}

// Table finds a table by name (case-insensitive).
func (s *Store) Table(name string) (*Table, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// Relation implements the engine Source: it returns schema and a row
// snapshot for the named table.
func (s *Store) Relation(name string) (*schema.Relation, schema.Rows, error) {
	t, err := s.Table(name)
	if err != nil {
		return nil, nil, err
	}
	return t.Schema(), t.Snapshot(), nil
}

// RelationStats returns the row count and serialized size of the named
// table without materializing (or even walking) its rows. The network
// simulator uses it to size |d| when opening a streaming run.
func (s *Store) RelationStats(name string) (rows, wireBytes int, err error) {
	t, err := s.Table(name)
	if err != nil {
		return 0, 0, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nrows, t.wire, nil
}

// RelationSchema returns just the schema of the named table, without
// touching rows. Together with OpenScan it makes the store a streaming
// (engine.BatchSource) relation source.
func (s *Store) RelationSchema(name string) (*schema.Relation, error) {
	t, err := s.Table(name)
	if err != nil {
		return nil, err
	}
	return t.Schema(), nil
}

// OpenScan opens an incremental batch scan over the named table with
// projection and predicate pushdown, bound to ctx (see Table.Scan).
func (s *Store) OpenScan(ctx context.Context, name string, sc schema.Scan) (schema.RowIterator, error) {
	t, err := s.Table(name)
	if err != nil {
		return nil, err
	}
	return t.Scan(ctx, sc), nil
}

// OpenMorsels opens a partitioned batch scan over the named table (see
// Table.ScanMorsels). It is the storage fast path of the engine's parallel
// scans: morsels are locked subslices, never copies.
func (s *Store) OpenMorsels(ctx context.Context, name string, batchSize int) (schema.MorselSource, error) {
	t, err := s.Table(name)
	if err != nil {
		return nil, err
	}
	return t.ScanMorsels(ctx, batchSize), nil
}

// OpenColScan opens a columnar scan over the named table: zero-copy typed
// column windows of the selected positions (nil cols keeps all), bound to
// ctx. It makes the store an engine.ColScanner, enabling the vectorized
// scan path.
func (s *Store) OpenColScan(ctx context.Context, name string, cols []int, batchSize int) (schema.ColIterator, error) {
	t, err := s.Table(name)
	if err != nil {
		return nil, err
	}
	return t.ScanColumns(ctx, cols, batchSize), nil
}

// OpenColMorsels opens a partitioned columnar scan over the named table
// (see Table.ScanColMorsels): the parallel twin of OpenColScan.
func (s *Store) OpenColMorsels(ctx context.Context, name string, cols []int, batchSize int) (schema.ColMorselSource, error) {
	t, err := s.Table(name)
	if err != nil {
		return nil, err
	}
	return t.ScanColMorsels(ctx, cols, batchSize), nil
}

// Names lists table names in sorted order.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Catalog builds a schema catalog over all tables, for the rewriter and
// fragmenter.
func (s *Store) Catalog() *schema.Catalog {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := schema.NewCatalog()
	for _, t := range s.tables {
		c.Register(t.Schema())
	}
	return c
}

// WriteCSV writes a table as CSV with a header row.
func WriteCSV(w io.Writer, rel *schema.Relation, rows schema.Rows) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(rel.ColumnNames()); err != nil {
		return fmt.Errorf("storage: write csv header: %w", err)
	}
	rec := make([]string, rel.Arity())
	for _, r := range rows {
		for i, v := range r {
			if v.IsNull() {
				rec[i] = ""
			} else {
				rec[i] = v.Format()
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("storage: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads CSV data (with header) into rows following the relation's
// declared column order and types. Header names must match the schema.
func ReadCSV(r io.Reader, rel *schema.Relation) (schema.Rows, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("storage: read csv header: %w", err)
	}
	if len(header) != rel.Arity() {
		return nil, fmt.Errorf("storage: csv header has %d columns, schema %s has %d",
			len(header), rel.Name, rel.Arity())
	}
	for i, h := range header {
		if !strings.EqualFold(h, rel.Columns[i].Name) {
			return nil, fmt.Errorf("storage: csv column %d is %q, schema expects %q",
				i, h, rel.Columns[i].Name)
		}
	}
	var rows schema.Rows
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return rows, nil
		}
		if err != nil {
			return nil, fmt.Errorf("storage: read csv row: %w", err)
		}
		row := make(schema.Row, rel.Arity())
		for i, f := range rec {
			v, err := schema.ParseValue(f, rel.Columns[i].Type)
			if err != nil {
				return nil, fmt.Errorf("storage: csv row %d col %s: %w", len(rows)+1, rel.Columns[i].Name, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
}
