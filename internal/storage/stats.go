package storage

import (
	"container/heap"
	"math"

	"paradise/internal/schema"
)

// Per-column statistics power the optimizer's cardinality model (see
// plan.Estimate) and the segment zone maps (see segment.go). They are
// maintained incrementally on Append under the table's write lock — the
// same discipline as the O(1) wire-size cache — so reading them never
// walks rows. Like the plan cache, staleness is governed by the store's
// schema epoch: DDL (Create/Put/Drop) bumps the epoch and orphans any
// consumer that keyed on it, while plain appends refresh the numbers in
// place without invalidating anything.
//
// The table keeps two accumulators per column: a table-lifetime one (the
// estimator's view) and a segment-local one that is reset at every seal —
// its snapshot becomes the sealed segment's zone map entry.

// kmvK bounds the k-minimum-values sketch behind the NDV estimate. Below
// kmvK distinct values the sketch degenerates to an exact distinct count
// (every hash is kept); above it the estimate is (k-1)/R with R the k-th
// smallest normalized hash — the standard KMV estimator, within a few
// percent at this k.
const kmvK = 1024

// ColumnStats is a point-in-time statistical summary of one column.
type ColumnStats struct {
	Name  string
	NDV   int64 // estimated count of distinct non-null values (>= 1 once a value was seen)
	Nulls int64
	// Min/Max bound the numeric values seen so far; valid only when
	// HasRange is set (at least one non-null, non-NaN Int or Float was
	// appended). NaNs never enter the range — they are counted apart.
	HasRange bool
	Min, Max float64
	// Bytes is the cumulative simulated wire size of this column's values.
	Bytes int64
	// Hist is the merged equi-width histogram over the numeric values
	// (sealed segments' seal-time histograms resampled onto the table's
	// current [Min, Max], plus the active tail binned on demand). Nil when
	// the column holds no histogrammable values.
	Hist *Histogram
}

// AvgBytes is the mean wire size of one value of this column over the rows
// counted by rows; 0 when the table is empty.
func (c ColumnStats) AvgBytes(rows int64) float64 {
	if rows <= 0 {
		return 0
	}
	return float64(c.Bytes) / float64(rows)
}

// TableStats is a point-in-time statistical snapshot of a whole table:
// the O(1) row/byte totals plus per-column summaries in schema order.
type TableStats struct {
	Rows  int64
	Bytes int64
	Cols  []ColumnStats
}

// hashHeap is a max-heap over hash values: the root is the largest kept
// hash, i.e. the first to evict when a smaller one arrives.
type hashHeap []uint64

func (h hashHeap) Len() int            { return len(h) }
func (h hashHeap) Less(i, j int) bool  { return h[i] > h[j] }
func (h hashHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *hashHeap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *hashHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// colStat accumulates one column's statistics. All mutation happens under
// the owning table's write lock.
type colStat struct {
	nulls    int64
	bytes    int64
	hasRange bool
	min, max float64
	// nans counts float values that are NaN: incomparable, excluded from
	// the range, and a hard stop for zone-map pruning (comparisons error).
	nans int64
	// String range, for zone-map pruning of string comparisons.
	hasStr         bool
	strMin, strMax string
	// Non-null runtime-type census. Zone-map pruning needs to prove a
	// segment is type-clean before trusting a range (a stray string in a
	// numeric column makes comparisons error, not filter).
	ints, floats, strs, bools, times, others int64
	// KMV sketch: the kmvK smallest distinct hashes seen so far.
	seen map[uint64]struct{}
	heap hashHeap
}

// foldNull folds one NULL value into the column's statistics.
func (c *colStat) foldNull(v schema.Value) {
	c.bytes += int64(v.WireSize())
	c.nulls++
}

// fold folds one non-NULL value into the column's statistics. h is the
// FNV-1a hash of the value's canonical group key — hashed once by the
// caller so both the table-lifetime and the segment-local accumulator can
// share it.
func (c *colStat) fold(v schema.Value, h uint64) {
	c.bytes += int64(v.WireSize())
	switch v.Type() {
	case schema.TypeInt:
		c.ints++
		c.observeNum(v.AsFloat())
	case schema.TypeFloat:
		c.floats++
		f := v.AsFloat()
		if math.IsNaN(f) {
			c.nans++
		} else {
			c.observeNum(f)
		}
	case schema.TypeString:
		c.strs++
		s := v.AsString()
		if !c.hasStr {
			c.hasStr, c.strMin, c.strMax = true, s, s
		} else {
			if s < c.strMin {
				c.strMin = s
			}
			if s > c.strMax {
				c.strMax = s
			}
		}
	case schema.TypeBool:
		c.bools++
	case schema.TypeTime:
		c.times++
	default:
		c.others++
	}
	c.observeHash(h)
}

func (c *colStat) observeNum(f float64) {
	if !c.hasRange {
		c.hasRange, c.min, c.max = true, f, f
		return
	}
	if f < c.min {
		c.min = f
	}
	if f > c.max {
		c.max = f
	}
}

// observeHash folds one canonical-key hash into the KMV sketch.
func (c *colStat) observeHash(h uint64) {
	if _, ok := c.seen[h]; ok {
		return
	}
	if len(c.heap) < kmvK {
		if c.seen == nil {
			c.seen = make(map[uint64]struct{}, 64)
		}
		c.seen[h] = struct{}{}
		heap.Push(&c.heap, h)
		return
	}
	if h < c.heap[0] {
		delete(c.seen, c.heap[0])
		c.seen[h] = struct{}{}
		c.heap[0] = h
		heap.Fix(&c.heap, 0)
	}
}

// sketch snapshots the KMV hash set (unordered). Sealed segments persist
// it so recovery can rebuild the table-level NDV estimate by merging
// per-segment sketches — KMV sketches merge exactly (union, keep k
// smallest).
func (c *colStat) sketch() []uint64 {
	if len(c.heap) == 0 {
		return nil
	}
	return append([]uint64(nil), c.heap...)
}

// ndv estimates the distinct non-null count. Exact while the sketch is not
// full (every distinct hash is still kept); KMV-extrapolated beyond.
func (c *colStat) ndv() int64 {
	n := len(c.heap)
	if n < kmvK {
		return int64(n)
	}
	// KMV: with R the k-th minimum hash normalized to (0, 1],
	// NDV ~= (k-1)/R. The root of the max-heap is that k-th minimum.
	r := float64(c.heap[0]) / float64(^uint64(0))
	if r <= 0 {
		return int64(n)
	}
	est := float64(kmvK-1) / r
	if est < float64(n) {
		return int64(n)
	}
	return int64(est)
}

func (c *colStat) reset() {
	*c = colStat{}
}

// restore rebuilds the accumulator from a recovered segment's zone entry
// and persisted KMV sketch, as if the segment's rows had been observed.
func (c *colStat) restore(z ZoneEntry, sketch []uint64) {
	c.nulls += z.Nulls
	c.bytes += z.Bytes
	c.nans += z.NaNs
	if z.HasNum {
		if c.hasRange {
			c.observeNum(z.NumMin)
			c.observeNum(z.NumMax)
		} else {
			c.hasRange, c.min, c.max = true, z.NumMin, z.NumMax
		}
	}
	if z.HasStr {
		if !c.hasStr {
			c.hasStr, c.strMin, c.strMax = true, z.StrMin, z.StrMax
		} else {
			if z.StrMin < c.strMin {
				c.strMin = z.StrMin
			}
			if z.StrMax > c.strMax {
				c.strMax = z.StrMax
			}
		}
	}
	c.ints += z.Ints
	c.floats += z.Floats
	c.strs += z.Strs
	c.bools += z.Bools
	c.times += z.Times
	c.others += z.Others
	for _, h := range sketch {
		c.observeHash(h)
	}
}

// snapshot renders the accumulator as an immutable ColumnStats.
func (c *colStat) snapshot(name string) ColumnStats {
	return ColumnStats{
		Name:     name,
		NDV:      c.ndv(),
		Nulls:    c.nulls,
		HasRange: c.hasRange,
		Min:      c.min,
		Max:      c.max,
		Bytes:    c.bytes,
	}
}

// fnv64a is the FNV-1a 64-bit hash over the value's canonical group key —
// the same byte encoding every hashed operator uses, so values that are
// SQL-equal (Int 1 vs Float 1.0) hash identically here too.
func fnv64a(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// Stats snapshots the table's statistics: O(columns + segments·buckets),
// no sealed-row access (tail rows are binned on demand for the histogram,
// bounded by the segment size).
func (t *Table) Stats() TableStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ts := TableStats{
		Rows:  int64(t.nrows),
		Bytes: int64(t.wire),
		Cols:  make([]ColumnStats, len(t.stats)),
	}
	for i := range t.stats {
		ts.Cols[i] = t.stats[i].snapshot(t.schema.Columns[i].Name)
		ts.Cols[i].Hist = t.mergedHistLocked(i, ts.Cols[i])
	}
	return ts
}

// TableStats snapshots the named table's statistics (case-insensitive).
func (s *Store) TableStats(name string) (TableStats, error) {
	t, err := s.Table(name)
	if err != nil {
		return TableStats{}, err
	}
	return t.Stats(), nil
}
