package storage

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"paradise/internal/schema"
)

// mixedRelation covers every value type the zone maps summarize,
// including the hostile corners: NaN floats, invalid-UTF-8 strings,
// NULLs in every column.
func mixedRelation() *schema.Relation {
	return schema.NewRelation("mix",
		schema.Col("i", schema.TypeInt),
		schema.Col("f", schema.TypeFloat),
		schema.Col("s", schema.TypeString),
		schema.Col("b", schema.TypeBool),
		schema.Col("ts", schema.TypeTime),
	)
}

// mixedRows builds a deterministic n-row corpus over mixedRelation. Rows
// are loosely time-ordered in i (runs of ascending values with jitter), so
// zone maps are tight enough to prune but overlap enough to exercise the
// admission path too.
func mixedRows(n int, seed int64) schema.Rows {
	rng := rand.New(rand.NewSource(seed))
	epoch := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	strs := []string{"alpha", "beta", "gamma", "", "z\xff\xfe", "délta"}
	rows := make(schema.Rows, 0, n)
	for k := 0; k < n; k++ {
		var i, f, s, b, ts schema.Value
		switch {
		case rng.Intn(20) == 0:
			i = schema.Null()
		default:
			i = schema.Int(int64(k) + int64(rng.Intn(5)))
		}
		switch r := rng.Intn(20); {
		case r == 0:
			f = schema.Null()
		case r == 1:
			f = schema.Float(math.NaN())
		default:
			f = schema.Float(float64(k%97) + rng.Float64())
		}
		if rng.Intn(15) == 0 {
			s = schema.Null()
		} else {
			s = schema.String(strs[rng.Intn(len(strs))])
		}
		if rng.Intn(10) == 0 {
			b = schema.Null()
		} else {
			b = schema.Bool(rng.Intn(2) == 0)
		}
		if rng.Intn(25) == 0 {
			ts = schema.Null()
		} else {
			ts = schema.Time(epoch.Add(time.Duration(k) * time.Second))
		}
		rows = append(rows, schema.Row{i, f, s, b, ts})
	}
	return rows
}

// cellEqual compares two cells, treating NaN as equal to NaN (Identical
// follows SQL comparison, under which NaN != NaN).
func cellEqual(a, b schema.Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() == b.IsNull()
	}
	if a.Type() == schema.TypeFloat && b.Type() == schema.TypeFloat &&
		math.IsNaN(a.AsFloat()) && math.IsNaN(b.AsFloat()) {
		return true
	}
	return a.Identical(b)
}

func rowsIdentical(t *testing.T, label string, got, want schema.Rows) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d rows, want %d", label, len(got), len(want))
	}
	for r := range got {
		if len(got[r]) != len(want[r]) {
			t.Fatalf("%s: row %d arity %d, want %d", label, r, len(got[r]), len(want[r]))
		}
		for c := range got[r] {
			if !cellEqual(got[r][c], want[r][c]) {
				t.Fatalf("%s: row %d col %d: got %s, want %s",
					label, r, c, got[r][c].Format(), want[r][c].Format())
			}
		}
	}
}

func drainRows(t *testing.T, it schema.RowIterator) schema.Rows {
	t.Helper()
	defer it.Close()
	var out schema.Rows
	for {
		b, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			return out
		}
		out = append(out, b...)
	}
}

func drainBatches(t *testing.T, it schema.ColIterator) schema.Rows {
	t.Helper()
	defer it.Close()
	var out schema.Rows
	for {
		cb, err := it.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if cb == nil {
			return out
		}
		out = append(out, cb.Rows()...)
	}
}

// fillTable loads rows into a fresh table under the given config,
// appending in small irregular chunks so seals land mid-append too.
func fillTable(t *testing.T, cfg Config, rel *schema.Relation, rows schema.Rows) (*Store, *Table) {
	t.Helper()
	st, err := NewStoreWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := st.CreateTable(rel)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(rows); {
		n := 13
		if off+n > len(rows) {
			n = len(rows) - off
		}
		if err := tab.Append(rows[off : off+n]...); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	return st, tab
}

// TestSegmentedEquivalence is the tentpole soundness suite: the same
// corpus stored at segment sizes {1, 7, 256, one-segment}, with pruning on
// and off, in memory and on disk, yields identical rows in identical order
// on every scan surface — and identical table statistics.
func TestSegmentedEquivalence(t *testing.T) {
	const n = 600
	rel := mixedRelation()
	rows := mixedRows(n, 42)

	// Reference: monolithic (everything in the active tail).
	_, ref := fillTable(t, Config{SegmentRows: n + 1}, rel, rows)
	wantAll := drainRows(t, ref.Scan(context.Background(), schema.Scan{}))
	rowsIdentical(t, "reference snapshot", wantAll, rows)

	preds := []schema.ColPred{
		{Op: schema.PredGe, Col: 0, RCol: -1, Lit: schema.Int(300)},
		{Op: schema.PredLt, Col: 0, RCol: -1, Lit: schema.Int(450)},
	}

	for _, segRows := range []int{1, 7, 256, n + 1} {
		for _, pruneOff := range []bool{false, true} {
			for _, disk := range []bool{false, true} {
				cfg := Config{SegmentRows: segRows, DisablePruning: pruneOff}
				if disk {
					b, err := NewDiskBackend(t.TempDir())
					if err != nil {
						t.Fatal(err)
					}
					cfg.Backend = b
				}
				label := func(what string) string {
					pr := "prune"
					if pruneOff {
						pr = "noprune"
					}
					back := "mem"
					if disk {
						back = "disk"
					}
					return what + " seg=" + itoa(segRows) + " " + pr + " " + back
				}
				_, tab := fillTable(t, cfg, rel, rows)

				rowsIdentical(t, label("Scan"), drainRows(t, tab.Scan(context.Background(), schema.Scan{})), wantAll)
				rowsIdentical(t, label("Snapshot"), tab.Snapshot(), wantAll)

				got := drainBatches(t, tab.ScanColumns(context.Background(), schema.ColScan{Columns: []int{2, 0}}))
				want := make(schema.Rows, len(rows))
				for i, r := range rows {
					want[i] = schema.Row{r[2], r[0]}
				}
				rowsIdentical(t, label("ScanColumns"), got, want)

				// A predicate scan admits a subset of segments; every row
				// matching the predicate must still be present, in order.
				admitted := drainBatches(t, tab.ScanColumns(context.Background(),
					schema.ColScan{Predicate: preds}))
				assertMatchesPresent(t, label("pruned scan"), rows, preds, admitted)

				// Morsels claim segment-aligned chunks; the union of all
				// claims re-assembled by sequence is the full relation.
				ms := tab.ScanColMorsels(context.Background(), schema.ColScan{BatchSize: 32})
				bySeq := map[int]schema.Rows{}
				var seqs []int
				for {
					cm, err := ms.NextColMorsel()
					if err != nil {
						t.Fatal(err)
					}
					if cm.Batch == nil {
						break
					}
					bySeq[cm.Seq] = cm.Batch.Rows()
					seqs = append(seqs, cm.Seq)
				}
				ms.Close()
				var union schema.Rows
				for i := 0; i < len(seqs); i++ {
					union = append(union, bySeq[i]...)
				}
				rowsIdentical(t, label("morsels"), union, wantAll)

				// Statistics are layout-independent: same row counts, null
				// counts, min/max per column as the monolithic reference.
				sameColumnStats(t, label("stats"), tab.Stats(), ref.Stats())
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func sameColumnStats(t *testing.T, label string, got, want TableStats) {
	t.Helper()
	if got.Rows != want.Rows || got.Bytes != want.Bytes {
		t.Fatalf("%s: table rows/bytes %d/%d, want %d/%d",
			label, got.Rows, got.Bytes, want.Rows, want.Bytes)
	}
	if len(got.Cols) != len(want.Cols) {
		t.Fatalf("%s: %d columns, want %d", label, len(got.Cols), len(want.Cols))
	}
	for i := range got.Cols {
		g, w := got.Cols[i], want.Cols[i]
		if g.Nulls != w.Nulls || g.Bytes != w.Bytes {
			t.Fatalf("%s: col %s: nulls/bytes %d/%d, want %d/%d",
				label, g.Name, g.Nulls, g.Bytes, w.Nulls, w.Bytes)
		}
		if g.NDV != w.NDV {
			t.Fatalf("%s: col %s: ndv %d, want %d", label, g.Name, g.NDV, w.NDV)
		}
		if g.HasRange != w.HasRange || (g.HasRange && (g.Min != w.Min || g.Max != w.Max)) {
			t.Fatalf("%s: col %s: range [%v,%v], want [%v,%v]",
				label, g.Name, g.Min, g.Max, w.Min, w.Max)
		}
	}
}

// predOutcome is the reference evaluation of one conjunct on one row.
type predOutcome int

const (
	outTrue predOutcome = iota
	outFalse
	outNull
	outError
)

// evalPredRef mirrors the kernel comparison semantics row-at-a-time:
// NULL operands yield NULL, incomparable operands (NaN, cross-type)
// yield an error, everything else a boolean.
func evalPredRef(row schema.Row, p schema.ColPred) predOutcome {
	v := row[p.Col]
	switch p.Op {
	case schema.PredIsNull:
		if v.IsNull() {
			return outTrue
		}
		return outFalse
	case schema.PredNotNull:
		if v.IsNull() {
			return outFalse
		}
		return outTrue
	}
	rhs := p.Lit
	if p.RCol >= 0 {
		rhs = row[p.RCol]
	}
	if v.IsNull() || rhs.IsNull() {
		return outNull
	}
	c, ok := v.Compare(rhs)
	if !ok {
		return outError
	}
	var res bool
	switch p.Op {
	case schema.PredEq:
		res = c == 0
	case schema.PredNe:
		res = c != 0
	case schema.PredLt:
		res = c < 0
	case schema.PredLe:
		res = c <= 0
	case schema.PredGt:
		res = c > 0
	case schema.PredGe:
		res = c >= 0
	}
	if res {
		return outTrue
	}
	return outFalse
}

// rowNeeded reports whether a pruned scan MUST return the row: it matches
// the whole conjunction, or its left-to-right evaluation errors (the
// unpruned scan would surface that error, so the segment cannot vanish).
func rowNeeded(row schema.Row, preds []schema.ColPred) bool {
	sawNull := false
	for _, p := range preds {
		switch evalPredRef(row, p) {
		case outError:
			return true
		case outFalse:
			return false
		case outNull:
			sawNull = true
		}
	}
	return !sawNull
}

// assertMatchesPresent checks the pruning soundness invariant: every row
// the predicate needs appears in the admitted output, in corpus order.
func assertMatchesPresent(t *testing.T, label string, corpus schema.Rows, preds []schema.ColPred, admitted schema.Rows) {
	t.Helper()
	next := 0
	for ri, row := range corpus {
		if !rowNeeded(row, preds) {
			continue
		}
		found := false
		for ; next < len(admitted); next++ {
			hit := true
			for c := range row {
				if !cellEqual(admitted[next][c], row[c]) {
					hit = false
					break
				}
			}
			if hit {
				found = true
				next++
				break
			}
		}
		if !found {
			t.Fatalf("%s: corpus row %d matches the predicate but a pruned segment dropped it", label, ri)
		}
	}
}

// TestZonePruneFuzz hammers the soundness rule with random data and random
// predicates: across every trial, no segment that was skipped may have
// contained a row the predicate needed. It also checks the test has teeth:
// pruning must actually fire across the run.
func TestZonePruneFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(2016))
	rel := mixedRelation()
	skippedTotal := int64(0)
	for trial := 0; trial < 60; trial++ {
		n := 50 + rng.Intn(400)
		rows := mixedRows(n, rng.Int63())
		_, tab := fillTable(t, Config{SegmentRows: 16}, rel, rows)

		preds := randomPreds(rng)
		admitted := drainBatches(t, tab.ScanColumns(context.Background(),
			schema.ColScan{Predicate: preds}))
		assertMatchesPresent(t, "fuzz", rows, preds, admitted)
		skippedTotal += tab.segsSkipped.Load()
	}
	if skippedTotal == 0 {
		t.Fatal("fuzz never skipped a segment: the pruning path was not exercised")
	}
}

// randomPreds draws one or two conjuncts over the mixed relation, biased
// toward selective ranges on the quasi-ordered columns so pruning fires.
func randomPreds(rng *rand.Rand) []schema.ColPred {
	one := func() schema.ColPred {
		ops := []schema.PredOp{schema.PredEq, schema.PredNe, schema.PredLt,
			schema.PredLe, schema.PredGt, schema.PredGe}
		op := ops[rng.Intn(len(ops))]
		switch rng.Intn(6) {
		case 0: // int range
			return schema.ColPred{Op: op, Col: 0, RCol: -1, Lit: schema.Int(int64(rng.Intn(500)))}
		case 1: // float range (sometimes a NaN literal)
			lit := schema.Float(float64(rng.Intn(100)))
			if rng.Intn(12) == 0 {
				lit = schema.Float(math.NaN())
			}
			return schema.ColPred{Op: op, Col: 1, RCol: -1, Lit: lit}
		case 2: // string
			strs := []string{"alpha", "beta", "m", "z\xff", ""}
			return schema.ColPred{Op: op, Col: 2, RCol: -1, Lit: schema.String(strs[rng.Intn(len(strs))])}
		case 3: // cross-type: int column vs string literal (always errors)
			return schema.ColPred{Op: op, Col: 0, RCol: -1, Lit: schema.String("oops")}
		case 4: // column vs column (int vs float)
			return schema.ColPred{Op: op, Col: 0, RCol: 1}
		default: // null tests
			nops := []schema.PredOp{schema.PredIsNull, schema.PredNotNull}
			return schema.ColPred{Op: nops[rng.Intn(2)], Col: rng.Intn(5), RCol: -1}
		}
	}
	preds := []schema.ColPred{one()}
	if rng.Intn(2) == 0 {
		preds = append(preds, one())
	}
	return preds
}
