package storage

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"paradise/internal/schema"
)

// diskStore builds a disk-backed store over dir with small segments and
// loads the mixed corpus, flushing the final partial tail so every row is
// durable.
func diskStore(t *testing.T, dir string, rows schema.Rows) *Store {
	t.Helper()
	b, err := NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStoreWith(Config{SegmentRows: 64, Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := st.CreateTable(mixedRelation())
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Append(rows...); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	return st
}

// reopen recovers a store from the same directory, as a restart would.
func reopen(t *testing.T, dir string) *Store {
	t.Helper()
	b, err := NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStoreWith(Config{SegmentRows: 64, Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".seg" {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(out)
	return out
}

// TestDiskRoundTrip: a flushed disk store reopens with identical rows
// (order included), identical statistics, and working scans — without the
// original process's in-memory state.
func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rows := mixedRows(500, 7)
	orig := diskStore(t, dir, rows)
	origTab, err := orig.Table("mix")
	if err != nil {
		t.Fatal(err)
	}

	re := reopen(t, dir)
	tab, err := re.Table("mix")
	if err != nil {
		t.Fatal(err)
	}
	rowsIdentical(t, "recovered scan", drainRows(t, tab.Scan(context.Background(), schema.Scan{})), rows)
	sameColumnStats(t, "recovered stats", tab.Stats(), origTab.Stats())

	// Appends continue after recovery and the next seal does not collide
	// with recovered segment files.
	extra := mixedRows(100, 8)
	if err := tab.Append(extra...); err != nil {
		t.Fatal(err)
	}
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	re2 := reopen(t, dir)
	tab2, err := re2.Table("mix")
	if err != nil {
		t.Fatal(err)
	}
	rowsIdentical(t, "append after recovery",
		drainRows(t, tab2.Scan(context.Background(), schema.Scan{})), append(append(schema.Rows{}, rows...), extra...))
}

// corruptions maps a name to a mutation of the on-disk segment files.
var corruptions = map[string]func(t *testing.T, files []string){
	// A torn write: the last segment file lost its trailer half.
	"torn tail": func(t *testing.T, files []string) {
		last := files[len(files)-1]
		fi, err := os.Stat(last)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(last, fi.Size()/2); err != nil {
			t.Fatal(err)
		}
	},
	// Trailing garbage after a valid image: the trailer no longer sits at
	// the end of the file.
	"trailing garbage": func(t *testing.T, files []string) {
		f, err := os.OpenFile(files[len(files)-1], os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("junkjunkjunk")); err != nil {
			t.Fatal(err)
		}
		f.Close()
	},
	// A missing segment in the middle: recovery keeps only the contiguous
	// prefix before the hole.
	"missing middle": func(t *testing.T, files []string) {
		if err := os.Remove(files[1]); err != nil {
			t.Fatal(err)
		}
	},
	// An abandoned temp file from a crashed seal: cleaned up, harmless.
	"stale tmp": func(t *testing.T, files []string) {
		dir := filepath.Dir(files[0])
		if err := os.WriteFile(filepath.Join(dir, "seg-000099.seg.tmp"), []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	},
}

// TestDiskBitRotSurfacesOnScan: a flipped byte inside a column region is
// invisible to footer-only recovery (the footer checksum still passes) but
// must surface as a checksum error the moment the region is decoded —
// never as silently wrong data.
func TestDiskBitRotSurfacesOnScan(t *testing.T) {
	dir := t.TempDir()
	rows := mixedRows(300, 11)
	diskStore(t, dir, rows)
	files := segFiles(t, dir)
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(segMagic)+3] ^= 0xff
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	re := reopen(t, dir)
	tab, err := re.Table("mix")
	if err != nil {
		t.Fatal(err)
	}
	it := tab.Scan(context.Background(), schema.Scan{})
	defer it.Close()
	for {
		b, err := it.Next()
		if err != nil {
			if !strings.Contains(err.Error(), "checksum") {
				t.Fatalf("want a checksum error, got %v", err)
			}
			return
		}
		if b == nil {
			t.Fatal("bit rot went undetected: scan completed cleanly")
		}
	}
}

// TestDiskCrashRecovery: every corruption of the segment directory
// recovers to a clean prefix — the table serves exactly the rows of the
// segments before the first damaged one, the damaged files (and everything
// after them) are deleted, and ingest resumes cleanly.
func TestDiskCrashRecovery(t *testing.T) {
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			rows := mixedRows(300, 11) // 300 rows / 64-row segments = 4 sealed + tail flushed
			diskStore(t, dir, rows)
			files := segFiles(t, dir)
			if len(files) < 3 {
				t.Fatalf("want >= 3 segment files, got %d", len(files))
			}
			corrupt(t, files)

			re := reopen(t, dir)
			tab, err := re.Table("mix")
			if err != nil {
				t.Fatal(err)
			}
			got := drainRows(t, tab.Scan(context.Background(), schema.Scan{}))

			// The recovered relation must be a prefix of the original corpus
			// aligned to a 64-row segment boundary (or the full corpus, when
			// the corruption touched nothing that was validly sealed).
			if len(got) > len(rows) || len(got)%64 != 0 && len(got) != len(rows) {
				t.Fatalf("recovered %d rows: not a segment-aligned prefix of %d", len(got), len(rows))
			}
			switch name {
			case "stale tmp":
				if len(got) != len(rows) {
					t.Fatalf("stale tmp must not lose rows: got %d, want %d", len(got), len(rows))
				}
			case "missing middle":
				if len(got) != 64 {
					t.Fatalf("hole after segment 0: want 64 rows, got %d", len(got))
				}
			default:
				if len(got) >= len(rows) {
					t.Fatalf("%s: corruption of the last file must truncate, still %d rows", name, len(got))
				}
			}
			rowsIdentical(t, name+" prefix", got, rows[:len(got)])

			// Damaged and post-damage files are gone; what remains matches
			// the recovered prefix exactly, so the next reopen agrees.
			left := segFiles(t, dir)
			if want := len(got) / 64; len(left) != want && !(len(got) == len(rows) && name == "stale tmp") {
				t.Fatalf("%s: %d segment files remain, want %d", name, len(left), want)
			}
			for _, f := range left {
				if filepath.Ext(f) == ".tmp" {
					t.Fatalf("tmp file survived recovery: %s", f)
				}
			}

			// Ingest resumes: new rows append, flush, and a further reopen
			// serves prefix + new rows.
			extra := mixedRows(64, 12)
			if err := tab.Append(extra...); err != nil {
				t.Fatal(err)
			}
			if err := tab.Flush(); err != nil {
				t.Fatal(err)
			}
			re2 := reopen(t, dir)
			tab2, err := re2.Table("mix")
			if err != nil {
				t.Fatal(err)
			}
			want := append(append(schema.Rows{}, rows[:len(got)]...), extra...)
			rowsIdentical(t, name+" resume", drainRows(t, tab2.Scan(context.Background(), schema.Scan{})), want)
		})
	}
}
