// Package storage provides the in-memory tables that back the integrated
// sensor database d of the smart environment, plus CSV import/export used
// by the CLI tools. Tables are safe for concurrent readers and writers,
// matching the ingestion pattern of sensor streams feeding queries.
//
// Tables are read three ways, all bound to a context checked per batch:
// Snapshot materializes a stable copy; Table.Scan streams batches
// incrementally with predicate and projection pushdown, so an early-closing
// consumer (LIMIT) leaves the rest of the table untouched; and
// Table.ScanMorsels / Table.ScanPartitions split the table into morsels —
// locked subslices of the append-only row slice, no copying — handed out
// to concurrent workers for the engine's morsel-driven parallel scans.
package storage
