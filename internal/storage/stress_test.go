package storage

import (
	"context"
	"sync"
	"testing"

	"paradise/internal/schema"
)

// The morsel sources are single atomic cursors claimed by many goroutines;
// these stress tests hammer them under the race detector (CI runs the suite
// with -race -cpu 1,4) with more workers than morsels-per-claim, and verify
// the only property the exchange depends on: every row is claimed exactly
// once, with contiguous Seq numbering and no torn batches.

func TestScanMorselsStress(t *testing.T) {
	const (
		n       = 50_000
		workers = 8
		batch   = 37 // deliberately not a divisor of n: last morsel is ragged
	)
	tab := morselStore(t, n)
	src := tab.ScanMorsels(context.Background(), batch)
	defer src.Close()

	var mu sync.Mutex
	claimed := make([]int, n) // row value -> times served
	seqs := make(map[int]int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m, err := src.NextMorsel()
				if err != nil {
					t.Error(err)
					return
				}
				if m.Rows == nil {
					return
				}
				mu.Lock()
				seqs[m.Seq]++
				for _, r := range m.Rows {
					claimed[r[0].AsInt()]++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	for v, c := range claimed {
		if c != 1 {
			t.Fatalf("row %d served %d times, want exactly once", v, c)
		}
	}
	for s := 0; s < len(seqs); s++ {
		if seqs[s] != 1 {
			t.Fatalf("seq %d served %d times (want contiguous, exactly-once numbering)", s, seqs[s])
		}
	}
}

func TestScanColMorselsStress(t *testing.T) {
	const (
		n       = 50_000
		workers = 8
		batch   = 37
	)
	tab := morselStore(t, n)
	src := tab.ScanColMorsels(context.Background(), schema.ColScan{BatchSize: batch})
	defer src.Close()

	var mu sync.Mutex
	claimed := make([]int, n)
	seqs := make(map[int]int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m, err := src.NextColMorsel()
				if err != nil {
					t.Error(err)
					return
				}
				if m.Batch == nil {
					return
				}
				cb := m.Batch
				mu.Lock()
				seqs[m.Seq]++
				for i := 0; i < cb.N; i++ {
					claimed[cb.Vecs[0].Value(i).AsInt()]++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	for v, c := range claimed {
		if c != 1 {
			t.Fatalf("row %d served %d times, want exactly once", v, c)
		}
	}
	for s := 0; s < len(seqs); s++ {
		if seqs[s] != 1 {
			t.Fatalf("seq %d served %d times (want contiguous, exactly-once numbering)", s, seqs[s])
		}
	}
}

// TestScanColMorselsConcurrentAppend interleaves appends with a concurrent
// columnar scan: the batches handed out are windows over append-only vectors,
// so an overlapping writer must never tear them, and the cursor snapshots
// the row count at open — exactly the rows present then are served, rows
// appended later never are.
func TestScanColMorselsConcurrentAppend(t *testing.T) {
	const n = 10_000
	tab := morselStore(t, n)
	src := tab.ScanColMorsels(context.Background(), schema.ColScan{BatchSize: 64})
	defer src.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			if err := tab.Append(schema.Row{schema.Int(int64(n + i))}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	seen := make(map[int64]int)
	for {
		m, err := src.NextColMorsel()
		if err != nil {
			t.Fatal(err)
		}
		if m.Batch == nil {
			break
		}
		for i := 0; i < m.Batch.N; i++ {
			v := m.Batch.Vecs[0].Value(i).AsInt()
			seen[v]++
			if seen[v] > 1 {
				t.Fatalf("row %d served twice", v)
			}
			if v >= n {
				t.Fatalf("row %d appended after open was served (cursor must snapshot)", v)
			}
		}
	}
	<-done
	for i := int64(0); i < n; i++ {
		if seen[i] != 1 {
			t.Fatalf("row %d present at scan start was not served", i)
		}
	}
}
