package storage

import (
	"fmt"
	"sync"
	"testing"

	"paradise/internal/schema"
)

func statsRelation() *schema.Relation {
	return schema.NewRelation("m",
		schema.Col("f", schema.TypeFloat),
		schema.Col("i", schema.TypeInt),
		schema.Col("s", schema.TypeString),
	)
}

// TestStatsExactUnderAppend: below the sketch bound NDV is an exact
// distinct count, and min/max track the numeric extremes incrementally.
func TestStatsExactUnderAppend(t *testing.T) {
	tab := NewTable(statsRelation())
	for i := 0; i < 500; i++ {
		if err := tab.Append(schema.Row{
			schema.Float(float64(i % 10)),          // 10 distinct
			schema.Int(int64(i)),                   // 500 distinct
			schema.String(fmt.Sprintf("s%d", i%3)), // 3 distinct
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := tab.Stats()
	if st.Rows != 500 {
		t.Fatalf("rows = %d", st.Rows)
	}
	if st.Bytes != int64(tab.WireSize()) {
		t.Fatalf("bytes = %d, wire = %d", st.Bytes, tab.WireSize())
	}
	wantNDV := []int64{10, 500, 3}
	for i, want := range wantNDV {
		if st.Cols[i].NDV != want {
			t.Errorf("col %s NDV = %d, want %d", st.Cols[i].Name, st.Cols[i].NDV, want)
		}
	}
	f := st.Cols[0]
	if !f.HasRange || f.Min != 0 || f.Max != 9 {
		t.Errorf("f range = [%v, %v] (hasRange=%v), want [0, 9]", f.Min, f.Max, f.HasRange)
	}
	i := st.Cols[1]
	if !i.HasRange || i.Min != 0 || i.Max != 499 {
		t.Errorf("i range = [%v, %v], want [0, 499]", i.Min, i.Max)
	}
	if st.Cols[2].HasRange {
		t.Error("string column must not report a numeric range")
	}
}

// TestStatsNulls: NULLs count separately, never enter NDV or min/max.
func TestStatsNulls(t *testing.T) {
	tab := NewTable(statsRelation())
	_ = tab.Append(
		schema.Row{schema.Null(), schema.Int(1), schema.Null()},
		schema.Row{schema.Float(2), schema.Null(), schema.String("a")},
		schema.Row{schema.Null(), schema.Int(1), schema.String("a")},
	)
	st := tab.Stats()
	if st.Cols[0].Nulls != 2 || st.Cols[0].NDV != 1 {
		t.Errorf("f: nulls=%d ndv=%d, want 2/1", st.Cols[0].Nulls, st.Cols[0].NDV)
	}
	if st.Cols[0].Min != 2 || st.Cols[0].Max != 2 {
		t.Errorf("f range = [%v, %v], want [2, 2]", st.Cols[0].Min, st.Cols[0].Max)
	}
	if st.Cols[1].Nulls != 1 || st.Cols[1].NDV != 1 {
		t.Errorf("i: nulls=%d ndv=%d, want 1/1", st.Cols[1].Nulls, st.Cols[1].NDV)
	}
}

// TestStatsKMVEstimate: past the sketch bound the NDV estimate must stay
// within a modest relative error of the true distinct count.
func TestStatsKMVEstimate(t *testing.T) {
	rel := schema.NewRelation("big", schema.Col("v", schema.TypeInt))
	tab := NewTable(rel)
	const distinct = 20000
	rows := make(schema.Rows, 0, 256)
	for i := 0; i < distinct; i++ {
		rows = append(rows, schema.Row{schema.Int(int64(i))})
		if len(rows) == 256 {
			_ = tab.Append(rows...)
			rows = rows[:0]
		}
	}
	_ = tab.Append(rows...)
	ndv := tab.Stats().Cols[0].NDV
	lo, hi := int64(distinct*85/100), int64(distinct*115/100)
	if ndv < lo || ndv > hi {
		t.Fatalf("KMV NDV = %d, want within [%d, %d] of true %d", ndv, lo, hi, distinct)
	}
}

// TestStatsDuplicatesCapNDV: repeating the same values must not inflate
// the sketch.
func TestStatsDuplicatesCapNDV(t *testing.T) {
	rel := schema.NewRelation("dup", schema.Col("v", schema.TypeInt))
	tab := NewTable(rel)
	for round := 0; round < 50; round++ {
		for v := 0; v < 7; v++ {
			_ = tab.Append(schema.Row{schema.Int(int64(v))})
		}
	}
	if ndv := tab.Stats().Cols[0].NDV; ndv != 7 {
		t.Fatalf("NDV = %d, want exactly 7", ndv)
	}
}

// TestStatsTruncateResets: Truncate clears every accumulator with the rows.
func TestStatsTruncateResets(t *testing.T) {
	tab := NewTable(statsRelation())
	_ = tab.Append(schema.Row{schema.Float(5), schema.Int(7), schema.String("x")})
	tab.Truncate()
	st := tab.Stats()
	if st.Rows != 0 || st.Bytes != 0 {
		t.Fatalf("rows=%d bytes=%d after truncate", st.Rows, st.Bytes)
	}
	for _, c := range st.Cols {
		if c.NDV != 0 || c.Nulls != 0 || c.HasRange || c.Bytes != 0 {
			t.Fatalf("column %s not reset: %+v", c.Name, c)
		}
	}
	// The accumulators must keep working after a reset.
	_ = tab.Append(schema.Row{schema.Float(1), schema.Int(2), schema.String("y")})
	if st := tab.Stats(); st.Cols[0].NDV != 1 || st.Cols[0].Min != 1 {
		t.Fatalf("stats dead after truncate: %+v", st.Cols[0])
	}
}

// TestStatsEpochSemantics: appends refresh statistics without moving the
// schema epoch (prepared plans stay valid), while Create/Drop — DDL — bump
// it, exactly like the plan cache contract.
func TestStatsEpochSemantics(t *testing.T) {
	st := NewStore()
	tab := st.Create(statsRelation())
	e0 := st.Epoch()
	_ = tab.Append(schema.Row{schema.Float(1), schema.Int(2), schema.String("a")})
	if st.Epoch() != e0 {
		t.Fatal("Append must not bump the schema epoch")
	}
	ts, err := st.TableStats("m")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Rows != 1 {
		t.Fatalf("rows = %d", ts.Rows)
	}
	st.Drop("m")
	if st.Epoch() == e0 {
		t.Fatal("Drop must bump the schema epoch")
	}
	if _, err := st.TableStats("m"); err == nil {
		t.Fatal("TableStats on a dropped table must fail")
	}
	// Re-creating starts from clean statistics under a new epoch.
	e1 := st.Epoch()
	st.Create(statsRelation())
	if st.Epoch() == e1 {
		t.Fatal("Create must bump the schema epoch")
	}
	ts, _ = st.TableStats("m")
	if ts.Rows != 0 || ts.Cols[0].NDV != 0 {
		t.Fatalf("re-created table must have fresh stats: %+v", ts)
	}
}

// TestStatsConcurrentAppendAndRead: writers appending while readers
// snapshot statistics must be race-free (run under -race in CI) and every
// snapshot must be internally consistent enough for estimation — NDV and
// row count never negative, NDV never above rows seen at any point.
func TestStatsConcurrentAppendAndRead(t *testing.T) {
	tab := NewTable(statsRelation())
	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				_ = tab.Append(schema.Row{
					schema.Float(float64(i)),
					schema.Int(int64(w*perWriter + i)),
					schema.String("s"),
				})
			}
		}(w)
	}
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := tab.Stats()
			if st.Rows < 0 {
				t.Error("negative row count")
				return
			}
			for _, c := range st.Cols {
				if c.NDV < 0 || c.NDV > st.Rows {
					t.Errorf("col %s NDV %d out of [0, %d]", c.Name, c.NDV, st.Rows)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
	st := tab.Stats()
	if st.Rows != writers*perWriter {
		t.Fatalf("rows = %d, want %d", st.Rows, writers*perWriter)
	}
	if got := st.Cols[1].NDV; got != writers*perWriter {
		t.Fatalf("i NDV = %d, want %d (all distinct, below sketch bound)", got, writers*perWriter)
	}
}
